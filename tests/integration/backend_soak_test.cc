// Backend-parameterized random soak: the same SPMD body — random
// many-to-many traffic with injected drops, corruption, duplication, and
// reordering — runs over shm threads and over the net backend's forked UDP
// processes, and must come out exactly-once and conserved on both. This is
// the payoff of the shared fm::ClusterBackend contract: one fault-model
// test, every real-transport backend.
//
// All completion signalling is message-based (FM done markers + the
// harness barrier) because the net ranks share no memory; the shm backend
// simply runs the same protocol between threads.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "support/backends.h"

namespace fm {
namespace {

template <class B>
class BackendSoak : public ::testing::Test {};

TYPED_TEST_SUITE(BackendSoak, testing::BothBackends, testing::BackendNames);

TYPED_TEST(BackendSoak, RandomTrafficExactlyOnceUnderInjectedFaults) {
  using Endpoint = typename TypeParam::Endpoint;
  constexpr std::size_t kNodes = 3;
  constexpr int kMsgsPerNode = 300;
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 2'000'000;  // 2 ms of wall time
  cfg.max_retries = 30;
  // TTL must exceed the backed-off retransmission horizon (~3.3 s here) or
  // an expired slot can strand a still-retrying fragment.
  cfg.reassembly_ttl_ns = 20'000'000'000ull;
  hw::FaultParams faults;
  faults.drop_rate = 0.01;
  faults.corrupt_rate = 0.01;
  faults.duplicate_rate = 0.02;
  faults.reorder_rate = 0.02;
  auto cluster = TypeParam::make(kNodes, cfg, faults);
  // Indexed by rank so the shm threads never share a slot; the net ranks
  // each see their own copy-on-write copy and also touch only their slot.
  std::array<std::map<std::pair<NodeId, std::uint32_t>, int>, kNodes>
      delivered;
  std::array<int, kNodes> done_from{};
  HandlerId h = cluster->register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        ASSERT_GE(len, 8u);
        std::uint32_t tag, fill;
        std::memcpy(&tag, data, 4);
        std::memcpy(&fill, static_cast<const std::uint8_t*>(data) + 4, 4);
        const auto* p = static_cast<const std::uint8_t*>(data);
        for (std::size_t i = 8; i < len; ++i)
          ASSERT_EQ(p[i], static_cast<std::uint8_t>(fill));
        ++delivered[ep.id()][{src, tag}];
      });
  HandlerId hdone = cluster->register_handler(
      [&](Endpoint& ep, NodeId, const void*, std::size_t) {
        ++done_from[ep.id()];
      });
  RunReport r = TypeParam::run(*cluster, [&](Endpoint& ep) {
    Xoshiro256 rng(ep.id() * 131 + 11);
    std::vector<std::uint8_t> buf(1500);
    for (int m = 0; m < kMsgsPerNode; ++m) {
      NodeId dest;
      do {
        dest = static_cast<NodeId>(rng.below(kNodes));
      } while (dest == ep.id());
      std::size_t len =
          8 + (rng.chance(0.25) ? rng.below(1000) : rng.below(80));
      std::uint32_t tag = static_cast<std::uint32_t>(m);
      std::uint32_t fill = static_cast<std::uint32_t>(rng());
      std::memcpy(buf.data(), &tag, 4);
      std::memcpy(buf.data() + 4, &fill, 4);
      for (std::size_t i = 8; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(fill);
      ASSERT_TRUE(ok(ep.send(dest, h, buf.data(), len)));
      if ((m & 3) == 3) ep.extract();
    }
    ep.drain();
    // Our data is fully acked; announce completion over FM itself.
    for (NodeId peer = 0; peer < kNodes; ++peer)
      if (peer != ep.id())
        ASSERT_TRUE(ok(ep.send4(peer, hdone, 0, 0, 0, 0)));
    // Stay responsive (drain flushes owed acks) until every peer is done.
    ep.extract_until([&] {
      ep.drain();
      return done_from[ep.id()] >= static_cast<int>(kNodes) - 1;
    });
    for (const auto& [key, count] : delivered[ep.id()])
      EXPECT_EQ(count, 1) << "src " << key.first << " tag " << key.second
                          << " at node " << ep.id();
    ep.drain();
    // Servicing barrier, not the parking one: a done marker proves a
    // peer's *data* drained, but its ack to our final flush can still be
    // lost — every rank must stay responsive until all windows are empty,
    // or a retransmission into a parked rank escalates to a false
    // peer-death (exactly the flake this replaced).
    barrier_serviced(*cluster, ep);
  });
  EXPECT_FALSE(r.timed_out);
  obs::Conservation k = r.conservation();
  EXPECT_TRUE(k.balanced())
      << "messages lost without accounting: sent=" << k.sent
      << " delivered=" << k.delivered << " abandoned=" << k.abandoned;
  EXPECT_EQ(r.sum_counter("peers_dead"), 0.0);
  EXPECT_EQ(r.sum_counter("messages_delivered"),
            kNodes * static_cast<double>(kMsgsPerNode) +
                kNodes * (kNodes - 1.0));  // data + done markers
  // Every injected fault class actually fired and was recovered.
  EXPECT_GT(r.sum_counter("retransmit_timeouts"), 0.0);
  EXPECT_GT(r.sum_counter("duplicates_suppressed"), 0.0);
  EXPECT_GT(r.sum_counter("crc_drops"), 0.0);
}

}  // namespace
}  // namespace fm
