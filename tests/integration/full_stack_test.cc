// Cross-module integration tests: the whole simulated stack (host library +
// LCP + NIC + switch) exercised through realistic multi-node scenarios, and
// consistency checks between the simulated and shared-memory endpoints.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "fm/sim_endpoint.h"
#include "hw/cluster.h"
#include "metrics/harness.h"
#include "shm/cluster.h"

namespace fm {
namespace {

TEST(FullStack, EightNodeAllToAllOnSimulatedSwitch) {
  // The paper's switch had 8 ports; fill it.
  const std::size_t kNodes = 8;
  const int kEach = 8;
  hw::Cluster cluster(kNodes);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::size_t i = 0; i < kNodes; ++i)
    eps.push_back(std::make_unique<SimEndpoint>(cluster.node(i)));
  std::set<std::tuple<NodeId, NodeId, std::uint32_t>> seen;
  HandlerId h = 0;
  for (auto& ep : eps) {
    h = ep->register_handler([&](SimEndpoint& me, NodeId src,
                                 const void* data, std::size_t) {
      std::uint32_t tag;
      std::memcpy(&tag, data, 4);
      EXPECT_TRUE(seen.emplace(src, me.id(), tag).second);
    });
    ep->start();
  }
  const std::size_t kTotal = kNodes * (kNodes - 1) * kEach;
  auto prog = [](SimEndpoint& ep, HandlerId h, std::size_t kNodes,
                 int kEach) -> sim::Task {
    for (int m = 0; m < kEach; ++m) {
      for (NodeId d = 0; d < kNodes; ++d) {
        if (d == ep.id()) continue;
        co_await ep.send4(d, h, static_cast<std::uint32_t>(m), 0, 0, 0);
        (void)co_await ep.extract();
      }
    }
    for (;;) {
      (void)co_await ep.extract_blocking();
    }
  };
  for (auto& ep : eps) cluster.sim().spawn(prog(*ep, h, kNodes, kEach));
  bool done =
      cluster.sim().run_while_pending([&] { return seen.size() == kTotal; });
  EXPECT_TRUE(done);
  EXPECT_EQ(seen.size(), kTotal);
  for (auto& ep : eps) ep->shutdown();
  cluster.sim().run();
}

TEST(FullStack, SimulatedAndShmEndpointsAgreeOnProtocolBehaviour) {
  // Same workload, both backends: message counts and frame counts must
  // match exactly (the protocol state machines are shared).
  const int kMsgs = 40;
  const std::size_t kLen = 300;  // 3 frames at 128 B
  SimEndpoint::Stats sim_tx_stats;
  std::uint64_t sim_rx_delivered = 0;
  {
    hw::Cluster cluster(2);
    SimEndpoint a(cluster.node(0)), b(cluster.node(1));
    std::size_t got = 0;
    (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                                std::size_t) {});
    HandlerId h = b.register_handler(
        [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
    a.start();
    b.start();
    auto tx = [](SimEndpoint& a, HandlerId h, int n,
                 std::size_t len) -> sim::Task {
      std::vector<std::uint8_t> buf(len, 1);
      for (int i = 0; i < n; ++i)
        FM_CHECK(ok(co_await a.send(1, h, buf.data(), buf.size())));
      co_await a.drain();
    };
    auto rx = [](SimEndpoint& b) -> sim::Task {
      for (;;) (void)co_await b.extract_blocking();
    };
    cluster.sim().spawn(tx(a, h, kMsgs, kLen));
    cluster.sim().spawn(rx(b));
    cluster.sim().run_while_pending(
        [&] { return got == kMsgs && a.unacked() == 0; });
    sim_tx_stats = a.stats();
    sim_rx_delivered = b.stats().messages_delivered;
    a.shutdown();
    b.shutdown();
    cluster.sim().run();
  }
  shm::Endpoint::Stats shm_tx_stats{};
  std::uint64_t shm_rx_delivered = 0;
  {
    shm::Cluster cluster(2);
    std::atomic<int> got{0};
    HandlerId h = cluster.register_handler(
        [&](shm::Endpoint&, NodeId, const void*, std::size_t) { ++got; });
    cluster.run([&](shm::Endpoint& ep) {
      if (ep.id() == 0) {
        std::vector<std::uint8_t> buf(kLen, 1);
        for (int i = 0; i < kMsgs; ++i)
          FM_CHECK(ok(ep.send(1, h, buf.data(), buf.size())));
        ep.drain();
        shm_tx_stats = ep.stats();
      } else {
        ep.extract_until([&] { return got.load() == kMsgs; });
        ep.drain();
        shm_rx_delivered = ep.stats().messages_delivered;
      }
    });
  }
  EXPECT_EQ(sim_tx_stats.messages_sent, shm_tx_stats.messages_sent);
  EXPECT_EQ(sim_tx_stats.frames_sent, shm_tx_stats.frames_sent);
  EXPECT_EQ(sim_rx_delivered, shm_rx_delivered);
  EXPECT_EQ(sim_tx_stats.frames_sent,
            static_cast<std::uint64_t>(kMsgs) * 3);  // 300 B -> 3 frames
}

TEST(FullStack, MeasurementHarnessesAreDeterministic) {
  // Identical runs must yield bit-identical results — the property every
  // figure bench relies on.
  using namespace metrics;
  MeasureOpts opts;
  opts.stream_packets = 256;
  opts.pingpong_rounds = 10;
  for (Layer l : {Layer::kLanaiStreamed, Layer::kFm, Layer::kApiImm}) {
    double l1 = measure_latency_s(l, 128, opts);
    double l2 = measure_latency_s(l, 128, opts);
    EXPECT_EQ(l1, l2) << layer_name(l);
    double b1 = measure_bandwidth_mbs(l, 128, opts);
    double b2 = measure_bandwidth_mbs(l, 128, opts);
    EXPECT_EQ(b1, b2) << layer_name(l);
  }
}

TEST(FullStack, Table4OrderingHolds) {
  // The qualitative claims of Table 4, as assertions:
  using namespace metrics;
  MeasureOpts opts;
  opts.stream_packets = 512;
  opts.pingpong_rounds = 20;
  auto sizes = std::vector<std::size_t>{16, 64, 128, 256, 512};
  auto base = sweep(Layer::kLanaiBaseline, sizes, opts);
  auto strm = sweep(Layer::kLanaiStreamed, sizes, opts);
  auto hyb = sweep(Layer::kHybridMinimal, sizes, opts);
  auto alldma = sweep(Layer::kAllDma, sizes, opts);
  auto fmfull = sweep(Layer::kFm, sizes, opts);
  auto api = sweep(Layer::kApiImm, sizes, opts);
  // Streamed beats baseline.
  EXPECT_LT(strm.t0_bw_us, base.t0_bw_us);
  // Host layers cost bandwidth vs LANai-only (the SBus bottleneck).
  EXPECT_LT(hyb.r_inf_mbs, strm.r_inf_mbs / 2);
  // All-DMA: higher r_inf than hybrid, worse small-message overhead.
  EXPECT_GT(alldma.r_inf_mbs, hyb.r_inf_mbs * 1.3);
  EXPECT_GT(alldma.t0_bw_us, hyb.t0_bw_us * 2);
  // Full FM stays close to hybrid (flow control is cheap)...
  EXPECT_LT(fmfull.t0_bw_us, hyb.t0_bw_us + 1.5);
  EXPECT_GT(fmfull.r_inf_mbs, hyb.r_inf_mbs * 0.95);
  // ...while the API is an order of magnitude (or two) worse.
  EXPECT_GT(api.t0_bw_us, 10 * fmfull.t0_bw_us);
  double api_nhalf = api.n_half_vs(23.9);
  EXPECT_TRUE(api_nhalf < 0 || api_nhalf > 20 * fmfull.n_half_bytes);
}

TEST(FullStack, LanaiSramBudgetIsRespected) {
  // Building a node must account its queues against the 128 KB SRAM.
  hw::Cluster cluster(2);
  SimEndpoint ep(cluster.node(0));
  EXPECT_GT(cluster.node(0).nic().memory().used(), 0u);
  EXPECT_LE(cluster.node(0).nic().memory().used(),
            cluster.node(0).nic().memory().capacity());
}

}  // namespace
}  // namespace fm
