// Table 3 of the paper, as executable assertions: the feature matrix that
// separates Fast Messages from the Myricom API.
//
//   Feature          FM 1.0                    Myrinet API 2.0
//   Data movement    direct from user space    user space / DMA / scatter-gather
//   Delivery         guaranteed                not guaranteed
//   Delivery order   NO guarantee              preserved
//   Reconfiguration  manual                    automatic, continuous
//   Buffering        many small buffers        few large buffers
//   Fault detection  assumes reliable network  message checksums
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "api/myri_api.h"
#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm {
namespace {

TEST(Table3, FmDeliveryOrderIsNotGuaranteed) {
  // Force return-to-sender on a multi-fragment message while single-frame
  // messages keep flowing: the later-sent small messages overtake the
  // rejected-and-retried large one. (This is why the MPI layer adds its own
  // sequence numbers.)
  FmConfig cfg;
  cfg.reassembly_slots = 1;
  cfg.reject_retry_delay = 2;
  hw::Cluster c(3, hw::HwParams::paper());
  SimEndpoint s0(c.node(0), cfg), s1(c.node(1), cfg), r(c.node(2), cfg);
  std::vector<std::pair<NodeId, std::uint32_t>> arrival_order;
  HandlerId h = 0;
  for (SimEndpoint* ep : {&s0, &s1, &r}) {
    h = ep->register_handler([&](SimEndpoint&, NodeId src, const void* d,
                                 std::size_t) {
      std::uint32_t tag;
      std::memcpy(&tag, d, 4);
      arrival_order.emplace_back(src, tag);
    });
  }
  s0.start();
  s1.start();
  r.start();
  // Node 1 grabs the only reassembly slot with an incomplete message first;
  // then node 0 sends big (rejected, retried) followed by smalls.
  auto prog1 = [](SimEndpoint& ep, HandlerId h) -> sim::Task {
    std::vector<std::uint8_t> big(600, 1);
    std::uint32_t tag = 100;
    std::memcpy(big.data(), &tag, 4);
    FM_CHECK(ok(co_await ep.send(2, h, big.data(), big.size())));
    co_await ep.drain();
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  auto prog0 = [](SimEndpoint& ep, HandlerId h) -> sim::Task {
    co_await ep.sim().delay(sim::us(5));  // let node 1 claim the slot
    std::vector<std::uint8_t> big(600, 2);
    std::uint32_t tag = 0;
    std::memcpy(big.data(), &tag, 4);
    FM_CHECK(ok(co_await ep.send(2, h, big.data(), big.size())));
    for (std::uint32_t t = 1; t <= 3; ++t) {
      std::uint32_t w[4] = {t, 0, 0, 0};
      FM_CHECK(ok(co_await ep.send(2, h, w, sizeof w)));
    }
    co_await ep.drain();
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  auto rx = [](SimEndpoint& ep) -> sim::Task {
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  c.sim().spawn(prog1(s1, h));
  c.sim().spawn(prog0(s0, h));
  c.sim().spawn(rx(r));
  c.sim().run_while_pending([&] { return arrival_order.size() == 5; });
  ASSERT_EQ(arrival_order.size(), 5u);
  // Extract node 0's arrivals in order; its big message (tag 0) must NOT be
  // first even though it was sent first.
  std::vector<std::uint32_t> from0;
  for (auto& [src, tag] : arrival_order)
    if (src == 0) from0.push_back(tag);
  ASSERT_EQ(from0.size(), 4u);
  EXPECT_NE(from0.front(), 0u) << "rejected message was not overtaken";
  EXPECT_GT(r.stats().rejects_issued, 0u);
  s0.shutdown();
  s1.shutdown();
  r.shutdown();
  c.sim().run();
}

TEST(Table3, FmDeliveryGuaranteedDespiteRejections) {
  // Covered in depth by RandomSoak; here the minimal witness: a message
  // that is rejected still arrives exactly once.
  FmConfig cfg;
  cfg.reassembly_slots = 1;
  cfg.reject_retry_delay = 1;
  hw::Cluster c(3, hw::HwParams::paper());
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg), r(c.node(2), cfg);
  int big_deliveries = 0;
  HandlerId h = 0;
  for (SimEndpoint* ep : {&a, &b, &r}) {
    h = ep->register_handler(
        [&](SimEndpoint&, NodeId, const void*, std::size_t len) {
          if (len > 500) ++big_deliveries;
        });
  }
  a.start();
  b.start();
  r.start();
  auto sender = [](SimEndpoint& ep, HandlerId h) -> sim::Task {
    std::vector<std::uint8_t> big(600, 3);
    FM_CHECK(ok(co_await ep.send(2, h, big.data(), big.size())));
    co_await ep.drain();
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  auto rx = [](SimEndpoint& ep) -> sim::Task {
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  c.sim().spawn(sender(a, h));
  c.sim().spawn(sender(b, h));
  c.sim().spawn(rx(r));
  c.sim().run_while_pending([&] {
    return big_deliveries == 2 && a.unacked() == 0 && b.unacked() == 0;
  });
  EXPECT_EQ(big_deliveries, 2);
  EXPECT_GT(r.stats().rejects_issued, 0u);
  a.shutdown();
  b.shutdown();
  r.shutdown();
  c.sim().run();
}

TEST(Table3, ApiContinuousRemappingStealsLanaiTime) {
  // "automatic network remapping ... may be convenient for users but can
  // hurt the messaging layer's performance."
  hw::Cluster c(2);
  api::MyriApi a(c.node(0)), b(c.node(1));
  a.start();
  b.start();
  auto idle = [](hw::Cluster& c) -> sim::Task {
    co_await c.sim().delay(sim::ms(30));
  };
  c.sim().spawn(idle(c));
  c.sim().run_until(sim::ms(30));
  // Even with zero traffic, the LANai has been burning mapping cycles.
  EXPECT_GE(a.control_program().remap_rounds(), 5u);
  EXPECT_GT(c.node(0).nic().lanai().executed(), 5u * 2000u - 1);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(Table3, FmHasNoBackgroundWork) {
  // FM's LCP is quiescent when idle — "Reconfiguration: Manual".
  hw::Cluster c(2);
  SimEndpoint a(c.node(0)), b(c.node(1));
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  (void)b.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  a.start();
  b.start();
  c.sim().run_until(sim::ms(30));
  EXPECT_EQ(c.node(0).nic().lanai().executed(), 0u);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

}  // namespace
}  // namespace fm
