// Randomized soak of the full simulated stack: many nodes, mixed message
// sizes (single-frame and segmented), random destinations, constrained
// resources — with the global invariants that make a messaging layer a
// messaging layer:
//   * every message is delivered exactly once, intact,
//   * all windows drain to zero,
//   * the whole run is bit-deterministic.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.h"
#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm {
namespace {

struct SoakResult {
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, std::uint32_t> seen;
  sim::Time end_time = 0;
  std::uint64_t rejects = 0;
  std::uint64_t retransmissions = 0;
};

SoakResult run_soak(std::uint64_t seed, std::size_t nodes, int msgs_per_node,
                    const FmConfig& cfg, std::size_t nodes_per_switch = 0) {
  SoakResult result;
  hw::Cluster c(nodes, hw::HwParams::paper(), nodes_per_switch);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::size_t i = 0; i < nodes; ++i)
    eps.push_back(std::make_unique<SimEndpoint>(c.node(i), cfg));
  HandlerId h = 0;
  for (auto& ep : eps) {
    h = ep->register_handler([&result](SimEndpoint& me, NodeId src,
                                       const void* data, std::size_t len) {
      ASSERT_GE(len, 8u);
      std::uint32_t tag, fill;
      std::memcpy(&tag, data, 4);
      std::memcpy(&fill, static_cast<const std::uint8_t*>(data) + 4, 4);
      // Verify payload integrity: bytes after the 8-byte header are fill.
      const auto* p = static_cast<const std::uint8_t*>(data);
      for (std::size_t i = 8; i < len; ++i)
        ASSERT_EQ(p[i], static_cast<std::uint8_t>(fill));
      auto key = std::make_tuple(src, me.id(), tag);
      ++result.seen[key];
    });
    ep->start();
  }
  const std::size_t total =
      nodes * static_cast<std::size_t>(msgs_per_node);
  auto prog = [](SimEndpoint& ep, HandlerId h, std::uint64_t seed,
                 std::size_t nodes, int msgs) -> sim::Task {
    Xoshiro256 rng(seed + ep.id() * 7919);
    std::vector<std::uint8_t> buf(4096);
    for (int m = 0; m < msgs; ++m) {
      NodeId dest;
      do {
        dest = static_cast<NodeId>(rng.below(nodes));
      } while (dest == ep.id());
      // Mixed sizes: mostly small, some multi-frame.
      std::size_t len =
          8 + (rng.chance(0.25) ? rng.below(1500) : rng.below(100));
      std::uint32_t tag = static_cast<std::uint32_t>(m);
      std::uint32_t fill = static_cast<std::uint32_t>(rng());
      std::memcpy(buf.data(), &tag, 4);
      std::memcpy(buf.data() + 4, &fill, 4);
      for (std::size_t i = 8; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(fill);
      FM_CHECK(ok(co_await ep.send(dest, h, buf.data(), len)));
      if ((m & 7) == 7) (void)co_await ep.extract();
    }
    co_await ep.drain();
    // Stay responsive: late retransmissions from peers still need acks, and
    // a parked node sitting on sub-batch acks would stall peers' drains —
    // so flush (drain) after every wake-up.
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  for (auto& ep : eps)
    c.sim().spawn(prog(*ep, h, seed, nodes, msgs_per_node));
  bool done = c.sim().run_while_pending([&] {
    if (result.seen.size() != total) return false;
    for (auto& ep : eps)
      if (ep->unacked() != 0 || ep->reject_queue_depth() != 0) return false;
    return true;
  });
  EXPECT_TRUE(done) << "soak stalled";
  result.end_time = c.sim().now();
  for (auto& ep : eps) {
    result.rejects += ep->stats().rejects_issued;
    result.retransmissions += ep->stats().retransmissions;
    ep->shutdown();
  }
  c.sim().run();
  return result;
}

class RandomSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSoak, ExactlyOnceDeliveryUnderPressure) {
  FmConfig cfg;
  cfg.reassembly_slots = 2;     // forces return-to-sender under load
  cfg.reject_retry_delay = 1;
  cfg.pending_window = 16;
  auto r = run_soak(GetParam(), /*nodes=*/5, /*msgs_per_node=*/40, cfg);
  EXPECT_EQ(r.seen.size(), 5u * 40u);
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSoak,
                         ::testing::Values(1ull, 42ull, 20260705ull));

TEST(RandomSoak, DeterministicAcrossRuns) {
  FmConfig cfg;
  cfg.reassembly_slots = 2;
  cfg.reject_retry_delay = 1;
  auto a = run_soak(7, 4, 30, cfg);
  auto b = run_soak(7, 4, 30, cfg);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.seen, b.seen);
}

TEST(RandomSoak, WorksOnCascadeTopology) {
  FmConfig cfg;
  cfg.reassembly_slots = 4;
  auto r = run_soak(11, 6, 25, cfg, /*nodes_per_switch=*/2);
  EXPECT_EQ(r.seen.size(), 6u * 25u);
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);
}

TEST(RandomSoak, WindowModeSameInvariants) {
  FmConfig cfg;
  cfg.window_mode = true;
  cfg.window_per_peer = 4;
  auto r = run_soak(3, 4, 30, cfg);
  EXPECT_EQ(r.seen.size(), 4u * 30u);
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);
  EXPECT_EQ(r.rejects, 0u);  // credits prevent rejection by construction
}

}  // namespace
}  // namespace fm
