// Randomized soak of the full simulated stack: many nodes, mixed message
// sizes (single-frame and segmented), random destinations, constrained
// resources — with the global invariants that make a messaging layer a
// messaging layer:
//   * every message is delivered exactly once, intact,
//   * all windows drain to zero,
//   * the whole run is bit-deterministic.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.h"
#include "fm/sim_endpoint.h"
#include "hw/cluster.h"
#include "obs/counters.h"

namespace fm {
namespace {

struct SoakResult {
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, std::uint32_t> seen;
  sim::Time end_time = 0;
  std::uint64_t rejects = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t retransmit_timeouts = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t peers_dead = 0;
};

SoakResult run_soak(std::uint64_t seed, std::size_t nodes, int msgs_per_node,
                    const FmConfig& cfg, std::size_t nodes_per_switch = 0,
                    hw::FaultParams faults = hw::FaultParams()) {
  SoakResult result;
  hw::HwParams params = hw::HwParams::paper();
  params.faults = faults;
  hw::Cluster c(nodes, params, nodes_per_switch);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::size_t i = 0; i < nodes; ++i)
    eps.push_back(std::make_unique<SimEndpoint>(c.node(i), cfg));
  HandlerId h = 0;
  for (auto& ep : eps) {
    h = ep->register_handler([&result](SimEndpoint& me, NodeId src,
                                       const void* data, std::size_t len) {
      ASSERT_GE(len, 8u);
      std::uint32_t tag, fill;
      std::memcpy(&tag, data, 4);
      std::memcpy(&fill, static_cast<const std::uint8_t*>(data) + 4, 4);
      // Verify payload integrity: bytes after the 8-byte header are fill.
      const auto* p = static_cast<const std::uint8_t*>(data);
      for (std::size_t i = 8; i < len; ++i)
        ASSERT_EQ(p[i], static_cast<std::uint8_t>(fill));
      auto key = std::make_tuple(src, me.id(), tag);
      ++result.seen[key];
    });
    ep->start();
  }
  const std::size_t total =
      nodes * static_cast<std::size_t>(msgs_per_node);
  auto prog = [](SimEndpoint& ep, HandlerId h, std::uint64_t seed,
                 std::size_t nodes, int msgs) -> sim::Task {
    Xoshiro256 rng(seed + ep.id() * 7919);
    std::vector<std::uint8_t> buf(4096);
    for (int m = 0; m < msgs; ++m) {
      NodeId dest;
      do {
        dest = static_cast<NodeId>(rng.below(nodes));
      } while (dest == ep.id());
      // Mixed sizes: mostly small, some multi-frame.
      std::size_t len =
          8 + (rng.chance(0.25) ? rng.below(1500) : rng.below(100));
      std::uint32_t tag = static_cast<std::uint32_t>(m);
      std::uint32_t fill = static_cast<std::uint32_t>(rng());
      std::memcpy(buf.data(), &tag, 4);
      std::memcpy(buf.data() + 4, &fill, 4);
      for (std::size_t i = 8; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(fill);
      FM_CHECK(ok(co_await ep.send(dest, h, buf.data(), len)));
      if ((m & 7) == 7) (void)co_await ep.extract();
    }
    co_await ep.drain();
    // Stay responsive: late retransmissions from peers still need acks, and
    // a parked node sitting on sub-batch acks would stall peers' drains —
    // so flush (drain) after every wake-up.
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  for (auto& ep : eps)
    c.sim().spawn(prog(*ep, h, seed, nodes, msgs_per_node));
  bool done = c.sim().run_while_pending([&] {
    if (result.seen.size() != total) return false;
    for (auto& ep : eps)
      if (ep->unacked() != 0 || ep->reject_queue_depth() != 0) return false;
    return true;
  });
  EXPECT_TRUE(done) << "soak stalled";
  result.end_time = c.sim().now();
  // Standing FM-Scope invariant: the cluster is closed and drained, so
  // every message counted sent was delivered somewhere or abandoned at a
  // dead peer. Strict equality holds whenever no peer died (true for every
  // soak here); the weak form must hold unconditionally.
  obs::Conservation conservation;
  for (auto& ep : eps) conservation.add(ep->stats());
  EXPECT_TRUE(conservation.no_spontaneous_messages())
      << "delivered+abandoned exceeds sent by " << -conservation.imbalance();
  if (conservation.peers_dead == 0)
    EXPECT_TRUE(conservation.balanced())
        << "messages lost without accounting: imbalance="
        << conservation.imbalance() << " (sent=" << conservation.sent
        << " delivered=" << conservation.delivered
        << " abandoned=" << conservation.abandoned << ")";
  for (auto& ep : eps) {
    result.rejects += ep->stats().rejects_issued;
    result.retransmissions += ep->stats().retransmissions;
    result.frames_sent += ep->stats().frames_sent;
    result.retransmit_timeouts += ep->stats().retransmit_timeouts;
    result.duplicates_suppressed += ep->stats().duplicates_suppressed;
    result.crc_drops += ep->stats().crc_drops;
    result.peers_dead += ep->stats().peers_dead;
    ep->shutdown();
  }
  c.sim().run();
  return result;
}

class RandomSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSoak, ExactlyOnceDeliveryUnderPressure) {
  FmConfig cfg;
  cfg.reassembly_slots = 2;     // forces return-to-sender under load
  cfg.reject_retry_delay = 1;
  cfg.pending_window = 16;
  auto r = run_soak(GetParam(), /*nodes=*/5, /*msgs_per_node=*/40, cfg);
  EXPECT_EQ(r.seen.size(), 5u * 40u);
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSoak,
                         ::testing::Values(1ull, 42ull, 20260705ull));

TEST(RandomSoak, DeterministicAcrossRuns) {
  FmConfig cfg;
  cfg.reassembly_slots = 2;
  cfg.reject_retry_delay = 1;
  auto a = run_soak(7, 4, 30, cfg);
  auto b = run_soak(7, 4, 30, cfg);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.seen, b.seen);
}

TEST(RandomSoak, WorksOnCascadeTopology) {
  FmConfig cfg;
  cfg.reassembly_slots = 4;
  auto r = run_soak(11, 6, 25, cfg, /*nodes_per_switch=*/2);
  EXPECT_EQ(r.seen.size(), 6u * 25u);
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);
}

TEST(RandomSoak, LossySoakFmRExactlyOnce) {
  // The FM-R acceptance workload: ≥10k messages through a fabric dropping
  // AND corrupting 1% of packets each. Every message must land exactly
  // once, intact, with recovery cost bounded by the injected fault rate.
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  // Timeout above the soak's bursty extract cadence (nodes service the
  // network only every 8 sends), so timers fire for genuinely lost frames
  // rather than merely slow acks.
  cfg.retransmit_timeout_ns = 3'000'000;
  hw::FaultParams faults;
  faults.drop_rate = 0.01;
  faults.corrupt_rate = 0.01;
  auto r = run_soak(5, /*nodes=*/5, /*msgs_per_node=*/2000, cfg,
                    /*nodes_per_switch=*/0, faults);
  EXPECT_EQ(r.seen.size(), 5u * 2000u);  // nothing lost
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);  // nothing doubled
  EXPECT_EQ(r.peers_dead, 0u);  // healthy peers never misdeclared dead
  EXPECT_GT(r.retransmit_timeouts, 0u);  // losses actually recovered
  EXPECT_GT(r.crc_drops, 0u);            // corruption actually caught
  // Bounded recovery: ~2% of frames are faulted, so retransmissions must
  // stay a small fraction of traffic, not a runaway storm.
  EXPECT_LT(r.retransmissions, r.frames_sent / 5);
}

TEST(RandomSoak, ExtendedFaultModelFmRExactlyOnce) {
  // Full extended fault model: drop + corrupt + duplicate + reorder +
  // burst loss, all at once. Exactly-once must still hold.
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 3'000'000;
  hw::FaultParams faults;
  faults.drop_rate = 0.005;
  faults.corrupt_rate = 0.005;
  faults.duplicate_rate = 0.01;
  faults.reorder_rate = 0.01;
  faults.burst_rate = 0.001;
  faults.burst_len = 4;
  auto r = run_soak(9, /*nodes=*/4, /*msgs_per_node=*/600, cfg,
                    /*nodes_per_switch=*/0, faults);
  EXPECT_EQ(r.seen.size(), 4u * 600u);
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);
  EXPECT_EQ(r.peers_dead, 0u);
  EXPECT_GT(r.duplicates_suppressed, 0u);  // injected dups were caught
}

TEST(RandomSoak, LossySoakDeterministicAcrossRuns) {
  // Fault injection is seeded: the whole faulty run replays bit-exactly.
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 3'000'000;
  hw::FaultParams faults;
  faults.drop_rate = 0.02;
  faults.corrupt_rate = 0.01;
  auto a = run_soak(13, 4, 100, cfg, 0, faults);
  auto b = run_soak(13, 4, 100, cfg, 0, faults);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.retransmit_timeouts, b.retransmit_timeouts);
  EXPECT_EQ(a.crc_drops, b.crc_drops);
  EXPECT_EQ(a.seen, b.seen);
}

TEST(RandomSoak, WindowModeSameInvariants) {
  FmConfig cfg;
  cfg.window_mode = true;
  cfg.window_per_peer = 4;
  auto r = run_soak(3, 4, 30, cfg);
  EXPECT_EQ(r.seen.size(), 4u * 30u);
  for (auto& [key, count] : r.seen) EXPECT_EQ(count, 1u);
  EXPECT_EQ(r.rejects, 0u);  // credits prevent rejection by construction
}

}  // namespace
}  // namespace fm
