// Found-then-fixed fixture for the weak-memory engine: a trimmed SPSC ring
// whose tail publish uses memory_order_relaxed instead of release. Under
// sequential consistency (max_delayed_stores = 0) the bug is invisible —
// every interleaving still delivers intact frames. With one delayed store
// allowed, FM-Check must find the schedule where the payload write is still
// sitting in the producer's store buffer when the relaxed tail store makes
// the slot visible, and the consumer reads a torn (stale-zero) frame. The
// real ring's release store drains the buffer first (chk/sched.cc models
// exactly that edge), so the fixed variant stays clean even in weak mode.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "chk/model.h"
#include "chk/shim.h"
#include "gtest/gtest.h"

namespace fm::chk {
namespace {

// Minimal 2-slot SPSC ring of u32 payloads; `kReleasePublish` selects the
// correct release publish (fixed) or the buggy relaxed one.
template <bool kReleasePublish>
class MiniRing {
 public:
  bool try_push(std::uint32_t v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > 1) return false;
    shared_write(&slots_[tail & 1], &v, sizeof(v));
    tail_.store(tail + 1, kReleasePublish ? std::memory_order_release
                                          : std::memory_order_relaxed);
    return true;
  }

  bool try_pop(std::uint32_t* out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    shared_read(out, &slots_[head & 1], sizeof(*out));
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  atomic<std::uint64_t> head_{0};
  atomic<std::uint64_t> tail_{0};
  std::uint32_t slots_[2] = {0, 0};
};

template <bool kReleasePublish>
Episode publish_episode() {
  auto ring = std::make_shared<MiniRing<kReleasePublish>>();
  Episode ep;
  ep.threads.push_back([ring] {
    while (!ring->try_push(0xDEADBEEFu)) yield();
  });
  ep.threads.push_back([ring] {
    std::uint32_t v = 0;
    while (!ring->try_pop(&v)) yield();
    require(v == 0xDEADBEEFu, "torn frame: slot visible before its payload");
  });
  return ep;
}

TEST(ChkBuggyRing, WeakMemoryFindsTornPublish) {
  ModelOptions opts;
  opts.name = "buggy-ring-weak";
  opts.max_delayed_stores = 1;
  const ModelResult res = explore(opts, publish_episode</*release=*/false>);
  ASSERT_TRUE(res.violation)
      << "weak-memory engine missed the relaxed-publish bug";
  EXPECT_NE(res.message.find("torn frame"), std::string::npos) << res.message;
  EXPECT_GT(res.schedules_explored, 1u);
  std::printf("[fm-chk] buggy-ring-weak: explored %llu schedules\n",
              static_cast<unsigned long long>(res.schedules_explored));

  // The counterexample replays bit-for-bit (FM_CHK_SCHEDULE contract).
  const ModelResult again =
      replay(opts, publish_episode</*release=*/false>, res.schedule);
  ASSERT_TRUE(again.violation);
  EXPECT_EQ(again.message, res.message);
}

TEST(ChkBuggyRing, SeqConsistentModeCannotSeeIt) {
  ModelOptions opts;
  opts.name = "buggy-ring-sc";
  opts.max_delayed_stores = 0;  // interleavings only: the bug needs weak memory
  const ModelResult res = explore(opts, publish_episode</*release=*/false>);
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
}

TEST(ChkBuggyRing, ReleasePublishIsCleanEvenWeak) {
  ModelOptions opts;
  opts.name = "fixed-ring-weak";
  opts.max_delayed_stores = 1;
  const ModelResult res = explore(opts, publish_episode</*release=*/true>);
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
}

}  // namespace
}  // namespace fm::chk
