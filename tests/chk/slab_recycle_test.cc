// Found-then-fixed fixture for the protocol explorer: the PR-2 slab-recycle
// race, reproduced as a model over the REAL SendWindow.
//
// The scenario (src/shm/endpoint.cc, Endpoint::push): a blocked push holds
// a `frame` pointer into the send-window slab and spins on a full ring,
// servicing its own receive side between attempts. That nested extract can
// process an ack for this very frame (a timeout retransmission of it got
// through), releasing its slot — and the LIFO free list immediately hands
// the SAME slab address to the next queued send, which overwrites the
// bytes under the still-spinning push. The buggy push then transmits the
// new message's bytes under the old frame's sequence number. The fix
// re-validates `window_.find(dest, seq).data == frame` after every spin
// iteration and abandons the push when the slot no longer holds its frame.
//
// The explorer enumerates every point at which the mid-spin ack can land;
// the buggy variant must be caught with a replayable trail, the fixed
// variant must survive the full enumeration.
#include <cstdio>
#include <cstring>
#include <string>

#include "chk/explore.h"
#include "fm/protocol.h"
#include "gtest/gtest.h"

namespace fm::chk {
namespace {

constexpr NodeId kDest = 1;
constexpr std::size_t kSlotBytes = 4;
constexpr std::uint32_t kPatternA = 0xAAAAAAAAu;  // first message's bytes
constexpr std::uint32_t kPatternB = 0xBBBBBBBBu;  // recycled occupant's bytes

// One explored path: serialize message A into the window, then spin as a
// blocked push would, letting the explorer decide if/when the mid-spin ack
// (and the slot's recycling to message B) happens. `revalidate` selects the
// fixed behaviour.
void blocked_push_path(Explorer& ex, bool revalidate) {
  SendWindow window(2, kSlotBytes);
  const std::uint32_t seq_a = window.next_seq(kDest);
  std::uint8_t* frame = window.reserve(kDest, seq_a);
  std::memcpy(frame, &kPatternA, kSlotBytes);
  window.commit(kSlotBytes);

  bool recycled = false;
  for (int spin = 0; spin < 3; ++spin) {
    // Each spin iteration the explorer picks what the world did while the
    // push was blocked: 0 = ring still full (spin again), 1 = ring drained
    // (push proceeds now), 2 = the nested extract processed an ack for
    // frame A (only reachable while it is still pending).
    const std::size_t c = ex.choose(recycled ? 2 : 3);
    if (c == 2) {
      // A retransmission of frame A got through and its ack lands
      // mid-spin: the slot is released...
      ex.check(window.ack(kDest, seq_a), "model premise: seq A was pending");
      recycled = true;
      // ...and the LIFO free list hands the SAME slab address to the next
      // queued send, which serializes message B over it.
      const std::uint32_t seq_b = window.next_seq(kDest);
      std::uint8_t* frame_b = window.reserve(kDest, seq_b);
      ex.check(frame_b == frame,
               "model premise: LIFO free list reuses the released slot");
      std::memcpy(frame_b, &kPatternB, kSlotBytes);
      window.commit(kSlotBytes);
      continue;
    }
    if (c == 0) continue;  // still full; keep spinning
    // Ring has space: the push re-reads `frame` and transmits it as seq A.
    if (revalidate && window.find(kDest, seq_a).data != frame) {
      // Fixed: the slot no longer holds frame A — it was acked via the
      // retransmission, so the push is abandoned with nothing lost.
      return;
    }
    std::uint32_t sent = 0;
    std::memcpy(&sent, frame, kSlotBytes);
    ex.check(sent == kPatternA,
             "slab-recycle race: stale frame pointer transmitted another "
             "message's bytes under seq A");
    return;
  }
}

TEST(ChkSlabRecycle, BuggyPushIsCaughtWithReplayableTrail) {
  Explorer::Options opts;
  opts.name = "slab-recycle-buggy";
  auto path = [](Explorer& ex) { blocked_push_path(ex, /*revalidate=*/false); };
  const Explorer::Result res = Explorer::run_all(opts, path);
  ASSERT_TRUE(res.violation)
      << "explorer missed the PR-2 slab-recycle race";
  EXPECT_NE(res.message.find("slab-recycle race"), std::string::npos)
      << res.message;
  EXPECT_GT(res.paths_explored, 1u);
  std::printf("[fm-chk] slab-recycle-buggy: explored %llu schedules\n",
              static_cast<unsigned long long>(res.paths_explored));

  // The decision trail replays to the same violation (FM_CHK_SCHEDULE).
  const Explorer::Result again = Explorer::replay(opts, path, res.schedule);
  ASSERT_TRUE(again.violation);
  EXPECT_EQ(again.message, res.message);
}

TEST(ChkSlabRecycle, RevalidatingPushSurvivesFullEnumeration) {
  Explorer::Options opts;
  opts.name = "slab-recycle-fixed";
  const Explorer::Result res = Explorer::run_all(
      opts, [](Explorer& ex) { blocked_push_path(ex, /*revalidate=*/true); });
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.paths_explored, 1u);
  std::printf("[fm-chk] slab-recycle-fixed: explored %llu schedules\n",
              static_cast<unsigned long long>(res.paths_explored));
}

}  // namespace
}  // namespace fm::chk
