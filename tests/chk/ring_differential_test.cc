// Differential model check: the lock-free SpscRing against a mutex-guarded
// reference deque, under every FM-Check schedule.
//
// The reference op always happens in the same scheduler-atomic window as
// the ring op it mirrors (between two instrumented points only one thread
// runs), so on every explored interleaving the ring must deliver exactly
// the reference's content in the reference's order. Transient disagreement
// about fullness/emptiness is allowed by the SPSC contract (each side's
// view of the other's index may be stale — that is what the retry loops
// absorb); content or order divergence is a bug on any schedule.
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>

#include "chk/model.h"
#include "chk/shim.h"
#include "gtest/gtest.h"
#include "shm/spsc_ring.h"

namespace fm::chk {
namespace {

struct RefQueue {
  // The mutex is the reference semantics ("what a coarse lock would give
  // you"). Under the cooperative scheduler it is always uncontended —
  // nothing between two instrumented points can interleave — so it can
  // never deadlock the model.
  std::mutex mu;
  std::deque<std::uint32_t> q;
};

TEST(ChkRingDifferential, MatchesMutexReferenceOnAllSchedules) {
  ModelOptions opts;
  opts.name = "ring-diff";
  const ModelResult res = explore(opts, [] {
    auto ring = std::make_shared<shm::SpscRing>(2, 8);
    auto ref = std::make_shared<RefQueue>();
    auto popped = std::make_shared<std::uint32_t>(0);
    constexpr std::uint32_t kMsgs = 3;
    Episode ep;
    ep.threads.push_back([ring, ref] {
      ring->assert_producer();
      for (std::uint32_t v = 1; v <= kMsgs; ++v) {
        while (!ring->try_push(&v, 4)) yield();
        // Same atomic window as the successful publish.
        std::lock_guard<std::mutex> lk(ref->mu);
        ref->q.push_back(v);
      }
    });
    ep.threads.push_back([ring, ref, popped] {
      ring->assert_consumer();
      while (*popped < kMsgs) {
        const bool got =
            ring->try_consume([&](const std::uint8_t* p, std::size_t len) {
              require(len == 4, "frame length diverged from reference");
              std::uint32_t v = 0;
              shared_read(&v, p, 4);
              std::lock_guard<std::mutex> lk(ref->mu);
              require(!ref->q.empty(),
                      "ring delivered a frame the reference never saw");
              require(ref->q.front() == v,
                      "ring content/order diverged from mutex reference");
              ref->q.pop_front();
              ++*popped;
            });
        if (!got) yield();
      }
    });
    ep.finally = [ref, popped] {
      require(*popped == kMsgs, "consumer finished short");
      require(ref->q.empty(), "reference retained frames the ring lost");
    };
    return ep;
  });
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
  std::printf("[fm-chk] ring-diff: explored %llu schedules\n",
              static_cast<unsigned long long>(res.schedules_explored));
}

}  // namespace
}  // namespace fm::chk
