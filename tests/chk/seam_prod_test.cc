// Production-mode seam checks: this binary compiles the SAME headers as
// the model-checking tests but WITHOUT FM_CHK_MODEL, proving the seam is
// free: chk::atomic<T> is literally std::atomic<T> (a type alias — zero
// ABI or codegen difference), the shared-copy helpers are memcpy, and the
// instrumented structures behave identically.
#include <atomic>
#include <cstring>
#include <type_traits>

#include "chk/shim.h"
#include "gtest/gtest.h"
#include "shm/spsc_ring.h"

namespace fm::chk {
namespace {

// The tentpole's zero-overhead claim, enforced at compile time: in a
// production build the seam type IS the std type, not a wrapper.
static_assert(std::is_same_v<atomic<std::uint64_t>, std::atomic<std::uint64_t>>,
              "production chk::atomic must be std::atomic itself");
static_assert(std::is_same_v<atomic<int>, std::atomic<int>>,
              "production chk::atomic must be std::atomic itself");

TEST(ChkSeamProd, SharedCopyHelpersAreMemcpy) {
  std::uint8_t src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::uint8_t dst[8] = {0};
  shared_write(dst, src, sizeof(src));
  EXPECT_EQ(std::memcmp(dst, src, sizeof(src)), 0);
  std::uint8_t back[8] = {0};
  shared_read(back, dst, sizeof(back));
  EXPECT_EQ(std::memcmp(back, src, sizeof(back)), 0);
  yield();  // must be a no-op
}

TEST(ChkSeamProd, RingWorksUninstrumented) {
  shm::SpscRing ring(4, 16);
  ring.assert_producer();
  ring.assert_consumer();
  for (std::uint32_t v = 1; v <= 3; ++v)
    ASSERT_TRUE(ring.try_push(&v, sizeof(v)));
  EXPECT_EQ(ring.size_approx(), 3u);
  EXPECT_EQ(ring.producer_size(), 3u);
  EXPECT_EQ(ring.consumer_size(), 3u);
  std::uint32_t expect = 1;
  while (expect <= 3) {
    ASSERT_TRUE(ring.try_consume([&](const std::uint8_t* p, std::size_t n) {
      ASSERT_EQ(n, sizeof(std::uint32_t));
      std::uint32_t v = 0;
      std::memcpy(&v, p, n);
      EXPECT_EQ(v, expect);
    }));
    ++expect;
  }
  EXPECT_TRUE(ring.empty_approx());
  EXPECT_EQ(ring.producer_size(), 0u);
  EXPECT_EQ(ring.consumer_size(), 0u);
}

}  // namespace
}  // namespace fm::chk
