// FM-Check engine self-tests: the scheduler finds the canonical races,
// clean models come back clean, counterexamples replay bit-for-bit, and
// the decision-tree explorer enumerates exactly its tree.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "chk/explore.h"
#include "chk/model.h"
#include "chk/shim.h"
#include "gtest/gtest.h"

namespace fm::chk {
namespace {

// Two threads each do a non-atomic read-modify-write through relaxed
// load/store: the textbook lost update. The scheduler must find the
// interleaving (load, load, store, store) that drops an increment.
Episode lost_update_episode() {
  auto c = std::make_shared<atomic<int>>(0);
  Episode ep;
  for (int t = 0; t < 2; ++t) {
    ep.threads.push_back([c] {
      const int v = c->load(std::memory_order_relaxed);
      c->store(v + 1, std::memory_order_relaxed);
    });
  }
  ep.finally = [c] {
    require(c->load() == 2, "lost update: both increments must survive");
  };
  return ep;
}

TEST(ChkEngine, FindsLostUpdate) {
  ModelOptions opts;
  opts.name = "lost-update";
  opts.max_delayed_stores = 0;  // plain interleaving bug, no weak memory
  const ModelResult res = explore(opts, lost_update_episode);
  ASSERT_TRUE(res.violation) << "scheduler missed the lost-update race";
  EXPECT_NE(res.message.find("lost update"), std::string::npos);
  EXPECT_GT(res.schedules_explored, 1u);
  std::printf("[fm-chk] lost-update: explored %llu schedules\n",
              static_cast<unsigned long long>(res.schedules_explored));

  // The counterexample must replay bit-for-bit to the same violation.
  const ModelResult again = replay(opts, lost_update_episode, res.schedule);
  ASSERT_TRUE(again.violation) << "counterexample schedule did not replay";
  EXPECT_EQ(again.message, res.message);
}

TEST(ChkEngine, EnvVarReplaysRecordedSchedule) {
  ModelOptions opts;
  opts.name = "lost-update-env";
  opts.max_delayed_stores = 0;
  const ModelResult res = explore(opts, lost_update_episode);
  ASSERT_TRUE(res.violation);

  // FM_CHK_SCHEDULE with a matching model name switches explore() into
  // replay mode — the FM_SAN_SEED workflow, made exact.
  ASSERT_EQ(setenv("FM_CHK_SCHEDULE", res.schedule.c_str(), 1), 0);
  const ModelResult env_res = explore(opts, lost_update_episode);
  unsetenv("FM_CHK_SCHEDULE");
  ASSERT_TRUE(env_res.violation);
  EXPECT_EQ(env_res.schedules_explored, 1u);
  EXPECT_EQ(env_res.message, res.message);

  // A schedule naming a DIFFERENT model must not hijack the exploration.
  ASSERT_EQ(setenv("FM_CHK_SCHEDULE", "other-model:s0,s1", 1), 0);
  const ModelResult other = explore(opts, lost_update_episode);
  unsetenv("FM_CHK_SCHEDULE");
  EXPECT_TRUE(other.violation);
  EXPECT_GT(other.schedules_explored, 1u);
}

TEST(ChkEngine, AtomicRmwIsClean) {
  ModelOptions opts;
  opts.name = "rmw-clean";
  const ModelResult res = explore(opts, [] {
    auto c = std::make_shared<atomic<int>>(0);
    Episode ep;
    for (int t = 0; t < 2; ++t)
      ep.threads.push_back([c] { c->fetch_add(1); });
    ep.finally = [c] { require(c->load() == 2, "fetch_add lost an update"); };
    return ep;
  });
  EXPECT_FALSE(res.violation) << res.message << "\n  " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
}

TEST(ChkEngine, DetectsDeadlock) {
  ModelOptions opts;
  opts.name = "deadlock";
  const ModelResult res = explore(opts, [] {
    auto flag = std::make_shared<atomic<int>>(0);
    Episode ep;
    // Waits on a flag nobody ever sets: chk::yield makes the spin a
    // scheduler decision, and once the other thread is done the waiter can
    // never be unblocked — a deadlock, not an infinite exploration.
    ep.threads.push_back([flag] {
      while (flag->load(std::memory_order_acquire) == 0) yield();
    });
    ep.threads.push_back([] {});
    return ep;
  });
  ASSERT_TRUE(res.violation);
  EXPECT_NE(res.message.find("deadlock"), std::string::npos) << res.message;
}

TEST(ChkEngine, WaiterWokenBySignalIsClean) {
  ModelOptions opts;
  opts.name = "signal";
  const ModelResult res = explore(opts, [] {
    auto flag = std::make_shared<atomic<int>>(0);
    Episode ep;
    ep.threads.push_back([flag] {
      while (flag->load(std::memory_order_acquire) == 0) yield();
    });
    ep.threads.push_back(
        [flag] { flag->store(1, std::memory_order_release); });
    return ep;
  });
  EXPECT_FALSE(res.violation) << res.message << "\n  " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
}

TEST(ChkExplorer, EnumeratesWholeTree) {
  Explorer::Options opts;
  opts.name = "tree-2x3";
  const Explorer::Result res = Explorer::run_all(opts, [](Explorer& ex) {
    ex.choose(2);
    ex.choose(3);
  });
  EXPECT_FALSE(res.violation);
  EXPECT_EQ(res.paths_explored, 6u);
}

TEST(ChkExplorer, ViolationTrailReplays) {
  Explorer::Options opts;
  opts.name = "needle";
  auto path = [](Explorer& ex) {
    // Only the (1, 2) path is bad; the trail must pinpoint it.
    const std::size_t a = ex.choose(2);
    const std::size_t b = ex.choose(3);
    ex.check(!(a == 1 && b == 2), "needle found");
  };
  const Explorer::Result res = Explorer::run_all(opts, path);
  ASSERT_TRUE(res.violation);
  EXPECT_EQ(res.schedule, "needle:1,2");

  const Explorer::Result again = Explorer::replay(opts, path, res.schedule);
  ASSERT_TRUE(again.violation);
  EXPECT_EQ(again.paths_explored, 1u);
  EXPECT_EQ(again.message, res.message);
}

}  // namespace
}  // namespace fm::chk
