// Exhaustive protocol-state-space exploration: every fault schedule the
// bounded 2-rank model admits (chk/proto_model.h), with the four FM-R
// invariants — exactly-once, sent == resolved + abandoned conservation,
// quiescence, dead-peer convergence — checked on every path.
#include <cstdio>
#include <string>

#include "chk/explore.h"
#include "chk/proto_model.h"
#include "gtest/gtest.h"

namespace fm::chk {
namespace {

struct Aggregate {
  std::uint64_t delivered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t dead_paths = 0;

  void add(const ProtoStats& s) {
    delivered += s.delivered_msgs;
    rejected += s.rejected_frames;
    retransmits += s.retransmits;
    abandoned += s.abandoned;
    dead_paths += s.dead_declared ? 1 : 0;
  }
};

Explorer::Result enumerate(const char* name, const ProtoParams& p,
                           Aggregate* agg) {
  Explorer::Options opts;
  opts.name = name;
  const Explorer::Result res =
      Explorer::run_all(opts, [&](Explorer& ex) { agg->add(run_proto_model(ex, p)); });
  std::printf("[fm-chk] %s: explored %llu schedules\n", name,
              static_cast<unsigned long long>(res.paths_explored));
  return res;
}

TEST(ChkProto, SingleMessageAllFaultSchedules) {
  ProtoParams p;
  p.msgs = 1;
  p.frags = 1;
  p.fault_budget = 1;
  p.depth = 5;
  Aggregate agg;
  const Explorer::Result res = enumerate("proto-basic", p, &agg);
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.paths_explored, 1u);
  // Somewhere in the tree a drop or a timer expiry forced a retransmission
  // — the dedup/exactly-once machinery was actually exercised.
  EXPECT_GT(agg.retransmits, 0u);
  EXPECT_GT(agg.delivered, 0u);
}

TEST(ChkProto, TwoMessagesWindowPressure) {
  ProtoParams p;
  p.msgs = 2;
  p.frags = 1;
  p.window = 2;
  p.fault_budget = 1;
  p.depth = 5;
  Aggregate agg;
  const Explorer::Result res = enumerate("proto-window", p, &agg);
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.paths_explored, 1u);
  EXPECT_GT(agg.delivered, 0u);
}

TEST(ChkProto, FragmentedRejectPath) {
  // One reassembly slot, two interleavable fragmented messages: schedules
  // where msg 1's first fragment lands while msg 0 still holds the slot
  // must bounce it (return-to-sender) and later re-inject and deliver it.
  // The window must admit both messages' fragments at once, or msg 1 can
  // never be in flight while msg 0 is half-assembled.
  ProtoParams p;
  p.msgs = 2;
  p.frags = 2;
  p.window = 4;
  p.reasm_slots = 1;
  p.fault_budget = 0;  // rejections come from slot pressure, not faults
  p.depth = 6;
  Aggregate agg;
  const Explorer::Result res = enumerate("proto-reject", p, &agg);
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.paths_explored, 1u);
  EXPECT_GT(agg.rejected, 0u)
      << "no explored schedule exercised the return-to-sender path";
  EXPECT_GT(agg.delivered, 0u);
}

TEST(ChkProto, DeadPeerConvergence) {
  ProtoParams p;
  p.msgs = 1;
  p.frags = 1;
  p.fault_budget = 0;
  p.depth = 4;
  p.kill_node1 = true;
  Aggregate agg;
  const Explorer::Result res = enumerate("proto-dead-peer", p, &agg);
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.paths_explored, 1u);
  // Every path that sent anything must have declared the peer dead and
  // abandoned the frames (the per-path invariants enforce the rest).
  EXPECT_EQ(agg.delivered, 0u);
  EXPECT_GT(agg.dead_paths, 0u);
  EXPECT_GT(agg.abandoned, 0u);
}

}  // namespace
}  // namespace fm::chk
