// Exhaustive model checking of the real SpscRing (src/shm/spsc_ring.h,
// compiled here with FM_CHK_MODEL so every index access and slot copy is a
// scheduler decision point). Small capacities, few messages: the whole
// interleaving space — including delayed relaxed/plain stores — is explored,
// and FIFO delivery with uncorrupted frames must hold on every schedule.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "chk/model.h"
#include "chk/shim.h"
#include "gtest/gtest.h"
#include "shm/spsc_ring.h"

namespace fm::chk {
namespace {

// Producer streams `msgs` distinct 4-byte frames through a `slots`-slot
// ring via reserve/commit; consumer drains them in batches of `batch`.
// The final check asserts exact FIFO content.
Episode ring_episode(std::size_t slots, std::uint32_t msgs,
                     std::size_t batch) {
  auto ring = std::make_shared<shm::SpscRing>(slots, 8);
  auto seen = std::make_shared<std::vector<std::uint32_t>>();
  Episode ep;
  ep.threads.push_back([ring, msgs] {
    ring->assert_producer();
    for (std::uint32_t v = 1; v <= msgs; ++v) {
      for (;;) {
        std::uint8_t* dst = ring->try_reserve(4);
        if (dst != nullptr) {
          const std::uint32_t val = 0xA0000000u | v;
          shared_write(dst, &val, 4);
          ring->commit(4);
          break;
        }
        yield();  // full: wait for the consumer to free a slot
      }
    }
  });
  ep.threads.push_back([ring, seen, msgs, batch] {
    ring->assert_consumer();
    std::uint32_t got = 0;
    while (got < msgs) {
      const std::size_t n =
          ring->try_consume_batch(batch, [&](const std::uint8_t* p,
                                             std::size_t len) {
            require(len == 4, "frame length prefix corrupted");
            std::uint32_t v = 0;
            shared_read(&v, p, 4);
            require((v & 0xFF000000u) == 0xA0000000u,
                    "frame payload torn or stale");
            seen->push_back(v & 0x00FFFFFFu);
          });
      got += static_cast<std::uint32_t>(n);
      if (n == 0) yield();  // empty: wait for the producer to publish
    }
  });
  ep.finally = [seen, msgs] {
    require(seen->size() == msgs, "frame count mismatch");
    for (std::uint32_t i = 0; i < msgs; ++i)
      require((*seen)[i] == i + 1, "FIFO order violated");
  };
  return ep;
}

TEST(ChkRing, Capacity2ReserveCommitConsume) {
  ModelOptions opts;
  opts.name = "ring-cap2";
  const ModelResult res =
      explore(opts, [] { return ring_episode(2, 3, 1); });
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
  std::printf("[fm-chk] ring-cap2: explored %llu schedules\n",
              static_cast<unsigned long long>(res.schedules_explored));
}

TEST(ChkRing, Capacity4BatchedConsume) {
  ModelOptions opts;
  opts.name = "ring-cap4";
  const ModelResult res =
      explore(opts, [] { return ring_episode(4, 3, 2); });
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
  std::printf("[fm-chk] ring-cap4: explored %llu schedules\n",
              static_cast<unsigned long long>(res.schedules_explored));
}

// Third thread hammers size_approx() while producer and consumer run: the
// snapshot is racy by contract (the two index loads are independent), so
// the only assertable property is the clamp to [0, capacity] — which the
// pre-clamp implementation violates on exactly the interleaving where the
// consumer passes the stale tail snapshot between the two loads.
TEST(ChkRing, SizeApproxObserverStaysClamped) {
  ModelOptions opts;
  opts.name = "ring-size-approx";
  opts.max_preemptions = 2;
  const ModelResult res = explore(opts, [] {
    auto ring = std::make_shared<shm::SpscRing>(2, 8);
    Episode ep;
    // One producer/consumer handoff is enough: the clamp-triggering race is
    // the observer loading tail before a push applies, then head advancing
    // past that stale snapshot before the second load.
    ep.threads.push_back([ring] {
      ring->assert_producer();
      const std::uint32_t v = 1;
      while (!ring->try_push(&v, 4)) yield();
    });
    ep.threads.push_back([ring] {
      ring->assert_consumer();
      while (!ring->try_consume([](const std::uint8_t*, std::size_t) {}))
        yield();
    });
    ep.threads.push_back([ring] {
      for (int i = 0; i < 2; ++i) {
        const std::size_t sz = ring->size_approx();
        require(sz <= ring->capacity(),
                "size_approx escaped its [0, capacity] clamp");
      }
    });
    return ep;
  });
  EXPECT_FALSE(res.violation) << res.message << "\n  replay: " << res.schedule;
  EXPECT_GT(res.schedules_explored, 1u);
  std::printf("[fm-chk] ring-size-approx: explored %llu schedules\n",
              static_cast<unsigned long long>(res.schedules_explored));
}

}  // namespace
}  // namespace fm::chk
