// Tests for the API's scatter-gather send (Table 3: "supports
// scatter-gather operations").
#include <gtest/gtest.h>

#include <cstring>

#include "api/myri_api.h"
#include "hw/cluster.h"

namespace fm::api {
namespace {

TEST(ScatterGather, GathersFragmentsIntoOneMessage) {
  hw::Cluster c(2);
  MyriApi a(c.node(0)), b(c.node(1));
  a.start();
  b.start();
  std::vector<std::uint8_t> got;
  auto tx = [](MyriApi& a) -> sim::Task {
    const char x[] = "Illinois ";
    const char y[] = "Fast ";
    const char z[] = "Messages";
    MyriApi::Iovec iov[3] = {{x, sizeof x - 1}, {y, sizeof y - 1},
                             {z, sizeof z - 1}};
    Status s = co_await a.send_gather(1, iov, 3);
    EXPECT_TRUE(ok(s));
  };
  auto rx = [](MyriApi& b, std::vector<std::uint8_t>* got) -> sim::Task {
    Message m = co_await b.receive_blocking();
    *got = std::move(m.data);
  };
  c.sim().spawn(tx(a));
  c.sim().spawn(rx(b, &got));
  c.sim().run_while_pending([&] { return !got.empty(); });
  std::string s(got.begin(), got.end());
  EXPECT_EQ(s, "Illinois Fast Messages");
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(ScatterGather, RejectsBadLists) {
  hw::Cluster c(2);
  MyriApi a(c.node(0)), b(c.node(1));
  a.start();
  b.start();
  auto tx = [](MyriApi& a) -> sim::Task {
    Status s1 = co_await a.send_gather(1, nullptr, 0);
    EXPECT_EQ(s1, Status::kBadArgument);
    MyriApi::Iovec bad[1] = {{nullptr, 8}};
    Status s2 = co_await a.send_gather(1, bad, 1);
    EXPECT_EQ(s2, Status::kBadArgument);
  };
  c.sim().spawn(tx(a));
  c.sim().run_for(sim::ms(1));
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(ScatterGather, CostsMoreThanPlainSendPerElement) {
  // Each scatter-gather element adds descriptor-build and walk time.
  auto run = [](bool gather) {
    hw::Cluster c(2);
    MyriApi a(c.node(0)), b(c.node(1));
    a.start();
    b.start();
    bool got = false;
    auto tx = [](MyriApi& a, bool gather) -> sim::Task {
      std::uint8_t buf[256] = {};
      if (gather) {
        MyriApi::Iovec iov[8];
        for (int i = 0; i < 8; ++i) iov[i] = {buf + 32 * i, 32};
        (void)co_await a.send_gather(1, iov, 8);
      } else {
        (void)co_await a.send(1, buf, sizeof buf);
      }
    };
    auto rx = [](MyriApi& b, bool* got) -> sim::Task {
      (void)co_await b.receive_blocking();
      *got = true;
    };
    c.sim().spawn(tx(a, gather));
    c.sim().spawn(rx(b, &got));
    c.sim().run_while_pending([&] { return got; });
    sim::Time t = c.sim().now();
    a.shutdown();
    b.shutdown();
    c.sim().run();
    return t;
  };
  EXPECT_GT(run(true), run(false));
}

}  // namespace
}  // namespace fm::api
