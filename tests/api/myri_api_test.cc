#include "api/myri_api.h"

#include <gtest/gtest.h>

#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm::api {
namespace {

struct ApiPair {
  hw::Cluster cluster{2};
  MyriApi a{cluster.node(0)};
  MyriApi b{cluster.node(1)};
  ApiPair() {
    a.start();
    b.start();
  }
  ~ApiPair() {
    a.shutdown();
    b.shutdown();
    cluster.sim().run();
  }
};

TEST(MyriApi, ImmediateSendDelivers) {
  ApiPair p;
  std::vector<std::uint8_t> got;
  auto tx = [](ApiPair& p) -> sim::Task {
    std::uint8_t data[64];
    for (int i = 0; i < 64; ++i) data[i] = static_cast<std::uint8_t>(i);
    Status s = co_await p.a.send_imm(1, data, sizeof data);
    EXPECT_TRUE(ok(s));
  };
  auto rx = [](ApiPair& p, std::vector<std::uint8_t>* got) -> sim::Task {
    Message m = co_await p.b.receive_blocking();
    EXPECT_EQ(m.src, 0u);
    *got = std::move(m.data);
  };
  p.cluster.sim().spawn(tx(p));
  p.cluster.sim().spawn(rx(p, &got));
  p.cluster.sim().run_while_pending([&] { return !got.empty(); });
  ASSERT_EQ(got.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(got[i], i);
}

TEST(MyriApi, DmaSendDelivers) {
  ApiPair p;
  bool got = false;
  auto tx = [](ApiPair& p) -> sim::Task {
    std::uint8_t data[256] = {};
    Status s = co_await p.a.send(1, data, sizeof data);
    EXPECT_TRUE(ok(s));
    // DMA mode must have staged through the sender's DMA engine.
    EXPECT_GE(p.cluster.node(0).sbus().bytes_dma(), 256u);
  };
  auto rx = [](ApiPair& p, bool* got) -> sim::Task {
    (void)co_await p.b.receive_blocking();
    *got = true;
  };
  p.cluster.sim().spawn(tx(p));
  p.cluster.sim().spawn(rx(p, &got));
  p.cluster.sim().run_while_pending([&] { return got; });
  EXPECT_TRUE(got);
}

TEST(MyriApi, DeliveryOrderPreserved) {
  // Table 3: the API preserves order (FM does not guarantee it).
  ApiPair p;
  std::vector<std::uint32_t> order;
  auto tx = [](ApiPair& p) -> sim::Task {
    for (std::uint32_t i = 0; i < 10; ++i) {
      Status s = co_await p.a.send_imm(1, &i, sizeof i);
      EXPECT_TRUE(ok(s));
    }
  };
  auto rx = [](ApiPair& p, std::vector<std::uint32_t>* order) -> sim::Task {
    while (order->size() < 10) {
      Message m = co_await p.b.receive_blocking();
      std::uint32_t v;
      std::memcpy(&v, m.data.data(), 4);
      order->push_back(v);
    }
  };
  p.cluster.sim().spawn(tx(p));
  p.cluster.sim().spawn(rx(p, &order));
  p.cluster.sim().run_while_pending([&] { return order.size() == 10; });
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(MyriApi, PerMessageLatencyIsAboutHundredMicroseconds) {
  // Table 4: t0 = 105 us (imm), 121 us (DMA). One-way delivery of a 128 B
  // message should land in that neighbourhood — and DMA mode must be the
  // slower of the two for small messages.
  for (bool dma : {false, true}) {
    ApiPair p;
    bool got = false;
    auto tx = [](ApiPair& p, bool dma) -> sim::Task {
      std::uint8_t data[128] = {};
      if (dma)
        (void)co_await p.a.send(1, data, sizeof data);
      else
        (void)co_await p.a.send_imm(1, data, sizeof data);
    };
    auto rx = [](ApiPair& p, bool* got) -> sim::Task {
      (void)co_await p.b.receive_blocking();
      *got = true;
    };
    p.cluster.sim().spawn(tx(p, dma));
    p.cluster.sim().spawn(rx(p, &got));
    p.cluster.sim().run_while_pending([&] { return got; });
    double us = sim::to_us(p.cluster.sim().now());
    EXPECT_GT(us, 60.0) << (dma ? "dma" : "imm");
    EXPECT_LT(us, 200.0) << (dma ? "dma" : "imm");
  }
}

TEST(MyriApi, SendBlocksOnCommandHandshake) {
  // The host must not regain control before the LCP finishes the command —
  // back-to-back sends therefore cannot pipeline.
  ApiPair p;
  sim::Time first = 0, second = 0;
  auto tx = [](ApiPair& p, sim::Time* t1, sim::Time* t2) -> sim::Task {
    std::uint8_t data[64] = {};
    (void)co_await p.a.send_imm(1, data, sizeof data);
    *t1 = p.cluster.sim().now();
    (void)co_await p.a.send_imm(1, data, sizeof data);
    *t2 = p.cluster.sim().now();
  };
  auto rx = [](ApiPair& p) -> sim::Task {
    for (;;) (void)co_await p.b.receive_blocking();
  };
  p.cluster.sim().spawn(tx(p, &first, &second));
  p.cluster.sim().spawn(rx(p));
  p.cluster.sim().run_while_pending([&] { return second != 0; });
  // The second send costs about as much as the first (no pipelining).
  EXPECT_GT(second - first, (first * 6) / 10);
}

TEST(MyriApiVsFm, FmLatencyIsAnOrderOfMagnitudeBetter) {
  // The Figure 9 headline at the library level.
  double api_us, fm_us;
  {
    ApiPair p;
    bool got = false;
    auto tx = [](ApiPair& p) -> sim::Task {
      std::uint8_t data[128] = {};
      (void)co_await p.a.send_imm(1, data, sizeof data);
    };
    auto rx = [](ApiPair& p, bool* got) -> sim::Task {
      (void)co_await p.b.receive_blocking();
      *got = true;
    };
    p.cluster.sim().spawn(tx(p));
    p.cluster.sim().spawn(rx(p, &got));
    p.cluster.sim().run_while_pending([&] { return got; });
    api_us = sim::to_us(p.cluster.sim().now());
  }
  {
    hw::Cluster cluster(2);
    SimEndpoint a(cluster.node(0)), b(cluster.node(1));
    bool got = false;
    (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                                std::size_t) {});
    HandlerId h = b.register_handler(
        [&](SimEndpoint&, NodeId, const void*, std::size_t) { got = true; });
    a.start();
    b.start();
    auto tx = [](SimEndpoint& a, HandlerId h) -> sim::Task {
      std::uint8_t data[128] = {};
      (void)co_await a.send(1, h, data, sizeof data);
    };
    auto rx = [](SimEndpoint& b) -> sim::Task {
      for (;;) (void)co_await b.extract_blocking();
    };
    cluster.sim().spawn(tx(a, h));
    cluster.sim().spawn(rx(b));
    cluster.sim().run_while_pending([&] { return got; });
    fm_us = sim::to_us(cluster.sim().now());
    a.shutdown();
    b.shutdown();
    cluster.sim().run();
  }
  EXPECT_GT(api_us, 5.0 * fm_us);
}

}  // namespace
}  // namespace fm::api
