// FM-San round-scheduled soak over the real backends, no chaos: the
// all-to-all and incast shapes must come out exactly-once, conserved, and
// with a complete per-link RTT matrix on shm threads and net processes
// alike. These are the calm-weather baselines the chaos suite (see
// chaos_test.cc) perturbs.
#include <gtest/gtest.h>

#include "support/backends.h"
#include "support/scenarios.h"

namespace fm {
namespace {

namespace scn = testing::scenarios;

template <class B>
class SanSoak : public ::testing::Test {};

TYPED_TEST_SUITE(SanSoak, testing::BothBackends, testing::BackendNames);

TYPED_TEST(SanSoak, AllToAllIsExactlyOnceWithAFullLinkMatrix) {
  const auto spec = scn::baseline<TypeParam>();
  const san::SoakOutcome out = scn::run_scenario(spec);
  ASSERT_TRUE(out.report.all_clean());

  // Exactly-once, end to end: every request got exactly one echo and every
  // payload survived bit-for-bit.
  const std::size_t n = spec.nodes;
  const double total = static_cast<double>(n * spec.soak.rounds *
                                           spec.soak.msgs_per_round);
  EXPECT_EQ(out.report.sum_counter("requests_sent"), total);
  EXPECT_EQ(out.report.sum_counter("requests_served"), total);
  EXPECT_EQ(out.report.sum_counter("echoes_received"), total);
  EXPECT_EQ(out.report.sum_counter("payload_mismatches"), 0.0);

  // FM-level conservation: nothing lost, nobody declared dead.
  const obs::Conservation c = out.report.conservation();
  EXPECT_TRUE(c.balanced()) << "imbalance " << c.imbalance();
  EXPECT_EQ(c.peers_dead, 0u);

  // 9 rounds of shifts visit every ordered pair exactly 3 times, so the
  // link matrix is complete and uniform.
  ASSERT_EQ(out.links.size(), n * (n - 1));
  for (const san::LinkSample& l : out.links) {
    EXPECT_EQ(l.echoes, 3 * spec.soak.msgs_per_round)
        << "link " << l.src << "->" << l.dst;
    EXPECT_EQ(l.lost, 0u);
    EXPECT_GT(l.rtt_mean_us, 0.0);
  }
  EXPECT_TRUE(out.analysis.lossy_links.empty());
  EXPECT_EQ(out.seed, spec.soak.seed);
}

TYPED_TEST(SanSoak, IncastRoundsExerciseAdmissionAndStayExactlyOnce) {
  const auto spec = scn::incast<TypeParam>();
  const san::SoakOutcome out = scn::run_scenario(spec);
  ASSERT_TRUE(out.report.all_clean());

  // Oversubscribing one receiver with multi-frame messages through a
  // single reassembly slot forces return-to-sender rejects; the retry
  // protocol must still land every message exactly once.
  const double sent = out.report.sum_counter("requests_sent");
  EXPECT_GT(sent, 0.0);
  EXPECT_EQ(out.report.sum_counter("echoes_received"), sent);
  EXPECT_EQ(out.report.sum_counter("payload_mismatches"), 0.0);
  EXPECT_GT(out.report.sum_counter("rejects_issued"), 0.0)
      << "incast through one reassembly slot never collided — the round "
         "shape is not exercising admission";

  const obs::Conservation c = out.report.conservation();
  EXPECT_TRUE(c.balanced()) << "imbalance " << c.imbalance();
  EXPECT_EQ(c.peers_dead, 0u);
}

}  // namespace
}  // namespace fm
