// FM-San chaos suite: the named scenarios (tests/support/scenarios.h) run
// over both real backends and the invariants must hold mid-failure —
// exactly-once delivery, sent == delivered + abandoned conservation,
// bounded dead-peer detection, and per-link isolation of the injected
// misbehaver. Every schedule derives from the effective seed (FM_SAN_SEED
// overrides; failures print it), so a red run replays bit-for-bit.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>

#include "net/cluster.h"
#include "support/backends.h"
#include "support/scenarios.h"

namespace fm {
namespace {

namespace scn = testing::scenarios;

template <class B>
class SanChaos : public ::testing::Test {};

TYPED_TEST_SUITE(SanChaos, testing::BothBackends, testing::BackendNames);

TYPED_TEST(SanChaos, KillMidCollectiveIsDetectedBoundedAndConserved) {
  const auto spec = scn::kill_rank<TypeParam>();
  ASSERT_EQ(spec.soak.chaos.events.size(), 1u);
  const NodeId victim = spec.soak.chaos.events[0].victim;
  SCOPED_TRACE(san::describe(spec.soak.chaos));

  const san::SoakOutcome out = scn::run_scenario(spec);
  EXPECT_EQ(out.seed, spec.soak.seed);
  EXPECT_FALSE(out.report.timed_out)
      << "survivors hung instead of detecting the death";

  // The victim died the backend's death; every survivor finished cleanly.
  for (const RankStatus& rs : out.report.ranks) {
    if (rs.id == victim && TypeParam::kProcessRanks) {
      EXPECT_FALSE(rs.exited) << "victim was not killed";
      EXPECT_EQ(rs.term_signal, SIGKILL);
    } else {
      EXPECT_TRUE(rs.clean()) << "rank " << rs.id;
    }
  }

  // Conservation under death: nothing materializes from nowhere, every
  // survivor independently declared exactly the victim dead, and the
  // in-flight messages were abandoned (not silently lost).
  const obs::Conservation c = out.report.conservation();
  EXPECT_TRUE(c.no_spontaneous_messages())
      << "delivered " << c.delivered << " + abandoned " << c.abandoned
      << " > sent " << c.sent;
  EXPECT_EQ(c.peers_dead, spec.nodes - 1);
  EXPECT_GT(out.report.sum_counter("messages_abandoned"), 0.0);
  EXPECT_EQ(out.report.sum_counter("payload_mismatches"), 0.0);

  // Bounded detection: each survivor's observed detection latency stays
  // within a scheduling-noise multiple of the backoff horizon.
  const double bound_us =
      static_cast<double>(san::dead_peer_bound_ns(
          spec.cfg.retransmit_timeout_ns, spec.cfg.max_retries)) /
      1000.0;
  std::size_t detections = 0;
  for (const auto& [key, value] : out.report.metrics) {
    if (key.find(".death_detect_us") == std::string::npos) continue;
    ++detections;
    EXPECT_LT(value, 20.0 * bound_us) << key;
  }
  EXPECT_EQ(detections, spec.nodes - 1)
      << "some survivor never observed the death";

  // Replay guarantee: rebuilding the spec materializes the same chaos.
  const auto replay = scn::kill_rank<TypeParam>();
  EXPECT_EQ(replay.soak.chaos, spec.soak.chaos);
}

TYPED_TEST(SanChaos, SlowReceiverIsIsolatedByPerLinkAttribution) {
  const auto spec = scn::slow_receiver<TypeParam>();
  ASSERT_EQ(spec.soak.chaos.events.size(), 1u);
  const NodeId victim = spec.soak.chaos.events[0].victim;
  SCOPED_TRACE(san::describe(spec.soak.chaos));

  const san::SoakOutcome out = scn::run_scenario(spec);
  ASSERT_TRUE(out.report.all_clean());

  // A stall is not a failure: everything still lands exactly once.
  const double sent = out.report.sum_counter("requests_sent");
  EXPECT_GT(sent, 0.0);
  EXPECT_EQ(out.report.sum_counter("echoes_received"), sent);
  EXPECT_EQ(out.report.sum_counter("payload_mismatches"), 0.0);
  const obs::Conservation c = out.report.conservation();
  EXPECT_TRUE(c.balanced()) << "imbalance " << c.imbalance();
  EXPECT_EQ(c.peers_dead, 0u) << "a stalled rank was declared dead";

  // The point of the exercise: the link matrix singles out the victim.
  EXPECT_GT(out.report.sum_counter("chaos_stall_rounds"), 0.0);
  EXPECT_TRUE(out.analysis.rank_is_slow(victim))
      << "victim " << victim << " not isolated; median rtt "
      << out.analysis.median_rtt_us << " us, " << out.analysis.slow_links.size()
      << " slow link(s)";
}

TYPED_TEST(SanChaos, PacketStormRecoversToExactlyOnce) {
  const auto spec = scn::packet_storm<TypeParam>();
  SCOPED_TRACE(san::describe(spec.soak.chaos));

  const san::SoakOutcome out = scn::run_scenario(spec);
  ASSERT_TRUE(out.report.all_clean());

  const double sent = out.report.sum_counter("requests_sent");
  EXPECT_GT(sent, 0.0);
  EXPECT_EQ(out.report.sum_counter("echoes_received"), sent);
  EXPECT_EQ(out.report.sum_counter("payload_mismatches"), 0.0);
  const obs::Conservation c = out.report.conservation();
  EXPECT_TRUE(c.balanced()) << "imbalance " << c.imbalance();
  EXPECT_EQ(c.peers_dead, 0u) << "storm loss read as a dead peer";

  // The storm actually bit (FM-R had work to do) and every rank swapped
  // rates up at the window start and back down at its end.
  EXPECT_GT(out.report.sum_counter("retransmit_timeouts"), 0.0);
  EXPECT_EQ(out.report.sum_counter("chaos_fault_swaps"),
            2.0 * static_cast<double>(spec.nodes));
}

TYPED_TEST(SanChaos, FaultRampEscalatesAndRecovers) {
  const auto spec = scn::fault_ramp<TypeParam>();
  SCOPED_TRACE(san::describe(spec.soak.chaos));
  const std::size_t steps = spec.soak.chaos.events.size();
  ASSERT_GE(steps, 2u);

  const san::SoakOutcome out = scn::run_scenario(spec);
  ASSERT_TRUE(out.report.all_clean());

  const double sent = out.report.sum_counter("requests_sent");
  EXPECT_GT(sent, 0.0);
  EXPECT_EQ(out.report.sum_counter("echoes_received"), sent);
  EXPECT_EQ(out.report.sum_counter("payload_mismatches"), 0.0);
  const obs::Conservation c = out.report.conservation();
  EXPECT_TRUE(c.balanced()) << "imbalance " << c.imbalance();
  EXPECT_EQ(c.peers_dead, 0u);

  // One swap per staircase boundary per rank: on, each escalation, off.
  EXPECT_EQ(out.report.sum_counter("chaos_fault_swaps"),
            static_cast<double>((steps + 1) * spec.nodes));
}

TEST(SanChaosReplay, EnvSeedRebuildsTheExactScenario) {
  ASSERT_EQ(setenv("FM_SAN_SEED", "424242", 1), 0);
  const auto a = scn::kill_rank<testing::ShmBackend>();
  const auto b = scn::kill_rank<testing::ShmBackend>();
  ASSERT_EQ(unsetenv("FM_SAN_SEED"), 0);
  EXPECT_EQ(a.soak.seed, 424242u);
  EXPECT_EQ(a.soak.chaos.seed, 424242u);
  EXPECT_EQ(a.soak.chaos, b.soak.chaos)
      << "same seed, different schedule: replay is broken";
}

TEST(NetWatchdog, EnvDeadlineFiresAndReportsWhereRanksWereStuck) {
  // The run deadline is env-tunable without a rebuild, and when it fires
  // the report says which phase (and which barrier) every rank was last
  // seen in — the difference between "CI timed out" and a diagnosis.
  ASSERT_EQ(setenv("FM_NET_WATCHDOG_MS", "500", 1), 0);
  net::NetConfig nc;  // default deadline is minutes: the env must win
  FmConfig fc;
  fc.reliability = true;  // the net backend requires FM-R
  net::Cluster cluster(3, fc, nc, hw::FaultParams());
  ASSERT_EQ(unsetenv("FM_NET_WATCHDOG_MS"), 0);

  const auto t0 = std::chrono::steady_clock::now();
  RunReport r = cluster.run([&cluster](net::Endpoint& ep) {
    cluster.note_phase(ep.id(), "wedged-on-purpose");
    if (ep.id() != 0) {
      cluster.barrier();  // parks forever: rank 0 never arrives
    } else {
      std::this_thread::sleep_for(std::chrono::seconds(30));
    }
  });
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.all_clean());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20)
      << "FM_NET_WATCHDOG_MS did not shorten the default deadline";
  ASSERT_EQ(r.ranks.size(), 3u);
  for (const RankStatus& rs : r.ranks) {
    EXPECT_EQ(rs.last_phase, "wedged-on-purpose") << "rank " << rs.id;
    EXPECT_EQ(rs.barriers_seen, rs.id == 0 ? 0u : 1u) << "rank " << rs.id;
  }
}

}  // namespace
}  // namespace fm
