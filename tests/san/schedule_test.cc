// FM-San pure units: the round schedule's coverage guarantees, the
// per-link outlier analysis, the chaos scenarios' replay determinism, and
// the seed plumbing. No cluster, no clock — everything here must be exact.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fm/protocol.h"
#include "obs/dump.h"
#include "san/chaos.h"
#include "san/link_stats.h"
#include "san/schedule.h"
#include "san/seed.h"

namespace fm::san {
namespace {

TEST(RoundSchedule, ShiftRoundsCoverEveryOrderedPairExactlyOnce) {
  const std::size_t n = 5;
  RoundSchedule sched(n, n - 1);
  std::set<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t r = 0; r < n - 1; ++r) {
    for (NodeId self = 0; self < n; ++self) {
      const NodeId dst = sched.dest_of(r, self);
      ASSERT_NE(dst, self) << "self-send in round " << r;
      ASSERT_NE(dst, kInvalidNode);
      EXPECT_TRUE(pairs.emplace(self, dst).second)
          << "pair (" << self << "," << dst << ") repeated";
    }
  }
  EXPECT_EQ(pairs.size(), n * (n - 1));  // every ordered pair, exactly once
}

TEST(RoundSchedule, EveryShiftRoundIsAPermutation) {
  const std::size_t n = 6;
  RoundSchedule sched(n, 10);
  for (std::size_t r = 0; r < 10; ++r) {
    std::set<NodeId> dests;
    for (NodeId self = 0; self < n; ++self) {
      dests.insert(sched.dest_of(r, self));
      // In a shift round exactly one peer targets each rank.
      EXPECT_EQ(sched.expected_sources(r, self), 1u);
    }
    EXPECT_EQ(dests.size(), n) << "round " << r << " oversubscribes a rank";
  }
}

TEST(RoundSchedule, IncastRoundsRotateTargetsAndOversubscribe) {
  const std::size_t n = 4;
  RoundSchedule sched(n, 12, /*incast_every=*/3);
  // Rounds 2, 5, 8, 11 are incast; targets rotate 0, 1, 2, 3.
  const std::size_t incast_rounds[] = {2, 5, 8, 11};
  NodeId expect_target = 0;
  for (std::size_t r : incast_rounds) {
    ASSERT_EQ(sched.plan(r).kind, RoundKind::kIncast) << "round " << r;
    EXPECT_EQ(sched.plan(r).target, expect_target);
    EXPECT_EQ(sched.dest_of(r, expect_target), kInvalidNode)
        << "the incast target must sit the round out";
    EXPECT_EQ(sched.expected_sources(r, expect_target), n - 1);
    for (NodeId self = 0; self < n; ++self) {
      if (self == expect_target) continue;
      EXPECT_EQ(sched.dest_of(r, self), expect_target);
      EXPECT_EQ(sched.expected_sources(r, self), 0u);
    }
    ++expect_target;
  }
}

TEST(RoundSchedule, ShiftSequenceSkipsIncastRounds) {
  // Interleaving incast rounds must not eat shifts: the shift sequence
  // walks 1, 2, 3, 1, ... over the *shift* rounds only, so coverage of
  // every ordered pair survives the interleaving.
  RoundSchedule sched(4, 9, /*incast_every=*/3);
  EXPECT_EQ(sched.plan(0).shift, 1u);
  EXPECT_EQ(sched.plan(1).shift, 2u);
  ASSERT_EQ(sched.plan(2).kind, RoundKind::kIncast);
  EXPECT_EQ(sched.plan(3).shift, 3u);
  EXPECT_EQ(sched.plan(4).shift, 1u);
  ASSERT_EQ(sched.plan(5).kind, RoundKind::kIncast);
  EXPECT_EQ(sched.plan(6).shift, 2u);
}

std::vector<LinkSample> full_matrix(std::size_t n, double rtt_us) {
  std::vector<LinkSample> links;
  for (NodeId s = 0; s < n; ++s)
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      LinkSample l;
      l.src = s;
      l.dst = d;
      l.echoes = 10;
      l.rtt_mean_us = rtt_us;
      l.rtt_max_us = rtt_us * 2;
      links.push_back(l);
    }
  return links;
}

TEST(LinkAnalysis, SlowReceiverInflatesEveryInboundLinkAndIsIsolated) {
  auto links = full_matrix(4, 10.0);
  for (LinkSample& l : links)
    if (l.dst == 2) l.rtt_mean_us = 200.0;  // every link INTO rank 2
  const LinkAnalysis a = analyze_links(links, 4.0);
  EXPECT_NEAR(a.median_rtt_us, 10.0, 1e-9);
  EXPECT_EQ(a.slow_links.size(), 3u);
  ASSERT_EQ(a.slow_ranks.size(), 1u);
  EXPECT_EQ(a.slow_ranks[0], 2u);
  EXPECT_TRUE(a.rank_is_slow(2));
  EXPECT_FALSE(a.rank_is_slow(0));
}

TEST(LinkAnalysis, OneSlowLinkBlamesTheLinkNotTheRank) {
  auto links = full_matrix(4, 10.0);
  for (LinkSample& l : links)
    if (l.src == 0 && l.dst == 2) l.rtt_mean_us = 500.0;
  const LinkAnalysis a = analyze_links(links, 4.0);
  ASSERT_EQ(a.slow_links.size(), 1u);
  EXPECT_EQ(a.slow_links[0].src, 0u);
  EXPECT_EQ(a.slow_links[0].dst, 2u);
  // One bad link of rank 2's three inbound links: a link problem, not a
  // rank problem.
  EXPECT_TRUE(a.slow_ranks.empty());
}

TEST(LinkAnalysis, LossIsolatesTheLossyRank) {
  auto links = full_matrix(5, 10.0);
  for (LinkSample& l : links)
    if (l.dst == 1) l.lost = 3;
  const LinkAnalysis a = analyze_links(links, 4.0);
  EXPECT_EQ(a.lossy_links.size(), 4u);
  ASSERT_EQ(a.lossy_ranks.size(), 1u);
  EXPECT_EQ(a.lossy_ranks[0], 1u);
  EXPECT_TRUE(a.rank_is_lossy(1));
  EXPECT_FALSE(a.rank_is_lossy(0));
  EXPECT_TRUE(a.slow_ranks.empty());
}

TEST(LinkStats, MetricKeysRoundTripThroughAReport) {
  std::map<std::string, double> metrics;
  metrics[link_metric_key(0, 2, "echoes")] = 12;
  metrics[link_metric_key(0, 2, "lost")] = 1;
  metrics[link_metric_key(0, 2, "rtt_mean_us")] = 42.5;
  metrics[link_metric_key(0, 2, "rtt_max_us")] = 99.0;
  metrics[link_metric_key(3, 1, "echoes")] = 7;
  metrics["bench.unrelated"] = 1.0;           // ignored
  metrics["san.link.bogus"] = 1.0;            // unparseable: ignored
  const auto links = links_from_metrics(metrics);
  ASSERT_EQ(links.size(), 2u);
  const LinkSample* l02 = nullptr;
  const LinkSample* l31 = nullptr;
  for (const LinkSample& l : links) {
    if (l.src == 0 && l.dst == 2) l02 = &l;
    if (l.src == 3 && l.dst == 1) l31 = &l;
  }
  ASSERT_NE(l02, nullptr);
  ASSERT_NE(l31, nullptr);
  EXPECT_EQ(l02->echoes, 12u);
  EXPECT_EQ(l02->lost, 1u);
  EXPECT_NEAR(l02->rtt_mean_us, 42.5, 1e-9);
  EXPECT_NEAR(l02->rtt_max_us, 99.0, 1e-9);
  EXPECT_EQ(l31->echoes, 7u);
}

TEST(ChaosScenario, SameSeedMaterializesTheSameSchedule) {
  hw::FaultParams storm;
  storm.drop_rate = 0.1;
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(make_kill_scenario(4, 8, seed), make_kill_scenario(4, 8, seed));
    EXPECT_EQ(make_slow_receiver_scenario(4, 8, seed, 500),
              make_slow_receiver_scenario(4, 8, seed, 500));
    EXPECT_EQ(make_packet_storm_scenario(4, 8, seed, storm),
              make_packet_storm_scenario(4, 8, seed, storm));
    EXPECT_EQ(make_fault_ramp_scenario(4, 8, seed, storm, 2),
              make_fault_ramp_scenario(4, 8, seed, storm, 2));
  }
}

TEST(ChaosScenario, SeedActuallySteersTheSchedule) {
  // Not a fixed schedule wearing a seed: across a handful of seeds the
  // kill placement must vary.
  const ChaosScenario base = make_kill_scenario(4, 12, 0);
  bool varied = false;
  for (std::uint64_t seed = 1; seed <= 16 && !varied; ++seed)
    varied = !(make_kill_scenario(4, 12, seed) == base);
  EXPECT_TRUE(varied);
}

TEST(ChaosScenario, KillPlacementIsMidCollective) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const std::size_t nodes = 4, rounds = 10;
    const ChaosScenario s = make_kill_scenario(nodes, rounds, seed);
    ASSERT_EQ(s.events.size(), 1u);
    const ChaosEvent& e = s.events[0];
    EXPECT_LT(e.victim, nodes);
    EXPECT_GE(e.round, 1u) << "kill before anyone exchanged anything";
    // Enough rounds remain for every survivor's shift schedule to reach
    // the victim and observe the death.
    EXPECT_LE(e.round, rounds - nodes + 1);
  }
}

TEST(ChaosScenario, DirectivesHitOnlyTheVictimAtTheScheduledRound) {
  ChaosScenario s;
  s.nodes = 4;
  s.rounds = 8;
  ChaosEvent kill;
  kill.kind = ChaosKind::kKillRank;
  kill.victim = 2;
  kill.round = 3;
  s.events.push_back(kill);
  ChaosEvent stall;
  stall.kind = ChaosKind::kSlowReceiver;
  stall.victim = 1;
  stall.round = 2;
  stall.duration = 3;
  stall.stall_us = 700;
  s.events.push_back(stall);
  for (std::size_t r = 0; r < 8; ++r) {
    for (NodeId self = 0; self < 4; ++self) {
      const ChaosDirective d = directive_for(s, self, r);
      EXPECT_EQ(d.kill_self, self == 2 && r == 3);
      EXPECT_EQ(d.stall_us, (self == 1 && r >= 2 && r < 5) ? 700u : 0u);
      EXPECT_FALSE(d.storm_active);
    }
  }
}

TEST(ChaosScenario, StormDirectiveCoversItsWindowForEveryRank) {
  hw::FaultParams storm;
  storm.drop_rate = 0.2;
  ChaosScenario s;
  s.nodes = 3;
  s.rounds = 8;
  ChaosEvent e;
  e.kind = ChaosKind::kPacketStorm;
  e.round = 2;
  e.duration = 3;
  e.faults = storm;
  s.events.push_back(e);
  for (NodeId self = 0; self < 3; ++self) {
    for (std::size_t r = 0; r < 8; ++r) {
      const ChaosDirective d = directive_for(s, self, r);
      EXPECT_EQ(d.storm_active, r >= 2 && r < 5) << "rank " << self;
      if (d.storm_active) {
        EXPECT_NEAR(d.faults.drop_rate, 0.2, 1e-12);
      }
    }
  }
}

TEST(ChaosScenario, FaultRampEscalatesAndEndsBeforeTheFinalRound) {
  hw::FaultParams peak;
  peak.drop_rate = 0.3;
  peak.corrupt_rate = 0.06;
  const ChaosScenario s = make_fault_ramp_scenario(4, 16, 7, peak, 3);
  ASSERT_EQ(s.events.size(), 3u);
  double last_rate = 0;
  for (const ChaosEvent& e : s.events) {
    EXPECT_GT(e.faults.drop_rate, last_rate);  // staircase goes up
    last_rate = e.faults.drop_rate;
    EXPECT_LT(e.round + e.duration, 16u) << "no calm tail to recover in";
  }
  EXPECT_NEAR(s.events.back().faults.drop_rate, 0.3, 1e-12);
  EXPECT_NEAR(s.events.back().faults.corrupt_rate, 0.06, 1e-12);
}

TEST(ChaosScenario, DescribeNamesTheChaos) {
  const ChaosScenario s = make_kill_scenario(4, 8, 99);
  const std::string d = describe(s);
  EXPECT_NE(d.find("kill rank"), std::string::npos);
  EXPECT_NE(d.find("seed=99"), std::string::npos);
}

TEST(SanSeed, EnvOverridesAndIsRecordedForReplay) {
  ASSERT_EQ(setenv("FM_SAN_SEED", "12345", 1), 0);
  EXPECT_EQ(effective_seed(7), 12345u);
  std::uint64_t recorded = 0;
  ASSERT_TRUE(obs::run_seed(&recorded));  // the dump/failure path reads this
  EXPECT_EQ(recorded, 12345u);

  ASSERT_EQ(setenv("FM_SAN_SEED", "0x20", 1), 0);  // base-0: hex accepted
  EXPECT_EQ(effective_seed(7), 0x20u);

  // Garbage no longer silently falls back to the time-derived seed (which
  // made "reproduce with this seed" lie): it is a fatal knob error.
  ASSERT_EQ(setenv("FM_SAN_SEED", "zebra", 1), 0);
  EXPECT_DEATH((void)effective_seed(7), "FM_SAN_SEED");

  ASSERT_EQ(unsetenv("FM_SAN_SEED"), 0);
  EXPECT_EQ(effective_seed(7), 7u);
  ASSERT_TRUE(obs::run_seed(&recorded));
  EXPECT_EQ(recorded, 7u);
}

TEST(DetectionHorizon, SumsTheCappedBackoffSchedule) {
  // 1ms base, 5 retries: 1 + 2 + 4 + 8 + 16 + 32 = 63 ms of silence before
  // the peer is declared dead.
  EXPECT_EQ(RetransmitTimer::detection_horizon_ns(1'000'000, 5),
            63'000'000u);
  // Beyond the shift cap the per-try timeout pins at base << 6.
  EXPECT_EQ(RetransmitTimer::detection_horizon_ns(1'000'000, 7),
            (63 + 64 + 64) * 1'000'000u);
}

}  // namespace
}  // namespace fm::san
