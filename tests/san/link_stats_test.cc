// san::analyze_links unit coverage on degenerate matrices — the shapes a
// real soak produces at the edges (single rank, uniform cluster, a link
// that never completed a round trip), previously exercised only through
// full soaks where a misattribution would read as flakiness.
#include "san/link_stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace fm::san {
namespace {

LinkSample link(NodeId src, NodeId dst, std::uint64_t echoes,
                std::uint64_t lost, double rtt_mean_us) {
  LinkSample l;
  l.src = src;
  l.dst = dst;
  l.echoes = echoes;
  l.lost = lost;
  l.rtt_mean_us = rtt_mean_us;
  l.rtt_max_us = rtt_mean_us;
  return l;
}

TEST(AnalyzeLinks, EmptyMatrixFlagsNothing) {
  // A 1-rank cluster has no directed links at all: the analysis must come
  // back clean (median 0) rather than divide by an empty set.
  const LinkAnalysis a = analyze_links({});
  EXPECT_EQ(a.median_rtt_us, 0.0);
  EXPECT_TRUE(a.slow_links.empty());
  EXPECT_TRUE(a.lossy_links.empty());
  EXPECT_TRUE(a.slow_ranks.empty());
  EXPECT_TRUE(a.lossy_ranks.empty());
}

TEST(AnalyzeLinks, AllIdenticalRttsFlagNoOutlier) {
  // Uniform cluster: every mean equals the median, so nothing exceeds
  // factor x median — regardless of the absolute RTT level.
  std::vector<LinkSample> m;
  for (NodeId s = 0; s < 4; ++s)
    for (NodeId d = 0; d < 4; ++d)
      if (s != d) m.push_back(link(s, d, 100, 0, 250.0));
  const LinkAnalysis a = analyze_links(m);
  EXPECT_DOUBLE_EQ(a.median_rtt_us, 250.0);
  EXPECT_TRUE(a.slow_links.empty());
  EXPECT_TRUE(a.slow_ranks.empty());
  EXPECT_TRUE(a.lossy_links.empty());
}

TEST(AnalyzeLinks, ZeroEchoLinkNeverEntersTheMedianOrSlowSet) {
  // A link with zero completed samples has rtt_mean_us == 0 (nothing was
  // measured). It must neither drag the median down nor be flagged slow —
  // but its losses still count as lossy.
  std::vector<LinkSample> m = {
      link(0, 1, 50, 0, 100.0),
      link(1, 0, 50, 0, 100.0),
      link(0, 2, 0, 10, 0.0),  // never completed a round trip
      link(2, 0, 50, 0, 100.0),
      link(1, 2, 50, 0, 100.0),
      link(2, 1, 50, 0, 100.0),
  };
  const LinkAnalysis a = analyze_links(m);
  // Median over MEASURED links only: 100, not dragged toward 0.
  EXPECT_DOUBLE_EQ(a.median_rtt_us, 100.0);
  EXPECT_TRUE(a.slow_links.empty());
  ASSERT_EQ(a.lossy_links.size(), 1u);
  EXPECT_EQ(a.lossy_links[0].src, 0u);
  EXPECT_EQ(a.lossy_links[0].dst, 2u);
  // Rank 2 has two measured inbound links (0->2 counts: echoes+lost > 0),
  // one flagged -> half -> isolated as lossy.
  EXPECT_TRUE(a.rank_is_lossy(2));
  EXPECT_FALSE(a.rank_is_slow(2));
}

TEST(AnalyzeLinks, SingleMeasuredLinkIsItsOwnMedian) {
  // Degenerate 2-rank matrix where only one direction completed: the lone
  // mean IS the median, so it cannot be 4x itself — no self-flagging.
  std::vector<LinkSample> m = {
      link(0, 1, 10, 0, 4000.0),
      link(1, 0, 0, 0, 0.0),  // no traffic at all
  };
  const LinkAnalysis a = analyze_links(m);
  EXPECT_DOUBLE_EQ(a.median_rtt_us, 4000.0);
  EXPECT_TRUE(a.slow_links.empty());
  EXPECT_TRUE(a.lossy_links.empty());
}

TEST(AnalyzeLinks, AllZeroEchoMatrixYieldsZeroMedianAndNoSlowLinks) {
  // Every link lost everything (total partition): median stays 0 and the
  // slow-link rule must not fire on the 0-means; every link is lossy and
  // every rank is isolated.
  std::vector<LinkSample> m = {
      link(0, 1, 0, 5, 0.0),
      link(1, 0, 0, 5, 0.0),
  };
  const LinkAnalysis a = analyze_links(m);
  EXPECT_EQ(a.median_rtt_us, 0.0);
  EXPECT_TRUE(a.slow_links.empty());
  EXPECT_EQ(a.lossy_links.size(), 2u);
  EXPECT_TRUE(a.rank_is_lossy(0));
  EXPECT_TRUE(a.rank_is_lossy(1));
}

TEST(AnalyzeLinks, OneSlowReceiverIsIsolatedOneSlowLinkIsNot) {
  // Contrast case guarding the isolation threshold at the degenerate edge:
  // every link into rank 3 is slow -> rank 3 isolated; only one link into
  // rank 1 slow (of three measured) -> rank 1 not isolated.
  std::vector<LinkSample> m;
  for (NodeId s = 0; s < 4; ++s)
    for (NodeId d = 0; d < 4; ++d) {
      if (s == d) continue;
      double rtt = 100.0;
      if (d == 3) rtt = 900.0;            // slow receiver
      if (s == 3 && d == 1) rtt = 900.0;  // one noisy path
      m.push_back(link(s, d, 100, 0, rtt));
    }
  const LinkAnalysis a = analyze_links(m);
  EXPECT_DOUBLE_EQ(a.median_rtt_us, 100.0);
  EXPECT_EQ(a.slow_links.size(), 4u);  // 3 into rank 3 + 1 into rank 1
  EXPECT_TRUE(a.rank_is_slow(3));
  EXPECT_FALSE(a.rank_is_slow(1));
}

}  // namespace
}  // namespace fm::san
