#include "fm/protocol.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fm {
namespace {

TEST(SendWindow, TracksAndAcks) {
  SendWindow w(4);
  EXPECT_FALSE(w.full());
  auto s1 = w.next_seq(1);
  auto s2 = w.next_seq(2);
  // Sequences are per destination: both peers see a stream starting at 1.
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 1u);
  const std::uint8_t f1[] = {1, 2, 3};
  const std::uint8_t f2[] = {4, 5};
  w.track(1, s1, f1, sizeof f1);
  w.track(2, s2, f2, sizeof f2);
  EXPECT_EQ(w.in_flight(), 2u);
  EXPECT_TRUE(w.ack(1, s1));
  EXPECT_FALSE(w.ack(1, s1));  // duplicate ack is harmless
  EXPECT_EQ(w.in_flight(), 1u);
  ASSERT_NE(w.find(2, s2).data, nullptr);
  EXPECT_EQ(w.find(2, s2).len, 2u);
  EXPECT_EQ(w.find(2, s2).data[0], 4);
  EXPECT_EQ(w.find(1, s1).data, nullptr);
}

TEST(SendWindow, PerDestinationSequencesAreDense) {
  SendWindow w(8);
  EXPECT_EQ(w.next_seq(5), 1u);
  EXPECT_EQ(w.next_seq(9), 1u);
  EXPECT_EQ(w.next_seq(5), 2u);
  EXPECT_EQ(w.next_seq(5), 3u);
  EXPECT_EQ(w.next_seq(9), 2u);
}

TEST(SendWindow, DropDestFreesOnlyThatPeer) {
  SendWindow w(8);
  const std::uint8_t b1 = 1, b2 = 2, b3 = 3;
  w.track(1, w.next_seq(1), &b1, 1);
  w.track(1, w.next_seq(1), &b2, 1);
  w.track(2, w.next_seq(2), &b3, 1);
  EXPECT_EQ(w.drop_dest(1), 2u);
  EXPECT_EQ(w.in_flight(), 1u);
  ASSERT_NE(w.find(2, 1).data, nullptr);
}

TEST(SendWindow, FullGatesInjection) {
  SendWindow w(2);
  w.track(0, w.next_seq(0), nullptr, 0);
  w.track(0, w.next_seq(0), nullptr, 0);
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.space(), 0u);
}

TEST(SendWindowDeathTest, OverflowAborts) {
  SendWindow w(1);
  w.track(0, w.next_seq(0), nullptr, 0);
  EXPECT_DEATH(w.track(0, w.next_seq(0), nullptr, 0), "overflow");
}

TEST(RetransmitTimer, FiresAfterDeadlineWithBackoff) {
  RetransmitTimer t(100, 3);
  t.arm(1, 7, 1000);
  EXPECT_EQ(t.armed(), 1u);
  EXPECT_TRUE(t.expired(1099).empty());  // deadline is now + 100
  auto due = t.expired(1100);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].dest, 1u);
  EXPECT_EQ(due[0].seq, 7u);
  EXPECT_EQ(due[0].retries, 1u);
  EXPECT_FALSE(due[0].exhausted);
  // Re-armed with exponential backoff: next deadline 1100 + 100*2.
  EXPECT_TRUE(t.expired(1299).empty());
  EXPECT_EQ(t.expired(1300).size(), 1u);
}

TEST(RetransmitTimer, ExhaustsAfterMaxRetries) {
  RetransmitTimer t(10, 2);
  t.arm(3, 1, 0);
  std::uint64_t now = 0;
  std::size_t fired = 0;
  bool exhausted = false;
  // March time far enough forward each step to beat any backoff.
  for (int i = 0; i < 10 && !exhausted; ++i) {
    now += 100000;
    for (const auto& d : t.expired(now)) {
      ++fired;
      exhausted = d.exhausted;
    }
  }
  EXPECT_TRUE(exhausted);
  EXPECT_EQ(fired, 3u);  // 2 retries + the exhausted report
  EXPECT_EQ(t.armed(), 0u);  // exhausted entry forgotten
}

TEST(RetransmitTimer, DisarmCancelsAndRearmResetsRetries) {
  RetransmitTimer t(10, 2);
  t.arm(1, 1, 0);
  t.arm(1, 2, 0);
  t.arm(2, 1, 0);
  t.disarm(1, 1);
  EXPECT_EQ(t.armed(), 2u);
  t.disarm_all(1);
  EXPECT_EQ(t.armed(), 1u);
  // Burn a retry, then re-arm: the retry count starts over.
  EXPECT_EQ(t.expired(100).size(), 1u);
  t.arm(2, 1, 100);
  auto due = t.expired(100000);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].retries, 1u);
}

TEST(DedupFilter, ExactMembershipInAnyOrder) {
  DedupFilter d;
  EXPECT_FALSE(d.seen(1, 1));
  d.mark(1, 1);
  EXPECT_TRUE(d.seen(1, 1));
  // Out-of-order acceptance: 3 before 2.
  d.mark(1, 3);
  EXPECT_TRUE(d.seen(1, 3));
  EXPECT_FALSE(d.seen(1, 2));
  d.mark(1, 2);
  EXPECT_TRUE(d.seen(1, 2));
  // The gap filled, so the cutoff advanced and the ahead-set drained.
  EXPECT_EQ(d.pending_gaps(1), 0u);
  // Peers are independent.
  EXPECT_FALSE(d.seen(2, 1));
}

TEST(DedupFilter, CutoffStaysExactOverLongStream) {
  DedupFilter d;
  Xoshiro256 rng(123);
  std::vector<std::uint32_t> seqs(500);
  for (std::uint32_t i = 0; i < 500; ++i) seqs[i] = i + 1;
  for (std::size_t i = 500; i > 1; --i)
    std::swap(seqs[i - 1], seqs[rng.below(i)]);
  for (auto s : seqs) {
    EXPECT_FALSE(d.seen(4, s));
    d.mark(4, s);
    EXPECT_TRUE(d.seen(4, s));
  }
  EXPECT_EQ(d.pending_gaps(4), 0u);
  EXPECT_FALSE(d.seen(4, 501));
  d.forget(4);
  EXPECT_FALSE(d.seen(4, 1));
}

TEST(RejectQueue, IgnoresAlreadyParkedSeq) {
  RejectQueue q;
  q.add(1, 100, {1});
  q.add(1, 100, {1});  // a timeout copy bounced too — parked only once
  q.add(1, 101, {2});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.drop_dest(1), 2u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(AckTracker, AccumulatesAndTakes) {
  AckTracker t;
  t.note(1, 10);
  t.note(1, 11);
  t.note(2, 20);
  EXPECT_EQ(t.due(1), 2u);
  EXPECT_EQ(t.due(2), 1u);
  EXPECT_EQ(t.total_due(), 3u);
  auto taken = t.take(1, 1);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0], 10u);  // oldest first
  EXPECT_EQ(t.due(1), 1u);
  EXPECT_TRUE(t.take(3, 5).empty());
}

TEST(AckTracker, PeersOverThreshold) {
  AckTracker t;
  for (int i = 0; i < 5; ++i) t.note(7, i);
  t.note(8, 1);
  auto over = t.peers_over(3);
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], 7u);
  EXPECT_EQ(t.peers().size(), 2u);
}

FrameHeader frag_header(std::uint32_t msg, std::uint16_t idx,
                        std::uint16_t count, std::uint16_t len) {
  FrameHeader h;
  h.flags = FrameHeader::kFlagFragmented;
  h.msg_id = msg;
  h.frag_index = idx;
  h.frag_count = count;
  h.payload_len = len;
  return h;
}

TEST(Reassembler, AssemblesInOrder) {
  Reassembler r(4);
  std::uint8_t a[4] = {1, 2, 3, 4}, b[4] = {5, 6, 7, 8};
  std::vector<std::uint8_t> out;
  EXPECT_EQ(r.feed(0, frag_header(1, 0, 2, 4), a, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.active(), 1u);
  EXPECT_EQ(r.feed(0, frag_header(1, 1, 2, 4), b, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(r.active(), 0u);
}

TEST(Reassembler, AssemblesOutOfOrder) {
  Reassembler r(4);
  std::uint8_t a[2] = {1, 2}, b[2] = {3, 4}, c[1] = {5};
  std::vector<std::uint8_t> out;
  EXPECT_EQ(r.feed(3, frag_header(9, 2, 3, 1), c, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(3, frag_header(9, 0, 3, 2), a, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(3, frag_header(9, 1, 3, 2), b, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Reassembler, InterleavedSourcesAndMessages) {
  Reassembler r(4);
  std::vector<std::uint8_t> out;
  std::uint8_t x[1] = {0xA}, y[1] = {0xB};
  EXPECT_EQ(r.feed(0, frag_header(1, 0, 2, 1), x, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(1, frag_header(1, 0, 2, 1), y, &out),
            Reassembler::Feed::kAccepted);  // same msg_id, different source
  EXPECT_EQ(r.active(), 2u);
  EXPECT_EQ(r.feed(1, frag_header(1, 1, 2, 1), y, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xB, 0xB}));
  EXPECT_EQ(r.feed(0, frag_header(1, 1, 2, 1), x, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xA, 0xA}));
}

TEST(Reassembler, RejectsWhenPoolExhausted) {
  Reassembler r(2);
  std::vector<std::uint8_t> out;
  std::uint8_t p[1] = {0};
  EXPECT_EQ(r.feed(0, frag_header(1, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(0, frag_header(2, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
  // Third concurrent reassembly: no slot — return-to-sender fires.
  EXPECT_EQ(r.feed(0, frag_header(3, 0, 2, 1), p, &out),
            Reassembler::Feed::kRejected);
  // Fragments of ACTIVE reassemblies are still accepted.
  EXPECT_EQ(r.feed(0, frag_header(1, 1, 2, 1), p, &out),
            Reassembler::Feed::kComplete);
  // A slot freed: the rejected message can now be accepted on retry.
  EXPECT_EQ(r.feed(0, frag_header(3, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
}

TEST(Reassembler, RandomizedFragmentOrderProperty) {
  Xoshiro256 rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    Reassembler r(8);
    std::size_t total = rng.between(1, 2000);
    std::size_t per = rng.between(1, 128);
    std::size_t frags = (total + per - 1) / per;
    if (frags > 0xffff) continue;
    std::vector<std::uint8_t> message(total);
    for (auto& b : message) b = static_cast<std::uint8_t>(rng());
    std::vector<std::size_t> order(frags);
    for (std::size_t i = 0; i < frags; ++i) order[i] = i;
    for (std::size_t i = frags; i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    std::vector<std::uint8_t> out;
    bool completed = false;
    for (std::size_t k = 0; k < frags; ++k) {
      std::size_t i = order[k];
      std::size_t off = i * per;
      std::size_t n = std::min(per, total - off);
      auto h = frag_header(42, static_cast<std::uint16_t>(i),
                           static_cast<std::uint16_t>(frags),
                           static_cast<std::uint16_t>(n));
      auto res = r.feed(1, h, message.data() + off, &out);
      if (k + 1 < frags) {
        ASSERT_EQ(res, Reassembler::Feed::kAccepted);
      } else {
        ASSERT_EQ(res, Reassembler::Feed::kComplete);
        completed = true;
      }
    }
    ASSERT_TRUE(completed);
    EXPECT_EQ(out, message);
  }
}

TEST(Reassembler, ExpiresAbandonedSlots) {
  Reassembler r(2);
  std::vector<std::uint8_t> out;
  std::uint8_t p[1] = {0};
  // Two half-assembled messages fed at t=1000 and t=5000.
  EXPECT_EQ(r.feed(0, frag_header(1, 0, 2, 1), p, &out, 1000),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(0, frag_header(2, 0, 2, 1), p, &out, 5000),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.active(), 2u);
  // Expiry frees only the stale one; the fresh slot survives and the pool
  // can accept new work again (the slot-leak regression).
  EXPECT_EQ(r.expire_older_than(2000), 1u);
  EXPECT_EQ(r.active(), 1u);
  EXPECT_EQ(r.feed(0, frag_header(3, 0, 2, 1), p, &out, 6000),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(0, frag_header(2, 1, 2, 1), p, &out, 6000),
            Reassembler::Feed::kComplete);
}

TEST(Reassembler, SlotLeakRecoveredByExpiry) {
  // Regression: a peer that starts a fragmented message and never finishes
  // it must not pin receive-pool slots forever. Without expiry the pool
  // rejects everything once poisoned; expiry reclaims it.
  Reassembler r(2);
  std::vector<std::uint8_t> out;
  std::uint8_t p[1] = {0};
  EXPECT_EQ(r.feed(7, frag_header(1, 0, 2, 1), p, &out, 10),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(7, frag_header(2, 0, 2, 1), p, &out, 10),
            Reassembler::Feed::kAccepted);
  // Pool poisoned: new messages bounce indefinitely.
  EXPECT_EQ(r.feed(8, frag_header(3, 0, 2, 1), p, &out, 20),
            Reassembler::Feed::kRejected);
  EXPECT_EQ(r.feed(8, frag_header(3, 0, 2, 1), p, &out, 30),
            Reassembler::Feed::kRejected);
  EXPECT_EQ(r.expire_older_than(100), 2u);
  EXPECT_EQ(r.feed(8, frag_header(3, 0, 2, 1), p, &out, 110),
            Reassembler::Feed::kAccepted);
}

TEST(Reassembler, AbortDropsOneSourceOnly) {
  Reassembler r(4);
  std::vector<std::uint8_t> out;
  std::uint8_t p[1] = {9};
  EXPECT_EQ(r.feed(1, frag_header(1, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(1, frag_header(2, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(2, frag_header(1, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.abort(1), 2u);
  EXPECT_EQ(r.active(), 1u);
  EXPECT_EQ(r.feed(2, frag_header(1, 1, 2, 1), p, &out),
            Reassembler::Feed::kComplete);
}

TEST(RejectQueue, BackoffAging) {
  RejectQueue q;
  q.add(1, 100, {1});
  q.add(2, 101, {2});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.tick(2).empty());  // age 1 < 2
  auto ready = q.tick(2);          // age 2 == 2
  EXPECT_EQ(ready.size(), 2u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(ready[0].dest, 1u);
  EXPECT_EQ(ready[0].seq, 100u);
}

TEST(RejectQueue, ImmediateRetryWithDelayOne) {
  RejectQueue q;
  q.add(3, 7, {});
  auto ready = q.tick(1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].dest, 3u);
}

}  // namespace
}  // namespace fm
