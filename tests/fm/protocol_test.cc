#include "fm/protocol.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fm {
namespace {

TEST(SendWindow, TracksAndAcks) {
  SendWindow w(4);
  EXPECT_FALSE(w.full());
  auto s1 = w.next_seq();
  auto s2 = w.next_seq();
  EXPECT_NE(s1, s2);
  w.track(s1, 1, {1, 2, 3});
  w.track(s2, 2, {4, 5});
  EXPECT_EQ(w.in_flight(), 2u);
  EXPECT_TRUE(w.ack(s1));
  EXPECT_FALSE(w.ack(s1));  // duplicate ack is harmless
  EXPECT_EQ(w.in_flight(), 1u);
  ASSERT_NE(w.find(s2), nullptr);
  EXPECT_EQ(w.find(s2)->size(), 2u);
  EXPECT_EQ(w.find(s1), nullptr);
  EXPECT_EQ(*w.dest_of(s2), 2u);
}

TEST(SendWindow, FullGatesInjection) {
  SendWindow w(2);
  w.track(w.next_seq(), 0, {});
  w.track(w.next_seq(), 0, {});
  EXPECT_TRUE(w.full());
  EXPECT_EQ(w.space(), 0u);
}

TEST(SendWindowDeathTest, OverflowAborts) {
  SendWindow w(1);
  w.track(w.next_seq(), 0, {});
  EXPECT_DEATH(w.track(w.next_seq(), 0, {}), "overflow");
}

TEST(AckTracker, AccumulatesAndTakes) {
  AckTracker t;
  t.note(1, 10);
  t.note(1, 11);
  t.note(2, 20);
  EXPECT_EQ(t.due(1), 2u);
  EXPECT_EQ(t.due(2), 1u);
  EXPECT_EQ(t.total_due(), 3u);
  auto taken = t.take(1, 1);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0], 10u);  // oldest first
  EXPECT_EQ(t.due(1), 1u);
  EXPECT_TRUE(t.take(3, 5).empty());
}

TEST(AckTracker, PeersOverThreshold) {
  AckTracker t;
  for (int i = 0; i < 5; ++i) t.note(7, i);
  t.note(8, 1);
  auto over = t.peers_over(3);
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], 7u);
  EXPECT_EQ(t.peers().size(), 2u);
}

FrameHeader frag_header(std::uint32_t msg, std::uint16_t idx,
                        std::uint16_t count, std::uint16_t len) {
  FrameHeader h;
  h.flags = FrameHeader::kFlagFragmented;
  h.msg_id = msg;
  h.frag_index = idx;
  h.frag_count = count;
  h.payload_len = len;
  return h;
}

TEST(Reassembler, AssemblesInOrder) {
  Reassembler r(4);
  std::uint8_t a[4] = {1, 2, 3, 4}, b[4] = {5, 6, 7, 8};
  std::vector<std::uint8_t> out;
  EXPECT_EQ(r.feed(0, frag_header(1, 0, 2, 4), a, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.active(), 1u);
  EXPECT_EQ(r.feed(0, frag_header(1, 1, 2, 4), b, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(r.active(), 0u);
}

TEST(Reassembler, AssemblesOutOfOrder) {
  Reassembler r(4);
  std::uint8_t a[2] = {1, 2}, b[2] = {3, 4}, c[1] = {5};
  std::vector<std::uint8_t> out;
  EXPECT_EQ(r.feed(3, frag_header(9, 2, 3, 1), c, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(3, frag_header(9, 0, 3, 2), a, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(3, frag_header(9, 1, 3, 2), b, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Reassembler, InterleavedSourcesAndMessages) {
  Reassembler r(4);
  std::vector<std::uint8_t> out;
  std::uint8_t x[1] = {0xA}, y[1] = {0xB};
  EXPECT_EQ(r.feed(0, frag_header(1, 0, 2, 1), x, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(1, frag_header(1, 0, 2, 1), y, &out),
            Reassembler::Feed::kAccepted);  // same msg_id, different source
  EXPECT_EQ(r.active(), 2u);
  EXPECT_EQ(r.feed(1, frag_header(1, 1, 2, 1), y, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xB, 0xB}));
  EXPECT_EQ(r.feed(0, frag_header(1, 1, 2, 1), x, &out),
            Reassembler::Feed::kComplete);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xA, 0xA}));
}

TEST(Reassembler, RejectsWhenPoolExhausted) {
  Reassembler r(2);
  std::vector<std::uint8_t> out;
  std::uint8_t p[1] = {0};
  EXPECT_EQ(r.feed(0, frag_header(1, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
  EXPECT_EQ(r.feed(0, frag_header(2, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
  // Third concurrent reassembly: no slot — return-to-sender fires.
  EXPECT_EQ(r.feed(0, frag_header(3, 0, 2, 1), p, &out),
            Reassembler::Feed::kRejected);
  // Fragments of ACTIVE reassemblies are still accepted.
  EXPECT_EQ(r.feed(0, frag_header(1, 1, 2, 1), p, &out),
            Reassembler::Feed::kComplete);
  // A slot freed: the rejected message can now be accepted on retry.
  EXPECT_EQ(r.feed(0, frag_header(3, 0, 2, 1), p, &out),
            Reassembler::Feed::kAccepted);
}

TEST(Reassembler, RandomizedFragmentOrderProperty) {
  Xoshiro256 rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    Reassembler r(8);
    std::size_t total = rng.between(1, 2000);
    std::size_t per = rng.between(1, 128);
    std::size_t frags = (total + per - 1) / per;
    if (frags > 0xffff) continue;
    std::vector<std::uint8_t> message(total);
    for (auto& b : message) b = static_cast<std::uint8_t>(rng());
    std::vector<std::size_t> order(frags);
    for (std::size_t i = 0; i < frags; ++i) order[i] = i;
    for (std::size_t i = frags; i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);
    std::vector<std::uint8_t> out;
    bool completed = false;
    for (std::size_t k = 0; k < frags; ++k) {
      std::size_t i = order[k];
      std::size_t off = i * per;
      std::size_t n = std::min(per, total - off);
      auto h = frag_header(42, static_cast<std::uint16_t>(i),
                           static_cast<std::uint16_t>(frags),
                           static_cast<std::uint16_t>(n));
      auto res = r.feed(1, h, message.data() + off, &out);
      if (k + 1 < frags) {
        ASSERT_EQ(res, Reassembler::Feed::kAccepted);
      } else {
        ASSERT_EQ(res, Reassembler::Feed::kComplete);
        completed = true;
      }
    }
    ASSERT_TRUE(completed);
    EXPECT_EQ(out, message);
  }
}

TEST(RejectQueue, BackoffAging) {
  RejectQueue q;
  q.add(1, 100, {1});
  q.add(2, 101, {2});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.tick(2).empty());  // age 1 < 2
  auto ready = q.tick(2);          // age 2 == 2
  EXPECT_EQ(ready.size(), 2u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(ready[0].dest, 1u);
  EXPECT_EQ(ready[0].seq, 100u);
}

TEST(RejectQueue, ImmediateRetryWithDelayOne) {
  RejectQueue q;
  q.add(3, 7, {});
  auto ready = q.tick(1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].dest, 3u);
}

}  // namespace
}  // namespace fm
