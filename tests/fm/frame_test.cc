#include "fm/frame.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fm {
namespace {

TEST(Frame, HeaderIs16Bytes) {
  FrameHeader h;
  EXPECT_EQ(h.header_bytes(), 16u);
  EXPECT_EQ(h.wire_bytes(), 16u);
  h.flags |= FrameHeader::kFlagFragmented;
  EXPECT_EQ(h.header_bytes(), 24u);
}

TEST(Frame, EncodeDecodeRoundTripPlain) {
  FrameHeader h;
  h.type = FrameType::kData;
  h.handler = 7;
  h.src = 3;
  h.seq = 12345;
  std::uint8_t payload[40];
  for (int i = 0; i < 40; ++i) payload[i] = static_cast<std::uint8_t>(i * 3);
  h.payload_len = 40;
  auto bytes = encode_frame(h, payload, nullptr);
  EXPECT_EQ(bytes.size(), 56u);
  auto d = decode_header(bytes.data(), bytes.size());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, FrameType::kData);
  EXPECT_EQ(d->handler, 7);
  EXPECT_EQ(d->src, 3u);
  EXPECT_EQ(d->seq, 12345u);
  EXPECT_EQ(d->payload_len, 40);
  EXPECT_FALSE(d->fragmented());
  const std::uint8_t* p = frame_payload(*d, bytes.data());
  for (int i = 0; i < 40; ++i) EXPECT_EQ(p[i], payload[i]);
}

TEST(Frame, EncodeDecodeWithAcksAndFragments) {
  FrameHeader h;
  h.type = FrameType::kData;
  h.handler = 2;
  h.src = 1;
  h.seq = 99;
  h.flags = FrameHeader::kFlagFragmented;
  h.msg_id = 0xdeadbeef;
  h.frag_index = 3;
  h.frag_count = 9;
  std::uint8_t payload[16] = {1, 2, 3};
  h.payload_len = 16;
  std::uint32_t acks[3] = {10, 11, 12};
  h.ack_count = 3;
  auto bytes = encode_frame(h, payload, acks);
  EXPECT_EQ(bytes.size(), 24u + 16 + 12);
  auto d = decode_header(bytes.data(), bytes.size());
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->fragmented());
  EXPECT_EQ(d->msg_id, 0xdeadbeefu);
  EXPECT_EQ(d->frag_index, 3);
  EXPECT_EQ(d->frag_count, 9);
  EXPECT_EQ(d->ack_count, 3);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(frame_ack(*d, bytes.data(), i), acks[i]);
}

TEST(Frame, StandaloneAckFrame) {
  FrameHeader h;
  h.type = FrameType::kAck;
  h.src = 5;
  std::uint32_t acks[5] = {1, 2, 3, 4, 5};
  h.ack_count = 5;
  auto bytes = encode_frame(h, nullptr, acks);
  auto d = decode_header(bytes.data(), bytes.size());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, FrameType::kAck);
  EXPECT_EQ(d->payload_len, 0);
  EXPECT_EQ(frame_ack(*d, bytes.data(), 4), 5u);
}

TEST(Frame, DecodeRejectsMalformedBuffers) {
  FrameHeader h;
  h.payload_len = 8;
  std::uint8_t payload[8] = {};
  auto bytes = encode_frame(h, payload, nullptr);
  // Truncated.
  EXPECT_FALSE(decode_header(bytes.data(), bytes.size() - 1).has_value());
  // Too short for a header at all.
  EXPECT_FALSE(decode_header(bytes.data(), 4).has_value());
  // Bad type byte.
  auto bad = bytes;
  bad[0] = 0x7f;
  EXPECT_FALSE(decode_header(bad.data(), bad.size()).has_value());
  // Length mismatch (extra trailing byte).
  auto longer = bytes;
  longer.push_back(0);
  EXPECT_FALSE(decode_header(longer.data(), longer.size()).has_value());
}

TEST(Frame, CrcTrailerRoundTrip) {
  FrameHeader h;
  h.type = FrameType::kData;
  h.handler = 4;
  h.src = 2;
  h.seq = 17;
  h.flags |= FrameHeader::kFlagCrc;
  std::uint8_t payload[32];
  for (int i = 0; i < 32; ++i) payload[i] = static_cast<std::uint8_t>(i);
  h.payload_len = 32;
  auto bytes = encode_frame(h, payload, nullptr);
  EXPECT_EQ(bytes.size(), 16u + 32 + FrameHeader::kCrcBytes);
  auto d = decode_header(bytes.data(), bytes.size());
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->has_crc());
  EXPECT_EQ(d->wire_bytes(), bytes.size());
  EXPECT_TRUE(frame_crc_ok(*d, bytes.data()));
  // Without the flag there is no trailer and nothing to verify.
  FrameHeader plain = h;
  plain.flags &= static_cast<std::uint16_t>(~FrameHeader::kFlagCrc);
  auto plain_bytes = encode_frame(plain, payload, nullptr);
  auto pd = decode_header(plain_bytes.data(), plain_bytes.size());
  ASSERT_TRUE(pd.has_value());
  EXPECT_TRUE(frame_crc_ok(*pd, plain_bytes.data()));
}

TEST(Frame, CrcCatchesEverySingleBitFlip) {
  FrameHeader h;
  h.type = FrameType::kData;
  h.handler = 1;
  h.src = 0;
  h.seq = 5;
  h.flags |= FrameHeader::kFlagCrc | FrameHeader::kFlagFragmented;
  h.msg_id = 3;
  h.frag_index = 0;
  h.frag_count = 2;
  std::uint8_t payload[48] = {};
  h.payload_len = 48;
  std::uint32_t acks[2] = {7, 8};
  h.ack_count = 2;
  auto base = encode_frame(h, payload, acks);
  ASSERT_TRUE(frame_crc_ok(*decode_header(base.data(), base.size()),
                           base.data()));
  // Exhaustive: flip each bit of the frame in turn. Every flip must be
  // detected — either the header no longer decodes, or the CRC fails.
  // (This is the single-bit-error model of hw::FaultInjector.)
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = base;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      auto d = decode_header(flipped.data(), flipped.size());
      if (d.has_value() && d->wire_bytes() == flipped.size()) {
        EXPECT_FALSE(frame_crc_ok(*d, flipped.data()))
            << "undetected flip at byte " << byte << " bit " << bit;
      }
    }
  }
}

class FrameFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FrameFuzzTest, RandomRoundTrips) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    FrameHeader h;
    h.type = static_cast<FrameType>(rng.between(1, 3));
    h.handler = static_cast<HandlerId>(rng.below(1000));
    h.src = static_cast<NodeId>(rng.below(8));
    h.seq = static_cast<std::uint32_t>(rng());
    std::vector<std::uint8_t> payload(rng.below(600));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    h.payload_len = static_cast<std::uint16_t>(payload.size());
    std::vector<std::uint32_t> acks(rng.below(5));
    for (auto& a : acks) a = static_cast<std::uint32_t>(rng());
    h.ack_count = static_cast<std::uint8_t>(acks.size());
    if (rng.chance(0.3)) {
      h.flags |= FrameHeader::kFlagFragmented;
      h.msg_id = static_cast<std::uint32_t>(rng());
      h.frag_count = static_cast<std::uint16_t>(rng.between(1, 64));
      h.frag_index = static_cast<std::uint16_t>(rng.below(h.frag_count));
    }
    auto bytes = encode_frame(h, payload.empty() ? nullptr : payload.data(),
                              acks.empty() ? nullptr : acks.data());
    auto d = decode_header(bytes.data(), bytes.size());
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->seq, h.seq);
    EXPECT_EQ(d->payload_len, h.payload_len);
    EXPECT_EQ(d->ack_count, h.ack_count);
    EXPECT_EQ(d->fragmented(), h.fragmented());
    if (!payload.empty()) {
      EXPECT_EQ(0, std::memcmp(frame_payload(*d, bytes.data()),
                               payload.data(), payload.size()));
    }
    for (std::size_t i = 0; i < acks.size(); ++i)
      EXPECT_EQ(frame_ack(*d, bytes.data(), i), acks[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest, ::testing::Values(1, 2, 3));

TEST(Frame, DecodeNeverMisbehavesOnRandomGarbage) {
  // Robustness property: decode_header on arbitrary bytes either fails
  // cleanly or returns a header whose wire size matches the buffer — it
  // must never crash or read out of bounds (run under ASAN to enforce the
  // latter).
  Xoshiro256 rng(99);
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    auto h = decode_header(junk.data(), junk.size());
    if (h.has_value()) EXPECT_EQ(h->wire_bytes(), junk.size());
  }
}

TEST(Frame, CorruptedRealFramesDecodeConsistently) {
  // Flip one bit anywhere in a valid frame: decode either fails or yields
  // a header consistent with the buffer length (the fault-injection tests
  // rely on this never being undefined behaviour).
  Xoshiro256 rng(123);
  FrameHeader h;
  h.type = FrameType::kData;
  h.handler = 3;
  h.src = 1;
  h.seq = 77;
  std::vector<std::uint8_t> payload(96);
  h.payload_len = 96;
  auto base = encode_frame(h, payload.data(), nullptr);
  for (int iter = 0; iter < 5000; ++iter) {
    auto corrupted = base;
    corrupted[rng.below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    auto d = decode_header(corrupted.data(), corrupted.size());
    if (d.has_value()) EXPECT_EQ(d->wire_bytes(), corrupted.size());
  }
}

}  // namespace
}  // namespace fm
