// Configuration-grid property sweep: the protocol invariants (exactly-once
// delivery, intact payloads, full drain) must hold at every corner of the
// FmConfig space — tiny frames, tiny windows, eager and lazy acks, starved
// reassembly pools.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>

#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm {
namespace {

using GridParam = std::tuple<std::size_t /*frame_payload*/,
                             std::size_t /*pending_window*/,
                             std::size_t /*ack_batch*/,
                             std::size_t /*reassembly_slots*/>;

class ConfigGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ConfigGrid, InvariantsHoldEverywhere) {
  auto [frame, window, ack_batch, slots] = GetParam();
  FmConfig cfg;
  cfg.frame_payload = frame;
  cfg.pending_window = window;
  cfg.ack_batch = ack_batch;
  cfg.reassembly_slots = slots;
  cfg.reject_retry_delay = 1;

  hw::Cluster c(3);
  SimEndpoint s0(c.node(0), cfg), s1(c.node(1), cfg), r(c.node(2), cfg);
  std::map<std::pair<NodeId, std::uint32_t>, int> delivered;
  bool payload_ok = true;
  HandlerId h = 0;
  for (SimEndpoint* ep : {&s0, &s1, &r}) {
    h = ep->register_handler([&](SimEndpoint& me, NodeId src,
                                 const void* data, std::size_t len) {
      if (me.id() != 2) return;
      std::uint32_t tag;
      std::memcpy(&tag, data, 4);
      const auto* p = static_cast<const std::uint8_t*>(data);
      for (std::size_t i = 4; i < len; ++i)
        if (p[i] != static_cast<std::uint8_t>(tag + i)) payload_ok = false;
      ++delivered[{src, tag}];
    });
  }
  s0.start();
  s1.start();
  r.start();
  const int kMsgs = 12;
  auto tx = [](SimEndpoint& ep, HandlerId h, int kMsgs) -> sim::Task {
    std::vector<std::uint8_t> buf(700);
    for (int m = 0; m < kMsgs; ++m) {
      // Alternate small (single-frame at any grid point) and large
      // (multi-frame at small frame sizes) messages.
      std::size_t len = (m % 2) ? 700u : 12u;
      std::uint32_t tag = static_cast<std::uint32_t>(m);
      std::memcpy(buf.data(), &tag, 4);
      for (std::size_t i = 4; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(tag + i);
      FM_CHECK(ok(co_await ep.send(2, h, buf.data(), len)));
    }
    co_await ep.drain();
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  auto rx = [](SimEndpoint& ep) -> sim::Task {
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  c.sim().spawn(tx(s0, h, kMsgs));
  c.sim().spawn(tx(s1, h, kMsgs));
  c.sim().spawn(rx(r));
  bool done = c.sim().run_while_pending([&] {
    return delivered.size() == 2 * kMsgs && s0.unacked() == 0 &&
           s1.unacked() == 0 && s0.reject_queue_depth() == 0 &&
           s1.reject_queue_depth() == 0;
  });
  EXPECT_TRUE(done) << "stalled at frame=" << frame << " window=" << window
                    << " ack_batch=" << ack_batch << " slots=" << slots;
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(2 * kMsgs));
  for (auto& [key, count] : delivered) EXPECT_EQ(count, 1);
  EXPECT_TRUE(payload_ok);
  s0.shutdown();
  s1.shutdown();
  r.shutdown();
  c.sim().run();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigGrid,
    ::testing::Combine(::testing::Values(32u, 128u, 512u),   // frame_payload
                       ::testing::Values(4u, 64u),           // pending_window
                       ::testing::Values(1u, 8u),            // ack_batch
                       ::testing::Values(1u, 16u)));         // reassembly

}  // namespace
}  // namespace fm
