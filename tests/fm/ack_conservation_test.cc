// Protocol conservation laws: acknowledgements are neither lost nor
// duplicated across a full exchange — the bookkeeping identities that make
// return-to-sender exactly-once.
#include <gtest/gtest.h>

#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm {
namespace {

TEST(AckConservation, EveryDataFrameAckedExactlyOnce) {
  hw::Cluster c(2);
  SimEndpoint a(c.node(0)), b(c.node(1));
  std::size_t got = 0;
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  a.start();
  b.start();
  const std::size_t kMsgs = 64;
  auto tx = [](SimEndpoint& a, HandlerId h, std::size_t n) -> sim::Task {
    for (std::size_t i = 0; i < n; ++i) co_await a.send4(1, h, 1, 2, 3, 4);
    co_await a.drain();
    for (;;) {
      (void)co_await a.extract_blocking();
      co_await a.drain();
    }
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) {
      (void)co_await b.extract_blocking();
      co_await b.drain();
    }
  };
  c.sim().spawn(tx(a, h, kMsgs));
  c.sim().spawn(rx(b));
  c.sim().run_while_pending(
      [&] { return got == kMsgs && a.unacked() == 0; });
  // Conservation: acks produced by the receiver == data frames it accepted;
  // no data frame remains unacked; no rejects occurred in this clean run.
  const auto& sb = b.stats();
  EXPECT_EQ(sb.acks_piggybacked +
                /* standalone frames carry batched acks; count them by what
                   the sender's window released: */ 0u,
            sb.acks_piggybacked);
  EXPECT_EQ(a.unacked(), 0u);
  EXPECT_EQ(sb.messages_delivered, kMsgs);
  EXPECT_EQ(a.stats().frames_sent, kMsgs);
  EXPECT_EQ(sb.rejects_issued, 0u);
  EXPECT_EQ(a.stats().retransmissions, 0u);
  // The receiver owed exactly kMsgs acks in total; everything it took from
  // the tracker went out either piggybacked or standalone, and nothing is
  // still owed after its drain.
  EXPECT_GE(sb.acks_standalone, 1u);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(AckConservation, RejectedFramesAckedOnlyAfterRetry) {
  FmConfig cfg;
  cfg.reassembly_slots = 1;
  cfg.reject_retry_delay = 1;
  hw::Cluster c(3);
  SimEndpoint s0(c.node(0), cfg), s1(c.node(1), cfg), r(c.node(2), cfg);
  std::size_t got = 0;
  HandlerId h = 0;
  for (SimEndpoint* ep : {&s0, &s1, &r})
    h = ep->register_handler(
        [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  s0.start();
  s1.start();
  r.start();
  auto tx = [](SimEndpoint& ep, HandlerId h) -> sim::Task {
    std::vector<std::uint8_t> big(500, 1);
    for (int i = 0; i < 4; ++i)
      FM_CHECK(ok(co_await ep.send(2, h, big.data(), big.size())));
    co_await ep.drain();
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  auto rx = [](SimEndpoint& ep) -> sim::Task {
    for (;;) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  c.sim().spawn(tx(s0, h));
  c.sim().spawn(tx(s1, h));
  c.sim().spawn(rx(r));
  c.sim().run_while_pending([&] {
    return got == 8 && s0.unacked() == 0 && s1.unacked() == 0;
  });
  EXPECT_EQ(got, 8u);
  // Rejection happened, and the books balance: every retransmission
  // corresponds to a reject received; windows fully drained.
  EXPECT_GT(r.stats().rejects_issued, 0u);
  EXPECT_EQ(s0.stats().retransmissions + s1.stats().retransmissions,
            s0.stats().rejects_received + s1.stats().rejects_received);
  EXPECT_EQ(r.stats().rejects_issued,
            s0.stats().rejects_received + s1.stats().rejects_received);
  EXPECT_EQ(s0.unacked(), 0u);
  EXPECT_EQ(s1.unacked(), 0u);
  EXPECT_EQ(s0.reject_queue_depth(), 0u);
  EXPECT_EQ(s1.reject_queue_depth(), 0u);
  s0.shutdown();
  s1.shutdown();
  r.shutdown();
  c.sim().run();
}

}  // namespace
}  // namespace fm
