// End-to-end tests of the FM layer on the simulated cluster.
#include "fm/sim_endpoint.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "hw/cluster.h"

namespace fm {
namespace {

struct TwoNodes {
  hw::Cluster cluster{2};
  SimEndpoint a{cluster.node(0)};
  SimEndpoint b{cluster.node(1)};
  TwoNodes() = default;
  explicit TwoNodes(const FmConfig& cfg)
      : a(cluster.node(0), cfg), b(cluster.node(1), cfg) {}
  void start() {
    a.start();
    b.start();
  }
  void finish() {
    a.shutdown();
    b.shutdown();
    cluster.sim().run();
  }
};

TEST(SimEndpoint, Send4DeliversFourWords) {
  TwoNodes t;
  std::vector<std::uint32_t> got;
  (void)t.a.register_handler([](SimEndpoint&, NodeId, const void*,
                                std::size_t) {});
  HandlerId h = t.b.register_handler(
      [&](SimEndpoint&, NodeId src, const void* data, std::size_t len) {
        EXPECT_EQ(src, 0u);
        ASSERT_EQ(len, 16u);
        const auto* w = static_cast<const std::uint32_t*>(data);
        got.assign(w, w + 4);
      });
  t.start();
  auto prog = [](TwoNodes& t, HandlerId h) -> sim::Task {
    Status s = co_await t.a.send4(1, h, 10, 20, 30, 40);
    EXPECT_TRUE(ok(s));
  };
  auto rxprog = [](TwoNodes& t, std::vector<std::uint32_t>* got) -> sim::Task {
    while (got->empty()) (void)co_await t.b.extract_blocking();
  };
  t.cluster.sim().spawn(prog(t, h));
  t.cluster.sim().spawn(rxprog(t, &got));
  t.cluster.sim().run_while_pending([&] { return !got.empty(); });
  EXPECT_EQ(got, (std::vector<std::uint32_t>{10, 20, 30, 40}));
  t.finish();
}

TEST(SimEndpoint, InvalidArgumentsRejected) {
  TwoNodes t;
  HandlerId h = t.a.register_handler(
      [](SimEndpoint&, NodeId, const void*, std::size_t) {});
  t.start();
  Status s1 = Status::kOk, s2 = Status::kOk;
  auto prog = [](TwoNodes& t, HandlerId h, Status* s1, Status* s2) -> sim::Task {
    *s1 = co_await t.a.send(1, 999, "x", 1);          // unregistered handler
    *s2 = co_await t.a.send(1, h, nullptr, 8);        // null buffer
  };
  t.cluster.sim().spawn(prog(t, h, &s1, &s2));
  t.cluster.sim().run_for(sim::ms(1));
  EXPECT_EQ(s1, Status::kBadArgument);
  EXPECT_EQ(s2, Status::kBadArgument);
  t.finish();
}

TEST(SimEndpoint, PingPongWithPostedReplies) {
  TwoNodes t;
  int pongs = 0;
  HandlerId pong = t.a.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++pongs; });
  HandlerId ping = t.b.register_handler(
      [&](SimEndpoint& ep, NodeId src, const void* data, std::size_t len) {
        const auto* w = static_cast<const std::uint32_t*>(data);
        EXPECT_EQ(len, 16u);
        ep.post_send4(src, w[0], 0, 0, 0, 0);  // w[0] carries the pong id
      });
  t.start();
  const int kRounds = 10;
  auto pinger = [](TwoNodes& t, HandlerId ping, HandlerId pong,
                   int* pongs) -> sim::Task {
    for (int i = 0; i < 10; ++i) {
      co_await t.a.send4(1, ping, pong, 0, 0, 0);
      int before = *pongs;
      while (*pongs == before) (void)co_await t.a.extract_blocking();
    }
  };
  auto ponger = [](TwoNodes& t) -> sim::Task {
    for (;;) (void)co_await t.b.extract_blocking();
  };
  t.cluster.sim().spawn(pinger(t, ping, pong, &pongs));
  t.cluster.sim().spawn(ponger(t));
  t.cluster.sim().run_while_pending([&] { return pongs >= kRounds; });
  EXPECT_EQ(pongs, kRounds);
  // One-way latency sanity: headline says ~25 us per 4-word hop on the
  // paper's hardware; our leaner cost model must land in single-digit-to-
  // low-tens of microseconds, not milliseconds.
  double one_way_us = sim::to_us(t.cluster.sim().now()) / (kRounds * 2);
  EXPECT_GT(one_way_us, 5.0);
  EXPECT_LT(one_way_us, 40.0);
  t.finish();
}

TEST(SimEndpoint, LargeMessageSegmentsAndReassembles) {
  TwoNodes t;
  std::vector<std::uint8_t> received;
  (void)t.a.register_handler([](SimEndpoint&, NodeId, const void*,
                                std::size_t) {});
  HandlerId h = t.b.register_handler(
      [&](SimEndpoint&, NodeId, const void* data, std::size_t len) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        received.assign(p, p + len);
      });
  t.start();
  const std::size_t kLen = 1000;  // ~8 frames at 128 B
  std::vector<std::uint8_t> message(kLen);
  Xoshiro256 rng(5);
  for (auto& b : message) b = static_cast<std::uint8_t>(rng());
  auto tx = [](TwoNodes& t, HandlerId h,
               const std::vector<std::uint8_t>* m) -> sim::Task {
    Status s = co_await t.a.send(1, h, m->data(), m->size());
    EXPECT_TRUE(ok(s));
    co_await t.a.drain();
  };
  auto rx = [](TwoNodes& t, std::vector<std::uint8_t>* r) -> sim::Task {
    while (r->empty()) (void)co_await t.b.extract_blocking();
    co_await t.b.drain();
  };
  t.cluster.sim().spawn(tx(t, h, &message));
  t.cluster.sim().spawn(rx(t, &received));
  t.cluster.sim().run_while_pending(
      [&] { return received == message && t.a.unacked() == 0; });
  EXPECT_EQ(received, message);
  EXPECT_EQ(t.a.stats().frames_sent, 8u);
  t.finish();
}

TEST(SimEndpoint, AcksArePiggybackedUnderBidirectionalTraffic) {
  TwoNodes t;
  int a_got = 0, b_got = 0;
  HandlerId ha = t.a.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++a_got; });
  HandlerId hb = t.b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++b_got; });
  FM_CHECK(ha == hb);
  t.start();
  const int kEach = 40;
  auto prog = [](SimEndpoint& ep, NodeId peer, HandlerId h, int kEach,
                 int* got) -> sim::Task {
    for (int i = 0; i < kEach; ++i) {
      co_await ep.send4(peer, h, static_cast<std::uint32_t>(i), 0, 0, 0);
      (void)co_await ep.extract();
    }
    while (*got < kEach || ep.unacked() > 0) {
      (void)co_await ep.extract_blocking();
      co_await ep.drain();
    }
  };
  t.cluster.sim().spawn(prog(t.a, 1, ha, kEach, &a_got));
  t.cluster.sim().spawn(prog(t.b, 0, hb, kEach, &b_got));
  t.cluster.sim().run_while_pending([&] {
    return a_got == kEach && b_got == kEach && t.a.unacked() == 0 &&
           t.b.unacked() == 0;
  });
  EXPECT_EQ(a_got, kEach);
  EXPECT_EQ(b_got, kEach);
  // With traffic in both directions most acks should ride on data frames.
  EXPECT_GT(t.a.stats().acks_piggybacked + t.b.stats().acks_piggybacked, 20u);
  t.finish();
}

TEST(SimEndpoint, ReturnToSenderFiresAndRecovers) {
  // Tiny reassembly pool + many interleaved segmented messages from two
  // senders forces rejects; the protocol must still deliver every message
  // exactly once.
  FmConfig cfg;
  cfg.reassembly_slots = 1;
  cfg.reject_retry_delay = 1;
  hw::Cluster cluster(3);
  SimEndpoint s0(cluster.node(0), cfg);
  SimEndpoint s1(cluster.node(1), cfg);
  SimEndpoint r(cluster.node(2), cfg);
  std::map<std::pair<NodeId, std::uint32_t>, int> delivered;
  auto mkh = [&](SimEndpoint& ep) {
    return ep.register_handler([&](SimEndpoint&, NodeId src, const void* data,
                                   std::size_t len) {
      ASSERT_GE(len, 4u);
      std::uint32_t tag;
      std::memcpy(&tag, data, 4);
      ++delivered[{src, tag}];
    });
  };
  HandlerId h0 = mkh(s0), h1 = mkh(s1), hr = mkh(r);
  FM_CHECK(h0 == h1 && h1 == hr);
  s0.start();
  s1.start();
  r.start();
  const int kMsgs = 6;
  const std::size_t kLen = 400;  // multi-frame => exercises reassembly pool
  auto sender = [](SimEndpoint& ep, HandlerId h, int kMsgs,
                   std::size_t kLen) -> sim::Task {
    std::vector<std::uint8_t> buf(kLen, 0);
    for (int i = 0; i < kMsgs; ++i) {
      std::uint32_t tag = static_cast<std::uint32_t>(i);
      std::memcpy(buf.data(), &tag, 4);
      Status st = co_await ep.send(2, h, buf.data(), buf.size());
      EXPECT_TRUE(ok(st));
    }
    co_await ep.drain();
  };
  auto receiver = [](SimEndpoint& ep) -> sim::Task {
    for (;;) {
      (void)co_await ep.extract_blocking();
    }
  };
  cluster.sim().spawn(sender(s0, h0, kMsgs, kLen));
  cluster.sim().spawn(sender(s1, h1, kMsgs, kLen));
  cluster.sim().spawn(receiver(r));
  cluster.sim().run_while_pending([&] {
    return delivered.size() == 2 * kMsgs && s0.unacked() == 0 &&
           s1.unacked() == 0;
  });
  // Every message delivered exactly once.
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(2 * kMsgs));
  for (const auto& [key, count] : delivered) EXPECT_EQ(count, 1);
  // And the reject machinery actually fired.
  EXPECT_GT(r.stats().rejects_issued, 0u);
  EXPECT_GT(s0.stats().retransmissions + s1.stats().retransmissions, 0u);
  s0.shutdown();
  s1.shutdown();
  r.shutdown();
  cluster.sim().run();
}

TEST(SimEndpoint, FlowControlOffSkipsProtocolState) {
  FmConfig cfg;
  cfg.flow_control = false;
  TwoNodes t(cfg);
  int got = 0;
  (void)t.a.register_handler([](SimEndpoint&, NodeId, const void*,
                                std::size_t) {});
  HandlerId h = t.b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  t.start();
  auto tx = [](TwoNodes& t, HandlerId h) -> sim::Task {
    for (int i = 0; i < 20; ++i) co_await t.a.send4(1, h, 1, 2, 3, 4);
  };
  auto rx = [](TwoNodes& t, int* got) -> sim::Task {
    while (*got < 20) (void)co_await t.b.extract_blocking();
  };
  t.cluster.sim().spawn(tx(t, h));
  t.cluster.sim().spawn(rx(t, &got));
  t.cluster.sim().run_while_pending([&] { return got == 20; });
  EXPECT_EQ(got, 20);
  EXPECT_EQ(t.a.unacked(), 0u);
  EXPECT_EQ(t.b.stats().acks_piggybacked, 0u);
  EXPECT_EQ(t.b.stats().acks_standalone, 0u);
  t.finish();
}

TEST(SimEndpoint, WindowBackpressureBlocksSender) {
  // Unidirectional blast with a receiver that extracts: the sender's window
  // must bound in-flight frames at all times.
  FmConfig cfg;
  cfg.pending_window = 8;
  TwoNodes t(cfg);
  int got = 0;
  (void)t.a.register_handler([](SimEndpoint&, NodeId, const void*,
                                std::size_t) {});
  HandlerId h = t.b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  t.start();
  const int kMsgs = 60;
  auto tx = [](TwoNodes& t, HandlerId h, int kMsgs) -> sim::Task {
    for (int i = 0; i < kMsgs; ++i) {
      co_await t.a.send4(1, h, static_cast<std::uint32_t>(i), 0, 0, 0);
      EXPECT_LE(t.a.unacked(), 8u);
    }
    co_await t.a.drain();
  };
  auto rx = [](TwoNodes& t, int kMsgs, int* got) -> sim::Task {
    while (*got < kMsgs) (void)co_await t.b.extract_blocking();
    co_await t.b.drain();
  };
  t.cluster.sim().spawn(tx(t, h, kMsgs));
  t.cluster.sim().spawn(rx(t, kMsgs, &got));
  t.cluster.sim().run_while_pending(
      [&] { return got == kMsgs && t.a.unacked() == 0; });
  EXPECT_EQ(got, kMsgs);
  EXPECT_EQ(t.a.unacked(), 0u);
  t.finish();
}

TEST(SimEndpoint, StatsAreConsistent) {
  TwoNodes t;
  (void)t.a.register_handler([](SimEndpoint&, NodeId, const void*,
                                std::size_t) {});
  HandlerId h = t.b.register_handler(
      [](SimEndpoint&, NodeId, const void*, std::size_t) {});
  t.start();
  auto tx = [](TwoNodes& t, HandlerId h) -> sim::Task {
    for (int i = 0; i < 15; ++i) co_await t.a.send4(1, h, 1, 2, 3, 4);
    co_await t.a.drain();
  };
  auto rx = [](TwoNodes& t) -> sim::Task {
    for (;;) {
      (void)co_await t.b.extract_blocking();
      co_await t.b.drain();
    }
  };
  t.cluster.sim().spawn(tx(t, h));
  t.cluster.sim().spawn(rx(t));
  t.cluster.sim().run_while_pending([&] {
    return t.b.stats().messages_delivered == 15 && t.a.unacked() == 0;
  });
  EXPECT_EQ(t.a.stats().messages_sent, 15u);
  EXPECT_EQ(t.a.stats().frames_sent, 15u);
  EXPECT_EQ(t.b.stats().messages_delivered, 15u);
  EXPECT_EQ(t.a.stats().rejects_received, 0u);
  t.finish();
}

TEST(SimEndpoint, ManyNodesAllToOne) {
  const std::size_t kNodes = 5;
  hw::Cluster cluster(kNodes);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::size_t i = 0; i < kNodes; ++i)
    eps.push_back(std::make_unique<SimEndpoint>(cluster.node(i)));
  std::set<std::pair<NodeId, std::uint32_t>> seen;
  HandlerId h = 0;
  for (auto& ep : eps) {
    h = ep->register_handler([&](SimEndpoint&, NodeId src, const void* data,
                                 std::size_t) {
      std::uint32_t tag;
      std::memcpy(&tag, data, 4);
      auto inserted = seen.emplace(src, tag).second;
      EXPECT_TRUE(inserted) << "duplicate delivery";
    });
    ep->start();
  }
  const int kEach = 10;
  auto sender = [](SimEndpoint& ep, HandlerId h, int kEach) -> sim::Task {
    for (int i = 0; i < kEach; ++i)
      co_await ep.send4(0, h, static_cast<std::uint32_t>(i), 0, 0, 0);
    co_await ep.drain();
  };
  auto receiver = [](SimEndpoint& ep) -> sim::Task {
    for (;;) (void)co_await ep.extract_blocking();
  };
  for (std::size_t i = 1; i < kNodes; ++i)
    cluster.sim().spawn(sender(*eps[i], h, kEach));
  cluster.sim().spawn(receiver(*eps[0]));
  cluster.sim().run_while_pending(
      [&] { return seen.size() == (kNodes - 1) * kEach; });
  EXPECT_EQ(seen.size(), (kNodes - 1) * kEach);
  for (auto& ep : eps) ep->shutdown();
  cluster.sim().run();
}

}  // namespace
}  // namespace fm
