// Randomized differential test of the SendWindow (dest, seq) -> slot index
// (open addressing, linear probing, backward-shift deletion) against a
// trivially correct linear-scan oracle.
//
// The index is private, so the differential surface is the public API:
// every find()/ack() answer must agree with a std::map oracle that records
// exactly which (dest, seq) entries are pending and what bytes they hold.
// A divergence in the probe machinery shows up as one of:
//   - find() returning absent for a pending entry (lookup terminated early
//     at a hole backward-shift deletion should have filled),
//   - find() returning a stale slot's bytes (shift moved the wrong entry),
//   - ack() returning false for a pending entry or true for an absent one.
//
// The workload is tuned at the index's weak points: a tiny table (capacity
// 8 -> 64 buckets) so probe chains wrap the table end cyclically, dense
// per-dest seqs (Fibonacci-hashed neighbours), heavy ack/reuse churn so
// slots recycle without tombstones, and drop_dest sweeps that erase many
// entries in one call.
#include "fm/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <utility>
#include <vector>

namespace fm {
namespace {

struct OracleEntry {
  std::vector<std::uint8_t> bytes;
};

using Oracle = std::map<std::pair<NodeId, std::uint32_t>, OracleEntry>;

std::vector<std::uint8_t> stamp(NodeId dest, std::uint32_t seq,
                                std::size_t len) {
  std::vector<std::uint8_t> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::uint8_t>(dest * 131 + seq * 31 + i);
  return b;
}

/// Full-state cross-check: every oracle entry must be findable with its
/// exact bytes, and the window must report the oracle's cardinality.
void expect_agreement(const SendWindow& w, const Oracle& oracle,
                      std::uint64_t step) {
  ASSERT_EQ(w.in_flight(), oracle.size()) << "step " << step;
  for (const auto& [key, ent] : oracle) {
    const SendWindow::Stored s = w.find(key.first, key.second);
    ASSERT_NE(s.data, nullptr)
        << "step " << step << ": pending (" << key.first << ", " << key.second
        << ") vanished from the index";
    ASSERT_EQ(s.len, ent.bytes.size()) << "step " << step;
    ASSERT_EQ(std::memcmp(s.data, ent.bytes.data(), s.len), 0)
        << "step " << step << ": index points at another entry's slot";
  }
}

TEST(SendWindowIndex, RandomizedDifferentialAgainstLinearOracle) {
  // Several independent trials with different seeds; each runs thousands
  // of operations over a deliberately tiny window so wraparound and
  // backward-shift chains happen constantly rather than occasionally.
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    constexpr std::size_t kCapacity = 8;
    constexpr std::size_t kSlotBytes = 64;
    constexpr int kDests = 3;
    SendWindow w(kCapacity, kSlotBytes);
    Oracle oracle;
    std::mt19937_64 rng(0xF00D0000u + trial);
    std::uniform_int_distribution<int> op_pick(0, 99);
    std::uniform_int_distribution<int> dest_pick(0, kDests - 1);
    std::uniform_int_distribution<std::size_t> len_pick(1, kSlotBytes);

    for (std::uint64_t step = 0; step < 4000; ++step) {
      const int op = op_pick(rng);
      if (op < 45 && !w.full()) {
        // Insert: next dense seq for a random dest, bytes stamped so a
        // misdirected lookup is detectable by content, not just presence.
        const NodeId dest = static_cast<NodeId>(dest_pick(rng));
        const std::uint32_t seq = w.next_seq(dest);
        const auto bytes = stamp(dest, seq, len_pick(rng));
        if (rng() & 1) {
          std::uint8_t* slot = w.reserve(dest, seq);
          std::memcpy(slot, bytes.data(), bytes.size());
          w.commit(bytes.size());
        } else {
          w.track(dest, seq, bytes.data(), bytes.size());
        }
        oracle[{dest, seq}] = OracleEntry{bytes};
      } else if (op < 80 && !oracle.empty()) {
        // Ack a random pending entry (releases the slot, erases from the
        // index, backward-shifts its probe chain).
        std::uniform_int_distribution<std::size_t> pick(0, oracle.size() - 1);
        auto it = oracle.begin();
        std::advance(it, pick(rng));
        const auto key = it->first;
        oracle.erase(it);
        ASSERT_TRUE(w.ack(key.first, key.second)) << "step " << step;
      } else if (op < 90) {
        // Negative lookups: an acked/never-sent (dest, seq) must be absent
        // — this is where a broken backward shift leaves stale entries.
        const NodeId dest = static_cast<NodeId>(dest_pick(rng));
        const std::uint32_t seq = static_cast<std::uint32_t>(rng() % 700) + 1;
        if (oracle.count({dest, seq}) == 0) {
          EXPECT_EQ(w.find(dest, seq).data, nullptr) << "step " << step;
          EXPECT_FALSE(w.ack(dest, seq)) << "step " << step;
        }
      } else if (op < 95) {
        // Dead-peer sweep: drop everything for one dest in one call.
        const NodeId dest = static_cast<NodeId>(dest_pick(rng));
        std::size_t expected = 0;
        for (auto it = oracle.begin(); it != oracle.end();) {
          if (it->first.first == dest) {
            it = oracle.erase(it);
            ++expected;
          } else {
            ++it;
          }
        }
        EXPECT_EQ(w.drop_dest(dest), expected) << "step " << step;
      } else {
        expect_agreement(w, oracle, step);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    // Drain in random order, cross-checking to the last entry.
    while (!oracle.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, oracle.size() - 1);
      auto it = oracle.begin();
      std::advance(it, pick(rng));
      const auto key = it->first;
      oracle.erase(it);
      ASSERT_TRUE(w.ack(key.first, key.second));
      expect_agreement(w, oracle, ~std::uint64_t{0});
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_EQ(w.in_flight(), 0u);
    EXPECT_TRUE(w.space() == kCapacity);
  }
}

// Minimized regression shape for the cyclic shiftable rule: force a probe
// chain that wraps the table end, then delete its first element so the
// shift must decide correctly for entries whose home lies "behind" the
// wrap. With capacity 8 the table has 64 buckets; rather than hunt for
// colliding keys analytically, drive dense seqs for one dest (Fibonacci
// spreads them, but 4000-step trials above prove coverage; this test pins
// the smallest deterministic sequence that exercises erase-then-find on
// every element of a full window).
TEST(SendWindowIndex, EraseKeepsEveryRemainingEntryFindable) {
  constexpr std::size_t kCapacity = 16;
  SendWindow w(kCapacity, 32);
  const NodeId dest = 1;
  // Fill the window completely: 16 live index entries.
  std::vector<std::uint32_t> seqs;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    const std::uint32_t seq = w.next_seq(dest);
    const auto bytes = stamp(dest, seq, 8);
    w.track(dest, seq, bytes.data(), bytes.size());
    seqs.push_back(seq);
  }
  // Erase one entry at a time (front, back, middle alternating) and verify
  // every survivor after each erase — any wrong shift decision surfaces as
  // a vanished or misdirected survivor immediately.
  bool front = true;
  std::size_t mid_toggle = 0;
  while (!seqs.empty()) {
    std::size_t pick;
    if (front)
      pick = 0;
    else if (mid_toggle++ & 1)
      pick = seqs.size() - 1;
    else
      pick = seqs.size() / 2;
    front = !front;
    const std::uint32_t victim = seqs[pick];
    seqs.erase(seqs.begin() + static_cast<std::ptrdiff_t>(pick));
    ASSERT_TRUE(w.ack(dest, victim));
    EXPECT_EQ(w.find(dest, victim).data, nullptr);
    for (const std::uint32_t s : seqs) {
      const SendWindow::Stored got = w.find(dest, s);
      ASSERT_NE(got.data, nullptr) << "survivor seq " << s << " vanished";
      const auto bytes = stamp(dest, s, 8);
      ASSERT_EQ(got.len, bytes.size());
      ASSERT_EQ(std::memcmp(got.data, bytes.data(), got.len), 0);
    }
  }
}

// Tombstone-free reuse: a slot acked and immediately re-reserved for a new
// (dest, seq) must serve lookups for the new key only. (With tombstones a
// stale marker could alias the old key; backward shift must leave no trace.)
TEST(SendWindowIndex, AckedSlotReusesCleanly) {
  SendWindow w(4, 32);
  for (int round = 0; round < 200; ++round) {
    const NodeId dest = static_cast<NodeId>(round % 3);
    const std::uint32_t seq = w.next_seq(dest);
    const auto bytes = stamp(dest, seq, 16);
    w.track(dest, seq, bytes.data(), bytes.size());
    ASSERT_NE(w.find(dest, seq).data, nullptr);
    ASSERT_TRUE(w.ack(dest, seq));
    ASSERT_EQ(w.find(dest, seq).data, nullptr)
        << "acked (dest, seq) still resolves — stale index entry";
    ASSERT_EQ(w.in_flight(), 0u);
  }
}

}  // namespace
}  // namespace fm
