// Tests for the sliding-window (credit) flow-control alternative — the §7
// future-work comparison against return-to-sender.
#include <gtest/gtest.h>

#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm {
namespace {

FmConfig window_cfg(std::size_t credits) {
  FmConfig cfg;
  cfg.flow_control = true;
  cfg.window_mode = true;
  cfg.window_per_peer = credits;
  return cfg;
}

TEST(WindowMode, DeliversReliably) {
  hw::Cluster c(2);
  SimEndpoint a(c.node(0), window_cfg(4));
  SimEndpoint b(c.node(1), window_cfg(4));
  int got = 0;
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  a.start();
  b.start();
  auto tx = [](SimEndpoint& a, HandlerId h) -> sim::Task {
    for (int i = 0; i < 30; ++i)
      co_await a.send4(1, h, static_cast<std::uint32_t>(i), 0, 0, 0);
    co_await a.drain();
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, h));
  c.sim().spawn(rx(b));
  c.sim().run_while_pending([&] { return got == 30 && a.unacked() == 0; });
  EXPECT_EQ(got, 30);
  EXPECT_EQ(a.unacked(), 0u);
  // No rejections in window mode: credits prevent overload by construction.
  EXPECT_EQ(a.stats().rejects_received, 0u);
  EXPECT_EQ(b.stats().rejects_issued, 0u);
}

TEST(WindowMode, CreditsBoundOutstandingFramesPerPeer) {
  hw::Cluster c(2);
  SimEndpoint a(c.node(0), window_cfg(3));
  SimEndpoint b(c.node(1), window_cfg(3));
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [](SimEndpoint&, NodeId, const void*, std::size_t) {});
  a.start();
  b.start();
  int sent = 0;
  auto tx = [](SimEndpoint& a, HandlerId h, int* sent) -> sim::Task {
    for (int i = 0; i < 20; ++i) {
      co_await a.send4(1, h, 0, 0, 0, 0);
      ++*sent;
      EXPECT_LE(a.unacked(), 3u);  // never beyond the per-peer credit
    }
    co_await a.drain();
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, h, &sent));
  c.sim().spawn(rx(b));
  c.sim().run_while_pending([&] { return sent == 20 && a.unacked() == 0; });
  EXPECT_EQ(sent, 20);
}

TEST(WindowMode, ManyToOneStillDeliversEverything) {
  const std::size_t kNodes = 4;
  hw::Cluster c(kNodes);
  std::vector<std::unique_ptr<SimEndpoint>> eps;
  for (std::size_t i = 0; i < kNodes; ++i)
    eps.push_back(std::make_unique<SimEndpoint>(c.node(i), window_cfg(2)));
  std::size_t got = 0;
  HandlerId h = 0;
  for (auto& ep : eps) {
    h = ep->register_handler(
        [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
    ep->start();
  }
  auto tx = [](SimEndpoint& ep, HandlerId h) -> sim::Task {
    for (int i = 0; i < 10; ++i) co_await ep.send4(0, h, 0, 0, 0, 0);
    co_await ep.drain();
  };
  auto rx = [](SimEndpoint& ep) -> sim::Task {
    for (;;) (void)co_await ep.extract_blocking();
  };
  for (std::size_t i = 1; i < kNodes; ++i) c.sim().spawn(tx(*eps[i], h));
  c.sim().spawn(rx(*eps[0]));
  c.sim().run_while_pending([&] { return got == (kNodes - 1) * 10; });
  EXPECT_EQ(got, (kNodes - 1) * 10);
  for (auto& ep : eps) ep->shutdown();
  c.sim().run();
}

}  // namespace
}  // namespace fm
