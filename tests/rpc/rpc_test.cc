// Tests of the request/reply RPC layer over FM (the Concert-runtime-style
// §7 layering exercise).
#include "rpc/rpc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "shm/cluster.h"

namespace fm::rpc {
namespace {

TEST(Rpc, CallReturnsReply) {
  shm::Cluster cluster(2);
  std::atomic<bool> done{false};
  cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t square = rpc.register_method(
        [](NodeId, const void* data, std::size_t len) {
          FM_CHECK(len == 8);
          std::int64_t v;
          std::memcpy(&v, data, 8);
          v *= v;
          std::vector<std::uint8_t> out(8);
          std::memcpy(out.data(), &v, 8);
          return out;
        });
    if (ep.id() == 0) {
      std::int64_t x = 12;
      Future f = rpc.call(1, square, &x, sizeof x);
      auto& reply = f.wait();
      std::int64_t y;
      std::memcpy(&y, reply.data(), 8);
      EXPECT_EQ(y, 144);
      done = true;
      ep.drain();
    } else {
      while (!done.load()) rpc.poll();
      ep.drain();
    }
  });
  EXPECT_TRUE(done.load());
}

TEST(Rpc, ConcurrentOutstandingCallsMatchById) {
  shm::Cluster cluster(2);
  std::atomic<bool> done{false};
  cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t echo_plus = rpc.register_method(
        [](NodeId, const void* data, std::size_t len) {
          FM_CHECK(len == 4);
          std::uint32_t v;
          std::memcpy(&v, data, 4);
          v += 1000;
          std::vector<std::uint8_t> out(4);
          std::memcpy(out.data(), &v, 4);
          return out;
        });
    if (ep.id() == 0) {
      // Fire several calls before collecting any reply.
      std::vector<Future> futures;
      for (std::uint32_t i = 0; i < 8; ++i)
        futures.push_back(rpc.call(1, echo_plus, &i, 4));
      // Collect in reverse order: matching must be by call id.
      for (int i = 7; i >= 0; --i) {
        auto& reply = futures[static_cast<std::size_t>(i)].wait();
        std::uint32_t v;
        std::memcpy(&v, reply.data(), 4);
        EXPECT_EQ(v, static_cast<std::uint32_t>(i) + 1000);
      }
      done = true;
      ep.drain();
    } else {
      while (!done.load()) rpc.poll();
      ep.drain();
    }
  });
}

TEST(Rpc, CastIsFireAndForget) {
  shm::Cluster cluster(2);
  std::atomic<int> hits{0};
  std::atomic<bool> done{false};
  cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t bump = rpc.register_method(
        [&](NodeId, const void*, std::size_t) {
          ++hits;
          return std::vector<std::uint8_t>{};
        });
    if (ep.id() == 0) {
      for (int i = 0; i < 5; ++i) rpc.cast(1, bump, nullptr, 0);
      while (hits.load() < 5) rpc.poll();
      done = true;
      ep.drain();
    } else {
      while (!done.load()) rpc.poll();
      ep.drain();
    }
  });
  EXPECT_EQ(hits.load(), 5);
}

TEST(Rpc, MethodsCanIssueCastsFromHandlerContext) {
  // A method that notifies a third node while servicing a request — the
  // fine-grained-object pattern (method bodies communicate).
  shm::Cluster cluster(3);
  std::atomic<int> notified{0};
  std::atomic<bool> done{false};
  cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t notify = rpc.register_method(
        [&](NodeId, const void*, std::size_t) {
          ++notified;
          return std::vector<std::uint8_t>{};
        });
    std::uint16_t work = rpc.register_method(
        [&rpc, notify](NodeId, const void*, std::size_t) {
          rpc.cast(2, notify, nullptr, 0);  // posted (handler context)
          return std::vector<std::uint8_t>{42};
        });
    if (ep.id() == 0) {
      Future f = rpc.call(1, work, nullptr, 0);
      EXPECT_EQ(f.wait().at(0), 42);
      while (notified.load() < 1) rpc.poll();
      done = true;
      ep.drain();
    } else {
      while (!done.load()) rpc.poll();
      ep.drain();
    }
  });
  EXPECT_EQ(notified.load(), 1);
}

TEST(Rpc, LargeArgumentsAndReplies) {
  shm::Cluster cluster(2);
  std::atomic<bool> done{false};
  cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t reverse = rpc.register_method(
        [](NodeId, const void* data, std::size_t len) {
          const auto* p = static_cast<const std::uint8_t*>(data);
          return std::vector<std::uint8_t>(
              std::reverse_iterator(p + len), std::reverse_iterator(p));
        });
    if (ep.id() == 0) {
      std::vector<std::uint8_t> big(5000);
      for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<std::uint8_t>(i * 13);
      Future f = rpc.call(1, reverse, big.data(), big.size());
      auto& reply = f.wait();
      ASSERT_EQ(reply.size(), big.size());
      for (std::size_t i = 0; i < big.size(); ++i)
        ASSERT_EQ(reply[i], big[big.size() - 1 - i]);
      done = true;
      ep.drain();
    } else {
      while (!done.load()) rpc.poll();
      ep.drain();
    }
  });
}

}  // namespace
}  // namespace fm::rpc
