// The serving-plane hardening of fm::rpc under the PR-1 fault model
// (hw::FaultParams): dropped replies resolve kDeadline instead of wedging,
// deadline expiry releases window slots so a bounded-window caller keeps
// making progress through total loss, late replies for released slots are
// counted orphans (never a crash), cancel() frees a slot the same way, and
// through all of it the ledger conserves:
//
//   calls_sent == replies_delivered + calls_abandoned + pending()
//
// The last test closes the loop with the paper's layering argument: the
// SAME lossy fabric with FM-R underneath delivers every call — the fault
// model is survivable one layer down, so the RPC deadline machinery is
// policy, not a correctness crutch.
#include "rpc/rpc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "hw/fault.h"
#include "shm/cluster.h"

namespace fm::rpc {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

/// Echo method: reply = request bytes, each incremented (so a reply that
/// matched the wrong call would be caught by content, not just by id).
std::uint16_t register_echo_inc(RpcEngine& rpc,
                                std::atomic<std::uint64_t>* served = nullptr) {
  return rpc.register_method(
      [served](NodeId, const void* data, std::size_t len) {
        std::vector<std::uint8_t> out(len);
        const auto* in = static_cast<const std::uint8_t*>(data);
        for (std::size_t i = 0; i < len; ++i)
          out[i] = static_cast<std::uint8_t>(in[i] + 1);
        if (served) served->fetch_add(1);
        return out;
      });
}

TEST(RpcDeadline, DroppedTrafficResolvesDeadlineAndLedgerConserves) {
  // 20% of frames vanish; reliability stays OFF, so a dropped request or
  // reply is simply gone and only the deadline can resolve the call. Flow
  // control must be off too: with acks on but no retransmit timer, every
  // dropped frame would leak a send-window slot forever and the sender
  // would eventually spin on a window that can never drain — the lossy
  // profile is FM 1.0's plain streamed mode.
  hw::FaultParams faults;
  faults.drop_rate = 0.20;
  faults.seed = 0xd15ea5e;
  FmConfig cfg;
  cfg.flow_control = false;
  shm::Cluster cluster(2, cfg, 256, faults);

  constexpr std::size_t kCalls = 200;
  std::atomic<bool> done{false};
  std::uint64_t oks = 0, deadlines = 0, bad_payload = 0;
  const RunReport r = cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t echo = register_echo_inc(rpc);
    if (ep.id() != 0) {
      while (!done.load()) rpc.poll();
      return;
    }
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < kCalls; ++i) {
      std::uint32_t v = static_cast<std::uint32_t>(i);
      Future f = rpc.call_deadline(1, echo, &v, sizeof v, 2 * kMs);
      switch (f.wait_result(out)) {
        case Status::kOk: {
          ++oks;
          std::uint32_t got;
          ASSERT_EQ(out.size(), sizeof got);
          std::memcpy(&got, out.data(), sizeof got);
          std::uint32_t want = v;
          for (std::size_t b = 0; b < sizeof want; ++b)
            reinterpret_cast<std::uint8_t*>(&want)[b] += 1;
          if (got != want) ++bad_payload;
          break;
        }
        case Status::kDeadline:
          ++deadlines;
          break;
        default:
          ADD_FAILURE() << "unexpected resolution for call " << i;
      }
    }
    // Quiescent point: every Future consumed, so pending() must be zero
    // and the ledger must balance exactly.
    const RpcStats& s = rpc.stats();
    EXPECT_EQ(rpc.pending(), 0u);
    EXPECT_EQ(s.calls_sent, kCalls);
    EXPECT_EQ(s.calls_sent,
              s.replies_delivered + s.calls_abandoned + rpc.pending());
    EXPECT_EQ(s.replies_delivered, oks);
    EXPECT_EQ(s.calls_abandoned, deadlines);
    done = true;
  });
  EXPECT_TRUE(r.all_clean());
  EXPECT_EQ(oks + deadlines, kCalls);
  EXPECT_EQ(bad_payload, 0u);
  // With a 20% per-frame loss each call survives with p = 0.8^2; across
  // 200 seeded-PRNG calls both outcomes are certain to occur.
  EXPECT_GT(oks, 0u) << "every call was dropped";
  EXPECT_GT(deadlines, 0u) << "fault injection never dropped a call";
}

TEST(RpcDeadline, WindowSlotsReleaseUnderTotalLoss) {
  // Every frame is destroyed. With max_inflight = 4 and 12 calls, the
  // caller can only finish if deadline expiry releases window slots —
  // call_deadline() blocks servicing the endpoint until a slot frees, so a
  // sweep that failed to abandon overdue calls would wedge this test.
  hw::FaultParams faults;
  faults.burst_rate = 1.0;
  faults.burst_len = 1u << 20;
  faults.seed = 0xb1ac;
  FmConfig cfg;
  cfg.flow_control = false;  // lossy profile: see the previous test
  shm::Cluster cluster(2, cfg, 256, faults);

  constexpr std::size_t kCalls = 12;
  RpcConfig rcfg;
  rcfg.max_inflight = 4;
  const RunReport r = cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep, rcfg);
    std::uint16_t echo = register_echo_inc(rpc);
    if (ep.id() != 0) {
      // Nothing ever arrives; rendezvous without servicing.
      cluster.barrier();
      return;
    }
    std::vector<Future> calls;
    calls.reserve(kCalls);
    for (std::size_t i = 0; i < kCalls; ++i) {
      std::uint32_t v = static_cast<std::uint32_t>(i);
      calls.push_back(rpc.call_deadline(1, echo, &v, sizeof v, kMs));
    }
    std::vector<std::uint8_t> out;
    for (Future& f : calls) EXPECT_EQ(f.wait_result(out), Status::kDeadline);
    const RpcStats& s = rpc.stats();
    EXPECT_EQ(s.calls_sent, kCalls);
    EXPECT_EQ(s.calls_abandoned, kCalls);
    EXPECT_EQ(s.replies_delivered, 0u);
    EXPECT_EQ(rpc.pending(), 0u);
    EXPECT_EQ(s.calls_sent,
              s.replies_delivered + s.calls_abandoned + rpc.pending());
    cluster.barrier();
  });
  EXPECT_TRUE(r.all_clean());
  EXPECT_FALSE(r.timed_out);
}

TEST(RpcDeadline, LateReplyAfterDeadlineIsACountedOrphan) {
  // The responder stalls at a plain (non-servicing) barrier, so the
  // request sits undelivered past the caller's deadline; once released,
  // the responder serves it and the reply lands on a released slot.
  shm::Cluster cluster(2);
  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> done{false};
  const RunReport r = cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t echo = register_echo_inc(rpc, &served);
    if (ep.id() != 0) {
      cluster.barrier();  // stall: the deadline fires while we sit here
      while (!done.load()) rpc.poll();
      ep.drain();
      return;
    }
    std::uint32_t v = 7;
    Future f = rpc.call_deadline(1, echo, &v, sizeof v, kMs);
    std::vector<std::uint8_t> out{0xEE};
    EXPECT_EQ(f.wait_result(out), Status::kDeadline);
    EXPECT_EQ(out.size(), 1u) << "a failed call must not touch the output";
    EXPECT_EQ(rpc.pending(), 0u) << "deadline expiry must release the slot";
    EXPECT_EQ(rpc.stats().calls_abandoned, 1u);
    cluster.barrier();  // wake the responder; its reply is now an orphan
    while (rpc.stats().orphan_replies < 1) rpc.poll();
    EXPECT_EQ(served.load(), 1u);
    EXPECT_EQ(rpc.stats().replies_delivered, 0u);
    const RpcStats& s = rpc.stats();
    EXPECT_EQ(s.calls_sent,
              s.replies_delivered + s.calls_abandoned + rpc.pending());
    done = true;
    ep.drain();
  });
  EXPECT_TRUE(r.all_clean());
}

TEST(RpcDeadline, CancelReleasesTheSlotAndItsReplyIsAnOrphan) {
  shm::Cluster cluster(2);
  std::atomic<std::uint64_t> served{0};
  std::atomic<bool> done{false};
  const RunReport r = cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t echo = register_echo_inc(rpc, &served);
    if (ep.id() != 0) {
      cluster.barrier();  // stall until the caller has cancelled
      while (!done.load()) rpc.poll();
      ep.drain();
      return;
    }
    std::uint32_t v = 9;
    Future f = rpc.call(1, echo, &v, sizeof v);  // no deadline at all
    EXPECT_EQ(f.status(), Status::kAgain);
    f.cancel();
    EXPECT_EQ(f.status(), Status::kCancelled);
    EXPECT_TRUE(f.ready());
    std::vector<std::uint8_t> out;
    EXPECT_EQ(f.wait_result(out), Status::kCancelled);
    EXPECT_EQ(rpc.pending(), 0u) << "cancel must release the window slot";
    EXPECT_EQ(rpc.stats().calls_abandoned, 1u);
    cluster.barrier();
    while (rpc.stats().orphan_replies < 1) rpc.poll();
    EXPECT_EQ(served.load(), 1u)
        << "cancel is caller-local; the callee still executes the method";
    const RpcStats& s = rpc.stats();
    EXPECT_EQ(s.calls_sent,
              s.replies_delivered + s.calls_abandoned + rpc.pending());
    done = true;
    ep.drain();
  });
  EXPECT_TRUE(r.all_clean());
}

TEST(RpcDeadline, ReliabilityLayerAbsorbsTheSameFaultModel) {
  // The contrast case: identical loss plus duplication and reordering, but
  // FM-R underneath. Every call completes and the deadline machinery never
  // fires — the layer below restores the lossless-network assumption the
  // RPC layer was written against (§4.5's "fault-tolerance must be
  // provided by a higher level protocol").
  hw::FaultParams faults;
  faults.drop_rate = 0.15;
  faults.duplicate_rate = 0.05;
  faults.reorder_rate = 0.05;
  faults.seed = 0xf417;
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  shm::Cluster cluster(2, cfg, 256, faults);

  constexpr std::size_t kCalls = 100;
  std::atomic<bool> done{false};
  const RunReport r = cluster.run([&](shm::Endpoint& ep) {
    RpcEngine rpc(ep);
    std::uint16_t echo = register_echo_inc(rpc);
    if (ep.id() != 0) {
      while (!done.load()) rpc.poll();
      ep.drain();
      return;
    }
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < kCalls; ++i) {
      std::uint32_t v = static_cast<std::uint32_t>(i * 13 + 1);
      Future f = rpc.call_deadline(1, echo, &v, sizeof v, 250 * kMs);
      ASSERT_EQ(f.wait_result(out), Status::kOk) << "call " << i;
      std::uint32_t got;
      ASSERT_EQ(out.size(), sizeof got);
      std::memcpy(&got, out.data(), sizeof got);
      std::uint32_t want = v;
      for (std::size_t b = 0; b < sizeof want; ++b)
        reinterpret_cast<std::uint8_t*>(&want)[b] += 1;
      EXPECT_EQ(got, want);
    }
    const RpcStats& s = rpc.stats();
    EXPECT_EQ(s.replies_delivered, kCalls);
    EXPECT_EQ(s.calls_abandoned, 0u);
    EXPECT_EQ(s.orphan_replies, 0u);
    EXPECT_EQ(s.calls_sent,
              s.replies_delivered + s.calls_abandoned + rpc.pending());
    done = true;
    ep.drain();
  });
  EXPECT_TRUE(r.all_clean());
}

}  // namespace
}  // namespace fm::rpc
