// Heap discipline of the FM-Serve steady state: after warmup, a closed-loop
// call/response cycle — client call() + poll() AND the shard's extract/
// execute/respond loop, which runs concurrently in this process — performs
// ZERO heap allocations. Every serve table (session slots, call slots,
// parking pool, stream buffers, wire staging) is preallocated at engine
// construction, and the endpoint layers beneath were already proven
// allocation-free (tests/shm/shm_alloc_test), so a std::vector sneaking
// into the request path fails here instead of quietly costing microseconds
// per call.
//
// The global operator new/delete overrides are why this lives in its own
// test binary: the counters must see every allocation in the process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "serve/client.h"
#include "serve/server.h"
#include "shm/cluster.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::aligned_alloc(align, (size + align - 1) / align * align);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace fm::serve {
namespace {

TEST(ServeAllocFree, ClosedLoopCallResponseSteadyState) {
  shm::Cluster cluster(2);
  std::atomic<std::uint32_t> halt{0};
  HandlerId halt_id = cluster.register_handler(
      [&halt](shm::Endpoint&, NodeId, const void*, std::size_t) { ++halt; });
  constexpr std::size_t kWarmup = 500;
  constexpr std::size_t kMeasured = 2000;
  std::uint64_t measured = ~0ull;
  std::uint64_t bad_payload = 0;
  cluster.run([&](shm::Endpoint& ep) {
    if (ep.id() == 0) {
      // The shard: echo server, polled straight through both the warmup and
      // the measured window — its execute/respond path is inside the
      // counted region exactly like production.
      Server<shm::Endpoint> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             Server<shm::Endpoint>::ResponseWriter& w) {
        w.reply(d, n);
      });
      while (halt.load() < 1) srv.poll();
      cluster.barrier();
      ep.drain();
      return;
    }
    Client<shm::Endpoint> cli(ep, 1);
    std::size_t done = 0;
    std::uint8_t body[16];
    for (std::size_t j = 0; j < sizeof body; ++j)
      body[j] = static_cast<std::uint8_t>(j * 3 + 1);
    // The completion is installed once and captures plain references — a
    // per-call allocation in the callback would show up in the counter.
    cli.set_completion([&](const CallResult& r) {
      if (r.status != Status::kOk || r.len != sizeof body) ++bad_payload;
      ++done;
    });
    auto cycle = [&](std::size_t target) {
      while (done < target) {
        if (cli.call(77, 0, body, sizeof body, done,
                     /*deadline_ns=*/0) == Status::kOk) {
          const std::size_t want = done + 1;
          while (done < want) cli.poll();
        } else {
          cli.poll();
        }
      }
    };
    cycle(kWarmup);  // grows the posted-send pool etc. to steady state
    g_allocs.store(0);
    g_counting.store(true);
    cycle(kWarmup + kMeasured);
    g_counting.store(false);
    measured = g_allocs.load();
    while (ep.send4(0, halt_id, 0, 0, 0, 0) == Status::kAgain) ep.extract();
    cluster.barrier();
    ep.drain();
  });
  EXPECT_EQ(bad_payload, 0u);
  EXPECT_EQ(measured, 0u)
      << measured << " heap allocations in " << kMeasured
      << " steady-state serve round trips (call + poll + the shard's "
         "extract/execute/respond must all be allocation-free)";
}

}  // namespace
}  // namespace fm::serve
