// FM-Serve protocol tests: the serving plane's API contract over both real
// backends — per-session FIFO completion order, eager vs chunked responses,
// deadlines with orphan tolerance, cancellation, remote shedding with
// retry-after backoff, open-loop overload degrading into sheds (never
// deadlock), out-of-order parking with skip-bit advance, and graceful drain
// rebalancing sessions onto the surviving shard with ordering preserved.
#include "serve/client.h"
#include "serve/server.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "serve/hash.h"
#include "serve/wire.h"
#include "support/backends.h"

namespace fm {
namespace {

using serve::CallResult;
using serve::Client;
using serve::ServeConfig;
using serve::Server;

/// Per-rank halt flags: the client bumps a shard's slot over FM when the
/// test traffic is done, so shard loops terminate without any shared-memory
/// assumption (each net rank sees only its own forked copy — which is
/// exactly the slot its own handler bumps).
struct HaltFlags {
  std::array<std::atomic<std::uint32_t>, 8> n{};
};

template <class E>
void send_halt(E& ep, HandlerId halt_id, NodeId dest) {
  while (ep.send4(dest, halt_id, 0, 0, 0, 0) == Status::kAgain) ep.extract();
}

/// The common shutdown ritual (mirrors bench/serve_loadgen): a serviced
/// barrier so every rank is done issuing, a drain to flush tail acks, the
/// engine registry published into the RunReport, and a final barrier so no
/// rank destroys its engine while a peer still needs its acks.
template <class C, class E>
void shutdown_ritual(C& c, E& ep, const obs::Registry& reg) {
  barrier_serviced(c, ep);
  ep.drain();
  c.publish(reg);
  barrier_serviced(c, ep);
}

std::uint8_t pat(std::uint64_t cookie, std::size_t j) {
  return static_cast<std::uint8_t>(cookie * 31 + j * 7 + 1);
}

template <class B>
class ServeTyped : public ::testing::Test {};

TYPED_TEST_SUITE(ServeTyped, testing::BothBackends, testing::BackendNames);

// ---------------------------------------------------------------------------
// Echo across two shards: every call completes kOk exactly once, and each
// session's completions fire in issue order (the plane's core invariant).
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, EchoCompletesInPerSessionOrderAcrossShards) {
  using B = TypeParam;
  using E = typename B::Endpoint;
  constexpr std::uint32_t kShards = 2;
  constexpr std::size_t kSessions = 4;
  constexpr std::uint64_t kCallsPer = 100;

  auto cluster = B::make(kShards + 1);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() < kShards) {
      Server<E> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             typename Server<E>::ResponseWriter& w) {
        w.reply(d, n);
      });
      while (halt.n[ep.id()].load() < 1) srv.poll();
      EXPECT_GT(srv.counters().requests_completed, 0u);
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    Client<E> cli(ep, kShards);
    // Deterministic placement: two sessions per shard, so "across shards"
    // is guaranteed rather than left to how 100..103 happen to hash.
    std::array<std::uint64_t, kSessions> sess{};
    {
      std::size_t per_shard[kShards] = {};
      std::size_t k = 0;
      for (std::uint64_t id = 100; k < kSessions; ++id) {
        const std::uint32_t sh = serve::shard_for(id, kShards, 0b11);
        if (per_shard[sh] < kSessions / kShards) {
          sess[k++] = id;
          ++per_shard[sh];
        }
      }
    }
    std::array<std::uint64_t, kSessions> oks{};
    std::array<bool, kSessions> outstanding{};
    cli.set_completion([&](const CallResult& r) {
      std::size_t idx = kSessions;
      for (std::size_t i = 0; i < kSessions; ++i)
        if (sess[i] == r.session) idx = i;
      ASSERT_LT(idx, kSessions);
      outstanding[idx] = false;
      if (r.status == Status::kOk) {
        EXPECT_EQ(r.cookie, oks[idx]) << "session " << r.session
                                      << " completed out of order";
        ASSERT_EQ(r.len, 16u);
        for (std::size_t j = 0; j < 16; ++j)
          ASSERT_EQ(static_cast<const std::uint8_t*>(r.data)[j],
                    pat(r.cookie, j));
        ++oks[idx];
      } else {
        EXPECT_EQ(r.status, Status::kOverload);  // retried below
      }
    });
    std::uint8_t body[16];
    for (;;) {
      bool all_done = true;
      for (std::size_t i = 0; i < kSessions; ++i) {
        if (oks[i] >= kCallsPer) continue;
        all_done = false;
        if (outstanding[i]) continue;
        for (std::size_t j = 0; j < 16; ++j) body[j] = pat(oks[i], j);
        if (cli.call(sess[i], 0, body, 16, /*cookie=*/oks[i],
                     /*deadline_ns=*/0) == Status::kOk)
          outstanding[i] = true;
      }
      if (all_done) break;
      cli.poll();
    }
    while (!cli.quiesced()) cli.poll();
    EXPECT_EQ(cli.counters().calls_completed, kSessions * kCallsPer);
    EXPECT_EQ(cli.counters().calls_deadline, 0u);
    EXPECT_EQ(cli.counters().orphan_responses, 0u);
    for (NodeId d = 0; d < kShards; ++d) send_halt(ep, halt_id, d);
    shutdown_ritual(*c, ep, cli.registry());
  });
}

// ---------------------------------------------------------------------------
// A response over eager_max_bytes rides the chunked credit-pulled path and
// reassembles byte-exact; a tiny append()/end() stream does too.
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, LargeResponsesStreamUnderCreditAndReassemble) {
  using B = TypeParam;
  using E = typename B::Endpoint;
  constexpr std::size_t kRespBytes = 8192;  // > eager_max (2048), 8 chunks

  auto cluster = B::make(2);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() == 0) {
      Server<E> srv(ep);
      std::vector<std::uint8_t> big(kRespBytes);
      srv.register_method([&big](NodeId, std::uint64_t, const void* d,
                                 std::size_t n,
                                 typename Server<E>::ResponseWriter& w) {
        ASSERT_EQ(n, 1u);
        const std::uint8_t cookie = *static_cast<const std::uint8_t*>(d);
        for (std::size_t j = 0; j < big.size(); ++j) big[j] = pat(cookie, j);
        w.reply(big.data(), big.size());
      });
      srv.register_method([](NodeId, std::uint64_t, const void*, std::size_t,
                             typename Server<E>::ResponseWriter& w) {
        w.append("alpha", 5);
        w.append("beta", 4);
        w.append("gamma", 5);
        w.end();
      });
      while (halt.n[0].load() < 1) srv.poll();
      EXPECT_EQ(srv.counters().responses_streamed, 3u);
      EXPECT_EQ(srv.counters().stream_chunks_sent,
                2 * (kRespBytes / 1024) + 1);
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    Client<E> cli(ep, 1);
    std::size_t done = 0;
    std::uint64_t last_cookie = 0;
    cli.set_completion([&](const CallResult& r) {
      ASSERT_EQ(r.status, Status::kOk);
      if (r.cookie < 2) {  // the two large unary calls
        ASSERT_EQ(r.len, kRespBytes);
        for (std::size_t j = 0; j < kRespBytes; ++j)
          ASSERT_EQ(static_cast<const std::uint8_t*>(r.data)[j],
                    pat(r.cookie, j))
              << "byte " << j;
      } else {  // the explicit append()/end() stream
        ASSERT_EQ(r.len, 14u);
        EXPECT_EQ(0, std::memcmp(r.data, "alphabetagamma", 14));
      }
      last_cookie = r.cookie;
      ++done;
    });
    for (std::uint64_t i = 0; i < 3; ++i) {
      const std::uint8_t body = static_cast<std::uint8_t>(i);
      ASSERT_EQ(cli.call(7, i < 2 ? 0 : 1, &body, 1, i, 0), Status::kOk);
      const std::size_t want = done + 1;
      while (done < want) cli.poll();
    }
    EXPECT_EQ(done, 3u);
    EXPECT_EQ(last_cookie, 2u);
    EXPECT_EQ(cli.counters().chunks_received, 2 * (kRespBytes / 1024) + 1);
    EXPECT_GE(cli.counters().credits_sent, 2u);
    send_halt(ep, halt_id, 0);
    shutdown_ritual(*c, ep, cli.registry());
  });
}

// ---------------------------------------------------------------------------
// Deadlines: with the shard stalled, overdue calls resolve kDeadline in
// session order and release their window slots; when the shard wakes and
// answers anyway, the late responses are tolerated orphans, never a crash.
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, DeadlineExpiryReleasesInOrderAndLateRepliesAreOrphans) {
  using B = TypeParam;
  using E = typename B::Endpoint;
  constexpr std::size_t kCalls = 4;

  FmConfig fcfg;
  // Keep FM-R's dead-peer horizon far beyond the stall so the deadline is
  // the only failure that can fire.
  fcfg.retransmit_timeout_ns = 5'000'000;
  auto cluster = B::make(2, fcfg);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() == 0) {
      Server<E> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             typename Server<E>::ResponseWriter& w) {
        w.reply(d, n);
      });
      c->barrier();  // stall: do not serve until the client saw deadlines
      while (halt.n[0].load() < 1) srv.poll();
      // The stalled requests executed on wake; their cancels arrived too
      // late to apply (the responses were already owed).
      EXPECT_EQ(srv.counters().requests_completed, kCalls);
      EXPECT_EQ(srv.counters().cancels_received, kCalls);
      EXPECT_EQ(srv.counters().cancels_applied, 0u);
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    Client<E> cli(ep, 1);
    std::vector<CallResult> results;
    cli.set_completion([&](const CallResult& r) {
      CallResult copy = r;
      copy.data = nullptr;  // payload is callback-scoped
      results.push_back(copy);
    });
    std::uint8_t body[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    for (std::uint64_t i = 0; i < kCalls; ++i)
      ASSERT_EQ(cli.call(9, 0, body, sizeof body, i,
                         /*deadline_ns=*/2'000'000),
                Status::kOk);
    while (results.size() < kCalls) cli.poll();
    for (std::size_t i = 0; i < kCalls; ++i) {
      EXPECT_EQ(results[i].cookie, i) << "deadline completions out of order";
      EXPECT_EQ(results[i].status, Status::kDeadline);
    }
    EXPECT_EQ(cli.counters().calls_deadline, kCalls);
    EXPECT_EQ(cli.inflight(), 0u) << "deadline did not release the window";
    c->barrier();  // wake the shard; its answers are now all orphans
    while (cli.counters().orphan_responses < kCalls) cli.poll();
    EXPECT_EQ(results.size(), kCalls) << "an orphan fired a completion";
    send_halt(ep, halt_id, 0);
    shutdown_ritual(*c, ep, cli.registry());
  });
}

// ---------------------------------------------------------------------------
// cancel(): resolves kCancelled locally, completions still fire in session
// order around it, and the executed-anyway response becomes an orphan.
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, CancelResolvesInOrderAndItsLateReplyIsAnOrphan) {
  using B = TypeParam;
  using E = typename B::Endpoint;

  FmConfig fcfg;
  fcfg.retransmit_timeout_ns = 5'000'000;
  auto cluster = B::make(2, fcfg);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() == 0) {
      Server<E> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             typename Server<E>::ResponseWriter& w) {
        w.reply(d, n);
      });
      c->barrier();  // stall until the cancel is in
      while (halt.n[0].load() < 1) srv.poll();
      EXPECT_EQ(srv.counters().requests_completed, 3u);
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    Client<E> cli(ep, 1);
    std::vector<std::pair<std::uint64_t, Status>> results;
    cli.set_completion([&](const CallResult& r) {
      results.emplace_back(r.cookie, r.status);
    });
    std::uint8_t body[4] = {9, 9, 9, 9};
    for (std::uint64_t i = 0; i < 3; ++i)
      ASSERT_EQ(cli.call(11, 0, body, sizeof body, i, 0), Status::kOk);
    ASSERT_EQ(cli.cancel(11, 1), Status::kOk);
    // Ordered release: the cancelled seq 1 must NOT complete before seq 0.
    EXPECT_TRUE(results.empty());
    c->barrier();  // wake the shard
    while (results.size() < 3) cli.poll();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0], (std::pair<std::uint64_t, Status>{0, Status::kOk}));
    EXPECT_EQ(results[1],
              (std::pair<std::uint64_t, Status>{1, Status::kCancelled}));
    EXPECT_EQ(results[2], (std::pair<std::uint64_t, Status>{2, Status::kOk}));
    while (cli.counters().orphan_responses < 1) cli.poll();
    EXPECT_EQ(cli.counters().calls_cancelled, 1u);
    EXPECT_EQ(cli.counters().cancels_sent, 1u);
    send_halt(ep, halt_id, 0);
    shutdown_ritual(*c, ep, cli.registry());
  });
}

// ---------------------------------------------------------------------------
// Remote shed: a request over the SERVER's max_request_bytes is shed with
// kTooLarge; the client completes it kOverload, honors the retry-after
// backoff (local sheds meanwhile), and the owed kCancel advances the
// shard's FIFO window so the session's next call executes.
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, OversizeRequestShedsRemotelyBacksOffThenRecovers) {
  using B = TypeParam;
  using E = typename B::Endpoint;

  auto cluster = B::make(2);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() == 0) {
      ServeConfig scfg;
      scfg.max_request_bytes = 64;  // tighter than the client's bound
      Server<E> srv(ep, scfg);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             typename Server<E>::ResponseWriter& w) {
        w.reply(d, n);
      });
      while (halt.n[0].load() < 1) srv.poll();
      EXPECT_EQ(srv.counters().shed_too_large, 1u);
      EXPECT_EQ(srv.counters().cancels_applied, 1u)
          << "the shed seq's skip never advanced the FIFO window";
      EXPECT_EQ(srv.counters().requests_completed, 1u);
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    Client<E> cli(ep, 1);
    std::vector<std::pair<std::uint64_t, Status>> results;
    cli.set_completion([&](const CallResult& r) {
      results.emplace_back(r.cookie, r.status);
    });
    std::uint8_t big[256] = {};
    ASSERT_EQ(cli.call(21, 0, big, sizeof big, 0, 0), Status::kOk);
    while (results.empty()) cli.poll();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0],
              (std::pair<std::uint64_t, Status>{0, Status::kOverload}));
    EXPECT_EQ(cli.counters().calls_shed_remote, 1u);
    // The session is backing off per the server's retry-after hint: an
    // immediate retry sheds locally without touching the wire.
    std::uint8_t small[8] = {};
    EXPECT_EQ(cli.call(21, 0, small, sizeof small, 1, 0), Status::kOverload);
    EXPECT_GE(cli.counters().calls_shed_local, 1u);
    // Once the backoff lapses the session recovers on the same shard.
    while (cli.call(21, 0, small, sizeof small, 1, 0) != Status::kOk)
      cli.poll();
    while (results.size() < 2) cli.poll();
    EXPECT_EQ(results[1], (std::pair<std::uint64_t, Status>{1, Status::kOk}));
    send_halt(ep, halt_id, 0);
    shutdown_ritual(*c, ep, cli.registry());
  });
}

// ---------------------------------------------------------------------------
// Out-of-order arrivals (hand-rolled wire client): later seqs park in the
// bounded pool, a kCancel for a parked seq frees it and sets its skip bit,
// and the head arrival executes-then-unparks in seq order.
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, OutOfOrderSeqsParkAndCancelledSeqIsSkipped) {
  using B = TypeParam;
  using E = typename B::Endpoint;
  constexpr std::uint64_t kSession = 0x4242;

  auto cluster = B::make(2);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() == 0) {
      Server<E> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void*, std::size_t,
                             typename Server<E>::ResponseWriter& w) {
        w.reply("okay", 4);
      });
      while (halt.n[0].load() < 1) srv.poll();
      EXPECT_EQ(srv.counters().requests_admitted, 3u);
      EXPECT_EQ(srv.counters().ooo_parked, 2u);
      EXPECT_EQ(srv.counters().ooo_unparked, 1u);
      EXPECT_EQ(srv.counters().cancels_applied, 1u);
      EXPECT_EQ(srv.counters().requests_completed, 2u);
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    // Raw-wire client: registered at the same point as the server's
    // handler, so this rank's handler id addresses the server engine.
    std::vector<std::uint32_t> got;
    HandlerId h = ep.register_handler(
        [&got](E&, NodeId, const void* d, std::size_t n) {
          const serve::WireHeader rh = serve::decode_header(d, n);
          ASSERT_EQ(static_cast<serve::Op>(rh.op), serve::Op::kResponse);
          got.push_back(rh.seq);
        });
    std::uint8_t wire[serve::kWireHeaderBytes + 8] = {};
    auto send_op = [&](serve::Op op, std::uint32_t seq, std::size_t body) {
      serve::WireHeader w;
      w.op = static_cast<std::uint16_t>(op);
      w.method = 0;
      w.seq = seq;
      w.session = kSession;
      w.epoch = 0;
      w.aux = 0;
      serve::encode_header(wire, w);
      while (ep.send(0, h, wire, serve::kWireHeaderBytes + body) ==
             Status::kAgain)
        ep.extract();
    };
    send_op(serve::Op::kRequest, 2, 8);  // parks (gap 2)
    send_op(serve::Op::kRequest, 1, 8);  // parks (gap 1)
    send_op(serve::Op::kCancel, 1, 0);   // unparks seq 1, sets its skip bit
    send_op(serve::Op::kRequest, 0, 8);  // executes, skips 1, unparks 2
    while (got.size() < 2) ep.extract();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], 0u);
    EXPECT_EQ(got[1], 2u);
    send_halt(ep, halt_id, 0);
    barrier_serviced(*c, ep);
    ep.drain();
    barrier_serviced(*c, ep);
  });
}

// ---------------------------------------------------------------------------
// Open-loop overload: issuing far past capacity degrades into kOverload
// sheds, every issued call still completes exactly once, the conservation
// ledger balances, and nothing deadlocks (the test terminating IS the
// liveness assertion — the net watchdog turns a hang into a failed report).
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, OpenLoopOverloadShedsConservesAndStaysLive) {
  using B = TypeParam;
  using E = typename B::Endpoint;
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kAttempts = 4000;

  auto cluster = B::make(2);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() == 0) {
      Server<E> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             typename Server<E>::ResponseWriter& w) {
        w.reply(d, n);
      });
      while (halt.n[0].load() < 1) srv.poll();
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    ServeConfig ccfg;
    ccfg.client_inflight_cap = 32;  // well under the open-loop offered rate
    Client<E> cli(ep, 1, ccfg);
    std::uint64_t done_ok = 0, done_shed = 0, done_other = 0;
    cli.set_completion([&](const CallResult& r) {
      if (r.status == Status::kOk)
        ++done_ok;
      else if (r.status == Status::kOverload)
        ++done_shed;
      else
        ++done_other;
    });
    std::uint64_t issued = 0, shed_at_call = 0;
    std::uint8_t body[8] = {};
    for (std::size_t i = 0; i < kAttempts; ++i) {
      const Status st =
          cli.call(500 + (i % kSessions), 0, body, sizeof body, i, 0);
      if (st == Status::kOk)
        ++issued;
      else
        ++shed_at_call;
      if ((i & 15) == 0) cli.poll();
    }
    while (!cli.quiesced()) cli.poll();
    EXPECT_GT(shed_at_call, 0u) << "open-loop load never hit admission";
    EXPECT_EQ(issued + shed_at_call, kAttempts);
    EXPECT_EQ(cli.counters().calls_issued, issued);
    EXPECT_EQ(done_ok + done_shed + done_other, issued)
        << "an issued call never completed (or completed twice)";
    EXPECT_EQ(done_other, 0u);
    EXPECT_EQ(cli.counters().calls_completed, done_ok);
    EXPECT_EQ(cli.counters().calls_shed_remote, done_shed);
    EXPECT_EQ(cli.counters().calls_shed_local, shed_at_call);
    send_halt(ep, halt_id, 0);
    shutdown_ritual(*c, ep, cli.registry());
  });
}

// ---------------------------------------------------------------------------
// Graceful drain: a method flips shard 0 into draining; its sessions ride
// the advisory sheds onto shard 1 with a fresh epoch, per-session cookie
// order survives the rebalance, and the drained shard quiesces cleanly.
// ---------------------------------------------------------------------------
TYPED_TEST(ServeTyped, DrainRebalancesSessionsPreservingPerSessionOrder) {
  using B = TypeParam;
  using E = typename B::Endpoint;
  constexpr std::uint32_t kShards = 2;
  constexpr std::size_t kSessions = 6;
  constexpr std::uint64_t kPhase = 40;  // kOk completions per session/phase

  auto cluster = B::make(kShards + 1);
  auto* c = cluster.get();
  HaltFlags halt;
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt.n[ep.id()].fetch_add(1);
      });

  B::run(*c, [&](E& ep) {
    if (ep.id() < kShards) {
      Server<E> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             typename Server<E>::ResponseWriter& w) {
        w.reply(d, n);
      });
      srv.register_method([&srv](NodeId, std::uint64_t, const void*,
                                 std::size_t,
                                 typename Server<E>::ResponseWriter&) {
        srv.begin_drain();  // auto empty reply acks the drain request
      });
      while (halt.n[ep.id()].load() < 1) srv.poll();
      if (ep.id() == 0) {
        EXPECT_TRUE(srv.draining());
        EXPECT_TRUE(srv.drained());
        EXPECT_GE(srv.counters().shed_draining, 1u);
      } else {
        EXPECT_FALSE(srv.draining());
        // Rebalanced sessions arrived with a bumped epoch to adopt.
        EXPECT_GE(srv.counters().epochs_adopted, 3u);
      }
      shutdown_ritual(*c, ep, srv.registry());
      return;
    }
    // Deterministic placement: three sessions per shard, plus a dedicated
    // drain-trigger session owned by shard 0.
    std::vector<std::uint64_t> sess;
    std::size_t on0 = 0, on1 = 0;
    for (std::uint64_t id = 1000; sess.size() < kSessions; ++id) {
      const std::uint32_t sh = serve::shard_for(id, kShards, 0b11);
      if (sh == 0 && on0 < kSessions / 2) {
        sess.push_back(id);
        ++on0;
      } else if (sh == 1 && on1 < kSessions / 2) {
        sess.push_back(id);
        ++on1;
      }
    }
    std::uint64_t drain_sess = 2000;
    while (serve::shard_for(drain_sess, kShards, 0b11) != 0) ++drain_sess;

    Client<E> cli(ep, kShards);
    std::array<std::uint64_t, kSessions> oks{};
    std::array<bool, kSessions> outstanding{};
    bool drain_completed = false;
    Status drain_status = Status::kAgain;
    cli.set_completion([&](const CallResult& r) {
      if (r.session == drain_sess) {
        drain_completed = true;
        drain_status = r.status;
        return;
      }
      std::size_t idx = kSessions;
      for (std::size_t i = 0; i < kSessions; ++i)
        if (sess[i] == r.session) idx = i;
      ASSERT_LT(idx, kSessions);
      outstanding[idx] = false;
      if (r.status == Status::kOk) {
        EXPECT_EQ(r.cookie, oks[idx])
            << "session " << r.session << " order broke across the rebalance";
        ++oks[idx];
      } else {
        EXPECT_EQ(r.status, Status::kOverload);  // shed: retried below
      }
    });
    std::uint8_t body[8] = {};
    auto run_phase = [&](std::uint64_t target) {
      for (;;) {
        bool all_done = true;
        for (std::size_t i = 0; i < kSessions; ++i) {
          if (oks[i] >= target) continue;
          all_done = false;
          if (outstanding[i]) continue;
          if (cli.call(sess[i], 0, body, sizeof body, oks[i], 0) ==
              Status::kOk)
            outstanding[i] = true;
        }
        if (all_done) break;
        cli.poll();
      }
    };
    run_phase(kPhase);
    // Retire shard 0 via its drain method (retried if the request itself
    // gets shed), then keep serving through the rebalance.
    std::uint64_t drain_cookie = 0;
    do {
      drain_completed = false;
      while (cli.call(drain_sess, 1, body, 1, drain_cookie++, 0) !=
             Status::kOk)
        cli.poll();
      while (!drain_completed) cli.poll();
    } while (drain_status != Status::kOk);
    run_phase(2 * kPhase);
    while (!cli.quiesced()) cli.poll();
    EXPECT_EQ(cli.live_mask(), 0b10u) << "shard 0 was not retired";
    EXPECT_GE(cli.counters().drain_advisories, 1u);
    EXPECT_GE(cli.counters().calls_shed_remote, 1u);
    // The three shard-0 sessions and the drain session all rehashed once.
    EXPECT_EQ(cli.counters().rebalances, kSessions / 2 + 1);
    for (std::size_t i = 0; i < kSessions; ++i)
      EXPECT_EQ(oks[i], 2 * kPhase) << "session " << sess[i];
    for (NodeId d = 0; d < kShards; ++d) send_halt(ep, halt_id, d);
    shutdown_ritual(*c, ep, cli.registry());
  });
}

}  // namespace
}  // namespace fm
