// FM-San chaos leg for FM-Serve: a shard dies mid-run (SIGKILL for a
// forked net rank, protocol death for an shm thread). The invariants under
// test are the plane's failure semantics — the victim's inflight calls
// drain kPeerDead via FM-R's bounded dead-peer verdict (the client's kPing
// probes guarantee there is traffic to judge), its sessions rehash onto the
// surviving shard with a fresh epoch, per-session kOk cookie order survives
// the failover, and the survivor keeps serving throughout. Nothing hangs:
// the net watchdog turns a wedged run into a timed-out report.
#include "serve/client.h"
#include "serve/server.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <vector>

#include "serve/hash.h"
#include "support/backends.h"

namespace fm {
namespace {

using serve::CallResult;
using serve::Client;
using serve::Server;

constexpr std::uint32_t kShards = 2;
constexpr NodeId kVictim = 1;
constexpr NodeId kSurvivor = 0;
constexpr NodeId kClientRank = kShards;
constexpr std::size_t kSessions = 8;
constexpr std::uint64_t kOksPer = 60;

template <class B>
class ServeChaos : public ::testing::Test {};

TYPED_TEST_SUITE(ServeChaos, testing::BothBackends, testing::BackendNames);

TYPED_TEST(ServeChaos, KilledShardDrainsPeerDeadAndSessionsFailOver) {
  using B = TypeParam;
  using E = typename B::Endpoint;

  FmConfig cfg;
  // Death is only detectable through FM-R (mandatory on net; opted into on
  // shm): tight retransmit budget so the verdict lands fast.
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 1'000'000;  // 1 ms
  cfg.max_retries = 5;

  auto cluster = B::make(kShards + 1, cfg);
  auto* c = cluster.get();
  std::array<std::atomic<std::uint32_t>, 4> halt{};
  HandlerId halt_id = c->register_handler(
      [&halt](E& ep, NodeId, const void*, std::size_t) {
        halt[ep.id()].fetch_add(1);
      });

  const RunReport r = c->run([&](E& ep) {
    const NodeId me = ep.id();
    if (me < kShards) {
      Server<E> srv(ep);
      srv.register_method([](NodeId, std::uint64_t, const void* d,
                             std::size_t n,
                             typename Server<E>::ResponseWriter& w) {
        w.reply(d, n);
      });
      if (me == kVictim) {
        // Serve long enough for real traffic to be mid-flight, then die
        // the backend's death: SIGKILL for a forked net rank, a silent
        // return (never extracting again) for an shm thread.
        while (srv.counters().requests_completed < 10) srv.poll();
        if (B::kProcessRanks) std::raise(SIGKILL);
        return;
      }
      while (halt[me].load() < 1) srv.poll();
      EXPECT_GT(srv.counters().requests_completed, 0u);
      ep.drain();
      c->publish(srv.registry());
      if constexpr (B::kProcessRanks) {
        if (::testing::Test::HasFailure()) {
          testing::detail::dump_rank_failure(me);
          c->mark_child_failed();
        }
      }
      return;
    }

    // The client: deterministic placement, half the sessions on each shard
    // so the kill is guaranteed to strand real sessions.
    std::vector<std::uint64_t> sess;
    std::size_t per_shard[kShards] = {};
    for (std::uint64_t id = 3000; sess.size() < kSessions; ++id) {
      const std::uint32_t sh = serve::shard_for(id, kShards, 0b11);
      if (per_shard[sh] < kSessions / kShards) {
        sess.push_back(id);
        ++per_shard[sh];
      }
    }
    Client<E> cli(ep, kShards);
    std::array<std::uint64_t, kSessions> oks{};
    std::array<bool, kSessions> outstanding{};
    cli.set_completion([&](const CallResult& r2) {
      std::size_t idx = kSessions;
      for (std::size_t i = 0; i < kSessions; ++i)
        if (sess[i] == r2.session) idx = i;
      ASSERT_LT(idx, kSessions);
      outstanding[idx] = false;
      if (r2.status == Status::kOk) {
        // The invariant that must survive the failover: kOk completions of
        // one session are consecutive cookies, exactly once each, even
        // when the cookie was first issued to the shard that died.
        EXPECT_EQ(r2.cookie, oks[idx])
            << "session " << r2.session << " order broke across the kill";
        ++oks[idx];
      } else {
        EXPECT_TRUE(r2.status == Status::kOverload ||
                    r2.status == Status::kPeerDead)
            << "unexpected status " << static_cast<int>(r2.status);
      }
    });
    std::uint8_t body[16] = {};
    for (;;) {
      bool all_done = true;
      for (std::size_t i = 0; i < kSessions; ++i) {
        if (oks[i] >= kOksPer) continue;
        all_done = false;
        if (outstanding[i]) continue;
        if (cli.call(sess[i], 0, body, sizeof body, oks[i],
                     /*deadline_ns=*/0) == Status::kOk)
          outstanding[i] = true;
      }
      if (all_done) break;
      cli.poll();
    }
    while (!cli.quiesced()) cli.poll();

    EXPECT_TRUE(ep.peer_dead(kVictim));
    EXPECT_EQ(cli.live_mask(), 1u << kSurvivor);
    EXPECT_GE(cli.counters().calls_dead_peer, 1u)
        << "no inflight call drained kPeerDead";
    EXPECT_GE(cli.counters().rebalances, kSessions / kShards)
        << "the victim's sessions never rehashed";
    EXPECT_EQ(cli.counters().calls_completed, kSessions * kOksPer);
    EXPECT_GE(cli.counters().pings_sent, 1u);

    while (ep.send4(kSurvivor, halt_id, 0, 0, 0, 0) == Status::kAgain)
      ep.extract();
    ep.drain();
    c->publish(cli.registry());
    if constexpr (B::kProcessRanks) {
      if (::testing::Test::HasFailure()) {
        testing::detail::dump_rank_failure(me);
        c->mark_child_failed();
      }
    }
  });

  ASSERT_FALSE(r.timed_out) << "the plane hung instead of failing over";
  for (const RankStatus& rs : r.ranks) {
    if (rs.id == kVictim && B::kProcessRanks) {
      EXPECT_FALSE(rs.exited) << "victim was not killed";
      EXPECT_EQ(rs.term_signal, SIGKILL);
    } else if (rs.id != kVictim) {
      EXPECT_TRUE(rs.clean()) << "rank " << rs.id;
    }
  }
  // The failover is visible in the merged counters: dead-peer drains and
  // session rebalances on the client, service on the survivor.
  EXPECT_GE(r.sum_counter("calls_dead_peer"), 1.0);
  EXPECT_GE(r.sum_counter("rebalances"),
            static_cast<double>(kSessions / kShards));
  EXPECT_EQ(r.sum_counter("calls_completed"),
            static_cast<double>(kSessions * kOksPer));
}

}  // namespace
}  // namespace fm
