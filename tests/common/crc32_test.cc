#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"

namespace fm {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(crc32("a", 1), 0xe8b7be43u);
  const std::string gnu = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(crc32(gnu.data(), gnu.size()), 0x414fa339u);
}

TEST(Crc32, ChainingEqualsOneShot) {
  Xoshiro256 rng(7);
  std::vector<unsigned char> data(4096);
  for (auto& b : data) b = static_cast<unsigned char>(rng());
  std::uint32_t whole = crc32(data.data(), data.size());
  for (std::size_t split : {1u, 17u, 128u, 4095u}) {
    std::uint32_t a = crc32(data.data(), split);
    std::uint32_t b = crc32(data.data() + split, data.size() - split, a);
    EXPECT_EQ(b, whole) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<unsigned char> data(256, 0xAB);
  std::uint32_t base = crc32(data.data(), data.size());
  for (std::size_t byte : {0u, 100u, 255u}) {
    for (int bit : {0, 3, 7}) {
      auto copy = data;
      copy[byte] ^= static_cast<unsigned char>(1 << bit);
      EXPECT_NE(crc32(copy.data(), copy.size()), base);
    }
  }
}

}  // namespace
}  // namespace fm
