// Unit tests for the strict FM_* environment-knob parser (fm::env).
//
// The contract under test: unset/empty means "default" (returns false,
// output untouched); a set variable either parses exactly and in range, or
// the process dies with a message naming the variable. Death cases use
// EXPECT_DEATH so the abort happens in a forked child.
#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

namespace fm::env {
namespace {

// Scoped setenv so one test's knob can't leak into the next.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr)
      ::unsetenv(name);
    else
      ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

constexpr char kKnob[] = "FM_TEST_ENV_KNOB";

TEST(EnvReadU64, UnsetReturnsFalseAndLeavesOutputUntouched) {
  ScopedEnv e(kKnob, nullptr);
  std::uint64_t v = 123;
  EXPECT_FALSE(read_u64(kKnob, &v));
  EXPECT_EQ(v, 123u);
}

TEST(EnvReadU64, EmptyMeansUnset) {
  ScopedEnv e(kKnob, "");
  std::uint64_t v = 123;
  EXPECT_FALSE(read_u64(kKnob, &v));
  EXPECT_EQ(v, 123u);
}

TEST(EnvReadU64, ParsesDecimal) {
  ScopedEnv e(kKnob, "42");
  std::uint64_t v = 0;
  EXPECT_TRUE(read_u64(kKnob, &v));
  EXPECT_EQ(v, 42u);
}

TEST(EnvReadU64, ParsesHexWithPrefix) {
  ScopedEnv e(kKnob, "0x10");
  std::uint64_t v = 0;
  EXPECT_TRUE(read_u64(kKnob, &v));
  EXPECT_EQ(v, 16u);
}

TEST(EnvReadU64, LeadingZeroIsDecimalNotOctal) {
  ScopedEnv e(kKnob, "010");
  std::uint64_t v = 0;
  EXPECT_TRUE(read_u64(kKnob, &v));
  EXPECT_EQ(v, 10u);
}

TEST(EnvReadU64, BoundsAreInclusive) {
  ScopedEnv e(kKnob, "7");
  std::uint64_t v = 0;
  EXPECT_TRUE(read_u64(kKnob, &v, 7, 7));
  EXPECT_EQ(v, 7u);
}

TEST(EnvReadU64, Max64BitValueParses) {
  ScopedEnv e(kKnob, "18446744073709551615");
  std::uint64_t v = 0;
  EXPECT_TRUE(read_u64(kKnob, &v));
  EXPECT_EQ(v, ~std::uint64_t{0});
}

using EnvDeathTest = ::testing::Test;

TEST(EnvDeathTest, TrailingGarbageIsFatal) {
  ScopedEnv e(kKnob, "12abc");
  std::uint64_t v = 0;
  EXPECT_DEATH((void)read_u64(kKnob, &v), "FM_TEST_ENV_KNOB.*trailing");
}

TEST(EnvDeathTest, NegativeIsFatalNotWrapped) {
  // strtoull would wrap "-3" into 2^64-3; the knob parser must die instead.
  ScopedEnv e(kKnob, "-3");
  std::uint64_t v = 0;
  EXPECT_DEATH((void)read_u64(kKnob, &v), "bare non-negative integer");
}

TEST(EnvDeathTest, ExplicitPlusSignIsFatal) {
  ScopedEnv e(kKnob, "+5");
  std::uint64_t v = 0;
  EXPECT_DEATH((void)read_u64(kKnob, &v), "bare non-negative integer");
}

TEST(EnvDeathTest, LeadingWhitespaceIsFatal) {
  ScopedEnv e(kKnob, " 5");
  std::uint64_t v = 0;
  EXPECT_DEATH((void)read_u64(kKnob, &v), "bare non-negative integer");
}

TEST(EnvDeathTest, BelowMinIsFatal) {
  ScopedEnv e(kKnob, "0");
  std::uint64_t v = 0;
  EXPECT_DEATH((void)read_u64(kKnob, &v, 1, 100), "out of range");
}

TEST(EnvDeathTest, AboveMaxIsFatal) {
  ScopedEnv e(kKnob, "101");
  std::uint64_t v = 0;
  EXPECT_DEATH((void)read_u64(kKnob, &v, 1, 100), "out of range");
}

TEST(EnvDeathTest, OverflowIsFatal) {
  ScopedEnv e(kKnob, "18446744073709551616");  // 2^64
  std::uint64_t v = 0;
  EXPECT_DEATH((void)read_u64(kKnob, &v), "overflows");
}

TEST(EnvReadFlag, ZeroAndOneParse) {
  bool b = true;
  {
    ScopedEnv e(kKnob, "0");
    EXPECT_TRUE(read_flag(kKnob, &b));
    EXPECT_FALSE(b);
  }
  {
    ScopedEnv e(kKnob, "1");
    EXPECT_TRUE(read_flag(kKnob, &b));
    EXPECT_TRUE(b);
  }
}

TEST(EnvReadFlag, UnsetReturnsFalse) {
  ScopedEnv e(kKnob, nullptr);
  bool b = true;
  EXPECT_FALSE(read_flag(kKnob, &b));
  EXPECT_TRUE(b);  // untouched
}

TEST(EnvDeathTest, NonBooleanFlagIsFatal) {
  ScopedEnv e(kKnob, "2");
  bool b = false;
  EXPECT_DEATH((void)read_flag(kKnob, &b), "out of range");
}

}  // namespace
}  // namespace fm::env
