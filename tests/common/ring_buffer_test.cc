#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"

namespace fm {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.space(), 4u);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  int v = 0;
  EXPECT_TRUE(rb.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(rb.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(rb.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(rb.pop(v));
}

TEST(RingBuffer, RejectsPushWhenFull) {
  RingBuffer<int> rb(2);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(3));
  EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBuffer, WrapsAroundCapacityBoundary) {
  RingBuffer<int> rb(3);
  int v;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(rb.push(round));
    EXPECT_TRUE(rb.pop(v));
    EXPECT_EQ(v, round);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, FrontAndIndexedAccess) {
  RingBuffer<std::string> rb(4);
  rb.push("a");
  rb.push("b");
  rb.push("c");
  EXPECT_EQ(rb.front(), "a");
  EXPECT_EQ(rb.at(0), "a");
  EXPECT_EQ(rb.at(1), "b");
  EXPECT_EQ(rb.at(2), "c");
  std::string s;
  rb.pop(s);
  EXPECT_EQ(rb.at(0), "b");
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push(7));
  int v;
  EXPECT_TRUE(rb.pop(v));
  EXPECT_EQ(v, 7);
}

TEST(RingBuffer, MovesOnlyValues) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  rb.push(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  EXPECT_TRUE(rb.pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 42);
}

// Property: against a reference std::vector model, arbitrary interleavings
// of push/pop agree for many capacities.
class RingBufferModelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingBufferModelTest, AgreesWithReferenceModel) {
  const std::size_t cap = GetParam();
  RingBuffer<std::uint64_t> rb(cap);
  std::vector<std::uint64_t> model;
  Xoshiro256 rng(cap * 977 + 13);
  for (int step = 0; step < 5000; ++step) {
    if (rng.chance(0.55)) {
      std::uint64_t v = rng();
      bool pushed = rb.push(v);
      EXPECT_EQ(pushed, model.size() < cap);
      if (pushed) model.push_back(v);
    } else {
      std::uint64_t v = 0;
      bool popped = rb.pop(v);
      EXPECT_EQ(popped, !model.empty());
      if (popped) {
        EXPECT_EQ(v, model.front());
        model.erase(model.begin());
      }
    }
    ASSERT_EQ(rb.size(), model.size());
    if (!model.empty()) {
      EXPECT_EQ(rb.front(), model.front());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferModelTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 255));

}  // namespace
}  // namespace fm
