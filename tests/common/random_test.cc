#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace fm {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Xoshiro256, BetweenInclusiveBounds) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace fm
