#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace fm {
namespace {

TEST(Status, ToStringCoversAllCodes) {
  EXPECT_EQ(to_string(Status::kOk), "ok");
  EXPECT_EQ(to_string(Status::kAgain), "again");
  EXPECT_EQ(to_string(Status::kTooLarge), "too-large");
  EXPECT_EQ(to_string(Status::kBadArgument), "bad-argument");
  EXPECT_EQ(to_string(Status::kClosed), "closed");
  EXPECT_EQ(to_string(Status::kInternal), "internal");
}

TEST(Status, OkPredicate) {
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kAgain));
}

TEST(Result, HoldsValueOnSuccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r.status(), Status::kOk);
  EXPECT_EQ(*r, 42);
}

TEST(Result, CarriesErrorCode) {
  Result<std::string> r(Status::kTooLarge);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status(), Status::kTooLarge);
}

TEST(Result, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r);
  EXPECT_EQ(**r, 9);
}

}  // namespace
}  // namespace fm
