#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace fm {
namespace {

TEST(RunningStat, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, EmptyMinMaxAreInfinities) {
  // Documented contract: min() is +inf and max() is -inf until the first
  // add(), so min-of-mins / max-of-maxes folds work without sentinels.
  RunningStat s;
  EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStat, MeanMinMaxSum) {
  RunningStat s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(RunningStat, VarianceMatchesTwoPassFormula) {
  RunningStat s;
  const double xs[] = {1.5, -2.0, 3.25, 0.0, 10.0, -7.5};
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= 6;
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 5;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(LatencyHistogram, CountsAndQuantiles) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.add(100);    // bucket [64,128)
  for (int i = 0; i < 10; ++i) h.add(10000);  // bucket [8192,16384)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.quantile(0.5), 127u);
  EXPECT_GE(h.quantile(0.99), 8191u);
}

TEST(LatencyHistogram, QuantileNeverExceedsObservedMax) {
  // A single 33ns sample lands in bucket [32,64); the bucket upper bound is
  // 63 but no observed latency exceeded 33, so every quantile reports 33.
  LatencyHistogram h;
  h.add(33);
  EXPECT_EQ(h.quantile(0.5), 33u);
  EXPECT_EQ(h.quantile(1.0), 33u);

  LatencyHistogram h2;
  h2.add(33);
  h2.add(40);
  EXPECT_LE(h2.quantile(0.5), 40u);
  EXPECT_LE(h2.quantile(0.99), 40u);
}

TEST(LatencyHistogram, ZeroAndHugeValuesClamp) {
  LatencyHistogram h;
  h.add(0);
  h.add(~0ull);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.quantile(1.0), 1u);
}

TEST(LatencyHistogram, SummaryMentionsCount) {
  LatencyHistogram h;
  h.add(5);
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace fm
