#include "common/log.h"

#include <gtest/gtest.h>

namespace fm {
namespace {

TEST(Log, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetReturnsPrevious) {
  LogLevel prev = set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(prev);
  EXPECT_EQ(log_level(), prev);
}

TEST(Log, ScopedLevelRestores) {
  LogLevel before = log_level();
  {
    ScopedLogLevel scope(LogLevel::kError);
    EXPECT_EQ(log_level(), LogLevel::kError);
    {
      ScopedLogLevel inner(LogLevel::kDebug);
      EXPECT_EQ(log_level(), LogLevel::kDebug);
    }
    EXPECT_EQ(log_level(), LogLevel::kError);
  }
  EXPECT_EQ(log_level(), before);
}

TEST(Log, MacrosCompileAndFilter) {
  ScopedLogLevel scope(LogLevel::kOff);
  // Nothing should be emitted (and nothing should crash) at kOff.
  FM_DLOG("debug %d", 1);
  FM_ILOG("info %s", "x");
  FM_WLOG("warn");
  FM_ELOG("error %f", 2.0);
  SUCCEED();
}

}  // namespace
}  // namespace fm
