// Tests of the byte-stream layer over FM (connect/accept, ordered delivery,
// windowed flow control, EOF semantics, bidirectional traffic).
#include "stream/stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "common/crc32.h"
#include "common/random.h"

namespace fm::stream {
namespace {

TEST(Stream, ConnectAcceptHandshake) {
  shm::Cluster cluster(2);
  std::atomic<bool> connected{false};
  cluster.run([&](shm::Endpoint& ep) {
    StreamMgr mgr(ep);
    if (ep.id() == 0) {
      mgr.listen(80);
      Connection& c = mgr.accept(80);
      EXPECT_EQ(c.peer(), 1u);
      connected = true;
      while (!connected) mgr.poll();
      ep.drain();
    } else {
      Connection& c = mgr.connect(0, 80);
      EXPECT_EQ(c.peer(), 0u);
      while (!connected.load()) mgr.poll();
      ep.drain();
    }
  });
  EXPECT_TRUE(connected.load());
}

TEST(Stream, BytesArriveInOrderAndIntact) {
  shm::Cluster cluster(2);
  const std::size_t kBytes = 50000;
  std::vector<std::uint8_t> sent(kBytes);
  Xoshiro256 rng(9);
  for (auto& b : sent) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> received(kBytes, 0);
  cluster.run([&](shm::Endpoint& ep) {
    StreamMgr mgr(ep);
    if (ep.id() == 0) {
      mgr.listen(7);
      Connection& c = mgr.accept(7);
      EXPECT_EQ(c.read_exact(received.data(), kBytes), kBytes);
      c.close();
      ep.drain();
    } else {
      Connection& c = mgr.connect(0, 7);
      EXPECT_TRUE(c.write(sent.data(), sent.size()));
      c.close();
      while (!c.at_eof()) mgr.poll();  // wait for peer's FIN
      ep.drain();
    }
  });
  EXPECT_EQ(crc32(received.data(), received.size()),
            crc32(sent.data(), sent.size()));
  EXPECT_EQ(received, sent);
}

TEST(Stream, WindowThrottlesASlowReader) {
  // The writer pushes far more than one window; a reader that consumes
  // slowly must bound the writer via credits (no unbounded buffering).
  shm::Cluster cluster(2);
  const std::size_t kWindow = 4096;
  const std::size_t kTotal = 64 * 1024;
  std::atomic<std::size_t> reader_got{0};
  cluster.run([&](shm::Endpoint& ep) {
    StreamMgr mgr(ep, kWindow);
    if (ep.id() == 0) {
      mgr.listen(9);
      Connection& c = mgr.accept(9);
      std::vector<std::uint8_t> buf(512);
      std::size_t got = 0;
      while (got < kTotal) {
        std::size_t n = c.read(buf.data(), buf.size());
        ASSERT_GT(n, 0u);
        got += n;
        reader_got = got;
        // Receive-side invariant: buffered bytes never exceed the window.
        EXPECT_LE(c.readable(), kWindow);
      }
      ep.drain();
    } else {
      Connection& c = mgr.connect(0, 9);
      std::vector<std::uint8_t> chunk(kTotal, 0xAB);
      EXPECT_TRUE(c.write(chunk.data(), chunk.size()));
      while (reader_got.load() < kTotal) mgr.poll();
      ep.drain();
    }
  });
  EXPECT_EQ(reader_got.load(), kTotal);
}

TEST(Stream, EofAfterClose) {
  shm::Cluster cluster(2);
  cluster.run([&](shm::Endpoint& ep) {
    StreamMgr mgr(ep);
    if (ep.id() == 0) {
      mgr.listen(5);
      Connection& c = mgr.accept(5);
      std::uint8_t buf[64];
      std::size_t n = c.read_exact(buf, 5);
      EXPECT_EQ(n, 5u);
      EXPECT_EQ(std::memcmp(buf, "hello", 5), 0);
      // Next read returns EOF (0) once FIN arrives and data is drained.
      EXPECT_EQ(c.read(buf, sizeof buf), 0u);
      EXPECT_TRUE(c.at_eof());
      ep.drain();
    } else {
      Connection& c = mgr.connect(0, 5);
      EXPECT_TRUE(c.write("hello", 5));
      c.close();
      ep.drain();
    }
  });
}

TEST(Stream, BidirectionalEcho) {
  shm::Cluster cluster(2);
  const int kRounds = 50;
  cluster.run([&](shm::Endpoint& ep) {
    StreamMgr mgr(ep);
    if (ep.id() == 0) {
      mgr.listen(22);
      Connection& c = mgr.accept(22);
      std::uint32_t v;
      while (c.read_exact(&v, 4) == 4) {
        v *= 2;
        if (!c.write(&v, 4)) break;
      }
      ep.drain();
    } else {
      Connection& c = mgr.connect(0, 22);
      for (std::uint32_t i = 1; i <= kRounds; ++i) {
        ASSERT_TRUE(c.write(&i, 4));
        std::uint32_t echo = 0;
        ASSERT_EQ(c.read_exact(&echo, 4), 4u);
        EXPECT_EQ(echo, 2 * i);
      }
      c.close();
      ep.drain();
    }
  });
}

TEST(Stream, MultipleConnectionsMultiplexOnePort) {
  shm::Cluster cluster(3);
  std::atomic<int> served{0};
  cluster.run([&](shm::Endpoint& ep) {
    StreamMgr mgr(ep);
    if (ep.id() == 0) {
      mgr.listen(443);
      for (int i = 0; i < 2; ++i) {
        Connection& c = mgr.accept(443);
        std::uint32_t who = 0;
        ASSERT_EQ(c.read_exact(&who, 4), 4u);
        EXPECT_EQ(who, c.peer());
        ++served;
      }
      ep.drain();
    } else {
      Connection& c = mgr.connect(0, 443);
      std::uint32_t me = ep.id();
      ASSERT_TRUE(c.write(&me, 4));
      while (served.load() < 2) mgr.poll();
      ep.drain();
    }
  });
  EXPECT_EQ(served.load(), 2);
}

TEST(Stream, SurvivesFmLevelReorderingViaTinyReassemblyPool) {
  // Small FM frames force every chunk into multiple fragments; a tiny
  // reassembly pool forces rejects/retransmits, so chunks genuinely arrive
  // out of order at the stream layer — which must still deliver a clean
  // byte sequence.
  FmConfig cfg;
  cfg.frame_payload = 64;
  cfg.reassembly_slots = 2;
  cfg.reject_retry_delay = 1;
  shm::Cluster cluster(2, cfg);
  const std::size_t kBytes = 20000;
  std::vector<std::uint8_t> sent(kBytes);
  for (std::size_t i = 0; i < kBytes; ++i)
    sent[i] = static_cast<std::uint8_t>(i * 31 + 7);
  bool match = false;
  cluster.run([&](shm::Endpoint& ep) {
    StreamMgr mgr(ep, 8192);
    if (ep.id() == 0) {
      mgr.listen(1);
      Connection& c = mgr.accept(1);
      std::vector<std::uint8_t> got(kBytes);
      EXPECT_EQ(c.read_exact(got.data(), kBytes), kBytes);
      match = (got == sent);
      c.close();
      ep.drain();
    } else {
      Connection& c = mgr.connect(0, 1);
      EXPECT_TRUE(c.write(sent.data(), sent.size()));
      c.close();
      while (!c.at_eof()) mgr.poll();
      ep.drain();
    }
  });
  EXPECT_TRUE(match);
}

}  // namespace
}  // namespace fm::stream
