#include "metrics/harness.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "fm/sim_endpoint.h"
#include "metrics/report.h"

namespace fm::metrics {
namespace {

MeasureOpts quick() {
  MeasureOpts o;
  o.pingpong_rounds = 10;
  o.stream_packets = 256;
  o.asymptote_bytes = 4096;
  return o;
}

TEST(Harness, AllLayersProduceSaneNumbers) {
  for (Layer l :
       {Layer::kTheoretical, Layer::kLanaiBaseline, Layer::kLanaiStreamed,
        Layer::kHybridMinimal, Layer::kAllDma, Layer::kBufMgmt, Layer::kFm,
        Layer::kApiImm}) {
    double lat = measure_latency_s(l, 128, quick());
    double bw = measure_bandwidth_mbs(l, 128, quick());
    EXPECT_GT(lat, 0) << layer_name(l);
    EXPECT_LT(lat, 1e-3) << layer_name(l);  // under a millisecond
    EXPECT_GT(bw, 0.1) << layer_name(l);
    EXPECT_LT(bw, 80.0) << layer_name(l);  // can't beat the link
  }
}

TEST(Harness, LatencyIncreasesWithSize) {
  for (Layer l : {Layer::kLanaiStreamed, Layer::kFm}) {
    double small = measure_latency_s(l, 16, quick());
    double large = measure_latency_s(l, 512, quick());
    EXPECT_GT(large, small) << layer_name(l);
  }
}

TEST(Harness, SweepComputesMetrics) {
  auto s = sweep(Layer::kLanaiStreamed, {16, 64, 128, 256, 512}, quick());
  EXPECT_EQ(s.points.size(), 5u);
  EXPECT_GT(s.t0_bw_us, 1.0);
  EXPECT_LT(s.t0_bw_us, 10.0);
  EXPECT_NEAR(s.r_inf_mbs, 76.3, 5.0);
  EXPECT_GT(s.n_half_bytes, 100);
  EXPECT_LT(s.n_half_bytes, 500);
}

TEST(Harness, TheoreticalLayerMatchesClosedForm) {
  auto opts = quick();
  EXPECT_DOUBLE_EQ(measure_latency_s(Layer::kTheoretical, 128, opts),
                   (870.0 + 12.5 * 128) * 1e-9);
}

TEST(Harness, FramePayloadOverrideCapsFrameSize) {
  // With a 128 B frame override, a 512 B message segments into 4 frames and
  // delivers less bandwidth than native 512 B frames.
  MeasureOpts capped = quick();
  capped.frame_payload = 128;
  double segmented = measure_bandwidth_mbs(Layer::kFm, 512, capped);
  double native = measure_bandwidth_mbs(Layer::kFm, 512, quick());
  EXPECT_LT(segmented, native);
}

TEST(Harness, ObserveHookSeesEndpointCountersBeforeTeardown) {
  // The FM-Scope hook fires once per FM-layer measurement, after the run
  // completed but before shutdown — the counters it reads must reflect the
  // finished workload, and the conservation invariant must hold across the
  // measured pair.
  MeasureOpts o = quick();
  int calls = 0;
  o.observe = [&](SimEndpoint& tx, SimEndpoint& rx) {
    ++calls;
    EXPECT_EQ(tx.stats().messages_sent, o.stream_packets);
    EXPECT_EQ(rx.stats().messages_delivered, o.stream_packets);
    obs::Conservation k;
    k.add(tx.stats());
    k.add(rx.stats());
    EXPECT_TRUE(k.balanced()) << "imbalance=" << k.imbalance();
    // The registry enumerates the same numbers by name.
    bool found = false;
    for (const obs::Sample& s : tx.registry().snapshot())
      if (s.name.find("messages_sent") != std::string::npos) {
        found = true;
        EXPECT_DOUBLE_EQ(s.value,
                         static_cast<double>(o.stream_packets));
      }
    EXPECT_TRUE(found);
  };
  (void)measure_bandwidth_mbs(Layer::kFm, 128, o);
  EXPECT_EQ(calls, 1);
  // Layers below kBufMgmt run no SimEndpoints; the hook must not fire.
  calls = 0;
  (void)measure_bandwidth_mbs(Layer::kLanaiStreamed, 128, o);
  EXPECT_EQ(calls, 0);
}

TEST(Report, CsvRoundTrip) {
  auto s = sweep(Layer::kLanaiStreamed, {16, 64}, quick());
  std::string path = "/tmp/fm_test_csv.csv";
  write_csv(path, {s});
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_NE(std::string(line).find("bytes"), std::string::npos);
  int rows = 0;
  while (std::fgets(line, sizeof line, f)) ++rows;
  EXPECT_EQ(rows, 2);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Report, PrintersDoNotCrash) {
  auto s = sweep(Layer::kLanaiStreamed, {16, 64}, quick());
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  print_heading(sink, "test");
  print_latency_table(sink, {s});
  print_bandwidth_table(sink, {s});
  chart_latency(sink, {s});
  chart_bandwidth(sink, {s});
  print_summary(sink, {s}, {{1, 2, 3}});
  std::fclose(sink);
}

}  // namespace
}  // namespace fm::metrics
