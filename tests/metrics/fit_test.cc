#include "metrics/fit.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fm::metrics {
namespace {

TEST(FitLinear, RecoversExactLine) {
  // time(N) = 4.2us + N / (76.3 MB/s)
  const double t0 = 4.2e-6;
  const double slope = 1.0 / (76.3 * 1048576.0);
  std::vector<TimePoint> pts;
  for (double n : {16.0, 64.0, 128.0, 256.0, 512.0})
    pts.push_back({n, t0 + slope * n});
  auto fit = fit_linear(pts);
  EXPECT_NEAR(fit.t0_us(), 4.2, 1e-9);
  EXPECT_NEAR(fit.r_inf_mbs(), 76.3, 1e-6);
}

TEST(FitLinear, ToleratesNoise) {
  Xoshiro256 rng(11);
  const double t0 = 10e-6, slope = 50e-9;
  std::vector<TimePoint> pts;
  for (int n = 8; n <= 1024; n += 8) {
    double noise = (rng.uniform() - 0.5) * 0.02;  // +-1%
    pts.push_back({static_cast<double>(n),
                   (t0 + slope * n) * (1.0 + noise)});
  }
  auto fit = fit_linear(pts);
  EXPECT_NEAR(fit.t0_us(), 10.0, 0.5);
  EXPECT_NEAR(fit.sec_per_byte, slope, slope * 0.05);
}

TEST(FitLinearDeathTest, RejectsDegenerateInput) {
  EXPECT_DEATH(fit_linear({{1, 1}}), "two points");
  EXPECT_DEATH(fit_linear({{5, 1}, {5, 2}}), "degenerate");
}

TEST(NHalf, InterpolatesCrossing) {
  // BW curve crossing 10 MB/s midway between samples.
  std::vector<BwPoint> curve = {{16, 4}, {64, 8}, {128, 12}, {256, 16}};
  double nh = n_half(curve, 20.0);  // target 10 MB/s
  EXPECT_GT(nh, 64);
  EXPECT_LT(nh, 128);
  EXPECT_NEAR(nh, 64 + (10.0 - 8) / (12 - 8) * 64, 1e-9);
}

TEST(NHalf, FirstPointAlreadyAboveTarget) {
  std::vector<BwPoint> curve = {{16, 50}, {64, 60}};
  EXPECT_EQ(n_half(curve, 40.0), 16);
}

TEST(NHalf, NeverReachedIsNegative) {
  std::vector<BwPoint> curve = {{16, 1}, {600, 5}};
  EXPECT_LT(n_half(curve, 76.3), 0);
}

TEST(NHalf, ConsistentWithClosedFormModel) {
  // For BW(N) = N/(t0 + N*b), n1/2 (vs r_inf=1/b) should equal t0/b.
  const double t0 = 320e-9, b = 12.5e-9;
  std::vector<BwPoint> curve;
  for (double n = 1; n <= 600; n += 1)
    curve.push_back({n, n / (t0 + b * n) / 1048576.0});
  double r_inf = 1.0 / b / 1048576.0;
  EXPECT_NEAR(n_half(curve, r_inf), t0 / b, 0.6);
}

}  // namespace
}  // namespace fm::metrics
