#include "metrics/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace fm::metrics {
namespace {

TEST(TrafficMix, SamplesOnlyConfiguredSizes) {
  TrafficMix mix("t", {{16, 1.0}, {128, 1.0}});
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto s = mix.sample(rng);
    EXPECT_TRUE(s == 16 || s == 128);
  }
}

TEST(TrafficMix, RespectsWeights) {
  TrafficMix mix("t", {{16, 3.0}, {128, 1.0}});
  Xoshiro256 rng(7);
  std::map<std::size_t, int> hist;
  for (int i = 0; i < 40000; ++i) ++hist[mix.sample(rng)];
  double frac16 = hist[16] / 40000.0;
  EXPECT_NEAR(frac16, 0.75, 0.02);
}

TEST(TrafficMix, MeanAndFractionMatchHandComputation) {
  TrafficMix mix("t", {{10, 1.0}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(mix.mean_bytes(), 55.0);
  EXPECT_DOUBLE_EQ(mix.fraction_at_most(10), 0.5);
  EXPECT_DOUBLE_EQ(mix.fraction_at_most(100), 1.0);
  EXPECT_DOUBLE_EQ(mix.fraction_at_most(5), 0.0);
}

TEST(TrafficMix, PresetsAreSane) {
  // §5: with a 128 B frame the vast majority of IP traffic fits one frame.
  EXPECT_GT(tcp_ip_mix().fraction_at_most(128), 0.6);
  EXPECT_GT(finegrain_mix().fraction_at_most(128), 0.9);
  EXPECT_LT(bulk_mix().fraction_at_most(128), 0.2);
  EXPECT_GT(bulk_mix().mean_bytes(), 1000);
}

TEST(TrafficMixDeathTest, RejectsEmptyMix) {
  EXPECT_DEATH(TrafficMix("bad", {}), "empty traffic mix");
}

}  // namespace
}  // namespace fm::metrics
