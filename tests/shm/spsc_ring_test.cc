#include "shm/spsc_ring.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.h"

namespace fm::shm {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing ring(8, 64);
  std::uint8_t msg[3] = {1, 2, 3};
  EXPECT_TRUE(ring.try_push(msg, 3));
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, FillsToCapacityExactly) {
  SpscRing ring(4, 16);
  std::uint8_t b = 7;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(&b, 1));
  EXPECT_FALSE(ring.try_push(&b, 1));
  EXPECT_EQ(ring.size_approx(), 4u);
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(&b, 1));  // slot freed
}

TEST(SpscRing, PreservesFifoAndLengths) {
  SpscRing ring(16, 64);
  for (std::uint8_t len = 1; len <= 10; ++len) {
    std::vector<std::uint8_t> msg(len, len);
    ASSERT_TRUE(ring.try_push(msg.data(), msg.size()));
  }
  for (std::uint8_t len = 1; len <= 10; ++len) {
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.size(), len);
    for (auto b : out) EXPECT_EQ(b, len);
  }
}

TEST(SpscRing, ZeroLengthFrames) {
  SpscRing ring(4, 16);
  EXPECT_TRUE(ring.try_push(nullptr, 0));
  std::vector<std::uint8_t> out{1, 2};
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(out.empty());
}

TEST(SpscRingDeathTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(SpscRing(3, 16), "power of two");
}

TEST(SpscRingDeathTest, RejectsOversizedFrame) {
  SpscRing ring(4, 8);
  std::uint8_t msg[16] = {};
  EXPECT_DEATH((void)ring.try_push(msg, 16), "exceeds slot");
}

// Cross-thread stress: a producer pushes checksummed random frames, a
// consumer verifies content and order.
class SpscRingStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscRingStress, TwoThreadIntegrity) {
  const std::size_t slots = GetParam();
  SpscRing ring(slots, 256);
  const int kFrames = 20000;
  std::thread producer([&] {
    Xoshiro256 rng(42);
    for (int i = 0; i < kFrames; ++i) {
      std::uint8_t msg[256];
      std::size_t len = 4 + rng.below(200);
      std::memcpy(msg, &i, 4);
      for (std::size_t k = 4; k < len; ++k)
        msg[k] = static_cast<std::uint8_t>(i + k);
      while (!ring.try_push(msg, len)) std::this_thread::yield();
    }
  });
  int next = 0;
  std::vector<std::uint8_t> out;
  while (next < kFrames) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    int seq;
    ASSERT_GE(out.size(), 4u);
    std::memcpy(&seq, out.data(), 4);
    ASSERT_EQ(seq, next);
    for (std::size_t k = 4; k < out.size(); ++k)
      ASSERT_EQ(out[k], static_cast<std::uint8_t>(seq + k));
    ++next;
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpscRingStress, ::testing::Values(2, 8, 64));

}  // namespace
}  // namespace fm::shm
