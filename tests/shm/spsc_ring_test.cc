#include "shm/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"

namespace fm::shm {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing ring(8, 64);
  std::uint8_t msg[3] = {1, 2, 3};
  EXPECT_TRUE(ring.try_push(msg, 3));
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, FillsToCapacityExactly) {
  SpscRing ring(4, 16);
  std::uint8_t b = 7;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(&b, 1));
  EXPECT_FALSE(ring.try_push(&b, 1));
  EXPECT_EQ(ring.size_approx(), 4u);
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(&b, 1));  // slot freed
}

TEST(SpscRing, PreservesFifoAndLengths) {
  SpscRing ring(16, 64);
  for (std::uint8_t len = 1; len <= 10; ++len) {
    std::vector<std::uint8_t> msg(len, len);
    ASSERT_TRUE(ring.try_push(msg.data(), msg.size()));
  }
  for (std::uint8_t len = 1; len <= 10; ++len) {
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.size(), len);
    for (auto b : out) EXPECT_EQ(b, len);
  }
}

TEST(SpscRing, ZeroLengthFrames) {
  SpscRing ring(4, 16);
  EXPECT_TRUE(ring.try_push(nullptr, 0));
  std::vector<std::uint8_t> out{1, 2};
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(out.empty());
}

TEST(SpscRing, ReserveCommitInPlace) {
  SpscRing ring(4, 32);
  std::uint8_t* slot = ring.try_reserve(5);
  ASSERT_NE(slot, nullptr);
  EXPECT_TRUE(ring.empty_approx());  // invisible until commit
  for (int i = 0; i < 5; ++i) slot[i] = static_cast<std::uint8_t>(10 + i);
  ring.commit(5);
  EXPECT_EQ(ring.size_approx(), 1u);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{10, 11, 12, 13, 14}));
}

TEST(SpscRing, CommitMayShrinkReservation) {
  SpscRing ring(4, 64);
  std::uint8_t* slot = ring.try_reserve(64);
  ASSERT_NE(slot, nullptr);
  slot[0] = 0xAB;
  ring.commit(1);  // serialized frame came out shorter than the bound
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0xAB);
}

TEST(SpscRing, ReserveCommitWrapsAround) {
  SpscRing ring(4, 16);
  // Many laps around a tiny ring: every slot gets reused with fresh
  // lengths, and FIFO order survives the index wrap at each lap.
  std::uint32_t produced = 0, consumed = 0;
  for (int lap = 0; lap < 10; ++lap) {
    while (true) {
      std::uint8_t* slot = ring.try_reserve(8);
      if (slot == nullptr) break;
      std::memcpy(slot, &produced, 4);
      ring.commit(4 + (produced % 5));
      ++produced;
    }
    EXPECT_EQ(ring.size_approx(), 4u);
    while (ring.try_consume([&](const std::uint8_t* p, std::size_t n) {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      EXPECT_EQ(v, consumed);
      EXPECT_EQ(n, 4 + (v % 5));
      ++consumed;
    })) {
    }
  }
  EXPECT_EQ(produced, consumed);
  EXPECT_EQ(produced, 40u);
}

TEST(SpscRing, BatchConsumeAcrossWrapBoundary) {
  SpscRing ring(8, 16);
  std::uint32_t next_in = 0, next_out = 0;
  // Offset the indices mid-ring so a full batch of 8 straddles the
  // physical end of the slot array.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_push(&next_in, 4));
    ++next_in;
  }
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    ++next_out;
  }
  next_out = 5;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(&next_in, 4));
    ++next_in;
  }
  std::size_t got = ring.try_consume_batch(
      8, [&](const std::uint8_t* p, std::size_t n) {
        ASSERT_EQ(n, 4u);
        std::uint32_t v;
        std::memcpy(&v, p, 4);
        EXPECT_EQ(v, next_out);
        ++next_out;
      });
  EXPECT_EQ(got, 8u);
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SpscRing, BatchConsumeHonorsMax) {
  SpscRing ring(8, 16);
  std::uint8_t b = 9;
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ring.try_push(&b, 1));
  std::size_t seen = 0;
  EXPECT_EQ(ring.try_consume_batch(4, [&](const std::uint8_t*, std::size_t) {
              ++seen;
            }),
            4u);
  EXPECT_EQ(seen, 4u);
  EXPECT_EQ(ring.size_approx(), 2u);
}

TEST(SpscRing, FullEmptyNearIndexWraparound) {
  // Monotonic mod-2^64 indices: start both just below the wrap so every
  // full/empty comparison in this test crosses UINT64_MAX.
  SpscRing ring(4, 16, /*start_index=*/UINT64_MAX - 1);
  std::uint32_t v = 0;
  for (; v < 4; ++v) ASSERT_TRUE(ring.try_push(&v, 4));
  EXPECT_FALSE(ring.try_push(&v, 4));  // full across the wrap
  EXPECT_EQ(ring.size_approx(), 4u);
  std::uint32_t expect = 0;
  std::size_t got = ring.try_consume_batch(
      4, [&](const std::uint8_t* p, std::size_t n) {
        ASSERT_EQ(n, 4u);
        std::uint32_t u;
        std::memcpy(&u, p, 4);
        EXPECT_EQ(u, expect);
        ++expect;
      });
  EXPECT_EQ(got, 4u);
  EXPECT_TRUE(ring.empty_approx());
  ASSERT_TRUE(ring.try_push(&v, 4));  // reusable after the wrap
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(ring.try_pop(out));
}

TEST(SpscRingDeathTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(SpscRing(3, 16), "power of two");
}

TEST(SpscRingDeathTest, RejectsOversizedFrame) {
  SpscRing ring(4, 8);
  std::uint8_t msg[16] = {};
  EXPECT_DEATH((void)ring.try_push(msg, 16), "exceeds slot");
}

// Cross-thread stress: a producer pushes checksummed random frames, a
// consumer verifies content and order.
class SpscRingStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscRingStress, TwoThreadIntegrity) {
  const std::size_t slots = GetParam();
  SpscRing ring(slots, 256);
  const int kFrames = 20000;
  std::thread producer([&] {
    Xoshiro256 rng(42);
    for (int i = 0; i < kFrames; ++i) {
      std::uint8_t msg[256];
      std::size_t len = 4 + rng.below(200);
      std::memcpy(msg, &i, 4);
      for (std::size_t k = 4; k < len; ++k)
        msg[k] = static_cast<std::uint8_t>(i + k);
      while (!ring.try_push(msg, len)) std::this_thread::yield();
    }
  });
  int next = 0;
  std::vector<std::uint8_t> out;
  while (next < kFrames) {
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    int seq;
    ASSERT_GE(out.size(), 4u);
    std::memcpy(&seq, out.data(), 4);
    ASSERT_EQ(seq, next);
    for (std::size_t k = 4; k < out.size(); ++k)
      ASSERT_EQ(out[k], static_cast<std::uint8_t>(seq + k));
    ++next;
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpscRingStress, ::testing::Values(2, 8, 64));

// Same stress through the zero-copy API: the producer serializes in place
// via reserve/commit, the consumer drains via try_consume_batch. This is
// the pairing the endpoint hot path uses, and the pairing the TSan CI job
// watches for ordering bugs (a missing release/acquire edge between commit
// and batch-consume shows up here as a data race or a torn frame).
class SpscRingBatchStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscRingBatchStress, ReserveCommitBatchConsumeIntegrity) {
  const std::size_t slots = GetParam();
  SpscRing ring(slots, 256, /*start_index=*/UINT64_MAX - 1000);
  const int kFrames = 20000;
  std::thread producer([&] {
    Xoshiro256 rng(7);
    for (int i = 0; i < kFrames; ++i) {
      const std::size_t len = 4 + rng.below(200);
      std::uint8_t* slot;
      while ((slot = ring.try_reserve(len)) == nullptr)
        std::this_thread::yield();
      std::memcpy(slot, &i, 4);
      for (std::size_t k = 4; k < len; ++k)
        slot[k] = static_cast<std::uint8_t>(i + k);
      ring.commit(len);
    }
  });
  int next = 0;
  while (next < kFrames) {
    const std::size_t got = ring.try_consume_batch(
        16, [&](const std::uint8_t* p, std::size_t n) {
          int seq;
          ASSERT_GE(n, 4u);
          std::memcpy(&seq, p, 4);
          ASSERT_EQ(seq, next);
          for (std::size_t k = 4; k < n; ++k)
            ASSERT_EQ(p[k], static_cast<std::uint8_t>(seq + k));
          ++next;
        });
    if (got == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpscRingBatchStress,
                         ::testing::Values(2, 8, 64));

// Single-threaded, the three size views must agree exactly: size_approx's
// raciness and producer_size/consumer_size's one-sided staleness only show
// up under concurrent index movement (model-checked in tests/chk).
TEST(SpscRingSize, RoleViewsAreExactSingleThreaded) {
  SpscRing ring(4, 16);
  EXPECT_EQ(ring.size_approx(), 0u);
  EXPECT_EQ(ring.producer_size(), 0u);
  EXPECT_EQ(ring.consumer_size(), 0u);

  std::uint32_t v = 0;
  for (std::size_t n = 1; n <= 4; ++n) {
    ASSERT_TRUE(ring.try_push(&v, 4));
    EXPECT_EQ(ring.size_approx(), n);
    EXPECT_EQ(ring.producer_size(), n);
    EXPECT_EQ(ring.consumer_size(), n);
  }
  EXPECT_FALSE(ring.try_push(&v, 4));  // full

  for (std::size_t n = 4; n > 0; --n) {
    ASSERT_TRUE(ring.try_consume([](const std::uint8_t*, std::size_t) {}));
    EXPECT_EQ(ring.size_approx(), n - 1);
    EXPECT_EQ(ring.producer_size(), n - 1);
    EXPECT_EQ(ring.consumer_size(), n - 1);
  }
}

TEST(SpscRingSize, ViewsTrackAcrossIndexWraparound) {
  // Mod-2^64 index wrap must not disturb any of the size views.
  SpscRing ring(4, 16, /*start_index=*/UINT64_MAX - 1);
  std::uint32_t v = 0;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(&v, 4));
  EXPECT_EQ(ring.size_approx(), 3u);
  EXPECT_EQ(ring.producer_size(), 3u);
  EXPECT_EQ(ring.consumer_size(), 3u);
  ASSERT_TRUE(ring.try_consume([](const std::uint8_t*, std::size_t) {}));
  EXPECT_EQ(ring.size_approx(), 2u);
  EXPECT_EQ(ring.producer_size(), 2u);
  EXPECT_EQ(ring.consumer_size(), 2u);
}

// The clamp contract: whatever interleaving the two independent loads land
// on, the reported value never escapes [0, capacity]. Concurrent readers
// hammer size_approx() through a full producer/consumer run; the exhaustive
// interleaving-level version of this check lives in tests/chk (FM-Check).
TEST(SpscRingSize, SizeApproxStaysClampedUnderConcurrency) {
  SpscRing ring(8, 16);
  std::atomic<bool> done{false};
  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t sz = ring.size_approx();
      ASSERT_LE(sz, ring.capacity());
    }
  });
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < 20000; ++i)
      while (!ring.try_push(&i, 4)) std::this_thread::yield();
  });
  int seen = 0;
  while (seen < 20000) {
    if (ring.try_consume([](const std::uint8_t*, std::size_t) {}))
      ++seen;
    else
      std::this_thread::yield();
  }
  producer.join();
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_TRUE(ring.empty_approx());
}

}  // namespace
}  // namespace fm::shm
