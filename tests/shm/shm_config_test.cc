// Shared-memory backend under non-default configurations: window-mode flow
// control, tiny frames, and the layered libraries on constrained configs —
// real-thread counterparts of the simulated config-grid sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "mpi_mini/comm.h"
#include "shm/cluster.h"
#include "stream/stream.h"

namespace fm::shm {
namespace {

TEST(ShmConfig, WindowModeDeliversOverThreads) {
  FmConfig cfg;
  cfg.window_mode = true;
  cfg.window_per_peer = 3;
  Cluster cluster(2, cfg);
  std::atomic<int> got{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(ok(ep.send4(1, h, static_cast<std::uint32_t>(i), 0, 0, 0)));
        EXPECT_LE(ep.unacked(), 3u);
      }
      ep.drain();
      EXPECT_EQ(ep.stats().rejects_received, 0u);
    } else {
      ep.extract_until([&] { return got.load() == 40; });
      ep.drain();
    }
  });
  EXPECT_EQ(got.load(), 40);
}

TEST(ShmConfig, TinyFramesSegmentEverything) {
  FmConfig cfg;
  cfg.frame_payload = 24;  // every send4 fits, everything else fragments
  Cluster cluster(2, cfg);
  std::atomic<bool> got{false};
  std::vector<std::uint8_t> received;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void* d, std::size_t n) {
        received.assign(static_cast<const std::uint8_t*>(d),
                        static_cast<const std::uint8_t*>(d) + n);
        got = true;
      });
  std::vector<std::uint8_t> msg(2000);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i * 7);
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      ASSERT_TRUE(ok(ep.send(1, h, msg.data(), msg.size())));
      ep.drain();
      // ceil(2000/24) = 84 fragments
      EXPECT_EQ(ep.stats().frames_sent, 84u);
    } else {
      ep.extract_until([&] { return got.load(); });
      ep.drain();
    }
  });
  EXPECT_EQ(received, msg);
}

TEST(ShmConfig, MpiCollectivesOnTinyWindows) {
  FmConfig cfg;
  cfg.pending_window = 2;
  cfg.window_mode = false;
  Cluster cluster(4, cfg);
  cluster.run([&](Endpoint& ep) {
    mpi::Comm comm(ep);
    std::int64_t in = comm.rank() + 1, out = 0;
    comm.allreduce<std::int64_t>(&in, &out, 1, 0,
                                 [](std::int64_t a, std::int64_t b) {
                                   return a + b;
                                 });
    EXPECT_EQ(out, 10);
    comm.barrier();
    comm.endpoint().drain();
  });
}

TEST(ShmConfig, StreamOnWindowModeFlowControl) {
  FmConfig cfg;
  cfg.window_mode = true;
  cfg.window_per_peer = 8;
  Cluster cluster(2, cfg);
  const std::size_t kBytes = 15000;
  bool match = false;
  cluster.run([&](Endpoint& ep) {
    stream::StreamMgr mgr(ep, 4096);
    if (ep.id() == 0) {
      mgr.listen(1);
      stream::Connection& c = mgr.accept(1);
      std::vector<std::uint8_t> got(kBytes);
      EXPECT_EQ(c.read_exact(got.data(), kBytes), kBytes);
      bool ok_data = true;
      for (std::size_t i = 0; i < kBytes; ++i)
        if (got[i] != static_cast<std::uint8_t>(i * 3)) ok_data = false;
      match = ok_data;
      c.close();
      ep.drain();
    } else {
      stream::Connection& c = mgr.connect(0, 1);
      std::vector<std::uint8_t> data(kBytes);
      for (std::size_t i = 0; i < kBytes; ++i)
        data[i] = static_cast<std::uint8_t>(i * 3);
      EXPECT_TRUE(c.write(data.data(), data.size()));
      c.close();
      while (!c.at_eof()) mgr.poll();
      ep.drain();
    }
  });
  EXPECT_TRUE(match);
}

TEST(ShmConfig, SmallRingsStillMakeProgress) {
  // 4-slot rings: constant backpressure on the inject path.
  FmConfig cfg;
  Cluster cluster(2, cfg, /*ring_slots=*/4);
  std::atomic<int> got{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(ok(ep.send4(1, h, 0, 0, 0, 0)));
      ep.drain();
    } else {
      ep.extract_until([&] { return got.load() == 100; });
      ep.drain();
    }
  });
  EXPECT_EQ(got.load(), 100);
}

}  // namespace
}  // namespace fm::shm
