// Multi-threaded tests of the shared-memory FM endpoint: real concurrency,
// real bytes, same protocol semantics as the simulated endpoint.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>

#include "common/random.h"
#include "shm/cluster.h"

namespace fm::shm {
namespace {

TEST(ShmEndpoint, Send4RoundTrip) {
  Cluster cluster(2);
  std::atomic<int> sum{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId src, const void* data, std::size_t len) {
        EXPECT_EQ(src, 0u);
        EXPECT_EQ(len, 16u);
        std::uint32_t w[4];
        std::memcpy(w, data, 16);
        sum += static_cast<int>(w[0] + w[1] + w[2] + w[3]);
      });
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      EXPECT_TRUE(ok(ep.send4(1, h, 1, 2, 3, 4)));
      ep.drain();
    } else {
      ep.extract_until([&] { return sum.load() == 10; });
      ep.drain();
    }
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ShmEndpoint, LargeMessageRoundTripsIntact) {
  Cluster cluster(2);
  std::vector<std::uint8_t> received;
  std::atomic<bool> got{false};
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void* data, std::size_t len) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        received.assign(p, p + len);
        got = true;
      });
  std::vector<std::uint8_t> message(100000);
  Xoshiro256 rng(3);
  for (auto& b : message) b = static_cast<std::uint8_t>(rng());
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      EXPECT_TRUE(ok(ep.send(1, h, message.data(), message.size())));
      ep.drain();
    } else {
      ep.extract_until([&] { return got.load(); });
      ep.drain();
    }
  });
  EXPECT_EQ(received, message);
}

TEST(ShmEndpoint, PingPongPostedReplies) {
  Cluster cluster(2);
  std::atomic<int> pongs{0};
  // handler 1: pong counter (node 0); handler 2: echo (node 1).
  HandlerId hpong = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++pongs; });
  HandlerId hping = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        ep.post_send(src, hpong, data, len);
      });
  const int kRounds = 50;
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (int i = 0; i < kRounds; ++i) {
        EXPECT_TRUE(ok(ep.send4(1, hping, 1, 2, 3, 4)));
        int target = i + 1;
        ep.extract_until([&] { return pongs.load() >= target; });
      }
      ep.drain();
    } else {
      ep.extract_until([&] { return pongs.load() >= kRounds; });
      ep.drain();
    }
  });
  EXPECT_EQ(pongs.load(), kRounds);
}

TEST(ShmEndpoint, BadArgumentsRejected) {
  Cluster cluster(2);
  HandlerId h = cluster.register_handler(
      [](Endpoint&, NodeId, const void*, std::size_t) {});
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      EXPECT_EQ(ep.send4(7, h, 0, 0, 0, 0), Status::kBadArgument);
      EXPECT_EQ(ep.send(1, 99, "x", 1), Status::kBadArgument);
      EXPECT_EQ(ep.send(1, h, nullptr, 4), Status::kBadArgument);
    }
  });
}

TEST(ShmEndpoint, AllToAllSoak) {
  const std::size_t kNodes = 4;
  const int kEach = 200;  // messages per directed pair
  Cluster cluster(kNodes);
  std::mutex mu;
  std::map<std::pair<NodeId, std::uint32_t>, int> delivered[kNodes];
  HandlerId h = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        ASSERT_EQ(len, 16u);
        std::uint32_t w[4];
        std::memcpy(w, data, 16);
        std::lock_guard<std::mutex> lock(mu);
        ++delivered[ep.id()][{src, w[0]}];
      });
  cluster.run([&](Endpoint& ep) {
    Xoshiro256 rng(ep.id() + 1);
    int sent = 0;
    const int total = kEach * static_cast<int>(kNodes - 1);
    std::uint32_t tag = 0;
    while (sent < total) {
      NodeId dest = static_cast<NodeId>(rng.below(kNodes));
      if (dest == ep.id()) continue;
      ASSERT_TRUE(ok(ep.send4(dest, h, tag++, ep.id(), 0, 0)));
      ++sent;
      if ((sent & 7) == 0) ep.extract();
    }
    ep.drain();
    // Keep servicing until everybody's traffic has landed.
    ep.extract_until([&] {
      std::lock_guard<std::mutex> lock(mu);
      std::size_t got = 0;
      for (auto& m : delivered) got += m.size();
      return got == kNodes * static_cast<std::size_t>(total);
    });
    ep.drain();
  });
  // Exactly-once delivery of every (sender, tag) pair.
  std::size_t total_msgs = 0;
  for (auto& m : delivered) {
    for (auto& [key, count] : m) {
      EXPECT_EQ(count, 1);
      ++total_msgs;
    }
  }
  EXPECT_EQ(total_msgs, kNodes * kEach * (kNodes - 1));
}

TEST(ShmEndpoint, ReturnToSenderUnderTinyReassemblyPool) {
  FmConfig cfg;
  cfg.reassembly_slots = 1;
  cfg.reject_retry_delay = 1;
  Cluster cluster(3, cfg);
  std::mutex mu;
  std::map<std::pair<NodeId, std::uint32_t>, int> delivered;
  HandlerId h = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        if (ep.id() != 2) return;
        ASSERT_GE(len, 4u);
        std::uint32_t tag;
        std::memcpy(&tag, data, 4);
        std::lock_guard<std::mutex> lock(mu);
        ++delivered[{src, tag}];
      });
  const int kMsgs = 20;
  const std::size_t kLen = 700;  // multi-fragment
  std::atomic<int> senders_done{0};
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 2) {
      ep.extract_until([&] {
        std::lock_guard<std::mutex> lock(mu);
        return delivered.size() == 2 * kMsgs;
      });
      ep.drain();
      return;
    }
    std::vector<std::uint8_t> buf(kLen, static_cast<std::uint8_t>(ep.id()));
    for (int i = 0; i < kMsgs; ++i) {
      std::uint32_t tag = static_cast<std::uint32_t>(i);
      std::memcpy(buf.data(), &tag, 4);
      ASSERT_TRUE(ok(ep.send(2, h, buf.data(), buf.size())));
    }
    ep.drain();
    ++senders_done;
    // Stay responsive until the receiver has everything (acks may still be
    // needed for the other sender's retransmissions).
    ep.extract_until([&] {
      std::lock_guard<std::mutex> lock(mu);
      return delivered.size() == 2 * kMsgs;
    });
  });
  EXPECT_EQ(delivered.size(), static_cast<std::size_t>(2 * kMsgs));
  for (auto& [key, count] : delivered) EXPECT_EQ(count, 1);
}

TEST(ShmEndpoint, StatsConsistency) {
  Cluster cluster(2);
  std::atomic<int> got{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (int i = 0; i < 25; ++i)
        ASSERT_TRUE(ok(ep.send4(1, h, 1, 2, 3, 4)));
      ep.drain();
      EXPECT_EQ(ep.stats().messages_sent, 25u);
      EXPECT_EQ(ep.stats().frames_sent, 25u);
      EXPECT_EQ(ep.unacked(), 0u);
    } else {
      ep.extract_until([&] { return got.load() == 25; });
      ep.drain();
      EXPECT_EQ(ep.stats().messages_delivered, 25u);
    }
  });
}

}  // namespace
}  // namespace fm::shm
