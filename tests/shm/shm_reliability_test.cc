// FM-R on the shared-memory backend: the same reliability layer that the
// simulated endpoint runs, exercised with real threads, real wall-clock
// retransmission timers, and sender-side fault injection on the rings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "common/random.h"
#include "obs/counters.h"
#include "shm/cluster.h"

namespace fm::shm {
namespace {

// Standing FM-Scope invariant over a drained cluster: every message counted
// sent was delivered somewhere or abandoned at a dead peer. Strict equality
// is only meaningful when no peer died.
void expect_conservation(Cluster& cluster, std::size_t nodes) {
  obs::Conservation k;
  for (std::size_t i = 0; i < nodes; ++i)
    k.add(cluster.endpoint(static_cast<NodeId>(i)).stats());
  EXPECT_TRUE(k.no_spontaneous_messages())
      << "delivered+abandoned exceeds sent by " << -k.imbalance();
  if (k.peers_dead == 0)
    EXPECT_TRUE(k.balanced())
        << "messages lost without accounting: imbalance=" << k.imbalance()
        << " (sent=" << k.sent << " delivered=" << k.delivered
        << " abandoned=" << k.abandoned << ")";
}

FmConfig reliable_cfg() {
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  // Wall-clock timers: generous enough that a descheduled thread is not
  // mistaken for a lost frame, short enough that the test stays fast.
  cfg.retransmit_timeout_ns = 2'000'000;  // 2 ms
  return cfg;
}

TEST(ShmReliability, LossySoakExactlyOnce) {
  // The FM-R acceptance workload on the shm backend: ≥10k messages with 1%
  // drop + 1% corruption injected at every sender. Exactly-once, intact.
  const std::size_t kNodes = 4;
  const int kMsgsPerNode = 2500;
  const std::size_t kTotal = kNodes * static_cast<std::size_t>(kMsgsPerNode);
  hw::FaultParams faults;
  faults.drop_rate = 0.01;
  faults.corrupt_rate = 0.01;
  Cluster cluster(kNodes, reliable_cfg(), 256, faults);
  // Per-receiver maps: each is touched only by its owning endpoint's
  // thread, so the handler needs no lock; merged after the join.
  std::map<std::pair<NodeId, std::uint32_t>, int> delivered[kNodes];
  std::atomic<std::size_t> total_delivered{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        ASSERT_GE(len, 8u);
        std::uint32_t tag, fill;
        std::memcpy(&tag, data, 4);
        std::memcpy(&fill, static_cast<const std::uint8_t*>(data) + 4, 4);
        const auto* p = static_cast<const std::uint8_t*>(data);
        for (std::size_t i = 8; i < len; ++i)
          ASSERT_EQ(p[i], static_cast<std::uint8_t>(fill));
        ++delivered[ep.id()][{src, tag}];
        ++total_delivered;
      });
  std::atomic<std::size_t> nodes_done{0};
  cluster.run([&](Endpoint& ep) {
    Xoshiro256 rng(ep.id() * 31 + 7);
    std::vector<std::uint8_t> buf(2048);
    for (int m = 0; m < kMsgsPerNode; ++m) {
      NodeId dest;
      do {
        dest = static_cast<NodeId>(rng.below(kNodes));
      } while (dest == ep.id());
      // Mostly single-frame, some segmented.
      std::size_t len =
          8 + (rng.chance(0.2) ? rng.below(1200) : rng.below(100));
      std::uint32_t tag = static_cast<std::uint32_t>(m);
      std::uint32_t fill = static_cast<std::uint32_t>(rng());
      std::memcpy(buf.data(), &tag, 4);
      std::memcpy(buf.data() + 4, &fill, 4);
      for (std::size_t i = 8; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(fill);
      ASSERT_TRUE(ok(ep.send(dest, h, buf.data(), len)));
      if ((m & 7) == 7) ep.extract();
    }
    ep.drain();
    // Stay responsive until every node has drained: peers' timeout
    // retransmissions still need acks, and drain() flushes the acks we owe.
    bool counted = false;
    while (nodes_done.load() < kNodes) {
      if (ep.extract() == 0) std::this_thread::yield();
      ep.drain();
      if (!counted && total_delivered.load() >= kTotal) {
        counted = true;
        ++nodes_done;
      }
    }
  });
  std::uint64_t timeouts = 0, crc_drops = 0, dead = 0;
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto& st = cluster.endpoint(static_cast<NodeId>(i)).stats();
    timeouts += st.retransmit_timeouts;
    crc_drops += st.crc_drops;
    dead += st.peers_dead;
    distinct += delivered[i].size();
    for (auto& [key, count] : delivered[i])
      EXPECT_EQ(count, 1) << "src " << key.first << " tag " << key.second
                          << " at node " << i;
  }
  EXPECT_EQ(distinct, kTotal);  // nothing lost
  EXPECT_EQ(dead, 0u);          // healthy peers never misdeclared dead
  EXPECT_GT(timeouts, 0u);      // losses actually recovered by the timer
  EXPECT_GT(crc_drops, 0u);     // corruption actually caught by the CRC
  expect_conservation(cluster, kNodes);
}

TEST(ShmReliability, ExtendedFaultModelExactlyOnce) {
  const std::size_t kNodes = 3;
  const int kMsgsPerNode = 400;
  const std::size_t kTotal = kNodes * static_cast<std::size_t>(kMsgsPerNode);
  hw::FaultParams faults;
  faults.drop_rate = 0.005;
  faults.corrupt_rate = 0.005;
  faults.duplicate_rate = 0.02;
  faults.reorder_rate = 0.02;
  faults.burst_rate = 0.001;
  Cluster cluster(kNodes, reliable_cfg(), 256, faults);
  std::map<std::pair<NodeId, std::uint32_t>, int> delivered[kNodes];
  std::atomic<std::size_t> total_delivered{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        ASSERT_EQ(len, 16u);
        std::uint32_t w[4];
        std::memcpy(w, data, 16);
        ++delivered[ep.id()][{src, w[0]}];
        ++total_delivered;
      });
  std::atomic<std::size_t> nodes_done{0};
  cluster.run([&](Endpoint& ep) {
    Xoshiro256 rng(ep.id() + 17);
    for (int m = 0; m < kMsgsPerNode; ++m) {
      NodeId dest;
      do {
        dest = static_cast<NodeId>(rng.below(kNodes));
      } while (dest == ep.id());
      ASSERT_TRUE(ok(ep.send4(dest, h, static_cast<std::uint32_t>(m),
                              ep.id(), 0, 0)));
      if ((m & 7) == 7) ep.extract();
    }
    ep.drain();
    bool counted = false;
    while (nodes_done.load() < kNodes) {
      if (ep.extract() == 0) std::this_thread::yield();
      ep.drain();
      if (!counted && total_delivered.load() >= kTotal) {
        counted = true;
        ++nodes_done;
      }
    }
  });
  std::uint64_t dups_suppressed = 0, dead = 0;
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto& st = cluster.endpoint(static_cast<NodeId>(i)).stats();
    dups_suppressed += st.duplicates_suppressed;
    dead += st.peers_dead;
    distinct += delivered[i].size();
    for (auto& [key, count] : delivered[i]) EXPECT_EQ(count, 1);
  }
  EXPECT_EQ(distinct, kTotal);
  EXPECT_EQ(dead, 0u);
  EXPECT_GT(dups_suppressed, 0u);
  expect_conservation(cluster, kNodes);
}

TEST(ShmReliability, BackpressureRetransmitKeepsFramesIntact) {
  // Regression for a slab-recycle race: a send blocked on a full ring spins
  // in push() while nested extract()s run the retransmit timer. A timeout
  // retransmission of the very frame being pushed can be acked mid-spin,
  // releasing its window slab slot for a posted send to recycle — the
  // blocked push must notice and stop, not re-read the clobbered slot (it
  // used to, producing a hybrid frame that trips the malformed-frame check
  // on a fault-free fabric). Tiny rings, a timeout short enough to fire
  // during backpressure, and handler-posted replies (which reserve slab
  // slots from inside nested extracts) put all the ingredients in collision.
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 50'000;  // 50 us: fires while pushes spin
  cfg.max_retries = 1000;  // a busy (not dead) peer must never be declared dead
  const int kPings = 3000;
  Cluster cluster(2, cfg, /*ring_slots=*/4);
  std::atomic<std::size_t> pings[2] = {};
  std::atomic<std::size_t> replies[2] = {};
  HandlerId hreply = cluster.register_handler(
      [&](Endpoint& ep, NodeId, const void*, std::size_t) {
        ++replies[ep.id()];
      });
  HandlerId hping = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        ASSERT_EQ(len, 16u);
        std::uint32_t w[4];
        std::memcpy(w, data, 16);
        ep.post_send4(src, hreply, w[0], 0, 0, 0);
        ++pings[ep.id()];
      });
  std::atomic<std::size_t> nodes_done{0};
  cluster.run([&](Endpoint& ep) {
    const NodeId peer = ep.id() == 0 ? 1 : 0;
    for (int m = 0; m < kPings; ++m) {
      ASSERT_TRUE(
          ok(ep.send4(peer, hping, static_cast<std::uint32_t>(m), 0, 0, 0)));
      // Extract rarely from the top level so the 4-slot rings back up and
      // sends block inside push() — the code path under test.
      if ((m & 63) == 63) ep.extract();
    }
    bool counted = false;
    while (nodes_done.load() < 2) {
      if (ep.extract() == 0) std::this_thread::yield();
      ep.drain();
      if (!counted && pings[ep.id()].load() >= kPings &&
          replies[ep.id()].load() >= kPings) {
        counted = true;
        ++nodes_done;
      }
    }
  });
  std::uint64_t timeouts = 0;
  for (NodeId i = 0; i < 2; ++i) {
    const auto& st = cluster.endpoint(i).stats();
    timeouts += st.retransmit_timeouts;
    // Exactly-once despite the duplicate deliveries retransmission causes.
    EXPECT_EQ(pings[i].load(), static_cast<std::size_t>(kPings));
    EXPECT_EQ(replies[i].load(), static_cast<std::size_t>(kPings));
    EXPECT_EQ(st.peers_dead, 0u);
    EXPECT_EQ(st.malformed_frames, 0u);
  }
  // The scenario only bites when timers fire under backpressure; with 50 us
  // timeouts against 4-slot rings this is overwhelmingly exercised.
  EXPECT_GT(timeouts, 0u);
}

TEST(ShmReliability, DeadPeerFailsFastAfterMaxRetries) {
  // A peer behind a 100%-loss link is declared dead after max_retries and
  // sends to it fail immediately with kPeerDead instead of hanging.
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.max_retries = 3;
  cfg.retransmit_timeout_ns = 500'000;  // 0.5 ms: the test stays quick
  hw::FaultParams faults;
  faults.drop_rate = 1.0;
  Cluster cluster(2, cfg, 256, faults);
  HandlerId h = cluster.register_handler(
      [](Endpoint&, NodeId, const void*, std::size_t) {});
  cluster.run([&](Endpoint& ep) {
    if (ep.id() != 0) return;  // node 1 is unreachable and does nothing
    ASSERT_TRUE(ok(ep.send4(1, h, 1, 2, 3, 4)));
    // drain() terminates because the dead-peer purge empties the window.
    ep.drain();
    EXPECT_TRUE(ep.peer_dead(1));
    EXPECT_EQ(ep.send4(1, h, 5, 6, 7, 8), Status::kPeerDead);
    EXPECT_EQ(ep.unacked(), 0u);
    EXPECT_EQ(ep.stats().peers_dead, 1u);
  });
  // With a dead peer only the weak conservation form holds: the in-flight
  // message vanished, but nothing was delivered that was never sent, and
  // the frame-level purge is visible in frames_discarded_dead.
  expect_conservation(cluster, 2);
  EXPECT_GT(cluster.endpoint(0).stats().frames_discarded_dead, 0u);
}

TEST(ShmReliability, FmROffPaysNothingWhenNetworkClean) {
  // Pay-for-what-you-use: with reliability off on a clean fabric, none of
  // the FM-R counters move and frames carry no CRC trailer.
  Cluster cluster(2);
  std::atomic<int> got{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(ok(ep.send4(1, h, 1, 2, 3, 4)));
      ep.drain();
    } else {
      ep.extract_until([&] { return got.load() == 50; });
      ep.drain();
    }
  });
  for (NodeId i = 0; i < 2; ++i) {
    const auto& st = cluster.endpoint(i).stats();
    EXPECT_EQ(st.retransmit_timeouts, 0u);
    EXPECT_EQ(st.duplicates_suppressed, 0u);
    EXPECT_EQ(st.crc_drops, 0u);
    EXPECT_EQ(st.peers_dead, 0u);
    EXPECT_EQ(st.retransmissions, 0u);
  }
}

}  // namespace
}  // namespace fm::shm
