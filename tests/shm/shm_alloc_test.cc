// Heap discipline of the shm transport's steady state: after warmup, the
// send4 ping-pong and streamed-send hot paths must perform ZERO heap
// allocations. This is the enforceable form of the zero-copy work — the
// send path serializes into the send-window slab and the ring slot, the
// receive path processes frames in place, and every piece of scratch state
// is pooled — so a regression that sneaks a std::vector into the cycle
// fails this test instead of quietly costing microseconds.
//
// The global operator new/delete overrides are why this lives in its own
// test binary: the counters must see every allocation in the process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "shm/cluster.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

// Every overridden operator new funnels through these two — including the
// nothrow and aligned variants, so an allocation on any path bumps the
// counter and cannot slip past the zero-allocation assertions. They return
// nullptr on failure; the throwing operators turn that into bad_alloc.
void* counted_alloc(std::size_t size) noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  return std::aligned_alloc(align, (size + align - 1) / align * align);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace fm::shm {
namespace {

TEST(ShmAllocFree, Send4PingPongSteadyState) {
  Cluster cluster(2);
  std::atomic<std::size_t> pongs{0};
  std::atomic<std::size_t> pings{0};
  HandlerId hpong = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++pongs; });
  HandlerId hping = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void*, std::size_t) {
        ++pings;
        ep.post_send4(src, hpong, 1, 2, 3, 4);
      });
  constexpr std::size_t kWarmup = 200;
  constexpr std::size_t kMeasured = 2000;
  std::uint64_t measured = ~0ull;
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (std::size_t i = 0; i < kWarmup; ++i) {
        (void)ep.send4(1, hping, 1, 2, 3, 4);
        ep.extract_until([&] { return pongs.load() >= i + 1; });
      }
      cluster.barrier();
      g_allocs.store(0);
      g_counting.store(true);
      for (std::size_t i = 0; i < kMeasured; ++i) {
        (void)ep.send4(1, hping, 1, 2, 3, 4);
        ep.extract_until([&] { return pongs.load() >= kWarmup + i + 1; });
      }
      g_counting.store(false);
      measured = g_allocs.load();
      cluster.barrier();
      ep.drain();
    } else {
      ep.extract_until([&] { return pings.load() >= kWarmup; });
      cluster.barrier();
      ep.extract_until([&] { return pings.load() >= kWarmup + kMeasured; });
      cluster.barrier();
      ep.drain();
    }
  });
  EXPECT_EQ(measured, 0u)
      << measured << " heap allocations in " << kMeasured
      << " steady-state send4 round trips (send + extract must be "
         "allocation-free)";
}

TEST(ShmAllocFree, Send4PingPongSteadyStateWithTracingEnabled) {
  // FM-Scope must not cost the hot path its heap discipline: with the
  // flight recorder armed on both endpoints, the measured cycle still
  // performs zero allocations — events are written in place into the ring
  // preallocated by enable(), and a full ring overwrites rather than grows.
  Cluster cluster(2);
  cluster.endpoint(0).trace_ring().enable(1024);
  cluster.endpoint(1).trace_ring().enable(1024);
  std::atomic<std::size_t> pongs{0};
  std::atomic<std::size_t> pings{0};
  HandlerId hpong = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++pongs; });
  HandlerId hping = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void*, std::size_t) {
        ++pings;
        ep.post_send4(src, hpong, 1, 2, 3, 4);
      });
  constexpr std::size_t kWarmup = 200;
  constexpr std::size_t kMeasured = 2000;
  std::uint64_t measured = ~0ull;
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (std::size_t i = 0; i < kWarmup; ++i) {
        (void)ep.send4(1, hping, 1, 2, 3, 4);
        ep.extract_until([&] { return pongs.load() >= i + 1; });
      }
      cluster.barrier();
      g_allocs.store(0);
      g_counting.store(true);
      for (std::size_t i = 0; i < kMeasured; ++i) {
        (void)ep.send4(1, hping, 1, 2, 3, 4);
        ep.extract_until([&] { return pongs.load() >= kWarmup + i + 1; });
      }
      g_counting.store(false);
      measured = g_allocs.load();
      cluster.barrier();
      ep.drain();
    } else {
      ep.extract_until([&] { return pings.load() >= kWarmup; });
      cluster.barrier();
      ep.extract_until([&] { return pings.load() >= kWarmup + kMeasured; });
      cluster.barrier();
      ep.drain();
    }
  });
  EXPECT_EQ(measured, 0u)
      << measured << " heap allocations in " << kMeasured
      << " steady-state send4 round trips with tracing ENABLED (the trace "
         "ring must be preallocated and overwrite-on-full)";
  // The recorder was demonstrably live, not silently disabled: far more
  // events fired than fit in 1024 slots, so both rings are full and count
  // their overwritten records.
  for (NodeId i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.endpoint(i).trace_ring().size(), 1024u);
    EXPECT_GT(cluster.endpoint(i).trace_ring().dropped(), 0u);
  }
}

TEST(ShmAllocFree, StreamedSendSteadyState) {
  Cluster cluster(2);
  std::atomic<std::size_t> got{0};
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  constexpr std::size_t kWarmup = 500;
  constexpr std::size_t kMeasured = 5000;
  constexpr std::size_t kBytes = 128;  // one full default frame
  std::uint64_t measured = ~0ull;
  cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      std::vector<std::uint8_t> buf(kBytes, 0x5A);
      for (std::size_t i = 0; i < kWarmup; ++i) {
        (void)ep.send(1, h, buf.data(), buf.size());
        if ((i & 31) == 31) ep.extract();
      }
      ep.drain();
      cluster.barrier();
      g_allocs.store(0);
      g_counting.store(true);
      for (std::size_t i = 0; i < kMeasured; ++i) {
        (void)ep.send(1, h, buf.data(), buf.size());
        if ((i & 31) == 31) ep.extract();
      }
      ep.drain();
      g_counting.store(false);
      measured = g_allocs.load();
      cluster.barrier();
    } else {
      ep.extract_until([&] { return got.load() >= kWarmup; });
      ep.drain();
      cluster.barrier();
      ep.extract_until([&] { return got.load() >= kWarmup + kMeasured; });
      // Drain before the barrier: the sender's drain() waits on the final
      // sub-threshold batch of acks, which only a receiver-side drain
      // flushes once extraction stops.
      ep.drain();
      cluster.barrier();
    }
  });
  EXPECT_EQ(measured, 0u)
      << measured << " heap allocations in " << kMeasured
      << " steady-state streamed sends (send + drain + extract must be "
         "allocation-free)";
}

}  // namespace
}  // namespace fm::shm
