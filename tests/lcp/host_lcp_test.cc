// Tests for the host-facing LCPs: hybrid-minimal, FM (buffer management),
// all-DMA, and the Myricom API model.
#include <gtest/gtest.h>

#include <vector>

#include "hw/cluster.h"
#include "lcp/alldma_lcp.h"
#include "lcp/api_lcp.h"
#include "lcp/fm_lcp.h"
#include "lcp/hybrid_minimal_lcp.h"

namespace fm::lcp {
namespace {

hw::Packet mk(hw::Nic& nic, NodeId dest, std::size_t bytes,
              std::uint32_t meta = 0) {
  hw::Packet p;
  p.id = nic.next_packet_id();
  p.dest = dest;
  p.bytes.assign(bytes, 0x5A);
  p.meta = meta;
  return p;
}

// Runs a unidirectional stream through a pair of LCPs of type L, delivering
// into a host receive queue that a host task drains continuously.
template <typename L>
struct HostStream {
  hw::Cluster cluster{2};
  L tx{cluster.node(0), cluster.params()};
  L rx{cluster.node(1), cluster.params()};
  HostRecvQueue host_q{cluster.sim(), 4096};
  std::size_t received = 0;
  std::size_t received_bytes = 0;

  HostStream() {
    rx.attach_host_recv(&host_q);
    // The sender side may also receive (unused here) — attach a queue so
    // variants that require one don't trip their precondition.
    static thread_local HostRecvQueue* dummy = nullptr;
    (void)dummy;
    tx_q_ = std::make_unique<HostRecvQueue>(cluster.sim(), 64);
    tx.attach_host_recv(tx_q_.get());
    tx.start();
    rx.start();
  }

  void run(std::size_t count, std::size_t bytes, std::uint32_t meta = 0) {
    auto feeder = [](HostStream& hs, std::size_t count, std::size_t bytes,
                     std::uint32_t meta) -> sim::Task {
      for (std::size_t i = 0; i < count; ++i) {
        while (hs.tx.send_space() == 0) co_await hs.tx.host_wake().wait();
        FM_CHECK(hs.tx.host_enqueue(
            mk(hs.cluster.node(0).nic(), 1, bytes, meta)));
      }
    };
    auto drainer = [](HostStream& hs) -> sim::Task {
      for (;;) {
        hw::Packet p;
        while (!hs.host_q.take(p)) co_await hs.host_q.arrived().wait();
        ++hs.received;
        hs.received_bytes += p.wire_bytes();
        hs.rx.nic().ring_doorbell();  // host freed space
      }
    };
    cluster.sim().spawn(feeder(*this, count, bytes, meta));
    cluster.sim().spawn(drainer(*this));
    bool done =
        cluster.sim().run_while_pending([&] { return received == count; });
    EXPECT_TRUE(done);
  }

  sim::Time now() { return cluster.sim().now(); }

 private:
  std::unique_ptr<HostRecvQueue> tx_q_;
};

TEST(HybridMinimalLcp, DeliversToHostQueue) {
  HostStream<HybridMinimalLcp> hs;
  hs.run(20, 128);
  EXPECT_EQ(hs.received, 20u);
  EXPECT_EQ(hs.received_bytes, 20u * 128);
  EXPECT_EQ(hs.cluster.node(1).sbus().bytes_dma(), 20u * 128);
}

TEST(FmLcp, DeliversAndAggregates) {
  // With 512 B frames the delivery DMA (~10.6 us) is slower than the
  // inter-arrival time (~9.8 us), so the LCP must batch frames: "packets to
  // be aggregated and transferred with a single DMA operation".
  HostStream<FmLcp> hs;
  hs.run(200, 512);
  EXPECT_EQ(hs.received, 200u);
  EXPECT_GT(hs.rx.mean_aggregation(), 1.05);
  // ...which reduces DMA transactions below one per frame.
  EXPECT_LT(hs.rx.nic().host_dma_engine().transfers(), 200u);
}

TEST(FmLcp, AggregationImprovesDeliveryOverPerPacketDma) {
  // Figure 7: buffer management (with aggregated delivery) sustains at
  // least the bandwidth of the per-packet-DMA minimal layer.
  const std::size_t kPackets = 300, kBytes = 128;
  HostStream<HybridMinimalLcp> a;
  a.run(kPackets, kBytes);
  HostStream<FmLcp> b;
  b.run(kPackets, kBytes);
  // FM's receive path must not be slower by more than a small margin.
  EXPECT_LT(sim::to_us(b.now()), sim::to_us(a.now()) * 1.05);
}

TEST(FmLcp, SwitchInterpretationCostsBandwidth) {
  // Figure 7's third curve: ~20 instructions of packet interpretation in
  // the receive inner loop visibly slows a stream of small packets.
  const std::size_t kPackets = 300, kBytes = 16;
  hw::Cluster c1(2), c2(2);
  sim::Time plain, interp;
  {
    HostStream<FmLcp> hs;
    hs.run(kPackets, kBytes);
    plain = hs.now();
  }
  {
    // Build a stream whose receiver interprets packets.
    hw::Cluster c(2);
    FmLcp tx(c.node(0), c.params());
    FmLcp rx(c.node(1), c.params(), FmLcp::Config{.interpret_packets = true});
    HostRecvQueue q(c.sim(), 4096);
    HostRecvQueue qtx(c.sim(), 64);
    rx.attach_host_recv(&q);
    tx.attach_host_recv(&qtx);
    tx.start();
    rx.start();
    std::size_t received = 0;
    auto feeder = [](hw::Cluster& c, FmLcp& tx, std::size_t n,
                     std::size_t b) -> sim::Task {
      for (std::size_t i = 0; i < n; ++i) {
        while (tx.send_space() == 0) co_await tx.host_wake().wait();
        FM_CHECK(tx.host_enqueue(mk(c.node(0).nic(), 1, b)));
      }
    };
    auto drainer = [](FmLcp& rx, HostRecvQueue& q,
                      std::size_t* received) -> sim::Task {
      for (;;) {
        hw::Packet p;
        while (!q.take(p)) co_await q.arrived().wait();
        ++*received;
        rx.nic().ring_doorbell();
      }
    };
    c.sim().spawn(feeder(c, tx, kPackets, kBytes));
    c.sim().spawn(drainer(rx, q, &received));
    c.sim().run_while_pending([&] { return received == kPackets; });
    interp = c.sim().now();
  }
  // The paper measured the switch() penalty on *bandwidth* as substantial
  // for small packets (n_1/2 53 -> 127 B).
  EXPECT_GT(sim::to_us(interp), sim::to_us(plain) * 1.0);
  double per_packet_delta_us = sim::to_us(interp - plain) / kPackets;
  EXPECT_GT(per_packet_delta_us, 1.0);  // ~20 instr ~ 3.2 us, partly hidden
}

TEST(FmLcp, HonorsHostQueueSpace) {
  // With a tiny host receive queue and a host that never drains, the LCP
  // must stop delivering (not overrun), and the network must backpressure.
  hw::Cluster c(2);
  FmLcp tx(c.node(0), c.params());
  FmLcp rx(c.node(1), c.params());
  HostRecvQueue q(c.sim(), 4);
  HostRecvQueue qtx(c.sim(), 64);
  rx.attach_host_recv(&q);
  tx.attach_host_recv(&qtx);
  tx.start();
  rx.start();
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(tx.host_enqueue(mk(c.node(0).nic(), 1, 64)));
  c.sim().run_until(sim::ms(5));
  EXPECT_LE(q.ring().size(), 4u);
  EXPECT_EQ(q.delivered(), 4u);
  // Draining the host queue lets the rest flow.
  std::size_t got = 0;
  auto drainer = [](FmLcp& rx, HostRecvQueue& q,
                    std::size_t* got) -> sim::Task {
    for (;;) {
      hw::Packet p;
      while (!q.take(p)) co_await q.arrived().wait();
      ++*got;
      rx.nic().ring_doorbell();
    }
  };
  c.sim().spawn(drainer(rx, q, &got));
  c.sim().run_while_pending([&] { return got == 12; });
  EXPECT_EQ(got, 12u);
}

TEST(AllDmaLcp, DeliversWithStagingFetch) {
  HostStream<AllDmaLcp> hs;
  hs.run(50, 256);
  EXPECT_EQ(hs.received, 50u);
  // Sender-side SBus must show DMA traffic (the staging fetches).
  EXPECT_GE(hs.cluster.node(0).sbus().bytes_dma(), 50u * 256);
}

TEST(AllDmaLcp, HigherStreamingBandwidthThanHybridForLargeFrames) {
  // Table 4: all-DMA r_inf = 33.0 vs hybrid 21.2 MB/s. At large frame sizes
  // the all-DMA pipeline (fetch overlapped with wire) must win — in LCP
  // terms, all-DMA moves more bytes per second once the host PIO stage is
  // taken out. Here both feeders are cost-free, so the comparison isolates
  // the LCP+bus path; hybrid-minimal's receive DMA is its own bottleneck,
  // all-DMA pays fetch+deliver. We simply check all-DMA sustains the link
  // better than per-byte PIO would (>25 MB/s at 1 KB frames).
  HostStream<AllDmaLcp> hs;
  const std::size_t kPackets = 100, kBytes = 1024;
  hs.run(kPackets, kBytes);
  double mbs =
      kPackets * kBytes / 1048576.0 / sim::to_s(hs.now());
  EXPECT_GT(mbs, 25.0);
}

TEST(AllDmaLcp, LatencyWorseThanFmForSmallFrames) {
  // Table 4: all-DMA t0 = 7.5 us vs 3.5-3.8 us — the extra copy and
  // synchronization hurt small messages. Compare one-packet delivery time.
  sim::Time t_fm, t_alldma;
  {
    HostStream<FmLcp> hs;
    hs.run(1, 32);
    t_fm = hs.now();
  }
  {
    HostStream<AllDmaLcp> hs;
    hs.run(1, 32);
    t_alldma = hs.now();
  }
  EXPECT_GT(t_alldma, t_fm + sim::us(1));
}

TEST(ApiLcp, DeliversBothModes) {
  for (std::uint32_t meta : {0u, kApiMetaDmaFetch}) {
    HostStream<ApiLcp> hs;
    hs.run(5, 128, meta);
    EXPECT_EQ(hs.received, 5u);
  }
}

TEST(ApiLcp, PerMessageCostIsTensOfMicroseconds) {
  // §4.6: the API's LANai-side features cost ~100 us per message.
  HostStream<ApiLcp> hs;
  hs.run(1, 128);
  double us = sim::to_us(hs.now());
  EXPECT_GT(us, 60.0);
  EXPECT_LT(us, 200.0);
}

TEST(ApiLcp, DmaModeSlowerThanImmediateForSmallMessages) {
  sim::Time t_imm, t_dma;
  {
    HostStream<ApiLcp> hs;
    hs.run(10, 128, 0);
    t_imm = hs.now();
  }
  {
    HostStream<ApiLcp> hs;
    hs.run(10, 128, kApiMetaDmaFetch);
    t_dma = hs.now();
  }
  EXPECT_GT(t_dma, t_imm);
}

TEST(ApiLcp, OrdersOfMagnitudeSlowerThanFmLcpPath) {
  // The Figure 9 headline, at the LCP level.
  sim::Time t_fm, t_api;
  const std::size_t kPackets = 20;
  {
    HostStream<FmLcp> hs;
    hs.run(kPackets, 128);
    t_fm = hs.now();
  }
  {
    HostStream<ApiLcp> hs;
    hs.run(kPackets, 128);
    t_api = hs.now();
  }
  EXPECT_GT(t_api, 10 * t_fm);
}

}  // namespace
}  // namespace fm::lcp
