// Tests for the baseline / streamed LCP main loops (Figure 2, Figure 3).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/cluster.h"
#include "lcp/baseline_lcp.h"
#include "lcp/streamed_lcp.h"
#include "lcp/theoretical.h"

namespace fm::lcp {
namespace {

hw::Packet mk(hw::Nic& nic, NodeId dest, std::size_t bytes) {
  hw::Packet p;
  p.id = nic.next_packet_id();
  p.dest = dest;
  p.bytes.assign(bytes, 0x5A);
  return p;
}

// Sends `count` packets node0 -> node1 through `L` LCPs and returns the
// total time from first enqueue to last reception.
template <typename L>
sim::Time stream_time(std::size_t count, std::size_t bytes) {
  hw::Cluster c(2);
  L tx(c.node(0), c.params());
  L rx(c.node(1), c.params());
  std::size_t received = 0;
  rx.set_on_receive([&](const hw::Packet&) { ++received; });
  tx.start();
  rx.start();
  // Feeder: keeps the LANai send queue full with no host-side cost —
  // isolates LCP behaviour exactly as §4.2 does.
  auto feeder = [](hw::Cluster& c, L& tx, std::size_t count,
                   std::size_t bytes) -> sim::Task {
    for (std::size_t i = 0; i < count; ++i) {
      while (tx.send_space() == 0) co_await tx.host_wake().wait();
      bool okp = tx.host_enqueue(mk(c.node(0).nic(), 1, bytes));
      FM_CHECK(okp);
    }
  };
  c.sim().spawn(feeder(c, tx, count, bytes));
  bool done = c.sim().run_while_pending([&] { return received == count; });
  EXPECT_TRUE(done);
  sim::Time t = c.sim().now();
  tx.request_stop();
  rx.request_stop();
  c.sim().run();
  EXPECT_TRUE(tx.stopped());
  EXPECT_TRUE(rx.stopped());
  EXPECT_EQ(tx.packets_tx(), count);
  EXPECT_EQ(rx.packets_rx(), count);
  return t;
}

TEST(LcpLoops, SinglePacketDeliveredWithPayloadIntact) {
  hw::Cluster c(2);
  StreamedLcp tx(c.node(0), c.params());
  StreamedLcp rx(c.node(1), c.params());
  std::vector<std::uint8_t> got;
  rx.set_on_receive([&](const hw::Packet& p) { got = p.bytes; });
  tx.start();
  rx.start();
  hw::Packet p = mk(c.node(0).nic(), 1, 32);
  for (std::size_t i = 0; i < 32; ++i) p.bytes[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(tx.host_enqueue(std::move(p)));
  c.sim().run_while_pending([&] { return !got.empty(); });
  ASSERT_EQ(got.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(got[i], i);
  tx.request_stop();
  rx.request_stop();
  c.sim().run();
}

TEST(LcpLoops, StreamedBeatsBaselinePerPacket) {
  // Figure 3: the streamed loop's consolidated checks save instructions on
  // every packet, so a long stream finishes measurably earlier.
  const std::size_t kPackets = 200;
  for (std::size_t bytes : {16u, 128u, 512u}) {
    sim::Time tb = stream_time<BaselineLcp>(kPackets, bytes);
    sim::Time ts = stream_time<StreamedLcp>(kPackets, bytes);
    EXPECT_LT(ts, tb) << "payload " << bytes;
    // Per-packet delta is the consolidated check+loop overhead: between 0.3
    // and 1.2 us per packet.
    double delta_us = sim::to_us(tb - ts) / kPackets;
    EXPECT_GT(delta_us, 0.3) << "payload " << bytes;
    EXPECT_LT(delta_us, 1.2) << "payload " << bytes;
  }
}

TEST(LcpLoops, PerPacketOverheadMatchesTable4Calibration) {
  // Streaming period per packet = fixed overhead + wire time. Table 4 says
  // the fixed part is ~4.2 us (baseline) and ~3.5 us (streamed); our
  // calibration should land within ~0.5 us of each.
  const std::size_t kPackets = 400;
  const std::size_t kBytes = 128;
  double wire_us = 12.5e-3 * kBytes;
  double per_b =
      sim::to_us(stream_time<BaselineLcp>(kPackets, kBytes)) / kPackets;
  double per_s =
      sim::to_us(stream_time<StreamedLcp>(kPackets, kBytes)) / kPackets;
  EXPECT_NEAR(per_b - wire_us, 4.2, 0.6);
  EXPECT_NEAR(per_s - wire_us, 3.5, 0.6);
}

TEST(LcpLoops, BothLoopsReachLinkBandwidthForLargePackets) {
  // Figure 3(b): "Both versions of the LCP can achieve full link bandwidth,
  // but they require large messages to do so."
  const std::size_t kPackets = 100;
  const std::size_t kBytes = 4096;
  for (double t_us : {sim::to_us(stream_time<BaselineLcp>(kPackets, kBytes)),
                      sim::to_us(stream_time<StreamedLcp>(kPackets, kBytes))}) {
    double mbs = kPackets * kBytes / 1048576.0 / (t_us * 1e-6);
    EXPECT_GT(mbs, 0.85 * 76.3);
  }
}

TEST(LcpLoops, PingPongReflection) {
  // on_receive can enqueue a reply — the Figure 3(a) latency harness shape.
  hw::Cluster c(2);
  StreamedLcp a(c.node(0), c.params());
  StreamedLcp b(c.node(1), c.params());
  int rounds = 0;
  a.set_on_receive([&](const hw::Packet&) {
    if (++rounds < 5) {
      ASSERT_TRUE(a.host_enqueue(mk(c.node(0).nic(), 1, 16)));
    }
  });
  b.set_on_receive([&](const hw::Packet& p) {
    ASSERT_TRUE(b.host_enqueue(mk(c.node(1).nic(), 0, p.bytes.size())));
  });
  a.start();
  b.start();
  ASSERT_TRUE(a.host_enqueue(mk(c.node(0).nic(), 1, 16)));
  c.sim().run_while_pending([&] { return rounds >= 5; });
  EXPECT_EQ(rounds, 5);
  a.request_stop();
  b.request_stop();
  c.sim().run();
}

TEST(LcpLoops, StopDrainsCleanly) {
  hw::Cluster c(2);
  BaselineLcp a(c.node(0), c.params());
  a.start();
  a.request_stop();
  c.sim().run();
  EXPECT_TRUE(a.stopped());
}

TEST(TheoreticalPeakModel, MatchesAppendixA) {
  TheoreticalPeak t;
  EXPECT_EQ(t.overhead(0), sim::ns(320));
  EXPECT_EQ(t.latency(0), sim::ns(870));
  EXPECT_EQ(t.latency(128), sim::ns(870) + sim::ns(1600));
  EXPECT_NEAR(t.r_inf_mbs(), 76.3, 0.1);
  EXPECT_NEAR(t.n_half(), 25.6, 0.1);
  // r(N) at N = n_1/2 is half the peak.
  EXPECT_NEAR(t.bandwidth_mbs(26), t.r_inf_mbs() / 2, 1.0);
}

TEST(TheoreticalPeakModel, SimulatedIdealLcpMatchesClosedForm) {
  // An "LCP" that does nothing but transmit back-to-back should produce
  // exactly the Appendix A per-packet time (320 ns + 12.5 ns/B), since the
  // wormhole path releases before the next setup begins.
  hw::Cluster c(2);
  const std::size_t kPackets = 50, kBytes = 256;
  auto ideal = [](hw::Cluster& c, std::size_t n, std::size_t b) -> sim::Task {
    for (std::size_t i = 0; i < n; ++i)
      co_await c.node(0).nic().transmit(mk(c.node(0).nic(), 1, b));
  };
  auto drain = [](hw::Cluster& c, std::size_t n) -> sim::Task {
    for (std::size_t i = 0; i < n; ++i)
      (void)co_await c.node(1).nic().rx_ring().recv();
  };
  c.sim().spawn(ideal(c, kPackets, kBytes));
  c.sim().spawn(drain(c, kPackets));
  c.sim().run();
  TheoreticalPeak t;
  // Each inline transmit includes the switch fall-through; per-packet time
  // is latency(N) here because transmit() waits for full delivery.
  EXPECT_EQ(c.sim().now(), kPackets * t.latency(kBytes));
}

}  // namespace
}  // namespace fm::lcp
