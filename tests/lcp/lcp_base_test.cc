// Tests of the Lcp base-class plumbing: the hostsent/lanaisent split
// counters (§4.4), send-queue space accounting, wake conditions, and the
// HostRecvQueue's delivered/consumed counters.
#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "lcp/streamed_lcp.h"

namespace fm::lcp {
namespace {

hw::Packet mk(hw::Nic& nic, NodeId dest, std::size_t bytes) {
  hw::Packet p;
  p.id = nic.next_packet_id();
  p.dest = dest;
  p.bytes.assign(bytes, 0x5A);
  return p;
}

TEST(LcpBase, SplitCountersTrackQueueOccupancy) {
  hw::Cluster c(2);
  StreamedLcp lcp(c.node(0), c.params());
  // Not started: the LANai never drains, so hostsent - lanaisent == queued.
  EXPECT_EQ(lcp.hostsent(), 0u);
  EXPECT_EQ(lcp.lanaisent(), 0u);
  std::size_t cap = lcp.send_space();
  EXPECT_EQ(cap, c.params().queues.lanai_send_frames);
  for (std::size_t i = 0; i < cap; ++i)
    ASSERT_TRUE(lcp.host_enqueue(mk(c.node(0).nic(), 1, 16)));
  EXPECT_EQ(lcp.hostsent(), cap);
  EXPECT_EQ(lcp.lanaisent(), 0u);
  EXPECT_EQ(lcp.send_space(), 0u);
  // A full queue refuses the next frame (the host must wait).
  EXPECT_FALSE(lcp.host_enqueue(mk(c.node(0).nic(), 1, 16)));
  EXPECT_EQ(lcp.hostsent(), cap);
}

TEST(LcpBase, HostWakeNotifiedOnDrain) {
  hw::Cluster c(2);
  StreamedLcp tx(c.node(0), c.params());
  StreamedLcp rx(c.node(1), c.params());
  tx.start();
  rx.start();
  // Fill the queue, then wait for one slot to free.
  std::size_t cap = tx.send_space();
  for (std::size_t i = 0; i < cap; ++i)
    ASSERT_TRUE(tx.host_enqueue(mk(c.node(0).nic(), 1, 16)));
  bool woke = false;
  auto waiter = [](StreamedLcp& tx, bool* woke) -> sim::Task {
    while (tx.send_space() == 0) co_await tx.host_wake().wait();
    *woke = true;
  };
  c.sim().spawn(waiter(tx, &woke));
  c.sim().run_while_pending([&] { return woke; });
  EXPECT_TRUE(woke);
  EXPECT_GT(tx.lanaisent(), 0u);
  EXPECT_EQ(tx.hostsent(), cap);  // hostsent is host-owned: unchanged
  tx.request_stop();
  rx.request_stop();
  c.sim().run();
}

TEST(LcpBase, StartTwiceAborts) {
  hw::Cluster c(2);
  StreamedLcp lcp(c.node(0), c.params());
  lcp.start();
  EXPECT_DEATH(lcp.start(), "already started");
  lcp.request_stop();
  c.sim().run();
}

TEST(LcpBase, QueueReservationsChargeSram) {
  hw::Cluster c(2);
  std::size_t before = c.node(0).nic().memory().used();
  StreamedLcp lcp(c.node(0), c.params());
  EXPECT_GT(c.node(0).nic().memory().used(), before);
}

TEST(HostRecvQueueTest, CountersAndTake) {
  sim::Simulator sim;
  HostRecvQueue q(sim, 4);
  EXPECT_EQ(q.delivered(), 0u);
  EXPECT_EQ(q.consumed(), 0u);
  hw::Packet p;
  p.bytes = {1, 2, 3};
  q.deposit(std::move(p));
  EXPECT_EQ(q.delivered(), 1u);
  hw::Packet out;
  EXPECT_TRUE(q.take(out));
  EXPECT_EQ(out.bytes.size(), 3u);
  EXPECT_EQ(q.consumed(), 1u);
  EXPECT_FALSE(q.take(out));
}

TEST(HostRecvQueueDeathTest, OverrunAborts) {
  sim::Simulator sim;
  HostRecvQueue q(sim, 1);
  q.deposit(hw::Packet{});
  EXPECT_DEATH(q.deposit(hw::Packet{}), "overrun");
}

}  // namespace
}  // namespace fm::lcp
