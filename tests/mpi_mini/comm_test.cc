// Tests of the FM-MPI layer (point-to-point matching, ordering restoration,
// and all collectives) on real threads.
#include "mpi_mini/comm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "shm/cluster.h"

namespace fm::mpi {
namespace {

// Runs `body(comm)` on every rank of an n-node cluster.
void spmd(std::size_t n, const std::function<void(Comm&)>& body,
          FmConfig cfg = FmConfig()) {
  shm::Cluster cluster(n, cfg);
  cluster.run([&](shm::Endpoint& ep) {
    Comm comm(ep);
    body(comm);
    comm.endpoint().drain();
  });
}

TEST(Comm, RankAndSize) {
  spmd(3, [](Comm& c) {
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 3);
    EXPECT_EQ(c.size(), 3);
  });
}

TEST(Comm, SendRecvTaggedMatching) {
  spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      int a = 111, b = 222;
      c.send(1, /*tag=*/7, &a, sizeof a);
      c.send(1, /*tag=*/9, &b, sizeof b);
    } else {
      std::vector<std::uint8_t> data;
      // Receive out of tag order: matching must be by tag, not arrival.
      c.recv(0, 9, data);
      int v;
      std::memcpy(&v, data.data(), 4);
      EXPECT_EQ(v, 222);
      c.recv(0, 7, data);
      std::memcpy(&v, data.data(), 4);
      EXPECT_EQ(v, 111);
    }
  });
}

TEST(Comm, AnySourceReceivesFromBoth) {
  spmd(3, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> data;
      int s1 = c.recv(kAnySource, 5, data);
      int s2 = c.recv(kAnySource, 5, data);
      EXPECT_NE(s1, s2);
      EXPECT_TRUE((s1 == 1 || s1 == 2) && (s2 == 1 || s2 == 2));
    } else {
      int v = c.rank();
      c.send(0, 5, &v, sizeof v);
    }
  });
}

TEST(Comm, PerPeerOrderingIsRestored) {
  // Force FM-level reordering with a tiny reassembly pool and large
  // messages interleaved with small ones, then check the MPI layer delivers
  // per-peer messages in send order.
  FmConfig cfg;
  cfg.reassembly_slots = 1;
  cfg.reject_retry_delay = 1;
  spmd(
      3,
      [](Comm& c) {
        const int kMsgs = 30;
        if (c.rank() == 2) {
          // Drain both peers; per peer the payload counter must ascend.
          int expect[2] = {0, 0};
          for (int i = 0; i < 2 * kMsgs; ++i) {
            std::vector<std::uint8_t> data;
            int src = c.recv(kAnySource, 1, data);
            int v;
            std::memcpy(&v, data.data(), 4);
            EXPECT_EQ(v, expect[src == 1 ? 0 : 1]) << "src " << src;
            ++expect[src == 1 ? 0 : 1];
          }
        } else if (c.rank() != 2) {
          std::vector<std::uint8_t> big(700, 0);
          for (int i = 0; i < kMsgs; ++i) {
            std::memcpy(big.data(), &i, 4);
            // Alternate sizes so fragments and singles interleave.
            c.send(2, 1, big.data(), (i % 2) ? big.size() : 4u);
          }
        }
      },
      cfg);
}

TEST(Comm, BarrierSynchronizes) {
  for (std::size_t n : {2u, 3u, 5u}) {
    std::atomic<int> phase_done{0};
    spmd(n, [&](Comm& c) {
      for (int phase = 0; phase < 4; ++phase) {
        ++phase_done;
        c.barrier();
        // After the barrier every rank must have finished this phase.
        EXPECT_GE(phase_done.load(), (phase + 1) * static_cast<int>(c.size()));
      }
    });
    EXPECT_EQ(phase_done.load(), 4 * static_cast<int>(n));
  }
}

TEST(Comm, BcastFromEveryRoot) {
  for (std::size_t n : {2u, 4u, 5u}) {
    for (int root = 0; root < static_cast<int>(n); ++root) {
      spmd(n, [root](Comm& c) {
        std::uint64_t value = c.rank() == root ? 0xfeedfacecafe + root : 0;
        c.bcast(&value, sizeof value, root);
        EXPECT_EQ(value, 0xfeedfacecafeull + root);
      });
    }
  }
}

TEST(Comm, ReduceSum) {
  spmd(4, [](Comm& c) {
    std::int64_t in[3] = {c.rank() + 1, 10 * (c.rank() + 1), 0};
    std::int64_t out[3] = {-1, -1, -1};
    c.reduce<std::int64_t>(in, out, 3, /*root=*/0,
                           [](std::int64_t a, std::int64_t b) { return a + b; });
    if (c.rank() == 0) {
      EXPECT_EQ(out[0], 1 + 2 + 3 + 4);
      EXPECT_EQ(out[1], 10 + 20 + 30 + 40);
      EXPECT_EQ(out[2], 0);
    }
  });
}

TEST(Comm, ReduceMaxToNonzeroRoot) {
  spmd(5, [](Comm& c) {
    double in = 1.5 * c.rank();
    double out = -1;
    c.reduce<double>(&in, &out, 1, /*root=*/3,
                     [](double a, double b) { return a > b ? a : b; });
    if (c.rank() == 3) {
      EXPECT_DOUBLE_EQ(out, 6.0);
    }
  });
}

TEST(Comm, AllreduceGivesEveryRankTheResult) {
  spmd(4, [](Comm& c) {
    std::int32_t in = 1 << c.rank();
    std::int32_t out = 0;
    c.allreduce<std::int32_t>(&in, &out, 1, 0,
                              [](std::int32_t a, std::int32_t b) { return a | b; });
    EXPECT_EQ(out, 0b1111);
  });
}

TEST(Comm, GatherCollectsRankMajor) {
  spmd(4, [](Comm& c) {
    std::int32_t mine = 100 + c.rank();
    std::vector<std::int32_t> all(4, -1);
    c.gather(&mine, sizeof mine, all.data(), /*root=*/1);
    if (c.rank() == 1) {
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r], 100 + r);
    }
  });
}

TEST(Comm, ScatterDistributesBlocks) {
  spmd(3, [](Comm& c) {
    std::vector<std::int32_t> blocks = {7, 8, 9};
    std::int32_t mine = -1;
    c.scatter(blocks.data(), sizeof(std::int32_t), &mine, /*root=*/0);
    EXPECT_EQ(mine, 7 + c.rank());
  });
}

TEST(Comm, PipelineOfCollectivesStaysCoherent) {
  // A small "application": iterative allreduce rounds, as a fine-grained
  // solver would issue them — verified against a serial recomputation.
  const int kRanks = 4, kIters = 10;
  // Serial model of the recurrence x_r <- sum(x)/n + r.
  std::vector<double> model(kRanks);
  for (int r = 0; r < kRanks; ++r) model[r] = r + 1.0;
  for (int it = 0; it < kIters; ++it) {
    double sum = std::accumulate(model.begin(), model.end(), 0.0);
    for (int r = 0; r < kRanks; ++r) model[r] = sum / kRanks + r;
  }
  spmd(kRanks, [&](Comm& c) {
    double x = c.rank() + 1.0;
    for (int iter = 0; iter < kIters; ++iter) {
      double sum = 0;
      c.allreduce<double>(&x, &sum, 1, 0,
                          [](double a, double b) { return a + b; });
      x = sum / kRanks + c.rank();
    }
    EXPECT_DOUBLE_EQ(x, model[c.rank()]);
  });
}

}  // namespace
}  // namespace fm::mpi
