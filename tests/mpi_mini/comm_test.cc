// Tests of the FM-MPI layer (point-to-point matching, ordering restoration,
// and all collectives), typed over the transport backend: every test runs
// once on shm threads and once on the net backend's forked UDP processes.
// The test bodies are SPMD and share no memory across ranks, which is what
// lets one body serve both worlds.
#include "mpi_mini/comm.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "support/backends.h"

namespace fm {
namespace {

template <class B>
class CommOn : public ::testing::Test {
 protected:
  using C = mpi::BasicComm<typename B::Endpoint>;

  // Runs `body(comm)` on every rank of an n-node cluster.
  static RunReport spmd(std::size_t n, const std::function<void(C&)>& body,
                        FmConfig cfg = FmConfig()) {
    auto cluster = B::make(n, cfg);
    return B::run(*cluster, [&body](typename B::Endpoint& ep) {
      C comm(ep);
      body(comm);
      comm.endpoint().drain();
    });
  }
};

TYPED_TEST_SUITE(CommOn, testing::BothBackends, testing::BackendNames);

TYPED_TEST(CommOn, RankAndSize) {
  using C = typename TestFixture::C;
  this->spmd(3, [](C& c) {
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 3);
    EXPECT_EQ(c.size(), 3);
  });
}

TYPED_TEST(CommOn, SendRecvTaggedMatching) {
  using C = typename TestFixture::C;
  this->spmd(2, [](C& c) {
    if (c.rank() == 0) {
      int a = 111, b = 222;
      c.send(1, /*tag=*/7, &a, sizeof a);
      c.send(1, /*tag=*/9, &b, sizeof b);
    } else {
      std::vector<std::uint8_t> data;
      // Receive out of tag order: matching must be by tag, not arrival.
      c.recv(0, 9, data);
      int v;
      std::memcpy(&v, data.data(), 4);
      EXPECT_EQ(v, 222);
      c.recv(0, 7, data);
      std::memcpy(&v, data.data(), 4);
      EXPECT_EQ(v, 111);
    }
  });
}

TYPED_TEST(CommOn, AnySourceReceivesFromBoth) {
  using C = typename TestFixture::C;
  this->spmd(3, [](C& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> data;
      int s1 = c.recv(mpi::kAnySource, 5, data);
      int s2 = c.recv(mpi::kAnySource, 5, data);
      EXPECT_NE(s1, s2);
      EXPECT_TRUE((s1 == 1 || s1 == 2) && (s2 == 1 || s2 == 2));
    } else {
      int v = c.rank();
      c.send(0, 5, &v, sizeof v);
    }
  });
}

TYPED_TEST(CommOn, PerPeerOrderingIsRestored) {
  using C = typename TestFixture::C;
  // Force FM-level reordering with a tiny reassembly pool and large
  // messages interleaved with small ones, then check the MPI layer delivers
  // per-peer messages in send order.
  FmConfig cfg;
  cfg.reassembly_slots = 1;
  cfg.reject_retry_delay = 1;
  this->spmd(
      3,
      [](C& c) {
        const int kMsgs = 30;
        if (c.rank() == 2) {
          // Drain both peers; per peer the payload counter must ascend.
          int expect[2] = {0, 0};
          for (int i = 0; i < 2 * kMsgs; ++i) {
            std::vector<std::uint8_t> data;
            int src = c.recv(mpi::kAnySource, 1, data);
            int v;
            std::memcpy(&v, data.data(), 4);
            EXPECT_EQ(v, expect[src == 1 ? 0 : 1]) << "src " << src;
            ++expect[src == 1 ? 0 : 1];
          }
        } else {
          std::vector<std::uint8_t> big(700, 0);
          for (int i = 0; i < kMsgs; ++i) {
            std::memcpy(big.data(), &i, 4);
            // Alternate sizes so fragments and singles interleave.
            c.send(2, 1, big.data(), (i % 2) ? big.size() : 4u);
          }
        }
      },
      cfg);
}

TYPED_TEST(CommOn, BarrierOrdersCrossRankEvents) {
  using C = typename TestFixture::C;
  // Ranks share no memory (the net backend forks), so the barrier check is
  // message-based: each rank posts a phase-stamped message to its successor
  // BEFORE the barrier. The mpi layer restores per-peer order, and the
  // dissemination barrier's round-0 token to that same successor is sent
  // after the payload — so once the barrier completes, the payload must
  // already be matchable without further progress. A barrier that released
  // early would let iprobe miss it.
  for (std::size_t n : {2u, 3u, 5u}) {
    this->spmd(n, [](C& c) {
      const int next = (c.rank() + 1) % c.size();
      const int prev = (c.rank() - 1 + c.size()) % c.size();
      for (int phase = 0; phase < 4; ++phase) {
        c.send(next, /*tag=*/42, &phase, sizeof phase);
        c.barrier();
        EXPECT_TRUE(c.iprobe(prev, 42)) << "phase " << phase;
        std::vector<std::uint8_t> data;
        c.recv(prev, 42, data);
        int got = -1;
        std::memcpy(&got, data.data(), 4);
        EXPECT_EQ(got, phase);
      }
    });
  }
}

TYPED_TEST(CommOn, BcastFromEveryRoot) {
  using C = typename TestFixture::C;
  for (std::size_t n : {2u, 4u, 5u}) {
    for (int root = 0; root < static_cast<int>(n); ++root) {
      this->spmd(n, [root](C& c) {
        std::uint64_t value = c.rank() == root ? 0xfeedfacecafe + root : 0;
        c.bcast(&value, sizeof value, root);
        EXPECT_EQ(value, 0xfeedfacecafeull + root);
      });
    }
  }
}

TYPED_TEST(CommOn, ReduceSum) {
  using C = typename TestFixture::C;
  this->spmd(4, [](C& c) {
    std::int64_t in[3] = {c.rank() + 1, 10 * (c.rank() + 1), 0};
    std::int64_t out[3] = {-1, -1, -1};
    c.template reduce<std::int64_t>(
        in, out, 3, /*root=*/0,
        [](std::int64_t a, std::int64_t b) { return a + b; });
    if (c.rank() == 0) {
      EXPECT_EQ(out[0], 1 + 2 + 3 + 4);
      EXPECT_EQ(out[1], 10 + 20 + 30 + 40);
      EXPECT_EQ(out[2], 0);
    }
  });
}

TYPED_TEST(CommOn, ReduceMaxToNonzeroRoot) {
  using C = typename TestFixture::C;
  this->spmd(5, [](C& c) {
    double in = 1.5 * c.rank();
    double out = -1;
    c.template reduce<double>(&in, &out, 1, /*root=*/3,
                              [](double a, double b) { return a > b ? a : b; });
    if (c.rank() == 3) {
      EXPECT_DOUBLE_EQ(out, 6.0);
    }
  });
}

TYPED_TEST(CommOn, AllreduceGivesEveryRankTheResult) {
  using C = typename TestFixture::C;
  this->spmd(4, [](C& c) {
    std::int32_t in = 1 << c.rank();
    std::int32_t out = 0;
    c.template allreduce<std::int32_t>(
        &in, &out, 1, 0, [](std::int32_t a, std::int32_t b) { return a | b; });
    EXPECT_EQ(out, 0b1111);
  });
}

TYPED_TEST(CommOn, GatherCollectsRankMajor) {
  using C = typename TestFixture::C;
  this->spmd(4, [](C& c) {
    std::int32_t mine = 100 + c.rank();
    std::vector<std::int32_t> all(4, -1);
    c.gather(&mine, sizeof mine, all.data(), /*root=*/1);
    if (c.rank() == 1) {
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r], 100 + r);
    }
  });
}

TYPED_TEST(CommOn, ScatterDistributesBlocks) {
  using C = typename TestFixture::C;
  this->spmd(3, [](C& c) {
    std::vector<std::int32_t> blocks = {7, 8, 9};
    std::int32_t mine = -1;
    c.scatter(blocks.data(), sizeof(std::int32_t), &mine, /*root=*/0);
    EXPECT_EQ(mine, 7 + c.rank());
  });
}

TYPED_TEST(CommOn, PipelineOfCollectivesStaysCoherent) {
  using C = typename TestFixture::C;
  // A small "application": iterative allreduce rounds, as a fine-grained
  // solver would issue them — verified against a serial recomputation.
  const int kRanks = 4, kIters = 10;
  // Serial model of the recurrence x_r <- sum(x)/n + r.
  std::vector<double> model(kRanks);
  for (int r = 0; r < kRanks; ++r) model[r] = r + 1.0;
  for (int it = 0; it < kIters; ++it) {
    double sum = std::accumulate(model.begin(), model.end(), 0.0);
    for (int r = 0; r < kRanks; ++r) model[r] = sum / kRanks + r;
  }
  this->spmd(kRanks, [&model](C& c) {
    double x = c.rank() + 1.0;
    for (int iter = 0; iter < kIters; ++iter) {
      double sum = 0;
      c.template allreduce<double>(&x, &sum, 1, 0,
                                   [](double a, double b) { return a + b; });
      x = sum / kRanks + c.rank();
    }
    EXPECT_DOUBLE_EQ(x, model[c.rank()]);
  });
}

}  // namespace
}  // namespace fm
