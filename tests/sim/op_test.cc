#include "sim/op.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/semaphore.h"
#include "sim/simulator.h"

namespace fm::sim {
namespace {

Op<int> add_after(Simulator& sim, Time d, int a, int b) {
  co_await sim.delay(d);
  co_return a + b;
}

Op<> append_after(Simulator& sim, Time d, std::vector<int>* out, int v) {
  co_await sim.delay(d);
  out->push_back(v);
}

TEST(Op, ReturnsValueAndAdvancesTime) {
  Simulator sim;
  int result = 0;
  auto proc = [](Simulator& s, int* out) -> Task {
    *out = co_await add_after(s, us(3), 2, 5);
    EXPECT_EQ(s.now(), us(3));
  };
  sim.spawn(proc(sim, &result));
  sim.run();
  EXPECT_EQ(result, 7);
}

TEST(Op, VoidOpsCompose) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>* out) -> Task {
    co_await append_after(s, ns(10), out, 1);
    co_await append_after(s, ns(10), out, 2);
    EXPECT_EQ(s.now(), ns(20));
  };
  sim.spawn(proc(sim, &order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

Op<int> nested_level2(Simulator& sim) {
  co_await sim.delay(ns(5));
  co_return 10;
}

Op<int> nested_level1(Simulator& sim) {
  int v = co_await nested_level2(sim);
  co_await sim.delay(ns(5));
  co_return v * 2;
}

TEST(Op, NestsThroughMultipleLevels) {
  Simulator sim;
  int result = 0;
  auto proc = [](Simulator& s, int* out) -> Task {
    *out = co_await nested_level1(s);
    EXPECT_EQ(s.now(), ns(10));
  };
  sim.spawn(proc(sim, &result));
  sim.run();
  EXPECT_EQ(result, 20);
}

TEST(Op, DeepChainDoesNotOverflowStack) {
  Simulator sim;
  struct Rec {
    static Op<int> chain(Simulator& s, int depth) {
      if (depth == 0) {
        co_await s.delay(1);
        co_return 0;
      }
      int v = co_await chain(s, depth - 1);
      co_return v + 1;
    }
  };
  int result = -1;
  auto proc = [](Simulator& s, int* out) -> Task {
    *out = co_await Rec::chain(s, 20000);
  };
  sim.spawn(proc(sim, &result));
  sim.run();
  EXPECT_EQ(result, 20000);
}

TEST(Op, UnawaitedOpIsFreedSafely) {
  Simulator sim;
  { auto op = add_after(sim, ns(1), 1, 1); }  // dropped without awaiting
  sim.run();
  SUCCEED();
}

Op<> guarded_use(Simulator& sim, Semaphore& sem, Time hold,
                 std::vector<Time>* out) {
  co_await sem.acquire();
  co_await sim.delay(hold);
  sem.release();
  out->push_back(sim.now());
}

TEST(Op, CanBlockOnSemaphoresInsideOps) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<Time> done;
  auto proc = [](Simulator& s, Semaphore& sem, std::vector<Time>* out) -> Task {
    co_await guarded_use(s, sem, us(2), out);
  };
  sim.spawn(proc(sim, sem, &done));
  sim.spawn(proc(sim, sem, &done));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], us(2));
  EXPECT_EQ(done[1], us(4));
}

TEST(Op, MoveOnlyResultType) {
  Simulator sim;
  auto make = [](Simulator& s) -> Op<std::unique_ptr<int>> {
    co_await s.delay(1);
    co_return std::make_unique<int>(33);
  };
  int got = 0;
  auto proc = [&make](Simulator& s, int* out) -> Task {
    auto p = co_await make(s);
    *out = *p;
  };
  sim.spawn(proc(sim, &got));
  sim.run();
  EXPECT_EQ(got, 33);
}

}  // namespace
}  // namespace fm::sim
