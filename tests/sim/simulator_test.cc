#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.h"

namespace fm::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(ns(1), 1000);
  EXPECT_EQ(us(1), 1'000'000);
  EXPECT_EQ(ms(1), 1'000'000'000);
  EXPECT_EQ(ns_f(12.5), 12500);
  EXPECT_DOUBLE_EQ(to_us(us(32)), 32.0);
  EXPECT_DOUBLE_EQ(to_ns(ns(550)), 550.0);
}

TEST(Time, TransferTimeUsesBinaryMegabytes) {
  // 1 MB at 1 MB/s should take exactly 1 s.
  EXPECT_EQ(transfer_time(1 << 20, 1.0), ms(1000));
  // 128 bytes at 76.3MB/s ~ 1.6us (paper: "spooling a packet of 128 bytes
  // over the channel takes 1.6us").
  double t_us = to_us(transfer_time(128, 76.3));
  EXPECT_NEAR(t_us, 1.6, 0.1);
}

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CallbacksRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_fn(ns(30), [&] { order.push_back(3); });
  sim.schedule_fn(ns(10), [&] { order.push_back(1); });
  sim.schedule_fn(ns(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ns(30));
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_fn(ns(5), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, DelayAdvancesClock) {
  Simulator sim;
  Time observed = -1;
  auto proc = [](Simulator& s, Time* out) -> Task {
    co_await s.delay(us(5));
    *out = s.now();
  };
  sim.spawn(proc(sim, &observed));
  sim.run();
  EXPECT_EQ(observed, us(5));
}

TEST(Simulator, ZeroDelayYieldsFairly) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>* ord, int id) -> Task {
    for (int i = 0; i < 3; ++i) {
      ord->push_back(id);
      co_await s.delay(0);
    }
  };
  sim.spawn(proc(sim, &order, 0));
  sim.spawn(proc(sim, &order, 1));
  sim.run();
  // Processes interleave: 0,1,0,1,...
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_fn(ns(100), [&] { ++fired; });
  sim.schedule_fn(ns(200), [&] { ++fired; });
  sim.run_until(ns(150));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ns(150));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_until(ns(50));
  int fired = 0;
  sim.schedule_fn(ns(60), [&] { ++fired; });
  sim.run_for(ns(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ns(60));
}

TEST(Simulator, SpawnedTasksStartAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> order;
  auto child = [](std::vector<int>* ord) -> Task {
    ord->push_back(2);
    co_return;
  };
  sim.schedule_fn(0, [&] {
    sim.spawn(child(&order));
    order.push_back(1);  // runs before the child even though spawned first
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, NestedDelaysCompose) {
  Simulator sim;
  std::vector<Time> stamps;
  auto proc = [](Simulator& s, std::vector<Time>* out) -> Task {
    co_await s.delay(ns(10));
    out->push_back(s.now());
    co_await s.delay(ns(15));
    out->push_back(s.now());
  };
  sim.spawn(proc(sim, &stamps));
  sim.run();
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], ns(10));
  EXPECT_EQ(stamps[1], ns(25));
}

TEST(Simulator, DispatchCountIncrements) {
  Simulator sim;
  sim.schedule_fn(0, [] {});
  sim.schedule_fn(1, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched(), 2u);
}

TEST(Simulator, UnspawnedTaskDoesNotLeak) {
  // ASAN (when enabled) would flag a leak; structurally we just check that
  // constructing and dropping a task is safe.
  Simulator sim;
  auto proc = [](Simulator& s) -> Task { co_await s.delay(1); };
  { Task t = proc(sim); }  // destroyed unspawned
  sim.run();
  SUCCEED();
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i)
    sim.schedule_fn(ns(i), [&] { ++count; });
  bool ok = sim.run_while_pending([&] { return count >= 4; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 4);
  bool drained = sim.run_while_pending([] { return false; });
  EXPECT_FALSE(drained);
  EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace fm::sim
