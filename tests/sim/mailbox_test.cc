#include "sim/mailbox.h"

#include <gtest/gtest.h>

#include <vector>

namespace fm::sim {
namespace {

TEST(Mailbox, SendThenRecvPreservesFifo) {
  Simulator sim;
  Mailbox<int> mb(sim, 8);
  std::vector<int> got;
  auto sender = [](Mailbox<int>& m) -> Task {
    for (int i = 1; i <= 4; ++i) co_await m.send(i);
  };
  auto receiver = [](Mailbox<int>& m, std::vector<int>* out) -> Task {
    for (int i = 0; i < 4; ++i) out->push_back(co_await m.recv());
  };
  sim.spawn(sender(mb));
  sim.spawn(receiver(mb, &got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Mailbox, RecvBlocksUntilSend) {
  Simulator sim;
  Mailbox<int> mb(sim, 1);
  Time recv_at = -1;
  auto receiver = [](Simulator& s, Mailbox<int>& m, Time* at) -> Task {
    int v = co_await m.recv();
    EXPECT_EQ(v, 99);
    *at = s.now();
  };
  auto sender = [](Simulator& s, Mailbox<int>& m) -> Task {
    co_await s.delay(us(7));
    co_await m.send(99);
  };
  sim.spawn(receiver(sim, mb, &recv_at));
  sim.spawn(sender(sim, mb));
  sim.run();
  EXPECT_EQ(recv_at, us(7));
}

TEST(Mailbox, SendBlocksWhenFull) {
  Simulator sim;
  Mailbox<int> mb(sim, 1);
  Time second_send_done = -1;
  auto sender = [](Simulator& s, Mailbox<int>& m, Time* at) -> Task {
    co_await m.send(1);
    co_await m.send(2);  // must wait for the receiver
    *at = s.now();
  };
  auto receiver = [](Simulator& s, Mailbox<int>& m) -> Task {
    co_await s.delay(us(5));
    (void)co_await m.recv();
    (void)co_await m.recv();
  };
  sim.spawn(sender(sim, mb, &second_send_done));
  sim.spawn(receiver(sim, mb));
  sim.run();
  EXPECT_EQ(second_send_done, us(5));
}

TEST(Mailbox, RendezvousChannelHandsOffDirectly) {
  Simulator sim;
  Mailbox<int> mb(sim, 0);
  std::vector<int> got;
  Time sender_done = -1;
  auto sender = [](Simulator& s, Mailbox<int>& m, Time* at) -> Task {
    co_await m.send(5);
    *at = s.now();
  };
  auto receiver = [](Simulator& s, Mailbox<int>& m,
                     std::vector<int>* out) -> Task {
    co_await s.delay(us(2));
    out->push_back(co_await m.recv());
  };
  sim.spawn(sender(sim, mb, &sender_done));
  sim.spawn(receiver(sim, mb, &got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{5}));
  EXPECT_EQ(sender_done, us(2));
}

TEST(Mailbox, TryOpsDoNotBlock) {
  Simulator sim;
  Mailbox<int> mb(sim, 1);
  EXPECT_FALSE(mb.try_recv().has_value());
  EXPECT_TRUE(mb.try_send(3));
  EXPECT_FALSE(mb.try_send(4));  // full
  auto v = mb.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3);
}

TEST(Mailbox, ManyProducersOneConsumerTotalOrderIsDeterministic) {
  Simulator sim;
  Mailbox<int> mb(sim, 2);
  std::vector<int> got;
  auto producer = [](Simulator& s, Mailbox<int>& m, int base) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(us(1));
      co_await m.send(base + i);
    }
  };
  auto consumer = [](Mailbox<int>& m, std::vector<int>* out) -> Task {
    for (int i = 0; i < 6; ++i) out->push_back(co_await m.recv());
  };
  sim.spawn(producer(sim, mb, 100));
  sim.spawn(producer(sim, mb, 200));
  sim.spawn(consumer(mb, &got));
  sim.run();
  ASSERT_EQ(got.size(), 6u);
  // Determinism: re-running the identical setup yields the identical order.
  Simulator sim2;
  Mailbox<int> mb2(sim2, 2);
  std::vector<int> got2;
  sim2.spawn(producer(sim2, mb2, 100));
  sim2.spawn(producer(sim2, mb2, 200));
  sim2.spawn(consumer(mb2, &got2));
  sim2.run();
  EXPECT_EQ(got, got2);
}

TEST(Mailbox, MoveOnlyPayload) {
  Simulator sim;
  Mailbox<std::unique_ptr<int>> mb(sim, 1);
  int out = 0;
  auto sender = [](Mailbox<std::unique_ptr<int>>& m) -> Task {
    co_await m.send(std::make_unique<int>(11));
  };
  auto receiver = [](Mailbox<std::unique_ptr<int>>& m, int* out) -> Task {
    auto p = co_await m.recv();
    *out = *p;
  };
  sim.spawn(sender(mb));
  sim.spawn(receiver(mb, &out));
  sim.run();
  EXPECT_EQ(out, 11);
}

}  // namespace
}  // namespace fm::sim
