#include "sim/semaphore.h"

#include <gtest/gtest.h>

#include <vector>

namespace fm::sim {
namespace {

TEST(Semaphore, AcquireSucceedsWhenPermitsAvailable) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int acquired = 0;
  auto proc = [](Semaphore& s, int* n) -> Task {
    co_await s.acquire();
    ++*n;
  };
  sim.spawn(proc(sem, &acquired));
  sim.spawn(proc(sem, &acquired));
  sim.run();
  EXPECT_EQ(acquired, 2);
  EXPECT_EQ(sem.available(), 0u);
}

TEST(Semaphore, BlocksWhenExhaustedAndHandsOffFifo) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto proc = [](Simulator& s, Semaphore& sem, std::vector<int>* ord,
                 int id, Time hold) -> Task {
    co_await sem.acquire();
    ord->push_back(id);
    co_await s.delay(hold);
    sem.release();
  };
  sim.spawn(proc(sim, sem, &order, 0, us(10)));
  sim.spawn(proc(sim, sem, &order, 1, us(10)));
  sim.spawn(proc(sim, sem, &order, 2, us(10)));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), us(30));
  EXPECT_EQ(sem.available(), 1u);
}

TEST(Semaphore, LateArrivalCannotBargePastQueue) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  auto holder = [](Simulator& s, Semaphore& sem, std::vector<int>* ord) -> Task {
    co_await sem.acquire();
    ord->push_back(0);
    co_await s.delay(us(10));
    sem.release();
  };
  auto waiter = [](Semaphore& sem, std::vector<int>* ord, int id) -> Task {
    co_await sem.acquire();
    ord->push_back(id);
    sem.release();
  };
  sim.spawn(holder(sim, sem, &order));
  sim.spawn_at(us(1), [](Semaphore& s, std::vector<int>* o) -> Task {
    co_await s.acquire();
    o->push_back(1);
    s.release();
  }(sem, &order));
  sim.spawn_at(us(2), [](Semaphore& s, std::vector<int>* o) -> Task {
    co_await s.acquire();
    o->push_back(2);
    s.release();
  }(sem, &order));
  (void)waiter;
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Semaphore, ReleaseWithoutWaitersAccumulates) {
  Simulator sim;
  Semaphore sem(sim, 0);
  sem.release();
  sem.release();
  EXPECT_EQ(sem.available(), 2u);
}

TEST(BusyResource, SerializesOverlappingUses) {
  Simulator sim;
  BusyResource bus(sim);
  std::vector<Time> done;
  auto user = [](Simulator& s, BusyResource& r, std::vector<Time>* out,
                 Time dur) -> Task {
    co_await r.acquire();
    co_await s.delay(dur);
    r.release();
    out->push_back(s.now());
  };
  sim.spawn(user(sim, bus, &done, us(5)));
  sim.spawn(user(sim, bus, &done, us(3)));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], us(5));
  EXPECT_EQ(done[1], us(8));  // second waits for the first
}

TEST(BusyResource, ReportsBusyState) {
  Simulator sim;
  BusyResource bus(sim);
  EXPECT_FALSE(bus.busy());
  auto user = [](Simulator& s, BusyResource& r) -> Task {
    co_await r.acquire();
    co_await s.delay(us(1));
    r.release();
  };
  sim.spawn(user(sim, bus));
  sim.run_until(ns(500));
  EXPECT_TRUE(bus.busy());
  sim.run();
  EXPECT_FALSE(bus.busy());
}

}  // namespace
}  // namespace fm::sim
