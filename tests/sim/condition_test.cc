#include "sim/condition.h"

#include <gtest/gtest.h>

namespace fm::sim {
namespace {

TEST(Condition, NotifyWakesAllWaiters) {
  Simulator sim;
  Condition cond(sim);
  int woke = 0;
  auto waiter = [](Condition& c, int* n) -> Task {
    co_await c.wait();
    ++*n;
  };
  for (int i = 0; i < 5; ++i) sim.spawn(waiter(cond, &woke));
  sim.run_until(ns(10));
  EXPECT_EQ(woke, 0);
  EXPECT_EQ(cond.waiter_count(), 5u);
  cond.notify_all();
  sim.run();
  EXPECT_EQ(woke, 5);
}

TEST(Condition, NotifyWithNoWaitersIsNoOp) {
  Simulator sim;
  Condition cond(sim);
  cond.notify_all();
  sim.run();
  SUCCEED();
}

TEST(Condition, RecheckLoopHandlesSpuriousWakeups) {
  Simulator sim;
  Condition cond(sim);
  bool flag = false;
  int observed_true = 0;
  auto waiter = [](Condition& c, bool* f, int* n) -> Task {
    while (!*f) co_await c.wait();
    ++*n;
  };
  sim.spawn(waiter(cond, &flag, &observed_true));
  sim.run_until(ns(1));
  // Spurious notify: predicate still false, waiter must re-park.
  cond.notify_all();
  sim.run_until(ns(2));
  EXPECT_EQ(observed_true, 0);
  EXPECT_EQ(cond.waiter_count(), 1u);
  flag = true;
  cond.notify_all();
  sim.run();
  EXPECT_EQ(observed_true, 1);
}

TEST(Condition, WakeupHappensAtNotifyTime) {
  Simulator sim;
  Condition cond(sim);
  Time woke_at = -1;
  auto waiter = [](Condition& c, Time* t) -> Task {
    co_await c.wait();
    *t = c.simulator().now();
  };
  sim.spawn(waiter(cond, &woke_at));
  sim.run_until(us(3));
  cond.notify_all();
  sim.run();
  EXPECT_EQ(woke_at, us(3));
}

TEST(Condition, ProducerConsumerHandshake) {
  Simulator sim;
  Condition cond(sim);
  std::vector<int> data;
  std::vector<int> consumed;
  auto producer = [](Simulator& s, Condition& c, std::vector<int>* d) -> Task {
    for (int i = 1; i <= 3; ++i) {
      co_await s.delay(us(1));
      d->push_back(i);
      c.notify_all();
    }
  };
  auto consumer = [](Condition& c, std::vector<int>* d,
                     std::vector<int>* out) -> Task {
    while (out->size() < 3) {
      while (d->empty()) co_await c.wait();
      out->push_back(d->front());
      d->erase(d->begin());
    }
  };
  sim.spawn(producer(sim, cond, &data));
  sim.spawn(consumer(cond, &data, &consumed));
  sim.run();
  EXPECT_EQ(consumed, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace fm::sim
