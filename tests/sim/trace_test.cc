#include "sim/trace.h"

#include <gtest/gtest.h>

namespace fm::sim {
namespace {

TEST(Trace, DisabledByDefaultRecordsNothing) {
  Trace tr;
  tr.add(ns(5), "cat", "hello %d", 1);
  EXPECT_TRUE(tr.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace tr;
  tr.set_enabled(true);
  tr.add(ns(5), "send", "pkt %d len %d", 3, 128);
  tr.add(ns(9), "recv", "pkt %d", 3);
  ASSERT_EQ(tr.records().size(), 2u);
  EXPECT_EQ(tr.records()[0].at, ns(5));
  EXPECT_EQ(tr.records()[0].category, "send");
  EXPECT_EQ(tr.records()[0].detail, "pkt 3 len 128");
}

TEST(Trace, FiltersByCategory) {
  Trace tr;
  tr.set_enabled(true);
  tr.add(1, "a", "x");
  tr.add(2, "b", "y");
  tr.add(3, "a", "z");
  auto a = tr.by_category("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].detail, "z");
}

TEST(Trace, ClearEmpties) {
  Trace tr;
  tr.set_enabled(true);
  tr.add(1, "a", "x");
  tr.clear();
  EXPECT_TRUE(tr.records().empty());
}

}  // namespace
}  // namespace fm::sim
