#include "sim/trace.h"

#include <gtest/gtest.h>

namespace fm::sim {
namespace {

TEST(Trace, DisabledByDefaultRecordsNothing) {
  Trace tr;
  tr.add(ns(5), "cat", "hello %d", 1);
  EXPECT_TRUE(tr.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace tr;
  tr.set_enabled(true);
  tr.add(ns(5), "send", "pkt %d len %d", 3, 128);
  tr.add(ns(9), "recv", "pkt %d", 3);
  ASSERT_EQ(tr.records().size(), 2u);
  EXPECT_EQ(tr.records()[0].at, ns(5));
  EXPECT_EQ(tr.records()[0].category, "send");
  EXPECT_EQ(tr.records()[0].detail, "pkt 3 len 128");
}

TEST(Trace, FiltersByCategory) {
  Trace tr;
  tr.set_enabled(true);
  tr.add(1, "a", "x");
  tr.add(2, "b", "y");
  tr.add(3, "a", "z");
  auto a = tr.by_category("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].detail, "z");
}

TEST(Trace, ClearEmpties) {
  Trace tr;
  tr.set_enabled(true);
  tr.add(1, "a", "x");
  tr.clear();
  EXPECT_TRUE(tr.records().empty());
}

TEST(Trace, TruncationIsReportedNotSilent) {
  Trace tr;
  tr.set_enabled(true);
  std::string longtail(200, 'x');
  tr.add(1, "a", "short");
  tr.add(2, "a", "head-%s", longtail.c_str());
  ASSERT_EQ(tr.records().size(), 2u);
  EXPECT_FALSE(tr.records()[0].clipped);
  EXPECT_TRUE(tr.records()[1].clipped);
  EXPECT_EQ(tr.clipped(), 1u);
  // The surviving prefix is still useful.
  EXPECT_EQ(tr.records()[1].detail.substr(0, 5), "head-");
}

TEST(Trace, RingFullDropsOldestAndCounts) {
  Trace tr;
  tr.set_capacity(4);
  tr.set_enabled(true);
  for (int i = 0; i < 10; ++i) tr.add(i, "a", "ev %d", i);
  ASSERT_EQ(tr.records().size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  // Flight-recorder semantics: the newest records survive, oldest first.
  EXPECT_EQ(tr.records()[0].detail, "ev 6");
  EXPECT_EQ(tr.records()[3].detail, "ev 9");
}

}  // namespace
}  // namespace fm::sim
