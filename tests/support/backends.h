// Backend fixtures for tests that are generic over the FM transport.
//
// A test written against fm::ClusterBackend (see fm/cluster_runner.h) can
// run over shm threads and over the net backend's forked UDP processes;
// these adapters give gtest's typed-test machinery a uniform handle on
// both, and paper over the one real asymmetry: gtest assertion state is
// per-process, so a failure inside a net rank must travel back to the
// parent as a nonzero exit (plus an FM_OBS_DUMP_DIR artifact) instead of a
// shared HasFailure flag.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "fm/cluster_runner.h"
#include "fm/config.h"
#include "hw/fault.h"
#include "net/cluster.h"
#include "obs/dump.h"
#include "shm/cluster.h"

namespace fm::testing {

namespace detail {

/// Child-side failure artifact: when a net rank fails a gtest assertion,
/// dump its registry/trace state under FM_OBS_DUMP_DIR (rank-qualified
/// name) before the child exits — the parent-side listener never sees the
/// child's objects.
inline void dump_rank_failure(NodeId rank) {
  const char* dir = std::getenv("FM_OBS_DUMP_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = "unknown_test";
  if (info != nullptr)
    name = std::string(info->test_suite_name()) + "." + info->name();
  name += ".rank" + std::to_string(rank);
  (void)obs::write_failure_dump(dir, name);
}

inline std::string describe_ranks(const RunReport& r) {
  std::string s;
  for (const RankStatus& rs : r.ranks) {
    s += "rank" + std::to_string(rs.id) + ": ";
    if (rs.exited)
      s += "exit " + std::to_string(rs.exit_code);
    else
      s += "signal " + std::to_string(rs.term_signal);
    s += "; ";
  }
  if (r.timed_out) s += "TIMED OUT; ";
  return s;
}

}  // namespace detail

/// The thread/SPSC-ring backend.
struct ShmBackend {
  using Cluster = shm::Cluster;
  using Endpoint = shm::Endpoint;
  static constexpr const char* kName = "shm";
  /// Ranks are threads: a "killed" rank can only exit silently, and the
  /// cluster barrier (which waits for ALL ranks) must not be used after a
  /// kill. Chaos scenarios branch on this.
  static constexpr bool kProcessRanks = false;

  /// Backend-legal variant of a test's config (identity for shm).
  static FmConfig adapt(FmConfig cfg) { return cfg; }

  static std::unique_ptr<Cluster> make(std::size_t nodes,
                                       FmConfig cfg = FmConfig(),
                                       hw::FaultParams faults = {}) {
    return std::make_unique<Cluster>(nodes, adapt(cfg), 256, faults);
  }

  /// Runs `body` on every rank and asserts every rank finished cleanly.
  static RunReport run(Cluster& c,
                       const std::function<void(Endpoint&)>& body) {
    return c.run(body);  // threads share HasFailure; nothing to relay
  }
};

/// The multi-process UDP backend. FM-R is mandatory on it, so adapt()
/// force-enables the reliability stack (CRC included): a config tuned for
/// the lossless backends gets the protection a lossy substrate requires.
struct NetBackend {
  using Cluster = net::Cluster;
  using Endpoint = net::Endpoint;
  static constexpr const char* kName = "net";
  /// Ranks are forked processes: a chaos kill is a literal SIGKILL, and
  /// the parent-brokered barrier releases survivors without the victim.
  static constexpr bool kProcessRanks = true;

  static FmConfig adapt(FmConfig cfg) {
    cfg.flow_control = true;
    cfg.reliability = true;
    cfg.crc_frames = true;
    return cfg;
  }

  static std::unique_ptr<Cluster> make(std::size_t nodes,
                                       FmConfig cfg = FmConfig(),
                                       hw::FaultParams faults = {}) {
    net::NetConfig nc;
    // Tests must die well before ctest/CI timeouts so the failure artifact
    // is a RunReport, not a global hang.
    nc.run_timeout_ns = 60'000'000'000ull;
    return std::make_unique<Cluster>(nodes, adapt(cfg), nc, faults);
  }

  static RunReport run(Cluster& c,
                       const std::function<void(Endpoint&)>& body) {
    RunReport r = c.run([&body, &c](Endpoint& ep) {
      body(ep);
      if (::testing::Test::HasFailure()) {
        // This runs in the forked rank: persist the evidence and turn the
        // failure into an exit code the parent can assert on.
        detail::dump_rank_failure(ep.id());
        c.mark_child_failed();
      }
    });
    EXPECT_TRUE(r.all_clean())
        << "net rank(s) failed: " << detail::describe_ranks(r)
        << "(assertion details are in the rank's stderr and, when "
           "FM_OBS_DUMP_DIR is set, its dump artifacts)";
    return r;
  }
};

/// gtest typed-test name printer ("...Backends/CommTyped/shm.Bcast...").
struct BackendNames {
  template <typename T>
  static std::string GetName(int) {
    return T::kName;
  }
};

using BothBackends = ::testing::Types<ShmBackend, NetBackend>;

}  // namespace fm::testing
