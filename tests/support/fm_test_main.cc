// Shared gtest main with FM-Scope dump-on-failure.
//
// Every test binary links this instead of GTest::gtest_main. Around each
// test it arms FM-Scope capture, so registries and trace rings destroyed
// while the test body unwinds archive their final state; when the test
// FAILS, everything observable — live and archived — is written to an
// artifact directory ($FM_OBS_DUMP_DIR, default "obs-dump" under the test's
// working directory) that CI uploads:
//
//   obs-dump/<Suite>.<Test>.registry.txt   every counter/gauge, one per line
//   obs-dump/<Suite>.<Test>.trace.json     Chrome trace (Perfetto-loadable)
//
// A red CI run thus comes with the counters and the flight recording of the
// failing scenario, not just an assertion message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/dump.h"

namespace {

class ObsDumpListener : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo&) override {
    fm::obs::begin_capture();
  }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() != nullptr && info.result()->Failed()) {
      // Chaos/soak failures must be replayable: surface the effective seed
      // (recorded via fm::obs::set_run_seed) next to the failure.
      std::uint64_t seed = 0;
      if (fm::obs::run_seed(&seed))
        std::fprintf(stderr,
                     "[FM-San] effective chaos seed: %llu — replay with "
                     "FM_SAN_SEED=%llu\n",
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(seed));
      const char* env = std::getenv("FM_OBS_DUMP_DIR");
      const std::string dir = env != nullptr && env[0] != '\0' ? env
                                                               : "obs-dump";
      std::string name =
          std::string(info.test_suite_name()) + "." + info.name();
      // Parameterized test names contain '/'; keep the dump flat.
      for (char& c : name)
        if (c == '/') c = '_';
      if (fm::obs::write_failure_dump(dir, name))
        std::fprintf(stderr,
                     "[FM-Scope] observability dump written to %s/%s.*\n",
                     dir.c_str(), name.c_str());
      else
        std::fprintf(stderr, "[FM-Scope] failed to write dump to %s\n",
                     dir.c_str());
    }
    fm::obs::end_capture();
  }
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // The listener list owns the pointer.
  ::testing::UnitTest::GetInstance()->listeners().Append(new ObsDumpListener);
  return RUN_ALL_TESTS();
}
