// The FM-San named scenario library.
//
// Each factory returns a complete, self-contained ScenarioSpec — cluster
// shape, FM config, base fault rates, soak schedule, chaos script — for
// one validation story. Tests (tests/san/) and the nightly chaos CI job
// run the same specs; the only per-run variance is the effective seed
// (FM_SAN_SEED overrides the built-in default, and the seed in use is
// recorded so any failure replays).
//
// Backend asymmetries are resolved here, once:
//   * a chaos kill is raise(SIGKILL) on process backends and a silent
//     return on thread backends,
//   * the end-of-run barrier is skipped on thread backends after a kill
//     (shm's barrier waits for ALL ranks, dead ones included),
//   * kill scenarios keep the per-peer in-flight window small so survivor
//     retransmissions into a dead thread's ring can never fill it.
#pragma once

#include <csignal>
#include <string>

#include "fm/config.h"
#include "hw/fault.h"
#include "san/alltoall.h"
#include "san/chaos.h"
#include "san/seed.h"
#include "support/backends.h"

namespace fm::testing::scenarios {

template <class B>
struct ScenarioSpec {
  std::string name;
  std::size_t nodes = 4;
  FmConfig cfg;
  hw::FaultParams faults;  ///< Base rates at cluster construction.
  san::SoakParams<typename B::Cluster> soak;
};

/// Builds the cluster from the spec and runs the soak.
template <class B>
san::SoakOutcome run_scenario(const ScenarioSpec<B>& spec) {
  auto cluster = B::make(spec.nodes, spec.cfg, spec.faults);
  return san::run_all_to_all(*cluster, spec.soak);
}

/// Plain all-to-all: every ordered pair exercised, nothing injected.
template <class B>
ScenarioSpec<B> baseline(std::uint64_t seed = 0x5a10ull) {
  ScenarioSpec<B> s;
  s.name = "baseline-alltoall";
  s.nodes = 4;
  s.cfg.reliability = true;
  s.soak.rounds = 9;  // 3 full shift sweeps over the ordered pairs
  s.soak.msgs_per_round = 3;
  s.soak.payload_bytes = 64;
  s.soak.seed = san::effective_seed(seed);
  return s;
}

/// Incast rounds: N-1 ranks target one receiver with fragmented payloads
/// through a tiny reassembly pool, exercising return-to-sender admission.
template <class B>
ScenarioSpec<B> incast(std::uint64_t seed = 0x10ca57ull) {
  ScenarioSpec<B> s;
  s.name = "incast-admission";
  s.nodes = 4;
  s.cfg.reliability = true;
  s.cfg.flow_control = true;
  s.cfg.reassembly_slots = 1;  // concurrent senders MUST collide
  s.cfg.reject_retry_delay = 1;
  // Window smaller than the fragment count: every sender stalls mid-message
  // waiting for acks, so fragments from the N-1 incast senders interleave at
  // the target instead of arriving as contiguous per-ring batches — without
  // this the single reassembly slot is freed between messages and the
  // return-to-sender path never fires.
  s.cfg.pending_window = 2;
  s.soak.rounds = 9;
  s.soak.incast_every = 3;
  s.soak.msgs_per_round = 3;
  s.soak.payload_bytes = 512;  // several frames: reassembly under pressure
  s.soak.seed = san::effective_seed(seed);
  return s;
}

/// SIGKILL of a random rank mid-collective: survivors must declare it
/// dead within the bounded horizon and stay conserved.
template <class B>
ScenarioSpec<B> kill_rank(std::uint64_t seed = 0x4111ull) {
  ScenarioSpec<B> s;
  s.name = "kill-rank";
  s.nodes = 3;
  s.cfg.reliability = true;
  s.cfg.crc_frames = true;
  s.cfg.retransmit_timeout_ns = 1'000'000;  // 1 ms
  s.cfg.max_retries = 5;                    // dead after ~63 ms of silence
  // Window smaller than the per-round burst, for two reasons: survivor
  // retransmissions into the dead rank's ring stay far below the ring
  // capacity on the thread backend, and a survivor's first post-kill burst
  // deterministically wedges mid-flight — the unacked frames to the victim
  // pin the window, the burst's last message blocks in the send spin, and
  // the dead-peer declaration fails it with kPeerDead. That mid-flight
  // failure is what messages_abandoned accounts (a message that was fully
  // injected before the death vanishes without sender-side accounting, so
  // a purely timing-lucky run would otherwise report abandoned == 0).
  s.cfg.pending_window = 2;
  s.soak.rounds = 8;  // >= nodes + 2: every survivor meets the victim again
  s.soak.msgs_per_round = 3;
  s.soak.payload_bytes = 48;
  const std::uint64_t eff = san::effective_seed(seed);
  s.soak.seed = eff;
  s.soak.chaos = san::make_kill_scenario(s.nodes, s.soak.rounds, eff);
  s.soak.end_barrier = B::kProcessRanks;  // shm barrier would wait on the dead
  if (B::kProcessRanks)
    s.soak.on_kill = [](typename B::Endpoint&) { raise(SIGKILL); };
  return s;
}

/// One rank stalls between extract() calls for most of the schedule: the
/// per-link attribution must isolate it, and nothing may be lost.
template <class B>
ScenarioSpec<B> slow_receiver(std::uint64_t seed = 0x510e7ull) {
  ScenarioSpec<B> s;
  s.name = "slow-receiver";
  // 5 ranks, not fewer: the victim taints its in- AND outbound links (8 of
  // 20); the 12 healthy links keep the median RTT honest so the outlier
  // threshold still has teeth.
  s.nodes = 5;
  s.cfg.reliability = true;
  s.cfg.retransmit_timeout_ns = 2'000'000;  // stalls are not deaths
  s.cfg.max_retries = 30;
  s.soak.rounds = 10;
  s.soak.msgs_per_round = 2;
  s.soak.payload_bytes = 64;
  const std::uint64_t eff = san::effective_seed(seed);
  s.soak.seed = eff;
  s.soak.chaos = san::make_slow_receiver_scenario(s.nodes, s.soak.rounds,
                                                  eff, /*stall_us=*/5000);
  return s;
}

/// Burst-loss packet storm over a window of rounds, calm tail after:
/// exactly-once and conservation must survive the storm.
template <class B>
ScenarioSpec<B> packet_storm(std::uint64_t seed = 0x5704full) {
  ScenarioSpec<B> s;
  s.name = "packet-storm";
  s.nodes = 3;
  s.cfg.reliability = true;
  s.cfg.crc_frames = true;
  s.cfg.retransmit_timeout_ns = 2'000'000;
  s.cfg.max_retries = 30;  // heavy loss must never read as a dead peer
  // Base rates are barely-on so each endpoint owns a (seeded) injector the
  // storm directive can crank and restore.
  s.faults.drop_rate = 0.001;
  hw::FaultParams storm;
  storm.drop_rate = 0.15;
  storm.burst_rate = 0.05;
  storm.burst_len = 4;
  s.soak.rounds = 10;
  s.soak.msgs_per_round = 4;
  s.soak.payload_bytes = 64;
  s.soak.base_faults = s.faults;
  const std::uint64_t eff = san::effective_seed(seed);
  s.soak.seed = eff;
  s.soak.chaos =
      san::make_packet_storm_scenario(s.nodes, s.soak.rounds, eff, storm);
  return s;
}

/// Escalating fault-rate staircase (drop + corrupt), then a calm tail.
template <class B>
ScenarioSpec<B> fault_ramp(std::uint64_t seed = 0x4a3cull) {
  ScenarioSpec<B> s;
  s.name = "fault-ramp";
  s.nodes = 3;
  s.cfg.reliability = true;
  s.cfg.crc_frames = true;
  s.cfg.retransmit_timeout_ns = 2'000'000;
  s.cfg.max_retries = 30;
  s.faults.drop_rate = 0.001;
  hw::FaultParams peak;
  peak.drop_rate = 0.1;
  peak.corrupt_rate = 0.05;
  s.soak.rounds = 12;
  s.soak.msgs_per_round = 3;
  s.soak.payload_bytes = 64;
  s.soak.base_faults = s.faults;
  const std::uint64_t eff = san::effective_seed(seed);
  s.soak.seed = eff;
  s.soak.chaos = san::make_fault_ramp_scenario(s.nodes, s.soak.rounds, eff,
                                               peak, /*steps=*/3);
  return s;
}

}  // namespace fm::testing::scenarios
