// The net backend's basics: the FM three-call surface between real forked
// processes over real UDP sockets, plus the harness machinery the soak
// tests lean on (report() plumbing, child-failure propagation, watchdog).
// Cross-rank assertions work only through the RunReport — ranks share no
// memory here, which is the point of this backend.
#include "net/cluster.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <thread>

#include "metrics/multiproc.h"
#include "support/backends.h"

namespace fm::net {
namespace {

FmConfig net_cfg() { return testing::NetBackend::adapt(FmConfig()); }

TEST(NetEndpoint, Send4DeliversExactlyOnceAcrossProcesses) {
  constexpr int kMsgs = 200;
  Cluster cluster(2, net_cfg());
  // Child-local state: each forked rank sees its own copy-on-write copy.
  std::vector<int> seen(kMsgs, 0);
  int got = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t len) {
        ASSERT_EQ(len, 16u);
        std::uint32_t w[4];
        std::memcpy(w, data, 16);
        EXPECT_EQ(src, 0u);
        EXPECT_EQ(ep.id(), 1u);
        ASSERT_LT(w[0], static_cast<std::uint32_t>(kMsgs));
        EXPECT_EQ(w[1], w[0] * 3 + 1);
        ++seen[w[0]];
        ++got;
      });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (int m = 0; m < kMsgs; ++m) {
        const auto u = static_cast<std::uint32_t>(m);
        ASSERT_TRUE(ok(ep.send4(1, h, u, u * 3 + 1, 0, 0)));
        if ((m & 7) == 7) ep.extract();
      }
    } else {
      ep.extract_until([&] { return got >= kMsgs; });
      for (int m = 0; m < kMsgs; ++m) EXPECT_EQ(seen[m], 1) << "tag " << m;
    }
    ep.drain();
    cluster.barrier();  // neither socket closes while the peer still drains
  });
  EXPECT_FALSE(r.timed_out);
  obs::Conservation k = r.conservation();
  EXPECT_TRUE(k.balanced())
      << "sent=" << k.sent << " delivered=" << k.delivered
      << " abandoned=" << k.abandoned;
  EXPECT_EQ(r.sum_counter("messages_delivered"), kMsgs);
  EXPECT_GE(r.sum_counter("datagrams_tx"), kMsgs);
  EXPECT_EQ(r.sum_counter("stray_datagrams"), 0.0);
}

TEST(NetEndpoint, SegmentedMessageReassembledAcrossProcesses) {
  constexpr std::size_t kLen = 5000;  // ~40 frames at the FM 1.0 frame size
  Cluster cluster(2, net_cfg());
  int got = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId src, const void* data, std::size_t len) {
        EXPECT_EQ(src, 0u);
        ASSERT_EQ(len, kLen);
        const auto* p = static_cast<const std::uint8_t*>(data);
        for (std::size_t i = 0; i < kLen; ++i)
          ASSERT_EQ(p[i], static_cast<std::uint8_t>(i * 7 + 3)) << "byte " << i;
        ++got;
      });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    if (ep.id() == 0) {
      std::vector<std::uint8_t> buf(kLen);
      for (std::size_t i = 0; i < kLen; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 7 + 3);
      ASSERT_TRUE(ok(ep.send(1, h, buf.data(), buf.size())));
    } else {
      ep.extract_until([&] { return got >= 1; });
    }
    ep.drain();
    cluster.barrier();
  });
  EXPECT_TRUE(r.conservation().balanced());
  EXPECT_EQ(r.sum_counter("messages_delivered"), 1.0);
  // Segmentation really happened: at least ceil(kLen / frame_payload) data
  // frames crossed the wire.
  EXPECT_GE(r.sum_counter("frames_sent"),
            static_cast<double>(kLen / kFmFramePayload));
}

TEST(NetEndpoint, PostedRepliesAndReportPlumbing) {
  constexpr std::size_t kPings = 100;
  Cluster cluster(2, net_cfg());
  std::size_t pings = 0, pongs = 0;
  HandlerId hpong = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++pongs; });
  HandlerId hping = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void* data, std::size_t) {
        std::uint32_t w0;
        std::memcpy(&w0, data, 4);
        ++pings;
        ep.post_send4(src, hpong, w0, 0, 0, 0);  // reply from handler context
      });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (std::size_t i = 0; i < kPings; ++i) {
        ASSERT_TRUE(
            ok(ep.send4(1, hping, static_cast<std::uint32_t>(i), 0, 0, 0)));
        ep.extract_until([&] { return pongs >= i + 1; });
      }
      cluster.report("rank0.pongs", static_cast<double>(pongs));
    } else {
      ep.extract_until([&] { return pings >= kPings; });
      cluster.report("rank1.pings", static_cast<double>(pings));
    }
    ep.drain();
    cluster.barrier();
  });
  // report() crossed the process boundary over the control channel.
  ASSERT_EQ(r.metrics.count("rank0.pongs"), 1u);
  ASSERT_EQ(r.metrics.count("rank1.pings"), 1u);
  EXPECT_EQ(r.metrics.at("rank0.pongs"), kPings);
  EXPECT_EQ(r.metrics.at("rank1.pings"), kPings);
  EXPECT_TRUE(r.conservation().balanced());
  EXPECT_EQ(r.sum_counter("messages_delivered"), 2.0 * kPings);
  // And the per-rank samples roll up: the merged total equals the sum of
  // the two node scopes (metrics/multiproc.h is what benches use).
  EXPECT_EQ(metrics::sum_suffix(metrics::merge_rank_samples(r.samples),
                                "messages_delivered"),
            2.0 * kPings);
}

TEST(NetEndpoint, StrayDatagramsAreCountedAndDropped) {
  Cluster cluster(2, net_cfg());
  int got = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    if (ep.id() == 1) {
      // A "port scan": raw datagrams from a socket no rank owns, aimed at
      // rank 0's data port. They must be counted and ignored, not crash the
      // endpoint or reach a handler.
      int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
      ASSERT_GE(fd, 0);
      const char junk[] = "not an FM frame at all";
      const sockaddr_in& dst = cluster.addr(0);
      for (int i = 0; i < 3; ++i)
        ASSERT_GT(::sendto(fd, junk, sizeof junk, 0,
                           reinterpret_cast<const sockaddr*>(&dst),
                           sizeof dst),
                  0);
      ::close(fd);
      ASSERT_TRUE(ok(ep.send4(0, h, 1, 2, 3, 4)));
    } else {
      ep.extract_until(
          [&] { return got >= 1 && ep.stray_datagrams() >= 3; });
      EXPECT_EQ(got, 1);
    }
    ep.drain();
    cluster.barrier();
  });
  EXPECT_EQ(r.sum_counter("stray_datagrams"), 3.0);
  EXPECT_EQ(r.sum_counter("messages_delivered"), 1.0);
  EXPECT_TRUE(r.conservation().balanced());
}

TEST(NetEndpoint, ChildFailureSurfacesInExitStatus) {
  Cluster cluster(2, net_cfg());
  RunReport r = cluster.run([&](Endpoint& ep) {
    if (ep.id() == 1) cluster.mark_child_failed();
    cluster.barrier();
  });
  EXPECT_FALSE(r.all_clean());
  ASSERT_EQ(r.ranks.size(), 2u);
  EXPECT_TRUE(r.ranks[0].clean());
  EXPECT_TRUE(r.ranks[1].exited);
  EXPECT_EQ(r.ranks[1].exit_code, 1);
}

TEST(NetEndpoint, WatchdogKillsHungRank) {
  NetConfig nc;
  nc.run_timeout_ns = 500'000'000ull;  // 0.5 s
  Cluster cluster(2, net_cfg(), nc);
  RunReport r = cluster.run([&](Endpoint& ep) {
    if (ep.id() == 1)
      for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  EXPECT_TRUE(r.timed_out);
  ASSERT_EQ(r.ranks.size(), 2u);
  EXPECT_TRUE(r.ranks[0].clean());
  EXPECT_FALSE(r.ranks[1].exited);
  EXPECT_EQ(r.ranks[1].term_signal, SIGKILL);
}

}  // namespace
}  // namespace fm::net
