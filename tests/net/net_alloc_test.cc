// Heap discipline of the net transport's steady state: after warmup, a
// send4 ping-pong over real UDP sockets — with the full FM-R stack on, as
// this backend mandates — must perform ZERO heap allocations, in every
// transport mode (single-shot sendto, batched sendmmsg/recvmmsg, GSO/GRO,
// busy-poll). The frame is serialized once into the send-window slab and
// handed to the kernel from there (sendto or the staging ring + sendmmsg);
// the receive path processes each datagram in place in the preallocated
// receive buffer or RX slab; timers, dedup, acks, and posted replies all
// run out of pooled or warmed storage.
//
// The measurement runs inside rank 0's forked child (the counters are
// process-global, which is exactly right: each rank is a process), and the
// result crosses back to the asserting parent via Cluster::report().
//
// The global operator new/delete overrides are why this lives in its own
// test binary: the counters must see every allocation in the process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/cluster.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

// Every overridden operator new funnels through these two — including the
// nothrow and aligned variants, so an allocation on any path bumps the
// counter and cannot slip past the zero-allocation assertions. They return
// nullptr on failure; the throwing operators turn that into bad_alloc.
void* counted_alloc(std::size_t size) noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  return std::aligned_alloc(align, (size + align - 1) / align * align);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace fm::net {
namespace {

// One steady-state measurement under a given transport mode. FM-Burst adds
// batched TX/RX, GSO/GRO, and busy-poll paths to the steady state; each
// mode must hold the same zero-allocation bar as the single-shot path (the
// mmsghdr/iovec slabs, staging ring, and RX slab are all preallocated).
void run_pingpong_alloc_check(NetConfig nc) {
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  // Lockstep ping-pong over loopback never legitimately loses a datagram;
  // park the retransmit timers far away so the measured window contains
  // only the true steady-state cycle (a fired timer would be recovery, not
  // steady state — and its scratch is pooled anyway).
  cfg.retransmit_timeout_ns = 10'000'000'000ull;  // 10 s
  Cluster cluster(2, cfg, nc);
  std::size_t pings = 0, pongs = 0;  // child-local
  HandlerId hpong = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++pongs; });
  HandlerId hping = cluster.register_handler(
      [&](Endpoint& ep, NodeId src, const void*, std::size_t) {
        ++pings;
        ep.post_send4(src, hpong, 1, 2, 3, 4);
      });
  constexpr std::size_t kWarmup = 200;
  constexpr std::size_t kMeasured = 2000;
  // Pipelined bursts: 8 sends in flight before waiting for the replies.
  // A lone send4 with an empty window takes the batched mode's latency
  // bypass (single-shot, no staging); keeping several frames in flight
  // drives the staging ring + sendmmsg/GSO flush machinery, so the
  // measured window covers BOTH batched-mode paths.
  constexpr std::size_t kBurst = 8;
  RunReport r = cluster.run([&](Endpoint& ep) {
    if (ep.id() == 0) {
      for (std::size_t i = 0; i < kWarmup; i += kBurst) {
        for (std::size_t j = 0; j < kBurst; ++j)
          (void)ep.send4(1, hping, 1, 2, 3, 4);
        ep.extract_until([&] { return pongs >= i + kBurst; });
      }
      cluster.barrier();
      g_allocs.store(0);
      g_counting.store(true);
      for (std::size_t i = 0; i < kMeasured; i += kBurst) {
        for (std::size_t j = 0; j < kBurst; ++j)
          (void)ep.send4(1, hping, 1, 2, 3, 4);
        ep.extract_until([&] { return pongs >= kWarmup + i + kBurst; });
      }
      g_counting.store(false);
      const std::uint64_t measured = g_allocs.load();
      cluster.barrier();
      ep.drain();
      EXPECT_EQ(measured, 0u)
          << measured << " heap allocations in " << kMeasured
          << " steady-state send4 round trips over UDP (send + extract with "
             "FM-R on must be allocation-free)";
      cluster.report("rank0.allocs", static_cast<double>(measured));
      if (::testing::Test::HasFailure()) cluster.mark_child_failed();
    } else {
      ep.extract_until([&] { return pings >= kWarmup; });
      cluster.barrier();
      ep.extract_until([&] { return pings >= kWarmup + kMeasured; });
      cluster.barrier();
      ep.drain();
    }
  });
  // The forked rank did the measuring; the exit status carries its verdict
  // and the reported metric carries the number.
  EXPECT_TRUE(r.all_clean());
  ASSERT_EQ(r.metrics.count("rank0.allocs"), 1u);
  EXPECT_EQ(r.metrics.at("rank0.allocs"), 0.0);
}

TEST(NetAllocFree, SingleShotSteadyStateWithReliabilityOn) {
  NetConfig nc;
  nc.tx_batch = 0;  // pre-Burst path: one sendto/recvfrom per frame
  run_pingpong_alloc_check(nc);
}

TEST(NetAllocFree, BatchedSteadyState) {
  NetConfig nc;
  nc.tx_batch = 1;
  run_pingpong_alloc_check(nc);
}

TEST(NetAllocFree, BatchedGsoSteadyState) {
  NetConfig nc;
  nc.tx_batch = 1;
  nc.gso = 1;  // silently falls back where the kernel lacks UDP_SEGMENT —
               // the fallback path must be allocation-free too
  run_pingpong_alloc_check(nc);
}

TEST(NetAllocFree, BatchedBusyPollSteadyState) {
  NetConfig nc;
  nc.tx_batch = 1;
  nc.busy_poll_spin_us = 50;
  run_pingpong_alloc_check(nc);
}

}  // namespace
}  // namespace fm::net
