// FM-Burst coverage: the batched socket paths (sendmmsg/recvmmsg), their
// partial-outcome contract under backpressure, the GSO capability probe's
// graceful fallback, the shared SO_RXQ_OVFL delta accounting, and the
// batched endpoint keeping FM's exactly-once semantics when the kernel
// takes only part of a burst.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/socket.h"
#include "support/backends.h"

namespace fm::net {
namespace {

// ---------------------------------------------------------------------------
// RxqDropMeter: the one place cumulative SO_RXQ_OVFL readings become a
// monotone total (recv_one and recv_batch both feed it).
// ---------------------------------------------------------------------------

TEST(RxqDropMeter, FirstReadingIsTheAbsoluteCount) {
  // The kernel counter starts at zero with the socket, so the first
  // observation IS the total so far — no "baseline" special case.
  RxqDropMeter m;
  EXPECT_EQ(m.total(), 0u);
  m.feed(7);
  EXPECT_EQ(m.total(), 7u);
}

TEST(RxqDropMeter, RepeatedAndGrowingReadingsAccumulateDeltas) {
  RxqDropMeter m;
  m.feed(3);
  m.feed(3);  // no new drops attached to this datagram
  EXPECT_EQ(m.total(), 3u);
  m.feed(10);
  EXPECT_EQ(m.total(), 10u);
  m.feed(11);
  EXPECT_EQ(m.total(), 11u);
}

TEST(RxqDropMeter, SurvivesU32Wraparound) {
  RxqDropMeter m;
  m.feed(0xFFFFFFF0u);
  EXPECT_EQ(m.total(), 0xFFFFFFF0ull);
  // The kernel's u32 wrapped: 0xFFFFFFF0 -> 5 is 21 more drops, not a
  // negative delta.
  m.feed(5);
  EXPECT_EQ(m.total(), 0xFFFFFFF0ull + 21u);
}

// ---------------------------------------------------------------------------
// Socket-level batch paths (two raw sockets, no cluster, one process).
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> pattern_frame(std::uint8_t tag, std::size_t len) {
  std::vector<std::uint8_t> f(len);
  f[0] = tag;
  for (std::size_t i = 1; i < len; ++i)
    f[i] = static_cast<std::uint8_t>(tag * 31 + i);
  return f;
}

/// Drains `rx` until `want` datagrams arrived (or a timeout), returning
/// tag -> payload for each (GRO trains split by gro_seg_len).
std::map<std::uint8_t, std::vector<std::uint8_t>> drain_frames(
    UdpSocket& rx, std::size_t want) {
  std::map<std::uint8_t, std::vector<std::uint8_t>> got;
  std::vector<std::uint8_t> slab(UdpSocket::kMaxBatch * 65536);
  UdpSocket::RxMsg msgs[UdpSocket::kMaxBatch];
  std::size_t frames = 0;
  for (int spins = 0; frames < want && spins < 200; ++spins) {
    const std::size_t m = rx.recv_batch(slab.data(), 65536,
                                        UdpSocket::kMaxBatch, msgs);
    if (m == 0) {
      (void)rx.wait_readable(50);
      continue;
    }
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint8_t* base = slab.data() + i * 65536;
      const std::size_t seg = msgs[i].gro_seg_len ? msgs[i].gro_seg_len
                                                  : msgs[i].len;
      for (std::size_t off = 0; off < msgs[i].len; off += seg) {
        const std::size_t flen = std::min<std::size_t>(seg, msgs[i].len - off);
        got[base[off]] = std::vector<std::uint8_t>(base + off,
                                                   base + off + flen);
        ++frames;
      }
    }
  }
  return got;
}

TEST(UdpSocketBatch, SendBatchRecvBatchRoundtrip) {
  UdpSocket tx_sock, rx_sock;
  const sockaddr_in dst = UdpSocket::loopback_addr(rx_sock.port());
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<UdpSocket::TxFrame> tx;
  for (std::uint8_t i = 0; i < 10; ++i) {
    frames.push_back(pattern_frame(i, 32 + i * 7u));
    tx.push_back({frames.back().data(),
                  static_cast<std::uint32_t>(frames.back().size()), &dst});
  }
  const UdpSocket::BatchResult r = tx_sock.send_batch(tx.data(), tx.size());
  EXPECT_EQ(r.consumed, 10u);
  EXPECT_EQ(r.sent, 10u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_FALSE(r.would_block);
#ifdef __linux__
  EXPECT_EQ(r.syscalls, 1u) << "10 frames should cost one sendmmsg";
#endif
  const auto got = drain_frames(rx_sock, 10);
  ASSERT_EQ(got.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(got.at(i), frames[i]);
}

TEST(UdpSocketBatch, ShortCountMidBurstLosesNothingSendsNothingTwice) {
  UdpSocket tx_sock, rx_sock;
  // Every 4th send attempt reports transient backpressure once — forcing
  // sendmmsg short counts mid-burst, the exact partial outcome the
  // BatchResult ownership contract is about.
  tx_sock.set_debug_wouldblock_every(4);
  const sockaddr_in dst = UdpSocket::loopback_addr(rx_sock.port());
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<UdpSocket::TxFrame> tx;
  for (std::uint8_t i = 0; i < 10; ++i) {
    frames.push_back(pattern_frame(i, 48));
    tx.push_back({frames.back().data(),
                  static_cast<std::uint32_t>(frames.back().size()), &dst});
  }
  // Caller-side retry loop: frames [consumed, n) stayed ours; resend
  // exactly those, never the consumed prefix.
  std::size_t offset = 0;
  std::size_t blocks = 0;
  for (int rounds = 0; offset < tx.size() && rounds < 100; ++rounds) {
    const UdpSocket::BatchResult r =
        tx_sock.send_batch(tx.data() + offset, tx.size() - offset);
    EXPECT_EQ(r.consumed, r.sent);  // no hard errors on loopback
    offset += r.consumed;
    if (r.would_block) {
      ++blocks;
      EXPECT_LT(offset, tx.size());
    }
  }
  EXPECT_EQ(offset, tx.size());
  EXPECT_GT(blocks, 0u) << "the hook should have forced short counts";
  // Exactly one copy of every frame arrives: nothing lost to the short
  // counts, nothing double-sent by the retries.
  const auto got = drain_frames(rx_sock, 10);
  ASSERT_EQ(got.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(got.at(i), frames[i]);
  EXPECT_FALSE(rx_sock.wait_readable(50)) << "a duplicate datagram arrived";
}

TEST(UdpSocketBatch, ForcedGsoUnsupportedDisablesProbeAndGro) {
  // The capability-probe test for the graceful fallback path: a socket
  // that "failed" the UDP_SEGMENT probe must refuse GRO too, and the
  // endpoint layer (covered below) must fall back to plain sendmmsg.
  UdpSocket s;
  s.force_gso_unsupported();
  EXPECT_FALSE(s.gso_supported());
  EXPECT_FALSE(s.enable_gro());
}

TEST(UdpSocketBatch, GsoTrainArrivesIntactWhereSupported) {
  UdpSocket tx_sock, rx_sock;
  if (!tx_sock.gso_supported())
    GTEST_SKIP() << "kernel lacks UDP_SEGMENT; fallback path covered above";
  ASSERT_TRUE(rx_sock.enable_gro());
  const sockaddr_in dst = UdpSocket::loopback_addr(rx_sock.port());
  // 6 equal-size frames as ONE datagram train (the frames are separate
  // buffers; the kernel linearizes the iovec and segments every 96 bytes).
  std::vector<std::vector<std::uint8_t>> frames;
  iovec iov[6];
  for (std::uint8_t i = 0; i < 6; ++i) {
    frames.push_back(pattern_frame(i, 96));
    iov[i] = {frames.back().data(), frames.back().size()};
  }
  ASSERT_EQ(tx_sock.send_gso(dst, iov, 6, 96), UdpSocket::SendResult::kOk);
  // The receiver sees either one GRO-coalesced buffer (gro_seg_len 96) or
  // six plain datagrams, depending on how the kernel routed the loopback
  // train — drain_frames handles both shapes, and content must match
  // either way.
  const auto got = drain_frames(rx_sock, 6);
  ASSERT_EQ(got.size(), 6u);
  for (std::uint8_t i = 0; i < 6; ++i) EXPECT_EQ(got.at(i), frames[i]);
}

TEST(UdpSocketBatch, GsoFailAfterHookFailsLaterTrainsOnly) {
  UdpSocket tx_sock, rx_sock;
  if (!tx_sock.gso_supported())
    GTEST_SKIP() << "kernel lacks UDP_SEGMENT; fallback path covered above";
  tx_sock.set_debug_gso_fail_after(1);
  const sockaddr_in dst = UdpSocket::loopback_addr(rx_sock.port());
  std::vector<std::vector<std::uint8_t>> frames;
  iovec iov[2];
  for (std::uint8_t i = 0; i < 2; ++i) {
    frames.push_back(pattern_frame(i, 96));
    iov[i] = {frames.back().data(), frames.back().size()};
  }
  // The probe passed and the first live train goes through...
  EXPECT_EQ(tx_sock.send_gso(dst, iov, 2, 96), UdpSocket::SendResult::kOk);
  // ...then the "kernel" starts refusing trains for good, not transiently.
  EXPECT_EQ(tx_sock.send_gso(dst, iov, 2, 96), UdpSocket::SendResult::kError);
  EXPECT_EQ(tx_sock.send_gso(dst, iov, 2, 96), UdpSocket::SendResult::kError);
}

// ---------------------------------------------------------------------------
// Endpoint-level: the batched steady state under forced partial bursts.
// ---------------------------------------------------------------------------

TEST(NetBatch, ForcedBackpressureKeepsExactlyOnceOverBatchedPath) {
  constexpr int kMsgs = 300;
  FmConfig cfg = testing::NetBackend::adapt(FmConfig());
  NetConfig nc;
  nc.tx_batch = 1;
  // Every 5th datagram send attempt blocks once: every flush tears
  // mid-burst, exercising the staged-tail retry path continuously.
  nc.debug_wouldblock_every = 5;
  Cluster cluster(2, cfg, nc);
  std::vector<int> seen(kMsgs, 0);
  int got = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void* data, std::size_t len) {
        ASSERT_EQ(len, 16u);
        std::uint32_t w[4];
        std::memcpy(w, data, 16);
        ASSERT_LT(w[0], static_cast<std::uint32_t>(kMsgs));
        EXPECT_EQ(w[1], w[0] ^ 0xA5A5A5A5u);
        ++seen[w[0]];
        ++got;
      });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    EXPECT_TRUE(ep.batching());
    if (ep.id() == 0) {
      for (int m = 0; m < kMsgs; ++m) {
        const auto u = static_cast<std::uint32_t>(m);
        ASSERT_TRUE(ok(ep.send4(1, h, u, u ^ 0xA5A5A5A5u, 0, 0)));
        if ((m & 7) == 7) ep.extract();
      }
    } else {
      ep.extract_until([&] { return got >= kMsgs; });
      for (int m = 0; m < kMsgs; ++m) EXPECT_EQ(seen[m], 1) << "tag " << m;
    }
    ep.drain();
    if (::testing::Test::HasFailure()) cluster.mark_child_failed();
    fm::barrier_serviced(cluster, ep);
  });
  EXPECT_FALSE(r.timed_out);
  for (const auto& rank : r.ranks) EXPECT_TRUE(rank.clean());
  obs::Conservation k = r.conservation();
  EXPECT_TRUE(k.balanced())
      << "sent=" << k.sent << " delivered=" << k.delivered
      << " abandoned=" << k.abandoned;
  EXPECT_EQ(r.sum_counter("peers_dead"), 0.0);
  // The run really exercised the partial-burst machinery.
  EXPECT_GT(r.sum_counter("batch_tx_frames"), 0.0);
  EXPECT_GT(r.sum_counter("ewouldblock_stalls"), 0.0);
}

TEST(NetBatch, ModeMatrixDeliversAndCountsCoherently) {
  // One shape of traffic through the four transport modes; each mode must
  // deliver identically and light up exactly its own counters.
  struct Mode {
    const char* name;
    int tx_batch;
    int gso;
    long busy_poll_us;
    bool force_no_gso;
  };
  const Mode kModes[] = {
      {"baseline", 0, 0, 0, false},
      {"batch", 1, 0, 0, false},
      {"batch_gso", 1, 1, 0, false},
      {"batch_gso_fallback", 1, 1, 0, true},
      {"batch_busypoll", 1, 0, 200, false},
  };
  for (const Mode& mode : kModes) {
    SCOPED_TRACE(mode.name);
    constexpr int kMsgs = 200;
    FmConfig cfg = testing::NetBackend::adapt(FmConfig());
    NetConfig nc;
    nc.tx_batch = mode.tx_batch;
    nc.gso = mode.gso;
    nc.busy_poll_spin_us = mode.busy_poll_us;
    nc.debug_force_no_gso = mode.force_no_gso;
    Cluster cluster(2, cfg, nc);
    int got = 0;
    HandlerId h = cluster.register_handler(
        [&](Endpoint&, NodeId, const void*, std::size_t len) {
          EXPECT_EQ(len, 64u);
          ++got;
        });
    RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
      EXPECT_EQ(ep.batching(), mode.tx_batch != 0);
      if (mode.force_no_gso) EXPECT_FALSE(ep.gso_active());
      std::uint8_t buf[64] = {1, 2, 3};
      if (ep.id() == 0) {
        for (int m = 0; m < kMsgs; ++m) {
          ASSERT_TRUE(ok(ep.send(1, h, buf, sizeof buf)));
          if ((m & 15) == 15) ep.extract();
        }
      } else {
        ep.extract_until([&] { return got >= kMsgs; });
      }
      ep.drain();
      if (::testing::Test::HasFailure()) cluster.mark_child_failed();
      fm::barrier_serviced(cluster, ep);
    });
    EXPECT_FALSE(r.timed_out);
    for (const auto& rank : r.ranks) EXPECT_TRUE(rank.clean());
    EXPECT_TRUE(r.conservation().balanced());
    EXPECT_EQ(r.sum_counter("messages_delivered"),
              static_cast<double>(kMsgs));
    if (mode.tx_batch == 0) {
      EXPECT_EQ(r.sum_counter("batch_tx_frames"), 0.0);
      EXPECT_EQ(r.sum_counter("batch_syscalls"), 0.0);
    } else {
      EXPECT_GT(r.sum_counter("batch_tx_frames"), 0.0);
      EXPECT_GT(r.sum_counter("batch_syscalls"), 0.0);
    }
    if (mode.force_no_gso || mode.gso == 0)
      EXPECT_EQ(r.sum_counter("gso_segments"), 0.0);
  }
}

TEST(NetBatch, GsoMidRunFailureFallsBackWithoutLosingATrain) {
  // A kernel that accepts the UDP_SEGMENT probe but EIO/EINVALs a live
  // train mid-run: the endpoint must keep the refused train staged, drop
  // to single-shot for the rest of the run, and deliver every message
  // exactly once WITHOUT burning a send error (the old code discarded the
  // whole train and made FM-R re-earn up to kMaxBatch frames).
  {
    UdpSocket probe;
    if (!probe.gso_supported())
      GTEST_SKIP() << "kernel lacks UDP_SEGMENT; probe-fallback covered above";
  }
  constexpr int kMsgs = 300;
  FmConfig cfg = testing::NetBackend::adapt(FmConfig());
  NetConfig nc;
  nc.tx_batch = 1;
  nc.gso = 1;
  // One train is allowed out (proving GSO really engaged), then every
  // later train fails hard.
  nc.debug_gso_fail_after = 1;
  Cluster cluster(2, cfg, nc);
  std::vector<int> seen(kMsgs, 0);
  int got = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void* data, std::size_t len) {
        ASSERT_EQ(len, 16u);
        std::uint32_t w[4];
        std::memcpy(w, data, 16);
        ASSERT_LT(w[0], static_cast<std::uint32_t>(kMsgs));
        ++seen[w[0]];
        ++got;
      });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    if (ep.id() == 0) {
      EXPECT_TRUE(ep.gso_active()) << "probe passed; GSO should start on";
      for (int m = 0; m < kMsgs; ++m) {
        const auto u = static_cast<std::uint32_t>(m);
        ASSERT_TRUE(ok(ep.send4(1, h, u, u, 0, 0)));
        if ((m & 7) == 7) ep.extract();
      }
      ep.drain();
      EXPECT_FALSE(ep.gso_active())
          << "the forced mid-run failure should have disabled GSO";
      EXPECT_GT(ep.gso_fallbacks(), 0u);
    } else {
      ep.extract_until([&] { return got >= kMsgs; });
      for (int m = 0; m < kMsgs; ++m) EXPECT_EQ(seen[m], 1) << "tag " << m;
      ep.drain();
    }
    if (::testing::Test::HasFailure()) cluster.mark_child_failed();
    fm::barrier_serviced(cluster, ep);
  });
  EXPECT_FALSE(r.timed_out);
  for (const auto& rank : r.ranks) EXPECT_TRUE(rank.clean());
  EXPECT_TRUE(r.conservation().balanced());
  EXPECT_EQ(r.sum_counter("messages_delivered"), static_cast<double>(kMsgs));
  // The heart of the fix: the refused train was resent from staging, not
  // discarded — so nothing was "lost on the wire" and no retransmission
  // was needed to repair a local decision.
  EXPECT_EQ(r.sum_counter("send_errors"), 0.0);
  EXPECT_GT(r.sum_counter("gso_fallbacks"), 0.0);
  EXPECT_GT(r.sum_counter("gso_segments"), 0.0)
      << "exactly one train should have gone out before the failure";
}

TEST(NetBatch, BusyPollSpinCatchesALateArrival) {
  // Deterministic busy-poll coverage: the receiver goes idle BEFORE the
  // sender fires, with a spin budget (10ms) far larger than the message's
  // flight time — the arrival must land inside the spin, not in poll().
  FmConfig cfg = testing::NetBackend::adapt(FmConfig());
  NetConfig nc;
  nc.tx_batch = 1;
  nc.busy_poll_spin_us = 10'000;
  Cluster cluster(2, cfg, nc);
  int got = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    if (ep.id() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ASSERT_TRUE(ok(ep.send4(1, h, 1, 2, 3, 4)));
    } else {
      ep.extract_until([&] { return got >= 1; });
    }
    ep.drain();
    if (::testing::Test::HasFailure()) cluster.mark_child_failed();
    fm::barrier_serviced(cluster, ep);
  });
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.conservation().balanced());
  EXPECT_GT(r.sum_counter("busy_poll_hits"), 0.0)
      << "the idle receiver should have caught the datagram mid-spin";
}

}  // namespace
}  // namespace fm::net
