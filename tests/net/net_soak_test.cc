// The acceptance soaks for the net backend: the FM-R stack surviving a
// substrate that genuinely loses datagrams (small socket buffers make the
// kernel drop under load — no fault injector in the loop), and degrading
// correctly when a rank is SIGKILLed mid-run (a real process death, which
// only a multi-process backend can stage).
//
// Ranks are forked processes: all completion signalling runs over FM
// itself (done-marker messages) and the harness barrier — no shared
// atomics, unlike the shm soaks.
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "net/cluster.h"
#include "support/backends.h"

namespace fm::net {
namespace {

TEST(NetSoak, KernelDropSoakExactlyOnce) {
  // Many-to-many random traffic through receive buffers far too small for
  // the offered load: the kernel drops datagrams on the floor (SO_RXQ_OVFL
  // counts them), and the retransmission timers must recover every one.
  const std::size_t kNodes = 4;
  const int kMsgsPerNode = 1000;
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 2'000'000;  // 2 ms
  cfg.max_retries = 30;  // heavy loss must never read as a dead peer
  // The reassembly TTL must exceed the full backed-off retransmission
  // horizon (~3.3 s at 2 ms x 30 retries), or a slot can expire while a
  // lost fragment is still legitimately retrying and the message is lost.
  cfg.reassembly_ttl_ns = 20'000'000'000ull;
  NetConfig nc;
  nc.so_rcvbuf = 2048;  // the kernel clamps to its floor — still tiny
  nc.run_timeout_ns = 90'000'000'000ull;
  Cluster cluster(kNodes, cfg, nc);
  // Child-local (each rank's COW copy): exactly-once bookkeeping.
  std::map<std::pair<NodeId, std::uint32_t>, int> delivered;
  std::size_t my_delivered = 0;
  int done_from = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId src, const void* data, std::size_t len) {
        ASSERT_GE(len, 8u);
        std::uint32_t tag, fill;
        std::memcpy(&tag, data, 4);
        std::memcpy(&fill, static_cast<const std::uint8_t*>(data) + 4, 4);
        const auto* p = static_cast<const std::uint8_t*>(data);
        for (std::size_t i = 8; i < len; ++i)
          ASSERT_EQ(p[i], static_cast<std::uint8_t>(fill));
        ++delivered[{src, tag}];
        ++my_delivered;
      });
  HandlerId hdone = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++done_from; });
  RunReport r = testing::NetBackend::run(cluster, [&](Endpoint& ep) {
    Xoshiro256 rng(ep.id() * 31 + 7);
    std::vector<std::uint8_t> buf(2048);
    for (int m = 0; m < kMsgsPerNode; ++m) {
      NodeId dest;
      do {
        dest = static_cast<NodeId>(rng.below(kNodes));
      } while (dest == ep.id());
      // Mostly single-frame, some segmented.
      std::size_t len =
          8 + (rng.chance(0.2) ? rng.below(1200) : rng.below(100));
      std::uint32_t tag = static_cast<std::uint32_t>(m);
      std::uint32_t fill = static_cast<std::uint32_t>(rng());
      std::memcpy(buf.data(), &tag, 4);
      std::memcpy(buf.data() + 4, &fill, 4);
      for (std::size_t i = 8; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(fill);
      ASSERT_TRUE(ok(ep.send(dest, h, buf.data(), len)));
      if ((m & 3) == 3) ep.extract();
    }
    ep.drain();
    // All our data is acked (= delivered at its receivers); tell everyone.
    for (NodeId peer = 0; peer < kNodes; ++peer)
      if (peer != ep.id()) ASSERT_TRUE(ok(ep.send4(peer, hdone, 0, 0, 0, 0)));
    // Stay responsive until every rank has drained: their retransmissions
    // still need our acks (drain() inside the predicate flushes what we
    // owe), and the done markers arrive over FM like any other message.
    ep.extract_until([&] {
      ep.drain();
      return done_from >= static_cast<int>(kNodes) - 1;
    });
    // Exactly-once, intact, at this rank.
    for (const auto& [key, count] : delivered)
      EXPECT_EQ(count, 1) << "src " << key.first << " tag " << key.second;
    ep.drain();
    cluster.report("rank" + std::to_string(ep.id()) + ".delivered",
                   static_cast<double>(my_delivered));
    // Stay responsive until every window in the cluster is empty (a peer's
    // retransmission of a kernel-dropped final ack must find us extracting,
    // not parked), and close no socket while a peer could still retry.
    barrier_serviced(cluster, ep);
  });
  EXPECT_FALSE(r.timed_out);
  // Global conservation from the merged per-rank counters: every message
  // counted sent was delivered exactly somewhere, none abandoned.
  obs::Conservation k = r.conservation();
  EXPECT_TRUE(k.balanced())
      << "messages lost without accounting: sent=" << k.sent
      << " delivered=" << k.delivered << " abandoned=" << k.abandoned;
  EXPECT_EQ(r.sum_counter("peers_dead"), 0.0);
  const double kTotal = kNodes * static_cast<double>(kMsgsPerNode) +
                        kNodes * (kNodes - 1.0);  // data + done markers
  EXPECT_EQ(r.sum_counter("messages_delivered"), kTotal);
  // The per-rank report() metrics count data deliveries only (the done
  // markers go to a different handler).
  double reported = 0;
  for (const auto& [key, value] : r.metrics) reported += value;
  EXPECT_EQ(reported, kNodes * static_cast<double>(kMsgsPerNode));
  // The run was genuinely lossy and the timers genuinely recovered it.
  EXPECT_GT(r.sum_counter("retransmit_timeouts"), 0.0);
  EXPECT_GT(r.sum_counter("duplicates_suppressed"), 0.0);
#ifdef SO_RXQ_OVFL
  EXPECT_GT(r.sum_counter("kernel_drops"), 0.0)
      << "the tiny receive buffers should have forced real kernel drops";
#endif
}

TEST(NetSoak, SigkilledRankIsDeclaredDeadBySurvivors) {
  const std::size_t kNodes = 3;
  const NodeId kVictim = 2;
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 1'000'000;  // 1 ms
  cfg.max_retries = 5;                    // dead after ~60 ms of silence
  Cluster cluster(kNodes, cfg);
  int got = 0;
  HandlerId h = cluster.register_handler(
      [&](Endpoint&, NodeId, const void*, std::size_t) { ++got; });
  RunReport r = cluster.run([&](Endpoint& ep) {
    if (ep.id() == kVictim) {
      raise(SIGKILL);  // an actual process death, mid-protocol
      return;          // unreachable
    }
    const NodeId buddy = ep.id() == 0 ? 1 : 0;
    // Hammer the dead rank until FM-R gives up on it. The send window fills
    // and blocks; the blocked sender keeps servicing the network until the
    // retry budget is exhausted and the peer is declared dead.
    std::uint32_t m = 0;
    for (;;) {
      Status s = ep.send4(kVictim, h, m++, 0, 0, 0);
      if (s == Status::kPeerDead) break;
      ASSERT_TRUE(ok(s));
      ep.extract();
    }
    EXPECT_TRUE(ep.peer_dead(kVictim));
    // Fail-fast semantics: once dead, sends error immediately instead of
    // hanging on a window that will never drain.
    EXPECT_EQ(ep.send4(kVictim, h, 0, 0, 0, 0), Status::kPeerDead);
    EXPECT_GT(ep.stats().messages_abandoned, 0u);
    // The surviving pair still communicates normally.
    ASSERT_TRUE(ok(ep.send4(buddy, h, 7, 0, 0, 0)));
    ep.extract_until([&] {
      ep.drain();
      return got >= 1;
    });
    ep.drain();
    // Parent releases it for the survivors alone; stay responsive in case
    // the buddy's last ack needs another round trip.
    barrier_serviced(cluster, ep);
    if (::testing::Test::HasFailure()) cluster.mark_child_failed();
  });
  ASSERT_EQ(r.ranks.size(), kNodes);
  EXPECT_TRUE(r.ranks[0].clean());
  EXPECT_TRUE(r.ranks[1].clean());
  EXPECT_TRUE(!r.ranks[kVictim].exited &&
              r.ranks[kVictim].term_signal == SIGKILL)
      << "victim should have died by SIGKILL, got exit=" << r.ranks[kVictim].exited
      << " code=" << r.ranks[kVictim].exit_code
      << " sig=" << r.ranks[kVictim].term_signal;
  EXPECT_FALSE(r.timed_out);
  // Both survivors independently declared the victim dead, and the traffic
  // parked for it was abandoned with accounting (nothing delivered out of
  // thin air, even though the victim's own counters died with it).
  EXPECT_EQ(r.sum_counter("peers_dead"), 2.0);
  EXPECT_GT(r.sum_counter("messages_abandoned"), 0.0);
  EXPECT_TRUE(r.conservation().no_spontaneous_messages());
}

}  // namespace
}  // namespace fm::net
