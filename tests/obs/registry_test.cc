#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/counters.h"
#include "obs/dump.h"

namespace fm::obs {
namespace {

const Sample* find(const std::vector<Sample>& v, const std::string& name) {
  for (const auto& s : v)
    if (s.name == name) return &s;
  return nullptr;
}

TEST(Registry, CountersReadTheLiveCell) {
  std::uint64_t cell = 0;
  Registry r("t");
  r.counter("hits", &cell);
  cell = 41;
  ++cell;
  auto snap = r.snapshot();
  const Sample* s = find(snap, "t.hits");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 42.0);
  EXPECT_TRUE(s->monotonic);
}

TEST(Registry, GaugesSampleLazily) {
  int depth = 0;
  Registry r("q");
  r.gauge("depth", [&] { return static_cast<double>(depth); });
  depth = 7;
  const Sample* s = find(r.snapshot(), "q.depth");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 7.0);
  EXPECT_FALSE(s->monotonic);
  depth = 9;
  EXPECT_DOUBLE_EQ(find(r.snapshot(), "q.depth")->value, 9.0);
}

TEST(Registry, NamesAreScopeQualified) {
  std::uint64_t cell = 1;
  Registry r("shm.node0");
  r.counter("frames_sent", &cell);
  auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "shm.node0.frames_sent");
}

TEST(Registry, SnapshotAllSeesLiveRegistries) {
  std::uint64_t cell = 5;
  Registry r("snapall");
  r.counter("c", &cell);
  EXPECT_NE(find(Registry::snapshot_all(), "snapall.c"), nullptr);
}

TEST(Registry, SnapshotAllForgetsDestroyedRegistries) {
  {
    std::uint64_t cell = 5;
    Registry r("ephemeral");
    r.counter("c", &cell);
  }
  EXPECT_EQ(find(Registry::snapshot_all(), "ephemeral.c"), nullptr);
}

TEST(Registry, EndpointCountersRegisterEveryField) {
  EndpointCounters c;
  c.frames_sent = 3;
  c.messages_abandoned = 2;
  Registry r("ep");
  c.register_into(r);
  auto snap = r.snapshot();
  EXPECT_EQ(snap.size(), 17u);
  EXPECT_DOUBLE_EQ(find(snap, "ep.frames_sent")->value, 3.0);
  EXPECT_DOUBLE_EQ(find(snap, "ep.messages_abandoned")->value, 2.0);
  EXPECT_DOUBLE_EQ(find(snap, "ep.crc_drops")->value, 0.0);
}

TEST(Conservation, BalancedWhenEveryMessageAccounted) {
  EndpointCounters a, b;
  a.messages_sent = 10;
  b.messages_delivered = 8;
  a.messages_abandoned = 2;
  Conservation k;
  k.add(a);
  k.add(b);
  EXPECT_TRUE(k.balanced());
  EXPECT_TRUE(k.no_spontaneous_messages());
  EXPECT_EQ(k.imbalance(), 0);
}

TEST(Conservation, ImbalanceSignalsLoss) {
  EndpointCounters a, b;
  a.messages_sent = 10;
  b.messages_delivered = 7;
  Conservation k;
  k.add(a);
  k.add(b);
  EXPECT_FALSE(k.balanced());
  EXPECT_TRUE(k.no_spontaneous_messages());
  EXPECT_EQ(k.imbalance(), 3);
}

TEST(DumpCapture, DestructorArchivesSnapshotWhileArmed) {
  begin_capture();
  {
    std::uint64_t cell = 11;
    Registry r("archived");
    r.counter("c", &cell);
  }  // destructor runs with capture armed
  auto archived = drain_archived_samples();
  end_capture();
  EXPECT_NE(find(archived, "archived.c"), nullptr);
}

TEST(DumpCapture, NothingArchivedWhenDisarmed) {
  {
    std::uint64_t cell = 11;
    Registry r("unarchived");
    r.counter("c", &cell);
  }
  begin_capture();  // arming clears any stale archive
  auto archived = drain_archived_samples();
  end_capture();
  EXPECT_EQ(find(archived, "unarchived.c"), nullptr);
}

}  // namespace
}  // namespace fm::obs
