// Schema test for the Chrome trace-event exporter: the output must parse as
// one valid JSON document, timestamps must be non-decreasing across the
// whole traceEvents array, and every 'B' must have a matching 'E' on its
// tid. A minimal recursive-descent JSON parser lives here so the test
// depends on the JSON grammar, not on the exporter's pretty-printing.
#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_ring.h"

namespace fm::obs {
namespace {

// ---- minimal JSON DOM ------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // trailing garbage is a failure
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out->kind = JsonValue::Kind::kString; return string(&out->str);
      case 't': out->kind = JsonValue::Kind::kBool; out->boolean = true;
        return literal("true");
      case 'f': out->kind = JsonValue::Kind::kBool; out->boolean = false;
        return literal("false");
      case 'n': out->kind = JsonValue::Kind::kNull; return literal("null");
      default: out->kind = JsonValue::Kind::kNumber; return number(&out->number);
    }
  }
  bool string(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // unescaped ctrl
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        char e = s_[pos_ + 1];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 5 >= s_.size()) return false;
            for (int i = 2; i < 6; ++i)
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
                return false;
            *out += '?';  // fidelity of non-ASCII escapes is not under test
            pos_ += 4;
            break;
          }
          default: return false;
        }
        pos_ += 2;
      } else {
        *out += c;
        ++pos_;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(double* out) {
    std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    try {
      *out = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }
  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->object[key] = std::move(v);
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- helpers ---------------------------------------------------------------

std::string export_to_string(const std::vector<TraceDump>& dumps,
                             const std::vector<Sample>& counters = {}) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = ::open_memstream(&buf, &len);
  EXPECT_NE(f, nullptr);
  write_chrome_trace(f, dumps, counters);
  std::fclose(f);
  std::string out(buf, len);
  ::free(buf);
  return out;
}

struct Ev {
  std::string ph;
  double ts = 0.0;
  int tid = 0;
  const JsonValue* raw = nullptr;
};

std::vector<Ev> events_of(const JsonValue& doc) {
  std::vector<Ev> out;
  const JsonValue* arr = doc.find("traceEvents");
  EXPECT_NE(arr, nullptr);
  if (arr == nullptr) return out;
  EXPECT_EQ(arr->kind, JsonValue::Kind::kArray);
  for (const JsonValue& e : arr->array) {
    EXPECT_EQ(e.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* tid = e.find("tid");
    EXPECT_NE(ph, nullptr);
    EXPECT_NE(ts, nullptr);
    EXPECT_NE(tid, nullptr);
    if (!ph || !ts || !tid) continue;
    out.push_back(Ev{ph->str, ts->number, static_cast<int>(tid->number), &e});
  }
  return out;
}

// ---- tests -----------------------------------------------------------------

TEST(ChromeExport, EmptyDumpSetIsStillValidJson) {
  JsonValue doc;
  std::string text = export_to_string({});
  EXPECT_TRUE(JsonParser(text).parse(&doc)) << text;
  EXPECT_NE(doc.find("traceEvents"), nullptr);
}

TEST(ChromeExport, ParsesTimestampsMonotonicPairsMatched) {
  // Two tracks with interleaved spans, an orphaned 'E' (its 'B' was lost to
  // the flight recorder), an unclosed 'B', counter samples, and a detail
  // with JSON-hostile characters.
  TraceRing t0("node0"), t1("node1");
  std::uint16_t s0 = t0.intern("send"), x0 = t0.intern("extract");
  std::uint16_t s1 = t1.intern("send");
  t0.enable(64);
  t1.enable(64);
  t0.event(50, x0, 'E');            // orphan: no matching B survived
  t0.event(100, x0, 'B', 4, 0);
  t0.event(130, s0, 'i', 1, 7);
  t0.eventf(140, s0, 'i', 1, 8, "quote \" backslash \\ tab \t");
  t0.event(180, x0, 'E', 4, 0);
  t0.event(200, x0, 'C', 3, 2);
  t1.event(90, s1, 'B', 0, 1);
  t1.event(300, s1, 'B', 0, 2);     // left unclosed on purpose
  t1.event(310, s1, 'E', 0, 1);

  std::vector<Sample> counters = {{"node0.frames_sent", 12.0, true}};
  std::string text = export_to_string({t0.dump(), t1.dump()}, counters);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(text).parse(&doc)) << text;

  std::vector<Ev> evs = events_of(doc);
  ASSERT_FALSE(evs.empty());

  // Timestamps non-decreasing over the whole array.
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_GE(evs[i].ts, evs[i - 1].ts) << "at event " << i;

  // Every B matched by an E on the same tid; no E without an open B.
  std::map<int, int> open;
  for (const Ev& e : evs) {
    if (e.ph == "B") ++open[e.tid];
    if (e.ph == "E") {
      EXPECT_GT(open[e.tid], 0) << "orphan E at ts " << e.ts;
      --open[e.tid];
    }
  }
  for (const auto& [tid, n] : open) EXPECT_EQ(n, 0) << "unclosed B on tid " << tid;

  // The orphaned E was demoted, not dropped: its instant survives at ts 0
  // (earliest event) on tid 0.
  bool orphan_as_instant = false;
  for (const Ev& e : evs)
    if (e.ph == "i" && e.tid == 0 && e.ts == 0.0) orphan_as_instant = true;
  EXPECT_TRUE(orphan_as_instant);

  // Counter samples ride along in otherData.
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* fs = other->find("node0.frames_sent");
  ASSERT_NE(fs, nullptr);
  EXPECT_DOUBLE_EQ(fs->number, 12.0);
  EXPECT_NE(other->find("node0.trace_dropped"), nullptr);
  EXPECT_NE(other->find("node1.trace_clipped"), nullptr);

  // Track names are present as metadata.
  bool named = false;
  for (const Ev& e : evs)
    if (e.ph == "M") {
      const JsonValue* name = e.raw->find("name");
      ASSERT_NE(name, nullptr);
      EXPECT_EQ(name->str, "thread_name");
      named = true;
    }
  EXPECT_TRUE(named);
}

TEST(ChromeExport, CounterEventsCarryArgs) {
  TraceRing t("n");
  std::uint16_t c = t.intern("depth");
  t.enable(8);
  t.event(10, c, 'C', 5, 9);
  std::string text = export_to_string({t.dump()});
  JsonValue doc;
  ASSERT_TRUE(JsonParser(text).parse(&doc)) << text;
  for (const Ev& e : events_of(doc)) {
    if (e.ph != "C") continue;
    const JsonValue* args = e.raw->find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("a"), nullptr);
    EXPECT_DOUBLE_EQ(args->find("a")->number, 5.0);
    EXPECT_DOUBLE_EQ(args->find("b")->number, 9.0);
  }
}

TEST(ChromeExport, FileWriterRoundTrips) {
  TraceRing t("n");
  std::uint16_t c = t.intern("ev");
  t.enable(8);
  t.event(1, c, 'i');
  std::string path = ::testing::TempDir() + "chrome_export_test.json";
  ASSERT_TRUE(write_chrome_trace_file(path, {t.dump()}));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  JsonValue doc;
  EXPECT_TRUE(JsonParser(text).parse(&doc)) << text;
}

}  // namespace
}  // namespace fm::obs
