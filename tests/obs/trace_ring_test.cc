#include "obs/trace_ring.h"

#include <gtest/gtest.h>

#include <string>

namespace fm::obs {
namespace {

TEST(TraceRing, DisabledRecordsNothing) {
  TraceRing t("x");
  std::uint16_t cat = t.intern("send");
  t.event(1, cat, 'i', 3, 4);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.enabled());
}

TEST(TraceRing, InternIsIdempotent) {
  TraceRing t("x");
  std::uint16_t a = t.intern("send");
  std::uint16_t b = t.intern("recv");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.intern("send"), a);
  EXPECT_EQ(t.category(a), "send");
  EXPECT_EQ(t.category(b), "recv");
}

TEST(TraceRing, RecordsCarryThePodPayload) {
  TraceRing t("x");
  std::uint16_t cat = t.intern("send");
  t.enable(16);
  t.event(100, cat, 'B', 7, 42);
  t.event(200, cat, 'E', 7, 42);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.record(0).ts_ns, 100u);
  EXPECT_EQ(t.record(0).phase, 'B');
  EXPECT_EQ(t.record(0).a, 7u);
  EXPECT_EQ(t.record(0).b, 42u);
  EXPECT_EQ(t.record(0).cat, cat);
  EXPECT_EQ(t.record(1).phase, 'E');
}

TEST(TraceRing, FormattedDetailClipsAndCounts) {
  TraceRing t("x");
  std::uint16_t cat = t.intern("c");
  t.enable(8);
  std::string tail(100, 'y');
  t.eventf(1, cat, 'i', 0, 0, "ok");
  t.eventf(2, cat, 'i', 0, 0, "long-%s", tail.c_str());
  ASSERT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.record(0).clipped());
  EXPECT_STREQ(t.record(0).detail, "ok");
  EXPECT_TRUE(t.record(1).clipped());
  EXPECT_EQ(t.clipped(), 1u);
  // Clipped detail keeps its prefix and stays NUL-terminated in the slot.
  EXPECT_EQ(std::string(t.record(1).detail).substr(0, 5), "long-");
  EXPECT_LT(std::string(t.record(1).detail).size(),
            TraceRecord::kDetailBytes);
}

TEST(TraceRing, FlightRecorderOverwritesOldest) {
  TraceRing t("x");
  std::uint16_t cat = t.intern("c");
  t.enable(4);
  for (std::uint64_t i = 0; i < 10; ++i) t.event(i, cat, 'i', 0, 0);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.record(0).ts_ns, 6u);
  EXPECT_EQ(t.record(3).ts_ns, 9u);
}

TEST(TraceRing, ReenableClears) {
  TraceRing t("x");
  std::uint16_t cat = t.intern("c");
  t.enable(4);
  t.event(1, cat, 'i');
  t.disable();
  t.event(2, cat, 'i');  // ignored
  t.enable(4);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.event(3, cat, 'i');
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.record(0).ts_ns, 3u);
}

TEST(TraceRing, DumpIsAFaithfulColdCopy) {
  TraceRing t("scope-name");
  std::uint16_t cat = t.intern("c");
  t.enable(2);
  for (std::uint64_t i = 0; i < 3; ++i) t.event(i, cat, 'i', 0, 0);
  TraceDump d = t.dump();
  EXPECT_EQ(d.scope, "scope-name");
  ASSERT_EQ(d.records.size(), 2u);
  EXPECT_EQ(d.records[0].ts_ns, 1u);
  EXPECT_EQ(d.records[1].ts_ns, 2u);
  EXPECT_EQ(d.dropped, 1u);
  ASSERT_GT(d.categories.size(), cat);
  EXPECT_EQ(d.categories[cat], "c");
}

}  // namespace
}  // namespace fm::obs
