// FM-San chaos leg for FM-RMA: a rank dies in the middle of an exposure
// epoch. The invariant under test is the fence's failure mode — survivors'
// epoch_close() must surface Status::kPeerDead (FM-R detects the death via
// the fence's own retransmissions) instead of hanging, and the puts the
// survivors exchanged among themselves must still be applied exactly once.
#include "rma/engine.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/backends.h"

namespace fm {
namespace {

constexpr std::uint32_t kBuf = 1;
constexpr std::size_t kRanks = 3;
constexpr NodeId kVictim = 2;
constexpr std::size_t kSlice = 2048;

std::uint8_t fill(NodeId src, std::size_t j) {
  return static_cast<std::uint8_t>(src * 131 + j * 3 + 1);
}

template <class B>
class RmaChaos : public ::testing::Test {};

TYPED_TEST_SUITE(RmaChaos, testing::BothBackends, testing::BackendNames);

TYPED_TEST(RmaChaos, KillRankMidEpochSurfacesPeerDeadNotAHungFence) {
  using B = TypeParam;
  using E = typename B::Endpoint;

  FmConfig cfg;
  // Death is only detectable through FM-R (mandatory on net; opted into on
  // shm): tight retransmit budget so the fence's retries exhaust fast.
  cfg.reliability = true;
  cfg.crc_frames = true;
  cfg.retransmit_timeout_ns = 1'000'000;  // 1 ms
  cfg.max_retries = 5;
  // The direct path is unsafe once a killed shm rank's exposed vectors are
  // freed with its stack; chaos runs message-emulated everywhere.
  cfg.rma_force_emulation = true;

  auto cluster = B::make(kRanks, cfg);
  auto* c = cluster.get();
  const RunReport r = c->run([c](E& ep) {
    const NodeId me = ep.id();
    rma::Engine<E> eng(ep);
    std::vector<std::uint8_t> region(kRanks * kSlice, 0);
    eng.expose(kBuf, region.data(), region.size());
    ASSERT_EQ(eng.epoch_open(), Status::kOk);
    // Pin the schedule: every rank is inside the epoch (tables exchanged,
    // open returned kOk everywhere) before the victim is allowed to die.
    barrier_serviced(*c, ep);

    std::vector<std::uint8_t> src(kSlice);
    for (std::size_t j = 0; j < kSlice; ++j) src[j] = fill(me, j);

    if (me == kVictim) {
      // Participate just enough to be mid-epoch, then die the backend's
      // death: SIGKILL for a forked net rank, a silent return for an shm
      // thread (which never extracts again — protocol death).
      (void)eng.put(0, kBuf, me * kSlice, src.data(), 64);
      if (B::kProcessRanks) std::raise(SIGKILL);
      return;
    }

    // Survivors put to every rank, the victim included: sends toward the
    // dying rank may fail — that is allowed; hanging is not.
    for (NodeId d = 0; d < kRanks; ++d)
      (void)eng.put(d, kBuf, me * kSlice, src.data(), kSlice);

    // The acceptance criterion: the fence detects the death and reports
    // it; it must not hang (the net watchdog would turn a hang into a
    // timed-out report).
    EXPECT_EQ(eng.epoch_close(), Status::kPeerDead);
    EXPECT_TRUE(ep.peer_dead(kVictim));

    // Survivor-to-survivor traffic is fence-complete despite the death.
    const NodeId other = (me == 0) ? 1 : 0;
    for (std::size_t j = 0; j < kSlice; ++j)
      ASSERT_EQ(region[other * kSlice + j], fill(other, j)) << "byte " << j;
    for (std::size_t j = 0; j < kSlice; ++j)
      ASSERT_EQ(region[me * kSlice + j], fill(me, j)) << "self byte " << j;
    EXPECT_EQ(eng.epoch_conflicts(), 0u);

    ep.drain();
    c->publish(eng.registry());
    if constexpr (B::kProcessRanks) {
      if (::testing::Test::HasFailure()) {
        testing::detail::dump_rank_failure(ep.id());
        c->mark_child_failed();
      }
    }
  });

  ASSERT_FALSE(r.timed_out) << "survivors hung instead of detecting death";
  for (const RankStatus& rs : r.ranks) {
    if (rs.id == kVictim && B::kProcessRanks) {
      EXPECT_FALSE(rs.exited) << "victim was not killed";
      EXPECT_EQ(rs.term_signal, SIGKILL);
    } else if (rs.id != kVictim) {
      EXPECT_TRUE(rs.clean()) << "rank " << rs.id;
    }
  }
  // Both survivors declared exactly the victim dead.
  EXPECT_EQ(r.sum_counter("peers_dead"), 2.0);
}

}  // namespace
}  // namespace fm
