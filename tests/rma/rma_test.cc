// FM-RMA functional suite, typed over the transport backend: every test
// runs once on shm threads and once on the net backend's forked UDP
// processes. Bodies are SPMD; ranks share nothing but the engine protocol
// (on shm the direct put path shares the address space — that IS the
// feature under test there).
#include "rma/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "support/backends.h"

namespace fm {
namespace {

constexpr std::uint32_t kBuf = 1;   // bulk data region id
constexpr std::uint32_t kCtr = 7;   // counter/accumulator region id

/// Deterministic fill: byte j of a transfer from `src` tagged `salt`.
std::uint8_t fill(NodeId src, std::uint32_t salt, std::size_t j) {
  return static_cast<std::uint8_t>(src * 131 + salt * 17 + j * 3 + 1);
}

template <class B>
class RmaOn : public ::testing::Test {
 protected:
  using E = typename B::Endpoint;
  using Eng = rma::Engine<E>;

  /// Runs `body(engine, endpoint)` on every rank; publishes each rank's
  /// rma registry into the report so counter assertions work across the
  /// net process boundary too.
  static RunReport spmd(std::size_t n,
                        const std::function<void(Eng&, E&)>& body,
                        FmConfig cfg = FmConfig()) {
    auto cluster = B::make(n, cfg);
    auto* c = cluster.get();
    return B::run(*cluster, [&body, c](E& ep) {
      Eng eng(ep);
      body(eng, ep);
      ep.drain();
      c->publish(eng.registry());
    });
  }
};

TYPED_TEST_SUITE(RmaOn, testing::BothBackends, testing::BackendNames);

TYPED_TEST(RmaOn, EagerPutLandsAfterFence) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  constexpr std::size_t kLen = 4096;
  const RunReport r = this->spmd(2, [](Eng& eng, E& ep) {
    const NodeId me = ep.id();
    const NodeId peer = 1 - me;
    std::vector<std::uint8_t> region(kLen, 0);
    eng.expose(kBuf, region.data(), region.size());
    ASSERT_EQ(eng.epoch_open(), Status::kOk);

    // Three eager puts into disjoint windows of the peer's region, plus a
    // self-put into my own third window.
    std::vector<std::uint8_t> msg(512);
    for (std::uint32_t k = 0; k < 2; ++k) {
      for (std::size_t j = 0; j < msg.size(); ++j) msg[j] = fill(me, k, j);
      ASSERT_EQ(eng.put(peer, kBuf, k * 1024, msg.data(), msg.size()),
                Status::kOk);
    }
    for (std::size_t j = 0; j < msg.size(); ++j) msg[j] = fill(me, 2, j);
    ASSERT_EQ(eng.put(me, kBuf, 2 * 1024, msg.data(), msg.size()),
              Status::kOk);

    ASSERT_EQ(eng.epoch_close(), Status::kOk);

    // The close is a full fence: the peer's writes are in my region NOW.
    for (std::uint32_t k = 0; k < 2; ++k)
      for (std::size_t j = 0; j < 512; ++j)
        ASSERT_EQ(region[k * 1024 + j], fill(peer, k, j))
            << "window " << k << " byte " << j;
    for (std::size_t j = 0; j < 512; ++j)
      ASSERT_EQ(region[2 * 1024 + j], fill(me, 2, j)) << "self byte " << j;
    EXPECT_EQ(eng.epoch_conflicts(), 0u);
  });
  EXPECT_EQ(r.sum_counter("puts_issued"), 6.0);
  EXPECT_EQ(r.sum_counter("puts_completed"), 6.0);
  // 4 remote eager puts applied (self-puts don't cross the wire).
  EXPECT_EQ(r.sum_counter("ops_applied"), 4.0);
  EXPECT_EQ(r.sum_counter("epoch_conflicts"), 0.0);
}

TYPED_TEST(RmaOn, RendezvousPutMovesLargeTransfersExactlyOnce) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  constexpr std::size_t kLen = 96 * 1024;
  FmConfig cfg;
  cfg.rma_eager_max = 256;
  cfg.rma_chunk_bytes = 1024;
  cfg.rma_pull_depth = 4;
  cfg.rma_force_emulation = true;  // shm must walk the pull protocol here
  const RunReport r = this->spmd(
      2,
      [](Eng& eng, E& ep) {
        const NodeId me = ep.id();
        const NodeId peer = 1 - me;
        std::vector<std::uint8_t> region(kLen, 0);
        std::vector<std::uint8_t> src(kLen - 64);
        for (std::size_t j = 0; j < src.size(); ++j) src[j] = fill(me, 9, j);
        eng.expose(kBuf, region.data(), region.size());
        ASSERT_EQ(eng.epoch_open(), Status::kOk);
        ASSERT_EQ(eng.put(peer, kBuf, 64, src.data(), src.size()),
                  Status::kOk);
        ASSERT_EQ(eng.epoch_close(), Status::kOk);
        for (std::size_t j = 0; j < src.size(); ++j)
          ASSERT_EQ(region[64 + j], fill(peer, 9, j)) << "byte " << j;
        for (std::size_t j = 0; j < 64; ++j)
          ASSERT_EQ(region[j], 0u) << "leading pad clobbered at " << j;
      },
      cfg);
  EXPECT_EQ(r.sum_counter("puts_completed"), 2.0);
  EXPECT_EQ(r.sum_counter("rendezvous_bytes"), 2.0 * (kLen - 64));
  EXPECT_EQ(r.sum_counter("eager_bytes"), 0.0);
  EXPECT_EQ(r.sum_counter("epoch_conflicts"), 0.0);
}

TYPED_TEST(RmaOn, DirectPathServesLargePutsWhereAvailable) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  constexpr std::size_t kLen = 64 * 1024;
  const RunReport r = this->spmd(2, [](Eng& eng, E& ep) {
    const NodeId me = ep.id();
    const NodeId peer = 1 - me;
    std::vector<std::uint8_t> region(kLen, 0);
    std::vector<std::uint8_t> src(kLen);
    for (std::size_t j = 0; j < src.size(); ++j) src[j] = fill(me, 3, j);
    eng.expose(kBuf, region.data(), region.size());
    ASSERT_EQ(eng.epoch_open(), Status::kOk);
    ASSERT_EQ(eng.put(peer, kBuf, 0, src.data(), src.size()), Status::kOk);
    ASSERT_EQ(eng.epoch_close(), Status::kOk);
    for (std::size_t j = 0; j < kLen; ++j)
      ASSERT_EQ(region[j], fill(peer, 3, j)) << "byte " << j;
  });
  // Whether the bytes moved zero-copy (shm) or by rendezvous pull (net),
  // the accounting class is the same.
  EXPECT_EQ(r.sum_counter("rendezvous_bytes"), 2.0 * kLen);
  EXPECT_EQ(r.sum_counter("puts_completed"), 2.0);
}

TYPED_TEST(RmaOn, GetReadsBackWhatTheOwnerWrote) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  constexpr std::size_t kLen = 24 * 1024;
  FmConfig cfg;
  cfg.rma_eager_max = 512;
  cfg.rma_chunk_bytes = 768;  // deliberately not a divisor of the length
  cfg.rma_force_emulation = true;
  const RunReport r = this->spmd(
      2,
      [](Eng& eng, E& ep) {
        const NodeId me = ep.id();
        const NodeId peer = 1 - me;
        std::vector<std::uint8_t> region(kLen);
        for (std::size_t j = 0; j < kLen; ++j) region[j] = fill(me, 5, j);
        eng.expose(kBuf, region.data(), region.size());
        ASSERT_EQ(eng.epoch_open(), Status::kOk);

        // Chunked pull of the peer's whole region, then a small
        // single-chunk get, then a self-get.
        std::vector<std::uint8_t> dst(kLen, 0);
        ASSERT_EQ(eng.get(peer, kBuf, 0, dst.data(), kLen), Status::kOk);
        for (std::size_t j = 0; j < kLen; ++j)
          ASSERT_EQ(dst[j], fill(peer, 5, j)) << "byte " << j;

        std::uint8_t small[100];
        ASSERT_EQ(eng.get(peer, kBuf, 1000, small, sizeof small), Status::kOk);
        for (std::size_t j = 0; j < sizeof small; ++j)
          ASSERT_EQ(small[j], fill(peer, 5, 1000 + j));

        ASSERT_EQ(eng.get(me, kBuf, 8, small, sizeof small), Status::kOk);
        for (std::size_t j = 0; j < sizeof small; ++j)
          ASSERT_EQ(small[j], fill(me, 5, 8 + j));

        ASSERT_EQ(eng.epoch_close(), Status::kOk);
      },
      cfg);
  EXPECT_EQ(r.sum_counter("gets_issued"), 6.0);
  EXPECT_EQ(r.sum_counter("gets_completed"), 6.0);
  EXPECT_EQ(r.sum_counter("epoch_conflicts"), 0.0);
}

TYPED_TEST(RmaOn, StridedPutAndGetPreserveLayout) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  constexpr std::size_t kBlock = 192;
  constexpr std::size_t kBlocks = 10;
  constexpr std::size_t kDstStride = 512;
  constexpr std::size_t kLen = kBlocks * kDstStride;
  const RunReport r = this->spmd(2, [](Eng& eng, E& ep) {
    const NodeId me = ep.id();
    const NodeId peer = 1 - me;
    std::vector<std::uint8_t> region(kLen, 0);
    eng.expose(kBuf, region.data(), region.size());
    ASSERT_EQ(eng.epoch_open(), Status::kOk);

    // Dense source -> strided destination (a matrix column, essentially).
    std::vector<std::uint8_t> src(kBlocks * kBlock);
    for (std::size_t j = 0; j < src.size(); ++j) src[j] = fill(me, 11, j);
    ASSERT_EQ(eng.put_strided(peer, kBuf, /*dst_off=*/0, kDstStride,
                              src.data(), kBlock, kBlock, kBlocks),
              Status::kOk);
    ASSERT_EQ(eng.epoch_close(), Status::kOk);

    for (std::size_t b = 0; b < kBlocks; ++b)
      for (std::size_t j = 0; j < kDstStride; ++j) {
        const std::uint8_t got = region[b * kDstStride + j];
        if (j < kBlock)
          ASSERT_EQ(got, fill(peer, 11, b * kBlock + j))
              << "block " << b << " byte " << j;
        else
          ASSERT_EQ(got, 0u) << "stride gap clobbered: block " << b
                             << " byte " << j;
      }

    // Read the strided layout back into a dense buffer and compare.
    ASSERT_EQ(eng.epoch_open(), Status::kOk);
    std::vector<std::uint8_t> back(kBlocks * kBlock, 0);
    ASSERT_EQ(eng.get_strided(peer, kBuf, /*src_off=*/0, kDstStride,
                              back.data(), kBlock, kBlock, kBlocks),
              Status::kOk);
    for (std::size_t j = 0; j < back.size(); ++j)
      ASSERT_EQ(back[j], fill(me, 11, j)) << "readback byte " << j;
    ASSERT_EQ(eng.epoch_close(), Status::kOk);
  });
  EXPECT_EQ(r.sum_counter("puts_issued"), 2.0 * kBlocks);
  EXPECT_EQ(r.sum_counter("gets_issued"), 2.0 * kBlocks);
}

TYPED_TEST(RmaOn, FetchAndAddSerializesAndAccumulateCommutes) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  constexpr std::size_t kRanks = 3;
  constexpr std::size_t kRounds = 40;
  constexpr std::size_t kVec = 16;
  const RunReport r = this->spmd(kRanks, [](Eng& eng, E& ep) {
    const NodeId me = ep.id();
    // Region kCtr on rank 0: [0] the faa counter, [1..kVec] the vector.
    std::vector<std::uint64_t> ctr(1 + kVec, 0);
    eng.expose(kCtr, ctr.data(), ctr.size() * 8);
    ASSERT_EQ(eng.epoch_open(), Status::kOk);

    // Everyone (rank 0 included, via the self path) bumps rank 0's counter;
    // each rank's observed priors must be strictly increasing — handler
    // serialization at the target is the atomicity.
    std::uint64_t prev = 0;
    bool first = true;
    for (std::size_t i = 0; i < kRounds; ++i) {
      std::uint64_t old = 0;
      ASSERT_EQ(eng.fetch_and_add(0, kCtr, 0, me + 1, &old), Status::kOk);
      if (!first) {
        ASSERT_GT(old, prev) << "fetch_and_add went backwards";
      }
      prev = old;
      first = false;
    }

    // Element-wise accumulate of a rank-stamped vector, twice.
    std::vector<std::uint64_t> add(kVec);
    for (std::size_t j = 0; j < kVec; ++j) add[j] = (me + 1) * 1000 + j;
    ASSERT_EQ(eng.accumulate(0, kCtr, 8, add.data(), kVec), Status::kOk);
    ASSERT_EQ(eng.accumulate(0, kCtr, 8, add.data(), kVec), Status::kOk);

    ASSERT_EQ(eng.epoch_close(), Status::kOk);

    if (me == 0) {
      std::uint64_t expect_ctr = 0;
      for (std::size_t k = 0; k < kRanks; ++k)
        expect_ctr += (k + 1) * kRounds;
      EXPECT_EQ(ctr[0], expect_ctr);
      for (std::size_t j = 0; j < kVec; ++j) {
        std::uint64_t expect = 0;
        for (std::size_t k = 0; k < kRanks; ++k)
          expect += 2 * ((k + 1) * 1000 + j);
        EXPECT_EQ(ctr[1 + j], expect) << "element " << j;
      }
    }
  });
  EXPECT_EQ(r.sum_counter("accs_issued"), 3.0 * (kRounds + 2));
  EXPECT_EQ(r.sum_counter("accs_completed"), 3.0 * (kRounds + 2));
}

TYPED_TEST(RmaOn, StaleEpochOpIsShedAndCounted) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  const RunReport r = this->spmd(2, [](Eng& eng, E& ep) {
    const NodeId me = ep.id();
    const NodeId peer = 1 - me;
    std::vector<std::uint8_t> region(1024, 0);
    eng.expose(kBuf, region.data(), region.size());

    // Epoch 1: clean open/close to establish history.
    ASSERT_EQ(eng.epoch_open(), Status::kOk);
    ASSERT_EQ(eng.epoch_close(), Status::kOk);

    // Epoch 2: rank 0 injects an op stamped with epoch 1. The target must
    // shed it (count it, apply nothing, keep the fence balanced).
    ASSERT_EQ(eng.epoch_open(), Status::kOk);
    if (me == 0) eng.debug_inject_stale(peer);
    ASSERT_EQ(eng.epoch_close(), Status::kOk);

    if (me == 1)
      ep.extract_until([&eng] { return eng.epoch_conflicts() >= 1; });
    EXPECT_EQ(eng.epoch_conflicts(), me == 1 ? 1u : 0u);
  });
  EXPECT_EQ(r.sum_counter("epoch_conflicts"), 1.0);
  EXPECT_EQ(r.sum_counter("ops_applied"), 0.0);
}

// Multi-epoch soak: every rank scatters deterministic slices into every
// peer's region across several epochs with a mixed eager/rendezvous diet,
// then everything is verified byte-for-byte and the issue/complete/apply
// ledgers must balance exactly — the one-sided analogue of the FM-San
// exactly-once + conservation soaks.
TYPED_TEST(RmaOn, MultiEpochSoakIsExactlyOnceAndConserved) {
  using Eng = typename TestFixture::Eng;
  using E = typename TestFixture::E;
  constexpr std::size_t kRanks = 3;
  constexpr std::size_t kSlice = 12 * 1024;  // per-origin slice of my region
  constexpr std::size_t kEpochs = 3;
  FmConfig cfg;
  cfg.rma_eager_max = 512;
  cfg.rma_chunk_bytes = 640;
  const RunReport r = this->spmd(
      kRanks,
      [](Eng& eng, E& ep) {
        const NodeId me = ep.id();
        std::vector<std::uint8_t> region(kRanks * kSlice, 0);
        eng.expose(kBuf, region.data(), region.size());
        // Transfer sizes straddling the eager/rendezvous split.
        const std::size_t sizes[] = {1, 96, 512, 513, 2048, 7000};
        for (std::uint32_t e = 0; e < kEpochs; ++e) {
          ASSERT_EQ(eng.epoch_open(), Status::kOk);
          std::size_t off = 0;
          std::uint32_t salt = e * 100;
          for (const std::size_t len : sizes) {
            std::vector<std::uint8_t> src(len);
            for (NodeId d = 0; d < kRanks; ++d) {
              for (std::size_t j = 0; j < len; ++j)
                src[j] = fill(me, salt, j);
              ASSERT_EQ(eng.put(d, kBuf, me * kSlice + off, src.data(), len),
                        Status::kOk);
            }
            off += len;
            ++salt;
          }
          ASSERT_EQ(eng.epoch_close(), Status::kOk);
          // Fence-complete: every origin's slice of MY region is fully
          // current for this epoch.
          for (NodeId s = 0; s < kRanks; ++s) {
            std::size_t voff = 0;
            std::uint32_t vsalt = e * 100;
            for (const std::size_t len : sizes) {
              for (std::size_t j = 0; j < len; ++j)
                ASSERT_EQ(region[s * kSlice + voff + j], fill(s, vsalt, j))
                    << "epoch " << e << " origin " << s << " byte " << j;
              voff += len;
              ++vsalt;
            }
          }
        }
        EXPECT_EQ(eng.epoch_conflicts(), 0u);
      },
      cfg);
  // Ledger: every issued put completed; every wire-crossing put applied
  // exactly once at its target (self-puts stay local).
  const double issued = r.sum_counter("puts_issued");
  EXPECT_EQ(issued, 1.0 * kRanks * kRanks * 6 * kEpochs);
  EXPECT_EQ(r.sum_counter("puts_completed"), issued);
  EXPECT_EQ(r.sum_counter("ops_applied"),
            1.0 * kRanks * (kRanks - 1) * 6 * kEpochs);
  EXPECT_EQ(r.sum_counter("epoch_conflicts"), 0.0);
  EXPECT_GT(r.sum_counter("eager_bytes"), 0.0);
  EXPECT_GT(r.sum_counter("rendezvous_bytes"), 0.0);
}

}  // namespace
}  // namespace fm
