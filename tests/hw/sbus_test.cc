#include "hw/sbus.h"

#include "hw/host_cpu.h"

#include <gtest/gtest.h>

#include "hw/params.h"
#include "sim/simulator.h"

namespace fm::hw {
namespace {

struct SbusFixture : ::testing::Test {
  sim::Simulator sim;
  HwParams p = HwParams::paper();
  Sbus bus{sim, p.sbus, p.host};
};

TEST_F(SbusFixture, PioWriteTimeMatchesDwordModel) {
  // 8 bytes: one dword at 23.9 MB/s plus loop overhead.
  sim::Time expected = sim::transfer_time(8, 23.9) + sim::ns(20) * 2;
  EXPECT_EQ(bus.pio_write_time(8), expected);
  // Non-multiple-of-8 sizes round up to whole dwords.
  EXPECT_EQ(bus.pio_write_time(9), 2 * expected);
  EXPECT_EQ(bus.pio_write_time(0), 0);
}

TEST_F(SbusFixture, PioStreamingBandwidthNear22MBs) {
  // Effective PIO bandwidth must land between the hybrid layer's measured
  // r_inf (21.2 MB/s) and the bus peak (23.9 MB/s).
  double secs = sim::to_s(bus.pio_write_time(1 << 20));
  double mbs = 1.0 / secs;
  EXPECT_GT(mbs, 21.0);
  EXPECT_LT(mbs, 23.9);
}

TEST_F(SbusFixture, DmaFasterThanPioForLargeTransfers) {
  EXPECT_LT(bus.dma_time(4096), bus.pio_write_time(4096));
}

TEST_F(SbusFixture, HybridSendPathBeatsAllDmaPathForSmallFrames) {
  // §4.3: the all-DMA architecture pays a memory-to-memory staging copy
  // (DMA runs only against pinned kernel memory) plus the DMA transaction
  // latency, so for small frames direct PIO into LANai memory wins even
  // though the bus DMA mode is faster per byte.
  HostCpu cpu(sim, p.host);
  for (std::size_t n : {16u, 64u, 128u}) {
    sim::Time hybrid = bus.pio_write_time(n);
    sim::Time alldma = cpu.memcpy_time(n) + bus.dma_time(n);
    EXPECT_LT(hybrid, alldma) << "payload " << n;
  }
  // ...while for *streaming* the all-DMA pipeline (copy of frame k+1
  // overlaps DMA of frame k) is limited by its slowest stage — the staging
  // memcpy at ~34 MB/s — which beats the ~22 MB/s PIO stage. This is the
  // Table 4 r_inf ordering: all-DMA 33.0 MB/s vs hybrid 21.2 MB/s.
  sim::Time pio_stage = bus.pio_write_time(4096);
  sim::Time alldma_bottleneck =
      std::max(cpu.memcpy_time(4096), bus.dma_time(4096));
  EXPECT_GT(pio_stage, alldma_bottleneck);
}

TEST_F(SbusFixture, PioReadCosts15HostCycles) {
  auto proc = [](Sbus& b) -> sim::Task { co_await b.pio_read(); };
  sim.spawn(proc(bus));
  sim.run();
  EXPECT_EQ(sim.now(), sim::ns(20) * 15);
  EXPECT_EQ(bus.pio_reads(), 1u);
}

TEST_F(SbusFixture, ContentionSerializesPioAndDma) {
  // A PIO write and a DMA issued together must not overlap.
  auto pio = [](Sbus& b) -> sim::Task { co_await b.pio_write(1024); };
  auto dma = [](Sbus& b) -> sim::Task { co_await b.dma(1024); };
  sim.spawn(pio(bus));
  sim.spawn(dma(bus));
  sim.run();
  EXPECT_EQ(sim.now(), bus.pio_write_time(1024) + bus.dma_time(1024));
  EXPECT_EQ(bus.bytes_pio_written(), 1024u);
  EXPECT_EQ(bus.bytes_dma(), 1024u);
}

TEST_F(SbusFixture, FifoArbitration) {
  std::vector<int> order;
  auto user = [](Sbus& b, std::vector<int>* ord, int id) -> sim::Task {
    co_await b.pio_write(64);
    ord->push_back(id);
  };
  sim.spawn(user(bus, &order, 0));
  sim.spawn(user(bus, &order, 1));
  sim.spawn(user(bus, &order, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace fm::hw
