#include "hw/host_cpu.h"

#include <gtest/gtest.h>

namespace fm::hw {
namespace {

TEST(HostCpu, ExecChargesCycles) {
  sim::Simulator sim;
  HostParams p;
  HostCpu cpu(sim, p);
  auto proc = [](HostCpu& c) -> sim::Task { co_await c.exec(50); };
  sim.spawn(proc(cpu));
  sim.run();
  EXPECT_EQ(sim.now(), sim::ns(20) * 50);
  EXPECT_EQ(cpu.cycles_executed(), 50u);
}

TEST(HostCpu, MemcpyBandwidthIsHarmonicCombination) {
  HostParams p;
  // 1/(1/80 + 1/60) = 34.28... MB/s
  EXPECT_NEAR(p.memcpy_mbs(), 34.28, 0.1);
  sim::Simulator sim;
  HostCpu cpu(sim, p);
  double mbs = 1.0 / sim::to_s(cpu.memcpy_time(1 << 20));
  EXPECT_NEAR(mbs, 34.28, 0.2);
}

TEST(HostCpu, HostIsMuchFasterThanLanai) {
  // Division-of-labor premise: host instruction throughput >> LANai's.
  HostParams h;
  LanaiParams l;
  EXPECT_LT(h.cycle, l.instr_time() / 4);
}

}  // namespace
}  // namespace fm::hw
