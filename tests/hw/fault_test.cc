// Fault-injection tests: the Table 3 "Fault Detection" row in action.
#include <gtest/gtest.h>

#include <cstring>

#include "api/myri_api.h"
#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm::hw {
namespace {

HwParams faulty(double drop, double corrupt) {
  HwParams p = HwParams::paper();
  p.faults.drop_rate = drop;
  p.faults.corrupt_rate = corrupt;
  return p;
}

TEST(FaultInjector, DeterministicForSameSeed) {
  FaultParams fp;
  fp.drop_rate = 0.3;
  FaultInjector a(fp), b(fp);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.should_drop(), b.should_drop());
}

TEST(FaultInjector, RatesApproximatelyHonored) {
  FaultParams fp;
  fp.drop_rate = 0.25;
  FaultInjector inj(fp);
  int dropped = 0;
  for (int i = 0; i < 10000; ++i)
    if (inj.should_drop()) ++dropped;
  EXPECT_NEAR(dropped / 10000.0, 0.25, 0.02);
}

TEST(FaultInjector, CorruptionFlipsExactlyOneBit) {
  FaultParams fp;
  fp.corrupt_rate = 1.0;
  FaultInjector inj(fp);
  std::vector<std::uint8_t> data(64, 0);
  EXPECT_TRUE(inj.maybe_corrupt(data));
  int set_bits = 0;
  for (auto b : data) set_bits += __builtin_popcount(b);
  EXPECT_EQ(set_bits, 1);
}

TEST(FaultNetwork, DropsVanishSilently) {
  Cluster c(2, faulty(1.0, 0.0));  // every packet dropped
  auto send = [](Cluster& cl) -> sim::Task {
    Packet p;
    p.id = cl.node(0).nic().next_packet_id();
    p.dest = 1;
    p.bytes.assign(64, 0x5A);
    co_await cl.node(0).nic().transmit(std::move(p));
  };
  c.sim().spawn(send(c));
  c.sim().run();
  EXPECT_TRUE(c.node(1).nic().rx_ring().empty());
  EXPECT_EQ(c.network().faults().dropped(), 1u);
}

TEST(FaultNetwork, FmDeliveryNotGuaranteedOnLossyNetwork) {
  // §4.5: FM's reliability guarantee presumes a reliable network. With
  // drops, messages vanish and (without flow control) nobody notices —
  // exactly the behaviour the paper documents as out of scope.
  FmConfig cfg;
  cfg.flow_control = false;
  Cluster c(2, faulty(0.3, 0.0));
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg);
  std::size_t got = 0;
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  a.start();
  b.start();
  const std::size_t kMsgs = 100;
  auto tx = [](SimEndpoint& a, HandlerId h, std::size_t n) -> sim::Task {
    for (std::size_t i = 0; i < n; ++i) co_await a.send4(1, h, 1, 2, 3, 4);
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, h, kMsgs));
  c.sim().spawn(rx(b));
  c.sim().run_for(sim::ms(50));
  EXPECT_LT(got, kMsgs);               // messages were lost...
  EXPECT_GT(got, kMsgs / 2);           // ...but not all
  EXPECT_GT(c.network().faults().dropped(), 0u);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(FaultNetwork, FmDeliversCorruptedPayloadsSilently) {
  // FM has no checksums: a corrupted payload reaches the handler wrong.
  FmConfig cfg;
  cfg.flow_control = false;
  Cluster c(2, faulty(0.0, 1.0));  // corrupt every packet
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg);
  std::size_t wrong = 0, total = 0, malformed_runs = 0;
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [&](SimEndpoint&, NodeId, const void* data, std::size_t len) {
        ++total;
        std::vector<std::uint8_t> expect(len, 0x77);
        if (std::memcmp(data, expect.data(), len) != 0) ++wrong;
      });
  a.start();
  b.start();
  const std::size_t kMsgs = 200;
  auto tx = [](SimEndpoint& a, HandlerId h, std::size_t n) -> sim::Task {
    std::vector<std::uint8_t> buf(64, 0x77);
    for (std::size_t i = 0; i < n; ++i)
      co_await a.send(1, h, buf.data(), buf.size());
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, h, kMsgs));
  c.sim().spawn(rx(b));
  c.sim().run_for(sim::ms(50));
  malformed_runs = b.stats().malformed_frames;
  // Every frame was corrupted: each either arrived with a damaged payload,
  // was dropped as undecodable (header hit), or was silently misrouted to
  // a garbage-but-valid header field.
  EXPECT_GT(total, 0u);
  EXPECT_GT(wrong + malformed_runs, kMsgs / 2);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(FaultNetwork, ApiChecksumCatchesCorruption) {
  // The Myricom API pays for checksums (Table 4's 105 us includes them) and
  // gets detection in return: no corrupted payload is ever delivered.
  Cluster c(2, faulty(0.0, 0.5));
  api::MyriApi a(c.node(0));
  api::MyriApi b(c.node(1));
  a.start();
  b.start();
  const std::size_t kMsgs = 60;
  std::size_t delivered = 0, wrong = 0;
  auto tx = [](api::MyriApi& a, std::size_t n) -> sim::Task {
    std::vector<std::uint8_t> buf(64, 0x33);
    for (std::size_t i = 0; i < n; ++i)
      (void)co_await a.send_imm(1, buf.data(), buf.size());
  };
  auto rx = [](api::MyriApi& b, std::size_t* delivered,
               std::size_t* wrong) -> sim::Task {
    for (;;) {
      auto m = co_await b.receive();
      if (m.has_value()) {
        ++*delivered;
        for (auto byte : m->data)
          if (byte != 0x33) {
            ++*wrong;
            break;
          }
      } else {
        co_await b.delivery_cond().wait();
      }
    }
  };
  c.sim().spawn(tx(a, kMsgs));
  c.sim().spawn(rx(b, &delivered, &wrong));
  c.sim().run_for(sim::ms(50));
  EXPECT_EQ(wrong, 0u);                        // nothing corrupt delivered
  EXPECT_GT(b.checksum_failures(), 0u);        // corruption was detected
  EXPECT_LT(delivered, kMsgs);                 // detected frames discarded
  EXPECT_GT(delivered, 0u);                    // clean frames still flow
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

}  // namespace
}  // namespace fm::hw
