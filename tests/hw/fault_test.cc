// Fault-injection tests: the Table 3 "Fault Detection" row in action.
#include <gtest/gtest.h>

#include <cstring>

#include "api/myri_api.h"
#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm::hw {
namespace {

HwParams faulty(double drop, double corrupt) {
  HwParams p = HwParams::paper();
  p.faults.drop_rate = drop;
  p.faults.corrupt_rate = corrupt;
  return p;
}

TEST(FaultInjector, DeterministicForSameSeed) {
  FaultParams fp;
  fp.drop_rate = 0.3;
  FaultInjector a(fp), b(fp);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.should_drop(), b.should_drop());
}

TEST(FaultInjector, RatesApproximatelyHonored) {
  FaultParams fp;
  fp.drop_rate = 0.25;
  FaultInjector inj(fp);
  int dropped = 0;
  for (int i = 0; i < 10000; ++i)
    if (inj.should_drop()) ++dropped;
  EXPECT_NEAR(dropped / 10000.0, 0.25, 0.02);
}

TEST(FaultInjector, CorruptionFlipsExactlyOneBit) {
  FaultParams fp;
  fp.corrupt_rate = 1.0;
  FaultInjector inj(fp);
  std::vector<std::uint8_t> data(64, 0);
  EXPECT_TRUE(inj.maybe_corrupt(data));
  int set_bits = 0;
  for (auto b : data) set_bits += __builtin_popcount(b);
  EXPECT_EQ(set_bits, 1);
}

TEST(FaultInjector, BurstDestroysConsecutivePackets) {
  FaultParams fp;
  fp.burst_rate = 1.0;  // first packet starts a burst immediately
  fp.burst_len = 4;
  FaultInjector inj(fp);
  // The burst packet and the next burst_len-1 are all destroyed.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(inj.should_drop());
  EXPECT_EQ(inj.dropped(), 4u);
  EXPECT_EQ(inj.bursts(), 1u);  // only after the burst drains can a new one start
}

TEST(FaultInjector, DuplicateAndReorderRatesHonored) {
  FaultParams fp;
  fp.duplicate_rate = 0.2;
  fp.reorder_rate = 0.1;
  FaultInjector inj(fp);
  int dup = 0, reo = 0;
  for (int i = 0; i < 10000; ++i) {
    if (inj.should_duplicate()) ++dup;
    if (inj.should_reorder()) ++reo;
  }
  EXPECT_NEAR(dup / 10000.0, 0.2, 0.02);
  EXPECT_NEAR(reo / 10000.0, 0.1, 0.02);
  EXPECT_EQ(inj.duplicated(), static_cast<std::uint64_t>(dup));
  EXPECT_EQ(inj.reordered(), static_cast<std::uint64_t>(reo));
}

TEST(FaultInjector, BurstRateStatisticsPinnedAtFixedSeed) {
  FaultParams fp;
  fp.burst_rate = 0.01;
  fp.burst_len = 5;
  FaultInjector inj(fp);
  for (int i = 0; i < 20000; ++i) (void)inj.should_drop();
  // Each burst destroys its trigger plus burst_len-1 followers, and a new
  // burst can only start after the previous one drains: expect roughly
  // rate * N bursts and burst_len drops per burst.
  EXPECT_NEAR(static_cast<double>(inj.bursts()) / 20000.0, 0.01, 0.004);
  EXPECT_NEAR(static_cast<double>(inj.dropped()) /
                  static_cast<double>(inj.bursts()),
              5.0, 0.5);
}

TEST(FaultInjector, SetParamsSwapsRatesWithoutForkingTheReplayStream) {
  // The chaos scheduler's contract: cranking rates mid-run (a storm) and
  // restoring them must leave the PRNG stream exactly where an untouched
  // injector's stream would be — a replayed run crosses the same swap
  // points and must see the same faults after them.
  FaultParams base;
  base.drop_rate = 0.25;
  FaultInjector steady(base), stormed(base);
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(steady.should_drop(), stormed.should_drop());

  FaultParams storm = base;
  storm.drop_rate = 0.9;
  stormed.set_params(storm);
  int storm_drops = 0;
  for (int i = 0; i < 500; ++i) {
    (void)steady.should_drop();
    if (stormed.should_drop()) ++storm_drops;
  }
  EXPECT_GT(storm_drops, 350);  // the new rate really applied

  stormed.set_params(base);  // storm over: same rates, same stream...
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(steady.should_drop(), stormed.should_drop());
  // ...and the fault counters accumulated across the swap.
  EXPECT_GE(stormed.dropped(), static_cast<std::uint64_t>(storm_drops));
}

TEST(FaultInjector, SetParamsIgnoresTheSeedField) {
  FaultParams base;
  base.drop_rate = 0.5;
  base.seed = 7;
  FaultInjector a(base), b(base);
  FaultParams reseeded = base;
  reseeded.seed = 99999;  // must NOT take effect: reseeding forks the replay
  b.set_params(reseeded);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.should_drop(), b.should_drop());
}

TEST(FaultNetwork, DuplicatesDeliverTwice) {
  HwParams p = HwParams::paper();
  p.faults.duplicate_rate = 1.0;
  Cluster c(2, p);
  auto send = [](Cluster& cl) -> sim::Task {
    Packet pkt;
    pkt.id = cl.node(0).nic().next_packet_id();
    pkt.dest = 1;
    pkt.bytes.assign(64, 0x5A);
    co_await cl.node(0).nic().transmit(std::move(pkt));
  };
  c.sim().spawn(send(c));
  c.sim().run();
  EXPECT_EQ(c.node(1).nic().rx_ring().size(), 2u);
}

TEST(FaultNetwork, ReorderHoldsUntilOvertaken) {
  HwParams p = HwParams::paper();
  p.faults.reorder_rate = 1.0;
  Cluster c(2, p);
  auto send = [](Cluster& cl) -> sim::Task {
    for (std::uint8_t tag = 1; tag <= 2; ++tag) {
      Packet pkt;
      pkt.id = cl.node(0).nic().next_packet_id();
      pkt.dest = 1;
      pkt.bytes.assign(64, tag);
      co_await cl.node(0).nic().transmit(std::move(pkt));
    }
  };
  c.sim().spawn(send(c));
  c.sim().run();
  // Packet 1 was held; packet 2 overtook it and forced its release.
  auto& ring = c.node(1).nic().rx_ring();
  ASSERT_EQ(ring.size(), 2u);
  auto first = ring.try_recv();
  auto second = ring.try_recv();
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_EQ(first->bytes[0], 2);
  EXPECT_EQ(second->bytes[0], 1);
}

TEST(FaultNetwork, FlowControlAloneStallsOnLoss) {
  // The acceptance demonstration for FM-R's existence: plain FM flow
  // control on a lossy network STALLS — a dropped frame is never acked, its
  // window slot never frees, and the sender's drain can never finish. (The
  // companion test below runs the identical workload with FM-R on.)
  FmConfig cfg;  // flow_control on, reliability off: FM 1.0
  Cluster c(2, faulty(0.05, 0.0));
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg);
  std::size_t got = 0;
  HandlerId h = a.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  (void)b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  a.start();
  b.start();
  const std::size_t kMsgs = 200;
  auto tx = [](SimEndpoint& a, HandlerId h, std::size_t n) -> sim::Task {
    for (std::size_t i = 0; i < n; ++i)
      co_await a.send4(1, h, static_cast<std::uint32_t>(i), 0, 0, 0);
    co_await a.drain();  // never returns: lost frames stay unacked forever
    FM_UNREACHABLE("drain finished on a lossy network without FM-R");
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) {
      (void)co_await b.extract_blocking();
      co_await b.drain();
    }
  };
  c.sim().spawn(tx(a, h, kMsgs));
  c.sim().spawn(rx(b));
  c.sim().run_for(sim::ms(200));
  EXPECT_LT(got, kMsgs);     // messages were lost outright
  EXPECT_GT(a.unacked(), 0u);  // and the sender is wedged on their acks
  a.shutdown();
  b.shutdown();
  c.sim().run_for(sim::ms(10));
}

TEST(FaultNetwork, FmRRecoversTheSameWorkload) {
  // Identical network and workload to FlowControlAloneStallsOnLoss, with
  // FM-R on: every message lands exactly once and the drain completes.
  FmConfig cfg;
  cfg.reliability = true;
  cfg.crc_frames = true;
  Cluster c(2, faulty(0.05, 0.0));
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg);
  std::vector<int> got(200, 0);
  HandlerId h = a.register_handler(
      [](SimEndpoint&, NodeId, const void*, std::size_t) {});
  (void)b.register_handler(
      [&](SimEndpoint&, NodeId, const void* data, std::size_t) {
        std::uint32_t tag;
        std::memcpy(&tag, data, 4);
        ++got[tag];
      });
  a.start();
  b.start();
  bool drained = false;
  auto tx = [](SimEndpoint& a, HandlerId h, bool* drained) -> sim::Task {
    for (std::uint32_t i = 0; i < 200; ++i)
      FM_CHECK(ok(co_await a.send4(1, h, i, 0, 0, 0)));
    co_await a.drain();
    *drained = true;
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) {
      (void)co_await b.extract_blocking();
      co_await b.drain();
    }
  };
  c.sim().spawn(tx(a, h, &drained));
  c.sim().spawn(rx(b));
  c.sim().run_while_pending([&] { return drained; });
  EXPECT_TRUE(drained);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(got[i], 1) << "tag " << i;
  EXPECT_GT(a.stats().retransmit_timeouts, 0u);
  EXPECT_EQ(a.stats().peers_dead, 0u);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(FaultNetwork, DeadPeerFailsFastAfterMaxRetries) {
  // Graceful degradation: a peer that never acks (here: 100% loss) is
  // declared dead after max_retries; pending traffic errors out with
  // kPeerDead instead of hanging, and later sends fail immediately.
  FmConfig cfg;
  cfg.reliability = true;
  cfg.max_retries = 3;
  cfg.retransmit_timeout_ns = 50'000;
  Cluster c(2, faulty(1.0, 0.0));
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg);
  HandlerId h = a.register_handler(
      [](SimEndpoint&, NodeId, const void*, std::size_t) {});
  (void)b.register_handler(
      [](SimEndpoint&, NodeId, const void*, std::size_t) {});
  a.start();
  b.start();
  bool done = false;
  auto tx = [](SimEndpoint& a, HandlerId h, bool* done) -> sim::Task {
    FM_CHECK(ok(co_await a.send4(1, h, 1, 2, 3, 4)));
    // drain() terminates because the dead-peer purge empties the window.
    co_await a.drain();
    FM_CHECK(a.peer_dead(1));
    Status s = co_await a.send4(1, h, 5, 6, 7, 8);
    FM_CHECK(s == Status::kPeerDead);
    *done = true;
  };
  c.sim().spawn(tx(a, h, &done));
  c.sim().run_while_pending([&] { return done; });
  EXPECT_TRUE(done);
  EXPECT_EQ(a.stats().peers_dead, 1u);
  EXPECT_EQ(a.stats().retransmit_timeouts, 3u);
  EXPECT_EQ(a.unacked(), 0u);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(FaultNetwork, DropsVanishSilently) {
  Cluster c(2, faulty(1.0, 0.0));  // every packet dropped
  auto send = [](Cluster& cl) -> sim::Task {
    Packet p;
    p.id = cl.node(0).nic().next_packet_id();
    p.dest = 1;
    p.bytes.assign(64, 0x5A);
    co_await cl.node(0).nic().transmit(std::move(p));
  };
  c.sim().spawn(send(c));
  c.sim().run();
  EXPECT_TRUE(c.node(1).nic().rx_ring().empty());
  EXPECT_EQ(c.network().faults().dropped(), 1u);
}

TEST(FaultNetwork, FmDeliveryNotGuaranteedOnLossyNetwork) {
  // §4.5: FM's reliability guarantee presumes a reliable network. With
  // drops, messages vanish and (without flow control) nobody notices —
  // exactly the behaviour the paper documents as out of scope.
  FmConfig cfg;
  cfg.flow_control = false;
  Cluster c(2, faulty(0.3, 0.0));
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg);
  std::size_t got = 0;
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++got; });
  a.start();
  b.start();
  const std::size_t kMsgs = 100;
  auto tx = [](SimEndpoint& a, HandlerId h, std::size_t n) -> sim::Task {
    for (std::size_t i = 0; i < n; ++i) co_await a.send4(1, h, 1, 2, 3, 4);
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, h, kMsgs));
  c.sim().spawn(rx(b));
  c.sim().run_for(sim::ms(50));
  EXPECT_LT(got, kMsgs);               // messages were lost...
  EXPECT_GT(got, kMsgs / 2);           // ...but not all
  EXPECT_GT(c.network().faults().dropped(), 0u);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(FaultNetwork, FmDeliversCorruptedPayloadsSilently) {
  // FM has no checksums: a corrupted payload reaches the handler wrong.
  FmConfig cfg;
  cfg.flow_control = false;
  Cluster c(2, faulty(0.0, 1.0));  // corrupt every packet
  SimEndpoint a(c.node(0), cfg), b(c.node(1), cfg);
  std::size_t wrong = 0, total = 0, malformed_runs = 0;
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [&](SimEndpoint&, NodeId, const void* data, std::size_t len) {
        ++total;
        std::vector<std::uint8_t> expect(len, 0x77);
        if (std::memcmp(data, expect.data(), len) != 0) ++wrong;
      });
  a.start();
  b.start();
  const std::size_t kMsgs = 200;
  auto tx = [](SimEndpoint& a, HandlerId h, std::size_t n) -> sim::Task {
    std::vector<std::uint8_t> buf(64, 0x77);
    for (std::size_t i = 0; i < n; ++i)
      co_await a.send(1, h, buf.data(), buf.size());
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, h, kMsgs));
  c.sim().spawn(rx(b));
  c.sim().run_for(sim::ms(50));
  malformed_runs = b.stats().malformed_frames;
  // Every frame was corrupted: each either arrived with a damaged payload,
  // was dropped as undecodable (header hit), or was silently misrouted to
  // a garbage-but-valid header field.
  EXPECT_GT(total, 0u);
  EXPECT_GT(wrong + malformed_runs, kMsgs / 2);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(FaultNetwork, ApiChecksumCatchesCorruption) {
  // The Myricom API pays for checksums (Table 4's 105 us includes them) and
  // gets detection in return: no corrupted payload is ever delivered.
  Cluster c(2, faulty(0.0, 0.5));
  api::MyriApi a(c.node(0));
  api::MyriApi b(c.node(1));
  a.start();
  b.start();
  const std::size_t kMsgs = 60;
  std::size_t delivered = 0, wrong = 0;
  auto tx = [](api::MyriApi& a, std::size_t n) -> sim::Task {
    std::vector<std::uint8_t> buf(64, 0x33);
    for (std::size_t i = 0; i < n; ++i)
      (void)co_await a.send_imm(1, buf.data(), buf.size());
  };
  auto rx = [](api::MyriApi& b, std::size_t* delivered,
               std::size_t* wrong) -> sim::Task {
    for (;;) {
      auto m = co_await b.receive();
      if (m.has_value()) {
        ++*delivered;
        for (auto byte : m->data)
          if (byte != 0x33) {
            ++*wrong;
            break;
          }
      } else {
        co_await b.delivery_cond().wait();
      }
    }
  };
  c.sim().spawn(tx(a, kMsgs));
  c.sim().spawn(rx(b, &delivered, &wrong));
  c.sim().run_for(sim::ms(50));
  EXPECT_EQ(wrong, 0u);                        // nothing corrupt delivered
  EXPECT_GT(b.checksum_failures(), 0u);        // corruption was detected
  EXPECT_LT(delivered, kMsgs);                 // detected frames discarded
  EXPECT_GT(delivered, 0u);                    // clean frames still flow
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

}  // namespace
}  // namespace fm::hw
