#include "hw/network.h"

#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "hw/nic.h"

namespace fm::hw {
namespace {

Packet make_packet(Nic& from, NodeId dest, std::size_t bytes) {
  Packet p;
  p.id = from.next_packet_id();
  p.dest = dest;
  p.bytes.assign(bytes, 0xA5);
  return p;
}

TEST(Network, SinglePacketLatencyMatchesAppendixA) {
  // Appendix A: l = t_DMA + 12.5ns*N + t_switch = 870ns + 12.5ns*N.
  for (std::size_t n : {16u, 128u, 512u}) {
    Cluster c(2);
    auto send = [](Cluster& cl, std::size_t n) -> sim::Task {
      co_await cl.node(0).nic().transmit(
          make_packet(cl.node(0).nic(), 1, n));
    };
    c.sim().spawn(send(c, n));
    c.sim().run();
    sim::Time expected = sim::ns(320) + sim::ns(550) + sim::ns_f(12.5 * n);
    EXPECT_EQ(c.sim().now(), expected) << "payload " << n;
  }
}

TEST(Network, PacketArrivesWithContentIntact) {
  Cluster c(2);
  auto send = [](Cluster& cl) -> sim::Task {
    Packet p = make_packet(cl.node(0).nic(), 1, 64);
    for (std::size_t i = 0; i < p.bytes.size(); ++i)
      p.bytes[i] = static_cast<std::uint8_t>(i);
    co_await cl.node(0).nic().transmit(std::move(p));
  };
  c.sim().spawn(send(c));
  c.sim().run();
  auto got = c.node(1).nic().rx_ring().try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 0u);
  EXPECT_EQ(got->dest, 1u);
  ASSERT_EQ(got->bytes.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(got->bytes[i], i);
}

TEST(Network, OutputPortContentionSerializes) {
  // Two senders to the same destination: second packet waits for the port.
  Cluster c(3);
  std::vector<sim::Time> done;
  auto send = [](Cluster& cl, NodeId from, std::vector<sim::Time>* out)
      -> sim::Task {
    co_await cl.node(from).nic().transmit(
        make_packet(cl.node(from).nic(), 2, 512));
    out->push_back(cl.sim().now());
  };
  c.sim().spawn(send(c, 0, &done));
  c.sim().spawn(send(c, 1, &done));
  c.sim().run();
  ASSERT_EQ(done.size(), 2u);
  sim::Time wire = sim::ns_f(12.5 * 512);
  // First: setup+switch+wire. Second: waits for port held during wire time.
  EXPECT_EQ(done[0], sim::ns(870) + wire);
  EXPECT_GE(done[1], done[0] + wire);
}

TEST(Network, DistinctDestinationsProceedInParallel) {
  Cluster c(4);
  std::vector<sim::Time> done;
  auto send = [](Cluster& cl, NodeId from, NodeId to,
                 std::vector<sim::Time>* out) -> sim::Task {
    co_await cl.node(from).nic().transmit(
        make_packet(cl.node(from).nic(), to, 512));
    out->push_back(cl.sim().now());
  };
  c.sim().spawn(send(c, 0, 2, &done));
  c.sim().spawn(send(c, 1, 3, &done));
  c.sim().run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], done[1]);  // a crossbar does not serialize these
}

TEST(Network, FullReceiveRingBackpressuresTheWire) {
  Cluster c(2);
  const std::size_t ring = c.params().lanai.rx_ring_frames;
  // Fill the ring, plus one extra packet that must stall.
  auto send_many = [](Cluster& cl, std::size_t count) -> sim::Task {
    for (std::size_t i = 0; i < count; ++i)
      co_await cl.node(0).nic().transmit(make_packet(cl.node(0).nic(), 1, 32));
  };
  c.sim().spawn(send_many(c, ring + 1));
  c.sim().run_until(sim::ms(10));
  // The last packet is still blocked in the network.
  EXPECT_EQ(c.node(1).nic().rx_ring().size(), ring);
  EXPECT_TRUE(c.node(0).nic().out_dma().busy());
  // Draining one slot releases the stalled packet.
  auto drain = c.node(1).nic().rx_ring().try_recv();
  ASSERT_TRUE(drain.has_value());
  c.sim().run();
  EXPECT_FALSE(c.node(0).nic().out_dma().busy());
  EXPECT_EQ(c.node(1).nic().rx_ring().size(), ring);
}

TEST(Network, StartTransmitOverlapsWithLanaiWork) {
  Cluster c(2);
  sim::Time lanai_done = -1, engine_done = -1;
  auto lcp = [](Cluster& cl, sim::Time* lanai_done,
                sim::Time* engine_done) -> sim::Task {
    auto& nic = cl.node(0).nic();
    nic.start_transmit(make_packet(nic, 1, 512));
    co_await nic.lanai().exec(10);  // 1.6us of overlapped work
    *lanai_done = cl.sim().now();
    co_await nic.out_dma().wait_idle();
    *engine_done = cl.sim().now();
  };
  c.sim().spawn(lcp(c, &lanai_done, &engine_done));
  c.sim().run();
  EXPECT_EQ(lanai_done, sim::ns(1600));
  EXPECT_EQ(engine_done, sim::ns(870) + sim::ns_f(12.5 * 512));
  EXPECT_GT(engine_done, lanai_done);  // genuine overlap
}

TEST(Network, HostDmaEngineMovesBytesOverSbus) {
  Cluster c(2);
  auto lcp = [](Cluster& cl) -> sim::Task {
    co_await cl.node(0).nic().host_dma(1024);
  };
  c.sim().spawn(lcp(c));
  c.sim().run();
  EXPECT_EQ(c.node(0).sbus().bytes_dma(), 1024u);
  EXPECT_EQ(c.sim().now(),
            sim::ns(320) + c.node(0).sbus().dma_time(1024));
}

TEST(Network, PacketIdsAreUniqueAcrossNodes) {
  Cluster c(4);
  auto a = c.node(0).nic().next_packet_id();
  auto b = c.node(0).nic().next_packet_id();
  auto d = c.node(3).nic().next_packet_id();
  EXPECT_NE(a, b);
  EXPECT_NE(a, d);
  EXPECT_EQ(a >> 48, 0u);
  EXPECT_EQ(d >> 48, 3u);
}

TEST(Network, SelfSendLoopsThroughSwitch) {
  Cluster c(2);
  auto send = [](Cluster& cl) -> sim::Task {
    co_await cl.node(0).nic().transmit(make_packet(cl.node(0).nic(), 0, 64));
  };
  c.sim().spawn(send(c));
  c.sim().run();
  EXPECT_TRUE(c.node(0).nic().rx_ring().try_recv().has_value());
}

}  // namespace
}  // namespace fm::hw
