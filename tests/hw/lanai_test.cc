#include "hw/lanai.h"

#include <gtest/gtest.h>

#include "hw/params.h"
#include "sim/simulator.h"

namespace fm::hw {
namespace {

TEST(LanaiCpu, InstructionTimeMatchesPaperCharacterization) {
  // 25 MHz, 4 cycles/instr => 160 ns/instr => 6.25 MIPS ("~5 MIPS").
  LanaiParams p;
  EXPECT_EQ(p.instr_time(), sim::ns(160));
  double mips = 1e6 / static_cast<double>(sim::to_ns(p.instr_time()) * 1e3);
  EXPECT_GT(mips, 4.0);
  EXPECT_LT(mips, 8.0);
}

TEST(LanaiCpu, SpoolingA128BytePacketTakesFewInstructions) {
  // Paper §2: "spooling a packet of 128 bytes over the channel takes 1.6us,
  // the equivalent of only about eight to ten LANai instructions!"
  LanaiParams lp;
  LinkParams lk;
  double wire_us = sim::to_us(lk.byte_time * 128);
  double instrs = wire_us / sim::to_us(lp.instr_time());
  EXPECT_NEAR(wire_us, 1.6, 0.05);
  EXPECT_GE(instrs, 8.0);
  EXPECT_LE(instrs, 12.0);
}

TEST(LanaiCpu, ExecAdvancesTimeAndCounts) {
  sim::Simulator sim;
  LanaiParams p;
  LanaiCpu cpu(sim, p);
  auto proc = [](LanaiCpu& c) -> sim::Task {
    co_await c.exec(10);
    co_await c.exec(5);
  };
  sim.spawn(proc(cpu));
  sim.run();
  EXPECT_EQ(sim.now(), p.instr_time() * 15);
  EXPECT_EQ(cpu.executed(), 15u);
}

TEST(LanaiMemory, TracksReservations) {
  LanaiMemory mem(128 * 1024);
  mem.reserve(4096, "send queue");
  mem.reserve(4096, "recv queue");
  EXPECT_EQ(mem.used(), 8192u);
  EXPECT_EQ(mem.free(), 128 * 1024u - 8192u);
}

TEST(LanaiMemoryDeathTest, AbortsOnOverflow) {
  LanaiMemory mem(1024);
  EXPECT_DEATH(mem.reserve(2048, "too big"), "SRAM exhausted");
}

TEST(DmaEngine, BusyIdleLifecycle) {
  sim::Simulator sim;
  DmaEngine e(sim, "test");
  EXPECT_FALSE(e.busy());
  e.begin();
  EXPECT_TRUE(e.busy());
  e.end();
  EXPECT_FALSE(e.busy());
  EXPECT_EQ(e.transfers(), 1u);
}

TEST(DmaEngineDeathTest, DoubleBeginAborts) {
  sim::Simulator sim;
  DmaEngine e(sim, "test");
  e.begin();
  EXPECT_DEATH(e.begin(), "reprogrammed while busy");
}

TEST(DmaEngine, WaitIdleBlocksUntilEnd) {
  sim::Simulator sim;
  DmaEngine e(sim, "test");
  e.begin();
  sim::Time woke = -1;
  auto waiter = [](sim::Simulator& s, DmaEngine& e, sim::Time* t) -> sim::Task {
    co_await e.wait_idle();
    *t = s.now();
  };
  sim.spawn(waiter(sim, e, &woke));
  sim.schedule_fn(sim::us(4), [&] { e.end(); });
  sim.run();
  EXPECT_EQ(woke, sim::us(4));
}

TEST(DmaEngine, WaitIdleReturnsImmediatelyWhenIdle) {
  sim::Simulator sim;
  DmaEngine e(sim, "test");
  sim::Time woke = -1;
  auto waiter = [](sim::Simulator& s, DmaEngine& e, sim::Time* t) -> sim::Task {
    co_await e.wait_idle();
    *t = s.now();
  };
  sim.spawn(waiter(sim, e, &woke));
  sim.run();
  EXPECT_EQ(woke, 0);
}

}  // namespace
}  // namespace fm::hw
