// Tests of the multi-switch cascade fabric (extension): per-hop latency,
// inter-switch bottleneck contention, and the FM layer running across it.
#include <gtest/gtest.h>

#include "fm/sim_endpoint.h"
#include "hw/cluster.h"

namespace fm::hw {
namespace {

Packet mk(Nic& nic, NodeId dest, std::size_t bytes) {
  Packet p;
  p.id = nic.next_packet_id();
  p.dest = dest;
  p.bytes.assign(bytes, 0xA5);
  return p;
}

TEST(Cascade, RoutesCountHops) {
  sim::Simulator sim;
  LinkParams lp;
  CascadeFabric f(sim, lp, /*nodes=*/8, /*per_switch=*/2);
  EXPECT_EQ(f.switches(), 4u);
  EXPECT_EQ(f.hops(0, 1), 1u);  // same switch
  EXPECT_EQ(f.hops(0, 2), 2u);  // adjacent switch
  EXPECT_EQ(f.hops(0, 7), 4u);  // far end
  EXPECT_EQ(f.hops(7, 0), 4u);  // symmetric
  std::vector<sim::BusyResource*> path;
  f.route(0, 7, path);
  EXPECT_EQ(path.size(), 4u);  // 3 cables + delivery port
  path.clear();
  f.route(0, 1, path);
  EXPECT_EQ(path.size(), 1u);
}

TEST(Cascade, LatencyGrowsByOneFallThroughPerHop) {
  // l = 320 ns + hops * 550 ns + 12.5 ns * N, per the Appendix A form
  // generalized to multiple hops.
  for (std::size_t dest : {1u, 2u, 4u, 7u}) {
    Cluster c(8, HwParams::paper(), /*nodes_per_switch=*/2);
    auto send = [](Cluster& cl, NodeId d) -> sim::Task {
      co_await cl.node(0).nic().transmit(mk(cl.node(0).nic(), d, 128));
    };
    c.sim().spawn(send(c, static_cast<NodeId>(dest)));
    c.sim().run();
    auto& fab = static_cast<CascadeFabric&>(c.network());
    sim::Time expect = sim::ns(320) +
                       sim::ns(550) * static_cast<sim::Time>(fab.hops(0, dest)) +
                       sim::ns_f(12.5 * 128);
    EXPECT_EQ(c.sim().now(), expect) << "dest " << dest;
  }
}

TEST(Cascade, InterSwitchCableIsASharedBottleneck) {
  // Two flows crossing the same cascade cable serialize; two flows on
  // disjoint segments do not.
  Cluster c(8, HwParams::paper(), 2);
  std::vector<sim::Time> done;
  auto send = [](Cluster& cl, NodeId from, NodeId to,
                 std::vector<sim::Time>* out) -> sim::Task {
    co_await cl.node(from).nic().transmit(mk(cl.node(from).nic(), to, 512));
    out->push_back(cl.sim().now());
  };
  // Both cross the switch0->switch1 cable.
  c.sim().spawn(send(c, 0, 2, &done));
  c.sim().spawn(send(c, 1, 3, &done));
  c.sim().run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GT(done[1], done[0] + sim::ns_f(12.5 * 512) - sim::ns(1));
  // Disjoint segments: 0->1 (switch 0) and 6->7 (switch 3) run in parallel.
  Cluster c2(8, HwParams::paper(), 2);
  std::vector<sim::Time> done2;
  c2.sim().spawn(send(c2, 0, 1, &done2));
  c2.sim().spawn(send(c2, 6, 7, &done2));
  c2.sim().run();
  ASSERT_EQ(done2.size(), 2u);
  EXPECT_EQ(done2[0], done2[1]);
}

TEST(Cascade, OppositeDirectionsDoNotCollide) {
  // The cascade has one cable per direction: 0->7 and 7->0 streams overlap.
  Cluster c(8, HwParams::paper(), 2);
  std::vector<sim::Time> done;
  auto send = [](Cluster& cl, NodeId from, NodeId to,
                 std::vector<sim::Time>* out) -> sim::Task {
    co_await cl.node(from).nic().transmit(mk(cl.node(from).nic(), to, 512));
    out->push_back(cl.sim().now());
  };
  c.sim().spawn(send(c, 0, 7, &done));
  c.sim().spawn(send(c, 7, 0, &done));
  c.sim().run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], done[1]);
}

TEST(Cascade, FullFmStackRunsAcrossTheFabric) {
  Cluster c(6, HwParams::paper(), 2);
  SimEndpoint a(c.node(0)), b(c.node(5));
  int got = 0;
  (void)a.register_handler([](SimEndpoint&, NodeId, const void*,
                              std::size_t) {});
  HandlerId h = b.register_handler(
      [&](SimEndpoint&, NodeId src, const void*, std::size_t) {
        EXPECT_EQ(src, 0u);
        ++got;
      });
  a.start();
  b.start();
  auto tx = [](SimEndpoint& a, HandlerId h) -> sim::Task {
    for (int i = 0; i < 20; ++i) co_await a.send4(5, h, 1, 2, 3, 4);
    co_await a.drain();
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, h));
  c.sim().spawn(rx(b));
  c.sim().run_while_pending([&] { return got == 20 && a.unacked() == 0; });
  EXPECT_EQ(got, 20);
  a.shutdown();
  b.shutdown();
  c.sim().run();
}

TEST(Cascade, SingleSwitchClusterUnchanged) {
  // Regression guard: the default topology still matches Appendix A.
  Cluster c(2);
  auto send = [](Cluster& cl) -> sim::Task {
    co_await cl.node(0).nic().transmit(mk(cl.node(0).nic(), 1, 128));
  };
  c.sim().spawn(send(c));
  c.sim().run();
  EXPECT_EQ(c.sim().now(), sim::ns(870) + sim::ns(1600));
}

}  // namespace
}  // namespace fm::hw
