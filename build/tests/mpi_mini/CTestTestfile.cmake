# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpi_mini
# Build directory: /root/repo/build/tests/mpi_mini
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mpi_mini/test_mpi_mini[1]_include.cmake")
