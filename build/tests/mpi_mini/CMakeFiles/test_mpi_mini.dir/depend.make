# Empty dependencies file for test_mpi_mini.
# This may be replaced when dependencies are built.
