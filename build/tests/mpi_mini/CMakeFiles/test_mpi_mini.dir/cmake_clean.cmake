file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_mini.dir/comm_test.cc.o"
  "CMakeFiles/test_mpi_mini.dir/comm_test.cc.o.d"
  "test_mpi_mini"
  "test_mpi_mini.pdb"
  "test_mpi_mini[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
