# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("hw")
subdirs("lcp")
subdirs("fm")
subdirs("api")
subdirs("shm")
subdirs("metrics")
subdirs("mpi_mini")
subdirs("stream")
subdirs("rpc")
subdirs("integration")
