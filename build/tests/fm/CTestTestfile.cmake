# CMake generated Testfile for 
# Source directory: /root/repo/tests/fm
# Build directory: /root/repo/build/tests/fm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fm/test_fm[1]_include.cmake")
