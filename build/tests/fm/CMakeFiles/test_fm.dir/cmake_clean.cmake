file(REMOVE_RECURSE
  "CMakeFiles/test_fm.dir/ack_conservation_test.cc.o"
  "CMakeFiles/test_fm.dir/ack_conservation_test.cc.o.d"
  "CMakeFiles/test_fm.dir/config_grid_test.cc.o"
  "CMakeFiles/test_fm.dir/config_grid_test.cc.o.d"
  "CMakeFiles/test_fm.dir/frame_test.cc.o"
  "CMakeFiles/test_fm.dir/frame_test.cc.o.d"
  "CMakeFiles/test_fm.dir/protocol_test.cc.o"
  "CMakeFiles/test_fm.dir/protocol_test.cc.o.d"
  "CMakeFiles/test_fm.dir/sim_endpoint_test.cc.o"
  "CMakeFiles/test_fm.dir/sim_endpoint_test.cc.o.d"
  "CMakeFiles/test_fm.dir/window_mode_test.cc.o"
  "CMakeFiles/test_fm.dir/window_mode_test.cc.o.d"
  "test_fm"
  "test_fm.pdb"
  "test_fm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
