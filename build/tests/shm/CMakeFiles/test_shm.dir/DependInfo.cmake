
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/shm/shm_config_test.cc" "tests/shm/CMakeFiles/test_shm.dir/shm_config_test.cc.o" "gcc" "tests/shm/CMakeFiles/test_shm.dir/shm_config_test.cc.o.d"
  "/root/repo/tests/shm/shm_endpoint_test.cc" "tests/shm/CMakeFiles/test_shm.dir/shm_endpoint_test.cc.o" "gcc" "tests/shm/CMakeFiles/test_shm.dir/shm_endpoint_test.cc.o.d"
  "/root/repo/tests/shm/spsc_ring_test.cc" "tests/shm/CMakeFiles/test_shm.dir/spsc_ring_test.cc.o" "gcc" "tests/shm/CMakeFiles/test_shm.dir/spsc_ring_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/fm_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/fm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/fm_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi_mini/CMakeFiles/fm_mpi_mini.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/fm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/fm_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
