# CMake generated Testfile for 
# Source directory: /root/repo/tests/shm
# Build directory: /root/repo/build/tests/shm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/shm/test_shm[1]_include.cmake")
