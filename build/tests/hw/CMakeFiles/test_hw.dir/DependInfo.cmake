
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/cascade_test.cc" "tests/hw/CMakeFiles/test_hw.dir/cascade_test.cc.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/cascade_test.cc.o.d"
  "/root/repo/tests/hw/fault_test.cc" "tests/hw/CMakeFiles/test_hw.dir/fault_test.cc.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/fault_test.cc.o.d"
  "/root/repo/tests/hw/host_cpu_test.cc" "tests/hw/CMakeFiles/test_hw.dir/host_cpu_test.cc.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/host_cpu_test.cc.o.d"
  "/root/repo/tests/hw/lanai_test.cc" "tests/hw/CMakeFiles/test_hw.dir/lanai_test.cc.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/lanai_test.cc.o.d"
  "/root/repo/tests/hw/network_test.cc" "tests/hw/CMakeFiles/test_hw.dir/network_test.cc.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/network_test.cc.o.d"
  "/root/repo/tests/hw/sbus_test.cc" "tests/hw/CMakeFiles/test_hw.dir/sbus_test.cc.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/sbus_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/fm_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/fm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/fm_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi_mini/CMakeFiles/fm_mpi_mini.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/fm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/fm_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
