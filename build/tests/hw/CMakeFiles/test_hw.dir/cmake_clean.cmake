file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/cascade_test.cc.o"
  "CMakeFiles/test_hw.dir/cascade_test.cc.o.d"
  "CMakeFiles/test_hw.dir/fault_test.cc.o"
  "CMakeFiles/test_hw.dir/fault_test.cc.o.d"
  "CMakeFiles/test_hw.dir/host_cpu_test.cc.o"
  "CMakeFiles/test_hw.dir/host_cpu_test.cc.o.d"
  "CMakeFiles/test_hw.dir/lanai_test.cc.o"
  "CMakeFiles/test_hw.dir/lanai_test.cc.o.d"
  "CMakeFiles/test_hw.dir/network_test.cc.o"
  "CMakeFiles/test_hw.dir/network_test.cc.o.d"
  "CMakeFiles/test_hw.dir/sbus_test.cc.o"
  "CMakeFiles/test_hw.dir/sbus_test.cc.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
