# CMake generated Testfile for 
# Source directory: /root/repo/tests/rpc
# Build directory: /root/repo/build/tests/rpc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rpc/test_rpc[1]_include.cmake")
