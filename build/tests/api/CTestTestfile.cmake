# CMake generated Testfile for 
# Source directory: /root/repo/tests/api
# Build directory: /root/repo/build/tests/api
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/api/test_api[1]_include.cmake")
