file(REMOVE_RECURSE
  "CMakeFiles/test_lcp.dir/host_lcp_test.cc.o"
  "CMakeFiles/test_lcp.dir/host_lcp_test.cc.o.d"
  "CMakeFiles/test_lcp.dir/lcp_base_test.cc.o"
  "CMakeFiles/test_lcp.dir/lcp_base_test.cc.o.d"
  "CMakeFiles/test_lcp.dir/lcp_loops_test.cc.o"
  "CMakeFiles/test_lcp.dir/lcp_loops_test.cc.o.d"
  "test_lcp"
  "test_lcp.pdb"
  "test_lcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
