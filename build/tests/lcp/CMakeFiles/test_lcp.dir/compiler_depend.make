# Empty compiler generated dependencies file for test_lcp.
# This may be replaced when dependencies are built.
