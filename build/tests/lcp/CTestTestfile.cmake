# CMake generated Testfile for 
# Source directory: /root/repo/tests/lcp
# Build directory: /root/repo/build/tests/lcp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lcp/test_lcp[1]_include.cmake")
