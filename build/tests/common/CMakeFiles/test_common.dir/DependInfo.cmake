
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/crc32_test.cc" "tests/common/CMakeFiles/test_common.dir/crc32_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/crc32_test.cc.o.d"
  "/root/repo/tests/common/log_test.cc" "tests/common/CMakeFiles/test_common.dir/log_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/log_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/common/CMakeFiles/test_common.dir/random_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/random_test.cc.o.d"
  "/root/repo/tests/common/ring_buffer_test.cc" "tests/common/CMakeFiles/test_common.dir/ring_buffer_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/ring_buffer_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/common/CMakeFiles/test_common.dir/stats_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/stats_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/common/CMakeFiles/test_common.dir/status_test.cc.o" "gcc" "tests/common/CMakeFiles/test_common.dir/status_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/fm_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/fm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/fm_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi_mini/CMakeFiles/fm_mpi_mini.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/fm_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/fm_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
