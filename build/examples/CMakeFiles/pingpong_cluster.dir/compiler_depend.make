# Empty compiler generated dependencies file for pingpong_cluster.
# This may be replaced when dependencies are built.
