file(REMOVE_RECURSE
  "CMakeFiles/pingpong_cluster.dir/pingpong_cluster.cpp.o"
  "CMakeFiles/pingpong_cluster.dir/pingpong_cluster.cpp.o.d"
  "pingpong_cluster"
  "pingpong_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pingpong_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
