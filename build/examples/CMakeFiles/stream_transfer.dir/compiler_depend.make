# Empty compiler generated dependencies file for stream_transfer.
# This may be replaced when dependencies are built.
