file(REMOVE_RECURSE
  "CMakeFiles/stream_transfer.dir/stream_transfer.cpp.o"
  "CMakeFiles/stream_transfer.dir/stream_transfer.cpp.o.d"
  "stream_transfer"
  "stream_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
