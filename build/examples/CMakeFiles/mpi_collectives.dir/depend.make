# Empty dependencies file for mpi_collectives.
# This may be replaced when dependencies are built.
