file(REMOVE_RECURSE
  "CMakeFiles/mpi_collectives.dir/mpi_collectives.cpp.o"
  "CMakeFiles/mpi_collectives.dir/mpi_collectives.cpp.o.d"
  "mpi_collectives"
  "mpi_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
