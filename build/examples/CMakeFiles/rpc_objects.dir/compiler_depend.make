# Empty compiler generated dependencies file for rpc_objects.
# This may be replaced when dependencies are built.
