file(REMOVE_RECURSE
  "CMakeFiles/rpc_objects.dir/rpc_objects.cpp.o"
  "CMakeFiles/rpc_objects.dir/rpc_objects.cpp.o.d"
  "rpc_objects"
  "rpc_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
