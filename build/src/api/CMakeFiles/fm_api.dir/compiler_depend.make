# Empty compiler generated dependencies file for fm_api.
# This may be replaced when dependencies are built.
