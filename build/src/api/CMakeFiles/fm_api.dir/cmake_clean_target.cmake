file(REMOVE_RECURSE
  "libfm_api.a"
)
