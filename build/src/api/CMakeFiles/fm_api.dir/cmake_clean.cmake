file(REMOVE_RECURSE
  "CMakeFiles/fm_api.dir/myri_api.cc.o"
  "CMakeFiles/fm_api.dir/myri_api.cc.o.d"
  "libfm_api.a"
  "libfm_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
