file(REMOVE_RECURSE
  "libfm_metrics.a"
)
