# Empty dependencies file for fm_metrics.
# This may be replaced when dependencies are built.
