file(REMOVE_RECURSE
  "CMakeFiles/fm_metrics.dir/fit.cc.o"
  "CMakeFiles/fm_metrics.dir/fit.cc.o.d"
  "CMakeFiles/fm_metrics.dir/harness.cc.o"
  "CMakeFiles/fm_metrics.dir/harness.cc.o.d"
  "CMakeFiles/fm_metrics.dir/report.cc.o"
  "CMakeFiles/fm_metrics.dir/report.cc.o.d"
  "libfm_metrics.a"
  "libfm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
