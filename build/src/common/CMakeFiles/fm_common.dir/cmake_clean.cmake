file(REMOVE_RECURSE
  "CMakeFiles/fm_common.dir/crc32.cc.o"
  "CMakeFiles/fm_common.dir/crc32.cc.o.d"
  "CMakeFiles/fm_common.dir/log.cc.o"
  "CMakeFiles/fm_common.dir/log.cc.o.d"
  "CMakeFiles/fm_common.dir/stats.cc.o"
  "CMakeFiles/fm_common.dir/stats.cc.o.d"
  "libfm_common.a"
  "libfm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
