# Empty dependencies file for fm_common.
# This may be replaced when dependencies are built.
