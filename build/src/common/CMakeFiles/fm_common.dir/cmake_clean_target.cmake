file(REMOVE_RECURSE
  "libfm_common.a"
)
