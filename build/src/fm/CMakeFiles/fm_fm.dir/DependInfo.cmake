
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fm/frame.cc" "src/fm/CMakeFiles/fm_fm.dir/frame.cc.o" "gcc" "src/fm/CMakeFiles/fm_fm.dir/frame.cc.o.d"
  "/root/repo/src/fm/sim_endpoint.cc" "src/fm/CMakeFiles/fm_fm.dir/sim_endpoint.cc.o" "gcc" "src/fm/CMakeFiles/fm_fm.dir/sim_endpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
