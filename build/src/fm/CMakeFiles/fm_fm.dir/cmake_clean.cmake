file(REMOVE_RECURSE
  "CMakeFiles/fm_fm.dir/frame.cc.o"
  "CMakeFiles/fm_fm.dir/frame.cc.o.d"
  "CMakeFiles/fm_fm.dir/sim_endpoint.cc.o"
  "CMakeFiles/fm_fm.dir/sim_endpoint.cc.o.d"
  "libfm_fm.a"
  "libfm_fm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
