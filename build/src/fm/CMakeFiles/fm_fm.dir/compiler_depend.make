# Empty compiler generated dependencies file for fm_fm.
# This may be replaced when dependencies are built.
