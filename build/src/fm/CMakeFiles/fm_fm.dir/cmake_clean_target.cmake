file(REMOVE_RECURSE
  "libfm_fm.a"
)
