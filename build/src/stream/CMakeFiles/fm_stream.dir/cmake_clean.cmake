file(REMOVE_RECURSE
  "CMakeFiles/fm_stream.dir/stream.cc.o"
  "CMakeFiles/fm_stream.dir/stream.cc.o.d"
  "libfm_stream.a"
  "libfm_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
