file(REMOVE_RECURSE
  "libfm_stream.a"
)
