# Empty compiler generated dependencies file for fm_stream.
# This may be replaced when dependencies are built.
