file(REMOVE_RECURSE
  "libfm_shm.a"
)
