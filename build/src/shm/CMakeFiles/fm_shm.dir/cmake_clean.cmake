file(REMOVE_RECURSE
  "CMakeFiles/fm_shm.dir/cluster.cc.o"
  "CMakeFiles/fm_shm.dir/cluster.cc.o.d"
  "CMakeFiles/fm_shm.dir/endpoint.cc.o"
  "CMakeFiles/fm_shm.dir/endpoint.cc.o.d"
  "libfm_shm.a"
  "libfm_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
