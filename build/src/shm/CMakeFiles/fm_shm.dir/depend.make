# Empty dependencies file for fm_shm.
# This may be replaced when dependencies are built.
