# CMake generated Testfile for 
# Source directory: /root/repo/src/mpi_mini
# Build directory: /root/repo/build/src/mpi_mini
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
