file(REMOVE_RECURSE
  "libfm_mpi_mini.a"
)
