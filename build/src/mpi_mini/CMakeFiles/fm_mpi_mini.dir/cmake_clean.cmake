file(REMOVE_RECURSE
  "CMakeFiles/fm_mpi_mini.dir/comm.cc.o"
  "CMakeFiles/fm_mpi_mini.dir/comm.cc.o.d"
  "libfm_mpi_mini.a"
  "libfm_mpi_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_mpi_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
