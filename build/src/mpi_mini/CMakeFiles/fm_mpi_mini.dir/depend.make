# Empty dependencies file for fm_mpi_mini.
# This may be replaced when dependencies are built.
