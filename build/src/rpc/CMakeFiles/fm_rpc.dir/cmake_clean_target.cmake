file(REMOVE_RECURSE
  "libfm_rpc.a"
)
