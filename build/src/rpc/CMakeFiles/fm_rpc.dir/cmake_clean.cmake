file(REMOVE_RECURSE
  "CMakeFiles/fm_rpc.dir/rpc.cc.o"
  "CMakeFiles/fm_rpc.dir/rpc.cc.o.d"
  "libfm_rpc.a"
  "libfm_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
