# Empty compiler generated dependencies file for fm_rpc.
# This may be replaced when dependencies are built.
