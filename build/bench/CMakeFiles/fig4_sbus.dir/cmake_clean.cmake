file(REMOVE_RECURSE
  "CMakeFiles/fig4_sbus.dir/fig4_sbus.cc.o"
  "CMakeFiles/fig4_sbus.dir/fig4_sbus.cc.o.d"
  "fig4_sbus"
  "fig4_sbus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
