# Empty dependencies file for fig4_sbus.
# This may be replaced when dependencies are built.
