# Empty compiler generated dependencies file for utilization_report.
# This may be replaced when dependencies are built.
