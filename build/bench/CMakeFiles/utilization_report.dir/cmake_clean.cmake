file(REMOVE_RECURSE
  "CMakeFiles/utilization_report.dir/utilization_report.cc.o"
  "CMakeFiles/utilization_report.dir/utilization_report.cc.o.d"
  "utilization_report"
  "utilization_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utilization_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
