# Empty dependencies file for fig3_lcp_loops.
# This may be replaced when dependencies are built.
