file(REMOVE_RECURSE
  "CMakeFiles/fig3_lcp_loops.dir/fig3_lcp_loops.cc.o"
  "CMakeFiles/fig3_lcp_loops.dir/fig3_lcp_loops.cc.o.d"
  "fig3_lcp_loops"
  "fig3_lcp_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lcp_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
