# Empty compiler generated dependencies file for fig7_bufmgmt.
# This may be replaced when dependencies are built.
