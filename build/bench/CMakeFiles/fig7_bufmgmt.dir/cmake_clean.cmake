file(REMOVE_RECURSE
  "CMakeFiles/fig7_bufmgmt.dir/fig7_bufmgmt.cc.o"
  "CMakeFiles/fig7_bufmgmt.dir/fig7_bufmgmt.cc.o.d"
  "fig7_bufmgmt"
  "fig7_bufmgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bufmgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
