file(REMOVE_RECURSE
  "CMakeFiles/headline_numbers.dir/headline_numbers.cc.o"
  "CMakeFiles/headline_numbers.dir/headline_numbers.cc.o.d"
  "headline_numbers"
  "headline_numbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
