# Empty dependencies file for micro_shm.
# This may be replaced when dependencies are built.
