# Empty dependencies file for ablation_frame_size.
# This may be replaced when dependencies are built.
