file(REMOVE_RECURSE
  "CMakeFiles/ablation_frame_size.dir/ablation_frame_size.cc.o"
  "CMakeFiles/ablation_frame_size.dir/ablation_frame_size.cc.o.d"
  "ablation_frame_size"
  "ablation_frame_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frame_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
