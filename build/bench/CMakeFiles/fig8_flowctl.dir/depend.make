# Empty dependencies file for fig8_flowctl.
# This may be replaced when dependencies are built.
