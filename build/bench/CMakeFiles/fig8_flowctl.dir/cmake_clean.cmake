file(REMOVE_RECURSE
  "CMakeFiles/fig8_flowctl.dir/fig8_flowctl.cc.o"
  "CMakeFiles/fig8_flowctl.dir/fig8_flowctl.cc.o.d"
  "fig8_flowctl"
  "fig8_flowctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_flowctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
