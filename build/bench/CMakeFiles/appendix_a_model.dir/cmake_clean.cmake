file(REMOVE_RECURSE
  "CMakeFiles/appendix_a_model.dir/appendix_a_model.cc.o"
  "CMakeFiles/appendix_a_model.dir/appendix_a_model.cc.o.d"
  "appendix_a_model"
  "appendix_a_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_a_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
