# Empty dependencies file for appendix_a_model.
# This may be replaced when dependencies are built.
