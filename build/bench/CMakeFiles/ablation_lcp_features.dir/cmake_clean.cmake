file(REMOVE_RECURSE
  "CMakeFiles/ablation_lcp_features.dir/ablation_lcp_features.cc.o"
  "CMakeFiles/ablation_lcp_features.dir/ablation_lcp_features.cc.o.d"
  "ablation_lcp_features"
  "ablation_lcp_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lcp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
