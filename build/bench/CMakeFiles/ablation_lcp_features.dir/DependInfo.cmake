
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_lcp_features.cc" "bench/CMakeFiles/ablation_lcp_features.dir/ablation_lcp_features.cc.o" "gcc" "bench/CMakeFiles/ablation_lcp_features.dir/ablation_lcp_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/fm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fm/CMakeFiles/fm_fm.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/fm_api.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
