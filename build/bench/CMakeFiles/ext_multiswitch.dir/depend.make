# Empty dependencies file for ext_multiswitch.
# This may be replaced when dependencies are built.
