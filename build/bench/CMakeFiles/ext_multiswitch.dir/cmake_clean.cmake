file(REMOVE_RECURSE
  "CMakeFiles/ext_multiswitch.dir/ext_multiswitch.cc.o"
  "CMakeFiles/ext_multiswitch.dir/ext_multiswitch.cc.o.d"
  "ext_multiswitch"
  "ext_multiswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
