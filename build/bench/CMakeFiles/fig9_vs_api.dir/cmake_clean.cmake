file(REMOVE_RECURSE
  "CMakeFiles/fig9_vs_api.dir/fig9_vs_api.cc.o"
  "CMakeFiles/fig9_vs_api.dir/fig9_vs_api.cc.o.d"
  "fig9_vs_api"
  "fig9_vs_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vs_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
