# Empty compiler generated dependencies file for fig9_vs_api.
# This may be replaced when dependencies are built.
