#include "obs/trace_ring.h"

#include <cstdio>

#include "obs/dump.h"

namespace fm::obs {

TraceRing::~TraceRing() {
  if (capture_enabled() && enabled_ && size() > 0)
    detail::archive_trace(dump());
  detail::unregister_live_ring(this);
}

std::uint16_t TraceRing::intern(std::string_view category) {
  for (std::size_t i = 0; i < categories_.size(); ++i)
    if (categories_[i] == category) return static_cast<std::uint16_t>(i);
  categories_.emplace_back(category);
  return static_cast<std::uint16_t>(categories_.size() - 1);
}

void TraceRing::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (ring_.size() != capacity) {
    ring_.clear();
    ring_.resize(capacity);
  }
  clear();
  if (!enabled_) detail::register_live_ring(this);
  enabled_ = true;
}

void TraceRing::eventf(std::uint64_t ts_ns, std::uint16_t cat, char phase,
                       std::uint32_t a, std::uint32_t b, const char* fmt,
                       ...) {
  if (!enabled_) return;
  va_list ap;
  va_start(ap, fmt);
  eventv(ts_ns, cat, phase, a, b, fmt, ap);
  va_end(ap);
}

void TraceRing::eventv(std::uint64_t ts_ns, std::uint16_t cat, char phase,
                       std::uint32_t a, std::uint32_t b, const char* fmt,
                       va_list ap) {
  if (!enabled_) return;
  TraceRecord* r = append(ts_ns, cat, phase, a, b);
  int n = std::vsnprintf(r->detail, TraceRecord::kDetailBytes, fmt, ap);
  if (n < 0) {
    r->detail[0] = '\0';
  } else if (static_cast<std::size_t>(n) >= TraceRecord::kDetailBytes) {
    r->flags |= TraceRecord::kClippedFlag;
    ++clipped_;
  }
}

TraceDump TraceRing::dump() const {
  TraceDump d;
  d.scope = scope_;
  d.categories = categories_;
  d.records.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) d.records.push_back(record(i));
  d.dropped = dropped();
  d.clipped = clipped_;
  return d;
}

}  // namespace fm::obs
