#include "obs/dump.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/annotate.h"
#include "obs/chrome_trace.h"

namespace fm::obs {
namespace {

// One mutex guards all the global observability bookkeeping; every path
// through here is cold (object construction/destruction, failure dumps).
// The storage lives in function-local statics (first-use initialization —
// registries constructed before main() must find live storage), so the
// guarded_by relation is expressed on the accessors: each one requires
// g_mu, and the thread-safety build rejects unlocked access.
fm::Mutex g_mu;
std::atomic<bool> g_capture{false};
// Effective chaos/soak seed of the current run (FM-San replayability).
// Plain atomics, not mutex-guarded state — the recording side may be any
// rank/thread mid-run; the flag is released after the value so a reader
// that sees it set also sees the seed.
std::atomic<std::uint64_t> g_run_seed{0};
std::atomic<bool> g_run_seed_set{false};
std::vector<const Registry*>& live_registries_storage() FM_REQUIRES(g_mu) {
  static std::vector<const Registry*> v;
  return v;
}
std::vector<const TraceRing*>& live_rings_storage() FM_REQUIRES(g_mu) {
  static std::vector<const TraceRing*> v;
  return v;
}
std::vector<Sample>& archived_samples_storage() FM_REQUIRES(g_mu) {
  static std::vector<Sample> v;
  return v;
}
std::vector<TraceDump>& archived_traces_storage() FM_REQUIRES(g_mu) {
  static std::vector<TraceDump> v;
  return v;
}

template <typename T>
void erase_ptr(std::vector<const T*>& v, const T* p) {
  v.erase(std::remove(v.begin(), v.end(), p), v.end());
}

bool ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0) return true;
  struct ::stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

void begin_capture() {
  fm::MutexLock lk(g_mu);
  archived_samples_storage().clear();
  archived_traces_storage().clear();
  g_run_seed_set.store(false, std::memory_order_release);
  g_capture.store(true, std::memory_order_release);
}

void end_capture() {
  fm::MutexLock lk(g_mu);
  g_capture.store(false, std::memory_order_release);
  archived_samples_storage().clear();
  archived_traces_storage().clear();
}

bool capture_enabled() { return g_capture.load(std::memory_order_acquire); }

std::vector<Sample> drain_archived_samples() {
  fm::MutexLock lk(g_mu);
  std::vector<Sample> out = std::move(archived_samples_storage());
  archived_samples_storage().clear();
  return out;
}

std::vector<TraceDump> drain_archived_traces() {
  fm::MutexLock lk(g_mu);
  std::vector<TraceDump> out = std::move(archived_traces_storage());
  archived_traces_storage().clear();
  return out;
}

void set_run_seed(std::uint64_t seed) {
  g_run_seed.store(seed, std::memory_order_relaxed);
  g_run_seed_set.store(true, std::memory_order_release);
}

bool run_seed(std::uint64_t* seed) {
  if (!g_run_seed_set.load(std::memory_order_acquire)) return false;
  *seed = g_run_seed.load(std::memory_order_relaxed);
  return true;
}

bool write_failure_dump(const std::string& dir, const std::string& name) {
  if (!ensure_dir(dir)) return false;
  // Live state first (archives grow at destruction, which already happened
  // for anything the test body unwound).
  std::vector<Sample> samples = Registry::snapshot_all();
  {
    fm::MutexLock lk(g_mu);
    auto& arch = archived_samples_storage();
    samples.insert(samples.end(), arch.begin(), arch.end());
  }
  std::vector<TraceDump> traces = detail::dump_live_rings();
  {
    fm::MutexLock lk(g_mu);
    auto& arch = archived_traces_storage();
    traces.insert(traces.end(), arch.begin(), arch.end());
  }

  bool ok = true;
  const std::string reg_path = dir + "/" + name + ".registry.txt";
  if (std::FILE* f = std::fopen(reg_path.c_str(), "w")) {
    std::uint64_t seed = 0;
    if (run_seed(&seed))
      std::fprintf(f,
                   "# effective chaos seed: %llu (replay with "
                   "FM_SAN_SEED=%llu)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
    for (const auto& s : samples)
      std::fprintf(f, "%-48s %.17g%s\n", s.name.c_str(), s.value,
                   s.monotonic ? "" : "  (gauge)");
    std::fclose(f);
  } else {
    ok = false;
  }
  const std::string trace_path = dir + "/" + name + ".trace.json";
  ok = write_chrome_trace_file(trace_path, traces, samples) && ok;
  return ok;
}

namespace detail {

void archive_samples(std::vector<Sample> samples) {
  if (!capture_enabled()) return;
  fm::MutexLock lk(g_mu);
  auto& arch = archived_samples_storage();
  arch.insert(arch.end(), std::make_move_iterator(samples.begin()),
              std::make_move_iterator(samples.end()));
}

void archive_trace(TraceDump dump) {
  if (!capture_enabled()) return;
  fm::MutexLock lk(g_mu);
  archived_traces_storage().push_back(std::move(dump));
}

void register_live_registry(const Registry* r) {
  fm::MutexLock lk(g_mu);
  live_registries_storage().push_back(r);
}

void unregister_live_registry(const Registry* r) {
  fm::MutexLock lk(g_mu);
  erase_ptr(live_registries_storage(), r);
}

void register_live_ring(const TraceRing* t) {
  fm::MutexLock lk(g_mu);
  auto& v = live_rings_storage();
  if (std::find(v.begin(), v.end(), t) == v.end()) v.push_back(t);
}

void unregister_live_ring(const TraceRing* t) {
  fm::MutexLock lk(g_mu);
  erase_ptr(live_rings_storage(), t);
}

std::vector<const Registry*> live_registries() {
  fm::MutexLock lk(g_mu);
  return live_registries_storage();
}

std::vector<TraceDump> dump_live_rings() {
  std::vector<const TraceRing*> rings;
  {
    fm::MutexLock lk(g_mu);
    rings = live_rings_storage();
  }
  std::vector<TraceDump> out;
  out.reserve(rings.size());
  for (const TraceRing* t : rings) out.push_back(t->dump());
  return out;
}

}  // namespace detail
}  // namespace fm::obs
