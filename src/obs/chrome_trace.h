// Chrome trace-event JSON exporter (loadable in Perfetto / chrome://tracing).
//
// Consumes TraceDumps (one per track: an endpoint, a node, a thread) and
// writes the "JSON Array Format" with an object wrapper:
//
//   {"displayTimeUnit":"ns","traceEvents":[
//     {"name":"extract","cat":"extract","ph":"B","ts":1.234,"pid":0,"tid":1,
//      "args":{"a":3,"b":17}}, ... ]}
//
// Guarantees the schema test (tests/obs/chrome_export_test.cc) relies on:
//   * the output parses as one valid JSON document;
//   * "ts" is non-decreasing across the whole traceEvents array (events are
//     globally sorted before emission);
//   * every 'B' has a matching 'E' on the same tid — an unmatched 'B' at
//     the end of a dump gets a synthetic closing 'E' at the dump's last
//     timestamp, and an orphaned 'E' (its 'B' was overwritten by the flight
//     recorder) is demoted to an instant.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace_ring.h"

namespace fm::obs {

/// Writes the dumps as Chrome trace-event JSON; tid is the dump's index,
/// with a thread_name metadata record carrying its scope. `counters`, when
/// non-empty, is emitted once as a trailing "otherData" object so registry
/// snapshots ride along in the same artifact.
void write_chrome_trace(std::FILE* f, const std::vector<TraceDump>& dumps,
                        const std::vector<Sample>& counters = {});

/// Convenience: opens `path`, writes, closes. Returns false on I/O error.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceDump>& dumps,
                             const std::vector<Sample>& counters = {});

}  // namespace fm::obs
