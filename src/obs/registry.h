// FM-Scope counter/gauge registry.
//
// The paper's evaluation is nothing but instrumented counters (t0, r_inf,
// n_1/2, queue occupancy in Figs. 7-8), and its hardest bugs "manifest as
// the numbers looking slightly wrong". This registry makes every number a
// named, enumerable quantity instead of an ad-hoc struct field:
//
//   * A *counter* is a monotonic uint64 cell owned by the instrumented code
//     (e.g. a Stats field). The hot path keeps incrementing a plain member
//     — registering it costs nothing per event; the registry only reads the
//     cell when a snapshot is taken.
//   * A *gauge* is a sampled quantity (queue depth, frames in flight)
//     evaluated lazily via a callback at snapshot time.
//
// Registries are scoped ("shm.node0", "sim.node1") and join a global live
// list so tooling — the dump-on-failure gtest listener, the bench JSON
// writer — can enumerate every instrumented object in the process. Because
// gauges reference sibling members of their owner, a Registry member must
// be declared LAST in its owning class: it is then destroyed first, while
// everything its gauges point at is still alive.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/annotate.h"

namespace fm::obs {

/// One named value read out of a registry.
struct Sample {
  std::string name;  ///< Scope-qualified: "shm.node0.frames_sent".
  double value = 0.0;
  bool monotonic = false;  ///< True for counters, false for gauges.
};

/// A scoped set of counters and gauges. Not thread-safe: register from the
/// owning thread; snapshot from the owning thread (or after it joined).
/// That single-owner contract is an `owner_role_` capability — callers
/// claim it with assert_owner() at the owning side's entry point, and the
/// thread-safety build rejects registration/snapshot calls from code that
/// never established ownership.
class Registry {
 public:
  explicit Registry(std::string scope);
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Claims the owner role for the calling context: "this code runs on the
  /// thread that owns this registry, or after that thread joined". Zero
  /// runtime cost; see common/annotate.h.
  void assert_owner() const FM_ASSERT_CAPABILITY(owner_role_) {}

  /// Registers a monotonic counter backed by `cell`, which must outlive
  /// this registry (declare the Registry after — i.e. below — the cell).
  void counter(const char* name, const std::uint64_t* cell)
      FM_REQUIRES(owner_role_);

  /// Registers a sampled gauge; `fn` is invoked at snapshot time.
  void gauge(const char* name, std::function<double()> fn)
      FM_REQUIRES(owner_role_);

  const std::string& scope() const { return scope_; }

  /// Reads every counter and samples every gauge.
  std::vector<Sample> snapshot() const FM_REQUIRES(owner_role_);

  /// Human-readable dump (one "name value" line per sample).
  void dump(std::FILE* f) const FM_REQUIRES(owner_role_);

  /// Snapshot of every live registry in the process, concatenated.
  /// Counters are plain loads: only call when instrumented threads are
  /// quiescent (e.g. after Cluster::run returned).
  static std::vector<Sample> snapshot_all();

 private:
  struct CounterEntry {
    std::string name;
    const std::uint64_t* cell;
  };
  struct GaugeEntry {
    std::string name;
    std::function<double()> fn;
  };

  std::string scope_;
  /// The single-owner contract as a static capability (no runtime state).
  fm::Role owner_role_;
  std::vector<CounterEntry> counters_ FM_GUARDED_BY(owner_role_);
  std::vector<GaugeEntry> gauges_ FM_GUARDED_BY(owner_role_);
};

}  // namespace fm::obs
