// The shared endpoint counter block and its conservation invariant.
//
// Both backends (fm::SimEndpoint and shm::Endpoint) run the same protocol
// and used to carry two textually-identical ad-hoc Stats structs. This is
// the single definition, plus registration into an obs::Registry so every
// field is an enumerable named counter instead of a private struct member.
#pragma once

#include <cstdint>

#include "obs/registry.h"

namespace fm::obs {

/// Per-endpoint protocol counters. Plain uint64 fields so the hot paths pay
/// exactly one increment per event; the registry reads the cells lazily.
struct EndpointCounters {
  std::uint64_t frames_sent = 0;        ///< Data frames injected (incl. retransmits).
  std::uint64_t frames_received = 0;    ///< Frames taken from the receive queue.
  std::uint64_t messages_sent = 0;      ///< API-level sends accepted for delivery.
  std::uint64_t messages_delivered = 0; ///< Handler dispatches.
  std::uint64_t acks_piggybacked = 0;   ///< Acks carried on data frames.
  std::uint64_t acks_standalone = 0;    ///< Standalone ack frames sent.
  std::uint64_t rejects_issued = 0;     ///< Frames we returned to senders.
  std::uint64_t rejects_received = 0;   ///< Our frames returned to us.
  std::uint64_t retransmissions = 0;    ///< Frames re-injected (reject + timeout).
  std::uint64_t malformed_frames = 0;   ///< Undecodable wire garbage dropped.
  // FM-R reliability counters (all zero unless cfg.reliability/crc_frames).
  std::uint64_t retransmit_timeouts = 0;   ///< Timer-driven retransmissions.
  std::uint64_t duplicates_suppressed = 0; ///< Dup frames acked, not delivered.
  std::uint64_t crc_drops = 0;             ///< Frames failing CRC verification.
  std::uint64_t peers_dead = 0;            ///< Peers declared dead (max retries).
  std::uint64_t reassemblies_expired = 0;  ///< Half-assembled slots reclaimed.
  // Conservation accounting (see Conservation below).
  std::uint64_t messages_abandoned = 0;   ///< Sends that failed at a dead peer
                                          ///< after being counted sent.
  std::uint64_t frames_discarded_dead = 0;///< Window/reject frames purged when
                                          ///< a peer was declared dead.

  /// Registers every field as a named counter in `r`. The counters struct
  /// must outlive the registry (declare the Registry after it).
  void register_into(Registry& r) const {
    // The registering code registers into a registry it owns; claim the
    // role here so every backend constructor passes the thread-safety
    // build without each repeating the claim.
    r.assert_owner();
    r.counter("frames_sent", &frames_sent);
    r.counter("frames_received", &frames_received);
    r.counter("messages_sent", &messages_sent);
    r.counter("messages_delivered", &messages_delivered);
    r.counter("acks_piggybacked", &acks_piggybacked);
    r.counter("acks_standalone", &acks_standalone);
    r.counter("rejects_issued", &rejects_issued);
    r.counter("rejects_received", &rejects_received);
    r.counter("retransmissions", &retransmissions);
    r.counter("malformed_frames", &malformed_frames);
    r.counter("retransmit_timeouts", &retransmit_timeouts);
    r.counter("duplicates_suppressed", &duplicates_suppressed);
    r.counter("crc_drops", &crc_drops);
    r.counter("peers_dead", &peers_dead);
    r.counter("reassemblies_expired", &reassemblies_expired);
    r.counter("messages_abandoned", &messages_abandoned);
    r.counter("frames_discarded_dead", &frames_discarded_dead);
  }
};

/// The counter-conservation invariant over a closed set of endpoints: after
/// a full drain, every message counted sent was delivered at some peer or
/// abandoned at a dead one. Strict equality requires peers_dead == 0 across
/// the set — once a peer dies, frames already in flight to it vanish
/// without sender-side message accounting, so the check degrades to an
/// inequality (nothing is delivered that was never sent).
struct Conservation {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t peers_dead = 0;

  void add(const EndpointCounters& c) {
    sent += c.messages_sent;
    delivered += c.messages_delivered;
    abandoned += c.messages_abandoned;
    peers_dead += c.peers_dead;
  }

  /// True when the strict invariant holds (only guaranteed when
  /// peers_dead == 0 and all endpoints drained).
  bool balanced() const { return sent == delivered + abandoned; }
  /// Weak form that always holds in a closed, drained cluster.
  bool no_spontaneous_messages() const { return delivered + abandoned <= sent; }
  /// Signed imbalance (0 when balanced; positive = messages lost).
  std::int64_t imbalance() const {
    return static_cast<std::int64_t>(sent) -
           static_cast<std::int64_t>(delivered) -
           static_cast<std::int64_t>(abandoned);
  }
};

}  // namespace fm::obs
