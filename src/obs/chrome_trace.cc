#include "obs/chrome_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace fm::obs {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct FlatEvent {
  std::uint64_t ts_ns = 0;
  int tid = 0;
  char phase = 'i';
  const TraceDump* dump = nullptr;
  const TraceRecord* rec = nullptr;  // null for synthetic closing 'E's
  std::uint16_t cat = 0;             // valid when rec is null
};

void emit_event(std::FILE* f, bool* first, const FlatEvent& e,
                std::uint64_t t0_ns) {
  const std::uint16_t cid = e.rec != nullptr ? e.rec->cat : e.cat;
  const std::string& name = cid < e.dump->categories.size()
                                ? e.dump->categories[cid]
                                : e.dump->scope;
  std::fprintf(f, "%s\n    {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
               "\"ts\":%.3f,\"pid\":0,\"tid\":%d",
               *first ? "" : ",", escape(name).c_str(), escape(name).c_str(),
               e.phase, static_cast<double>(e.ts_ns - t0_ns) / 1e3, e.tid);
  *first = false;
  if (e.phase == 'C') {
    // Counter events: the sampled values live directly in args.
    std::fprintf(f, ",\"args\":{\"a\":%u,\"b\":%u}}",
                 e.rec ? e.rec->a : 0u, e.rec ? e.rec->b : 0u);
    return;
  }
  if (e.rec != nullptr) {
    std::fprintf(f, ",\"args\":{\"a\":%u,\"b\":%u", e.rec->a, e.rec->b);
    if (e.rec->detail[0] != '\0')
      std::fprintf(f, ",\"detail\":\"%s\"",
                   escape(e.rec->detail).c_str());
    if (e.rec->clipped()) std::fprintf(f, ",\"clipped\":true");
    std::fprintf(f, "}");
  } else {
    std::fprintf(f, ",\"args\":{\"synthetic_close\":true}");
  }
  std::fprintf(f, "}");
}

}  // namespace

void write_chrome_trace(std::FILE* f, const std::vector<TraceDump>& dumps,
                        const std::vector<Sample>& counters) {
  // Flatten, then sort globally by timestamp (stable: intra-track order —
  // and therefore B-before-E at equal timestamps — survives).
  std::vector<FlatEvent> events;
  for (std::size_t d = 0; d < dumps.size(); ++d)
    for (const TraceRecord& r : dumps[d].records)
      events.push_back(FlatEvent{r.ts_ns, static_cast<int>(d), r.phase,
                                 &dumps[d], &r, r.cat});
  std::stable_sort(events.begin(), events.end(),
                   [](const FlatEvent& x, const FlatEvent& y) {
                     return x.ts_ns < y.ts_ns;
                   });
  std::uint64_t t0 = events.empty() ? 0 : events.front().ts_ns;
  std::uint64_t t_end = events.empty() ? 0 : events.back().ts_ns;

  // Per-track duration matching: orphaned 'E's (their 'B' was overwritten
  // by the flight recorder) demote to instants; unclosed 'B's get synthetic
  // 'E's appended at the final timestamp, keeping ts monotonic.
  std::vector<std::vector<std::uint16_t>> open(dumps.size());
  for (FlatEvent& e : events) {
    if (e.phase == 'B') {
      open[e.tid].push_back(e.rec->cat);
    } else if (e.phase == 'E') {
      if (open[e.tid].empty())
        e.phase = 'i';
      else
        open[e.tid].pop_back();
    }
  }
  std::vector<FlatEvent> closers;
  for (std::size_t d = 0; d < dumps.size(); ++d)
    while (!open[d].empty()) {
      closers.push_back(FlatEvent{t_end, static_cast<int>(d), 'E', &dumps[d],
                                  nullptr, open[d].back()});
      open[d].pop_back();
    }

  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  // Track names first (metadata, ts 0 <= every normalized timestamp).
  for (std::size_t d = 0; d < dumps.size(); ++d) {
    std::fprintf(f, "%s\n    {\"name\":\"thread_name\",\"ph\":\"M\","
                 "\"ts\":0.000,\"pid\":0,\"tid\":%d,"
                 "\"args\":{\"name\":\"%s\"}}",
                 first ? "" : ",", static_cast<int>(d),
                 escape(dumps[d].scope).c_str());
    first = false;
  }
  for (const FlatEvent& e : events) emit_event(f, &first, e, t0);
  for (const FlatEvent& e : closers) emit_event(f, &first, e, t0);
  std::fprintf(f, "\n  ]");

  // Loss accounting and registry snapshots ride along as otherData.
  std::fprintf(f, ",\n  \"otherData\":{");
  bool ofirst = true;
  for (std::size_t d = 0; d < dumps.size(); ++d) {
    std::fprintf(f, "%s\n    \"%s.trace_dropped\":%llu,",
                 ofirst ? "" : ",", escape(dumps[d].scope).c_str(),
                 static_cast<unsigned long long>(dumps[d].dropped));
    std::fprintf(f, "\n    \"%s.trace_clipped\":%llu",
                 escape(dumps[d].scope).c_str(),
                 static_cast<unsigned long long>(dumps[d].clipped));
    ofirst = false;
  }
  for (const Sample& s : counters) {
    double v = std::isfinite(s.value) ? s.value : 0.0;
    std::fprintf(f, "%s\n    \"%s\":%.17g", ofirst ? "" : ",",
                 escape(s.name).c_str(), v);
    ofirst = false;
  }
  std::fprintf(f, "\n  }\n}\n");
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceDump>& dumps,
                             const std::vector<Sample>& counters) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_chrome_trace(f, dumps, counters);
  return std::fclose(f) == 0;
}

}  // namespace fm::obs
