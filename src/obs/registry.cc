#include "obs/registry.h"

#include "obs/dump.h"

namespace fm::obs {

Registry::Registry(std::string scope) : scope_(std::move(scope)) {
  detail::register_live_registry(this);
}

Registry::~Registry() {
  // Destruction is an owner-side act by definition.
  assert_owner();
  if (capture_enabled()) detail::archive_samples(snapshot());
  detail::unregister_live_registry(this);
}

void Registry::counter(const char* name, const std::uint64_t* cell) {
  counters_.push_back(CounterEntry{scope_ + "." + name, cell});
}

void Registry::gauge(const char* name, std::function<double()> fn) {
  gauges_.push_back(GaugeEntry{scope_ + "." + name, std::move(fn)});
}

std::vector<Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& c : counters_)
    out.push_back(Sample{c.name, static_cast<double>(*c.cell), true});
  for (const auto& g : gauges_) out.push_back(Sample{g.name, g.fn(), false});
  return out;
}

void Registry::dump(std::FILE* f) const {
  for (const auto& s : snapshot())
    std::fprintf(f, "%-48s %.17g%s\n", s.name.c_str(), s.value,
                 s.monotonic ? "" : "  (gauge)");
}

std::vector<Sample> Registry::snapshot_all() {
  std::vector<Sample> out;
  for (const Registry* r : detail::live_registries()) {
    // Documented precondition: instrumented threads are quiescent, so the
    // caller holds every owner role at once.
    r->assert_owner();
    auto s = r->snapshot();
    out.insert(out.end(), s.begin(), s.end());
  }
  return out;
}

}  // namespace fm::obs
