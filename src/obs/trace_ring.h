// FM-Scope structured trace sink: a preallocated flight recorder of
// fixed-size POD records, cheap enough for the shm hot path.
//
// The sim-only Trace (sim/trace.h) paid two heap std::strings per record
// and silently truncated details — fine for a coroutine simulator, fatal
// for a transport whose steady state is proven allocation-free
// (tests/shm/shm_alloc_test.cc). This ring fixes both:
//
//   * Categories are interned once at setup time; the hot path stores a
//     16-bit id.
//   * Records are 64 bytes (one cache line), written in place into a
//     buffer preallocated by enable(). A disabled ring costs one branch
//     per event; an enabled ring costs one record write and never touches
//     the heap.
//   * The ring is a flight recorder: when full it overwrites the oldest
//     record and counts the loss in dropped(). Formatted details that do
//     not fit are clipped, flagged on the record, and counted in
//     clipped() — truncation is always reported, never silent.
//
// Phases follow the Chrome trace-event convention so exports map 1:1:
// 'B'/'E' bracket a duration, 'i' is an instant, 'C' samples counters.
#pragma once

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/annotate.h"

namespace fm::obs {

/// One fixed-size trace record (exactly one cache line).
struct TraceRecord {
  static constexpr std::size_t kDetailBytes = 44;

  std::uint64_t ts_ns = 0;  ///< Timebase owned by the producer (sim or wall).
  std::uint16_t cat = 0;    ///< Interned category id.
  char phase = 'i';         ///< 'B', 'E', 'i', or 'C'.
  std::uint8_t flags = 0;   ///< kClippedFlag.
  std::uint32_t a = 0;      ///< POD payload (e.g. peer id).
  std::uint32_t b = 0;      ///< POD payload (e.g. sequence number).
  char detail[kDetailBytes] = {0};  ///< NUL-terminated text; may be empty.

  static constexpr std::uint8_t kClippedFlag = 1;
  bool clipped() const { return (flags & kClippedFlag) != 0; }
};
static_assert(sizeof(TraceRecord) == 64, "trace records must stay one line");
// Records are memcpy'd into dumps and written raw into the preallocated
// ring; both moves assume plain-old-data layout with no padding surprises.
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "trace records are copied as raw bytes");
static_assert(alignof(TraceRecord) <= 64,
              "record alignment must not exceed the cache-line stride");
static_assert(offsetof(TraceRecord, detail) + TraceRecord::kDetailBytes ==
                  sizeof(TraceRecord),
              "detail text must be the trailing field, packed to the end");

/// A cold copy of a ring's contents, exportable after the ring is gone.
struct TraceDump {
  std::string scope;                    ///< Track name for exporters.
  std::vector<std::string> categories;  ///< Indexed by TraceRecord::cat.
  std::vector<TraceRecord> records;     ///< Oldest first.
  std::uint64_t dropped = 0;
  std::uint64_t clipped = 0;
};

/// The trace ring. Single-writer, like the endpoint that owns it. The
/// writer side is a `writer_role_` capability (common/annotate.h): every
/// mutating entry point requires it, the owning thread claims it once via
/// assert_writer(), and the thread-safety build rejects writes from code
/// that never established ownership. Reads (size/record/dump) stay
/// unannotated — the documented pattern is to read only from the writer
/// or after it quiesced, which exporters do via the cold dump() copy.
class TraceRing {
 public:
  TraceRing() = default;
  explicit TraceRing(std::string scope) : scope_(std::move(scope)) {}
  ~TraceRing();
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Claims the writer role for the calling context (the single thread
  /// that owns this ring). Zero runtime cost; see common/annotate.h.
  void assert_writer() const FM_ASSERT_CAPABILITY(writer_role_) {}

  void set_scope(std::string scope) FM_REQUIRES(writer_role_) {
    scope_ = std::move(scope);
  }
  const std::string& scope() const { return scope_; }

  /// Interns `category` (idempotent), returning its id. Setup-time only:
  /// may allocate on first sight of a name.
  std::uint16_t intern(std::string_view category) FM_REQUIRES(writer_role_);
  const std::string& category(std::uint16_t id) const {
    return categories_[id];
  }

  /// Preallocates `capacity` records and starts recording. Re-enabling
  /// clears prior records (and resizes if the capacity changed).
  void enable(std::size_t capacity = kDefaultCapacity)
      FM_REQUIRES(writer_role_);
  void disable() FM_REQUIRES(writer_role_) { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Hot path: appends one record. Never allocates; overwrites the oldest
  /// record (counting it dropped) when the ring is full.
  FM_HOT_PATH void event(std::uint64_t ts_ns, std::uint16_t cat, char phase,
                         std::uint32_t a = 0, std::uint32_t b = 0)
      FM_REQUIRES(writer_role_) {
    if (!enabled_) return;
    append(ts_ns, cat, phase, a, b)->detail[0] = '\0';
  }

  /// Cold path: appends a record with printf-formatted detail text. Details
  /// longer than TraceRecord::kDetailBytes-1 are clipped and counted.
  FM_COLD_PATH void eventf(std::uint64_t ts_ns, std::uint16_t cat, char phase,
                           std::uint32_t a, std::uint32_t b, const char* fmt,
                           ...) FM_REQUIRES(writer_role_)
      __attribute__((format(printf, 7, 8)));
  FM_COLD_PATH void eventv(std::uint64_t ts_ns, std::uint16_t cat, char phase,
                           std::uint32_t a, std::uint32_t b, const char* fmt,
                           va_list ap) FM_REQUIRES(writer_role_);

  /// Records currently held (<= capacity once the recorder wraps).
  std::size_t size() const { return count_ < ring_.size() ? count_ : ring_.size(); }
  std::size_t capacity() const { return ring_.size(); }
  /// Oldest-first access: index 0 is the oldest surviving record.
  const TraceRecord& record(std::size_t i) const {
    std::size_t oldest = count_ > ring_.size() ? pos_ : 0;
    std::size_t idx = oldest + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    return ring_[idx];
  }

  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const {
    return count_ > ring_.size() ? count_ - ring_.size() : 0;
  }
  /// Records whose detail text was truncated.
  std::uint64_t clipped() const { return clipped_; }

  /// Forgets all records (capacity and categories are kept).
  void clear() FM_REQUIRES(writer_role_) {
    count_ = 0;
    pos_ = 0;
    clipped_ = 0;
  }

  /// Cold copy of everything an exporter needs.
  TraceDump dump() const;

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  FM_HOT_PATH TraceRecord* append(std::uint64_t ts_ns, std::uint16_t cat,
                                  char phase, std::uint32_t a, std::uint32_t b)
      FM_REQUIRES(writer_role_) {
    TraceRecord* r = &ring_[pos_];
    r->ts_ns = ts_ns;
    r->cat = cat;
    r->phase = phase;
    r->flags = 0;
    r->a = a;
    r->b = b;
    if (++pos_ == ring_.size()) pos_ = 0;
    ++count_;
    return r;
  }

  std::string scope_;
  /// Single-writer discipline as a static capability (no runtime state).
  fm::Role writer_role_;
  std::vector<TraceRecord> ring_;
  std::vector<std::string> categories_;
  std::size_t pos_ = 0;       // next write index
  std::uint64_t count_ = 0;   // total records ever appended
  std::uint64_t clipped_ = 0;
  bool enabled_ = false;
};

}  // namespace fm::obs
