// FM-Scope structured trace sink: a preallocated flight recorder of
// fixed-size POD records, cheap enough for the shm hot path.
//
// The sim-only Trace (sim/trace.h) paid two heap std::strings per record
// and silently truncated details — fine for a coroutine simulator, fatal
// for a transport whose steady state is proven allocation-free
// (tests/shm/shm_alloc_test.cc). This ring fixes both:
//
//   * Categories are interned once at setup time; the hot path stores a
//     16-bit id.
//   * Records are 64 bytes (one cache line), written in place into a
//     buffer preallocated by enable(). A disabled ring costs one branch
//     per event; an enabled ring costs one record write and never touches
//     the heap.
//   * The ring is a flight recorder: when full it overwrites the oldest
//     record and counts the loss in dropped(). Formatted details that do
//     not fit are clipped, flagged on the record, and counted in
//     clipped() — truncation is always reported, never silent.
//
// Phases follow the Chrome trace-event convention so exports map 1:1:
// 'B'/'E' bracket a duration, 'i' is an instant, 'C' samples counters.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace fm::obs {

/// One fixed-size trace record (exactly one cache line).
struct TraceRecord {
  static constexpr std::size_t kDetailBytes = 44;

  std::uint64_t ts_ns = 0;  ///< Timebase owned by the producer (sim or wall).
  std::uint16_t cat = 0;    ///< Interned category id.
  char phase = 'i';         ///< 'B', 'E', 'i', or 'C'.
  std::uint8_t flags = 0;   ///< kClippedFlag.
  std::uint32_t a = 0;      ///< POD payload (e.g. peer id).
  std::uint32_t b = 0;      ///< POD payload (e.g. sequence number).
  char detail[kDetailBytes] = {0};  ///< NUL-terminated text; may be empty.

  static constexpr std::uint8_t kClippedFlag = 1;
  bool clipped() const { return (flags & kClippedFlag) != 0; }
};
static_assert(sizeof(TraceRecord) == 64, "trace records must stay one line");

/// A cold copy of a ring's contents, exportable after the ring is gone.
struct TraceDump {
  std::string scope;                    ///< Track name for exporters.
  std::vector<std::string> categories;  ///< Indexed by TraceRecord::cat.
  std::vector<TraceRecord> records;     ///< Oldest first.
  std::uint64_t dropped = 0;
  std::uint64_t clipped = 0;
};

/// The trace ring. Single-writer, like the endpoint that owns it.
class TraceRing {
 public:
  TraceRing() = default;
  explicit TraceRing(std::string scope) : scope_(std::move(scope)) {}
  ~TraceRing();
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void set_scope(std::string scope) { scope_ = std::move(scope); }
  const std::string& scope() const { return scope_; }

  /// Interns `category` (idempotent), returning its id. Setup-time only:
  /// may allocate on first sight of a name.
  std::uint16_t intern(std::string_view category);
  const std::string& category(std::uint16_t id) const {
    return categories_[id];
  }

  /// Preallocates `capacity` records and starts recording. Re-enabling
  /// clears prior records (and resizes if the capacity changed).
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  /// Hot path: appends one record. Never allocates; overwrites the oldest
  /// record (counting it dropped) when the ring is full.
  void event(std::uint64_t ts_ns, std::uint16_t cat, char phase,
             std::uint32_t a = 0, std::uint32_t b = 0) {
    if (!enabled_) return;
    append(ts_ns, cat, phase, a, b)->detail[0] = '\0';
  }

  /// Cold path: appends a record with printf-formatted detail text. Details
  /// longer than TraceRecord::kDetailBytes-1 are clipped and counted.
  void eventf(std::uint64_t ts_ns, std::uint16_t cat, char phase,
              std::uint32_t a, std::uint32_t b, const char* fmt, ...)
      __attribute__((format(printf, 7, 8)));
  void eventv(std::uint64_t ts_ns, std::uint16_t cat, char phase,
              std::uint32_t a, std::uint32_t b, const char* fmt, va_list ap);

  /// Records currently held (<= capacity once the recorder wraps).
  std::size_t size() const { return count_ < ring_.size() ? count_ : ring_.size(); }
  std::size_t capacity() const { return ring_.size(); }
  /// Oldest-first access: index 0 is the oldest surviving record.
  const TraceRecord& record(std::size_t i) const {
    std::size_t oldest = count_ > ring_.size() ? pos_ : 0;
    std::size_t idx = oldest + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    return ring_[idx];
  }

  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const {
    return count_ > ring_.size() ? count_ - ring_.size() : 0;
  }
  /// Records whose detail text was truncated.
  std::uint64_t clipped() const { return clipped_; }

  /// Forgets all records (capacity and categories are kept).
  void clear() {
    count_ = 0;
    pos_ = 0;
    clipped_ = 0;
  }

  /// Cold copy of everything an exporter needs.
  TraceDump dump() const;

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  TraceRecord* append(std::uint64_t ts_ns, std::uint16_t cat, char phase,
                      std::uint32_t a, std::uint32_t b) {
    TraceRecord* r = &ring_[pos_];
    r->ts_ns = ts_ns;
    r->cat = cat;
    r->phase = phase;
    r->flags = 0;
    r->a = a;
    r->b = b;
    if (++pos_ == ring_.size()) pos_ = 0;
    ++count_;
    return r;
  }

  std::string scope_;
  std::vector<TraceRecord> ring_;
  std::vector<std::string> categories_;
  std::size_t pos_ = 0;       // next write index
  std::uint64_t count_ = 0;   // total records ever appended
  std::uint64_t clipped_ = 0;
  bool enabled_ = false;
};

}  // namespace fm::obs
