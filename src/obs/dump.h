// Dump-on-failure support: when a test fails, write every registry
// snapshot and trace ring the test produced — including ones whose owners
// were destroyed when the test body unwound — to an artifact directory CI
// can upload.
//
// Flow (driven by the gtest listener in tests/support/fm_test_main.cc):
//   begin_capture()            — OnTestStart: arm archiving, clear archives
//   ... test runs; Registry/TraceRing destructors archive their final
//       state while capture is armed ...
//   write_failure_dump(...)    — on failure: archived + still-live state
//                                -> <dir>/<test>.registry.txt
//                                   <dir>/<test>.trace.json
//   end_capture()              — OnTestEnd: disarm, clear archives
#pragma once

#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace_ring.h"

namespace fm::obs {

/// Arms destructor-time archiving and clears previously archived state
/// (including any recorded run seed).
void begin_capture();
/// Disarms archiving and clears archives.
void end_capture();
/// True between begin_capture() and end_capture().
bool capture_enabled();

/// Archived state accumulated since begin_capture() (destructor-archived
/// registries/rings, oldest first). Draining clears the archive.
std::vector<Sample> drain_archived_samples();
std::vector<TraceDump> drain_archived_traces();

/// Records the effective chaos/soak RNG seed of the current run. The
/// failure dump embeds it and the gtest listener prints it, so any chaos
/// failure is replayable with FM_SAN_SEED=<seed>. Thread-safe; the latest
/// call wins (a run has one effective seed).
void set_run_seed(std::uint64_t seed);
/// Reads the recorded seed; false when none was recorded since the last
/// begin_capture().
bool run_seed(std::uint64_t* seed);

/// Writes <dir>/<name>.registry.txt (archived + live registry samples) and
/// <dir>/<name>.trace.json (archived + live trace rings as a Chrome trace),
/// creating `dir` if needed. Returns true when both files were written.
bool write_failure_dump(const std::string& dir, const std::string& name);

namespace detail {
// Destructor hooks (no-ops unless capture is armed).
void archive_samples(std::vector<Sample> samples);
void archive_trace(TraceDump dump);
// Live-object bookkeeping for Registry::snapshot_all() and the failure dump.
void register_live_registry(const Registry* r);
void unregister_live_registry(const Registry* r);
void register_live_ring(const TraceRing* t);
void unregister_live_ring(const TraceRing* t);
std::vector<const Registry*> live_registries();
std::vector<TraceDump> dump_live_rings();
}  // namespace detail

}  // namespace fm::obs
