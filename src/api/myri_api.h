// Model of the Myricom-supplied "Myrinet API" host library (§4.6, Table 3).
//
// The comparison baseline. Two send interfaces, exactly as the paper
// benchmarks them:
//   myri_cmd_send_imm() — "uses the processor to move data to the LANai"
//   myri_cmd_send()     — "uses DMA" (host stages into the DMA region, the
//                         LANai fetches by DMA; supports scatter-gather)
//
// Table 3 semantics as modeled:
//   Delivery        not guaranteed (no acks, no retransmission)
//   Delivery order  preserved (single FIFO path end to end)
//   Buffering       small number of large buffers
//   Fault detection message checksums (computed in the LANai, costed there;
//                   verified on real bytes here for the simulated wire)
//
// The per-message host<->LANai pointer handshake — "synchronization between
// the host and the LANai is expensive, yet must be done frequently in the
// Myrinet API, to pass buffer pointers back and forth" — is modeled
// faithfully: each send *blocks* until the LCP reports the command complete,
// which is why the API's streaming period is as bad as its latency.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "hw/cluster.h"
#include "lcp/api_lcp.h"
#include "sim/op.h"

namespace fm::api {

/// A received API message.
struct Message {
  NodeId src = kInvalidNode;
  std::vector<std::uint8_t> data;
};

/// The Myricom API host endpoint (one per node).
class MyriApi {
 public:
  explicit MyriApi(hw::Node& node)
      : node_(node),
        host_rx_(node.nic().lanai().simulator(),
                 node.params().queues.host_recv_frames),
        lcp_(node, node.params()) {
    lcp_.attach_host_recv(&host_rx_);
  }
  MyriApi(const MyriApi&) = delete;
  MyriApi& operator=(const MyriApi&) = delete;

  /// Boots the API control program.
  void start() { lcp_.start(); }
  /// Stops it.
  void shutdown() { lcp_.request_stop(); }

  /// myri_cmd_send_imm(): processor-mediated data movement. Blocks until
  /// the LCP completes the command (buffer-pointer handshake).
  sim::Op<Status> send_imm(NodeId dest, const void* buf, std::size_t len);

  /// myri_cmd_send(): DMA-mode send. The host stages the message into the
  /// pinned DMA region (memory-to-memory copy), posts a descriptor, and
  /// waits for the pointer to come back.
  sim::Op<Status> send(NodeId dest, const void* buf, std::size_t len);

  /// One element of a scatter-gather list.
  struct Iovec {
    const void* base;
    std::size_t len;
  };

  /// Gathering DMA-mode send (Table 3: the API "supports scatter-gather
  /// operations"). Each element is staged into the DMA region; the LANai
  /// walks the descriptor list (extra per-element interpretation cost) and
  /// transmits one wire message.
  sim::Op<Status> send_gather(NodeId dest, const Iovec* iov,
                              std::size_t iovcnt);

  /// Polls for one delivered message (pays the API's receive-side buffer
  /// management cost when one is present).
  sim::Op<std::optional<Message>> receive();

  /// Blocks until a message is available.
  sim::Op<Message> receive_blocking();

  /// Condition notified on delivery.
  sim::Condition& delivery_cond() { return host_rx_.arrived(); }
  NodeId id() const { return node_.id(); }
  lcp::ApiLcp& control_program() { return lcp_; }

  /// Messages sent / received (diagnostics).
  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  /// Messages discarded because their checksum failed (Table 3: "Fault
  /// Detection: message checksums").
  std::uint64_t checksum_failures() const { return checksum_failures_; }

 private:
  // Builds the command, enqueues it, and performs the completion handshake.
  sim::Op<Status> submit(NodeId dest, const void* buf, std::size_t len,
                         bool dma_mode, std::size_t sg_elements = 1);

  hw::Node& node_;
  lcp::HostRecvQueue host_rx_;
  lcp::ApiLcp lcp_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t checksum_failures_ = 0;
};

}  // namespace fm::api
