#include "api/myri_api.h"

#include <cstring>

#include "common/crc32.h"

namespace fm::api {

sim::Op<Status> MyriApi::send_imm(NodeId dest, const void* buf,
                                  std::size_t len) {
  co_return co_await submit(dest, buf, len, /*dma_mode=*/false);
}

sim::Op<Status> MyriApi::send(NodeId dest, const void* buf, std::size_t len) {
  co_return co_await submit(dest, buf, len, /*dma_mode=*/true);
}

sim::Op<Status> MyriApi::send_gather(NodeId dest, const Iovec* iov,
                                     std::size_t iovcnt) {
  if (iovcnt == 0 || iov == nullptr) co_return Status::kBadArgument;
  std::vector<std::uint8_t> flat;
  for (std::size_t i = 0; i < iovcnt; ++i) {
    if (iov[i].len > 0 && iov[i].base == nullptr)
      co_return Status::kBadArgument;
    const auto* b = static_cast<const std::uint8_t*>(iov[i].base);
    flat.insert(flat.end(), b, b + iov[i].len);
  }
  co_return co_await submit(dest, flat.data(), flat.size(),
                            /*dma_mode=*/true, iovcnt);
}

sim::Op<Status> MyriApi::submit(NodeId dest, const void* buf, std::size_t len,
                                bool dma_mode, std::size_t sg_elements) {
  if (len > 0 && buf == nullptr) co_return Status::kBadArgument;
  auto& cpu = node_.cpu();
  auto& sbus = node_.sbus();
  const auto& hc = node_.params().hostsw;

  // Build the command descriptor (buffer validation, scatter-gather list,
  // routing lookup — the API does much more per send than FM does). Each
  // additional scatter-gather element costs descriptor-build time and a
  // larger descriptor on the bus.
  co_await cpu.exec(hc.api_send_setup_cycles +
                    20 * static_cast<int>(sg_elements - 1));

  hw::Packet pkt;
  pkt.id = node_.nic().next_packet_id();
  pkt.dest = dest;
  const auto* bytes = static_cast<const std::uint8_t*>(buf);
  pkt.bytes.assign(bytes, bytes + len);
  // Real CRC-32 trailer: the LANai-side computation cost is charged in
  // ApiLcp; the value itself travels with the message so corruption on the
  // wire is detected (Table 3's fault-detection row).
  const std::uint32_t crc = crc32(pkt.bytes.data(), pkt.bytes.size());
  pkt.bytes.insert(pkt.bytes.end(),
                   reinterpret_cast<const std::uint8_t*>(&crc),
                   reinterpret_cast<const std::uint8_t*>(&crc) + 4);
  if (dma_mode) {
    // Stage into the pinned DMA region, then post a small descriptor
    // (one entry per scatter-gather element).
    pkt.meta = lcp::kApiMetaDmaFetch;
    co_await cpu.memcpy_op(len);
    co_await sbus.pio_write(16 + 16 * sg_elements);
  } else {
    // Immediate mode: the processor spools the data into LANai memory.
    co_await sbus.pio_write(len);
    co_await sbus.pio_write(32);  // the descriptor itself
  }

  // Wait for a command slot, then enqueue and ring the doorbell.
  while (lcp_.send_space() == 0) {
    co_await sbus.pio_read();
    if (lcp_.send_space() == 0) co_await lcp_.host_wake().wait();
  }
  const std::uint64_t target = lcp_.commands_completed() + 1;
  bool queued = lcp_.host_enqueue(std::move(pkt));
  FM_CHECK_MSG(queued, "API command queue raced");
  co_await sbus.pio_write(8);  // doorbell

  // The buffer-pointer handshake: spin (uncached SBus reads) until the LCP
  // reports the command complete. This is the API's structural cost.
  while (lcp_.commands_completed() < target) {
    co_await sbus.pio_read();
    if (lcp_.commands_completed() < target)
      co_await lcp_.host_wake().wait();
  }
  ++sent_;
  co_return Status::kOk;
}

sim::Op<std::optional<Message>> MyriApi::receive() {
  auto& cpu = node_.cpu();
  const auto& hc = node_.params().hostsw;
  co_await cpu.exec(hc.fm_poll_cycles);  // cheap queue poll
  hw::Packet pkt;
  if (!host_rx_.take(pkt)) co_return std::nullopt;
  // Receive-side buffer management: pass a fresh buffer pointer down to the
  // LANai, update descriptors.
  co_await cpu.exec(hc.api_recv_cycles);
  co_await node_.sbus().pio_write(8);
  node_.nic().ring_doorbell();
  // Verify and strip the CRC trailer; a corrupt message is discarded (the
  // API detects faults but, like FM, does not guarantee delivery).
  if (pkt.bytes.size() < 4) {
    ++checksum_failures_;
    co_return std::nullopt;
  }
  std::uint32_t wire_crc;
  std::memcpy(&wire_crc, pkt.bytes.data() + pkt.bytes.size() - 4, 4);
  pkt.bytes.resize(pkt.bytes.size() - 4);
  if (crc32(pkt.bytes.data(), pkt.bytes.size()) != wire_crc) {
    ++checksum_failures_;
    co_return std::nullopt;
  }
  Message m;
  m.src = pkt.src;
  m.data = std::move(pkt.bytes);
  ++received_;
  co_return m;
}

sim::Op<Message> MyriApi::receive_blocking() {
  for (;;) {
    auto m = co_await receive();
    if (m.has_value()) co_return std::move(*m);
    co_await host_rx_.arrived().wait();
  }
}

}  // namespace fm::api
