#include "rpc/rpc.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace fm::rpc {
namespace {
constexpr std::size_t kHeader = 7;  // u8 kind + u16 method + u32 call_id
constexpr std::uint8_t kRequest = 0, kReply = 1, kCast = 2;

std::vector<std::uint8_t> pack(std::uint8_t kind, std::uint16_t method,
                               std::uint32_t call_id, const void* data,
                               std::size_t len) {
  std::vector<std::uint8_t> wire(kHeader + len);
  wire[0] = kind;
  std::memcpy(wire.data() + 1, &method, 2);
  std::memcpy(wire.data() + 3, &call_id, 4);
  if (len) std::memcpy(wire.data() + kHeader, data, len);
  return wire;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RpcEngine::RpcEngine(shm::Endpoint& ep, const RpcConfig& cfg)
    : ep_(ep), cfg_(cfg) {
  handler_ = ep_.register_handler(
      [this](shm::Endpoint&, NodeId src, const void* data, std::size_t len) {
        on_message(src, data, len);
      });
}

Future RpcEngine::call(NodeId target, std::uint16_t method, const void* args,
                       std::size_t len) {
  return call_deadline(target, method, args, len, cfg_.default_deadline_ns);
}

Future RpcEngine::call_deadline(NodeId target, std::uint16_t method,
                                const void* args, std::size_t len,
                                std::uint64_t deadline_ns) {
  FM_CHECK_MSG(method < methods_.size(), "unregistered method");
  // Bounded window: service the endpoint until a slot frees. The deadline
  // sweep inside poll() releases slots of overdue calls, so progress is
  // guaranteed whenever deadlines are in use.
  while (inflight_ >= cfg_.max_inflight) {
    poll();
    std::this_thread::yield();
  }
  std::uint32_t id = next_call_++;
  PendingCall& pc = pending_[id];
  pc.target = target;
  pc.status = Status::kAgain;
  pc.deadline_abs_ns = deadline_ns == 0 ? 0 : now_ns() + deadline_ns;
  ++inflight_;
  ++stats_.calls_sent;
  auto wire = pack(kRequest, method, id, args, len);
  Status s = ep_.send(target, handler_, wire.data(), wire.size());
  if (s == Status::kPeerDead) {
    abandon(id, Status::kPeerDead);
    return Future(*this, id);
  }
  FM_CHECK_MSG(ok(s), "rpc request send failed");
  return Future(*this, id);
}

void RpcEngine::cast(NodeId target, std::uint16_t method, const void* args,
                     std::size_t len) {
  FM_CHECK_MSG(method < methods_.size(), "unregistered method");
  auto wire = pack(kCast, method, 0, args, len);
  Status s = ep_.send_or_post(target, handler_, wire.data(), wire.size());
  FM_CHECK_MSG(ok(s), "rpc cast send failed");
}

void RpcEngine::poll() {
  ep_.extract();
  sweep();
}

void RpcEngine::sweep() {
  if (inflight_ == 0) return;
  const std::uint64_t t = now_ns();
  for (auto& [id, pc] : pending_) {
    if (pc.status != Status::kAgain) continue;
    if (pc.deadline_abs_ns != 0 && t >= pc.deadline_abs_ns) {
      abandon(id, Status::kDeadline);
    } else if (ep_.peer_dead(pc.target)) {
      abandon(id, Status::kPeerDead);
    }
  }
}

void RpcEngine::abandon(std::uint32_t call_id, Status why) {
  PendingCall* pc = find(call_id);
  FM_CHECK(pc != nullptr && pc->status == Status::kAgain);
  pc->status = why;
  --inflight_;
  ++stats_.calls_abandoned;
}

RpcEngine::PendingCall* RpcEngine::find(std::uint32_t call_id) {
  auto it = pending_.find(call_id);
  return it == pending_.end() ? nullptr : &it->second;
}

void RpcEngine::on_message(NodeId src, const void* data, std::size_t len) {
  FM_CHECK_MSG(len >= kHeader, "runt rpc message");
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint8_t kind = bytes[0];
  std::uint16_t method;
  std::uint32_t call_id;
  std::memcpy(&method, bytes + 1, 2);
  std::memcpy(&call_id, bytes + 3, 4);
  const void* payload = bytes + kHeader;
  const std::size_t payload_len = len - kHeader;
  switch (kind) {
    case kRequest: {
      FM_CHECK_MSG(method < methods_.size(), "rpc to unregistered method");
      std::vector<std::uint8_t> result =
          methods_[method](src, payload, payload_len);
      auto wire = pack(kReply, method, call_id, result.data(), result.size());
      // We are in handler context: post the reply.
      Status s = ep_.send_or_post(src, handler_, wire.data(), wire.size());
      FM_CHECK_MSG(ok(s), "rpc reply send failed");
      break;
    }
    case kCast: {
      FM_CHECK_MSG(method < methods_.size(), "rpc to unregistered method");
      (void)methods_[method](src, payload, payload_len);
      break;
    }
    case kReply: {
      PendingCall* pc = find(call_id);
      if (pc == nullptr || pc->status != Status::kAgain) {
        // The slot was released (deadline, cancel, dead-peer verdict) or
        // the id was never ours: a late reply racing FM-R's retransmit
        // horizon. Tolerated, counted, dropped.
        ++stats_.orphan_replies;
        break;
      }
      pc->status = Status::kOk;
      pc->reply.assign(static_cast<const std::uint8_t*>(payload),
                       static_cast<const std::uint8_t*>(payload) +
                           payload_len);
      --inflight_;
      ++stats_.replies_delivered;
      break;
    }
    default:
      FM_UNREACHABLE("bad rpc kind");
  }
}

bool Future::ready() {
  engine_->poll();
  const RpcEngine::PendingCall* pc = engine_->find(call_id_);
  FM_CHECK_MSG(pc != nullptr, "future already consumed");
  return pc->status != Status::kAgain;
}

Status Future::status() const {
  const RpcEngine::PendingCall* pc = engine_->find(call_id_);
  FM_CHECK_MSG(pc != nullptr, "future already consumed");
  return pc->status;
}

void Future::cancel() {
  RpcEngine::PendingCall* pc = engine_->find(call_id_);
  if (pc == nullptr || pc->status != Status::kAgain) return;  // resolved
  engine_->abandon(call_id_, Status::kCancelled);
}

std::vector<std::uint8_t>& Future::wait() {
  while (!ready()) {
    if (engine_->ep_.extract() == 0) std::this_thread::yield();
  }
  RpcEngine::PendingCall* pc = engine_->find(call_id_);
  FM_CHECK_MSG(pc->status == Status::kOk,
               "rpc call failed; use wait_result() for fallible calls");
  return pc->reply;
}

Status Future::wait_result(std::vector<std::uint8_t>& out) {
  while (!ready()) {
    if (engine_->ep_.extract() == 0) std::this_thread::yield();
  }
  auto it = engine_->pending_.find(call_id_);
  const Status st = it->second.status;
  if (st == Status::kOk) out = std::move(it->second.reply);
  engine_->pending_.erase(it);
  return st;
}

}  // namespace fm::rpc
