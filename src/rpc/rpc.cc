#include "rpc/rpc.h"

#include <cstring>
#include <thread>

namespace fm::rpc {
namespace {
constexpr std::size_t kHeader = 7;  // u8 kind + u16 method + u32 call_id
constexpr std::uint8_t kRequest = 0, kReply = 1, kCast = 2;

std::vector<std::uint8_t> pack(std::uint8_t kind, std::uint16_t method,
                               std::uint32_t call_id, const void* data,
                               std::size_t len) {
  std::vector<std::uint8_t> wire(kHeader + len);
  wire[0] = kind;
  std::memcpy(wire.data() + 1, &method, 2);
  std::memcpy(wire.data() + 3, &call_id, 4);
  if (len) std::memcpy(wire.data() + kHeader, data, len);
  return wire;
}

}  // namespace

RpcEngine::RpcEngine(shm::Endpoint& ep) : ep_(ep) {
  handler_ = ep_.register_handler(
      [this](shm::Endpoint&, NodeId src, const void* data, std::size_t len) {
        on_message(src, data, len);
      });
}

Future RpcEngine::call(NodeId target, std::uint16_t method, const void* args,
                       std::size_t len) {
  FM_CHECK_MSG(method < methods_.size(), "unregistered method");
  std::uint32_t id = next_call_++;
  reply_ready_[id] = false;
  auto wire = pack(kRequest, method, id, args, len);
  Status s = ep_.send(target, handler_, wire.data(), wire.size());
  FM_CHECK_MSG(ok(s), "rpc request send failed");
  return Future(*this, id);
}

void RpcEngine::cast(NodeId target, std::uint16_t method, const void* args,
                     std::size_t len) {
  FM_CHECK_MSG(method < methods_.size(), "unregistered method");
  auto wire = pack(kCast, method, 0, args, len);
  Status s = ep_.send_or_post(target, handler_, wire.data(), wire.size());
  FM_CHECK_MSG(ok(s), "rpc cast send failed");
}

void RpcEngine::on_message(NodeId src, const void* data, std::size_t len) {
  FM_CHECK_MSG(len >= kHeader, "runt rpc message");
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint8_t kind = bytes[0];
  std::uint16_t method;
  std::uint32_t call_id;
  std::memcpy(&method, bytes + 1, 2);
  std::memcpy(&call_id, bytes + 3, 4);
  const void* payload = bytes + kHeader;
  const std::size_t payload_len = len - kHeader;
  switch (kind) {
    case kRequest: {
      FM_CHECK_MSG(method < methods_.size(), "rpc to unregistered method");
      std::vector<std::uint8_t> result =
          methods_[method](src, payload, payload_len);
      auto wire = pack(kReply, method, call_id, result.data(), result.size());
      // We are in handler context: post the reply.
      Status s = ep_.send_or_post(src, handler_, wire.data(), wire.size());
      FM_CHECK_MSG(ok(s), "rpc reply send failed");
      break;
    }
    case kCast: {
      FM_CHECK_MSG(method < methods_.size(), "rpc to unregistered method");
      (void)methods_[method](src, payload, payload_len);
      break;
    }
    case kReply: {
      auto it = reply_ready_.find(call_id);
      FM_CHECK_MSG(it != reply_ready_.end() && !it->second,
                   "reply for unknown or completed call");
      it->second = true;
      replies_[call_id].assign(static_cast<const std::uint8_t*>(payload),
                               static_cast<const std::uint8_t*>(payload) +
                                   payload_len);
      break;
    }
    default:
      FM_UNREACHABLE("bad rpc kind");
  }
}

bool RpcEngine::take_reply(std::uint32_t call_id,
                           std::vector<std::uint8_t>& out) {
  auto it = reply_ready_.find(call_id);
  FM_CHECK_MSG(it != reply_ready_.end(), "future already consumed");
  if (!it->second) return false;
  out = std::move(replies_[call_id]);
  return true;
}

bool Future::ready() {
  engine_->poll();
  auto it = engine_->reply_ready_.find(call_id_);
  return it != engine_->reply_ready_.end() && it->second;
}

std::vector<std::uint8_t>& Future::wait() {
  // Service the network until the reply lands.
  while (!engine_->reply_ready_.at(call_id_)) {
    if (engine_->ep_.extract() == 0) std::this_thread::yield();
  }
  return engine_->replies_.at(call_id_);
}

}  // namespace fm::rpc
