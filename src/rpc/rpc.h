// fm::rpc — request/reply remote invocation over FM, in the spirit of the
// Illinois Concert runtime (§7's third layering target: "a fine-grained
// programming system which depends critically on low-cost high performance
// communication").
//
// FM deliberately has no request-reply coupling ("Each message carries a
// pointer to a sender-specified function... in FM there is no notion of
// request-reply coupling"); this layer builds it: registered methods,
// call-ids matching replies to pending calls, and a poll-driven Future.
// Everything rides the three-call FM API.
//
// Serving-plane hardening (used by src/serve's API contract):
//   * deadlines    — a call may carry one; when it expires the Future
//     resolves kDeadline and the call's window slot is released, so one
//     lost peer cannot wedge the caller. A reply that arrives after the
//     slot was released is an *orphan*: tolerated and counted, never a
//     crash (the FM-R retransmit horizon can legitimately outlast a tight
//     deadline).
//   * cancellation — cancel() resolves a pending Future kCancelled and
//     releases its slot; the late reply, if any, is an orphan.
//   * bounded window — at most RpcConfig::max_inflight calls outstanding;
//     call() services the endpoint until a slot frees (deadline expiry
//     guarantees progress when deadlines are set).
//   * conservation — calls_sent == replies_delivered + calls_abandoned +
//     pending() at every quiescent point (tests/rpc/rpc_deadline_test).
//
// One RpcEngine per node thread, wrapping that thread's shm::Endpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/types.h"
#include "shm/cluster.h"

namespace fm::rpc {

class RpcEngine;

/// RPC-layer tunables.
struct RpcConfig {
  /// Outstanding calls before call() blocks servicing the endpoint.
  std::size_t max_inflight = 64;
  /// Deadline applied by the two-argument call(); 0 = none.
  std::uint64_t default_deadline_ns = 0;
};

/// Conservation ledger: calls_sent == replies_delivered + calls_abandoned
/// + pending slots, always.
struct RpcStats {
  std::uint64_t calls_sent = 0;         ///< Requests issued (reply expected).
  std::uint64_t replies_delivered = 0;  ///< Futures resolved kOk.
  std::uint64_t calls_abandoned = 0;    ///< Resolved kDeadline / kCancelled /
                                        ///< kPeerDead (slot released early).
  std::uint64_t orphan_replies = 0;     ///< Replies for released slots.
};

/// Handle to an outstanding remote call. Poll-driven (FM style): ready()
/// and wait() service the endpoint.
class Future {
 public:
  /// True once the call resolved — with a reply OR a failure (services the
  /// network and the deadline sweep).
  bool ready();
  /// Blocks (polling) until the call resolves with a reply; returns the
  /// reply bytes. Checks-fails if it resolved kDeadline / kCancelled /
  /// kPeerDead — use wait_result() when failure is an expected outcome.
  std::vector<std::uint8_t>& wait();
  /// Blocks (polling) until the call resolves either way. kOk fills `out`.
  Status wait_result(std::vector<std::uint8_t>& out);
  /// Resolution so far: kAgain while pending, else the final status.
  Status status() const;
  /// Cancels the call if still pending (resolves it kCancelled and tells
  /// nobody — the reply, if one comes, is an orphan).
  void cancel();

 private:
  friend class RpcEngine;
  Future(RpcEngine& engine, std::uint32_t call_id)
      : engine_(&engine), call_id_(call_id) {}
  RpcEngine* engine_;
  std::uint32_t call_id_;
};

/// Per-node RPC engine.
class RpcEngine {
 public:
  /// A method: request bytes in, reply bytes out. Runs on the callee's
  /// thread inside extract (keep it non-blocking, like an FM handler).
  using Method = std::function<std::vector<std::uint8_t>(
      NodeId caller, const void* data, std::size_t len)>;

  /// Wraps `ep`. Construct at the same handler-registration point on every
  /// node (SPMD).
  explicit RpcEngine(shm::Endpoint& ep, const RpcConfig& cfg = RpcConfig());
  RpcEngine(const RpcEngine&) = delete;
  RpcEngine& operator=(const RpcEngine&) = delete;

  /// Registers a method; all nodes must register the same methods in the
  /// same order. Returns the method id used by call().
  std::uint16_t register_method(Method fn) {
    methods_.push_back(std::move(fn));
    return static_cast<std::uint16_t>(methods_.size() - 1);
  }

  /// Starts a remote invocation; the Future resolves with the reply (or,
  /// under the config's default deadline, kDeadline).
  Future call(NodeId target, std::uint16_t method, const void* args,
              std::size_t len);

  /// As call(), with an explicit deadline this many ns from now (0 = no
  /// deadline).
  Future call_deadline(NodeId target, std::uint16_t method, const void* args,
                       std::size_t len, std::uint64_t deadline_ns);

  /// Fire-and-forget invocation (reply, if any, is discarded).
  void cast(NodeId target, std::uint16_t method, const void* args,
            std::size_t len);

  /// Services the endpoint once and sweeps deadlines / dead peers.
  void poll();

  /// Calls whose slots are still held (unresolved).
  std::size_t pending() const { return inflight_; }
  const RpcStats& stats() const { return stats_; }

  shm::Endpoint& endpoint() { return ep_; }

 private:
  friend class Future;

  struct PendingCall {
    NodeId target = 0;
    Status status = Status::kAgain;  ///< kAgain = unresolved.
    std::uint64_t deadline_abs_ns = 0;  ///< 0 = none.
    std::vector<std::uint8_t> reply;
  };

  // Wire: [u8 kind][u16 method][u32 call_id][payload]
  //   kind 0 = request expecting a reply, 1 = reply, 2 = one-way cast
  void on_message(NodeId src, const void* data, std::size_t len);
  /// Fails overdue / dead-peer calls, releasing their window slots.
  void sweep();
  /// Resolves a pending call with a failure and releases its window slot;
  /// the entry stays until the Future consumes the status.
  void abandon(std::uint32_t call_id, Status why);
  PendingCall* find(std::uint32_t call_id);

  shm::Endpoint& ep_;
  RpcConfig cfg_;
  HandlerId handler_;
  std::vector<Method> methods_;
  std::uint32_t next_call_ = 1;
  /// Unresolved calls (holding window slots) and resolved-but-unconsumed
  /// results; erased when the Future consumes them.
  std::map<std::uint32_t, PendingCall> pending_;
  std::size_t inflight_ = 0;  ///< Unresolved subset of pending_.
  RpcStats stats_;
};

}  // namespace fm::rpc
