// fm::rpc — request/reply remote invocation over FM, in the spirit of the
// Illinois Concert runtime (§7's third layering target: "a fine-grained
// programming system which depends critically on low-cost high performance
// communication").
//
// FM deliberately has no request-reply coupling ("Each message carries a
// pointer to a sender-specified function... in FM there is no notion of
// request-reply coupling"); this layer builds it: registered methods,
// call-ids matching replies to pending calls, and a poll-driven Future.
// Everything rides the three-call FM API.
//
// One RpcEngine per node thread, wrapping that thread's shm::Endpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "shm/cluster.h"

namespace fm::rpc {

class RpcEngine;

/// Handle to an outstanding remote call. Poll-driven (FM style): ready()
/// and wait() service the endpoint.
class Future {
 public:
  /// True once the reply has arrived (services the network).
  bool ready();
  /// Blocks (polling) until the reply arrives; returns the reply bytes.
  std::vector<std::uint8_t>& wait();

 private:
  friend class RpcEngine;
  Future(RpcEngine& engine, std::uint32_t call_id)
      : engine_(&engine), call_id_(call_id) {}
  RpcEngine* engine_;
  std::uint32_t call_id_;
};

/// Per-node RPC engine.
class RpcEngine {
 public:
  /// A method: request bytes in, reply bytes out. Runs on the callee's
  /// thread inside extract (keep it non-blocking, like an FM handler).
  using Method = std::function<std::vector<std::uint8_t>(
      NodeId caller, const void* data, std::size_t len)>;

  /// Wraps `ep`. Construct at the same handler-registration point on every
  /// node (SPMD).
  explicit RpcEngine(shm::Endpoint& ep);
  RpcEngine(const RpcEngine&) = delete;
  RpcEngine& operator=(const RpcEngine&) = delete;

  /// Registers a method; all nodes must register the same methods in the
  /// same order. Returns the method id used by call().
  std::uint16_t register_method(Method fn) {
    methods_.push_back(std::move(fn));
    return static_cast<std::uint16_t>(methods_.size() - 1);
  }

  /// Starts a remote invocation; the Future resolves with the reply.
  Future call(NodeId target, std::uint16_t method, const void* args,
              std::size_t len);

  /// Fire-and-forget invocation (reply, if any, is discarded).
  void cast(NodeId target, std::uint16_t method, const void* args,
            std::size_t len);

  /// Services the endpoint once.
  void poll() { ep_.extract(); }

  shm::Endpoint& endpoint() { return ep_; }

 private:
  friend class Future;

  // Wire: [u8 kind][u16 method][u32 call_id][payload]
  //   kind 0 = request expecting a reply, 1 = reply, 2 = one-way cast
  void on_message(NodeId src, const void* data, std::size_t len);
  bool take_reply(std::uint32_t call_id, std::vector<std::uint8_t>& out);

  shm::Endpoint& ep_;
  HandlerId handler_;
  std::vector<Method> methods_;
  std::uint32_t next_call_ = 1;
  std::map<std::uint32_t, std::vector<std::uint8_t>> replies_;
  std::map<std::uint32_t, bool> reply_ready_;
};

}  // namespace fm::rpc
