// FM-San round schedules: deterministic all-to-all traffic shapes.
//
// The NIC-based collective work (Yu et al.) motivates round-structured
// all-to-all as the stress shape that exposes slow or lossy ranks which
// pairwise pingpong hides: in a *shift* round every rank i sends to
// (i + s) mod N, a permutation, so N-1 consecutive shift rounds cover every
// ordered pair exactly once with no receiver ever oversubscribed. An
// *incast* round deliberately oversubscribes one receiver — the other N-1
// ranks all target it — to exercise the return-to-sender admission path
// (§4.5 rejects under reassembly pressure).
//
// Everything here is pure arithmetic on (nodes, round): no clock, no RNG,
// no endpoint. Two ranks agree on the whole schedule by construction, which
// is what lets the soak driver run without per-round barriers.
#pragma once

#include <cstddef>

#include "common/check.h"
#include "common/types.h"

namespace fm::san {

enum class RoundKind { kShift, kIncast };

/// One round of the schedule, fully determined by (nodes, round index).
struct RoundPlan {
  RoundKind kind = RoundKind::kShift;
  /// kShift: rank i sends to (i + shift) mod nodes (1 <= shift < nodes).
  std::size_t shift = 1;
  /// kIncast: every other rank sends to this target; the target answers.
  NodeId target = 0;
};

/// The deterministic round scheduler shared by every rank of a soak.
class RoundSchedule {
 public:
  /// `incast_every` > 0 makes every incast_every-th round an incast round
  /// (targets rotate); 0 disables incast rounds. Needs >= 2 nodes.
  RoundSchedule(std::size_t nodes, std::size_t rounds,
                std::size_t incast_every = 0)
      : nodes_(nodes), rounds_(rounds), incast_every_(incast_every) {
    FM_CHECK_MSG(nodes >= 2, "an all-to-all needs at least two ranks");
  }

  std::size_t nodes() const { return nodes_; }
  std::size_t rounds() const { return rounds_; }

  RoundPlan plan(std::size_t round) const {
    FM_CHECK(round < rounds_);
    RoundPlan p;
    if (is_incast(round)) {
      p.kind = RoundKind::kIncast;
      p.target = static_cast<NodeId>((round / incast_every_) % nodes_);
      return p;
    }
    // Count only shift rounds so consecutive shift rounds walk the shifts
    // 1..nodes-1 in order: any window of nodes-1 shift rounds covers every
    // ordered pair exactly once.
    std::size_t shift_index = round;
    if (incast_every_ > 0) shift_index -= round / incast_every_;
    p.kind = RoundKind::kShift;
    p.shift = 1 + shift_index % (nodes_ - 1);
    return p;
  }

  /// Destination `self` sends its requests to in `round`; kInvalidNode when
  /// it sends nothing (it is the incast target).
  NodeId dest_of(std::size_t round, NodeId self) const {
    const RoundPlan p = plan(round);
    if (p.kind == RoundKind::kIncast)
      return self == p.target ? kInvalidNode : p.target;
    return static_cast<NodeId>((self + p.shift) % nodes_);
  }

  /// Number of peers whose `round` requests `self` must answer.
  std::size_t expected_sources(std::size_t round, NodeId self) const {
    const RoundPlan p = plan(round);
    if (p.kind == RoundKind::kIncast)
      return self == p.target ? nodes_ - 1 : 0;
    return 1;
  }

 private:
  bool is_incast(std::size_t round) const {
    return incast_every_ > 0 && (round + 1) % incast_every_ == 0;
  }

  std::size_t nodes_;
  std::size_t rounds_;
  std::size_t incast_every_;
};

}  // namespace fm::san
