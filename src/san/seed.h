// FM-San seed plumbing.
//
// Every chaos schedule and payload pattern in FM-San derives from one
// effective seed, and a failure is only as good as its replay: the seed is
// injectable from outside (FM_SAN_SEED), recorded with FM-Scope so the
// dump-on-failure listener prints it next to the red test, and embedded in
// the $FM_OBS_DUMP_DIR registry dump. Re-running with the printed seed
// reproduces the exact round schedule, chaos event timing, and fault
// pattern.
#pragma once

#include <cstdint>

namespace fm::san {

/// The run's effective chaos/soak seed: FM_SAN_SEED (env) when set to a
/// parseable nonzero integer, else `fallback`. Records the result via
/// fm::obs::set_run_seed() so failure output and obs dumps carry it.
std::uint64_t effective_seed(std::uint64_t fallback);

/// Parses FM_SAN_SEED only (no recording); false when unset/unparseable.
bool env_seed(std::uint64_t* seed);

}  // namespace fm::san
