// FM-San round-scheduled all-to-all soak driver.
//
// Runs the RoundSchedule (san/schedule.h) over any fm::ClusterBackend: in
// each round every rank sends `msgs_per_round` timestamped requests to its
// scheduled destination and echoes every request it receives; the sender
// computes a request/echo RTT per link and the matrix feeds the per-link
// attribution in san/link_stats.h. Rounds are self-paced — a rank advances
// when its own echoes are home — so no per-round barrier exists to mask a
// slow rank, and a chaos schedule (san/chaos.h) can kill or stall a rank
// at any round boundary while the others are mid-collective.
//
// The driver never asserts; it counts (san.node<i> registry scope,
// published into the RunReport) and reports per-link metrics. Tests assert
// on the returned SoakOutcome: exactly-once via counters, conservation via
// RunReport::conservation(), attribution via the LinkAnalysis.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/types.h"
#include "fm/cluster_runner.h"
#include "fm/protocol.h"
#include "hw/fault.h"
#include "obs/registry.h"
#include "san/chaos.h"
#include "san/link_stats.h"
#include "san/schedule.h"
#include "san/seed.h"

namespace fm::san {

/// Soak shape + chaos schedule for one run_all_to_all() call.
template <class C>
struct SoakParams {
  std::size_t rounds = 8;
  std::size_t msgs_per_round = 2;   ///< Requests per rank per round.
  std::size_t payload_bytes = 64;   ///< >= kRequestHeaderBytes.
  std::size_t incast_every = 0;     ///< See RoundSchedule.
  std::uint64_t seed = 0x5eedf00d;  ///< effective_seed() fallback.
  bool end_barrier = true;   ///< barrier_serviced at the end. Turn OFF for
                             ///< shm kill scenarios: the thread barrier
                             ///< waits for ALL ranks, dead ones included.
  double slow_factor = 4.0;  ///< Slow-link threshold (x median RTT).
  ChaosScenario chaos;       ///< Empty events: plain soak.
  hw::FaultParams base_faults;  ///< Rates to restore when a storm ends.
  /// How a kill directive dies (process backends: raise(SIGKILL); default:
  /// the rank returns silently, which is the only death a thread backend
  /// can stage without taking the process with it).
  std::function<void(typename C::EndpointType&)> on_kill;
};

/// Everything a test asserts on after a soak.
struct SoakOutcome {
  RunReport report;
  std::vector<LinkSample> links;  ///< Rebuilt from the report metrics.
  LinkAnalysis analysis;
  std::uint64_t seed = 0;  ///< The effective (possibly env-injected) seed.
};

namespace detail {

// Request/echo wire format: [u32 kind][u32 round][u32 seq][u64 t_send_ns]
// then deterministic fill to payload_bytes.
constexpr std::size_t kRequestHeaderBytes = 20;
constexpr std::uint32_t kKindRequest = 0;
constexpr std::uint32_t kKindEcho = 1;

inline std::uint64_t san_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 finalizer: the deterministic payload-fill pattern generator
/// (both ends recompute it from (seed, src, dst, round, seq) alone).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t fill_pattern(std::uint64_t seed, NodeId src, NodeId dst,
                                  std::uint32_t round, std::uint32_t seq) {
  return mix64(seed ^ mix64((static_cast<std::uint64_t>(src) << 48) ^
                            (static_cast<std::uint64_t>(dst) << 32) ^
                            (static_cast<std::uint64_t>(round) << 16) ^
                            seq));
}

inline std::uint8_t fill_byte(std::uint64_t pattern, std::size_t j) {
  return static_cast<std::uint8_t>(pattern >> ((j % 8) * 8)) ^
         static_cast<std::uint8_t>(j);
}

struct LinkAccum {
  std::uint64_t echoes = 0;
  std::uint64_t lost = 0;
  double rtt_sum_us = 0;
  double rtt_max_us = 0;
};

/// The per-rank FM-San counter block (registered under "san.node<id>").
struct SanCounters {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t echoes_received = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t links_skipped_dead = 0;
  std::uint64_t payload_mismatches = 0;
  std::uint64_t chaos_stall_rounds = 0;
  std::uint64_t chaos_fault_swaps = 0;
  std::uint64_t chaos_kills = 0;
  std::uint64_t done_markers_received = 0;
};

struct RankCtx {
  SanCounters c;
  std::vector<std::uint64_t> echoes_by_round;
  std::vector<LinkAccum> links;        // indexed by peer id
  std::vector<std::uint8_t> scratch;   // echo reply buffer
  std::vector<bool> death_seen;        // peer -> death already accounted
  std::vector<double> death_detect_us;
  std::uint64_t stall_us = 0;
  std::uint32_t next_seq = 0;
  std::uint64_t done_from = 0;
};

}  // namespace detail

/// Runs the schedule on every rank of `cluster` and returns the merged
/// outcome. Registers its own handlers — call before any run() and do not
/// mix with other handler registrations on the same cluster.
template <class C>
  requires ClusterBackend<C>
SoakOutcome run_all_to_all(C& cluster, SoakParams<C> p) {
  using Endpoint = typename C::EndpointType;
  using detail::RankCtx;
  const std::size_t n = cluster.size();
  FM_CHECK_MSG(p.payload_bytes >= detail::kRequestHeaderBytes,
               "payload too small for the request header");
  FM_CHECK_MSG(p.rounds >= 1, "empty schedule");
  p.seed = effective_seed(p.seed);
  const RoundSchedule sched(n, p.rounds, p.incast_every);

  // One context per rank. shm: each thread touches only its own entry.
  // net: the vector is duplicated by fork() and each child uses its copy.
  auto ctxs = std::make_shared<std::vector<RankCtx>>(n);
  for (RankCtx& ctx : *ctxs) {
    ctx.echoes_by_round.resize(p.rounds, 0);
    ctx.links.resize(n);
    ctx.scratch.resize(p.payload_bytes);
    ctx.death_seen.resize(n, false);
    ctx.death_detect_us.resize(n, 0);
  }

  // Echo service: flip the kind word, send the payload straight back.
  // post_send is the only legal send from handler context. The echo
  // handler id is late-bound (registered below) through a shared cell.
  auto echo_id = std::make_shared<HandlerId>(0);
  HandlerId h_req = cluster.register_handler(
      [ctxs, echo_id](Endpoint& ep, NodeId src, const void* data,
                      std::size_t len) {
        RankCtx& ctx = (*ctxs)[ep.id()];
        FM_CHECK(len <= ctx.scratch.size());
        std::memcpy(ctx.scratch.data(), data, len);
        const std::uint32_t kind_echo = detail::kKindEcho;
        std::memcpy(ctx.scratch.data(), &kind_echo, 4);
        ++ctx.c.requests_served;
        if (!ep.peer_dead(src))
          ep.post_send(src, *echo_id, ctx.scratch.data(), len);
      });
  // The requester side of the echo: account RTT + integrity per link.
  HandlerId h_echo = cluster.register_handler(
      [ctxs, p](Endpoint& ep, NodeId src, const void* data,
                std::size_t len) {
        RankCtx& ctx = (*ctxs)[ep.id()];
        std::uint32_t round = 0, seq = 0;
        std::uint64_t t_send = 0;
        std::memcpy(&round, static_cast<const std::uint8_t*>(data) + 4, 4);
        std::memcpy(&seq, static_cast<const std::uint8_t*>(data) + 8, 4);
        std::memcpy(&t_send, static_cast<const std::uint8_t*>(data) + 12, 8);
        const std::uint64_t pattern =
            detail::fill_pattern(p.seed, ep.id(), src, round, seq);
        const auto* bytes = static_cast<const std::uint8_t*>(data);
        for (std::size_t j = detail::kRequestHeaderBytes; j < len; ++j) {
          if (bytes[j] != detail::fill_byte(pattern, j)) {
            ++ctx.c.payload_mismatches;
            break;
          }
        }
        const double rtt_us =
            static_cast<double>(detail::san_now_ns() - t_send) / 1000.0;
        detail::LinkAccum& link = ctx.links[src];
        ++link.echoes;
        link.rtt_sum_us += rtt_us;
        if (rtt_us > link.rtt_max_us) link.rtt_max_us = rtt_us;
        ++ctx.c.echoes_received;
        if (round < ctx.echoes_by_round.size()) ++ctx.echoes_by_round[round];
      });
  *echo_id = h_echo;
  HandlerId h_done = cluster.register_handler(
      [ctxs](Endpoint& ep, NodeId, const void*, std::size_t) {
        ++(*ctxs)[ep.id()].done_from;
        ++(*ctxs)[ep.id()].c.done_markers_received;
      });

  SoakOutcome out;
  out.seed = p.seed;
  out.report = cluster.run([&cluster, ctxs, &p, &sched, h_req, h_done,
                            n](Endpoint& ep) {
    const NodeId me = ep.id();
    RankCtx& ctx = (*ctxs)[me];
    obs::Registry reg("san.node" + std::to_string(me));
    reg.assert_owner();
    reg.counter("requests_sent", &ctx.c.requests_sent);
    reg.counter("requests_served", &ctx.c.requests_served);
    reg.counter("echoes_received", &ctx.c.echoes_received);
    reg.counter("rounds_completed", &ctx.c.rounds_completed);
    reg.counter("links_skipped_dead", &ctx.c.links_skipped_dead);
    reg.counter("payload_mismatches", &ctx.c.payload_mismatches);
    reg.counter("chaos_stall_rounds", &ctx.c.chaos_stall_rounds);
    reg.counter("chaos_fault_swaps", &ctx.c.chaos_fault_swaps);
    reg.counter("chaos_kills", &ctx.c.chaos_kills);
    reg.counter("done_markers_received", &ctx.c.done_markers_received);

    std::vector<std::uint8_t> buf(p.payload_bytes);
    bool stormed = false;
    hw::FaultParams storm_rates;  // rates currently applied while stormed
    for (std::size_t r = 0; r < p.rounds; ++r) {
      cluster.note_phase(me, "round " + std::to_string(r));
      const ChaosDirective d = directive_for(p.chaos, me, r);
      if (d.kill_self) {
        ++ctx.c.chaos_kills;
        if (p.on_kill) p.on_kill(ep);
        return;  // thread backends: die silently, mid-collective
      }
      ctx.stall_us = d.stall_us;
      if (d.stall_us > 0) ++ctx.c.chaos_stall_rounds;
      // Swap rates on storm start/end AND between ramp steps (a ramp is
      // consecutive storm windows whose rates escalate).
      if (d.storm_active != stormed ||
          (d.storm_active && !(d.faults == storm_rates))) {
        if (hw::FaultInjector* inj = ep.mutable_faults()) {
          inj->set_params(d.storm_active ? d.faults : p.base_faults);
          ++ctx.c.chaos_fault_swaps;
        }
        stormed = d.storm_active;
        storm_rates = d.faults;
      }

      const NodeId dst = sched.dest_of(r, me);
      std::size_t sent_ok = 0;
      const std::uint64_t t_round = detail::san_now_ns();
      if (dst != kInvalidNode && ep.peer_dead(dst)) {
        ++ctx.c.links_skipped_dead;
      } else if (dst != kInvalidNode) {
        for (std::size_t k = 0; k < p.msgs_per_round; ++k) {
          const std::uint32_t seq = ctx.next_seq++;
          const std::uint32_t round32 = static_cast<std::uint32_t>(r);
          const std::uint64_t pattern =
              detail::fill_pattern(p.seed, me, dst, round32, seq);
          const std::uint32_t kind_req = detail::kKindRequest;
          std::memcpy(buf.data(), &kind_req, 4);
          std::memcpy(buf.data() + 4, &round32, 4);
          std::memcpy(buf.data() + 8, &seq, 4);
          const std::uint64_t t_send = detail::san_now_ns();
          std::memcpy(buf.data() + 12, &t_send, 8);
          for (std::size_t j = detail::kRequestHeaderBytes;
               j < p.payload_bytes; ++j)
            buf[j] = detail::fill_byte(pattern, j);
          const Status st = ep.send(dst, h_req, buf.data(), p.payload_bytes);
          if (st == Status::kPeerDead) break;
          FM_CHECK_MSG(ok(st), "all-to-all request send failed");
          ++sent_ok;
          ++ctx.c.requests_sent;
        }
      }
      // Self-paced round completion: our echoes are home, or the peer died
      // under us (a kill scenario) and FM-R abandoned what was in flight.
      // The drain inside the poll keeps us a good citizen: acks we owe are
      // flushed, so peers' drains never stall on us.
      ep.extract_until([&] {
        if (ctx.stall_us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(ctx.stall_us));
        ep.drain();
        if (ctx.echoes_by_round[r] >= sent_ok) return true;
        return dst != kInvalidNode && ep.peer_dead(dst);
      });
      if (dst != kInvalidNode && ep.peer_dead(dst) && !ctx.death_seen[dst]) {
        ctx.death_seen[dst] = true;
        ctx.death_detect_us[dst] =
            static_cast<double>(detail::san_now_ns() - t_round) / 1000.0;
        ctx.links[dst].lost += sent_ok - ctx.echoes_by_round[r];
      }
      ++ctx.c.rounds_completed;
    }

    // Completion: done markers over FM to every live peer, then stay
    // responsive until every live peer's marker arrived (peers that die
    // late are discounted inside the predicate, not hung on).
    cluster.note_phase(me, "done-markers");
    ep.drain();
    for (NodeId peer = 0; peer < static_cast<NodeId>(n); ++peer) {
      if (peer == me || ep.peer_dead(peer)) continue;
      const Status st = ep.send4(peer, h_done, 0, 0, 0, 0);
      FM_CHECK_MSG(st == Status::kPeerDead || ok(st),
                   "done marker send failed");
    }
    ep.extract_until([&] {
      ep.drain();
      std::size_t dead = 0;
      for (NodeId peer = 0; peer < static_cast<NodeId>(n); ++peer)
        if (peer != me && ep.peer_dead(peer)) ++dead;
      return ctx.done_from + dead >= n - 1;
    });
    ep.drain();

    // Per-link attribution, over the report() channel so it survives the
    // process boundary on the net backend.
    for (NodeId peer = 0; peer < static_cast<NodeId>(n); ++peer) {
      if (peer == me) continue;
      const detail::LinkAccum& link = ctx.links[peer];
      if (link.echoes == 0 && link.lost == 0) continue;
      cluster.report(link_metric_key(me, peer, "echoes"),
                     static_cast<double>(link.echoes));
      cluster.report(link_metric_key(me, peer, "lost"),
                     static_cast<double>(link.lost));
      if (link.echoes > 0) {
        cluster.report(link_metric_key(me, peer, "rtt_mean_us"),
                       link.rtt_sum_us / static_cast<double>(link.echoes));
        cluster.report(link_metric_key(me, peer, "rtt_max_us"),
                       link.rtt_max_us);
      }
      if (ctx.death_seen[peer])
        cluster.report(link_metric_key(me, peer, "death_detect_us"),
                       ctx.death_detect_us[peer]);
    }
    cluster.publish(reg);
    cluster.note_phase(me, "done");
    if (p.end_barrier) barrier_serviced(cluster, ep);
  });

  out.links = links_from_metrics(out.report.metrics);
  out.analysis = analyze_links(out.links, p.slow_factor);
  return out;
}

/// The bounded dead-peer detection horizon for `cfg` (one silent peer,
/// full retry budget with capped exponential backoff). Chaos tests assert
/// observed detection times stay within a small multiple of this.
inline std::uint64_t dead_peer_bound_ns(std::uint64_t retransmit_timeout_ns,
                                        std::size_t max_retries) {
  return RetransmitTimer::detection_horizon_ns(retransmit_timeout_ns,
                                               max_retries);
}

}  // namespace fm::san
