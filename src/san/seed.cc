#include "san/seed.h"

#include "common/env.h"
#include "obs/dump.h"

namespace fm::san {

bool env_seed(std::uint64_t* seed) {
  // Strict grammar: a malformed FM_SAN_SEED used to silently fall back to
  // the time-derived seed, making the "reproduce with this seed" workflow
  // lie. Now it aborts instead.
  return env::read_u64("FM_SAN_SEED", seed);
}

std::uint64_t effective_seed(std::uint64_t fallback) {
  std::uint64_t seed = fallback;
  (void)env_seed(&seed);
  obs::set_run_seed(seed);
  return seed;
}

}  // namespace fm::san
