#include "san/seed.h"

#include <cstdlib>

#include "obs/dump.h"

namespace fm::san {

bool env_seed(std::uint64_t* seed) {
  const char* env = std::getenv("FM_SAN_SEED");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0') return false;
  *seed = static_cast<std::uint64_t>(v);
  return true;
}

std::uint64_t effective_seed(std::uint64_t fallback) {
  std::uint64_t seed = fallback;
  (void)env_seed(&seed);
  obs::set_run_seed(seed);
  return seed;
}

}  // namespace fm::san
