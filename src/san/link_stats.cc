#include "san/link_stats.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace fm::san {
namespace {

/// Ranks flagged as the common endpoint of bad inbound links: rank r is
/// isolated when at least half of its measured inbound links are in `bad`
/// (and at least one is). A single bad link never isolates a rank in a
/// cluster of 4+, which is exactly the distinction between "one noisy
/// path" and "that receiver is the problem".
std::vector<NodeId> isolate_ranks(const std::vector<LinkSample>& all,
                                  const std::vector<LinkSample>& bad) {
  std::map<NodeId, std::size_t> inbound, flagged;
  for (const LinkSample& l : all)
    if (l.echoes + l.lost > 0) ++inbound[l.dst];
  for (const LinkSample& l : bad) ++flagged[l.dst];
  std::vector<NodeId> out;
  for (const auto& [dst, n_bad] : flagged)
    if (n_bad * 2 >= inbound[dst]) out.push_back(dst);
  std::sort(out.begin(), out.end());
  return out;
}

bool contains(const std::vector<NodeId>& v, NodeId r) {
  return std::find(v.begin(), v.end(), r) != v.end();
}

}  // namespace

bool LinkAnalysis::rank_is_slow(NodeId r) const {
  return contains(slow_ranks, r);
}

bool LinkAnalysis::rank_is_lossy(NodeId r) const {
  return contains(lossy_ranks, r);
}

LinkAnalysis analyze_links(const std::vector<LinkSample>& links,
                           double factor) {
  LinkAnalysis a;
  std::vector<double> means;
  for (const LinkSample& l : links)
    if (l.echoes > 0) means.push_back(l.rtt_mean_us);
  if (!means.empty()) {
    std::sort(means.begin(), means.end());
    a.median_rtt_us = means[means.size() / 2];
  }
  for (const LinkSample& l : links) {
    if (l.echoes > 0 && a.median_rtt_us > 0 &&
        l.rtt_mean_us > factor * a.median_rtt_us)
      a.slow_links.push_back(l);
    if (l.lost > 0) a.lossy_links.push_back(l);
  }
  a.slow_ranks = isolate_ranks(links, a.slow_links);
  a.lossy_ranks = isolate_ranks(links, a.lossy_links);
  return a;
}

std::string link_metric_key(NodeId src, NodeId dst, const char* field) {
  return "san.link." + std::to_string(src) + "." + std::to_string(dst) +
         "." + field;
}

std::vector<LinkSample> links_from_metrics(
    const std::map<std::string, double>& metrics) {
  // Key shape: san.link.<src>.<dst>.<field>
  std::map<std::pair<NodeId, NodeId>, LinkSample> by_pair;
  const std::string prefix = "san.link.";
  for (const auto& [key, value] : metrics) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    unsigned src = 0, dst = 0;
    char field[32] = {0};
    if (std::sscanf(key.c_str() + prefix.size(), "%u.%u.%31s", &src, &dst,
                    field) != 3)
      continue;
    LinkSample& l = by_pair[{static_cast<NodeId>(src),
                             static_cast<NodeId>(dst)}];
    l.src = static_cast<NodeId>(src);
    l.dst = static_cast<NodeId>(dst);
    if (std::strcmp(field, "echoes") == 0)
      l.echoes = static_cast<std::uint64_t>(value);
    else if (std::strcmp(field, "lost") == 0)
      l.lost = static_cast<std::uint64_t>(value);
    else if (std::strcmp(field, "rtt_mean_us") == 0)
      l.rtt_mean_us = value;
    else if (std::strcmp(field, "rtt_max_us") == 0)
      l.rtt_max_us = value;
  }
  std::vector<LinkSample> out;
  out.reserve(by_pair.size());
  for (auto& [pair, l] : by_pair) out.push_back(l);
  return out;
}

}  // namespace fm::san
