// FM-San chaos scheduler: declarative, seeded, replayable failure scripts.
//
// A ChaosScenario is a value: a name, the effective seed, and the event
// schedule materialized from that seed. Materializing the same scenario
// kind with the same (nodes, rounds, seed) yields an identical schedule —
// that is the replay guarantee behind "re-run the failure with the printed
// FM_SAN_SEED". The events are interpreted by the all-to-all soak driver
// (san/alltoall.h) at round boundaries:
//
//   kKillRank      the victim dies mid-collective (SIGKILL on the process
//                  backend, silent thread exit on shm) while every other
//                  rank is mid-schedule,
//   kSlowReceiver  the victim stalls between extract() calls for a window
//                  of rounds (the failure mode per-link attribution must
//                  isolate),
//   kPacketStorm   every rank's fault injector is cranked to storm rates
//                  for a window, then restored,
//   kFaultRamp     storm, but as a staircase of escalating rates.
//
// Under every schedule the driver still asserts exactly-once delivery, the
// sent == delivered + abandoned conservation invariant, and — after a kill
// — dead-peer detection within the RetransmitTimer's bounded horizon.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "hw/fault.h"

namespace fm::san {

enum class ChaosKind { kKillRank, kSlowReceiver, kPacketStorm, kFaultRamp };

/// One scheduled chaos event.
struct ChaosEvent {
  ChaosKind kind = ChaosKind::kKillRank;
  std::size_t round = 0;     ///< First round the event is active.
  std::size_t duration = 1;  ///< Rounds it stays active (kill: moot).
  NodeId victim = 0;         ///< Kill / slow target (storms hit every rank).
  std::uint64_t stall_us = 0;       ///< Slow receiver: stall per wait poll.
  hw::FaultParams faults;           ///< Storm/ramp rates while active.

  bool operator==(const ChaosEvent&) const = default;
  bool active(std::size_t r) const { return r >= round && r < round + duration; }
};

/// A materialized scenario (deterministic function of its inputs).
struct ChaosScenario {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t nodes = 0;
  std::size_t rounds = 0;
  std::vector<ChaosEvent> events;

  bool operator==(const ChaosScenario&) const = default;
};

/// What the chaos schedule asks of rank `self` at the start of `round`
/// (the soak driver consumes this; pure function of the scenario).
struct ChaosDirective {
  bool kill_self = false;      ///< Die now, mid-collective.
  std::uint64_t stall_us = 0;  ///< Active slow-receiver stall for this rank.
  bool storm_active = false;   ///< Apply `faults` to this rank's injector
                               ///< (driver restores base rates when it ends).
  hw::FaultParams faults;
};
ChaosDirective directive_for(const ChaosScenario& s, NodeId self,
                             std::size_t round);

/// Scenario builders. Victims and timing derive from `seed` alone (given
/// nodes/rounds), so two materializations with equal arguments are equal.
/// Kill scenarios require rounds >= nodes + 2: after the kill round, every
/// survivor's shift schedule must still reach the victim so each survivor
/// independently observes the death.
ChaosScenario make_kill_scenario(std::size_t nodes, std::size_t rounds,
                                 std::uint64_t seed);
ChaosScenario make_slow_receiver_scenario(std::size_t nodes,
                                          std::size_t rounds,
                                          std::uint64_t seed,
                                          std::uint64_t stall_us);
ChaosScenario make_packet_storm_scenario(std::size_t nodes,
                                         std::size_t rounds,
                                         std::uint64_t seed,
                                         const hw::FaultParams& storm);
ChaosScenario make_fault_ramp_scenario(std::size_t nodes, std::size_t rounds,
                                       std::uint64_t seed,
                                       const hw::FaultParams& peak,
                                       std::size_t steps = 4);

/// Human-readable schedule, printed next to failures so the log says what
/// chaos was in flight ("kill rank 2 at round 5", ...).
std::string describe(const ChaosScenario& s);

}  // namespace fm::san
