// FM-San per-link attribution: turning an all-to-all's request/echo
// timings into a verdict about *which rank pair* (and which rank) is slow
// or lossy.
//
// A "link" is an ordered rank pair (src, dst): src's requests to dst and
// the echoes that came back. The analysis is pure — it sees only the
// LinkSample matrix, so it is unit-testable with synthetic inputs and
// reusable on any backend (the soak driver publishes the matrix through
// Cluster::report(), and links_from_metrics() reassembles it on the test
// side of the process boundary).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace fm::san {

/// Accumulated request/echo observations for one directed link.
struct LinkSample {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t echoes = 0;  ///< Completed request/echo round trips.
  std::uint64_t lost = 0;    ///< Requests never echoed (dead peer, abort).
  double rtt_mean_us = 0;
  double rtt_max_us = 0;
};

/// What the matrix says: outlier links and the ranks they isolate.
struct LinkAnalysis {
  /// Median of the per-link mean RTTs (the cluster's "normal").
  double median_rtt_us = 0;
  /// Links whose mean RTT exceeds factor x median.
  std::vector<LinkSample> slow_links;
  /// Links that lost at least one request.
  std::vector<LinkSample> lossy_links;
  /// Ranks isolated as the problem: destination of at least half of their
  /// measured inbound links' flagged entries (a slow *receiver* inflates
  /// every link pointing at it; one slow link inflates only itself).
  std::vector<NodeId> slow_ranks;
  std::vector<NodeId> lossy_ranks;

  bool rank_is_slow(NodeId r) const;
  bool rank_is_lossy(NodeId r) const;
};

/// Pure outlier analysis over the link matrix. `factor` is the slow-link
/// threshold as a multiple of the median link RTT.
LinkAnalysis analyze_links(const std::vector<LinkSample>& links,
                           double factor = 4.0);

/// Metric key for one field of one link, e.g.
/// "san.link.0.2.rtt_mean_us" (shared by the soak driver that writes it
/// and links_from_metrics() that reads it back).
std::string link_metric_key(NodeId src, NodeId dst, const char* field);

/// Rebuilds the link matrix from RunReport::metrics (inverse of the soak
/// driver's report() calls; unknown keys are ignored).
std::vector<LinkSample> links_from_metrics(
    const std::map<std::string, double>& metrics);

}  // namespace fm::san
