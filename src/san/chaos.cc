#include "san/chaos.h"

#include "common/check.h"
#include "common/random.h"

namespace fm::san {
namespace {

/// One seeded stream per (scenario kind, seed): scenario materialization
/// must not depend on call order elsewhere.
Xoshiro256 scenario_rng(std::uint64_t seed, std::uint64_t kind_salt) {
  return Xoshiro256(seed ^ (0x9e3779b97f4a7c15ull * (kind_salt + 1)));
}

}  // namespace

ChaosDirective directive_for(const ChaosScenario& s, NodeId self,
                             std::size_t round) {
  ChaosDirective d;
  for (const ChaosEvent& e : s.events) {
    switch (e.kind) {
      case ChaosKind::kKillRank:
        if (e.round == round && e.victim == self) d.kill_self = true;
        break;
      case ChaosKind::kSlowReceiver:
        if (e.active(round) && e.victim == self) d.stall_us = e.stall_us;
        break;
      case ChaosKind::kPacketStorm:
      case ChaosKind::kFaultRamp:
        if (e.active(round)) {
          d.storm_active = true;
          d.faults = e.faults;
        }
        break;
    }
  }
  return d;
}

ChaosScenario make_kill_scenario(std::size_t nodes, std::size_t rounds,
                                 std::uint64_t seed) {
  FM_CHECK_MSG(rounds >= nodes + 2,
               "kill scenarios need rounds >= nodes + 2 so every survivor's "
               "schedule reaches the victim after the kill");
  ChaosScenario s;
  s.name = "kill-rank-mid-collective";
  s.seed = seed;
  s.nodes = nodes;
  s.rounds = rounds;
  Xoshiro256 rng = scenario_rng(seed, 1);
  ChaosEvent e;
  e.kind = ChaosKind::kKillRank;
  e.victim = static_cast<NodeId>(rng.below(nodes));
  // Mid-collective by construction: after round 1 (everyone is exchanging)
  // and early enough that nodes-1 shift rounds remain post-kill.
  e.round = 1 + rng.below(rounds - nodes);
  s.events.push_back(e);
  return s;
}

ChaosScenario make_slow_receiver_scenario(std::size_t nodes,
                                          std::size_t rounds,
                                          std::uint64_t seed,
                                          std::uint64_t stall_us) {
  FM_CHECK_MSG(rounds >= 4, "slow-receiver scenarios need a few rounds");
  ChaosScenario s;
  s.name = "slow-receiver";
  s.seed = seed;
  s.nodes = nodes;
  s.rounds = rounds;
  Xoshiro256 rng = scenario_rng(seed, 2);
  ChaosEvent e;
  e.kind = ChaosKind::kSlowReceiver;
  e.victim = static_cast<NodeId>(rng.below(nodes));
  e.stall_us = stall_us;
  // A contiguous stalled window covering at least half the schedule, so
  // every inbound link of the victim accumulates inflated RTTs.
  e.round = 1 + rng.below(rounds / 4);
  e.duration = rounds - e.round;
  s.events.push_back(e);
  return s;
}

ChaosScenario make_packet_storm_scenario(std::size_t nodes,
                                         std::size_t rounds,
                                         std::uint64_t seed,
                                         const hw::FaultParams& storm) {
  FM_CHECK_MSG(rounds >= 4, "packet-storm scenarios need a few rounds");
  ChaosScenario s;
  s.name = "packet-storm";
  s.seed = seed;
  s.nodes = nodes;
  s.rounds = rounds;
  Xoshiro256 rng = scenario_rng(seed, 3);
  ChaosEvent e;
  e.kind = ChaosKind::kPacketStorm;
  e.faults = storm;
  e.round = 1 + rng.below(rounds / 4);
  // The storm ends before the schedule does: the calm tail proves the
  // stack recovers to a conserved, fully delivered state.
  e.duration = 1 + (rounds - e.round) / 2;
  s.events.push_back(e);
  return s;
}

ChaosScenario make_fault_ramp_scenario(std::size_t nodes, std::size_t rounds,
                                       std::uint64_t seed,
                                       const hw::FaultParams& peak,
                                       std::size_t steps) {
  FM_CHECK_MSG(steps >= 1 && rounds >= 2 * steps,
               "fault ramps need rounds >= 2 * steps");
  ChaosScenario s;
  s.name = "fault-ramp";
  s.seed = seed;
  s.nodes = nodes;
  s.rounds = rounds;
  Xoshiro256 rng = scenario_rng(seed, 4);
  // Staircase: `steps` consecutive windows with linearly escalating rates,
  // ending before the final round so the tail drains at base rates.
  const std::size_t start = 1 + rng.below(rounds / 4 > 0 ? rounds / 4 : 1);
  const std::size_t span = (rounds - 1 - start) / steps;
  for (std::size_t k = 0; k < steps; ++k) {
    ChaosEvent e;
    e.kind = ChaosKind::kFaultRamp;
    const double scale = static_cast<double>(k + 1) / steps;
    e.faults = peak;
    e.faults.drop_rate = peak.drop_rate * scale;
    e.faults.corrupt_rate = peak.corrupt_rate * scale;
    e.faults.duplicate_rate = peak.duplicate_rate * scale;
    e.faults.reorder_rate = peak.reorder_rate * scale;
    e.faults.burst_rate = peak.burst_rate * scale;
    e.round = start + k * (span > 0 ? span : 1);
    e.duration = span > 0 ? span : 1;
    s.events.push_back(e);
  }
  return s;
}

std::string describe(const ChaosScenario& s) {
  std::string out = "scenario \"" + s.name + "\" seed=" +
                    std::to_string(s.seed) + " nodes=" +
                    std::to_string(s.nodes) + " rounds=" +
                    std::to_string(s.rounds) + ":";
  for (const ChaosEvent& e : s.events) {
    out += "\n  ";
    switch (e.kind) {
      case ChaosKind::kKillRank:
        out += "kill rank " + std::to_string(e.victim) + " at round " +
               std::to_string(e.round);
        break;
      case ChaosKind::kSlowReceiver:
        out += "stall rank " + std::to_string(e.victim) + " by " +
               std::to_string(e.stall_us) + "us over rounds " +
               std::to_string(e.round) + ".." +
               std::to_string(e.round + e.duration - 1);
        break;
      case ChaosKind::kPacketStorm:
      case ChaosKind::kFaultRamp:
        out += std::string(e.kind == ChaosKind::kPacketStorm
                               ? "packet storm"
                               : "fault ramp step") +
               " (drop=" + std::to_string(e.faults.drop_rate) +
               " burst=" + std::to_string(e.faults.burst_rate) +
               ") over rounds " + std::to_string(e.round) + ".." +
               std::to_string(e.round + e.duration - 1);
        break;
    }
  }
  return out;
}

}  // namespace fm::san
