// CRC-32 (IEEE 802.3 polynomial), table-driven.
//
// Used by the Myricom API baseline: Table 3 of the paper lists "message
// checksums" as an API feature that FM deliberately omits (FM assumes a
// reliable network). The simulated API layer charges LANai instruction time
// proportional to the checksum, and the shm backend can verify real data.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/annotate.h"

namespace fm {

/// Computes CRC-32 over `len` bytes starting at `data`, continuing from
/// `seed` (pass 0 for a fresh checksum; chain calls to checksum fragments).
FM_HOT_PATH std::uint32_t crc32(const void* data, std::size_t len,
                                std::uint32_t seed = 0);

}  // namespace fm
