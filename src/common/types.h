// Fundamental identifiers and sizes shared by every subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fm {

/// Identifies a node (workstation) in the cluster. Nodes are numbered
/// densely from zero; the value doubles as the switch port a node's NIC
/// is cabled to in single-switch topologies.
using NodeId = std::uint32_t;

/// Identifies a registered message handler. Handlers are registered
/// identically on every node (SPMD style, mirroring how FM 1.0 shipped raw
/// function pointers between identical binaries) and referenced by index so
/// that the id is meaningful on the wire.
using HandlerId = std::uint16_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Sentinel for "no handler". Handler id 0 is reserved for internal
/// control frames (pure acknowledgements, credit updates).
inline constexpr HandlerId kInvalidHandler = 0xffffu;

/// FM 1.0 frame size (bytes of payload per network frame). Section 5 of the
/// paper: "Based on these considerations, we chose a 128-byte frame size for
/// FM 1.0. Larger messages will require segmentation and reassembly into
/// frames of this size."
inline constexpr std::size_t kFmFramePayload = 128;

/// FM_send_4 always carries exactly four 32-bit words.
inline constexpr std::size_t kFmSend4Bytes = 16;

}  // namespace fm
