#include "common/log.h"

#include <cstdarg>

namespace fm {

namespace detail {
LogLevel& log_level_ref() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}
}  // namespace detail

LogLevel set_log_level(LogLevel level) {
  LogLevel prev = detail::log_level_ref();
  detail::log_level_ref() = level;
  return prev;
}

void log_emit(LogLevel level, const char* file, int line, const char* fmt,
              ...) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR",
                                           "OFF"};
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  std::fprintf(stderr, "[%s %s:%d] ", kNames[static_cast<int>(level)], base,
               line);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace fm
