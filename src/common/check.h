// Lightweight always-on invariant checks.
//
// Simulator and protocol code is riddled with invariants (queue occupancy,
// counter monotonicity, state-machine legality). We keep these checks on in
// every build type: the cost is negligible next to event dispatch, and a
// silent invariant violation in a simulator produces plausible-but-wrong
// numbers, which is the worst possible failure mode for a reproduction.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fm::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "FM_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fm::detail

/// Abort with a diagnostic if `expr` is false. Always enabled.
#define FM_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::fm::detail::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

/// FM_CHECK with an explanatory message (a string literal).
#define FM_CHECK_MSG(expr, msg)                                      \
  do {                                                               \
    if (!(expr))                                                     \
      ::fm::detail::check_failed(__FILE__, __LINE__, #expr, (msg));  \
  } while (0)

/// Marks unreachable control flow.
#define FM_UNREACHABLE(msg) \
  ::fm::detail::check_failed(__FILE__, __LINE__, "unreachable", (msg))
