// Online statistics and fixed-bucket histograms for measurement harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fm {

/// Welford online accumulator: mean/variance/min/max without storing samples.
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x);
  /// Number of observations so far.
  std::size_t count() const { return n_; }
  /// Arithmetic mean (0 when empty).
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }
  /// Sum of all observations.
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

/// Log-scaled latency histogram: power-of-two buckets from 1 ns up.
/// Keeps exact count and supports approximate quantiles, which is all the
/// harnesses need (the paper reports single latency numbers per size).
class LatencyHistogram {
 public:
  LatencyHistogram();
  /// Records a latency in nanoseconds (values < 1 clamp to bucket 0).
  void add(std::uint64_t ns);
  /// Total number of recorded samples.
  std::uint64_t count() const { return total_; }
  /// Approximate q-quantile (0 <= q <= 1) in nanoseconds; returns the upper
  /// bound of the bucket containing the quantile, clamped to the observed
  /// maximum (a quantile can never exceed the largest recorded sample).
  std::uint64_t quantile(double q) const;
  /// Formats a compact textual summary ("p50=… p99=… max=…").
  std::string summary() const;

 private:
  std::vector<std::uint64_t> buckets_;  // 64 power-of-two buckets
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace fm
