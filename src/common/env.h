// Strict parsing of FM_* environment knobs.
//
// Every FM_* variable used to be parsed ad hoc with strtoul-style
// forgiveness: "FM_NET_BATCH=1x" silently became the default,
// "FM_SAN_SEED=-1" silently wrapped, and a typo in a CI matrix leg ran the
// wrong configuration while looking green. A knob the operator set is a
// statement of intent — if it cannot be honored exactly, the run must die
// loudly, not proceed with a guess. This is the one shared parser: unset
// (or empty) means "use the default" and returns false; anything else
// either parses completely and in range, or aborts with a message naming
// the variable, the offending value, and the accepted range.
#pragma once

#include <cstdint>

namespace fm::env {

/// Reads `name` as an unsigned integer: decimal, or hex with a 0x/0X
/// prefix. Returns false when the variable is unset or empty (`*out`
/// untouched). A set variable that has trailing garbage, a sign, leading
/// whitespace, or a value outside [`min`, `max`] is a fatal configuration
/// error.
bool read_u64(const char* name, std::uint64_t* out, std::uint64_t min = 0,
              std::uint64_t max = ~std::uint64_t{0});

/// Reads `name` as a boolean knob: exactly "0" or "1". Returns false when
/// unset or empty; anything else non-boolean is fatal.
bool read_flag(const char* name, bool* out);

}  // namespace fm::env
