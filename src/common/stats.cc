#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace fm {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStat::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram() : buckets_(64, 0) {}

void LatencyHistogram::add(std::uint64_t ns) {
  unsigned bucket = ns == 0 ? 0 : static_cast<unsigned>(std::bit_width(ns) - 1);
  if (bucket >= buckets_.size()) bucket = buckets_.size() - 1;
  ++buckets_[bucket];
  ++total_;
  if (ns > max_) max_ = ns;
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    // Bucket upper bound, clamped to the observed maximum: a single 33 ns
    // sample must report p50 = 33 ns, not its bucket's 63 ns ceiling.
    if (seen >= target)
      return i + 1 >= 64
                 ? max_
                 : std::min<std::uint64_t>(max_, (1ull << (i + 1)) - 1);
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "n=%llu p50=%lluns p99=%lluns max=%lluns",
                static_cast<unsigned long long>(total_),
                static_cast<unsigned long long>(quantile(0.5)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace fm
