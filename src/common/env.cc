#include "common/env.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fm::env {
namespace {

[[noreturn]] void bad_knob(const char* name, const char* value,
                           const char* why, std::uint64_t min,
                           std::uint64_t max) {
  std::fprintf(stderr,
               "fatal: %s=\"%s\" %s (accepted: integer in [%llu, %llu]; "
               "unset the variable to use the default)\n",
               name, value, why, static_cast<unsigned long long>(min),
               static_cast<unsigned long long>(max));
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool read_u64(const char* name, std::uint64_t* out, std::uint64_t min,
              std::uint64_t max) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  // strtoull is too forgiving for a knob: it skips leading whitespace and
  // wraps negative input into a huge unsigned value. Reject both up front
  // so what remains is a bare magnitude (decimal or 0x-hex).
  if (std::isspace(static_cast<unsigned char>(value[0])) ||
      value[0] == '-' || value[0] == '+')
    bad_knob(name, value, "must be a bare non-negative integer", min, max);
  // Base is explicit (10, or 16 behind a 0x prefix): base-0 strtoull would
  // silently read "010" as octal 8, one more way for a knob to lie.
  const int base =
      (value[0] == '0' && (value[1] == 'x' || value[1] == 'X')) ? 16 : 10;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value, &end, base);
  if (end == value || *end != '\0')
    bad_knob(name, value, "has trailing garbage", min, max);
  if (errno == ERANGE)
    bad_knob(name, value, "overflows 64 bits", min, max);
  if (v < min || v > max)
    bad_knob(name, value, "is out of range", min, max);
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool read_flag(const char* name, bool* out) {
  std::uint64_t v = 0;
  if (!read_u64(name, &v, 0, 1)) return false;
  *out = (v != 0);
  return true;
}

}  // namespace fm::env
