// Minimal Status / Result<T> error-handling vocabulary.
//
// The public FM API mirrors the paper's C interface, which reported failures
// by return code; we use a small Status enum rather than exceptions so the
// hot send/extract paths stay allocation- and throw-free (Core Guidelines
// E.6/Per.* — no exceptions on performance-critical paths).
#pragma once

#include <string_view>
#include <utility>

#include "common/annotate.h"
#include "common/check.h"

namespace fm {

/// Result codes for public API operations.
enum class Status : int {
  kOk = 0,          ///< Operation completed.
  kAgain,           ///< Resource temporarily exhausted; retry after extract().
  kTooLarge,        ///< Message exceeds the layer's maximum size.
  kBadArgument,     ///< Invalid destination, handler, or buffer.
  kClosed,          ///< Endpoint has been shut down.
  kPeerDead,        ///< FM-R declared the destination dead (max retries).
  kInternal,        ///< Invariant violation inside the layer (bug).
  // --- serving-plane admission vocabulary (src/serve, src/rpc) ---
  kOverload,        ///< Admission control shed the request; retry later.
  kDeadline,        ///< The caller's deadline expired before completion.
  kCancelled,       ///< The operation was cancelled by its issuer.
};

/// Human-readable name for a Status value.
constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kAgain: return "again";
    case Status::kTooLarge: return "too-large";
    case Status::kBadArgument: return "bad-argument";
    case Status::kClosed: return "closed";
    case Status::kPeerDead: return "peer-dead";
    case Status::kInternal: return "internal";
    case Status::kOverload: return "overload";
    case Status::kDeadline: return "deadline";
    case Status::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// True when `s` signals success. Hot by construction: every send path
/// branches on it.
FM_HOT_PATH constexpr bool ok(Status s) { return s == Status::kOk; }

/// A value-or-status pair for APIs that produce a value on success.
/// Intentionally tiny (no std::expected in GCC 12's libstdc++ for C++20).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}
  /// Constructs a failed result. `s` must not be kOk.
  Result(Status s) : status_(s) { FM_CHECK(s != Status::kOk); }

  /// True when a value is present.
  bool has_value() const { return status_ == Status::kOk; }
  explicit operator bool() const { return has_value(); }

  /// The failure (or kOk) code.
  Status status() const { return status_; }

  /// Access the contained value; aborts if absent.
  T& value() {
    FM_CHECK_MSG(has_value(), "Result::value() on error");
    return value_;
  }
  const T& value() const {
    FM_CHECK_MSG(has_value(), "Result::value() on error");
    return value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace fm
