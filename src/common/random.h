// Deterministic PRNG (xoshiro256**) for workload generation.
//
// Benchmarks and property tests must be bit-reproducible across runs, so we
// carry our own tiny generator instead of depending on the unspecified
// std::default_random_engine. Satisfies UniformRandomBitGenerator.
#pragma once

#include <cstdint>

namespace fm {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value via splitmix64 so that
  /// nearby seeds give uncorrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next 64 random bits.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace fm
