// Leveled logging with near-zero cost when disabled.
//
// The simulator can emit copious per-event detail; by default only warnings
// and errors print. Tests flip the level to Debug around the region under
// scrutiny. Not thread-safe by design on the hot path (each message is one
// fprintf, which libc serializes well enough for diagnostics).
#pragma once

#include <cstdio>
#include <string_view>

namespace fm {

/// Severity levels, ordered.
enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError, kOff };

namespace detail {
LogLevel& log_level_ref();
}  // namespace detail

/// Global minimum level that will be emitted.
inline LogLevel log_level() { return detail::log_level_ref(); }

/// Sets the global minimum level; returns the previous level.
LogLevel set_log_level(LogLevel level);

/// Emit a printf-style record if `level` is enabled.
void log_emit(LogLevel level, const char* file, int line, const char* fmt,
              ...) __attribute__((format(printf, 4, 5)));

/// RAII guard that sets the log level for a scope (used by tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : prev_(set_log_level(level)) {}
  ~ScopedLogLevel() { set_log_level(prev_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel prev_;
};

}  // namespace fm

#define FM_LOG(level, ...)                                             \
  do {                                                                 \
    if (static_cast<int>(level) >= static_cast<int>(::fm::log_level())) \
      ::fm::log_emit(level, __FILE__, __LINE__, __VA_ARGS__);          \
  } while (0)

#define FM_DLOG(...) FM_LOG(::fm::LogLevel::kDebug, __VA_ARGS__)
#define FM_ILOG(...) FM_LOG(::fm::LogLevel::kInfo, __VA_ARGS__)
#define FM_WLOG(...) FM_LOG(::fm::LogLevel::kWarn, __VA_ARGS__)
#define FM_ELOG(...) FM_LOG(::fm::LogLevel::kError, __VA_ARGS__)
