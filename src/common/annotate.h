// FM-Lint layer 1: thread-safety capabilities and hot/cold path markers.
//
// The paper's performance argument rests on discipline the compiler never
// sees: each side of a matched queue pair is touched by exactly one thread
// (host vs. LANai there, producer vs. consumer here), handlers run only
// inside extract(), and the steady-state send/extract cycle never allocates
// or blocks. This header turns those conventions into annotations three
// tools can check:
//
//   * Clang's -Wthread-safety analysis consumes the FM_CAPABILITY /
//     FM_GUARDED_BY / FM_REQUIRES family (no-ops on other compilers), so a
//     consumer-side ring call from producer-role code is a compile error in
//     the CI thread-safety build.
//   * scripts/lint/fm_lint.py consumes FM_HOT_PATH / FM_COLD_PATH lexically:
//     hot-marked functions (and everything they call inside this repo) may
//     not allocate, lock, or make blocking syscalls; cold-marked functions
//     are the explicit recovery/setup boundaries where the closure stops.
//   * Humans read both as documentation with teeth.
//
// Everything here is zero-cost at runtime: attributes and empty inline
// functions only.
#pragma once

// Clang implements the analysis; GCC and MSVC see empty macros. The
// __has_attribute probe (rather than a bare __clang__ test) keeps the file
// honest if the attribute set ever moves.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FM_THREAD_ANNOTATION
#define FM_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a capability (a mutex, or a pure role such as
/// "the producer side of this ring"). `name` appears in diagnostics.
#define FM_CAPABILITY(name) FM_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (e.g. fm::MutexLock).
#define FM_SCOPED_CAPABILITY FM_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while holding `x`.
#define FM_GUARDED_BY(x) FM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define FM_PT_GUARDED_BY(x) FM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define FM_REQUIRES(...) \
  FM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FM_REQUIRES_SHARED(...) \
  FM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define FM_ACQUIRE(...) FM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define FM_RELEASE(...) FM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability only when it returns `result`.
#define FM_TRY_ACQUIRE(result, ...) \
  FM_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Asserts (to the analysis, at zero runtime cost) that the capability is
/// held at this point — the idiom for role capabilities, where "holding"
/// means "this code runs on the owning side by construction": the thread
/// that enters a producer-side function claims the producer role here, and
/// any path that never claims it cannot call producer-side code.
#define FM_ASSERT_CAPABILITY(...) \
  FM_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define FM_EXCLUDES(...) FM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability protecting its result.
#define FM_RETURN_CAPABILITY(x) FM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model; every use must carry a
/// comment saying why.
#define FM_NO_THREAD_SAFETY_ANALYSIS \
  FM_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Hot/cold path markers (consumed by scripts/lint/fm_lint.py)
// ---------------------------------------------------------------------------

/// Marks a function as part of the steady-state hot path. fm_lint enforces,
/// over the hot call closure: no allocation, no locks, no blocking
/// syscalls. Every repo function a hot function calls must itself be
/// FM_HOT_PATH, FM_COLD_PATH, or [[noreturn]] (abort paths are exempt).
/// Expands to the real `hot` attribute where supported, so the marker also
/// nudges code layout.
#if defined(__GNUC__) || defined(__clang__)
#define FM_HOT_PATH __attribute__((hot))
#else
#define FM_HOT_PATH
#endif

/// Marks a function as explicitly off the steady state (recovery, fault
/// injection, setup, segmentation): hot code may branch into it, but
/// fm_lint's allocation closure stops at the boundary. The `cold` attribute
/// keeps these out of the hot instruction stream as a bonus.
#if defined(__GNUC__) || defined(__clang__)
#define FM_COLD_PATH __attribute__((cold))
#else
#define FM_COLD_PATH
#endif

// ---------------------------------------------------------------------------
// Annotated synchronization primitives
// ---------------------------------------------------------------------------

#include <mutex>

namespace fm {

/// std::mutex with capability annotations. libstdc++'s std::mutex carries
/// none, so guarding a member with a raw std::mutex teaches the analysis
/// nothing; this wrapper is the annotated front door (the abseil pattern).
class FM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FM_ACQUIRE() { mu_.lock(); }
  void unlock() FM_RELEASE() { mu_.unlock(); }
  bool try_lock() FM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for fm::Mutex (std::lock_guard is as unannotated as
/// std::mutex, so it gets a wrapper too).
class FM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FM_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A capability with no runtime state: a *role*. Where a mutex capability
/// means "this lock is held", a role capability means "this code runs on
/// the side that owns this state by construction" — the SPSC ring's
/// producer/consumer split, a registry's owning thread. Roles are claimed
/// with an FM_ASSERT_CAPABILITY-annotated assert function at the owning
/// side's entry points; code that never claims the role cannot call into
/// functions requiring it (a compile error under -Wthread-safety).
struct FM_CAPABILITY("role") Role {};

}  // namespace fm
