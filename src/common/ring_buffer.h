// Fixed-capacity single-threaded ring buffer.
//
// This is the workhorse queue of the reproduction: the paper's four queues
// (LANai send, LANai receive, host receive, host reject — Figure 6) are all
// bounded rings with single producer and single consumer on the *simulated*
// hardware. Within the simulator everything runs on one OS thread, so this
// type needs no atomics; the lock-free variant for the real shared-memory
// backend lives in shm/spsc_ring.h.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace fm {

/// Bounded FIFO ring over contiguous storage. Capacity is fixed at
/// construction. push/pop are O(1); no allocation after construction.
template <typename T>
class RingBuffer {
 public:
  /// Creates a ring holding at most `capacity` elements (capacity >= 1).
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity) {
    FM_CHECK_MSG(capacity >= 1, "ring capacity must be positive");
  }

  /// Number of elements currently queued.
  std::size_t size() const { return count_; }
  /// Maximum number of elements.
  std::size_t capacity() const { return slots_.size(); }
  /// True when no elements are queued.
  bool empty() const { return count_ == 0; }
  /// True when push() would fail.
  bool full() const { return count_ == slots_.size(); }
  /// Remaining free slots.
  std::size_t space() const { return slots_.size() - count_; }

  /// Enqueues `v`; returns false (and drops nothing) when full.
  bool push(T v) {
    if (full()) return false;
    slots_[tail_] = std::move(v);
    tail_ = next(tail_);
    ++count_;
    return true;
  }

  /// Dequeues the oldest element into `out`; returns false when empty.
  bool pop(T& out) {
    if (empty()) return false;
    out = std::move(slots_[head_]);
    head_ = next(head_);
    --count_;
    return true;
  }

  /// Oldest element without removing it. Ring must be non-empty.
  T& front() {
    FM_CHECK_MSG(!empty(), "front() on empty ring");
    return slots_[head_];
  }
  const T& front() const {
    FM_CHECK_MSG(!empty(), "front() on empty ring");
    return slots_[head_];
  }

  /// Element `i` positions behind the head (0 == front). i < size().
  T& at(std::size_t i) {
    FM_CHECK_MSG(i < count_, "ring index out of range");
    return slots_[(head_ + i) % slots_.size()];
  }

  /// Discards all elements.
  void clear() {
    head_ = tail_ = 0;
    count_ = 0;
  }

 private:
  std::size_t next(std::size_t i) const {
    return (i + 1 == slots_.size()) ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace fm
