// serve::Server — one shard of the FM-Serve serving plane.
//
// The paper's endpoints are one-producer/one-consumer pairs; FM-Serve turns
// N of them into a serving plane: each shard rank owns one endpoint and one
// Server engine, thousands of logical sessions ride the handful of
// transport rings beneath, and the client side (serve::Client) hashes each
// session to its owning shard so no ingress process sits on the request
// path. The shard loop is the paper's handler discipline verbatim — every
// request is executed inside extract() on the owning thread, responses are
// posted sends — plus three serving-plane obligations layered on top:
//
//   admission control   When the transport pushes back (send window or
//                       rings filling — the return-to-sender signal,
//                       PROTOCOL.md §11), or a preallocated table is full,
//                       the request is SHED with a kOverload-carrying
//                       reply and a retry-after hint instead of blocking.
//                       Overload degrades throughput, never liveness.
//   session FIFO        Requests of one session execute in issue order
//                       (per-session seq; out-of-order arrivals park in a
//                       bounded pool, cancelled seqs are skipped via a
//                       window bitmap).
//   graceful drain      begin_drain() flips the shard to shedding new work
//                       with a draining advisory while parked requests and
//                       open streams complete, so a shard can be retired
//                       without dropping admitted work.
//
// Allocation discipline: every table here is preallocated at construction
// and the steady-state request path is FM_HOT_PATH all the way down
// (tests/serve/serve_alloc_test proves zero allocations per served call).
// The chunked-response (rendezvous) path is the deliberate cold boundary.
//
// Threading contract: a Server belongs to the thread that owns its
// Endpoint, like every FM layer. Construct exactly one serve engine
// (Server or Client) per rank at the same registration point (SPMD handler
// agreement), and destroy it only after the cluster's traffic quiesced.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/annotate.h"
#include "common/check.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/registry.h"
#include "serve/config.h"
#include "serve/counters.h"
#include "serve/wire.h"

namespace fm::serve {

template <class E>
class Server {
 public:
  /// Lets a method hand its response back: either one reply() (eager or,
  /// for large payloads, transparently chunked under client credit) or
  /// append()+end() for explicitly streamed responses. A method that
  /// returns without replying gets an empty eager reply on its behalf.
  class ResponseWriter {
   public:
    /// Unary response. At most ServeConfig::max_response_bytes.
    FM_HOT_PATH void reply(const void* data, std::size_t len) {
      FM_CHECK_MSG(!replied_, "double reply");
      replied_ = true;
      srv_->respond(client_, session_, epoch_, seq_, data, len);
    }
    /// Streamed response: appends a piece (staged into a stream slot).
    FM_COLD_PATH void append(const void* data, std::size_t len) {
      FM_CHECK_MSG(!replied_, "append after reply");
      srv_->stream_append(*this, data, len);
    }
    /// Finishes an append()-built stream.
    FM_COLD_PATH void end() {
      FM_CHECK_MSG(!replied_, "end after reply");
      replied_ = true;
      srv_->stream_end(*this);
    }

   private:
    friend class Server;
    Server* srv_ = nullptr;
    NodeId client_ = 0;
    std::uint64_t session_ = 0;
    std::uint32_t epoch_ = 0;
    std::uint32_t seq_ = 0;
    std::int32_t stream_ = -1;  ///< Stream slot for append(), -1 until used.
    bool replied_ = false;
  };

  /// A serving method: request bytes in, response out through the writer.
  /// Runs in handler context on the shard thread (keep it non-blocking).
  using Method = std::function<void(NodeId client, std::uint64_t session,
                                    const void* data, std::size_t len,
                                    ResponseWriter& w)>;

  /// Wraps shard endpoint `ep`. Registers one FM handler — construct at
  /// the same registration point on every rank.
  explicit Server(E& ep, const ServeConfig& cfg = ServeConfig())
      : ep_(ep),
        cfg_(cfg),
        registry_("serve.node" + std::to_string(ep.id())) {
    FM_CHECK_MSG(cfg_.session_inflight_cap <= kSeqWindow,
                 "session_inflight_cap exceeds the seq window");
    FM_CHECK_MSG(cfg_.chunk_bytes >= 1 && cfg_.eager_max_bytes >= 1,
                 "degenerate serve sizes");
    // Session table: open addressing, power-of-two capacity, <= 50% load.
    std::size_t cap = 1;
    while (cap < cfg_.max_sessions * 2) cap <<= 1;
    sessions_.resize(cap);
    session_mask_ = cap - 1;
    pool_.resize(cfg_.shard_inflight_cap);
    pool_free_.resize(cfg_.shard_inflight_cap);
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      pool_[i].buf.resize(cfg_.max_request_bytes);
      pool_free_[i] = static_cast<std::uint32_t>(pool_.size() - 1 - i);
    }
    pool_free_len_ = pool_free_.size();
    streams_.resize(cfg_.max_streams);
    for (Stream& s : streams_) s.buf.resize(cfg_.max_response_bytes);
    tx_hdr_.resize(kWireHeaderBytes);
    counters_.register_into(registry_);
    registry_.gauge("sessions_active", [this] {
      return static_cast<double>(sessions_active_);
    });
    registry_.gauge("parked_depth", [this] {
      return static_cast<double>(pool_.size() - pool_free_len_);
    });
    registry_.gauge("streams_active", [this] {
      return static_cast<double>(streams_active_);
    });
    handler_ = ep_.register_handler(
        [this](E&, NodeId src, const void* data, std::size_t len) {
          on_message(src, data, len);
        });
  }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a method; every rank (server AND client engines) must agree
  /// on method ids, so register in the same order everywhere.
  std::uint16_t register_method(Method fn) {
    methods_.push_back(std::move(fn));
    return static_cast<std::uint16_t>(methods_.size() - 1);
  }

  /// Services the shard once: one extract() pass (requests execute inside).
  FM_HOT_PATH std::size_t poll() { return ep_.extract(); }

  /// Enters the draining state: new requests are shed with a draining
  /// advisory (clients rebalance the session elsewhere); parked requests
  /// and open streams run to completion.
  FM_COLD_PATH void begin_drain() { draining_ = true; }
  bool draining() const { return draining_; }
  /// True when no admitted work remains (safe to retire the shard).
  bool drained() const {
    return draining_ && pool_free_len_ == pool_.size() && streams_active_ == 0;
  }

  const ServerCounters& counters() const { return counters_; }
  /// FM-Scope registry ("serve.node<id>"). Publish into the cluster's
  /// RunReport from node_main, like the FM-San soak scope.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  E& endpoint() { return ep_; }

 private:
  friend class ResponseWriter;

  struct SessionSlot {
    std::uint64_t id = 0;
    std::uint32_t epoch = 0;
    std::uint32_t expected = 0;  ///< Next seq to execute.
    std::uint64_t skip = 0;      ///< Bit k: seq expected+k was cancelled.
    std::uint16_t parked = 0;    ///< This session's parked OOO requests.
    bool used = false;
  };

  struct Parked {
    bool used = false;
    NodeId client = 0;
    std::uint32_t sess_idx = 0;
    std::uint32_t seq = 0;
    std::uint32_t epoch = 0;
    std::uint16_t method = 0;
    std::uint32_t len = 0;
    std::vector<std::uint8_t> buf;  // max_request_bytes, fixed
  };

  struct Stream {
    bool used = false;
    NodeId client = 0;
    std::uint64_t session = 0;
    std::uint32_t epoch = 0;
    std::uint32_t seq = 0;
    std::uint32_t total = 0;   ///< Bytes staged (final once sending).
    std::uint32_t sent = 0;    ///< Bytes already chunked out.
    std::uint32_t credit = 0;  ///< Chunks granted but unsent.
    bool sending = false;      ///< kStreamBegin has gone out.
    std::vector<std::uint8_t> buf;  // max_response_bytes, fixed
  };

  FM_HOT_PATH static std::uint64_t mix64(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  /// Finds (or, when `create`, claims) the slot for `id`. Returns -1 when
  /// absent / table at the configured session bound.
  FM_HOT_PATH std::int64_t find_session(std::uint64_t id, bool create) {
    std::size_t idx = mix64(id) & session_mask_;
    for (;;) {
      SessionSlot& s = sessions_[idx];
      if (s.used && s.id == id) return static_cast<std::int64_t>(idx);
      if (!s.used) {
        if (!create) return -1;
        if (sessions_active_ >= cfg_.max_sessions) return -1;
        s.used = true;
        s.id = id;
        s.epoch = 0;
        s.expected = 0;
        s.skip = 0;
        s.parked = 0;
        ++sessions_active_;
        ++counters_.sessions_opened;
        return static_cast<std::int64_t>(idx);
      }
      idx = (idx + 1) & session_mask_;
    }
  }

  FM_HOT_PATH void send_control(NodeId dest, Op op, std::uint16_t method,
                                std::uint64_t session, std::uint32_t epoch,
                                std::uint32_t seq, std::uint32_t aux,
                                const void* body, std::size_t body_len) {
    WireHeader h;
    h.op = static_cast<std::uint16_t>(op);
    h.method = method;
    h.seq = seq;
    h.session = session;
    h.epoch = epoch;
    h.aux = aux;
    encode_header(tx_hdr_.data(), h);
    ep_.post_send2(dest, handler_, tx_hdr_.data(), kWireHeaderBytes, body,
                   body_len);
  }

  FM_HOT_PATH void shed(NodeId client, const WireHeader& req,
                        ShedReason why) {
    switch (why) {
      case ShedReason::kWindowFull: ++counters_.shed_window; break;
      case ShedReason::kShardFull: ++counters_.shed_shard_full; break;
      case ShedReason::kSessionCap: ++counters_.shed_session_cap; break;
      case ShedReason::kSessionTable: ++counters_.shed_table_full; break;
      case ShedReason::kDraining: ++counters_.shed_draining; break;
      case ShedReason::kTooLarge: ++counters_.shed_too_large; break;
    }
    send_control(client, Op::kShed, static_cast<std::uint16_t>(why),
                 req.session, req.epoch, req.seq, cfg_.retry_after_us,
                 nullptr, 0);
  }

  /// The return-to-sender signal surfaced as admission: true when the
  /// transport beneath this shard is already pushing back.
  FM_HOT_PATH bool transport_congested() const {
    return ep_.unacked() * 100 >=
               ep_.config().pending_window * cfg_.overload_window_pct ||
           ep_.reject_queue_depth() > cfg_.overload_rejectq_depth;
  }

  FM_HOT_PATH void on_message(NodeId src, const void* data, std::size_t len) {
    const WireHeader h = decode_header(data, len);
    const auto* body = static_cast<const std::uint8_t*>(data) +
                       kWireHeaderBytes;
    const std::size_t body_len = len - kWireHeaderBytes;
    switch (static_cast<Op>(h.op)) {
      case Op::kRequest:
        on_request(src, h, body, body_len);
        break;
      case Op::kCancel:
        on_cancel(h);
        break;
      case Op::kCredit:
        on_credit(src, h);
        break;
      case Op::kPing:
        break;  // liveness probe: the transport's acks are the answer
      default:
        FM_UNREACHABLE("bad serve op at server");
    }
  }

  FM_HOT_PATH void on_request(NodeId src, const WireHeader& h,
                              const std::uint8_t* body,
                              std::size_t body_len) {
    if (body_len > cfg_.max_request_bytes) {
      shed(src, h, ShedReason::kTooLarge);
      return;
    }
    if (draining_) {
      shed(src, h, ShedReason::kDraining);
      return;
    }
    if (transport_congested()) {
      shed(src, h, ShedReason::kWindowFull);
      return;
    }
    const std::int64_t si = find_session(h.session, /*create=*/true);
    if (si < 0) {
      shed(src, h, ShedReason::kSessionTable);
      return;
    }
    SessionSlot& s = sessions_[static_cast<std::size_t>(si)];
    if (h.epoch != s.epoch) {
      if (h.epoch < s.epoch) {  // stale epoch: the session moved on
        ++counters_.stale_dropped;
        return;
      }
      adopt_epoch(static_cast<std::uint32_t>(si), h.epoch);
    }
    if (h.seq < s.expected) {  // stale duplicate (FM-R dedup should prevent)
      ++counters_.stale_dropped;
      return;
    }
    const std::uint32_t gap = h.seq - s.expected;
    if (gap < kSeqWindow && (s.skip & (1ull << gap)) != 0) {
      // Cancelled before it arrived; the skip bit already advanced (or
      // will advance) the window past it.
      ++counters_.stale_dropped;
      return;
    }
    if (gap >= cfg_.session_inflight_cap) {
      shed(src, h, ShedReason::kSessionCap);
      return;
    }
    if (gap == 0) {
      ++counters_.requests_admitted;
      execute(src, static_cast<std::uint32_t>(si), h.method, h.seq, body,
              body_len);
      s.expected = h.seq + 1;
      s.skip >>= 1;
      advance(static_cast<std::uint32_t>(si));
      return;
    }
    // Out of order: park until the gap fills.
    if (pool_free_len_ == 0) {
      shed(src, h, ShedReason::kShardFull);
      return;
    }
    ++counters_.requests_admitted;
    ++counters_.ooo_parked;
    --pool_free_len_;
    Parked& p = pool_[pool_free_[pool_free_len_]];
    p.used = true;
    p.client = src;
    p.sess_idx = static_cast<std::uint32_t>(si);
    p.seq = h.seq;
    p.epoch = h.epoch;
    p.method = h.method;
    p.len = static_cast<std::uint32_t>(body_len);
    std::memcpy(p.buf.data(), body, body_len);
    ++s.parked;
  }

  FM_HOT_PATH void on_cancel(const WireHeader& h) {
    ++counters_.cancels_received;
    // create=true: a request shed BEFORE admission (too-large, congested,
    // draining) never materialized its session, but it did consume a seq
    // on the client — the owed kCancel must still plant the skip bit or
    // the session's next request parks forever behind a hole.
    const std::int64_t si = find_session(h.session, /*create=*/true);
    if (si < 0) return;
    SessionSlot& s = sessions_[static_cast<std::size_t>(si)];
    if (h.epoch < s.epoch) return;  // stale epoch: the session moved on
    if (h.epoch > s.epoch) adopt_epoch(static_cast<std::uint32_t>(si), h.epoch);
    if (h.seq < s.expected) return;  // already executed / advanced past
    const std::uint32_t gap = h.seq - s.expected;
    if (gap >= kSeqWindow) return;  // outside the representable window
    if (s.parked > 0) unpark_free(static_cast<std::uint32_t>(si), h.seq);
    s.skip |= 1ull << gap;
    ++counters_.cancels_applied;
    advance(static_cast<std::uint32_t>(si));
  }

  /// Frees a parked entry for (session slot, seq), if present.
  FM_HOT_PATH void unpark_free(std::uint32_t si, std::uint32_t seq) {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      Parked& p = pool_[i];
      if (p.used && p.sess_idx == si && p.seq == seq) {
        p.used = false;
        pool_free_[pool_free_len_] = static_cast<std::uint32_t>(i);
        ++pool_free_len_;
        --sessions_[si].parked;
        return;
      }
    }
  }

  /// Executes skip-advances and parked requests now at the session head.
  FM_HOT_PATH void advance(std::uint32_t si) {
    SessionSlot& s = sessions_[si];
    for (;;) {
      if ((s.skip & 1ull) != 0) {
        s.skip >>= 1;
        ++s.expected;
        continue;
      }
      if (s.parked == 0) return;
      std::int64_t found = -1;
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        const Parked& p = pool_[i];
        if (p.used && p.sess_idx == si && p.seq == s.expected) {
          found = static_cast<std::int64_t>(i);
          break;
        }
      }
      if (found < 0) return;
      Parked& p = pool_[static_cast<std::size_t>(found)];
      ++counters_.ooo_unparked;
      execute(p.client, si, p.method, p.seq, p.buf.data(), p.len);
      p.used = false;
      pool_free_[pool_free_len_] = static_cast<std::uint32_t>(found);
      ++pool_free_len_;
      --s.parked;
      ++s.expected;
      s.skip >>= 1;
    }
  }

  /// Drops every parked entry of a session (its epoch moved on).
  FM_COLD_PATH void drop_parked(std::uint32_t si) {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      Parked& p = pool_[i];
      if (p.used && p.sess_idx == si) {
        p.used = false;
        pool_free_[pool_free_len_] = static_cast<std::uint32_t>(i);
        ++pool_free_len_;
      }
    }
    sessions_[si].parked = 0;
  }

  FM_COLD_PATH void adopt_epoch(std::uint32_t si, std::uint32_t epoch) {
    SessionSlot& s = sessions_[si];
    if (s.parked > 0) drop_parked(si);
    s.epoch = epoch;
    s.expected = 0;
    s.skip = 0;
    ++counters_.epochs_adopted;
  }

  FM_HOT_PATH void execute(NodeId client, std::uint32_t si,
                           std::uint16_t method, std::uint32_t seq,
                           const void* body, std::size_t body_len) {
    SessionSlot& s = sessions_[si];
    FM_CHECK_MSG(method < methods_.size(), "request for unregistered method");
    ResponseWriter w;
    w.srv_ = this;
    w.client_ = client;
    w.session_ = s.id;
    w.epoch_ = s.epoch;
    w.seq_ = seq;
    methods_[method](client, s.id, body, body_len, w);
    if (!w.replied_) w.reply(nullptr, 0);  // every request gets a terminal
    ++counters_.requests_completed;
  }

  /// Unary response: eager when it fits, chunked under credit otherwise.
  FM_HOT_PATH void respond(NodeId client, std::uint64_t session,
                           std::uint32_t epoch, std::uint32_t seq,
                           const void* data, std::size_t len) {
    if (len <= cfg_.eager_max_bytes) {
      ++counters_.responses_eager;
      send_control(client, Op::kResponse, 0, session, epoch, seq, 0, data,
                   len);
      return;
    }
    stream_open(client, session, epoch, seq, data, len);
  }

  FM_COLD_PATH std::int32_t stream_claim(NodeId client, std::uint64_t session,
                                         std::uint32_t epoch,
                                         std::uint32_t seq) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i].used) continue;
      Stream& st = streams_[i];
      st.used = true;
      st.client = client;
      st.session = session;
      st.epoch = epoch;
      st.seq = seq;
      st.total = 0;
      st.sent = 0;
      st.credit = 0;
      st.sending = false;
      ++streams_active_;
      return static_cast<std::int32_t>(i);
    }
    return -1;
  }

  /// Large unary response -> the chunked (rendezvous) path: stage, then
  /// announce; the client pulls with credit so serving rings never see a
  /// fragment storm (PROTOCOL.md §11.4).
  FM_COLD_PATH void stream_open(NodeId client, std::uint64_t session,
                                std::uint32_t epoch, std::uint32_t seq,
                                const void* data, std::size_t len) {
    if (len > cfg_.max_response_bytes) {
      ++counters_.shed_too_large;
      send_control(client, Op::kShed,
                   static_cast<std::uint16_t>(ShedReason::kTooLarge), session,
                   epoch, seq, 0, nullptr, 0);
      return;
    }
    const std::int32_t i = stream_claim(client, session, epoch, seq);
    if (i < 0) {
      ++counters_.shed_shard_full;
      send_control(client, Op::kShed,
                   static_cast<std::uint16_t>(ShedReason::kShardFull), session,
                   epoch, seq, cfg_.retry_after_us, nullptr, 0);
      return;
    }
    Stream& st = streams_[static_cast<std::size_t>(i)];
    std::memcpy(st.buf.data(), data, len);
    st.total = static_cast<std::uint32_t>(len);
    stream_start(st);
  }

  FM_COLD_PATH void stream_append(ResponseWriter& w, const void* data,
                                  std::size_t len) {
    if (w.stream_ < 0) {
      w.stream_ = stream_claim(w.client_, w.session_, w.epoch_, w.seq_);
      // Stream exhaustion on the explicit path is a hard SPMD sizing bug,
      // not load: the test/bench declares its concurrency via max_streams.
      FM_CHECK_MSG(w.stream_ >= 0, "stream slots exhausted mid-append");
    }
    Stream& st = streams_[static_cast<std::size_t>(w.stream_)];
    FM_CHECK_MSG(st.total + len <= cfg_.max_response_bytes,
                 "streamed response exceeds max_response_bytes");
    std::memcpy(st.buf.data() + st.total, data, len);
    st.total += static_cast<std::uint32_t>(len);
  }

  FM_COLD_PATH void stream_end(ResponseWriter& w) {
    if (w.stream_ < 0) {
      // Nothing was appended: degenerate empty stream -> empty eager reply.
      ++counters_.responses_eager;
      send_control(w.client_, Op::kResponse, 0, w.session_, w.epoch_, w.seq_,
                   0, nullptr, 0);
      return;
    }
    stream_start(streams_[static_cast<std::size_t>(w.stream_)]);
  }

  FM_COLD_PATH void stream_start(Stream& st) {
    ++counters_.responses_streamed;
    st.sending = true;
    st.credit = static_cast<std::uint32_t>(cfg_.stream_credit_chunks);
    send_control(st.client, Op::kStreamBegin, 0, st.session, st.epoch, st.seq,
                 st.total, nullptr, 0);
    stream_pump(st);
  }

  FM_COLD_PATH void stream_pump(Stream& st) {
    while (st.credit > 0 && st.sent < st.total) {
      const std::uint32_t n = std::min(
          static_cast<std::uint32_t>(cfg_.chunk_bytes), st.total - st.sent);
      send_control(st.client, Op::kStreamChunk, 0, st.session, st.epoch,
                   st.seq, st.sent, st.buf.data() + st.sent, n);
      st.sent += n;
      --st.credit;
      ++counters_.stream_chunks_sent;
    }
    if (st.sent == st.total) {
      send_control(st.client, Op::kStreamEnd, 0, st.session, st.epoch, st.seq,
                   st.total, nullptr, 0);
      st.used = false;
      --streams_active_;
    }
  }

  FM_COLD_PATH void on_credit(NodeId src, const WireHeader& h) {
    for (Stream& st : streams_) {
      if (st.used && st.sending && st.client == src &&
          st.session == h.session && st.epoch == h.epoch && st.seq == h.seq) {
        st.credit += h.aux;
        stream_pump(st);
        return;
      }
    }
    // Credit for a finished stream: harmless straggler.
  }

  E& ep_;
  ServeConfig cfg_;
  HandlerId handler_ = 0;
  std::vector<Method> methods_;
  std::vector<SessionSlot> sessions_;
  std::size_t session_mask_ = 0;
  std::size_t sessions_active_ = 0;
  std::vector<Parked> pool_;
  std::vector<std::uint32_t> pool_free_;  // free-slot stack
  std::size_t pool_free_len_ = 0;
  std::vector<Stream> streams_;
  std::size_t streams_active_ = 0;
  std::vector<std::uint8_t> tx_hdr_;  // reusable header staging
  bool draining_ = false;
  ServerCounters counters_;
  // Declared last: gauges reference the members above (destroy first).
  obs::Registry registry_;
};

}  // namespace fm::serve
