// FM-Serve wire format: the session-multiplexing protocol every serve
// message rides (one FM handler per engine, like rpc/stream/rma).
//
// Fields are fixed-width and memcpy'd — the FM layer beneath handles
// framing, segmentation, and (with FM-R) reliable delivery, so this header
// only needs to be self-describing.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/annotate.h"
#include "common/check.h"

namespace fm::serve {

/// Width of the per-session skip/park window: seqs in
/// [expected, expected + 64) are representable on the wire, so
/// ServeConfig::session_inflight_cap must stay at or below this.
inline constexpr std::uint32_t kSeqWindow = 64;

/// Serve wire opcodes (WireHeader::op).
enum class Op : std::uint16_t {
  kRequest = 1,      ///< Client -> shard: invoke `method` (payload = args).
  kResponse = 2,     ///< Shard -> client: unary eager response (payload).
  kShed = 3,         ///< Shard -> client: admission control refused the
                     ///< request; `aux` = retry-after hint (us), `flags`
                     ///< carries the ShedReason.
  kCancel = 4,       ///< Client -> shard: abandon (session, seq) — the
                     ///< deadline expired or the caller cancelled.
  kStreamBegin = 5,  ///< Shard -> client: chunked response opens; `aux` =
                     ///< total byte length to expect.
  kStreamChunk = 6,  ///< Shard -> client: one chunk; `aux` = byte offset.
  kStreamEnd = 7,    ///< Shard -> client: chunked response complete.
  kCredit = 8,       ///< Client -> shard: grant `aux` more chunks.
  kDrainAdv = 9,     ///< Shard -> client: this shard is draining; move new
                     ///< traffic elsewhere (existing inflight completes).
  kPing = 10,        ///< Client -> shard: liveness probe from a stuck wait.
                     ///< No-op at the target; its FM-R acks (or their
                     ///< absence) are the information, exactly like the
                     ///< RMA engine's kPing (PROTOCOL.md §10).
};

/// Why a kShed reply refused the request (WireHeader::flags).
enum class ShedReason : std::uint16_t {
  kWindowFull = 1,    ///< Transport send window/ring congested (the
                      ///< return-to-sender signal, surfaced).
  kShardFull = 2,     ///< shard_inflight_cap or parking pool exhausted.
  kSessionCap = 3,    ///< Per-session inflight cap exceeded.
  kSessionTable = 4,  ///< No room for a new session on this shard.
  kDraining = 5,      ///< Shard is in the draining state.
  kTooLarge = 6,      ///< Request or response exceeds configured bounds.
};

/// Fixed preamble of every serve message.
struct WireHeader {
  std::uint16_t op = 0;       ///< Op.
  std::uint16_t method = 0;   ///< Method id (kRequest) / ShedReason (kShed).
  std::uint32_t seq = 0;      ///< Per-session, per-epoch request sequence.
  std::uint64_t session = 0;  ///< Logical session id.
  std::uint32_t epoch = 0;    ///< Session epoch (bumped on rebalance).
  std::uint32_t aux = 0;      ///< Op-specific (hint, offset, credit, len).
};

inline constexpr std::size_t kWireHeaderBytes = sizeof(WireHeader);
static_assert(kWireHeaderBytes == 24, "serve wire header layout drifted");

FM_HOT_PATH inline void encode_header(std::uint8_t* dst, const WireHeader& h) {
  std::memcpy(dst, &h, kWireHeaderBytes);
}

FM_HOT_PATH inline WireHeader decode_header(const void* src,
                                            std::size_t len) {
  FM_CHECK_MSG(len >= kWireHeaderBytes, "runt serve message");
  WireHeader h;
  std::memcpy(&h, src, kWireHeaderBytes);
  return h;
}

}  // namespace fm::serve
