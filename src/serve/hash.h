// Session -> shard placement: rendezvous (highest-random-weight) hashing.
//
// The serving plane presents one logical ingress over N shards; the
// "ingress" is this pure function, computed identically by every client,
// so no directory service sits on the request path. Rendezvous hashing
// gives the property the rebalancing story needs: when a shard leaves the
// live set (drain or death), only the sessions that lived on it move, and
// each lands on the shard that was its runner-up — no global reshuffle.
#pragma once

#include <cstdint>

#include "common/annotate.h"
#include "common/check.h"
#include "common/types.h"

namespace fm::serve {

/// Mixes (session, shard) into a comparable weight. SplitMix64 finisher:
/// cheap, and the avalanche is plenty for placement.
FM_HOT_PATH inline std::uint64_t placement_weight(std::uint64_t session,
                                                  std::uint32_t shard) {
  std::uint64_t x = session ^ (0x9e3779b97f4a7c15ull * (shard + 1));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// The owning shard for `session` among the live shards named by
/// `live_mask` (bit i = shard i is accepting). At least one bit must be
/// set. Shards are ranks [0, n_shards) of the cluster.
FM_HOT_PATH inline std::uint32_t shard_for(std::uint64_t session,
                                           std::uint32_t n_shards,
                                           std::uint64_t live_mask) {
  FM_CHECK_MSG(n_shards >= 1 && n_shards <= 64, "shard count out of range");
  FM_CHECK_MSG((live_mask & ((n_shards == 64 ? ~0ull
                                             : (1ull << n_shards) - 1))) != 0,
               "no live shards");
  std::uint32_t best = 0;
  std::uint64_t best_w = 0;
  bool found = false;
  for (std::uint32_t s = 0; s < n_shards; ++s) {
    if ((live_mask & (1ull << s)) == 0) continue;
    std::uint64_t w = placement_weight(session, s);
    if (!found || w > best_w) {
      best = s;
      best_w = w;
      found = true;
    }
  }
  return best;
}

}  // namespace fm::serve
