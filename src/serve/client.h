// serve::Client — the load-issuing side of the FM-Serve serving plane.
//
// A Client multiplexes thousands of logical sessions over one endpoint:
// each session is rendezvous-hashed to its owning shard (serve/hash.h), and
// every call carries (session, epoch, seq) so the shard can enforce
// per-session FIFO execution. The client is the half of the admission story
// the server cannot provide:
//
//   local shedding       call() never blocks. When the transport window is
//                        congested, a cap is hit, or the session is backing
//                        off after a remote shed, call() returns kOverload
//                        immediately (calls_shed_local) — open-loop load at
//                        2x capacity degrades into sheds, not deadlock.
//   deadlines + cancel   An amortized sweep fails overdue calls with
//                        kDeadline and tells the shard to skip the seq
//                        (kCancel), so one slow request never wedges its
//                        session's FIFO window.
//   rebalancing          When a shard drains (advisory sheds) or dies
//                        (FM-R kPeerDead), its sessions quiesce, bump their
//                        epoch, and rehash onto the surviving shards —
//                        per-session ordering is guaranteed within an
//                        epoch, which is exactly what survives a shard
//                        loss.
//   liveness             A session blocked on a silent shard emits kPing
//                        probes so FM-R's retransmit/dead-peer machinery
//                        has traffic to judge (the RMA engine's trick).
//
// Completions are delivered through ONE callback, set once, in per-session
// issue order (ordered release): a later response never fires before an
// earlier one of the same session, even when failures interleave. All
// tables are preallocated; the steady-state call/response path allocates
// nothing (tests/serve/serve_alloc_test).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/annotate.h"
#include "common/check.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/registry.h"
#include "serve/config.h"
#include "serve/counters.h"
#include "serve/hash.h"
#include "serve/wire.h"

namespace fm::serve {

/// Everything a completed call hands the completion callback. `data` is
/// valid only for the duration of the callback.
struct CallResult {
  std::uint64_t session = 0;
  std::uint32_t seq = 0;
  std::uint64_t cookie = 0;   ///< Caller's opaque tag from call().
  Status status = Status::kOk;
  const void* data = nullptr;  ///< Response bytes (kOk only).
  std::size_t len = 0;
  std::uint64_t issue_ns = 0;  ///< Steady-clock stamp when call() accepted.
};

template <class E>
class Client {
 public:
  using Completion = std::function<void(const CallResult&)>;

  /// Wraps client endpoint `ep` in a plane of `n_shards` server ranks
  /// (cluster ranks [0, n_shards)). Registers one FM handler — construct at
  /// the same registration point on every rank.
  Client(E& ep, std::uint32_t n_shards, const ServeConfig& cfg = ServeConfig())
      : ep_(ep),
        cfg_(cfg),
        n_shards_(n_shards),
        registry_("serve.node" + std::to_string(ep.id())) {
    FM_CHECK_MSG(n_shards_ >= 1 && n_shards_ <= 64, "shard count");
    FM_CHECK_MSG(cfg_.session_inflight_cap <= kSeqWindow,
                 "session_inflight_cap exceeds the seq window");
    live_mask_ = n_shards_ == 64 ? ~0ull : (1ull << n_shards_) - 1;
    std::size_t cap = 1;
    while (cap < cfg_.client_max_sessions * 2) cap <<= 1;
    sessions_.resize(cap);
    session_mask_ = cap - 1;
    calls_.resize(cfg_.client_inflight_cap);
    call_free_.resize(cfg_.client_inflight_cap);
    for (std::size_t i = 0; i < calls_.size(); ++i) {
      calls_[i].buf.resize(cfg_.eager_max_bytes);
      call_free_[i] = static_cast<std::uint32_t>(calls_.size() - 1 - i);
    }
    call_free_len_ = call_free_.size();
    streams_.resize(cfg_.client_max_streams);
    for (Stream& s : streams_) s.buf.resize(cfg_.max_response_bytes);
    tx_buf_.resize(kWireHeaderBytes + cfg_.max_request_bytes);
    last_ping_.resize(n_shards_, 0);
    counters_.register_into(registry_);
    registry_.gauge("inflight", [this] {
      return static_cast<double>(calls_.size() - call_free_len_);
    });
    registry_.gauge("live_shards", [this] {
      return static_cast<double>(__builtin_popcountll(live_mask_));
    });
    handler_ = ep_.register_handler(
        [this](E&, NodeId src, const void* data, std::size_t len) {
          on_message(src, data, len);
        });
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sets the single completion callback (required before the first call).
  void set_completion(Completion fn) { on_done_ = std::move(fn); }

  /// Issues one request on `session`. Returns kOk when the request is in
  /// flight (`cookie` comes back in the CallResult), or kOverload when the
  /// client shed it locally (backoff, caps, congested transport, moving
  /// session) — retry later; nothing was sent. Never blocks.
  FM_HOT_PATH Status call(std::uint64_t session, std::uint16_t method,
                          const void* data, std::size_t len,
                          std::uint64_t cookie = 0,
                          std::uint64_t deadline_ns = kDefaultDeadline) {
    FM_CHECK_MSG(on_done_, "set_completion() before call()");
    if (len > cfg_.max_request_bytes) return Status::kTooLarge;
    const std::int64_t sil = find_session(session);
    if (sil < 0) {
      ++counters_.calls_shed_local;
      return Status::kOverload;
    }
    const std::uint32_t si = static_cast<std::uint32_t>(sil);
    CSession& s = sessions_[si];
    const std::uint64_t t = now_ns();
    if (s.moving || t < s.backoff_until ||
        s.next_seq - s.next_done >= cfg_.session_inflight_cap ||
        call_free_len_ == 0 || transport_congested()) {
      ++counters_.calls_shed_local;
      return Status::kOverload;
    }
    const NodeId dest = static_cast<NodeId>(s.shard);
    if (ep_.peer_dead(dest)) {
      // Sweep will fail this shard's inflight and rebalance; shed for now.
      ++counters_.calls_shed_local;
      return Status::kOverload;
    }
    WireHeader h;
    h.op = static_cast<std::uint16_t>(Op::kRequest);
    h.method = method;
    h.seq = s.next_seq;
    h.session = session;
    h.epoch = s.epoch;
    h.aux = 0;
    encode_header(tx_buf_.data(), h);
    std::memcpy(tx_buf_.data() + kWireHeaderBytes, data, len);
    const Status st =
        ep_.send(dest, handler_, tx_buf_.data(), kWireHeaderBytes + len);
    if (st != Status::kOk) {
      // Window full (kAgain) or peer died under us: nothing left the node,
      // the seq was not consumed — surface as a local shed.
      ++counters_.calls_shed_local;
      return Status::kOverload;
    }
    --call_free_len_;
    const std::uint32_t ci = call_free_[call_free_len_];
    Call& c = calls_[ci];
    c.used = true;
    c.done = false;
    c.cancel_pending = false;
    c.stream = -1;
    c.sess = si;
    c.seq = h.seq;
    c.epoch = s.epoch;
    c.cookie = cookie;
    c.issue_ns = t;
    c.deadline_ns =
        deadline_ns == kDefaultDeadline ? cfg_.default_deadline_ns : deadline_ns;
    c.status = Status::kOk;
    c.resp_len = 0;
    s.call_of[h.seq % kSeqWindow] = ci;
    ++s.next_seq;
    ++counters_.calls_issued;
    return Status::kOk;
  }

  /// Cancels an inflight call: it completes kCancelled (in session order)
  /// and the shard is told to skip the seq. No-op if already completed.
  Status cancel(std::uint64_t session, std::uint32_t seq) {
    const std::int64_t sil = find_session_existing(session);
    if (sil < 0) return Status::kBadArgument;
    CSession& s = sessions_[static_cast<std::size_t>(sil)];
    if (seq < s.next_done || seq >= s.next_seq) return Status::kBadArgument;
    Call& c = calls_[s.call_of[seq % kSeqWindow]];
    if (c.done) return Status::kOk;  // racing a response: response won
    // Tell the shard to skip the seq: a no-op when the request already
    // executed (the skip arrives behind it), but it unblocks the server's
    // FIFO window if the request was shed there before admission.
    c.cancel_pending = true;
    finish(c, Status::kCancelled);
    release(static_cast<std::uint32_t>(sil));
    return Status::kOk;
  }

  /// Services the client once: delivers responses (firing completions),
  /// then runs the amortized deadline/liveness sweep. Returns the number
  /// of FM messages extracted.
  FM_HOT_PATH std::size_t poll() {
    const std::size_t n = ep_.extract();
    const std::uint64_t t = now_ns();
    if (t - last_sweep_ >= cfg_.sweep_interval_ns) {
      last_sweep_ = t;
      sweep(t);
    }
    return n;
  }

  /// Outstanding calls (issued, completion not yet fired).
  std::size_t inflight() const { return calls_.size() - call_free_len_; }
  bool quiesced() const { return inflight() == 0; }

  /// Shards currently accepting new sessions (bit i = shard rank i).
  std::uint64_t live_mask() const { return live_mask_; }
  std::uint32_t n_shards() const { return n_shards_; }
  /// The shard rank `session` currently maps to.
  std::uint32_t shard_of(std::uint64_t session) {
    const std::int64_t si = find_session(session);
    FM_CHECK(si >= 0);
    return sessions_[static_cast<std::size_t>(si)].shard;
  }

  const ClientCounters& counters() const { return counters_; }
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  E& endpoint() { return ep_; }

  /// Sentinel for call()'s deadline parameter: use the config default.
  static constexpr std::uint64_t kDefaultDeadline = ~0ull;

 private:
  struct CSession {
    std::uint64_t id = 0;
    bool used = false;
    bool moving = false;  ///< Quiescing before a rebalance.
    std::uint32_t epoch = 0;
    std::uint32_t shard = 0;
    std::uint32_t next_seq = 0;   ///< Next seq to issue.
    std::uint32_t next_done = 0;  ///< Next seq to release (fire completion).
    std::uint64_t backoff_until = 0;  ///< Honoring a retry-after hint.
    std::uint32_t call_of[kSeqWindow];  ///< Slot by seq % window.
  };

  struct Call {
    bool used = false;
    bool done = false;            ///< Finished, awaiting ordered release.
    bool cancel_pending = false;  ///< kCancel owed to the shard.
    std::int32_t stream = -1;     ///< Reassembly slot for chunked responses.
    std::uint32_t sess = 0;
    std::uint32_t seq = 0;
    std::uint32_t epoch = 0;
    std::uint64_t cookie = 0;
    std::uint64_t issue_ns = 0;
    std::uint64_t deadline_ns = 0;  ///< Relative to issue; 0 = none.
    Status status = Status::kOk;
    std::uint32_t resp_len = 0;
    std::vector<std::uint8_t> buf;  // eager_max_bytes, fixed
  };

  struct Stream {
    bool used = false;
    std::uint32_t total = 0;
    std::uint32_t received = 0;
    std::uint32_t pending_grant = 0;
    std::vector<std::uint8_t> buf;  // max_response_bytes, fixed
  };

  FM_HOT_PATH static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  FM_HOT_PATH static std::uint64_t mix64(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  FM_HOT_PATH bool transport_congested() const {
    return ep_.unacked() * 100 >=
               ep_.config().pending_window * cfg_.overload_window_pct ||
           ep_.reject_queue_depth() > cfg_.overload_rejectq_depth;
  }

  /// Finds or opens the client-side slot for `id` (-1: table at capacity).
  FM_HOT_PATH std::int64_t find_session(std::uint64_t id) {
    std::size_t idx = mix64(id) & session_mask_;
    for (;;) {
      CSession& s = sessions_[idx];
      if (s.used && s.id == id) return static_cast<std::int64_t>(idx);
      if (!s.used) {
        if (sessions_active_ >= cfg_.client_max_sessions) return -1;
        s.used = true;
        s.id = id;
        s.moving = false;
        s.epoch = 0;
        s.shard = shard_for(id, n_shards_, live_mask_);
        s.next_seq = 0;
        s.next_done = 0;
        s.backoff_until = 0;
        for (std::uint32_t& c : s.call_of) c = kNoCall;
        ++sessions_active_;
        return static_cast<std::int64_t>(idx);
      }
      idx = (idx + 1) & session_mask_;
    }
  }

  FM_HOT_PATH std::int64_t find_session_existing(std::uint64_t id) {
    std::size_t idx = mix64(id) & session_mask_;
    for (;;) {
      CSession& s = sessions_[idx];
      if (s.used && s.id == id) return static_cast<std::int64_t>(idx);
      if (!s.used) return -1;
      idx = (idx + 1) & session_mask_;
    }
  }

  /// Looks up the inflight call a server message addresses; kNoCall when
  /// it refers to a released call or a stale epoch (an orphan).
  FM_HOT_PATH std::uint32_t locate(const WireHeader& h) {
    const std::int64_t sil = find_session_existing(h.session);
    if (sil < 0) return kNoCall;
    CSession& s = sessions_[static_cast<std::size_t>(sil)];
    if (h.epoch != s.epoch || h.seq < s.next_done || h.seq >= s.next_seq)
      return kNoCall;
    const std::uint32_t ci = s.call_of[h.seq % kSeqWindow];
    if (ci == kNoCall) return kNoCall;
    const Call& c = calls_[ci];
    if (!c.used || c.done || c.seq != h.seq || c.epoch != h.epoch)
      return kNoCall;
    return ci;
  }

  FM_HOT_PATH void on_message(NodeId src, const void* data, std::size_t len) {
    const WireHeader h = decode_header(data, len);
    const auto* body =
        static_cast<const std::uint8_t*>(data) + kWireHeaderBytes;
    const std::size_t body_len = len - kWireHeaderBytes;
    switch (static_cast<Op>(h.op)) {
      case Op::kResponse:
        on_response(h, body, body_len);
        break;
      case Op::kShed:
        on_shed(src, h);
        break;
      case Op::kStreamBegin:
        on_stream_begin(h);
        break;
      case Op::kStreamChunk:
        on_stream_chunk(src, h, body, body_len);
        break;
      case Op::kStreamEnd:
        on_stream_end(h);
        break;
      case Op::kDrainAdv:
        ++counters_.drain_advisories;
        retire_shard(src);
        break;
      default:
        FM_UNREACHABLE("bad serve op at client");
    }
  }

  FM_HOT_PATH void on_response(const WireHeader& h, const std::uint8_t* body,
                               std::size_t body_len) {
    const std::uint32_t ci = locate(h);
    if (ci == kNoCall) {
      ++counters_.orphan_responses;
      return;
    }
    Call& c = calls_[ci];
    FM_CHECK_MSG(body_len <= c.buf.size(), "eager response over eager_max");
    std::memcpy(c.buf.data(), body, body_len);
    c.resp_len = static_cast<std::uint32_t>(body_len);
    finish(c, Status::kOk);
    release(c.sess);
  }

  FM_HOT_PATH void on_shed(NodeId src, const WireHeader& h) {
    const std::uint32_t ci = locate(h);
    const auto why = static_cast<ShedReason>(h.method);
    if (why == ShedReason::kDraining) {
      ++counters_.drain_advisories;
      retire_shard(src);
    } else if (ci != kNoCall) {
      // Back the session off for at least the server's retry-after hint.
      CSession& s = sessions_[calls_[ci].sess];
      const std::uint64_t until = now_ns() + h.aux * 1000ull;
      if (until > s.backoff_until) s.backoff_until = until;
    }
    if (ci == kNoCall) {
      ++counters_.orphan_responses;
      return;
    }
    Call& c = calls_[ci];
    // The shard never admitted this seq; tell it to skip so the session's
    // FIFO window can move past (later seqs may already be parked there).
    c.cancel_pending = true;
    finish(c, Status::kOverload);
    release(c.sess);
  }

  FM_COLD_PATH void on_stream_begin(const WireHeader& h) {
    const std::uint32_t ci = locate(h);
    if (ci == kNoCall) {
      ++counters_.orphan_responses;
      return;
    }
    Call& c = calls_[ci];
    FM_CHECK_MSG(c.stream < 0, "duplicate kStreamBegin");
    FM_CHECK_MSG(h.aux <= cfg_.max_response_bytes, "stream over bound");
    std::int32_t free = -1;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (!streams_[i].used) {
        free = static_cast<std::int32_t>(i);
        break;
      }
    }
    FM_CHECK_MSG(free >= 0, "client stream slots exhausted (sizing bug)");
    Stream& st = streams_[static_cast<std::size_t>(free)];
    st.used = true;
    st.total = h.aux;
    st.received = 0;
    st.pending_grant = 0;
    c.stream = free;
  }

  FM_COLD_PATH void on_stream_chunk(NodeId src, const WireHeader& h,
                                    const std::uint8_t* body,
                                    std::size_t body_len) {
    const std::uint32_t ci = locate(h);
    if (ci == kNoCall) {
      ++counters_.orphan_responses;
      return;
    }
    Call& c = calls_[ci];
    FM_CHECK_MSG(c.stream >= 0, "chunk before kStreamBegin");
    Stream& st = streams_[static_cast<std::size_t>(c.stream)];
    FM_CHECK_MSG(h.aux + body_len <= st.total, "chunk past announced total");
    std::memcpy(st.buf.data() + h.aux, body, body_len);
    st.received += static_cast<std::uint32_t>(body_len);
    ++counters_.chunks_received;
    ++st.pending_grant;
    if (st.pending_grant >= cfg_.stream_credit_chunks) {
      send_ctl(src, Op::kCredit, 0, h.session, h.epoch, h.seq,
               st.pending_grant);
      ++counters_.credits_sent;
      st.pending_grant = 0;
    }
  }

  FM_COLD_PATH void on_stream_end(const WireHeader& h) {
    const std::uint32_t ci = locate(h);
    if (ci == kNoCall) {
      ++counters_.orphan_responses;
      return;
    }
    Call& c = calls_[ci];
    FM_CHECK_MSG(c.stream >= 0, "kStreamEnd before kStreamBegin");
    Stream& st = streams_[static_cast<std::size_t>(c.stream)];
    FM_CHECK_MSG(st.received == st.total, "stream ended short");
    c.resp_len = st.total;
    finish(c, Status::kOk);
    release(c.sess);
  }

  /// Marks a call finished; the ordered release loop fires its completion.
  FM_HOT_PATH void finish(Call& c, Status st) {
    c.done = true;
    c.status = st;
  }

  /// Fires completions in seq order from next_done; stops at the first
  /// unfinished call (or one still owing its kCancel to the shard).
  FM_HOT_PATH void release(std::uint32_t si) {
    CSession& s = sessions_[si];
    while (s.next_done != s.next_seq) {
      const std::uint32_t ci = s.call_of[s.next_done % kSeqWindow];
      if (ci == kNoCall) break;
      Call& c = calls_[ci];
      if (!c.done) break;
      if (c.cancel_pending && !try_send_cancel(s, c)) break;
      CallResult r;
      r.session = s.id;
      r.seq = c.seq;
      r.cookie = c.cookie;
      r.status = c.status;
      r.data = c.stream >= 0
                   ? streams_[static_cast<std::size_t>(c.stream)].buf.data()
                   : c.buf.data();
      r.len = c.resp_len;
      r.issue_ns = c.issue_ns;
      switch (c.status) {
        case Status::kOk: ++counters_.calls_completed; break;
        case Status::kOverload: ++counters_.calls_shed_remote; break;
        case Status::kDeadline: ++counters_.calls_deadline; break;
        case Status::kCancelled: ++counters_.calls_cancelled; break;
        case Status::kPeerDead: ++counters_.calls_dead_peer; break;
        default: break;
      }
      on_done_(r);
      if (c.stream >= 0) {
        streams_[static_cast<std::size_t>(c.stream)].used = false;
        c.stream = -1;
      }
      c.used = false;
      call_free_[call_free_len_] = ci;
      ++call_free_len_;
      s.call_of[s.next_done % kSeqWindow] = kNoCall;
      ++s.next_done;
    }
    if (s.moving && s.next_done == s.next_seq) finish_move(si);
  }

  /// Sends the kCancel a finished call owes its shard. False when the
  /// local window is full (retried by the sweep).
  FM_HOT_PATH bool try_send_cancel(CSession& s, Call& c) {
    const NodeId dest = static_cast<NodeId>(s.shard);
    if (ep_.peer_dead(dest)) {
      c.cancel_pending = false;  // nobody left to tell
      return true;
    }
    const Status st = send_ctl(dest, Op::kCancel, 0, s.id, c.epoch, c.seq, 0);
    if (st != Status::kOk) return false;
    c.cancel_pending = false;
    ++counters_.cancels_sent;
    return true;
  }

  FM_HOT_PATH Status send_ctl(NodeId dest, Op op, std::uint16_t method,
                              std::uint64_t session, std::uint32_t epoch,
                              std::uint32_t seq, std::uint32_t aux) {
    WireHeader h;
    h.op = static_cast<std::uint16_t>(op);
    h.method = method;
    h.seq = seq;
    h.session = session;
    h.epoch = epoch;
    h.aux = aux;
    encode_header(tx_buf_.data(), h);
    return ep_.send_or_post(dest, handler_, tx_buf_.data(), kWireHeaderBytes);
  }

  /// Deadline, owed-cancel retry, dead-shard, and liveness pass. Amortized:
  /// runs every sweep_interval_ns from poll().
  FM_HOT_PATH void sweep(std::uint64_t t) {
    bool any_on_shard[64] = {};
    for (std::size_t ci = 0; ci < calls_.size(); ++ci) {
      Call& c = calls_[ci];
      if (!c.used) continue;
      CSession& s = sessions_[c.sess];
      if (!c.done && c.deadline_ns != 0 &&
          t - c.issue_ns >= c.deadline_ns) {
        // Overdue: fail it and tell the shard to skip the seq so the
        // session's window advances even if the request never executed.
        c.cancel_pending = true;
        finish(c, Status::kDeadline);
      }
      if (!c.done) any_on_shard[s.shard] = true;
      if (c.done) release(c.sess);
    }
    for (std::uint32_t sh = 0; sh < n_shards_; ++sh) {
      if ((live_mask_ & (1ull << sh)) != 0 &&
          ep_.peer_dead(static_cast<NodeId>(sh))) {
        on_shard_dead(sh);
        continue;
      }
      if (any_on_shard[sh] && !ep_.peer_dead(static_cast<NodeId>(sh)) &&
          t - last_ping_[sh] >= cfg_.ping_interval_ns) {
        last_ping_[sh] = t;
        if (send_ctl(static_cast<NodeId>(sh), Op::kPing, 0, 0, 0, 0, 0) ==
            Status::kOk)
          ++counters_.pings_sent;
      }
    }
  }

  /// A shard left the live set (drain advisory): sessions mapped there
  /// quiesce and rehash; inflight work completes normally first.
  FM_COLD_PATH void retire_shard(std::uint32_t shard) {
    if ((live_mask_ & (1ull << shard)) == 0) return;  // already retired
    live_mask_ &= ~(1ull << shard);
    FM_CHECK_MSG(live_mask_ != 0, "every shard retired");
    for (std::size_t si = 0; si < sessions_.size(); ++si) {
      CSession& s = sessions_[si];
      if (!s.used || s.shard != shard) continue;
      if (s.next_done == s.next_seq) {
        finish_move(static_cast<std::uint32_t>(si));
      } else {
        s.moving = true;
      }
    }
  }

  /// A shard died (FM-R verdict): its inflight calls fail kPeerDead and
  /// its sessions rehash.
  FM_COLD_PATH void on_shard_dead(std::uint32_t shard) {
    live_mask_ &= ~(1ull << shard);
    FM_CHECK_MSG(live_mask_ != 0, "every shard dead");
    for (std::size_t ci = 0; ci < calls_.size(); ++ci) {
      Call& c = calls_[ci];
      if (!c.used || c.done) continue;
      if (sessions_[c.sess].shard != shard) continue;
      c.cancel_pending = false;  // nobody left to tell
      finish(c, Status::kPeerDead);
    }
    for (std::size_t si = 0; si < sessions_.size(); ++si) {
      CSession& s = sessions_[si];
      if (!s.used || s.shard != shard) continue;
      s.moving = true;
      release(static_cast<std::uint32_t>(si));  // fires + moves if empty
    }
  }

  /// The session quiesced: adopt a new epoch on its new shard. Ordering is
  /// per-epoch, so the seq space restarts at zero.
  FM_COLD_PATH void finish_move(std::uint32_t si) {
    CSession& s = sessions_[si];
    s.shard = shard_for(s.id, n_shards_, live_mask_);
    ++s.epoch;
    s.next_seq = 0;
    s.next_done = 0;
    s.moving = false;
    s.backoff_until = 0;
    for (std::uint32_t& c : s.call_of) c = kNoCall;
    ++counters_.rebalances;
  }

  static constexpr std::uint32_t kNoCall = 0xffffffffu;

  E& ep_;
  ServeConfig cfg_;
  std::uint32_t n_shards_;
  std::uint64_t live_mask_ = 0;
  HandlerId handler_ = 0;
  Completion on_done_;
  std::vector<CSession> sessions_;
  std::size_t session_mask_ = 0;
  std::size_t sessions_active_ = 0;
  std::vector<Call> calls_;
  std::vector<std::uint32_t> call_free_;  // free-slot stack
  std::size_t call_free_len_ = 0;
  std::vector<Stream> streams_;
  std::vector<std::uint8_t> tx_buf_;  // header+payload staging
  std::vector<std::uint64_t> last_ping_;
  std::uint64_t last_sweep_ = 0;
  ClientCounters counters_;
  // Declared last: gauges reference the members above (destroy first).
  obs::Registry registry_;
};

}  // namespace fm::serve
