// Explicit instantiations of the serving plane for the two real
// transports. (The sim backend's coroutine scheduler has no preemptive
// shard loop to serve from; see the backend matrix in README.md.)
#include "net/endpoint.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shm/endpoint.h"

namespace fm::serve {

template class Server<shm::Endpoint>;
template class Server<net::Endpoint>;
template class Client<shm::Endpoint>;
template class Client<net::Endpoint>;

}  // namespace fm::serve
