// FM-Serve counter blocks: the `serve.node<i>` FM-Scope scope.
//
// One serving rank owns exactly one of these blocks — ServerCounters on a
// shard rank, ClientCounters on a load-issuing rank — registered into a
// rank-local obs::Registry and published into the RunReport alongside the
// endpoint's transport counters, so every serving artifact carries both
// the admission story (this scope) and the transport story (shm.*/net.*)
// for the same run. All names are documented in docs/OBSERVABILITY.md §1
// (the fm_lint counter-scope gate enforces that).
#pragma once

#include <cstdint>

#include "obs/registry.h"

namespace fm::serve {

/// Shard-side (server) counters. Plain uint64 fields; the hot shard loop
/// pays one increment per event (FM-Scope design rule).
struct ServerCounters {
  std::uint64_t requests_admitted = 0;   ///< Passed admission control.
  std::uint64_t requests_completed = 0;  ///< Executed and responded.
  std::uint64_t responses_eager = 0;     ///< Unary one-message responses.
  std::uint64_t responses_streamed = 0;  ///< Chunked/credit responses begun.
  std::uint64_t stream_chunks_sent = 0;  ///< kStreamChunk messages sent.
  std::uint64_t shed_window = 0;         ///< kOverload: transport window/ring
                                         ///< congested (return-to-sender
                                         ///< surfaced, PROTOCOL.md §11).
  std::uint64_t shed_shard_full = 0;     ///< kOverload: shard inflight pool
                                         ///< or stream slots exhausted.
  std::uint64_t shed_session_cap = 0;    ///< kOverload: per-session cap hit.
  std::uint64_t shed_table_full = 0;     ///< kOverload: session table full.
  std::uint64_t shed_draining = 0;       ///< Shed because shard is draining.
  std::uint64_t shed_too_large = 0;      ///< Request exceeded size bounds.
  std::uint64_t ooo_parked = 0;          ///< Out-of-order requests parked.
  std::uint64_t ooo_unparked = 0;        ///< Parked requests later executed.
  std::uint64_t cancels_received = 0;    ///< kCancel messages received.
  std::uint64_t cancels_applied = 0;     ///< Cancels that skipped a seq.
  std::uint64_t stale_dropped = 0;       ///< Stale-epoch / stale-seq drops.
  std::uint64_t sessions_opened = 0;     ///< Session slots first occupied.
  std::uint64_t epochs_adopted = 0;      ///< Rebalanced sessions adopted.

  void register_into(obs::Registry& r) const {
    r.assert_owner();
    r.counter("requests_admitted", &requests_admitted);
    r.counter("requests_completed", &requests_completed);
    r.counter("responses_eager", &responses_eager);
    r.counter("responses_streamed", &responses_streamed);
    r.counter("stream_chunks_sent", &stream_chunks_sent);
    r.counter("shed_window", &shed_window);
    r.counter("shed_shard_full", &shed_shard_full);
    r.counter("shed_session_cap", &shed_session_cap);
    r.counter("shed_table_full", &shed_table_full);
    r.counter("shed_draining", &shed_draining);
    r.counter("shed_too_large", &shed_too_large);
    r.counter("ooo_parked", &ooo_parked);
    r.counter("ooo_unparked", &ooo_unparked);
    r.counter("cancels_received", &cancels_received);
    r.counter("cancels_applied", &cancels_applied);
    r.counter("stale_dropped", &stale_dropped);
    r.counter("sessions_opened", &sessions_opened);
    r.counter("epochs_adopted", &epochs_adopted);
  }

  /// Total kOverload-class sheds (every reason except too-large, which is a
  /// caller bug rather than load).
  std::uint64_t shed_total() const {
    return shed_window + shed_shard_full + shed_session_cap +
           shed_table_full + shed_draining;
  }
};

/// Client-side (load-issuing) counters.
struct ClientCounters {
  std::uint64_t calls_issued = 0;        ///< Requests sent to a shard.
  std::uint64_t calls_completed = 0;     ///< Completed with kOk.
  std::uint64_t calls_shed_remote = 0;   ///< Completed kOverload via kShed.
  std::uint64_t calls_shed_local = 0;    ///< Refused before sending (local
                                         ///< window check, caps, backoff).
  std::uint64_t calls_deadline = 0;      ///< Completed kDeadline (timeout).
  std::uint64_t calls_dead_peer = 0;     ///< Completed kPeerDead.
  std::uint64_t calls_cancelled = 0;     ///< Completed kCancelled (caller).
  std::uint64_t cancels_sent = 0;        ///< kCancel messages issued.
  std::uint64_t rebalances = 0;          ///< Sessions moved to a new shard.
  std::uint64_t pings_sent = 0;          ///< Liveness probes at stuck shards.
  std::uint64_t credits_sent = 0;        ///< kCredit grants issued.
  std::uint64_t chunks_received = 0;     ///< kStreamChunk messages received.
  std::uint64_t drain_advisories = 0;    ///< kDrainAdv / draining sheds seen.
  std::uint64_t orphan_responses = 0;    ///< Responses for already-released
                                         ///< calls (late after deadline).

  void register_into(obs::Registry& r) const {
    r.assert_owner();
    r.counter("calls_issued", &calls_issued);
    r.counter("calls_completed", &calls_completed);
    r.counter("calls_shed_remote", &calls_shed_remote);
    r.counter("calls_shed_local", &calls_shed_local);
    r.counter("calls_deadline", &calls_deadline);
    r.counter("calls_dead_peer", &calls_dead_peer);
    r.counter("calls_cancelled", &calls_cancelled);
    r.counter("cancels_sent", &cancels_sent);
    r.counter("rebalances", &rebalances);
    r.counter("pings_sent", &pings_sent);
    r.counter("credits_sent", &credits_sent);
    r.counter("chunks_received", &chunks_received);
    r.counter("drain_advisories", &drain_advisories);
    r.counter("orphan_responses", &orphan_responses);
  }
};

}  // namespace fm::serve
