// FM-Serve layer configuration.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fm::serve {

/// Tunables of the sharded serving plane. The sizing fields are hard
/// preallocation bounds: the shard loop is allocation-free after
/// construction (the serve analogue of PROTOCOL.md §8's zero-copy
/// guarantee, enforced by tests/serve/serve_alloc_test), so every table is
/// a fixed slab and exhausting one is an admission decision (kOverload),
/// never a realloc.
struct ServeConfig {
  /// Logical sessions one shard will hold state for. A request for an
  /// unknown session past this bound is shed with kOverload.
  std::size_t max_sessions = 4096;

  /// Admitted-but-unfinished requests one session may have on its shard.
  /// The client enforces the same cap locally, so a well-behaved client
  /// never trips the server-side check; the server still enforces it
  /// (clients are not trusted to be well-behaved at scale).
  std::size_t session_inflight_cap = 8;

  /// Admitted-but-unfinished requests across the whole shard. This bounds
  /// the out-of-order parking pool (below) and is the serve-level analogue
  /// of FmConfig::pending_window.
  std::size_t shard_inflight_cap = 256;

  /// Largest request payload a client may issue (bounds the parking pool's
  /// per-slot slab).
  std::size_t max_request_bytes = 4096;

  /// Largest single response a method may produce. Responses above
  /// eager_max_bytes go through the chunked/credit path but still must fit
  /// one stream slot's staging buffer.
  std::size_t max_response_bytes = 64 * 1024;

  /// Unary responses at most this large ride one FM message (the eager
  /// leg); larger ones are chunked and pulled by the client under credit —
  /// the MPICH2 eager/rendezvous split one layer up, so a large response
  /// cannot fragment-storm the serving rings (PROTOCOL.md §11.4).
  std::size_t eager_max_bytes = 2048;

  /// Chunk size for the credit-pulled (rendezvous) response path.
  std::size_t chunk_bytes = 1024;

  /// Chunks of credit a client grants a stream at a time.
  std::size_t stream_credit_chunks = 4;

  /// Concurrent chunked/streaming responses one shard will stage. Each slot
  /// preallocates max_response_bytes, so keep it modest.
  std::size_t max_streams = 8;

  /// Send-window occupancy (fraction of FmConfig::pending_window, in
  /// percent) above which new requests are shed with kOverload instead of
  /// queueing behind a congested transport. This is the paper's
  /// return-to-sender signal surfaced as admission control: a full window
  /// means the receiver-side pools (or the ring) are already pushing back.
  std::size_t overload_window_pct = 75;

  /// Reject-queue depth above which the shard sheds. Frames parked for
  /// retransmission mean peers are actively bouncing our traffic.
  std::size_t overload_rejectq_depth = 32;

  /// Retry-after hint attached to kOverload shed replies, microseconds.
  /// Clients back off at least this long before retrying the session.
  std::uint32_t retry_after_us = 200;

  /// Client-side default deadline for a call, nanoseconds. 0 = no deadline.
  std::uint64_t default_deadline_ns = 50'000'000;  // 50 ms

  /// Outstanding calls one client engine may have across all sessions
  /// (bounds its preallocated call table).
  std::size_t client_inflight_cap = 1024;

  /// Client-side cap on sessions (bounds its preallocated session table).
  std::size_t client_max_sessions = 4096;

  /// Concurrent chunked responses one client engine will reassemble. Shards
  /// bound theirs by max_streams; a client talking to several shards needs
  /// headroom for the sum, and exhausting this is a sizing bug (checked),
  /// not load.
  std::size_t client_max_streams = 32;

  /// How often the client's poll() runs its deadline/liveness sweep.
  std::uint64_t sweep_interval_ns = 100'000;  // 100 us

  /// Minimum spacing between liveness probes (kPing) at one stuck shard.
  /// Pings keep FM-R traffic flowing at a silent peer so dead-peer
  /// detection can trip (the RMA engine's trick, PROTOCOL.md §10).
  std::uint64_t ping_interval_ns = 500'000;  // 500 us
};

}  // namespace fm::serve
