// The "streamed" LCP main loop — Figure 2(b).
//
//   repeat forever
//     while send channel is available and hostsent != lanaisent
//       send packet from a fixed buffer location; lanaisent++
//     end while
//     while a packet is available on the receive channel
//       receive packet into a fixed buffer location
//     end while
//   end repeat
//
// "The second version of the LCP loop, streamed, optimizes performance by
// consolidating checks for queue management and by streaming sends and
// receives" — the condition is evaluated once per burst, each additional
// packet pays only the inner-loop closure. Table 4: t0 = 3.5 us,
// n_1/2 = 249 B. This loop is the base of every later FM layer ("In all
// cases, the streamed version is significantly better, so we build on the
// streamed LCP loop from this point forward").
#pragma once

#include "lcp/lcp.h"

namespace fm::lcp {

/// Figure 2(b): burst-draining send and receive loops.
class StreamedLcp : public Lcp {
 public:
  using Lcp::Lcp;

 protected:
  sim::Task run() override {
    auto& lanai = nic().lanai();
    const auto& c = params_.lcp;
    while (!stopping_) {
      if (!actionable()) {
        co_await wait_for_work();
        continue;
      }
      // One consolidated send-condition check, then drain.
      co_await lanai.exec(c.check_send);
      while (send_work() && !nic().out_dma().busy()) {
        co_await lanai.exec(c.streamed_loop + c.send_path);
        nic().start_transmit(pop_send());
      }
      // One consolidated receive-condition check, then drain.
      co_await lanai.exec(c.check_recv);
      hw::Packet p;
      while (try_recv(p)) {
        co_await lanai.exec(c.streamed_loop + c.recv_path);
        if (on_receive_) on_receive_(p);
      }
    }
    exited_ = true;
  }

 private:
  bool actionable() {
    return (send_work() && !nic().out_dma().busy()) || !nic().rx_ring().empty();
  }
};

}  // namespace fm::lcp
