// The "baseline" LCP main loop — Figure 2(a).
//
//   repeat forever
//     if send channel is available and hostsent != lanaisent then
//       send packet from a fixed buffer location; lanaisent++
//     end if
//     if a packet is available on the receive channel then
//       receive packet into a fixed buffer location
//     end if
//   end repeat
//
// Every packet pays the full top-of-loop re-dispatch: both condition checks
// plus loop closure, even when traffic is bursty. Table 4: t0 = 4.2 us,
// n_1/2 = 315 B — "even mundane pointer and looping overheads reduce
// performance significantly".
#pragma once

#include "lcp/lcp.h"

namespace fm::lcp {

/// Figure 2(a): one send attempt and one receive attempt per loop pass.
class BaselineLcp : public Lcp {
 public:
  using Lcp::Lcp;

 protected:
  sim::Task run() override {
    auto& lanai = nic().lanai();
    const auto& c = params_.lcp;
    while (!stopping_) {
      // Park while nothing is actionable (a real LCP spins here; the spin's
      // discovery cost is the check budget charged when work is found).
      if (!actionable()) {
        co_await wait_for_work();
        continue;
      }
      // Top of loop: re-dispatch plus both condition checks — the overhead
      // the streamed structure amortizes away.
      co_await lanai.exec(c.baseline_loop + c.check_send + c.check_recv);
      if (send_work() && !nic().out_dma().busy()) {
        co_await lanai.exec(c.send_path);
        nic().start_transmit(pop_send());
      }
      hw::Packet p;
      if (try_recv(p)) {
        co_await lanai.exec(c.recv_path);
        if (on_receive_) on_receive_(p);
      }
    }
    exited_ = true;
  }

 private:
  bool actionable() {
    return (send_work() && !nic().out_dma().busy()) || !nic().rx_ring().empty();
  }
};

}  // namespace fm::lcp
