// Model of the Myricom-supplied "Myrinet API" control program (§4.6).
//
// The paper's baseline: a full-featured LCP whose per-message cost dwarfs
// FM's. Table 3 lists what it does that FM refuses to do, and §4.6 explains
// the price: "adding even the smallest feature to the LCP can exact a large
// penalty in performance... synchronization between the host and the LANai
// is expensive, yet must be done frequently in the Myrinet API, to pass
// buffer pointers back and forth."
//
// Per message the modeled LCP:
//   * interprets a command descriptor (hundreds of instructions — the API
//     LCP is an interpreter, not a fixed pipeline),
//   * performs host<->LANai pointer handshakes,
//   * computes a software checksum over the payload (cycles per byte),
//   * for myri_cmd_send(): fetches the payload from host memory by DMA;
//     for myri_cmd_send_imm(): the host already spooled it by PIO,
//   * transmits; on receive, verifies the checksum, runs buffer matching,
//     and delivers by per-message DMA (order preserved).
//
// Table 4: t0 = 105 us (imm) / 121 us (DMA), n_1/2 ~ 4.4 KB / 6.9 KB.
#pragma once

#include "lcp/lcp.h"

namespace fm::lcp {

/// Packet meta flag: payload must be fetched from host memory by DMA
/// (myri_cmd_send); absent means immediate mode (myri_cmd_send_imm).
inline constexpr std::uint32_t kApiMetaDmaFetch = 1u << 0;

/// The Myricom API 2.0 LANai control program model.
class ApiLcp : public Lcp {
 public:
  using Lcp::Lcp;

  /// Send commands fully processed by the LCP (the host's per-message
  /// handshake spins on this via host_wake()).
  std::uint64_t commands_completed() const { return commands_completed_; }

  /// Network-remapping rounds executed (Table 3's automatic continuous
  /// reconfiguration, modeled as periodic LANai work).
  std::uint64_t remap_rounds() const { return remap_rounds_; }

 protected:
  sim::Task run() override {
    FM_CHECK_MSG(host_rx_ != nullptr, "ApiLcp requires attach_host_recv()");
    auto& lanai = nic().lanai();
    const auto& c = params_.lcp;
    if (c.api_remap_interval > 0) sim().spawn(remap_loop());
    while (!stopping_) {
      if (!actionable()) {
        co_await wait_for_work();
        continue;
      }
      // ---- send command processing --------------------------------------
      co_await lanai.exec(c.check_send);
      if (send_work() && !nic().out_dma().busy() &&
          !nic().host_dma_engine().busy()) {
        hw::Packet p = pop_send();
        // Interpret the command descriptor.
        co_await lanai.exec(c.api_command_interpret);
        // Pointer handshakes with the host (~30 LANai instructions each to
        // read, validate and post the shared pointers).
        co_await lanai.exec(c.api_handshakes * 30);
        // DMA-mode sends fetch the payload from the host DMA region.
        if (p.meta & kApiMetaDmaFetch) {
          co_await lanai.exec(c.api_dma_mode_extra);
          co_await nic().host_dma(p.wire_bytes());
        }
        // Software checksum over the message (word-at-a-time).
        co_await lanai.exec_cycles(
            static_cast<std::int64_t>(c.api_checksum_cycles_per_word) *
            static_cast<std::int64_t>((p.wire_bytes() + 3) / 4));
        nic().start_transmit(std::move(p));
        // Command complete: return the buffer pointer to the host (the
        // per-message handshake the paper blames for the API's overhead).
        ++commands_completed_;
        host_wake().notify_all();
      }
      // ---- receive processing -------------------------------------------
      co_await lanai.exec(c.check_recv);
      hw::Packet rp;
      if (!nic().host_dma_engine().busy() && try_recv(rp)) {
        // Buffer matching / descriptor update, checksum verify, delivery.
        co_await lanai.exec(c.api_receive_process);
        co_await lanai.exec_cycles(
            static_cast<std::int64_t>(c.api_checksum_cycles_per_word) *
            static_cast<std::int64_t>((rp.wire_bytes() + 3) / 4));
        const std::size_t bytes = rp.wire_bytes();
        co_await nic().host_dma(bytes);
        host_rx_->deposit(std::move(rp));
        host_rx_->arrived().notify_all();
      }
    }
    exited_ = true;
  }

 private:
  // Automatic continuous reconfiguration: the LANai periodically walks the
  // network map, stealing instruction time from the data path ("machines
  // can be added or removed from the network without modifying any
  // configuration files ... but can hurt the messaging layer's
  // performance"). Modeled as a sibling process on the same LanaiCpu: it
  // charges instruction time which delays the main loop's work exactly as
  // interleaved mapping code would.
  sim::Task remap_loop() {
    const auto& c = params_.lcp;
    while (!stopping_) {
      co_await sim().delay(c.api_remap_interval);
      if (stopping_) break;
      co_await nic().lanai().exec(c.api_remap_instr);
      ++remap_rounds_;
    }
  }

  bool actionable() {
    if (send_work() && !nic().out_dma().busy() &&
        !nic().host_dma_engine().busy())
      return true;
    if (!nic().rx_ring().empty() && !nic().host_dma_engine().busy())
      return true;
    return false;
  }

  std::uint64_t commands_completed_ = 0;
  std::uint64_t remap_rounds_ = 0;
};

}  // namespace fm::lcp
