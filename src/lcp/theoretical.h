// Appendix A: theoretical peak performance of the LANai.
//
//   DMA setup      t_DMA = 8 cycles * 40 ns/cycle = 320 ns
//   Overhead       t0(N) = t_DMA + N * 12.5 ns
//   Latency        l(N)  = t0(N) + t_switch = 870 ns + 12.5 ns * N
//   Bandwidth      r(N)  = N / t0(N)
//
// "Theoretical peak performance is calculated for an LCP which does DMAs of
// the appropriate size, omitting any pointer updates, checks for completion,
// queue boundary checks, looping overhead, etc."
#pragma once

#include <cstddef>

#include "hw/params.h"
#include "sim/time.h"

namespace fm::lcp {

/// Closed-form Appendix A model, parameterized by the same HwParams the
/// simulator uses so the two stay consistent by construction.
class TheoreticalPeak {
 public:
  explicit TheoreticalPeak(const hw::HwParams& p = hw::HwParams::paper())
      : dma_setup_(p.lanai.dma_setup),
        byte_time_(p.link.byte_time),
        switch_latency_(p.link.switch_latency) {}

  /// Per-message overhead t0(N) = t_DMA + N * 12.5 ns.
  sim::Time overhead(std::size_t bytes) const {
    return dma_setup_ + byte_time_ * static_cast<sim::Time>(bytes);
  }

  /// One-way latency l(N) = t0(N) + t_switch.
  sim::Time latency(std::size_t bytes) const {
    return overhead(bytes) + switch_latency_;
  }

  /// Bandwidth r(N) = N / t0(N), in the paper's MB/s (1 MB = 2^20 B).
  double bandwidth_mbs(std::size_t bytes) const {
    if (bytes == 0) return 0.0;
    double secs = sim::to_s(overhead(bytes));
    return static_cast<double>(bytes) / 1048576.0 / secs;
  }

  /// Asymptotic bandwidth (the 76.3 MB/s link limit).
  double r_inf_mbs() const {
    return 1.0 / 1048576.0 / sim::to_s(byte_time_);
  }

  /// Half-power point n_1/2 = t_DMA / byte_time (bandwidth form).
  double n_half() const {
    return static_cast<double>(dma_setup_) / static_cast<double>(byte_time_);
  }

 private:
  sim::Time dma_setup_;
  sim::Time byte_time_;
  sim::Time switch_latency_;
};

}  // namespace fm::lcp
