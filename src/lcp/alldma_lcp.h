// The "all-DMA" architecture of §4.3 / Figure 4.
//
// "The first, all-DMA, attempts to maximize bandwidth by using DMA to move
// data both to and from the network. For outgoing messages, the host copies
// data into the DMA region, writes message pointers to the LANai, and
// triggers the send." The LANai must then *fetch* each frame from host
// memory with its host-DMA engine before it can transmit — one extra
// synchronization and one extra data movement versus hybrid, but at burst
// DMA bandwidth.
//
// The LCP pipelines the fetch of frame k+1 with the wire transmission of
// frame k (both engines run concurrently), which is what lets the streaming
// bandwidth reach the staging-copy limit (~33-34 MB/s) rather than the
// serial sum. Table 4: t0 = 7.5 us, r_inf = 33.0 MB/s, n_1/2 = 162 B.
//
// Receive side: identical to the minimal hybrid layer (per-packet DMA to
// host). Note the structural hazard this creates: fetch and delivery share
// the single host-DMA engine.
#pragma once

#include <optional>

#include "lcp/lcp.h"

namespace fm::lcp {

/// Streamed loop + all-DMA SBus usage (Figure 4).
class AllDmaLcp : public Lcp {
 public:
  using Lcp::Lcp;

 protected:
  sim::Task run() override {
    FM_CHECK_MSG(host_rx_ != nullptr, "AllDmaLcp requires attach_host_recv()");
    auto& lanai = nic().lanai();
    const auto& c = params_.lcp;
    while (!stopping_) {
      if (!actionable()) {
        co_await wait_for_work();
        continue;
      }
      // --- stage 1: fetch the next frame from host memory ----------------
      co_await lanai.exec(c.check_send);
      if (send_work() && !staged_ && !nic().host_dma_engine().busy() &&
          !fetching_) {
        co_await lanai.exec(c.streamed_loop + c.send_path);
        hw::Packet p = pop_send();
        const std::size_t bytes = p.wire_bytes();
        fetching_ = true;
        auto moving = std::make_shared<hw::Packet>(std::move(p));
        nic().start_host_dma(bytes, [this, moving] {
          staged_.emplace(std::move(*moving));
          fetching_ = false;
        });
      }
      // --- stage 2: transmit the staged frame ----------------------------
      if (staged_ && !nic().out_dma().busy()) {
        co_await lanai.exec(c.streamed_loop + c.send_path);
        nic().start_transmit(std::move(*staged_));
        staged_.reset();
      }
      // --- receive: per-packet DMA to host (shares the host engine) ------
      co_await lanai.exec(c.check_recv);
      hw::Packet p;
      while (!nic().host_dma_engine().busy() && !fetching_ && try_recv(p)) {
        co_await lanai.exec(c.streamed_loop + c.recv_path);
        const std::size_t bytes = p.wire_bytes();
        co_await nic().host_dma(bytes);
        host_rx_->deposit(std::move(p));
        host_rx_->arrived().notify_all();
      }
    }
    exited_ = true;
  }

 private:
  bool actionable() {
    if (send_work() && !staged_ && !fetching_ &&
        !nic().host_dma_engine().busy())
      return true;
    if (staged_ && !nic().out_dma().busy()) return true;
    if (!nic().rx_ring().empty() && !nic().host_dma_engine().busy() &&
        !fetching_)
      return true;
    return false;
  }

  std::optional<hw::Packet> staged_;
  bool fetching_ = false;
};

}  // namespace fm::lcp
