// The FM 1.0 LCP — streamed + hybrid + buffer management (§4.4, Figure 6).
//
// What §4.4 adds over the minimal hybrid layer:
//   * real queue structures with space checks (the four-queue design),
//   * receive-side aggregation: "having no packet interpretation and a
//     simple LANai receive queue structure allows packets to be aggregated
//     and transferred with a single DMA operation, further increasing the
//     transfer bandwidth and reducing overhead",
//   * delivery overlapped with channel service (the host DMA engine runs in
//     the background while the LCP keeps draining the wire),
//   * strictly NO packet interpretation — "The LANai does no interpretation
//     of packets, blindly moving them to the DMA region."
//
// The interpret_packets knob reproduces Figure 7's third curve: a switch()
// statement in the streaming receive loop simulating minimal interpretation
// (~20 instructions fully exposed per packet).
//
// Table 4: buffer mgmt t0 = 3.8 us / n_1/2 = 53 B; with switch() t0 = 6.8 us
// / n_1/2 = 127 B.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "lcp/lcp.h"

namespace fm::lcp {

/// Configuration of the FM control program.
struct FmLcpConfig {
  /// Simulate minimal packet interpretation in the receive inner loop
  /// (Figure 7's "+ switch()" experiment).
  bool interpret_packets = false;
  /// Largest number of frames aggregated into one host DMA.
  std::size_t max_aggregate = 8;
};

/// The production FM control program.
class FmLcp : public Lcp {
 public:
  using Config = FmLcpConfig;

  FmLcp(hw::Node& node, const hw::HwParams& params, Config cfg = Config())
      : Lcp(node, params), cfg_(cfg) {
    // §4.4: "having no packet interpretation and a simple LANai receive
    // queue structure allows packets to be aggregated and transferred with
    // a single DMA operation" — conversely, interpreting packets forces
    // per-packet handling, which is half of the switch() experiment's cost.
    if (cfg_.interpret_packets) cfg_.max_aggregate = 1;
  }

  /// Frames delivered to the host per DMA operation, on average
  /// (diagnostic: shows aggregation working).
  double mean_aggregation() const {
    return dma_ops_ ? static_cast<double>(frames_delivered_) /
                          static_cast<double>(dma_ops_)
                    : 0.0;
  }

  /// FM-Scope: the base queues plus this variant's aggregation counters.
  void register_obs(obs::Registry& r) override {
    r.assert_owner();  // the claim is per-function: restate it here
    Lcp::register_obs(r);
    r.counter("lanai.frames_delivered", &frames_delivered_);
    r.counter("lanai.dma_ops", &dma_ops_);
    r.gauge("q.lanai_staged_depth",
            [this] { return static_cast<double>(batch_.size()); });
  }

 protected:
  sim::Task run() override {
    FM_CHECK_MSG(host_rx_ != nullptr, "FmLcp requires attach_host_recv()");
    auto& lanai = nic().lanai();
    const auto& c = params_.lcp;
    while (!stopping_) {
      if (!actionable()) {
        co_await wait_for_work();
        continue;
      }
      // --- send side: the streamed loop, unchanged -----------------------
      co_await lanai.exec(c.check_send);
      while (send_work() && !nic().out_dma().busy()) {
        co_await lanai.exec(c.streamed_loop + c.send_path);
        nic().start_transmit(pop_send());
      }
      // --- receive side: drain the wire into the staging batch -----------
      co_await lanai.exec(c.check_recv);
      hw::Packet p;
      while (batch_.size() < cfg_.max_aggregate && try_recv(p)) {
        int instr = c.streamed_loop + c.recv_path;
        if (cfg_.interpret_packets) instr += c.interpret_switch;
        co_await lanai.exec(instr);
        batch_.push_back(std::move(p));
      }
      // --- delivery: one DMA for the whole batch, in the background ------
      // Partial delivery when host space is short keeps the layer live even
      // with a receive queue smaller than the aggregation window.
      const std::size_t space = host_rx_->ring().space();
      if (!batch_.empty() && !nic().host_dma_engine().busy() && space > 0) {
        const std::size_t n = std::min(batch_.size(), space);
        co_await lanai.exec(c.host_dma_setup +
                            c.host_dma_per_packet * static_cast<int>(n));
        auto moving = std::make_shared<std::vector<hw::Packet>>();
        moving->reserve(n);
        std::size_t bytes = 0;
        for (std::size_t i = 0; i < n; ++i) {
          bytes += batch_[i].wire_bytes();
          moving->push_back(std::move(batch_[i]));
        }
        batch_.erase(batch_.begin(), batch_.begin() + static_cast<long>(n));
        frames_delivered_ += n;
        ++dma_ops_;
        nic().start_host_dma(bytes, [this, moving] {
          for (auto& f : *moving) host_rx_->deposit(std::move(f));
          host_rx_->arrived().notify_all();
        });
      }
    }
    exited_ = true;
  }

 private:
  bool actionable() {
    if (send_work() && !nic().out_dma().busy()) return true;
    if (!nic().rx_ring().empty() && batch_.size() < cfg_.max_aggregate)
      return true;
    if (!batch_.empty() && !nic().host_dma_engine().busy() &&
        host_rx_->ring().space() > 0)
      return true;
    return false;
  }

  Config cfg_;
  std::vector<hw::Packet> batch_;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t dma_ops_ = 0;
};

}  // namespace fm::lcp
