// LANai Control Program (LCP) framework.
//
// An Lcp is a coroutine running on a node's LanaiCpu. Section 4.2 of the
// paper: "Because the network coprocessor (LANai) is of modest speed, and
// the LANai control program (LCP) is a sequential program dealing with
// concurrent activities, the organization of the LCP is critical to
// achieving high performance."
//
// The framework fixes the pieces all variants share — the LANai send queue
// fed by the host, the hostsent/lanaisent split counters (§4.4: "Allowing
// each to own (and keep in a register) its respective counter reduces the
// amount of synchronization between host and LANai"), start/stop plumbing,
// and traffic counters — while each variant supplies the main loop whose
// *structure* is the experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/check.h"
#include "common/ring_buffer.h"
#include "common/types.h"
#include "hw/cluster.h"
#include "hw/packet.h"
#include "hw/params.h"
#include "obs/registry.h"
#include "sim/condition.h"
#include "sim/task.h"

namespace fm::lcp {

/// The host receive queue (Figure 6): a frame ring in the pinned host DMA
/// region, filled by the LANai's host-DMA engine, drained by host software.
/// `delivered` is LANai-owned; `consumed` is host-owned — the same
/// write-race-free split-counter discipline as the send side.
class HostRecvQueue {
 public:
  HostRecvQueue(sim::Simulator& sim, std::size_t frames)
      : ring_(frames), arrived_(sim) {}

  /// The frame storage.
  RingBuffer<hw::Packet>& ring() { return ring_; }
  /// Notified (at DMA completion) when new frames land.
  sim::Condition& arrived() { return arrived_; }

  /// Total frames the LANai has delivered.
  std::uint64_t delivered() const { return delivered_; }
  /// Total frames the host has consumed.
  std::uint64_t consumed() const { return consumed_; }

  /// LANai-side: deposit a frame (space must have been checked).
  void deposit(hw::Packet p) {
    bool pushed = ring_.push(std::move(p));
    FM_CHECK_MSG(pushed, "host receive queue overrun (LCP space check bug)");
    ++delivered_;
  }

  /// Host-side: take the oldest frame, if any.
  bool take(hw::Packet& out) {
    if (!ring_.pop(out)) return false;
    ++consumed_;
    return true;
  }

 private:
  RingBuffer<hw::Packet> ring_;
  sim::Condition arrived_;
  std::uint64_t delivered_ = 0;
  std::uint64_t consumed_ = 0;
};

/// Base class for all LANai control programs.
class Lcp {
 public:
  Lcp(hw::Node& node, const hw::HwParams& params)
      : node_(node),
        params_(params),
        send_q_(params.queues.lanai_send_frames) {
    // Queue storage must fit the 128 KB SRAM (frame payload + header slot).
    node.nic().memory().reserve(
        params.queues.lanai_send_frames * (kFmFramePayload + 32),
        "LANai send queue");
    node.nic().memory().reserve(
        params.lanai.rx_ring_frames * (kFmFramePayload + 32),
        "LANai receive queue");
  }
  virtual ~Lcp() = default;
  Lcp(const Lcp&) = delete;
  Lcp& operator=(const Lcp&) = delete;

  /// Boots the control program (spawns its main loop).
  void start() {
    FM_CHECK_MSG(!running_, "LCP already started");
    running_ = true;
    sim().spawn(run());
  }

  /// Asks the main loop to exit at its next wake-up.
  void request_stop() {
    stopping_ = true;
    node_.nic().ring_doorbell();
  }

  /// True once the main loop has exited.
  bool stopped() const { return exited_; }

  // ----------------------------------------------------------------------
  // Host-side interface. SBus/processor costs are paid by the *caller*
  // (host software); these methods only mutate LANai-memory state.
  // ----------------------------------------------------------------------

  /// Space left in the LANai send queue (host reads its cached shadow of
  /// lanaisent; cost charged by caller).
  std::size_t send_space() const { return send_q_.space(); }

  /// Enqueues an outgoing frame and advances hostsent. Returns false when
  /// the queue is full (the host must extract/retry). Caller pays the PIO
  /// cost of the frame bytes plus the counter store.
  bool host_enqueue(hw::Packet pkt) {
    if (!send_q_.push(std::move(pkt))) return false;
    ++hostsent_;
    node_.nic().ring_doorbell();
    return true;
  }

  /// Notified whenever the LANai drains a frame from the send queue (i.e.
  /// lanaisent advances and host-visible space frees up). Host software
  /// waits here instead of spinning; the cost of the shadow-counter read it
  /// models is charged by the host code when it wakes.
  sim::Condition& host_wake() { return host_wake_; }

  /// hostsent counter (host-owned, §4.4).
  std::uint64_t hostsent() const { return hostsent_; }
  /// lanaisent counter (LANai-owned, trails hostsent by queue occupancy).
  std::uint64_t lanaisent() const { return lanaisent_; }

  /// Hook invoked (cost-free, harness level) when the LCP consumes a packet
  /// from the network that it does not deliver to a host queue. Used by the
  /// LANai-to-LANai experiments (Figure 3) to reflect ping-pong traffic.
  void set_on_receive(std::function<void(const hw::Packet&)> fn) {
    on_receive_ = std::move(fn);
  }

  /// Points the LCP at the host receive queue it delivers into (variants
  /// that deliver to the host require this before start()).
  void attach_host_recv(HostRecvQueue* q) { host_rx_ = q; }

  /// Traffic counters.
  std::uint64_t packets_tx() const { return packets_tx_; }
  std::uint64_t packets_rx() const { return packets_rx_; }

  /// FM-Scope: registers the split counters and the queue-depth gauges for
  /// the LANai-side queues of the four-queue design (Figure 6) into `r`.
  /// Variants override to add their own instrumentation. The LCP must
  /// outlive `r` (the owning endpoint declares its Registry last).
  virtual void register_obs(obs::Registry& r) {
    // Registration happens from the owning endpoint's constructor; claim
    // the registry's owner role for the thread-safety build.
    r.assert_owner();
    r.counter("lanai.hostsent", &hostsent_);
    r.counter("lanai.lanaisent", &lanaisent_);
    r.counter("lanai.packets_tx", &packets_tx_);
    r.counter("lanai.packets_rx", &packets_rx_);
    r.gauge("q.lanai_send_depth",
            [this] { return static_cast<double>(send_q_.size()); });
    r.gauge("q.lanai_recv_depth",
            [this] { return static_cast<double>(nic().rx_ring().size()); });
    r.gauge("q.host_recv_depth", [this] {
      return host_rx_ != nullptr
                 ? static_cast<double>(host_rx_->ring().size())
                 : 0.0;
    });
  }

  hw::Node& node() { return node_; }
  hw::Nic& nic() { return node_.nic(); }
  sim::Simulator& sim() { return node_.nic().lanai().simulator(); }
  const hw::HwParams& params() const { return params_; }

 protected:
  /// The variant's main loop.
  virtual sim::Task run() = 0;

  /// True when the host has queued frames the LANai has not yet sent.
  bool send_work() const { return hostsent_ != lanaisent_; }

  /// Pops the next outgoing frame and advances lanaisent.
  hw::Packet pop_send() {
    hw::Packet p;
    bool okp = send_q_.pop(p);
    FM_CHECK_MSG(okp, "pop_send on empty queue");
    ++lanaisent_;
    ++packets_tx_;
    host_wake_.notify_all();
    return p;
  }

  /// Consumes one packet from the NIC receive ring if present.
  bool try_recv(hw::Packet& out) {
    auto p = nic().rx_ring().try_recv();
    if (!p) return false;
    out = std::move(*p);
    ++packets_rx_;
    return true;
  }

  /// Blocks until any LCP-visible event occurs.
  sim::Condition::Awaiter wait_for_work() { return nic().lcp_wake().wait(); }

  hw::Node& node_;
  hw::HwParams params_;
  sim::Condition host_wake_{node_.nic().lanai().simulator()};
  RingBuffer<hw::Packet> send_q_;
  std::uint64_t hostsent_ = 0;
  std::uint64_t lanaisent_ = 0;
  std::uint64_t packets_tx_ = 0;
  std::uint64_t packets_rx_ = 0;
  bool stopping_ = false;
  bool running_ = false;
  bool exited_ = false;
  std::function<void(const hw::Packet&)> on_receive_;
  HostRecvQueue* host_rx_ = nullptr;
};

}  // namespace fm::lcp
