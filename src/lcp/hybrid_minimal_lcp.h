// "Streamed + hybrid" — the minimal host-to-host layer of §4.3 / Figure 4.
//
// Send side: unchanged streamed loop; the host has already spooled the frame
// into LANai memory with programmed I/O (the hybrid architecture's choice:
// "uses the host to move data directly to the LANai's memory").
// Receive side: "the LCP simply DMAs messages into the host memory" — one
// host-DMA per packet, no queue management, no aggregation, no space checks
// (this vestigial layer "assumes infinite buffering"; the attached host
// receive queue must be large enough for the experiment).
//
// Table 4: t0 = 3.5 us, r_inf = 21.2 MB/s, n_1/2 = 44 B.
#pragma once

#include "lcp/lcp.h"

namespace fm::lcp {

/// Streamed loop + hybrid SBus usage, no buffer management (Figure 4).
class HybridMinimalLcp : public Lcp {
 public:
  using Lcp::Lcp;

 protected:
  sim::Task run() override {
    FM_CHECK_MSG(host_rx_ != nullptr,
                 "HybridMinimalLcp requires attach_host_recv()");
    auto& lanai = nic().lanai();
    const auto& c = params_.lcp;
    while (!stopping_) {
      if (!actionable()) {
        co_await wait_for_work();
        continue;
      }
      co_await lanai.exec(c.check_send);
      while (send_work() && !nic().out_dma().busy()) {
        co_await lanai.exec(c.streamed_loop + c.send_path);
        nic().start_transmit(pop_send());
      }
      co_await lanai.exec(c.check_recv);
      hw::Packet p;
      while (try_recv(p)) {
        co_await lanai.exec(c.streamed_loop + c.recv_path);
        // Per-packet DMA into host memory, LCP blocked for the transfer —
        // the simple structure buffer management will improve on.
        const std::size_t bytes = p.wire_bytes();
        co_await nic().host_dma(bytes);
        host_rx_->deposit(std::move(p));
        host_rx_->arrived().notify_all();
      }
    }
    exited_ = true;
  }

 private:
  bool actionable() {
    return (send_work() && !nic().out_dma().busy()) || !nic().rx_ring().empty();
  }
};

}  // namespace fm::lcp
