#include "metrics/harness.h"

#include <algorithm>
#include <memory>

#include "api/myri_api.h"
#include "fm/sim_endpoint.h"
#include "hw/cluster.h"
#include "lcp/alldma_lcp.h"
#include "lcp/baseline_lcp.h"
#include "lcp/hybrid_minimal_lcp.h"
#include "lcp/streamed_lcp.h"
#include "lcp/theoretical.h"

namespace fm::metrics {
namespace {

hw::Packet mk(hw::Nic& nic, NodeId dest, std::size_t bytes) {
  hw::Packet p;
  p.id = nic.next_packet_id();
  p.dest = dest;
  p.bytes.assign(bytes, 0x5A);
  return p;
}

// ---------------------------------------------------------------------------
// LANai <-> LANai (Figure 3)
// ---------------------------------------------------------------------------

template <typename L>
double lanai_latency_s(std::size_t bytes, std::size_t rounds) {
  hw::Cluster c(2);
  L a(c.node(0), c.params());
  L b(c.node(1), c.params());
  std::size_t pongs = 0;
  a.set_on_receive([&](const hw::Packet&) {
    ++pongs;
    if (pongs < rounds)
      FM_CHECK(a.host_enqueue(mk(c.node(0).nic(), 1, bytes)));
  });
  b.set_on_receive([&](const hw::Packet& p) {
    FM_CHECK(b.host_enqueue(mk(c.node(1).nic(), 0, p.bytes.size())));
  });
  a.start();
  b.start();
  FM_CHECK(a.host_enqueue(mk(c.node(0).nic(), 1, bytes)));
  bool done = c.sim().run_while_pending([&] { return pongs >= rounds; });
  FM_CHECK_MSG(done, "latency harness stalled");
  double secs = sim::to_s(c.sim().now());
  a.request_stop();
  b.request_stop();
  c.sim().run();
  return secs / (2.0 * static_cast<double>(rounds));
}

template <typename L>
double lanai_bw_mbs(std::size_t bytes, std::size_t packets) {
  hw::Cluster c(2);
  L tx(c.node(0), c.params());
  L rx(c.node(1), c.params());
  std::size_t received = 0;
  rx.set_on_receive([&](const hw::Packet&) { ++received; });
  tx.start();
  rx.start();
  auto feeder = [](hw::Cluster& c, L& tx, std::size_t n,
                   std::size_t b) -> sim::Task {
    for (std::size_t i = 0; i < n; ++i) {
      while (tx.send_space() == 0) co_await tx.host_wake().wait();
      FM_CHECK(tx.host_enqueue(mk(c.node(0).nic(), 1, b)));
    }
  };
  c.sim().spawn(feeder(c, tx, packets, bytes));
  bool done = c.sim().run_while_pending([&] { return received == packets; });
  FM_CHECK_MSG(done, "bandwidth harness stalled");
  double secs = sim::to_s(c.sim().now());
  tx.request_stop();
  rx.request_stop();
  c.sim().run();
  return static_cast<double>(packets * bytes) / 1048576.0 / secs;
}

// ---------------------------------------------------------------------------
// Vestigial host programs (Figure 4): hybrid and all-DMA
// ---------------------------------------------------------------------------

// The minimal host send path. For hybrid the processor spools the packet
// into LANai memory; for all-DMA it stages into the DMA region and posts a
// descriptor for the LANai to fetch.
sim::Op<> vestigial_send(hw::Node& n, lcp::Lcp& l, std::size_t bytes,
                         bool alldma) {
  auto& sbus = n.sbus();
  while (l.send_space() == 0) {
    co_await sbus.pio_read();
    if (l.send_space() == 0) co_await l.host_wake().wait();
  }
  co_await n.cpu().exec(10);  // minimal bookkeeping
  if (alldma) {
    co_await n.cpu().memcpy_op(bytes);  // copy into the pinned DMA region
    co_await sbus.pio_write(16);        // message pointer + length
  } else {
    co_await sbus.pio_write(bytes);  // data straight into LANai memory
  }
  hw::Packet p = mk(n.nic(), n.id() == 0 ? 1 : 0, bytes);
  FM_CHECK(l.host_enqueue(std::move(p)));
  co_await sbus.pio_write(8);  // trigger (hostsent store)
}

struct VestigialNode {
  std::unique_ptr<lcp::Lcp> lcp;
  std::unique_ptr<lcp::HostRecvQueue> rxq;
};

VestigialNode make_vestigial(hw::Cluster& c, NodeId id, bool alldma) {
  VestigialNode v;
  v.rxq = std::make_unique<lcp::HostRecvQueue>(c.sim(), 8192);
  if (alldma)
    v.lcp = std::make_unique<lcp::AllDmaLcp>(c.node(id), c.params());
  else
    v.lcp = std::make_unique<lcp::HybridMinimalLcp>(c.node(id), c.params());
  v.lcp->attach_host_recv(v.rxq.get());
  v.lcp->start();
  return v;
}

double vestigial_latency_s(bool alldma, std::size_t bytes,
                           std::size_t rounds) {
  hw::Cluster c(2);
  auto a = make_vestigial(c, 0, alldma);
  auto b = make_vestigial(c, 1, alldma);
  std::size_t pongs = 0;
  // Host A: send, await reply ("time is measured from the FM_send() call
  // until the (essentially empty) handler returns").
  auto ping = [](hw::Cluster& c, VestigialNode& a, std::size_t bytes,
                 std::size_t rounds, std::size_t* pongs, bool alldma)
      -> sim::Task {
    for (std::size_t r = 0; r < rounds; ++r) {
      co_await vestigial_send(c.node(0), *a.lcp, bytes, alldma);
      hw::Packet p;
      while (!a.rxq->take(p)) co_await a.rxq->arrived().wait();
      co_await c.node(0).cpu().exec(10);  // empty handler
      c.node(0).nic().ring_doorbell();
      ++*pongs;
    }
  };
  auto pong = [](hw::Cluster& c, VestigialNode& b, bool alldma) -> sim::Task {
    for (;;) {
      hw::Packet p;
      while (!b.rxq->take(p)) co_await b.rxq->arrived().wait();
      co_await c.node(1).cpu().exec(10);
      c.node(1).nic().ring_doorbell();
      co_await vestigial_send(c.node(1), *b.lcp, p.wire_bytes(), alldma);
    }
  };
  c.sim().spawn(ping(c, a, bytes, rounds, &pongs, alldma));
  c.sim().spawn(pong(c, b, alldma));
  bool done = c.sim().run_while_pending([&] { return pongs >= rounds; });
  FM_CHECK_MSG(done, "vestigial latency harness stalled");
  return sim::to_s(c.sim().now()) / (2.0 * static_cast<double>(rounds));
}

double vestigial_bw_mbs(bool alldma, std::size_t bytes, std::size_t packets) {
  hw::Cluster c(2);
  auto a = make_vestigial(c, 0, alldma);
  auto b = make_vestigial(c, 1, alldma);
  std::size_t received = 0;
  auto tx = [](hw::Cluster& c, VestigialNode& a, std::size_t packets,
               std::size_t bytes, bool alldma) -> sim::Task {
    for (std::size_t i = 0; i < packets; ++i)
      co_await vestigial_send(c.node(0), *a.lcp, bytes, alldma);
  };
  auto rx = [](hw::Cluster& c, VestigialNode& b,
               std::size_t* received) -> sim::Task {
    for (;;) {
      hw::Packet p;
      while (!b.rxq->take(p)) co_await b.rxq->arrived().wait();
      co_await c.node(1).cpu().exec(10);
      ++*received;
      c.node(1).nic().ring_doorbell();
    }
  };
  c.sim().spawn(tx(c, a, packets, bytes, alldma));
  c.sim().spawn(rx(c, b, &received));
  bool done = c.sim().run_while_pending([&] { return received == packets; });
  FM_CHECK_MSG(done, "vestigial bandwidth harness stalled");
  return static_cast<double>(packets * bytes) / 1048576.0 /
         sim::to_s(c.sim().now());
}

// ---------------------------------------------------------------------------
// FM layers (Figures 7, 8) — the real library
// ---------------------------------------------------------------------------

FmConfig fm_config_for(Layer layer, std::size_t bytes,
                       const MeasureOpts& opts) {
  FmConfig cfg;
  cfg.frame_payload =
      opts.frame_payload ? opts.frame_payload : std::max<std::size_t>(bytes, 16);
  cfg.flow_control = (layer == Layer::kFm || layer == Layer::kFmSwitch);
  return cfg;
}

lcp::FmLcpConfig fm_lcp_config_for(Layer layer) {
  lcp::FmLcpConfig cfg;
  cfg.interpret_packets =
      (layer == Layer::kBufMgmtSwitch || layer == Layer::kFmSwitch);
  return cfg;
}

double fm_latency_impl(const FmConfig& cfg, const lcp::FmLcpConfig& lcfg,
                       std::size_t bytes, std::size_t rounds,
                       const ObserveFn& observe = {});
double fm_bw_impl(const FmConfig& cfg, const lcp::FmLcpConfig& lcfg,
                  std::size_t bytes, std::size_t packets,
                  const ObserveFn& observe = {});

double fm_latency_s(Layer layer, std::size_t bytes, const MeasureOpts& opts) {
  return fm_latency_impl(fm_config_for(layer, bytes, opts),
                         fm_lcp_config_for(layer), bytes,
                         opts.pingpong_rounds, opts.observe);
}

double fm_latency_impl(const FmConfig& cfg, const lcp::FmLcpConfig& lcfg,
                       std::size_t bytes, std::size_t rounds_in,
                       const ObserveFn& observe) {
  hw::Cluster c(2);
  SimEndpoint a(c.node(0), cfg, lcfg);
  SimEndpoint b(c.node(1), cfg, lcfg);
  std::size_t pongs = 0;
  HandlerId ha = a.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++pongs; });
  HandlerId hb = b.register_handler(
      [&](SimEndpoint& ep, NodeId src, const void* data, std::size_t len) {
        ep.post_send(src, 1, data, len);  // echo
      });
  FM_CHECK(ha == hb);
  a.start();
  b.start();
  const std::size_t rounds = rounds_in;
  auto ping = [](SimEndpoint& a, std::size_t bytes, std::size_t rounds,
                 std::size_t* pongs) -> sim::Task {
    std::vector<std::uint8_t> buf(bytes, 0x5A);
    for (std::size_t r = 0; r < rounds; ++r) {
      FM_CHECK(ok(co_await a.send(1, 1, buf.data(), buf.size())));
      std::size_t before = *pongs;
      while (*pongs == before) (void)co_await a.extract_blocking();
    }
  };
  auto pong = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(ping(a, bytes, rounds, &pongs));
  c.sim().spawn(pong(b));
  bool done = c.sim().run_while_pending([&] { return pongs >= rounds; });
  FM_CHECK_MSG(done, "fm latency harness stalled");
  double secs = sim::to_s(c.sim().now());
  if (observe) observe(a, b);
  a.shutdown();
  b.shutdown();
  c.sim().run();
  return secs / (2.0 * static_cast<double>(rounds));
}

double fm_bw_mbs(Layer layer, std::size_t bytes, const MeasureOpts& opts) {
  return fm_bw_impl(fm_config_for(layer, bytes, opts),
                    fm_lcp_config_for(layer), bytes, opts.stream_packets,
                    opts.observe);
}

double fm_bw_impl(const FmConfig& cfg, const lcp::FmLcpConfig& lcfg,
                  std::size_t bytes, std::size_t packets_in,
                  const ObserveFn& observe) {
  hw::Cluster c(2);
  SimEndpoint a(c.node(0), cfg, lcfg);
  SimEndpoint b(c.node(1), cfg, lcfg);
  std::size_t delivered = 0;
  HandlerId ha = a.register_handler(
      [](SimEndpoint&, NodeId, const void*, std::size_t) {});
  HandlerId hb = b.register_handler(
      [&](SimEndpoint&, NodeId, const void*, std::size_t) { ++delivered; });
  FM_CHECK(ha == hb);
  a.start();
  b.start();
  const std::size_t packets = packets_in;
  auto tx = [](SimEndpoint& a, std::size_t bytes,
               std::size_t packets) -> sim::Task {
    std::vector<std::uint8_t> buf(bytes, 0x5A);
    for (std::size_t i = 0; i < packets; ++i) {
      FM_CHECK(ok(co_await a.send(1, 1, buf.data(), buf.size())));
      if ((i & 15) == 15) (void)co_await a.extract();  // service acks
    }
    co_await a.drain();
  };
  auto rx = [](SimEndpoint& b) -> sim::Task {
    for (;;) (void)co_await b.extract_blocking();
  };
  c.sim().spawn(tx(a, bytes, packets));
  c.sim().spawn(rx(b));
  bool done = c.sim().run_while_pending([&] { return delivered == packets; });
  FM_CHECK_MSG(done, "fm bandwidth harness stalled");
  double secs = sim::to_s(c.sim().now());
  if (observe) observe(a, b);
  a.shutdown();
  b.shutdown();
  c.sim().run();
  return static_cast<double>(packets * bytes) / 1048576.0 / secs;
}

// ---------------------------------------------------------------------------
// Myricom API (Figure 9)
// ---------------------------------------------------------------------------

double api_latency_s(bool dma, std::size_t bytes, std::size_t rounds) {
  hw::Cluster c(2);
  api::MyriApi a(c.node(0));
  api::MyriApi b(c.node(1));
  a.start();
  b.start();
  std::size_t pongs = 0;
  auto ping = [](api::MyriApi& a, std::size_t bytes, std::size_t rounds,
                 bool dma, std::size_t* pongs) -> sim::Task {
    std::vector<std::uint8_t> buf(bytes, 0x5A);
    for (std::size_t r = 0; r < rounds; ++r) {
      if (dma)
        FM_CHECK(ok(co_await a.send(1, buf.data(), buf.size())));
      else
        FM_CHECK(ok(co_await a.send_imm(1, buf.data(), buf.size())));
      (void)co_await a.receive_blocking();
      ++*pongs;
    }
  };
  auto pong = [](api::MyriApi& b, bool dma) -> sim::Task {
    for (;;) {
      api::Message m = co_await b.receive_blocking();
      if (dma)
        FM_CHECK(ok(co_await b.send(m.src, m.data.data(), m.data.size())));
      else
        FM_CHECK(
            ok(co_await b.send_imm(m.src, m.data.data(), m.data.size())));
    }
  };
  c.sim().spawn(ping(a, bytes, rounds, dma, &pongs));
  c.sim().spawn(pong(b, dma));
  bool done = c.sim().run_while_pending([&] { return pongs >= rounds; });
  FM_CHECK_MSG(done, "api latency harness stalled");
  double secs = sim::to_s(c.sim().now());
  a.shutdown();
  b.shutdown();
  c.sim().run();
  return secs / (2.0 * static_cast<double>(rounds));
}

double api_bw_mbs(bool dma, std::size_t bytes, std::size_t packets) {
  hw::Cluster c(2);
  api::MyriApi a(c.node(0));
  api::MyriApi b(c.node(1));
  a.start();
  b.start();
  std::size_t received = 0;
  auto tx = [](api::MyriApi& a, std::size_t bytes, std::size_t packets,
               bool dma) -> sim::Task {
    std::vector<std::uint8_t> buf(bytes, 0x5A);
    for (std::size_t i = 0; i < packets; ++i) {
      if (dma)
        FM_CHECK(ok(co_await a.send(1, buf.data(), buf.size())));
      else
        FM_CHECK(ok(co_await a.send_imm(1, buf.data(), buf.size())));
    }
  };
  auto rx = [](api::MyriApi& b, std::size_t* received) -> sim::Task {
    for (;;) {
      (void)co_await b.receive_blocking();
      ++*received;
    }
  };
  c.sim().spawn(tx(a, bytes, packets, dma));
  c.sim().spawn(rx(b, &received));
  bool done = c.sim().run_while_pending([&] { return received == packets; });
  FM_CHECK_MSG(done, "api bandwidth harness stalled");
  double secs = sim::to_s(c.sim().now());
  a.shutdown();
  b.shutdown();
  c.sim().run();
  return static_cast<double>(packets * bytes) / 1048576.0 / secs;
}

}  // namespace

std::string layer_name(Layer layer) {
  switch (layer) {
    case Layer::kTheoretical: return "Theoretical peak";
    case Layer::kLanaiBaseline: return "Baseline LCP";
    case Layer::kLanaiStreamed: return "Streamed LCP";
    case Layer::kHybridMinimal: return "Streamed + hybrid";
    case Layer::kAllDma: return "Streamed + all-DMA";
    case Layer::kBufMgmt: return "+ buffer mgmt";
    case Layer::kBufMgmtSwitch: return "+ buffer mgmt + switch()";
    case Layer::kFm: return "Fast Messages 1.0 (+ flow ctrl)";
    case Layer::kFmSwitch: return "FM + switch()";
    case Layer::kApiImm: return "Myrinet API (send_imm)";
    case Layer::kApiDma: return "Myrinet API (send)";
  }
  return "?";
}

double measure_latency_s(Layer layer, std::size_t bytes,
                         const MeasureOpts& opts) {
  const std::size_t r = opts.pingpong_rounds;
  switch (layer) {
    case Layer::kTheoretical:
      return sim::to_s(lcp::TheoreticalPeak().latency(bytes));
    case Layer::kLanaiBaseline:
      return lanai_latency_s<lcp::BaselineLcp>(bytes, r);
    case Layer::kLanaiStreamed:
      return lanai_latency_s<lcp::StreamedLcp>(bytes, r);
    case Layer::kHybridMinimal:
      return vestigial_latency_s(false, bytes, r);
    case Layer::kAllDma:
      return vestigial_latency_s(true, bytes, r);
    case Layer::kBufMgmt:
    case Layer::kBufMgmtSwitch:
    case Layer::kFm:
    case Layer::kFmSwitch:
      return fm_latency_s(layer, bytes, opts);
    case Layer::kApiImm:
      return api_latency_s(false, bytes, r);
    case Layer::kApiDma:
      return api_latency_s(true, bytes, r);
  }
  FM_UNREACHABLE("bad layer");
}

double measure_bandwidth_mbs(Layer layer, std::size_t bytes,
                             const MeasureOpts& opts) {
  const std::size_t n = opts.stream_packets;
  switch (layer) {
    case Layer::kTheoretical:
      return lcp::TheoreticalPeak().bandwidth_mbs(bytes);
    case Layer::kLanaiBaseline:
      return lanai_bw_mbs<lcp::BaselineLcp>(bytes, n);
    case Layer::kLanaiStreamed:
      return lanai_bw_mbs<lcp::StreamedLcp>(bytes, n);
    case Layer::kHybridMinimal:
      return vestigial_bw_mbs(false, bytes, n);
    case Layer::kAllDma:
      return vestigial_bw_mbs(true, bytes, n);
    case Layer::kBufMgmt:
    case Layer::kBufMgmtSwitch:
    case Layer::kFm:
    case Layer::kFmSwitch:
      return fm_bw_mbs(layer, bytes, opts);
    case Layer::kApiImm:
      return api_bw_mbs(false, bytes, n);
    case Layer::kApiDma:
      return api_bw_mbs(true, bytes, n);
  }
  FM_UNREACHABLE("bad layer");
}

SweepResult sweep(Layer layer, const std::vector<std::size_t>& sizes,
                  const MeasureOpts& opts) {
  SweepResult r;
  r.layer = layer;
  r.name = layer_name(layer);
  std::vector<TimePoint> lat_points, period_points;
  std::vector<BwPoint> bw_points;
  for (std::size_t bytes : sizes) {
    SweepPoint p;
    p.bytes = bytes;
    p.latency_us = measure_latency_s(layer, bytes, opts) * 1e6;
    p.bandwidth_mbs = measure_bandwidth_mbs(layer, bytes, opts);
    r.points.push_back(p);
    lat_points.push_back({static_cast<double>(bytes), p.latency_us * 1e-6});
    // Per-packet streaming period: N / BW.
    double period_s =
        static_cast<double>(bytes) / (p.bandwidth_mbs * 1048576.0);
    period_points.push_back({static_cast<double>(bytes), period_s});
    bw_points.push_back({static_cast<double>(bytes), p.bandwidth_mbs});
  }
  auto lat_fit = fit_linear(lat_points);
  auto bw_fit = fit_linear(period_points);
  r.t0_lat_us = lat_fit.t0_us();
  r.t0_bw_us = bw_fit.t0_us();
  r.r_inf_fit_mbs = bw_fit.r_inf_mbs();
  // r_inf: "peak bandwidth for infinitely large packets" — probe a large
  // transfer rather than trusting the small-packet regression slope.
  r.r_inf_mbs = opts.asymptote_bytes
                    ? measure_bandwidth_mbs(layer, opts.asymptote_bytes, opts)
                    : r.r_inf_fit_mbs;
  r.n_half_bytes = n_half(bw_points, r.r_inf_mbs);
  if (r.n_half_bytes < 0) {
    // The curve never reaches half the asymptote inside the sweep: solve
    // the fitted period line N / (t0 + N*b) = r_inf/2 for N (the paper's
    // API rows are exactly this case).
    double target = r.r_inf_mbs / 2.0 * 1048576.0;  // bytes/s
    double denom = 1.0 / target - bw_fit.sec_per_byte;
    if (denom > 0) {
      r.n_half_bytes = bw_fit.t0_seconds / denom;
      r.n_half_extrapolated = true;
    }
  }
  return r;
}

double SweepResult::n_half_vs(double assumed_r_inf) const {
  std::vector<BwPoint> curve;
  for (const auto& p : points)
    curve.push_back({static_cast<double>(p.bytes), p.bandwidth_mbs});
  double nh = n_half(curve, assumed_r_inf);
  if (nh < 0 && r_inf_fit_mbs > 0) {
    // Extrapolate from the fitted period line, as the paper must have for
    // its API rows (their sweep also stopped at 600 B).
    double target = assumed_r_inf / 2.0 * 1048576.0;  // bytes/s
    double slope = 1.0 / (r_inf_fit_mbs * 1048576.0);  // s per byte
    double denom = 1.0 / target - slope;
    if (denom > 0) nh = t0_bw_us * 1e-6 / denom;
  }
  return nh;
}

std::vector<std::size_t> paper_sizes() {
  return {4, 16, 32, 64, 96, 128, 160, 192, 256, 320, 384, 448, 512, 600};
}

double fm_latency_custom_s(const FmConfig& cfg, const lcp::FmLcpConfig& lcfg,
                           std::size_t message_bytes, std::size_t rounds) {
  return fm_latency_impl(cfg, lcfg, message_bytes, rounds);
}

double fm_bandwidth_custom_mbs(const FmConfig& cfg,
                               const lcp::FmLcpConfig& lcfg,
                               std::size_t message_bytes,
                               std::size_t packets) {
  return fm_bw_impl(cfg, lcfg, message_bytes, packets);
}

}  // namespace fm::metrics
