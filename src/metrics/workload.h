// Synthetic traffic workloads.
//
// §5 of the paper: "Serendipitously, the FM frame size is close to the best
// size for supporting TCP/IP and UDP/IP traffic, where the vast majority of
// packets would fit into a single frame [Armitage & Adams, 'How inefficient
// is IP over ATM anyway?']." The mixes here let benches evaluate the layers
// under realistic message-size distributions rather than fixed sizes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace fm::metrics {

/// A discrete message-size distribution.
class TrafficMix {
 public:
  struct Bucket {
    std::size_t bytes;
    double weight;
  };

  TrafficMix(std::string name, std::vector<Bucket> buckets)
      : name_(std::move(name)), buckets_(std::move(buckets)) {
    FM_CHECK_MSG(!buckets_.empty(), "empty traffic mix");
    for (const auto& b : buckets_) total_ += b.weight;
    FM_CHECK_MSG(total_ > 0, "zero-weight traffic mix");
  }

  /// Samples one message size.
  std::size_t sample(Xoshiro256& rng) const {
    double x = rng.uniform() * total_;
    for (const auto& b : buckets_) {
      if (x < b.weight) return b.bytes;
      x -= b.weight;
    }
    return buckets_.back().bytes;
  }

  /// Mean message size.
  double mean_bytes() const {
    double m = 0;
    for (const auto& b : buckets_)
      m += static_cast<double>(b.bytes) * b.weight;
    return m / total_;
  }

  /// Fraction of messages no larger than `limit` (e.g. one FM frame).
  double fraction_at_most(std::size_t limit) const {
    double f = 0;
    for (const auto& b : buckets_)
      if (b.bytes <= limit) f += b.weight;
    return f / total_;
  }

  const std::string& name() const { return name_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

 private:
  std::string name_;
  std::vector<Bucket> buckets_;
  double total_ = 0;
};

/// Internet-style packet sizes (classic trimodal IP distribution: ~60%
/// minimal ack/control packets, a hump at the 576 B default MTU, and a tail
/// of full 1500 B Ethernet frames).
inline TrafficMix tcp_ip_mix() {
  return TrafficMix("tcp-ip", {{40, 0.35},
                               {64, 0.25},
                               {128, 0.15},
                               {576, 0.17},
                               {1500, 0.08}});
}

/// Fine-grained parallel-computation traffic: small control and halo
/// messages dominate (the workload FM is designed for).
inline TrafficMix finegrain_mix() {
  return TrafficMix("fine-grain",
                    {{16, 0.50}, {64, 0.30}, {128, 0.15}, {512, 0.05}});
}

/// Bulk transfer: large messages with occasional control traffic.
inline TrafficMix bulk_mix() {
  return TrafficMix("bulk", {{64, 0.10}, {4096, 0.45}, {16384, 0.45}});
}

}  // namespace fm::metrics
