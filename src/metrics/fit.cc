#include "metrics/fit.h"

#include "common/check.h"

namespace fm::metrics {

LinearFit fit_linear(const std::vector<TimePoint>& points) {
  FM_CHECK_MSG(points.size() >= 2, "need at least two points to fit");
  double n = static_cast<double>(points.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& p : points) {
    sx += p.bytes;
    sy += p.seconds;
    sxx += p.bytes * p.bytes;
    sxy += p.bytes * p.seconds;
  }
  double denom = n * sxx - sx * sx;
  FM_CHECK_MSG(denom != 0.0, "degenerate fit (all sizes equal)");
  LinearFit f;
  f.sec_per_byte = (n * sxy - sx * sy) / denom;
  f.t0_seconds = (sy - f.sec_per_byte * sx) / n;
  return f;
}

double n_half_crossing(const std::vector<BwPoint>& curve, double target_mbs) {
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].mbs >= target_mbs) {
      if (i == 0) return curve[0].bytes;
      // Interpolate between i-1 and i.
      const auto& a = curve[i - 1];
      const auto& b = curve[i];
      double frac = (target_mbs - a.mbs) / (b.mbs - a.mbs);
      return a.bytes + frac * (b.bytes - a.bytes);
    }
  }
  return -1.0;
}

double n_half(const std::vector<BwPoint>& curve, double r_inf_mbs) {
  return n_half_crossing(curve, r_inf_mbs / 2.0);
}

}  // namespace fm::metrics
