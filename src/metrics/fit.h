// Performance-metric computation: the paper's t0, r_inf, n_1/2 (Table 2).
//
//   r_inf : peak bandwidth for infinitely large packets (asymptotic)
//   n_1/2 : packet size achieving r_inf / 2
//   t0    : startup overhead
//   l     : one-way packet latency
//
// t0 and r_inf come from a least-squares fit of time(N) = t0 + N / r_inf;
// n_1/2 is measured by interpolating the bandwidth curve against r_inf/2,
// exactly the paper's definition ("the packet size to achieve half of the
// peak bandwidth").
#pragma once

#include <cstddef>
#include <vector>

namespace fm::metrics {

/// A (packet size, seconds) observation.
struct TimePoint {
  double bytes;
  double seconds;
};

/// Result of fitting time(N) = t0 + N / r_inf.
struct LinearFit {
  double t0_seconds = 0.0;        ///< Intercept.
  double sec_per_byte = 0.0;      ///< Slope.
  /// Asymptotic bandwidth in the paper's MB/s (1 MB = 2^20 B).
  double r_inf_mbs() const {
    return sec_per_byte > 0 ? 1.0 / sec_per_byte / 1048576.0 : 0.0;
  }
  /// t0 in microseconds.
  double t0_us() const { return t0_seconds * 1e6; }
};

/// Ordinary least squares over the points (>= 2 distinct sizes required).
LinearFit fit_linear(const std::vector<TimePoint>& points);

/// A (packet size, MB/s) observation.
struct BwPoint {
  double bytes;
  double mbs;
};

/// First packet size at which the measured bandwidth curve crosses
/// `target_mbs`, linearly interpolated between neighbouring samples.
/// Returns a negative value when the curve never reaches the target within
/// the sweep (caller reports "> max size").
double n_half_crossing(const std::vector<BwPoint>& curve, double target_mbs);

/// The paper's n_1/2 for a sweep: crossing of r_inf/2, where r_inf is taken
/// from `fit` (or an externally assumed value — the paper uses the SBus
/// write bandwidth for the Myricom API rows).
double n_half(const std::vector<BwPoint>& curve, double r_inf_mbs);

}  // namespace fm::metrics
