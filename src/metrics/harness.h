// Measurement harnesses for every layer configuration in the paper.
//
// The paper's methodology (§4.1), reproduced: "Network latency is measured
// by ping-ponging a message back and forth 50 times, and dividing to compute
// the one-way packet latency. Bandwidth is determined by measuring the time
// to send 65,535 packets and dividing the volume of data transmitted by the
// elapsed time." — packet counts are configurable (65,535 per point is slow
// on a laptop-scale simulator; the defaults keep full-figure runs under a
// minute and `--packets=65535` restores paper-exact volume).
//
// Each Layer enumerator is one curve from Figures 3/4/7/8/9 (and one row of
// Table 4).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fm/config.h"
#include "lcp/fm_lcp.h"
#include "metrics/fit.h"

namespace fm {
class SimEndpoint;
}

namespace fm::metrics {

/// FM-Scope observation hook: called once per FM-layer measurement, after
/// the run completed (endpoints quiescent) and before teardown, with the
/// two endpoints so callers can snapshot registries and counters.
using ObserveFn = std::function<void(SimEndpoint& tx, SimEndpoint& rx)>;

/// One configuration of the messaging stack.
enum class Layer {
  kTheoretical,    ///< Appendix A closed form (no simulation).
  kLanaiBaseline,  ///< Fig 2(a) loop, LANai<->LANai (Fig 3).
  kLanaiStreamed,  ///< Fig 2(b) loop, LANai<->LANai (Fig 3).
  kHybridMinimal,  ///< streamed + hybrid SBus, vestigial hosts (Fig 4).
  kAllDma,         ///< streamed + all-DMA SBus, vestigial hosts (Fig 4).
  kBufMgmt,        ///< + buffer management (FM layer, flow control off; Fig 7).
  kBufMgmtSwitch,  ///< + switch() interpretation in the LCP (Fig 7).
  kFm,             ///< full FM 1.0: + return-to-sender flow control (Fig 8).
  kFmSwitch,       ///< full FM + switch() (Table 4 row 7).
  kApiImm,         ///< Myricom API, myri_cmd_send_imm() (Fig 9).
  kApiDma,         ///< Myricom API, myri_cmd_send() (Fig 9).
};

/// Display name ("Streamed + hybrid", ...).
std::string layer_name(Layer layer);

/// Harness options.
struct MeasureOpts {
  std::size_t pingpong_rounds = 50;   ///< Round trips per latency point.
  std::size_t stream_packets = 2048;  ///< Packets per bandwidth point.
  /// FM frame payload override (0 = the size under test, uncapped — the
  /// figure sweeps vary the frame size exactly as the paper's do).
  std::size_t frame_payload = 0;
  /// Packet size used to probe r_inf ("peak bandwidth for infinitely large
  /// packets"); 0 disables the probe (r_inf falls back to the fitted slope).
  std::size_t asymptote_bytes = 16384;
  /// FM-Scope hook (may be empty). Only the FM layers (kBufMgmt and up)
  /// construct SimEndpoints, so only they invoke it.
  ObserveFn observe;
};

/// One sweep point.
struct SweepPoint {
  std::size_t bytes = 0;        ///< Payload size.
  double latency_us = 0.0;      ///< One-way latency.
  double bandwidth_mbs = 0.0;   ///< Streaming bandwidth (paper MB/s).
};

/// A measured curve plus its Table 2 metrics.
struct SweepResult {
  Layer layer;
  std::string name;
  std::vector<SweepPoint> points;
  double t0_lat_us = 0.0;   ///< Intercept of the latency curve.
  double t0_bw_us = 0.0;    ///< Intercept of the per-packet period curve.
  double r_inf_mbs = 0.0;   ///< Asymptotic bandwidth (large-packet probe).
  double r_inf_fit_mbs = 0.0;  ///< 1/slope of the period fit (diagnostic).
  double n_half_bytes = 0;  ///< n_1/2 (measured, or extrapolated from fit).
  bool n_half_extrapolated = false;  ///< True when beyond the sweep range.

  /// n_1/2 against an externally assumed r_inf (the paper's method for the
  /// API rows, where r_inf could not be measured).
  double n_half_vs(double assumed_r_inf) const;
};

/// Measures one-way latency at one payload size (seconds).
double measure_latency_s(Layer layer, std::size_t bytes,
                         const MeasureOpts& opts = MeasureOpts());

/// Measures streaming bandwidth at one payload size (paper MB/s).
double measure_bandwidth_mbs(Layer layer, std::size_t bytes,
                             const MeasureOpts& opts = MeasureOpts());

/// Runs a full sweep over `sizes` and computes the summary metrics.
SweepResult sweep(Layer layer, const std::vector<std::size_t>& sizes,
                  const MeasureOpts& opts = MeasureOpts());

/// The figure sweep used throughout the paper: 0-600 B region. Zero-byte
/// points are replaced by 4 B (an empty packet still has a route flit; the
/// paper's graphs start near zero).
std::vector<std::size_t> paper_sizes();

/// FM measurements with explicit layer configuration (used by the ablation
/// benches: frame-size study, aggregation window, window-mode flow control).
double fm_latency_custom_s(const FmConfig& cfg, const lcp::FmLcpConfig& lcfg,
                           std::size_t message_bytes, std::size_t rounds);
double fm_bandwidth_custom_mbs(const FmConfig& cfg,
                               const lcp::FmLcpConfig& lcfg,
                               std::size_t message_bytes,
                               std::size_t packets);

}  // namespace fm::metrics
