// Textual reporting: aligned tables, ASCII charts, CSV emission.
//
// Every bench binary uses these to print the paper's figure as (a) a
// latency table, (b) a bandwidth table, (c) two ASCII charts shaped like
// the paper's plots, and (d) a CSV file under results/ for external
// plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/harness.h"

namespace fm::metrics {

/// Prints a heading bar.
void print_heading(std::FILE* f, const std::string& title);

/// Prints latency (us) per size for all series, one column per series.
void print_latency_table(std::FILE* f, const std::vector<SweepResult>& series);

/// Prints bandwidth (MB/s) per size for all series.
void print_bandwidth_table(std::FILE* f,
                           const std::vector<SweepResult>& series);

/// Prints the Table 2 summary metrics (t0, r_inf, n_1/2) for each series,
/// with optional paper-reference values appended by the caller.
struct PaperRef {
  double t0_us = -1;
  double r_inf_mbs = -1;
  double n_half = -1;
};
void print_summary(std::FILE* f, const std::vector<SweepResult>& series,
                   const std::vector<PaperRef>& refs);

/// ASCII chart of latency vs size (one glyph per series).
void chart_latency(std::FILE* f, const std::vector<SweepResult>& series);

/// ASCII chart of bandwidth vs size.
void chart_bandwidth(std::FILE* f, const std::vector<SweepResult>& series);

/// Writes `series` as CSV (size, then one latency and one bandwidth column
/// per series) to `path`; creates parent directory "results/" if relative.
void write_csv(const std::string& path, const std::vector<SweepResult>& series);

}  // namespace fm::metrics
