#include "metrics/report.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fm::metrics {
namespace {

constexpr char kGlyphs[] = "*o+x#@%&^~";

// Generic grid plot: x = packet size, y = value chosen by `get`.
void chart(std::FILE* f, const std::vector<SweepResult>& series,
           const char* y_label, double (*get)(const SweepPoint&)) {
  constexpr int kW = 72, kH = 20;
  double xmax = 0, ymax = 0;
  for (const auto& s : series)
    for (const auto& p : s.points) {
      xmax = std::max(xmax, static_cast<double>(p.bytes));
      ymax = std::max(ymax, get(p));
    }
  if (xmax <= 0 || ymax <= 0) return;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    char g = kGlyphs[si % (sizeof kGlyphs - 1)];
    for (const auto& p : series[si].points) {
      int x = static_cast<int>(static_cast<double>(p.bytes) / xmax * (kW - 1));
      int y = static_cast<int>(get(p) / ymax * (kH - 1));
      y = std::clamp(y, 0, kH - 1);
      x = std::clamp(x, 0, kW - 1);
      grid[kH - 1 - y][x] = g;
    }
  }
  std::fprintf(f, "  %s (max %.1f)\n", y_label, ymax);
  for (const auto& row : grid) std::fprintf(f, "  |%s\n", row.c_str());
  std::fprintf(f, "  +%s\n", std::string(kW, '-').c_str());
  std::fprintf(f, "   0%*s%.0f bytes\n", kW - 8, "", xmax);
  for (std::size_t si = 0; si < series.size(); ++si)
    std::fprintf(f, "   %c = %s\n", kGlyphs[si % (sizeof kGlyphs - 1)],
                 series[si].name.c_str());
}

double get_latency(const SweepPoint& p) { return p.latency_us; }
double get_bw(const SweepPoint& p) { return p.bandwidth_mbs; }

void print_value_table(std::FILE* f, const std::vector<SweepResult>& series,
                       const char* unit, double (*get)(const SweepPoint&)) {
  std::fprintf(f, "  %8s", "bytes");
  for (const auto& s : series) std::fprintf(f, "  %24.24s", s.name.c_str());
  std::fprintf(f, "   (%s)\n", unit);
  FM_CHECK(!series.empty());
  for (std::size_t i = 0; i < series[0].points.size(); ++i) {
    std::fprintf(f, "  %8zu", series[0].points[i].bytes);
    for (const auto& s : series) {
      FM_CHECK(s.points.size() == series[0].points.size());
      std::fprintf(f, "  %24.2f", get(s.points[i]));
    }
    std::fputc('\n', f);
  }
}

}  // namespace

void print_heading(std::FILE* f, const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::fprintf(f, "\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(),
               bar.c_str());
}

void print_latency_table(std::FILE* f,
                         const std::vector<SweepResult>& series) {
  std::fprintf(f, "\nOne-way latency:\n");
  print_value_table(f, series, "us", get_latency);
}

void print_bandwidth_table(std::FILE* f,
                           const std::vector<SweepResult>& series) {
  std::fprintf(f, "\nBandwidth:\n");
  print_value_table(f, series, "MB/s", get_bw);
}

void print_summary(std::FILE* f, const std::vector<SweepResult>& series,
                   const std::vector<PaperRef>& refs) {
  std::fprintf(f, "\n%-34s %10s %10s %10s   %s\n", "layer", "t0 (us)",
               "r_inf MB/s", "n1/2 (B)", "paper (t0 / r_inf / n1/2)");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    char nh[32];
    if (s.n_half_bytes >= 0)
      std::snprintf(nh, sizeof nh, "%s%.0f",
                    s.n_half_extrapolated ? "~" : "", s.n_half_bytes);
    else
      std::snprintf(nh, sizeof nh, ">%zu", s.points.back().bytes);
    std::fprintf(f, "%-34s %10.1f %10.1f %10s", s.name.c_str(), s.t0_bw_us,
                 s.r_inf_mbs, nh);
    if (i < refs.size() && refs[i].t0_us >= 0)
      std::fprintf(f, "   %.1f / %.1f / %.0f", refs[i].t0_us,
                   refs[i].r_inf_mbs, refs[i].n_half);
    std::fputc('\n', f);
  }
}

void chart_latency(std::FILE* f, const std::vector<SweepResult>& series) {
  std::fprintf(f, "\nLatency vs packet size:\n");
  chart(f, series, "one-way latency (us)", get_latency);
}

void chart_bandwidth(std::FILE* f, const std::vector<SweepResult>& series) {
  std::fprintf(f, "\nBandwidth vs packet size:\n");
  chart(f, series, "bandwidth (MB/s)", get_bw);
}

void write_csv(const std::string& path,
               const std::vector<SweepResult>& series) {
  if (series.empty()) return;
  ::mkdir("results", 0755);  // best-effort; path may be absolute
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "bytes");
  for (const auto& s : series)
    std::fprintf(f, ",%s latency_us,%s mbs", s.name.c_str(), s.name.c_str());
  std::fputc('\n', f);
  for (std::size_t i = 0; i < series[0].points.size(); ++i) {
    std::fprintf(f, "%zu", series[0].points[i].bytes);
    for (const auto& s : series)
      std::fprintf(f, ",%.3f,%.3f", s.points[i].latency_us,
                   s.points[i].bandwidth_mbs);
    std::fputc('\n', f);
  }
  std::fclose(f);
}

}  // namespace fm::metrics
