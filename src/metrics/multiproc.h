// Multi-process measurement merging.
//
// The net backend's ranks live in separate address spaces, so a run's
// FM-Scope state arrives as a flat list of per-rank samples
// ("net.node0.frames_sent", "net.node1.frames_sent", ...) collected over
// the control channel (fm::RunReport::samples). Benches and soak tests
// usually want the cluster-wide view; these helpers roll the per-rank
// samples up without losing the per-rank ones (both go into the bench
// JSON: totals for trajectory diffs, per-rank for debugging a skewed run).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace fm::metrics {

/// Sum of every sample whose scope-qualified name ends in ".<suffix>".
inline double sum_suffix(const std::vector<obs::Sample>& samples,
                         std::string_view suffix) {
  std::string dotted = std::string(".") += std::string(suffix);
  double total = 0;
  for (const obs::Sample& s : samples) {
    if (s.name.size() > dotted.size() &&
        s.name.compare(s.name.size() - dotted.size(), dotted.size(), dotted) ==
            0)
      total += s.value;
  }
  return total;
}

/// Collapses per-rank samples into cluster totals: every name of the form
/// "<backend>.node<id>.<counter>" contributes to "<backend>.total.<counter>"
/// (summed; gauges too — a total occupancy is still meaningful). Names that
/// do not match the per-rank scheme pass through unchanged. Input order is
/// preserved for the first occurrence of each output name.
inline std::vector<obs::Sample> merge_rank_samples(
    const std::vector<obs::Sample>& samples) {
  std::vector<obs::Sample> out;
  auto find = [&out](const std::string& name) -> obs::Sample* {
    for (obs::Sample& s : out)
      if (s.name == name) return &s;
    return nullptr;
  };
  for (const obs::Sample& s : samples) {
    std::string merged_name = s.name;
    const std::size_t node = merged_name.find(".node");
    if (node != std::string::npos) {
      std::size_t digits = node + 5;
      while (digits < merged_name.size() &&
             merged_name[digits] >= '0' && merged_name[digits] <= '9')
        ++digits;
      if (digits > node + 5 && digits < merged_name.size() &&
          merged_name[digits] == '.')
        merged_name =
            merged_name.substr(0, node) + ".total" + merged_name.substr(digits);
    }
    if (obs::Sample* existing = find(merged_name)) {
      existing->value += s.value;
    } else {
      out.push_back(obs::Sample{merged_name, s.value, s.monotonic});
    }
  }
  return out;
}

/// Per-rank samples plus their cluster totals, concatenated — the standard
/// "counters" payload for a multi-process bench JSON.
inline std::vector<obs::Sample> with_rank_totals(
    const std::vector<obs::Sample>& samples) {
  std::vector<obs::Sample> out = samples;
  std::vector<obs::Sample> merged = merge_rank_samples(samples);
  out.insert(out.end(), merged.begin(), merged.end());
  return out;
}

}  // namespace fm::metrics
