// FM-Check engine 1: loom/relacy-style exhaustive exploration of small
// concurrent models.
//
// An *episode* is a fresh instance of a small model: two or three thread
// bodies closing over freshly constructed shared state (a capacity-2 ring,
// a 2-slot send window) plus an optional final invariant check. explore()
// runs the episode under a cooperative scheduler — the real std::threads
// only ever run one at a time, handing off at every instrumented operation
// (chk/shim.h) — and enumerates every schedule the bounds admit:
//
//  * thread interleavings, with a bounded number of preemptions
//    (max_preemptions): switching away from a thread that could still run
//    costs budget; forced switches (current thread blocked in chk::yield
//    or finished) are free. Small preemption bounds find almost all real
//    concurrency bugs at a fraction of the unbounded search space.
//  * weak-memory effects, with a bounded number of delayed stores
//    (max_delayed_stores): a relaxed atomic store or a plain shared_write
//    may be parked in the writing thread's store buffer and drained to
//    shared memory at any later point (each drain is itself a scheduled,
//    explored action). Release/seq_cst stores first drain the buffer —
//    so a missing release edge is observable as a torn read, while a
//    correct one provably never is. Loads forward from the thread's own
//    buffer. Acquire loads are modeled like relaxed loads (a TSO-like
//    approximation: it catches missing-release publication bugs, the
//    dominant failure mode on x86 and in compiler reordering, but not
//    pure missing-acquire bugs on genuinely weak hardware — TSan's job).
//
// Every explored schedule is a token string ("s1,b0,s1,f0,..."); a
// violation (chk::fail / chk::require in a model body or the final check,
// a deadlock, or a step-cap livelock) stops the search and reports the
// schedule, which replays bit-for-bit via replay() or the FM_CHK_SCHEDULE
// environment variable — the FM_SAN_SEED idea, made exact. Violations
// also write a counterexample artifact into $FM_OBS_DUMP_DIR when set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fm::chk {

/// One run of a small model: fresh state, its threads, a final check.
struct Episode {
  /// Thread bodies. Shared state must be owned by the closures (e.g. via
  /// shared_ptr captured by every body) and freshly constructed per
  /// episode — explore() calls the episode factory once per schedule.
  std::vector<std::function<void()>> threads;
  /// Runs after all threads finished and every store buffer drained
  /// (sequentially consistent view); chk::require violations here are
  /// reported like in-thread ones. May be empty.
  std::function<void()> finally;
};

struct ModelOptions {
  /// Names the model in schedule strings, artifacts and FM_CHK_SCHEDULE
  /// matching.
  const char* name = "model";
  /// Context switches away from a runnable thread per schedule.
  std::size_t max_preemptions = 2;
  /// Relaxed/plain stores that may be buffered per schedule (0 = explore
  /// sequentially consistent interleavings only).
  std::size_t max_delayed_stores = 1;
  /// Store-buffer entries a single thread may hold at once.
  std::size_t max_buffered = 4;
  /// Scheduled actions per schedule before the run is declared a livelock.
  std::size_t max_steps = 10000;
  /// Total schedules before the search aborts loudly (a model that hits
  /// this is too big to be exhaustively checked — shrink it).
  std::uint64_t max_schedules = 2'000'000;
};

struct ModelResult {
  std::uint64_t schedules_explored = 0;
  bool violation = false;
  std::string schedule;  ///< replay string "<name>:<tokens>" when violated
  std::string message;   ///< violation diagnostic
};

/// Exhaustively explores every schedule of the episodes `make` produces.
/// Stops at the first violation. If FM_CHK_SCHEDULE is set to
/// "<name>:<tokens>" with a matching name, runs exactly that schedule
/// instead (replay mode).
ModelResult explore(const ModelOptions& opts,
                    const std::function<Episode()>& make);

/// Replays one recorded schedule ("<name>:<tokens>" or bare tokens).
ModelResult replay(const ModelOptions& opts,
                   const std::function<Episode()>& make,
                   const std::string& schedule);

/// Reports a model invariant violation from a thread body or final check.
/// Outside an active exploration this aborts (FM_CHECK discipline).
[[noreturn]] void fail(const std::string& msg);

/// fail(msg) unless cond.
inline void require(bool cond, const char* msg) {
  if (!cond) fail(msg);
}

}  // namespace fm::chk
