// Counterexample reporting shared by both FM-Check engines: print the
// replay line (FM_SAN_SEED's exact-replay idea, applied to schedules) and
// drop an artifact into $FM_OBS_DUMP_DIR so a red CI run ships the
// schedule alongside the FM-Scope dumps.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace fm::chk {

inline void report_counterexample(const char* engine, const char* name,
                                  const std::string& schedule,
                                  const std::string& message,
                                  std::uint64_t explored) {
  std::fprintf(stderr,
               "FM-Check[%s]: violation in model '%s' after %llu explored "
               "schedule(s)\n  %s\n  replay: FM_CHK_SCHEDULE='%s'\n",
               engine, name, static_cast<unsigned long long>(explored),
               message.c_str(), schedule.c_str());
  std::fflush(stderr);
  const char* dir = std::getenv("FM_OBS_DUMP_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  const std::filesystem::path path =
      std::filesystem::path(dir) / (std::string(name) + ".chk.txt");
  std::ofstream f(path);
  if (!f) return;
  f << "engine: " << engine << "\n"
    << "model: " << name << "\n"
    << "schedules_explored: " << explored << "\n"
    << "violation: " << message << "\n"
    << "replay: FM_CHK_SCHEDULE='" << schedule << "'\n";
}

}  // namespace fm::chk
