#include "chk/proto_model.h"

#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "fm/frame.h"
#include "fm/protocol.h"

namespace fm::chk {
namespace {

constexpr NodeId kSender = 0;
constexpr NodeId kReceiver = 1;

// Model frames carry their metadata through the SendWindow slab as 8 bytes
// (msg_id u32, frag_index u16, frag_count u16), so a timer retransmission
// re-sources the frame from the window exactly like the real endpoints do.
constexpr std::size_t kSlotBytes = 8;

struct Wire {
  std::uint32_t msg_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 1;
};

void encode_wire(const Wire& w, std::uint8_t* dst) {
  std::memcpy(dst, &w.msg_id, 4);
  std::memcpy(dst + 4, &w.frag_index, 2);
  std::memcpy(dst + 6, &w.frag_count, 2);
}

Wire decode_wire(const std::uint8_t* src) {
  Wire w;
  std::memcpy(&w.msg_id, src, 4);
  std::memcpy(&w.frag_index, src + 4, 2);
  std::memcpy(&w.frag_count, src + 6, 2);
  return w;
}

/// An in-flight model frame. kData/kReject carry (seq, wire); kAck carries
/// the acked seqs.
struct MFrame {
  enum class Kind { kData, kAck, kReject };
  Kind kind = Kind::kData;
  std::uint32_t seq = 0;
  Wire wire;
  std::vector<std::uint32_t> acks;
};

// The adversary only ever distinguishes the first few in-flight frames:
// delivering frame 0..kDeliverWindow-1 out of order covers reordering
// without exploding the branching factor.
constexpr std::size_t kDeliverWindow = 2;
// Adversarial timer expiries per prefix (the fair suffix ticks freely).
constexpr std::size_t kMaxAdversarialTicks = 2;
// Fair-suffix rounds before the model declares the run stuck.
constexpr std::size_t kFairRounds = 50;

class ProtoModel {
 public:
  ProtoModel(Explorer& ex, const ProtoParams& p)
      : ex_(ex),
        p_(p),
        window_(p.window, kSlotBytes),
        timer_(p.timeout_ns, p.max_retries),
        reasm_(p.reasm_slots),
        faults_left_(p.fault_budget) {}

  ProtoStats run() {
    adversarial_prefix();
    fair_suffix();
    final_checks();
    return stats_;
  }

 private:
  // ---- sender side -------------------------------------------------------

  bool all_injected() const {
    return next_msg_ >= p_.msgs;
  }

  bool can_inject() const {
    return !dead_ && !all_injected() && !window_.full();
  }

  void inject_next() {
    FM_CHECK(can_inject());
    const std::uint32_t seq = window_.next_seq(kReceiver);
    Wire w;
    w.msg_id = next_msg_;
    w.frag_index = next_frag_;
    w.frag_count = p_.frags;
    std::uint8_t buf[kSlotBytes];
    encode_wire(w, buf);
    window_.track(kReceiver, seq, buf, kSlotBytes);
    timer_.arm(kReceiver, seq, now_);
    push_data(seq, w);
    ++stats_.sent_frames;
    if (++next_frag_ >= p_.frags) {
      next_frag_ = 0;
      ++next_msg_;
    }
  }

  void push_data(std::uint32_t seq, const Wire& w) {
    MFrame f;
    f.kind = MFrame::Kind::kData;
    f.seq = seq;
    f.wire = w;
    net_.push_back(std::move(f));
  }

  void handle_ack_frame(const MFrame& f) {
    for (std::uint32_t seq : f.acks) {
      // A re-ack of an already-retired seq returns false — harmless, and
      // exactly why resolved_acked only counts the true returns.
      if (window_.ack(kReceiver, seq)) ++stats_.resolved_acked;
      timer_.disarm(kReceiver, seq);
    }
  }

  void handle_reject_frame(const MFrame& f) {
    const SendWindow::Stored st = window_.find(kReceiver, f.seq);
    // A stale reject (the frame was meanwhile acked via a duplicate, or
    // abandoned) has nothing to bounce.
    if (st.data == nullptr) return;
    std::vector<std::uint8_t> bytes(st.data, st.data + st.len);
    window_.bounce(kReceiver, f.seq);
    timer_.disarm(kReceiver, f.seq);
    rejq_.add(kReceiver, f.seq, std::move(bytes));
  }

  void reinject_ready() {
    for (RejectQueue::Entry& e : rejq_.tick(p_.reject_delay)) {
      if (dead_) {
        // Dead-peer cleanup raced the tick; the frame is already counted
        // abandoned only if drop_dest saw it, so count the straggler here.
        ++stats_.abandoned;
        continue;
      }
      if (window_.full()) {
        // No slot yet — park it again (age restarts; the fair suffix keeps
        // ticking until acks free a slot).
        rejq_.add(e.dest, e.seq, std::move(e.bytes));
        continue;
      }
      window_.track(e.dest, e.seq, e.bytes.data(), e.bytes.size());
      timer_.arm(e.dest, e.seq, now_);
      push_data(e.seq, decode_wire(e.bytes.data()));
    }
  }

  void advance_time_and_expire() {
    // Past the capped backoff (timeout << 6), so every armed deadline fires.
    now_ += p_.timeout_ns << 7;
    std::vector<RetransmitTimer::Due> due;
    timer_.expired_into(now_, due);
    for (const RetransmitTimer::Due& d : due) {
      if (d.exhausted) {
        declare_dead();
        continue;
      }
      const SendWindow::Stored st = window_.find(d.dest, d.seq);
      if (st.data == nullptr) continue;  // retired while the expiry batched
      push_data(d.seq, decode_wire(st.data));
      ++stats_.retransmits;
    }
  }

  void declare_dead() {
    if (dead_) return;
    dead_ = true;
    stats_.dead_declared = true;
    stats_.abandoned +=
        static_cast<std::uint32_t>(window_.drop_dest(kReceiver));
    timer_.disarm_all(kReceiver);
    stats_.abandoned += static_cast<std::uint32_t>(rejq_.drop_dest(kReceiver));
  }

  // ---- receiver side -----------------------------------------------------

  void receiver_process(const MFrame& f) {
    if (p_.kill_node1) return;  // a dead rank processes nothing
    if (dedup_.seen(kSender, f.seq)) {
      // Duplicate of an accepted frame: re-ack so the sender's timer stops,
      // never re-deliver.
      acks_.note(kSender, f.seq);
      return;
    }
    if (p_.frags <= 1) {
      accept_frame(f.seq);
      deliver_msg(f.wire.msg_id);
      return;
    }
    FrameHeader h;
    h.type = FrameType::kData;
    h.src = kSender;
    h.seq = f.seq;
    h.payload_len = kSlotBytes;
    h.flags = FrameHeader::kFlagFragmented;
    h.msg_id = f.wire.msg_id;
    h.frag_index = f.wire.frag_index;
    h.frag_count = f.wire.frag_count;
    std::uint8_t payload[kSlotBytes];
    encode_wire(f.wire, payload);
    std::vector<std::uint8_t> out;
    switch (reasm_.feed(kSender, h, payload, &out, now_)) {
      case Reassembler::Feed::kAccepted:
        accept_frame(f.seq);
        break;
      case Reassembler::Feed::kComplete:
        accept_frame(f.seq);
        deliver_msg(f.wire.msg_id);
        break;
      case Reassembler::Feed::kRejected: {
        ++stats_.rejected_frames;
        MFrame r;
        r.kind = MFrame::Kind::kReject;
        r.seq = f.seq;
        r.wire = f.wire;
        net_.push_back(std::move(r));
        break;
      }
      case Reassembler::Feed::kMalformed:
        ex_.fail("reassembler saw malformed metadata on an uncorrupted wire");
    }
  }

  void accept_frame(std::uint32_t seq) {
    // The reference set is the oracle the DedupFilter is checked against:
    // if the filter ever lets a seq through twice, this insert fails.
    ex_.check(accepted_seqs_.insert(seq).second,
              "exactly-once violated: frame accepted twice");
    dedup_.mark(kSender, seq);
    acks_.note(kSender, seq);
  }

  void deliver_msg(std::uint32_t msg_id) {
    ex_.check(delivered_ids_.insert(msg_id).second,
              "exactly-once violated: message delivered twice");
    ++stats_.delivered_msgs;
  }

  void flush_acks() {
    while (acks_.due(kSender) > 0) {
      MFrame f;
      f.kind = MFrame::Kind::kAck;
      f.acks.resize(4);
      f.acks.resize(acks_.take_into(kSender, 4, f.acks.data()));
      net_.push_back(std::move(f));
    }
  }

  // ---- network -----------------------------------------------------------

  void deliver(std::size_t i) {
    FM_CHECK(i < net_.size());
    MFrame f = std::move(net_[i]);
    net_.erase(net_.begin() + static_cast<long>(i));
    switch (f.kind) {
      case MFrame::Kind::kData:
        receiver_process(f);
        break;
      case MFrame::Kind::kAck:
        handle_ack_frame(f);
        break;
      case MFrame::Kind::kReject:
        handle_reject_frame(f);
        break;
    }
  }

  // ---- schedule ----------------------------------------------------------

  enum class Act : std::uint8_t {
    kInject,
    kDeliver0,
    kDeliver1,
    kDrop,
    kDup,
    kFlushAcks,
    kTick,
    kRejectTick,
  };

  void adversarial_prefix() {
    static_assert(kDeliverWindow == 2, "action list hardcodes the window");
    std::size_t ticks = 0;
    for (std::size_t step = 0; step < p_.depth; ++step) {
      std::vector<Act> acts;
      if (can_inject()) acts.push_back(Act::kInject);
      if (!net_.empty()) acts.push_back(Act::kDeliver0);
      if (net_.size() > 1) acts.push_back(Act::kDeliver1);
      if (faults_left_ > 0 && !net_.empty()) {
        acts.push_back(Act::kDrop);
        acts.push_back(Act::kDup);
      }
      if (!p_.kill_node1 && acks_.due(kSender) > 0)
        acts.push_back(Act::kFlushAcks);
      if (ticks < kMaxAdversarialTicks && timer_.armed() > 0)
        acts.push_back(Act::kTick);
      if (rejq_.size() > 0) acts.push_back(Act::kRejectTick);
      if (acts.empty()) break;
      switch (acts[ex_.choose(acts.size())]) {
        case Act::kInject:
          inject_next();
          break;
        case Act::kDeliver0:
          deliver(0);
          break;
        case Act::kDeliver1:
          deliver(1);
          break;
        case Act::kDrop:
          --faults_left_;
          net_.erase(net_.begin());
          break;
        case Act::kDup:
          --faults_left_;
          net_.push_back(net_.front());
          break;
        case Act::kFlushAcks:
          flush_acks();
          break;
        case Act::kTick:
          ++ticks;
          advance_time_and_expire();
          break;
        case Act::kRejectTick:
          reinject_ready();
          break;
      }
    }
  }

  bool quiescent() const {
    return (all_injected() || dead_) && net_.empty() && rejq_.size() == 0 &&
           acks_.due(kSender) == 0 && timer_.armed() == 0 &&
           window_.in_flight() == 0;
  }

  void fair_suffix() {
    for (std::size_t round = 0; round < kFairRounds; ++round) {
      if (quiescent()) return;
      while (can_inject()) inject_next();
      while (!net_.empty()) deliver(0);
      flush_acks();
      while (!net_.empty()) deliver(0);
      reinject_ready();
      advance_time_and_expire();
      while (!net_.empty()) deliver(0);
      flush_acks();
      while (!net_.empty()) deliver(0);
    }
    if (!quiescent()) {
      ex_.fail(std::string("no quiescence within fair-phase bound: ") +
               "net=" + std::to_string(net_.size()) +
               " window=" + std::to_string(window_.in_flight()) +
               " rejq=" + std::to_string(rejq_.size()) +
               " timers=" + std::to_string(timer_.armed()) +
               " acks_due=" + std::to_string(acks_.due(kSender)));
    }
  }

  void final_checks() {
    ex_.check(stats_.sent_frames ==
                  stats_.resolved_acked + stats_.abandoned,
              "conservation violated: sent != resolved_acked + abandoned");
    if (p_.kill_node1) {
      ex_.check(stats_.delivered_msgs == 0,
                "dead receiver delivered a message");
      ex_.check(stats_.resolved_acked == 0, "dead receiver produced an ack");
      ex_.check(stats_.dead_declared || stats_.sent_frames == 0,
                "silent peer never declared dead");
      ex_.check(stats_.sent_frames == stats_.abandoned,
                "dead-peer convergence: some frames never abandoned");
    } else {
      ex_.check(stats_.delivered_msgs == p_.msgs,
                "liveness violated: message lost despite live receiver");
      ex_.check(!stats_.dead_declared, "live receiver declared dead");
    }
  }

  Explorer& ex_;
  const ProtoParams& p_;

  // Sender (node 0).
  SendWindow window_;
  RetransmitTimer timer_;
  RejectQueue rejq_;
  std::uint32_t next_msg_ = 0;
  std::uint16_t next_frag_ = 0;
  bool dead_ = false;

  // Receiver (node 1).
  DedupFilter dedup_;
  AckTracker acks_;
  Reassembler reasm_;
  std::set<std::uint32_t> accepted_seqs_;   // oracle for the DedupFilter
  std::set<std::uint32_t> delivered_ids_;   // oracle for exactly-once

  // World.
  std::vector<MFrame> net_;
  std::uint64_t now_ = 0;
  std::size_t faults_left_;
  ProtoStats stats_;
};

}  // namespace

ProtoStats run_proto_model(Explorer& ex, const ProtoParams& p) {
  ProtoModel m(ex, p);
  return m.run();
}

}  // namespace fm::chk
