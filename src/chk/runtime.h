// FM-Check runtime hooks: the narrow interface chk/shim.h instruments
// against. Implemented in sched.cc; compiled unconditionally into fm_chk
// (the hooks are ordinary functions — only translation units built with
// -DFM_CHK_MODEL ever call them).
//
// Each hook is a scheduler decision point. When the calling thread is a
// model thread inside chk::explore(), the hook parks the thread, hands
// control to the exploration controller, and performs the memory operation
// only once this thread is granted its next step. Outside a model (or on
// the controller thread itself, e.g. inside an episode's final invariant
// check) the hooks degrade to plain memory accesses.
#pragma once

#include <cstddef>

namespace fm::chk::rt {

/// Memory-order classification the store-buffer simulation distinguishes.
/// kPlain marks non-atomic shared byte copies (ring slot payloads): for
/// buffering purposes they behave like relaxed stores, which is exactly the
/// freedom the compiler and CPU have with them around non-release atomics.
enum class Order { kPlain, kRelaxed, kAcquire, kRelease, kSeqCst };

/// Read `len` bytes from shared `addr` into private `out`, overlaying the
/// calling thread's buffered (not yet drained) stores — store-to-load
/// forwarding, so a thread always sees its own writes in order.
void on_load(const void* addr, void* out, std::size_t len, Order o);

/// Write `len` bytes from private `bytes` to shared `addr`. Relaxed/plain
/// stores may be buffered (a per-schedule exploration choice); release and
/// seq_cst stores first drain every earlier buffered store of this thread,
/// which is the release fence the fixed SPSC ring relies on — and the edge
/// whose absence the buggy-ring counterexample fixture demonstrates.
void on_store(void* addr, const void* bytes, std::size_t len, Order o);

/// Serialization point before a read-modify-write; drains the calling
/// thread's store buffer (RMWs are globally ordered). The caller then
/// applies the RMW directly — all other model threads are parked.
void on_rmw(void* addr);

/// Spin-wait park: the thread is not runnable again until some other
/// scheduler action (another thread's step, or a store-buffer drain) has
/// happened. Collapses fruitless spin iterations so exhaustive exploration
/// of a spinning producer/consumer pair terminates.
void on_yield();

}  // namespace fm::chk::rt
