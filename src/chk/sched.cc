// FM-Check engine 1 implementation: the cooperative scheduler, per-thread
// store buffers, and the DFS over schedules. See chk/model.h for the model
// and semantics; chk/runtime.h documents the hooks chk/shim.h calls.
//
// Concurrency discipline: model threads are real std::threads, but at most
// one ever runs at a time — every handoff (controller -> thread, thread ->
// controller) goes through one mutex/condvar pair, so the "interleavings"
// are purely logical. That makes the engine itself sanitizer-clean (the
// mutex gives every handoff a happens-before edge) and lets model bodies
// touch shared state directly between schedule points without real races.

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chk/chooser.h"
#include "chk/model.h"
#include "chk/report.h"
#include "chk/runtime.h"
#include "common/check.h"

namespace fm::chk {
namespace {

struct ViolationError {
  std::string msg;
};
struct KilledError {};

/// A store parked in its thread's buffer, not yet visible to other threads.
struct StoreEntry {
  void* addr;
  std::vector<std::uint8_t> bytes;
};

struct PendingOp {
  enum class Kind { kNone, kLoad, kStore, kRmw, kYield };
  Kind kind = Kind::kNone;
  rt::Order order = rt::Order::kSeqCst;
};

enum class WState { kIdle, kLaunch, kRunning, kAtPoint, kYielded, kDone };
enum class Grant { kNone, kApply, kDelay, kKill };

struct Worker {
  int id = 0;
  WState st = WState::kIdle;
  std::function<void()> body;
  PendingOp op;
  Grant grant = Grant::kNone;
  std::vector<StoreEntry> buffer;  // FIFO, front = oldest
  std::uint64_t yield_seq = 0;     // action count when the thread yielded
  std::condition_variable cv;
  std::thread thr;
};

struct Action {
  enum class Kind { kStep, kDelay, kDrain };
  Kind kind;
  int t;
};

std::string token_of(const Action& a) {
  const char prefix = a.kind == Action::Kind::kStep    ? 's'
                      : a.kind == Action::Kind::kDelay ? 'b'
                                                       : 'f';
  std::string tok(1, prefix);
  tok += std::to_string(a.t);
  return tok;
}

class Engine;
Engine* g_engine = nullptr;
thread_local Worker* tls_worker = nullptr;

class Engine {
 public:
  Engine(const ModelOptions& opts, const std::function<Episode()>& make)
      : opts_(opts), make_(make) {}

  ~Engine() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
      for (auto& w : workers_) w->cv.notify_one();
    }
    for (auto& w : workers_) {
      if (w->thr.joinable()) w->thr.join();
    }
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  ModelResult run_explore() {
    ActiveGuard guard(this);
    ModelResult res;
    for (;;) {
      run_one();
      ++res.schedules_explored;
      chooser_.end_run();
      if (violation_) {
        res.violation = true;
        res.message = violation_msg_;
        res.schedule = schedule_string();
        report_counterexample("model", opts_.name, res.schedule, res.message,
                              res.schedules_explored);
        return res;
      }
      FM_CHECK_MSG(res.schedules_explored < opts_.max_schedules,
                   "FM-Check schedule cap exceeded — shrink the model");
      if (!chooser_.advance()) return res;
    }
  }

  ModelResult run_replay(const std::vector<std::string>& tokens) {
    ActiveGuard guard(this);
    replay_tokens_ = &tokens;
    run_one();
    replay_tokens_ = nullptr;
    ModelResult res;
    res.schedules_explored = 1;
    if (violation_) {
      res.violation = true;
      res.message = violation_msg_;
      res.schedule = schedule_string();
      report_counterexample("model-replay", opts_.name, res.schedule,
                            res.message, 1);
    } else if (!replay_note_.empty()) {
      res.message = replay_note_;
    }
    return res;
  }

  // ---- worker-side entry points (called from the rt:: hooks) ------------

  void do_load(const void* addr, void* out, std::size_t len, rt::Order o) {
    park(PendingOp{PendingOp::Kind::kLoad, o});
    std::memcpy(out, addr, len);
    // Store-to-load forwarding: overlay this thread's buffered writes,
    // oldest first, so later entries win where they overlap.
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    for (const StoreEntry& e : tls_worker->buffer) {
      const auto ea = reinterpret_cast<std::uintptr_t>(e.addr);
      const std::uintptr_t lo = a > ea ? a : ea;
      const std::uintptr_t hi_a = a + len;
      const std::uintptr_t hi_e = ea + e.bytes.size();
      const std::uintptr_t hi = hi_a < hi_e ? hi_a : hi_e;
      if (lo >= hi) continue;
      std::memcpy(static_cast<std::uint8_t*>(out) + (lo - a),
                  e.bytes.data() + (lo - ea), hi - lo);
    }
  }

  void do_store(void* addr, const void* bytes, std::size_t len, rt::Order o) {
    const Grant g = park(PendingOp{PendingOp::Kind::kStore, o});
    if (g == Grant::kDelay) {
      const auto* b = static_cast<const std::uint8_t*>(bytes);
      tls_worker->buffer.push_back(
          StoreEntry{addr, std::vector<std::uint8_t>(b, b + len)});
      return;
    }
    // A release (or seq_cst) store publishes everything before it: drain
    // this thread's buffer in order first. This is the edge the fixed ring
    // relies on and the one the buggy-ring fixture deliberately drops.
    if (o == rt::Order::kRelease || o == rt::Order::kSeqCst)
      drain_all(tls_worker);
    std::memcpy(addr, bytes, len);
  }

  void do_rmw() {
    park(PendingOp{PendingOp::Kind::kRmw, rt::Order::kSeqCst});
    drain_all(tls_worker);
  }

  void do_yield() { park(PendingOp{PendingOp::Kind::kYield, rt::Order::kSeqCst}); }

 private:
  struct ActiveGuard {
    explicit ActiveGuard(Engine* e) {
      FM_CHECK_MSG(g_engine == nullptr, "nested chk::explore");
      g_engine = e;
    }
    ~ActiveGuard() { g_engine = nullptr; }
  };

  static bool is_parked(const Worker& w) {
    return w.st == WState::kAtPoint || w.st == WState::kYielded ||
           w.st == WState::kDone;
  }

  bool steppable(const Worker& w) const {
    if (w.st == WState::kAtPoint) return true;
    // A yielded thread re-enters the schedule only after some other action
    // happened — its spin condition cannot have changed otherwise.
    if (w.st == WState::kYielded) return action_seq_ > w.yield_seq;
    return false;
  }

  void drain_all(Worker* w) {
    for (StoreEntry& e : w->buffer)
      std::memcpy(e.addr, e.bytes.data(), e.bytes.size());
    w->buffer.clear();
  }

  Grant park(const PendingOp& op) {
    Worker* w = tls_worker;
    std::unique_lock<std::mutex> lk(mu_);
    if (killing_) throw KilledError{};
    w->op = op;
    if (op.kind == PendingOp::Kind::kYield) {
      w->st = WState::kYielded;
      w->yield_seq = action_seq_;
    } else {
      w->st = WState::kAtPoint;
    }
    ctrl_cv_.notify_all();
    w->cv.wait(lk, [&] { return w->grant != Grant::kNone; });
    const Grant g = w->grant;
    w->grant = Grant::kNone;
    w->st = WState::kRunning;
    if (g == Grant::kKill) throw KilledError{};
    return g;
  }

  void worker_main(Worker* w) {
    tls_worker = w;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      w->cv.wait(lk, [&] { return w->st == WState::kLaunch || shutdown_; });
      if (shutdown_) return;
      w->st = WState::kRunning;
      lk.unlock();
      std::string viol;
      bool has_viol = false;
      try {
        w->body();
      } catch (const ViolationError& v) {
        viol = v.msg;
        has_viol = true;
      } catch (const KilledError&) {
      }
      lk.lock();
      if (has_viol && !violation_) {
        violation_ = true;
        violation_msg_ = viol;
      }
      w->st = WState::kDone;
      ctrl_cv_.notify_all();
    }
  }

  void ensure_workers(std::size_t n) {
    while (workers_.size() < n) {
      auto w = std::make_unique<Worker>();
      w->id = static_cast<int>(workers_.size());
      Worker* raw = w.get();
      w->thr = std::thread([this, raw] { worker_main(raw); });
      workers_.push_back(std::move(w));
    }
  }

  std::vector<Action> enabled_actions(std::size_t n) const {
    std::vector<Action> out;
    const bool cur_at_point =
        current_ >= 0 && workers_[current_]->st == WState::kAtPoint;
    for (std::size_t t = 0; t < n; ++t) {
      const Worker& w = *workers_[t];
      if (!steppable(w)) continue;
      // Switching away from a thread parked at an op (not a voluntary
      // yield) is a preemption; excluded once the budget is spent.
      const bool preempt = cur_at_point && static_cast<int>(t) != current_;
      if (preempt && preempt_used_ >= opts_.max_preemptions) continue;
      out.push_back(Action{Action::Kind::kStep, static_cast<int>(t)});
      if (w.st == WState::kAtPoint && w.op.kind == PendingOp::Kind::kStore &&
          (w.op.order == rt::Order::kPlain ||
           w.op.order == rt::Order::kRelaxed) &&
          delayed_used_ < opts_.max_delayed_stores &&
          w.buffer.size() < opts_.max_buffered) {
        out.push_back(Action{Action::Kind::kDelay, static_cast<int>(t)});
      }
    }
    for (std::size_t t = 0; t < n; ++t) {
      if (!workers_[t]->buffer.empty())
        out.push_back(Action{Action::Kind::kDrain, static_cast<int>(t)});
    }
    return out;
  }

  void grant_and_wait(std::unique_lock<std::mutex>& lk, Worker* w, Grant g) {
    w->grant = g;
    w->cv.notify_one();
    ctrl_cv_.wait(lk,
                  [&] { return w->grant == Grant::kNone && is_parked(*w); });
  }

  void perform(std::unique_lock<std::mutex>& lk, const Action& a) {
    ++action_seq_;
    tokens_.push_back(token_of(a));
    Worker* w = workers_[a.t].get();
    if (a.kind == Action::Kind::kDrain) {
      StoreEntry e = std::move(w->buffer.front());
      w->buffer.erase(w->buffer.begin());
      std::memcpy(e.addr, e.bytes.data(), e.bytes.size());
      return;
    }
    if (current_ >= 0 && a.t != current_ &&
        workers_[current_]->st == WState::kAtPoint) {
      ++preempt_used_;
    }
    current_ = a.t;
    if (a.kind == Action::Kind::kDelay) ++delayed_used_;
    grant_and_wait(lk, w,
                   a.kind == Action::Kind::kDelay ? Grant::kDelay
                                                  : Grant::kApply);
  }

  void kill_survivors(std::unique_lock<std::mutex>& lk, std::size_t n) {
    killing_ = true;
    for (std::size_t i = 0; i < n; ++i) {
      Worker* w = workers_[i].get();
      if (w->st == WState::kAtPoint || w->st == WState::kYielded) {
        w->grant = Grant::kKill;
        w->cv.notify_one();
      }
    }
    ctrl_cv_.wait(lk, [&] {
      for (std::size_t i = 0; i < n; ++i) {
        const WState st = workers_[i]->st;
        if (st != WState::kDone && st != WState::kIdle) return false;
      }
      return true;
    });
  }

  void set_violation(const std::string& msg) {
    if (!violation_) {
      violation_ = true;
      violation_msg_ = msg;
    }
  }

  std::string schedule_string() const {
    std::ostringstream os;
    os << opts_.name << ":";
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (i != 0) os << ",";
      os << tokens_[i];
    }
    return os.str();
  }

  // Picks the next action: DFS chooser normally, token matching on replay.
  // Returns false when a replay schedule ran out or mismatched (the run is
  // then abandoned, not aborted — the caller reports it).
  bool pick(const std::vector<Action>& enabled, std::size_t* out) {
    if (replay_tokens_ != nullptr) {
      if (replay_idx_ >= replay_tokens_->size()) {
        replay_note_ = "replay schedule exhausted without a violation";
        return false;
      }
      const std::string& tok = (*replay_tokens_)[replay_idx_++];
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        if (token_of(enabled[i]) == tok) {
          *out = i;
          return true;
        }
      }
      replay_note_ = "replay schedule token '" + tok +
                     "' is not enabled at this point (model changed?)";
      return false;
    }
    *out = chooser_.choose(enabled.size());
    return true;
  }

  void run_one() {
    // Per-schedule reset.
    violation_ = false;
    violation_msg_.clear();
    replay_note_.clear();
    replay_idx_ = 0;
    killing_ = false;
    tokens_.clear();
    action_seq_ = 0;
    delayed_used_ = 0;
    preempt_used_ = 0;
    current_ = -1;

    Episode ep = make_();
    const std::size_t n = ep.threads.size();
    FM_CHECK_MSG(n >= 1, "episode with no threads");
    ensure_workers(n);

    {
      std::unique_lock<std::mutex> lk(mu_);
      for (auto& w : workers_) {
        w->buffer.clear();
        w->grant = Grant::kNone;
        w->st = WState::kIdle;
        w->yield_seq = 0;
        w->op = PendingOp{};
      }
      // Launch threads one at a time; each runs (serialized) until its
      // first instrumented op or completion. The launch order is part of
      // the deterministic prefix every schedule shares.
      for (std::size_t i = 0; i < n && !violation_; ++i) {
        Worker* w = workers_[i].get();
        w->body = ep.threads[i];
        w->st = WState::kLaunch;
        w->cv.notify_one();
        ctrl_cv_.wait(lk, [&] { return is_parked(*w); });
      }
      std::size_t steps = 0;
      while (!violation_) {
        const std::vector<Action> enabled = enabled_actions(n);
        if (enabled.empty()) {
          bool done = true;
          for (std::size_t i = 0; i < n; ++i) {
            if (workers_[i]->st != WState::kDone ||
                !workers_[i]->buffer.empty()) {
              done = false;
              break;
            }
          }
          if (done) break;
          std::ostringstream os;
          os << "deadlock: no enabled action, threads not finished (";
          for (std::size_t i = 0; i < n; ++i) {
            os << (i ? " " : "") << "t" << i << "="
               << (workers_[i]->st == WState::kDone       ? "done"
                   : workers_[i]->st == WState::kYielded ? "yielded"
                                                         : "parked");
          }
          os << ")";
          set_violation(os.str());
          break;
        }
        std::size_t c = 0;
        if (!pick(enabled, &c)) break;  // replay ran dry — abandon run
        perform(lk, enabled[c]);
        if (++steps > opts_.max_steps) {
          set_violation("step cap exceeded (livelock or unbounded spin)");
          break;
        }
      }
      kill_survivors(lk, n);
    }

    if (!violation_ && replay_note_.empty() && ep.finally) {
      try {
        ep.finally();
      } catch (const ViolationError& v) {
        set_violation("final check: " + v.msg);
      }
    }
  }

  const ModelOptions opts_;
  const std::function<Episode()> make_;

  std::mutex mu_;
  std::condition_variable ctrl_cv_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool shutdown_ = false;

  Chooser chooser_;
  const std::vector<std::string>* replay_tokens_ = nullptr;
  std::size_t replay_idx_ = 0;
  std::string replay_note_;

  // Per-schedule state (controller-owned; workers are parked whenever the
  // controller reads or writes it, and every handoff goes through mu_).
  bool violation_ = false;
  std::string violation_msg_;
  bool killing_ = false;
  std::vector<std::string> tokens_;
  std::uint64_t action_seq_ = 0;
  std::size_t delayed_used_ = 0;
  std::size_t preempt_used_ = 0;
  int current_ = -1;
};

std::vector<std::string> split_tokens(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

ModelResult explore(const ModelOptions& opts,
                    const std::function<Episode()>& make) {
  if (const char* env = std::getenv("FM_CHK_SCHEDULE")) {
    const std::string s(env);
    const std::size_t colon = s.find(':');
    if (colon != std::string::npos && s.substr(0, colon) == opts.name)
      return replay(opts, make, s);
  }
  Engine e(opts, make);
  return e.run_explore();
}

ModelResult replay(const ModelOptions& opts,
                   const std::function<Episode()>& make,
                   const std::string& schedule) {
  std::string tokens = schedule;
  const std::size_t colon = schedule.find(':');
  if (colon != std::string::npos) {
    FM_CHECK_MSG(schedule.substr(0, colon) == opts.name,
                 "FM_CHK_SCHEDULE names a different model");
    tokens = schedule.substr(colon + 1);
  }
  Engine e(opts, make);
  return e.run_replay(split_tokens(tokens));
}

[[noreturn]] void fail(const std::string& msg) {
  if (g_engine != nullptr) throw ViolationError{msg};
  detail::check_failed("fm/chk", 0, "chk::fail outside a model", msg.c_str());
}

namespace rt {

void on_load(const void* addr, void* out, std::size_t len, Order o) {
  if (g_engine != nullptr && tls_worker != nullptr) {
    g_engine->do_load(addr, out, len, o);
    return;
  }
  std::memcpy(out, addr, len);
}

void on_store(void* addr, const void* bytes, std::size_t len, Order o) {
  if (g_engine != nullptr && tls_worker != nullptr) {
    g_engine->do_store(addr, bytes, len, o);
    return;
  }
  std::memcpy(addr, bytes, len);
}

void on_rmw(void*) {
  if (g_engine != nullptr && tls_worker != nullptr) g_engine->do_rmw();
}

void on_yield() {
  if (g_engine != nullptr && tls_worker != nullptr) g_engine->do_yield();
}

}  // namespace rt
}  // namespace fm::chk
