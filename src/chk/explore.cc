#include "chk/explore.h"

#include <cstdlib>
#include <cstring>

#include "chk/chooser.h"
#include "chk/report.h"
#include "common/check.h"

namespace fm::chk {
namespace {

std::vector<std::size_t> parse_trail(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    FM_CHECK_MSG(end > pos, "empty choice in FM-Check trail");
    out.push_back(static_cast<std::size_t>(
        std::strtoull(s.substr(pos, end - pos).c_str(), nullptr, 10)));
    pos = end + 1;
  }
  return out;
}

std::string join_trail(const std::vector<std::size_t>& trail) {
  std::string out;
  for (std::size_t i = 0; i < trail.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(trail[i]);
  }
  return out;
}

}  // namespace

std::size_t Explorer::choose(std::size_t n) {
  FM_CHECK_MSG(n > 0, "Explorer::choose with no options");
  std::size_t c;
  if (forced_ != nullptr) {
    // Replay: follow the recorded trail; past its end take first-choice
    // defaults (a truncated trail still replays a determinate path).
    c = forced_idx_ < forced_->size() ? (*forced_)[forced_idx_++] : 0;
    FM_CHECK_MSG(c < n, "FM-Check trail choice out of range for this model");
  } else {
    c = chooser_->choose(n);
  }
  trail_.push_back(c);
  return c;
}

void Explorer::fail(const std::string& msg) { throw PathViolation{msg}; }

std::string Explorer::trail() const { return join_trail(trail_); }

Explorer::Result Explorer::run_impl(
    const Options& opts, const std::function<void(Explorer&)>& path,
    const std::vector<std::size_t>* forced) {
  Result res;
  Chooser chooser;
  for (;;) {
    FM_CHECK_MSG(res.paths_explored < opts.max_paths,
                 "FM-Check explorer path cap hit: model too big to enumerate");
    Explorer ex;
    if (forced != nullptr) {
      ex.forced_ = forced;
    } else {
      ex.chooser_ = &chooser;
    }
    bool violated = false;
    std::string message;
    try {
      path(ex);
    } catch (const PathViolation& v) {
      violated = true;
      message = v.msg;
    }
    ++res.paths_explored;
    if (violated) {
      res.violation = true;
      res.message = message;
      res.schedule = std::string(opts.name) + ":" + ex.trail();
      report_counterexample("explore", opts.name, res.schedule, res.message,
                            res.paths_explored);
      return res;
    }
    if (forced != nullptr) return res;  // replay runs exactly one path
    chooser.end_run();
    if (!chooser.advance()) return res;
  }
}

Explorer::Result Explorer::run_all(const Options& opts,
                                   const std::function<void(Explorer&)>& path) {
  if (const char* env = std::getenv("FM_CHK_SCHEDULE");
      env != nullptr && env[0] != '\0') {
    const char* colon = std::strchr(env, ':');
    if (colon != nullptr &&
        std::strncmp(env, opts.name, static_cast<std::size_t>(colon - env)) ==
            0 &&
        std::strlen(opts.name) == static_cast<std::size_t>(colon - env)) {
      return replay(opts, path, env);
    }
  }
  return run_impl(opts, path, nullptr);
}

Explorer::Result Explorer::replay(const Options& opts,
                                  const std::function<void(Explorer&)>& path,
                                  const std::string& schedule) {
  std::string tokens = schedule;
  if (std::size_t colon = tokens.find(':'); colon != std::string::npos) {
    FM_CHECK_MSG(tokens.substr(0, colon) == opts.name,
                 "FM_CHK_SCHEDULE names a different model");
    tokens = tokens.substr(colon + 1);
  }
  const std::vector<std::size_t> trail = parse_trail(tokens);
  return run_impl(opts, path, &trail);
}

}  // namespace fm::chk
