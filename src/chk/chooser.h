// Depth-first enumeration over a tree of bounded choices — the shared core
// of both FM-Check engines. The concurrency scheduler (chk/model.h) asks it
// which enabled action to perform next; the protocol explorer
// (chk/explore.h) asks it which fault/delivery decision to take. Either
// way the contract is the same: the choice sequence fully determines the
// run, so replaying a recorded prefix and extending it with first-choice
// defaults enumerates every path exactly once (stateless search, no
// memoization — small models keep the tree tractable, caps keep runaways
// loud).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace fm::chk {

class Chooser {
 public:
  /// Returns the choice (0..n-1) for the current decision point, replaying
  /// the recorded prefix and defaulting new depths to 0. The arity of a
  /// decision point must be a pure function of the choices before it; a
  /// mismatch on replay means the model is nondeterministic, which would
  /// silently corrupt the enumeration — so it aborts.
  std::size_t choose(std::size_t n) {
    FM_CHECK_MSG(n > 0, "Chooser::choose with no options");
    if (depth_ < stack_.size()) {
      FM_CHECK_MSG(stack_[depth_].arity == n,
                   "nondeterministic model: decision arity changed on replay");
      return stack_[depth_++].chosen;
    }
    stack_.push_back(Frame{0, n});
    ++depth_;
    return 0;
  }

  /// Marks the end of one complete run and rewinds for the next.
  void end_run() { depth_ = 0; }

  /// Advances to the next unexplored path: backtracks exhausted suffixes
  /// and bumps the deepest non-exhausted choice. False when the whole tree
  /// has been enumerated.
  bool advance() {
    while (!stack_.empty() && stack_.back().chosen + 1 >= stack_.back().arity)
      stack_.pop_back();
    if (stack_.empty()) return false;
    ++stack_.back().chosen;
    return true;
  }

  /// Choices taken so far in the current run (for schedule strings).
  std::size_t depth() const { return depth_; }

 private:
  struct Frame {
    std::size_t chosen;
    std::size_t arity;
  };
  std::vector<Frame> stack_;
  std::size_t depth_ = 0;
};

}  // namespace fm::chk
