// FM-Check instrumentation seam.
//
// Hot lock-free structures (SpscRing, SendWindow) declare their shared
// state through this header instead of using std::atomic / std::memcpy
// directly. In a production build the aliases below compile to exactly the
// std:: forms — `chk::atomic<T>` IS `std::atomic<T>` (a type alias, not a
// wrapper, so there is no ABI or codegen difference to audit), and the
// shared-memory copy helpers are inline forwarding wrappers around
// std::memcpy that every compiler folds away. Under -DFM_CHK_MODEL (set
// only by the tests/chk/ model-checking binaries; never by src/ libraries)
// every load, store and cross-thread byte copy instead routes through the
// FM-Check cooperative scheduler (chk/model.h), which serializes the
// threads of a small model, explores all their interleavings, and
// simulates relaxed/acquire/release semantics with per-thread store
// buffers.
//
// Seam rules:
//  * `chk::atomic<T>` for every atomic a hot structure shares between
//    threads (enforced by fm_lint's `chk-atomic` rule over src/shm and
//    src/fm).
//  * `chk::shared_write` / `chk::shared_read` for byte copies into/out of
//    memory another thread will read/wrote (ring slots). Copies private to
//    one thread stay plain std::memcpy.
//  * `chk::yield()` in any spin-wait; under the model it parks the thread
//    until another thread (or a buffered-store drain) makes progress,
//    which is what keeps exhaustive exploration finite.
//
// ODR note: a translation unit compiled with FM_CHK_MODEL must not be
// linked against src/ libraries that include the same headers
// uninstrumented (tests/chk/CMakeLists.txt links only fm_common/fm_obs/
// fm_chk for exactly this reason).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>

#ifdef FM_CHK_MODEL
#include "chk/runtime.h"
#endif

namespace fm::chk {

#ifndef FM_CHK_MODEL

/// Production: the seam is the real thing.
template <typename T>
using atomic = std::atomic<T>;

/// Copy bytes into memory a peer thread will read (producer -> slot).
inline void shared_write(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);
}

/// Copy bytes out of memory a peer thread wrote (slot -> consumer).
inline void shared_read(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);
}

/// Spin-wait hint. A no-op in production (the shm spins are already
/// bounded by protocol progress); a scheduler park under FM_CHK_MODEL.
inline void yield() {}

#else  // FM_CHK_MODEL

namespace detail {
inline rt::Order to_order(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed:
      return rt::Order::kRelaxed;
    case std::memory_order_consume:
    case std::memory_order_acquire:
      return rt::Order::kAcquire;
    case std::memory_order_release:
      return rt::Order::kRelease;
    default:
      return rt::Order::kSeqCst;
  }
}
}  // namespace detail

/// Model-checked atomic: same surface as the std::atomic subset the hot
/// structures use, every access a scheduler decision point. The value
/// lives in plain storage ("main memory"); the runtime overlays the
/// calling thread's store buffer on loads and decides when (and in which
/// order) buffered stores drain to it.
template <typename T>
class atomic {
 public:
  atomic() noexcept = default;
  constexpr atomic(T v) noexcept : v_(v) {}  // NOLINT(runtime/explicit)
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    T out;
    rt::on_load(&v_, &out, sizeof(T), detail::to_order(mo));
    return out;
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    rt::on_store(&v_, &v, sizeof(T), detail::to_order(mo));
  }

  T fetch_add(T d, std::memory_order = std::memory_order_seq_cst) {
    rt::on_rmw(&v_);
    const T old = v_;
    v_ = static_cast<T>(old + d);
    return old;
  }

  T fetch_sub(T d, std::memory_order = std::memory_order_seq_cst) {
    rt::on_rmw(&v_);
    const T old = v_;
    v_ = static_cast<T>(old - d);
    return old;
  }

  T exchange(T v, std::memory_order = std::memory_order_seq_cst) {
    rt::on_rmw(&v_);
    const T old = v_;
    v_ = v;
    return old;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order = std::memory_order_seq_cst) {
    rt::on_rmw(&v_);
    if (v_ == expected) {
      v_ = desired;
      return true;
    }
    expected = v_;
    return false;
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo);
  }

 private:
  mutable T v_{};
};

inline void shared_write(void* dst, const void* src, std::size_t n) {
  rt::on_store(dst, src, n, rt::Order::kPlain);
}

inline void shared_read(void* dst, const void* src, std::size_t n) {
  rt::on_load(src, dst, n, rt::Order::kPlain);
}

inline void yield() { rt::on_yield(); }

#endif  // FM_CHK_MODEL

}  // namespace fm::chk
