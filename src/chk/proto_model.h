// A 2-rank small model of the FM-R protocol stack, driven by the FM-Check
// decision-tree Explorer (chk/explore.h).
//
// The model wires the REAL protocol state machines — SendWindow,
// RetransmitTimer, DedupFilter, AckTracker, Reassembler, RejectQueue
// (fm/protocol.h), the exact objects the sim and shm endpoints run — into a
// tiny closed world: node 0 sends `msgs` messages of `frags` fragments each
// to node 1 over a network vector whose every fault decision (deliver which
// frame / drop / duplicate / expire timers) is an Explorer choice instead
// of FM-San's seeded RNG. run_proto_model() executes ONE path: an
// adversarial prefix of `depth` explored decisions, then a deterministic
// fair suffix that drives delivery, ack flushing, reject re-injection and
// timer expiry until the system quiesces. Along the way it asserts the four
// FM-R safety/liveness properties:
//
//  * exactly-once: the DedupFilter never lets a frame (or a reassembled
//    message) be accepted twice, cross-checked against reference sets;
//  * conservation: every unique frame sent is eventually acked or
//    abandoned — sent == resolved_acked + abandoned at quiescence;
//  * no deadlock: the fair suffix reaches quiescence within a bounded
//    number of rounds from ANY adversarial prefix;
//  * dead-peer convergence (kill_node1 variant): a silent receiver is
//    declared dead, nothing is delivered, and every sent frame is
//    abandoned — the sender's window, timers and reject queue all drain.
//
// A violation unwinds via Explorer::fail, so the enumerating test gets a
// replayable decision trail (FM_CHK_SCHEDULE) pointing at the exact fault
// schedule that broke the invariant.
#pragma once

#include <cstddef>
#include <cstdint>

#include "chk/explore.h"

namespace fm::chk {

struct ProtoParams {
  /// Sender window slots (keep tiny: 2 explores full/bounce pressure).
  std::size_t window = 2;
  /// Receiver reassembly slots (1 + two fragmented messages = reject path).
  std::size_t reasm_slots = 1;
  /// Messages node 0 sends to node 1.
  std::uint32_t msgs = 1;
  /// Fragments per message (1 = unfragmented fast path, no Reassembler).
  std::uint16_t frags = 1;
  /// Drops + duplications the adversary may spend across the prefix.
  std::size_t fault_budget = 1;
  /// Explored adversarial decisions before the fair suffix takes over.
  std::size_t depth = 5;
  /// FM-R retransmit retries before a peer is declared dead.
  std::size_t max_retries = 2;
  /// RejectQueue extract ticks before a bounced frame re-injects.
  std::size_t reject_delay = 1;
  /// Receiver processes nothing: frames to it vanish (dead-peer variant).
  bool kill_node1 = false;
  /// Base retransmit timeout (model time is a plain counter).
  std::uint64_t timeout_ns = 1000;
};

/// Per-path outcome, for aggregation across an enumeration (e.g. asserting
/// the reject path was actually exercised somewhere in the tree).
struct ProtoStats {
  std::uint32_t sent_frames = 0;     ///< unique (dest, seq) injected
  std::uint32_t delivered_msgs = 0;  ///< complete messages handed up
  std::uint32_t resolved_acked = 0;  ///< frames retired by an arriving ack
  std::uint32_t abandoned = 0;       ///< frames dropped by dead-peer cleanup
  std::uint32_t rejected_frames = 0; ///< return-to-sender bounces observed
  std::uint32_t retransmits = 0;     ///< timer-driven re-sends
  bool dead_declared = false;
};

/// Runs one explored path of the model (call from Explorer::run_all).
/// Invariant violations unwind via ex.fail with a replayable trail.
ProtoStats run_proto_model(Explorer& ex, const ProtoParams& p);

}  // namespace fm::chk
