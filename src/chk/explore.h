// FM-Check engine 2: exhaustive enumeration over explicit decision trees.
//
// Where FM-San draws its fault decisions (drop / duplicate / reorder /
// deliver / tick) from a seeded RNG and *samples* the schedule space, the
// Explorer walks that space systematically: a model function calls
// choose(n) at every decision point, and run_all() re-executes the
// function once per path until the whole bounded tree has been visited —
// the protocol analogue of the concurrency engine in chk/model.h, sharing
// its Chooser and its replayable-counterexample discipline. A violation
// (check()/fail() inside the model) stops the search and reports the
// decision trail ("proto-basic:3,0,2,..."), replayable via the
// FM_CHK_SCHEDULE environment variable or the API, and drops a
// counterexample artifact into $FM_OBS_DUMP_DIR when set.
//
// The model function must be deterministic given its choices (no RNG, no
// wall clock): the arity at each depth is re-checked on replay and a
// mismatch aborts loudly, because a nondeterministic model silently
// invalidates the enumeration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fm::chk {

class Explorer {
 public:
  struct Options {
    /// Names the model in trails, artifacts and FM_CHK_SCHEDULE matching.
    const char* name = "explore";
    /// Paths before the enumeration aborts loudly (shrink the model).
    std::uint64_t max_paths = 2'000'000;
  };

  struct Result {
    std::uint64_t paths_explored = 0;
    bool violation = false;
    std::string schedule;  ///< "<name>:<choices>" when violated
    std::string message;
  };

  /// Runs `path` once per path of its decision tree, depth-first, until
  /// exhausted or a violation stops the search. Honors FM_CHK_SCHEDULE
  /// ("<name>:<c0>,<c1>,...") by replaying exactly that path.
  static Result run_all(const Options& opts,
                        const std::function<void(Explorer&)>& path);

  /// Replays a single recorded decision trail.
  static Result replay(const Options& opts,
                       const std::function<void(Explorer&)>& path,
                       const std::string& schedule);

  /// Returns this path's decision (0..n-1) for the current decision point.
  std::size_t choose(std::size_t n);

  /// Records a violation for this path and unwinds it.
  [[noreturn]] void fail(const std::string& msg);

  /// fail(msg) unless cond.
  void check(bool cond, const char* msg) {
    if (!cond) fail(msg);
  }

  /// The decisions taken so far on this path, comma-joined.
  std::string trail() const;

 private:
  struct PathViolation {
    std::string msg;
  };

  Explorer() = default;
  static Result run_impl(const Options& opts,
                         const std::function<void(Explorer&)>& path,
                         const std::vector<std::size_t>* forced);

  class Chooser* chooser_ = nullptr;           // DFS mode
  const std::vector<std::size_t>* forced_ = nullptr;  // replay mode
  std::size_t forced_idx_ = 0;
  std::vector<std::size_t> trail_;
};

}  // namespace fm::chk
