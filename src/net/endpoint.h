// net::Endpoint — the FM API over real (lossy) UDP, one process per node.
//
// The third backend. The sim endpoint reproduces the paper's numbers, the
// shm endpoint runs the protocol between threads over lossless rings; this
// endpoint runs the identical protocol between *separate OS processes*
// over the kernel's UDP/loopback path, where drops, reorders, and
// duplicates are supplied by a genuinely unreliable substrate instead of a
// fault injector: one datagram is one FM frame (≈ one Myrinet packet), the
// socket receive buffer is the NIC receive ring, and a kernel drop on a
// full buffer is a link fault (docs/PROTOCOL.md §9 maps the layers).
//
// Consequently FM-R is mandatory here — the constructor rejects a config
// without `reliability` — because UDP offers none of the delivery
// guarantees the lossless shm rings gave for free. The PR 1 protocol
// stack (SendWindow / RetransmitTimer / DedupFilter / CRC trailer) is
// reused unchanged, and the hot path keeps the PR 2 discipline: frames are
// serialized once, straight into the send-window slab, and handed to
// sendto() from there — zero heap allocations per steady-state cycle
// (tests/net/net_alloc_test.cc enforces it).
//
// Threading: each Endpoint belongs to exactly one process (its fork()ed
// node). Handlers run inside extract() on that process, as on the other
// backends.
//
// FM-Burst (PR 7): in batched mode (NetConfig::tx_batch, the default) the
// steady state gathers every pending frame — data, piggybacked acks,
// reject retries, retransmissions — into a preallocated staging ring and
// hands the whole burst to sendmmsg(2) at the next flush point, while the
// receive side drains the socket in recvmmsg(2) bursts into one slab.
// That is the syscall analogue of the paper's PIO gather / receive
// aggregation: the expensive boundary (kernel crossing ≈ host/NIC I/O
// bus) is amortized over the burst, the per-frame path stays lean. Two
// opt-in accelerators ride on top: UDP GSO/GRO (a run of equal-size
// same-destination frames becomes ONE datagram train) and busy-poll
// receive (spin-then-poll hybrid that cuts wakeup latency out of t0).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotate.h"
#include "common/status.h"
#include "common/types.h"
#include "fm/config.h"
#include "fm/frame.h"
#include "fm/handler_registry.h"
#include "fm/protocol.h"
#include "hw/fault.h"
#include "net/net_config.h"
#include "net/socket.h"
#include "obs/counters.h"
#include "obs/registry.h"
#include "obs/trace_ring.h"

namespace fm::net {

class Cluster;

/// One node of the UDP FM cluster.
class Endpoint {
 public:
  using Handler = HandlerRegistry<Endpoint>::Fn;
  using Stats = obs::EndpointCounters;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Registers a handler (identically on every node, before Cluster::run).
  HandlerId register_handler(Handler fn) { return handlers_.add(std::move(fn)); }

  /// FM_send_4.
  FM_HOT_PATH Status send4(NodeId dest, HandlerId handler, std::uint32_t w0,
                           std::uint32_t w1, std::uint32_t w2,
                           std::uint32_t w3);
  /// FM_send (segments beyond one frame).
  FM_HOT_PATH Status send(NodeId dest, HandlerId handler, const void* buf,
                          std::size_t len);
  /// FM_extract: processes currently deliverable datagrams; returns count.
  FM_HOT_PATH std::size_t extract();
  /// Extracts until `pred()` holds (poll()s the socket while idle).
  template <typename Pred>
  void extract_until(Pred&& pred) {
    while (!pred()) {
      if (extract() == 0) idle_pause();
    }
  }
  /// Extracts until all outstanding frames are acknowledged and the reject
  /// queue is empty; flushes owed acks so peers can drain too.
  void drain();

  /// Posted sends (the only legal way to send from handler context).
  FM_HOT_PATH void post_send4(NodeId dest, HandlerId handler, std::uint32_t w0,
                              std::uint32_t w1, std::uint32_t w2,
                              std::uint32_t w3);
  FM_HOT_PATH void post_send(NodeId dest, HandlerId handler, const void* buf,
                             std::size_t len);
  /// Two-part posted send (header + body gathered into one message); see
  /// shm::Endpoint::post_send2 — the body is copied once, straight into the
  /// posted payload.
  FM_HOT_PATH void post_send2(NodeId dest, HandlerId handler, const void* hdr,
                              std::size_t hdr_len, const void* body,
                              std::size_t body_len);

  /// Registers (or, with an empty fn, clears) the receive-side deposit sink
  /// for fragmented messages bound for `hid` — see DepositSinkFn
  /// (fm/protocol.h). One sink per endpoint; the layered protocol that owns
  /// `hid` must clear it before it is destroyed.
  void set_deposit_sink(HandlerId hid, DepositSinkFn fn) {
    deposit_hid_ = fn ? hid : kInvalidHandler;
    deposit_sink_ = std::move(fn);
  }

  /// Context-aware send for layered protocols (see shm::Endpoint).
  Status send_or_post(NodeId dest, HandlerId handler, const void* buf,
                      std::size_t len) {
    if (!in_handler_) return send(dest, handler, buf, len);
    if (dest >= cluster_size() || !handlers_.valid(handler))
      return Status::kBadArgument;
    post_send(dest, handler, buf, len);
    return Status::kOk;
  }

  /// This node's id / cluster size.
  NodeId id() const { return id_; }
  std::size_t cluster_size() const;

  /// Outstanding unacknowledged frames.
  std::size_t unacked() const { return window_.in_flight(); }
  /// Frames parked for retransmission.
  std::size_t reject_queue_depth() const { return rejq_.size(); }
  /// True when FM-R declared `peer` dead (sends to it fail immediately).
  bool peer_dead(NodeId peer) const { return dead_peers_.count(peer) > 0; }
  const Stats& stats() const { return stats_; }
  const FmConfig& config() const { return cfg_; }
  const hw::FaultInjector* faults() const { return faults_.get(); }
  /// Mutable fault source for mid-run rate changes (FM-San chaos storms /
  /// ramps). Each forked rank owns its endpoint outright, so the child may
  /// call set_params() on it freely.
  hw::FaultInjector* mutable_faults() { return faults_.get(); }

  /// Socket-level counters (beneath the protocol's Stats).
  std::uint64_t datagrams_tx() const { return datagrams_tx_; }
  std::uint64_t datagrams_rx() const { return datagrams_rx_; }
  std::uint64_t ewouldblock_stalls() const { return ewouldblock_stalls_; }
  /// Datagrams from ports no rank owns (counted, dropped, never dispatched).
  std::uint64_t stray_datagrams() const { return stray_datagrams_; }
  /// Datagrams the kernel dropped on our full receive buffer (cumulative,
  /// from SO_RXQ_OVFL; stays 0 where the option is unavailable).
  std::uint64_t kernel_drops() const { return kernel_drops_; }

  /// FM-Burst counters (all 0 when batching is off).
  /// Frames that left through a batched TX path (sendmmsg or GSO train).
  std::uint64_t batch_tx_frames() const { return batch_tx_frames_; }
  /// Kernel crossings the batched paths spent, TX and RX combined — the
  /// amortization denominator for batch_tx_frames / datagrams_rx.
  std::uint64_t batch_syscalls() const { return batch_syscalls_; }
  /// Frames that traveled inside a UDP_SEGMENT train.
  std::uint64_t gso_segments() const { return gso_segments_; }
  /// Idle pauses resolved by the busy-poll spin, without parking in poll().
  std::uint64_t busy_poll_hits() const { return busy_poll_hits_; }
  /// Times a live GSO train came back kError from a kernel whose probe said
  /// yes — each one drops this endpoint to single-shot sends for good, with
  /// the refused train kept staged and resent (never discarded).
  std::uint64_t gso_fallbacks() const { return gso_fallbacks_; }
  /// True when this endpoint is running the batched (sendmmsg/recvmmsg)
  /// steady state; false means every frame takes the single-shot path.
  bool batching() const { return tx_batch_on_; }
  /// True when TX coalesces runs into GSO trains and RX accepts GRO trains.
  bool gso_active() const { return gso_on_; }

  /// FM-Scope registry ("net.node<id>").
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  obs::TraceRing& trace_ring() { return trace_; }
  const obs::TraceRing& trace_ring() const { return trace_; }

 private:
  friend class Cluster;
  /// `net` must be fully resolved (no -1 sentinels): the Cluster applies
  /// the FM_NET_* environment overrides before constructing endpoints.
  /// `nodes` is the cluster size (the Cluster's endpoint list is still
  /// growing while this runs, so it is passed explicitly).
  Endpoint(Cluster& cluster, NodeId id, const FmConfig& cfg,
           const hw::FaultParams& faults, UdpSocket& sock,
           const NetConfig& net, std::size_t nodes);

  // Wire-format bound on acks per frame (ack_count is a u8).
  static constexpr std::size_t kMaxAcksPerFrame = 255;

  struct Posted {
    NodeId dest = 0;
    HandlerId handler = 0;
    std::vector<std::uint8_t> payload;
  };

  struct DeferredTx {
    NodeId dest = 0;
    std::vector<std::uint8_t> bytes;
  };

  FM_HOT_PATH Status send_data_frame(NodeId dest, HandlerId handler,
                                     const std::uint8_t* payload,
                                     std::size_t len, bool fragmented,
                                     std::uint32_t msg_id,
                                     std::uint16_t frag_index,
                                     std::uint16_t frag_count);
  FM_HOT_PATH void inject(NodeId dest, const std::uint8_t* frame,
                          std::size_t len, std::uint32_t window_seq = 0);
  /// Fault-injection arm of inject(): copies the frame into stable local
  /// storage before mutating it. Testing-only machinery, so it is the cold
  /// boundary the hot closure stops at.
  FM_COLD_PATH void inject_faulty(NodeId dest, const std::uint8_t* frame,
                                  std::size_t len);
  FM_HOT_PATH void push(NodeId dest, const std::uint8_t* frame,
                        std::size_t len, std::uint32_t window_seq = 0);
  /// Sends every staged frame with as few syscalls as the kernel allows
  /// (GSO trains for equal-size same-destination runs, sendmmsg for the
  /// rest). Transient backpressure leaves the unsent tail staged, in
  /// order; a later flush point retries it.
  FM_HOT_PATH void flush_tx_batch();
  /// One received buffer from the batched RX path: splits a GRO train into
  /// its frames and feeds each through process_frame. `seen` counts wire
  /// datagrams against the extract budget, `count` counts frames from
  /// known peers (extract()'s return value).
  FM_HOT_PATH void process_rx_buffer(const UdpSocket::RxMsg& m,
                                     const std::uint8_t* base,
                                     std::size_t* seen, std::size_t* count);
  FM_HOT_PATH void process_frame(NodeId from, const std::uint8_t* data,
                                 std::size_t len);
  FM_HOT_PATH void send_standalone_ack(NodeId peer);
  /// Re-encodes a rejected frame for delayed retransmission. Recovery
  /// path: runs only after a peer rejected a fragment, so its heap use is
  /// outside the steady-state hot closure.
  FM_COLD_PATH void park_reject(NodeId from, const FrameHeader& h,
                                const std::uint8_t* data);
  FM_COLD_PATH void defer_reject(NodeId from, const FrameHeader& h,
                                 const std::uint8_t* data);
  FM_HOT_PATH void flush_deferred_tx();
  FM_HOT_PATH void drain_posted();
  FM_HOT_PATH void reliability_tick();
  FM_COLD_PATH void mark_peer_dead(NodeId peer);
  /// Parking on the socket is the one blocking act this endpoint performs,
  /// and only when there is no work at all — a cold boundary by design.
  FM_COLD_PATH void idle_pause();
  FM_HOT_PATH static std::uint64_t now_ns();

  Cluster& cluster_;
  NodeId id_;
  FmConfig cfg_;
  UdpSocket& sock_;
  std::size_t extract_budget_;
  HandlerRegistry<Endpoint> handlers_;
  SendWindow window_;
  AckTracker acks_;
  Reassembler reasm_;
  HandlerId deposit_hid_ = kInvalidHandler;
  DepositSinkFn deposit_sink_;
  RejectQueue rejq_;
  RetransmitTimer timer_;
  DedupFilter dedup_;
  std::unordered_set<NodeId> dead_peers_;
  // Liveness ledger: when each peer's datagrams were last seen (0: never).
  // A retry budget exhausted against a peer heard within alive_grace_ns_
  // is congestion, not death — the frame re-arms with a fresh budget
  // instead of killing the peer (see reliability_tick). Matters most in
  // batched mode, where a sendmmsg burst into a saturated receive queue
  // can strike out max_retries times against a verifiably live peer.
  std::vector<std::uint64_t> last_heard_ns_;
  std::uint64_t alive_grace_ns_ = 0;
  Stats stats_;
  // Socket counters (the layer below Stats: what the "NIC" actually did).
  std::uint64_t datagrams_tx_ = 0;
  std::uint64_t datagrams_rx_ = 0;
  std::uint64_t ewouldblock_stalls_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t stray_datagrams_ = 0;  ///< From ports no node owns.
  std::uint64_t kernel_drops_ = 0;     ///< Cumulative SO_RXQ_OVFL reading.
  // FM-Burst counters (see the public accessors for semantics).
  std::uint64_t batch_tx_frames_ = 0;
  std::uint64_t batch_syscalls_ = 0;
  std::uint64_t gso_segments_ = 0;
  std::uint64_t busy_poll_hits_ = 0;
  std::uint64_t gso_fallbacks_ = 0;
  std::vector<Posted> posted_;
  std::vector<Posted> posted_pool_;
  std::size_t posted_head_ = 0;
  std::unordered_map<NodeId, std::size_t> credits_;  // window mode only
  std::unique_ptr<hw::FaultInjector> faults_;
  std::unordered_map<NodeId, std::vector<std::uint8_t>> reorder_held_;
  // Preallocated buffers that keep the steady-state hot path off the heap
  // (same inventory as shm::Endpoint, plus the datagram receive buffer).
  std::vector<std::uint8_t> rx_buf_;  ///< One inbound datagram, in place.
  // FM-Burst mode state (resolved once at construction). tx_batch_on_ is
  // fixed for life; gso_on_ can additionally drop to false mid-run when a
  // live train fails on a kernel whose probe lied (see flush_tx_batch).
  bool tx_batch_on_ = false;
  bool gso_on_ = false;
  long busy_poll_spin_us_ = 0;
  // TX staging ring: slot i of tx_ring_ describes the frame copied into
  // tx_stage_[i * tx_wire_max_ ..]; a circular [tx_head_, tx_head_ +
  // tx_staged_) window is pending. Frames survive a partial flush in
  // place — the unsent tail just stays staged.
  std::size_t tx_cap_ = 0;
  std::size_t tx_wire_max_ = 0;
  std::vector<std::uint8_t> tx_stage_;
  std::vector<UdpSocket::TxFrame> tx_ring_;
  std::size_t tx_head_ = 0;
  std::size_t tx_staged_ = 0;
  bool in_tx_flush_ = false;
  iovec gso_iov_[UdpSocket::kMaxBatch];  ///< Scatter list for one GSO train.
  // RX burst slab: rx_slots_ buffers of rx_stride_ bytes (train-sized when
  // GRO may coalesce) plus their descriptors, filled by one recvmmsg.
  std::size_t rx_stride_ = 0;
  std::size_t rx_slots_ = 0;
  std::vector<std::uint8_t> rx_slab_;
  std::vector<UdpSocket::RxMsg> rx_msgs_;
  std::array<std::vector<std::uint8_t>, 2> tx_scratch_;
  std::size_t tx_depth_ = 0;
  std::vector<std::uint8_t> retx_scratch_;
  std::vector<std::uint8_t> reasm_out_;
  std::vector<NodeId> ack_peers_scratch_;
  std::vector<std::uint8_t> dup_ack_due_;  // peers that resent this pass
  std::vector<NodeId> drain_peers_scratch_;
  std::vector<RetransmitTimer::Due> due_scratch_;
  std::vector<DeferredTx> deferred_tx_;
  std::vector<DeferredTx> deferred_flush_scratch_;
  std::uint32_t next_msg_id_ = 1;
  bool in_handler_ = false;
  bool draining_posted_ = false;
  bool flushing_deferred_ = false;
  bool in_ack_flush_ = false;
  bool in_reliability_tick_ = false;
  // Set while send_data_frame() spins on a full window so the reject-queue
  // tick inside extract() leaves one slot free for the blocked frame
  // (otherwise bounce-release + retry-re-track inside one extract() call
  // starves the sender forever at reject_retry_delay 1).
  bool send_blocked_spin_ = false;
  obs::TraceRing trace_;
  std::uint16_t cat_send_ = 0;
  std::uint16_t cat_extract_ = 0;
  std::uint16_t cat_deliver_ = 0;
  std::uint16_t cat_retransmit_ = 0;
  std::uint16_t cat_reject_ = 0;
  std::uint16_t cat_crc_drop_ = 0;
  std::uint16_t cat_dup_ = 0;
  std::uint16_t cat_dead_peer_ = 0;
  std::uint16_t cat_depth_ = 0;
  std::uint16_t cat_stall_ = 0;
  // Declared last on purpose: gauges reference the members above, so the
  // registry must be destroyed first (reverse declaration order).
  obs::Registry registry_;
};

}  // namespace fm::net
