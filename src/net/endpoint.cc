#include "net/endpoint.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "net/cluster.h"

namespace fm::net {

Endpoint::Endpoint(Cluster& cluster, NodeId id, const FmConfig& cfg,
                   const hw::FaultParams& faults, UdpSocket& sock,
                   const NetConfig& net, std::size_t nodes)
    : cluster_(cluster),
      id_(id),
      cfg_(cfg),
      sock_(sock),
      extract_budget_(net.extract_budget),
      window_(cfg.pending_window, max_wire_bytes(cfg.frame_payload)),
      reasm_(cfg.reassembly_slots),
      timer_(cfg.retransmit_timeout_ns, cfg.max_retries),
      trace_("net.node" + std::to_string(id)),
      registry_("net.node" + std::to_string(id)) {
  // UDP loses, duplicates, and reorders datagrams as a matter of course;
  // running the FM surface without FM-R here would silently violate the
  // API's delivery semantics, so the backend refuses the configuration
  // outright instead of degrading.
  FM_CHECK_MSG(cfg.reliability,
               "the net backend requires FM-R (cfg.reliability): UDP is a "
               "genuinely lossy substrate");
  FM_CHECK_MSG(cfg.flow_control,
               "FM-R requires flow control: the send window holds the frame "
               "copies retransmission needs");
  rx_buf_.resize(max_wire_bytes(cfg.frame_payload));
  for (auto& buf : tx_scratch_) buf.resize(max_wire_bytes(cfg.frame_payload));
  retx_scratch_.reserve(max_wire_bytes(cfg.frame_payload));
  dup_ack_due_.assign(nodes, 0);
  last_heard_ns_.resize(nodes, 0);
  alive_grace_ns_ = RetransmitTimer::detection_horizon_ns(
      cfg.retransmit_timeout_ns, cfg.max_retries);
  // FM-Burst mode resolution. The test hooks are installed first so the
  // GSO capability probe below sees a forced-unsupported socket.
  sock_.set_debug_wouldblock_every(net.debug_wouldblock_every);
  if (net.debug_force_no_gso) sock_.force_gso_unsupported();
  sock_.set_debug_gso_fail_after(net.debug_gso_fail_after);
  tx_batch_on_ = net.tx_batch > 0;
  busy_poll_spin_us_ = net.busy_poll_spin_us > 0 ? net.busy_poll_spin_us : 0;
  tx_wire_max_ = max_wire_bytes(cfg.frame_payload);
  if (tx_batch_on_) {
    // GSO is only honoured on top of batching (the coalescing window IS
    // the staging ring), and only when the kernel passes the probe AND
    // accepts UDP_GRO — a sender-side train needs every receiver ready for
    // coalesced buffers, and all ranks resolve this identically from the
    // same config. Anything short of full support falls back to sendmmsg.
    gso_on_ = net.gso > 0 && sock_.gso_supported() && sock_.enable_gro();
    tx_cap_ = net.max_tx_burst;
    if (tx_cap_ < 1) tx_cap_ = 1;
    if (tx_cap_ > UdpSocket::kMaxBatch) tx_cap_ = UdpSocket::kMaxBatch;
    tx_stage_.resize(tx_cap_ * tx_wire_max_);
    tx_ring_.resize(tx_cap_);
    // RX slab: with GRO each buffer must hold a worst-case train (64
    // coalesced segments, capped by the 64 KiB datagram ceiling), so take
    // fewer, bigger slots; without it one buffer is one frame.
    if (gso_on_) {
      rx_stride_ = std::min<std::size_t>(65535,
                                         tx_wire_max_ * UdpSocket::kMaxBatch);
      rx_slots_ = 8;
    } else {
      rx_stride_ = tx_wire_max_;
      rx_slots_ = UdpSocket::kMaxBatch;
    }
    rx_slab_.resize(rx_slots_ * rx_stride_);
    rx_msgs_.resize(rx_slots_);
  }
  // Construction runs in this node's process before any frame moves:
  // the constructing context owns both the registry and the trace ring.
  registry_.assert_owner();
  trace_.assert_writer();
  stats_.register_into(registry_);
  // The socket layer beneath the protocol counters: what the "NIC" did.
  registry_.counter("datagrams_tx", &datagrams_tx_);
  registry_.counter("datagrams_rx", &datagrams_rx_);
  registry_.counter("ewouldblock_stalls", &ewouldblock_stalls_);
  registry_.counter("send_errors", &send_errors_);
  registry_.counter("stray_datagrams", &stray_datagrams_);
  registry_.counter("kernel_drops", &kernel_drops_);
  // FM-Burst counters: registered in every mode (all-zero when batching is
  // off) so the bench/CI artifact schema is uniform across the mode matrix.
  registry_.counter("batch_tx_frames", &batch_tx_frames_);
  registry_.counter("batch_syscalls", &batch_syscalls_);
  registry_.counter("gso_segments", &gso_segments_);
  registry_.counter("busy_poll_hits", &busy_poll_hits_);
  registry_.counter("gso_fallbacks", &gso_fallbacks_);
  registry_.gauge("q.reject_depth",
                  [this] { return static_cast<double>(rejq_.size()); });
  registry_.gauge("q.posted_depth", [this] {
    return static_cast<double>(posted_.size() - posted_head_);
  });
  registry_.gauge("window.in_flight",
                  [this] { return static_cast<double>(window_.in_flight()); });
  registry_.gauge("reasm.active",
                  [this] { return static_cast<double>(reasm_.active()); });
  registry_.gauge("acks.due",
                  [this] { return static_cast<double>(acks_.total_due()); });
  registry_.gauge("timers.armed",
                  [this] { return static_cast<double>(timer_.armed()); });
  registry_.gauge("credits.available", [this] {
    double n = 0;
    for (const auto& [peer, c] : credits_) n += static_cast<double>(c);
    return n;
  });
  cat_send_ = trace_.intern("send");
  cat_extract_ = trace_.intern("extract");
  cat_deliver_ = trace_.intern("deliver");
  cat_retransmit_ = trace_.intern("retransmit");
  cat_reject_ = trace_.intern("reject");
  cat_crc_drop_ = trace_.intern("crc_drop");
  cat_dup_ = trace_.intern("dup");
  cat_dead_peer_ = trace_.intern("dead_peer");
  cat_depth_ = trace_.intern("window_rejq_depth");
  cat_stall_ = trace_.intern("tx_stall");
  if (faults.enabled())
    // On top of whatever the kernel loses, tests can still inject
    // deterministic sender-side faults — same model as the other backends,
    // same decorrelated per-node seeding.
    faults_ = std::make_unique<hw::FaultInjector>(decorrelate_faults(faults, id));
}

std::size_t Endpoint::cluster_size() const { return cluster_.size(); }

void Endpoint::idle_pause() {
  // Never park with frames staged: the peer we are waiting on may be
  // waiting on exactly those bytes.
  if (tx_batch_on_ && tx_staged_ > 0) flush_tx_batch();
  // Busy-poll hybrid: burn the spin budget on zero-timeout readiness
  // checks first. A ping-pong peer answers in microseconds — catching the
  // reply here skips the sleep/wakeup round trip that otherwise dominates
  // t0 on an idle socket.
  if (busy_poll_spin_us_ > 0) {
    const std::uint64_t deadline =
        now_ns() + static_cast<std::uint64_t>(busy_poll_spin_us_) * 1000ull;
    do {
      if (sock_.readable_now()) {
        ++busy_poll_hits_;
        return;
      }
    } while (now_ns() < deadline);
  }
  // The poll loop that drives this backend: park on the socket instead of
  // spinning, but never longer than a fraction of the retransmit timeout —
  // the FM-R timers only tick inside extract(), so sleeping past a
  // deadline would stretch every recovery.
  const int timeout_ms = std::max(
      1, static_cast<int>(cfg_.retransmit_timeout_ns / 4'000'000ull));
  (void)sock_.wait_readable(std::min(timeout_ms, 10));
}

std::uint64_t Endpoint::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

Status Endpoint::send4(NodeId dest, HandlerId handler, std::uint32_t w0,
                       std::uint32_t w1, std::uint32_t w2, std::uint32_t w3) {
  std::uint32_t words[4] = {w0, w1, w2, w3};
  return send(dest, handler, words, sizeof words);
}

Status Endpoint::send(NodeId dest, HandlerId handler, const void* buf,
                      std::size_t len) {
  FM_CHECK_MSG(!in_handler_,
               "send() from handler context; use post_send() instead");
  if (dest >= cluster_.size()) return Status::kBadArgument;
  if (!handlers_.valid(handler) || (len > 0 && buf == nullptr))
    return Status::kBadArgument;
  if (dead_peers_.count(dest) > 0) return Status::kPeerDead;
  ++stats_.messages_sent;
  const auto* bytes = static_cast<const std::uint8_t*>(buf);
  if (len <= cfg_.frame_payload) {
    Status s = send_data_frame(dest, handler, bytes, len, false, 0, 0, 1);
    if (s == Status::kPeerDead) ++stats_.messages_abandoned;
    return s;
  }
  const std::size_t per = cfg_.frame_payload;
  const std::size_t frags = (len + per - 1) / per;
  if (frags > 0xffff) return Status::kTooLarge;
  const std::uint32_t msg_id = next_msg_id_++;
  for (std::size_t i = 0; i < frags; ++i) {
    const std::size_t off = i * per;
    const std::size_t n = std::min(per, len - off);
    Status s = send_data_frame(dest, handler, bytes + off, n, true, msg_id,
                               static_cast<std::uint16_t>(i),
                               static_cast<std::uint16_t>(frags));
    if (!ok(s)) {
      if (s == Status::kPeerDead) ++stats_.messages_abandoned;
      return s;
    }
  }
  return Status::kOk;
}

Status Endpoint::send_data_frame(NodeId dest, HandlerId handler,
                                 const std::uint8_t* payload, std::size_t len,
                                 bool fragmented, std::uint32_t msg_id,
                                 std::uint16_t frag_index,
                                 std::uint16_t frag_count) {
  // Window gate — and, in window mode, a per-destination credit gate —
  // servicing the network while blocked (the FM discipline).
  trace_.assert_writer();
  auto blocked = [&] {
    if (window_.full()) return true;
    if (cfg_.window_mode) {
      auto it = credits_.find(dest);
      if (it == credits_.end()) {
        // fm-lint: allow(hotpath-alloc): first contact with a peer seeds its
        // credit entry once; every later send hits the map in place.
        credits_[dest] = cfg_.window_per_peer;
        return false;
      }
      return it->second == 0;
    }
    return false;
  };
  while (blocked()) {
    if (dead_peers_.count(dest) > 0) return Status::kPeerDead;
    // Flag the spin so the reject-queue tick inside extract() leaves one
    // window slot for this frame (bounce-release + retry-re-track inside a
    // single extract() call would otherwise starve the blocked sender).
    const bool outer_spin = send_blocked_spin_;  // nested sends restore it
    send_blocked_spin_ = true;
    const std::size_t n = extract();
    send_blocked_spin_ = outer_spin;
    if (n == 0) idle_pause();
  }
  if (dead_peers_.count(dest) > 0) return Status::kPeerDead;
  if (cfg_.window_mode) {
    FM_CHECK(credits_[dest] > 0);
    --credits_[dest];
  }
  FrameHeader h;
  h.type = FrameType::kData;
  h.handler = handler;
  h.src = id_;
  h.payload_len = static_cast<std::uint16_t>(len);
  if (cfg_.crc_frames) h.flags |= FrameHeader::kFlagCrc;
  if (fragmented) {
    h.flags |= FrameHeader::kFlagFragmented;
    h.msg_id = msg_id;
    h.frag_index = frag_index;
    h.frag_count = frag_count;
  }
  h.seq = window_.next_seq(dest);
  std::uint32_t piggy[kMaxAcksPerFrame];
  const std::size_t n_acks = acks_.take_into(
      dest, std::min(cfg_.piggyback_acks, kMaxAcksPerFrame), piggy);
  h.ack_count = static_cast<std::uint8_t>(n_acks);
  stats_.acks_piggybacked += n_acks;
  // The window slab slot doubles as the datagram staging buffer and the
  // retained retransmission copy: serialized exactly once, in place, and
  // handed to sendto() straight from the slot (PR 2's PIO-gather aimed at
  // the socket instead of the ring).
  // fm-lint: allow(hotpath-alloc): SendWindow::reserve shares a name with
  // vector::reserve, not its behaviour — it hands back a preallocated slab
  // slot.
  std::uint8_t* slot = window_.reserve(dest, h.seq);
  const std::size_t wire =
      encode_frame_into(slot, h, payload, n_acks ? piggy : nullptr);
  window_.commit(wire);
  timer_.arm(dest, h.seq, now_ns());
  ++stats_.frames_sent;
  if (trace_.enabled()) trace_.event(now_ns(), cat_send_, 'i', dest, h.seq);
  inject(dest, slot, wire, h.seq);
  return Status::kOk;
}

void Endpoint::inject(NodeId dest, const std::uint8_t* frame, std::size_t len,
                      std::uint32_t window_seq) {
  if (faults_) {
    inject_faulty(dest, frame, len);
    return;
  }
  push(dest, frame, len, window_seq);
}

void Endpoint::inject_faulty(NodeId dest, const std::uint8_t* frame,
                             std::size_t len) {
  // Injected faults layered on top of the kernel's organic ones (the fault
  // paths copy the frame into stable local storage before any push, so
  // slab-slot recycling cannot bite them: window_seq is not forwarded).
  if (faults_->should_drop()) return;
  std::vector<std::uint8_t> bytes(frame, frame + len);
  faults_->maybe_corrupt(bytes);
  const bool dup = faults_->should_duplicate();
  std::vector<std::uint8_t> release;
  auto held = reorder_held_.find(dest);
  if (held != reorder_held_.end()) {
    release = std::move(held->second);
    reorder_held_.erase(held);
  } else if (faults_->should_reorder()) {
    reorder_held_[dest] = std::move(bytes);
    return;
  }
  push(dest, bytes.data(), bytes.size());
  if (dup) push(dest, bytes.data(), bytes.size());
  if (!release.empty()) push(dest, release.data(), release.size());
}

void Endpoint::push(NodeId dest, const std::uint8_t* frame, std::size_t len,
                    std::uint32_t window_seq) {
  trace_.assert_writer();
  // Latency bypass inside batched mode: with the staging ring empty and no
  // other frame in flight (in_flight counts this one — it is already in
  // the window), there is no burst to amortize. Staging would add a copy
  // and defer the wire-out to the next flush point for nothing, so a
  // latency-sensitive lone frame (the send4 ping-pong t0, a standalone
  // ack, a solo retransmission) takes the single-shot path below instead.
  // The first frame of a pipelined stream escapes the batch the same way;
  // every subsequent one sees in_flight > 1 and stages.
  if (tx_batch_on_ && (tx_staged_ > 0 || window_.in_flight() > 1)) {
    // Batched mode: stage a copy and let the next flush point carry it out
    // with the rest of the burst (extract() entry/exit, a full ring, or
    // idle_pause — a frame is never parked on across a poll()).
    while (tx_staged_ == tx_cap_) {
      flush_tx_batch();
      if (tx_staged_ < tx_cap_) break;
      // Ring still full: the kernel would not take the burst. Service our
      // own receive side while waiting, as a blocked FM sender must.
      if (trace_.enabled())
        trace_.event(now_ns(), cat_stall_, 'i', dest, window_seq);
      if (extract() == 0) idle_pause();
      // The nested extract can invalidate a slab-backed frame (ack or
      // dead-peer purge recycles the slot); re-validate before copying it.
      if (window_seq != 0 && window_.find(dest, window_seq).data != frame)
        return;
      if (dead_peers_.count(dest) > 0) return;
    }
    const std::size_t idx = (tx_head_ + tx_staged_) % tx_cap_;
    std::uint8_t* slot = tx_stage_.data() + idx * tx_wire_max_;
    std::memcpy(slot, frame, len);
    tx_ring_[idx] = UdpSocket::TxFrame{slot, static_cast<std::uint32_t>(len),
                                       &cluster_.addr(dest)};
    ++tx_staged_;
    if (tx_staged_ == tx_cap_) flush_tx_batch();
    return;
  }
  const sockaddr_in& addr = cluster_.addr(dest);
  for (;;) {
    const UdpSocket::SendResult r = sock_.send_to(addr, frame, len);
    if (r == UdpSocket::SendResult::kOk) {
      ++datagrams_tx_;
      return;
    }
    if (r == UdpSocket::SendResult::kError) {
      // The kernel refused the datagram for good: count it and let the
      // retransmit timer recover the frame, exactly as if the wire ate it.
      ++send_errors_;
      return;
    }
    // EWOULDBLOCK / ENOBUFS is backpressure: service our own receive side
    // while waiting, as a blocked FM sender must.
    ++ewouldblock_stalls_;
    if (trace_.enabled())
      trace_.event(now_ns(), cat_stall_, 'i', dest, window_seq);
    if (extract() == 0) idle_pause();
    // The nested extract can invalidate a slab-backed frame (ack or
    // dead-peer purge recycles the slot); re-validate before re-reading it.
    if (window_seq != 0 && window_.find(dest, window_seq).data != frame)
      return;
    if (dead_peers_.count(dest) > 0) return;
  }
}

void Endpoint::flush_tx_batch() {
  if (in_tx_flush_ || tx_staged_ == 0) return;
  in_tx_flush_ = true;
  while (tx_staged_ > 0) {
    bool blocked = false;
    std::size_t gso_run = 0;
    if (gso_on_) {
      // A run of equal-size frames to one destination at the ring head can
      // travel as a single UDP_SEGMENT train. Address comparison is by
      // pointer: every staged addr points into the Cluster's per-node
      // table, so same pointer ⇔ same destination.
      const UdpSocket::TxFrame& head = tx_ring_[tx_head_];
      gso_run = 1;
      while (gso_run < tx_staged_ && gso_run < UdpSocket::kMaxBatch) {
        const UdpSocket::TxFrame& f = tx_ring_[(tx_head_ + gso_run) % tx_cap_];
        if (f.addr != head.addr || f.len != head.len) break;
        ++gso_run;
      }
    }
    if (gso_run >= 2) {
      const UdpSocket::TxFrame& head = tx_ring_[tx_head_];
      for (std::size_t i = 0; i < gso_run; ++i) {
        const UdpSocket::TxFrame& f = tx_ring_[(tx_head_ + i) % tx_cap_];
        gso_iov_[i].iov_base = const_cast<void*>(f.data);
        gso_iov_[i].iov_len = f.len;
      }
      const UdpSocket::SendResult s = sock_.send_gso(
          *head.addr, gso_iov_, gso_run, static_cast<std::uint16_t>(head.len));
      ++batch_syscalls_;
      if (s == UdpSocket::SendResult::kWouldBlock) {
        blocked = true;
      } else if (s == UdpSocket::SendResult::kOk) {
        datagrams_tx_ += gso_run;
        batch_tx_frames_ += gso_run;
        gso_segments_ += gso_run;
        tx_head_ = (tx_head_ + gso_run) % tx_cap_;
        tx_staged_ -= gso_run;
      } else {
        // kError on a train the probe said the kernel could segment: some
        // kernels accept the zero-size UDP_SEGMENT probe yet EIO/EINVAL a
        // live train later. No segment touched the wire, so every staged
        // frame is still ours — discarding the train here (the old
        // behaviour) silently lost up to kMaxBatch frames per burst and
        // leaned on FM-R to re-earn them. Instead: disable GSO for the
        // rest of this endpoint's life and come round the loop, where the
        // sendmmsg branch resends the same frames single-shot.
        gso_on_ = false;
        ++gso_fallbacks_;
      }
    } else {
      // sendmmsg over the contiguous span at the head (a wrapped ring is
      // two spans; the loop comes round for the second). In GSO mode a
      // lone head frame goes out by itself so the next iteration can
      // re-examine the run forming behind it.
      std::size_t span = std::min(tx_staged_, tx_cap_ - tx_head_);
      if (gso_on_) span = 1;
      const UdpSocket::BatchResult r =
          sock_.send_batch(&tx_ring_[tx_head_], span);
      datagrams_tx_ += r.sent;
      batch_tx_frames_ += r.sent;
      send_errors_ += r.errors;
      batch_syscalls_ += r.syscalls;
      tx_head_ = (tx_head_ + r.consumed) % tx_cap_;
      tx_staged_ -= r.consumed;
      blocked = r.would_block;
    }
    if (blocked) {
      // Transient backpressure mid-burst: the unsent tail stays staged (in
      // order, still owned by us) and a later flush point retries it. No
      // frame is lost and none is sent twice — the short-count tests pin
      // this down.
      ++ewouldblock_stalls_;
      if (trace_.enabled()) trace_.event(now_ns(), cat_stall_, 'i', 0, 0);
      break;
    }
  }
  in_tx_flush_ = false;
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

std::size_t Endpoint::extract() {
  if (in_handler_) return 0;  // no re-entrant extraction from handlers
  trace_.assert_writer();
  // Flush points bracket the extract cycle: staged frames from before the
  // call go out before we read (the peer may be waiting on them), and the
  // acks/retries generated while processing go out before we return.
  if (tx_batch_on_) flush_tx_batch();
  const std::uint64_t trace_t0 = trace_.enabled() ? now_ns() : 0;
  std::size_t count = 0;
  // Bounded drain of the socket: one datagram is one frame, processed in
  // place in the preallocated receive buffer. The budget keeps a peer
  // blasting datagrams at us from starving the post-loop retransmission
  // and ack work (the same discipline as the shm ring budget).
  if (tx_batch_on_) {
    // Batched drain: one recvmmsg fills the slab with up to rx_slots_
    // buffers (each possibly a GRO train), amortizing the kernel crossing
    // over the burst.
    std::size_t seen = 0;
    while (seen < extract_budget_) {
      const std::size_t want = std::min(rx_slots_, extract_budget_ - seen);
      const std::size_t m =
          sock_.recv_batch(rx_slab_.data(), rx_stride_, want, rx_msgs_.data());
      if (m == 0) break;
      ++batch_syscalls_;
      for (std::size_t i = 0; i < m; ++i)
        process_rx_buffer(rx_msgs_[i], rx_slab_.data() + i * rx_stride_,
                          &seen, &count);
      if (m < want) break;  // queue ran dry mid-burst
    }
    kernel_drops_ = sock_.kernel_drops();
  } else {
    for (std::size_t i = 0; i < extract_budget_; ++i) {
      std::uint16_t src_port = 0;
      const long n = sock_.recv_one(rx_buf_.data(), rx_buf_.size(), &src_port);
      if (n < 0) break;
      ++datagrams_rx_;
      NodeId from = kInvalidNode;
      if (!cluster_.node_for_port(src_port, &from)) {
        // Real networks deliver strays (a late datagram from a previous
        // run, a port scan): count and drop, never crash.
        ++stray_datagrams_;
        continue;
      }
      last_heard_ns_[from] = now_ns();
      ++stats_.frames_received;
      ++count;
      process_frame(from, rx_buf_.data(), static_cast<std::size_t>(n));
      flush_deferred_tx();
    }
    kernel_drops_ = sock_.kernel_drops();
  }
  // Retransmit rejected frames whose backoff expired (a rejection proved
  // the peer alive, so the timer re-arms with a fresh retry budget). The
  // retry re-enters the pending window (its bounce released the slot) so a
  // lost retry can be re-sourced by timeout retransmission; when the
  // window is momentarily full the entry waits out another backoff period.
  for (auto& entry : rejq_.tick(cfg_.reject_retry_delay)) {
    if (dead_peers_.count(entry.dest) > 0) {
      ++stats_.frames_discarded_dead;
      continue;
    }
    // Leave one slot for a sender spinning in the blocked-send loop: its
    // fresh fragment may be the one that completes an admitted reassembly
    // at the rejecting peer, unwedging everyone bouncing off that slot.
    if (window_.space() <= (send_blocked_spin_ ? 1u : 0u)) {
      rejq_.add(entry.dest, entry.seq, std::move(entry.bytes));
      continue;
    }
    ++stats_.retransmissions;
    if (trace_.enabled())
      trace_.event(now_ns(), cat_retransmit_, 'i', entry.dest, entry.seq);
    window_.track(entry.dest, entry.seq, entry.bytes.data(),
                  entry.bytes.size());
    timer_.arm(entry.dest, entry.seq, now_ns());
    inject(entry.dest, entry.bytes.data(), entry.bytes.size());
  }
  // Standalone acks for peers owed a batch (threshold below half a peer's
  // in-flight allotment, same reasoning as the shm backend).
  if (!in_ack_flush_) {
    in_ack_flush_ = true;
    std::size_t limit =
        cfg_.window_mode ? cfg_.window_per_peer : cfg_.pending_window;
    std::size_t threshold =
        std::min(cfg_.ack_batch, std::max<std::size_t>(1, limit / 2));
    acks_.peers_over_into(threshold, ack_peers_scratch_);
    for (NodeId peer : ack_peers_scratch_) send_standalone_ack(peer);
    // Duplicate frames seen this pass force an immediate flush to their
    // senders, bypassing the batch threshold (see the dedup branch).
    for (NodeId peer = 0; peer < dup_ack_due_.size(); ++peer) {
      if (dup_ack_due_[peer] == 0) continue;
      dup_ack_due_[peer] = 0;
      send_standalone_ack(peer);
    }
    in_ack_flush_ = false;
  }
  reliability_tick();
  drain_posted();
  if (tx_batch_on_) flush_tx_batch();
  if (trace_.enabled() && count > 0) {
    const std::uint64_t now = now_ns();
    trace_.event(trace_t0, cat_extract_, 'B', static_cast<std::uint32_t>(count));
    trace_.event(now, cat_extract_, 'E', static_cast<std::uint32_t>(count));
    trace_.event(now, cat_depth_, 'C',
                 static_cast<std::uint32_t>(window_.in_flight()),
                 static_cast<std::uint32_t>(rejq_.size()));
  }
  return count;
}

void Endpoint::process_rx_buffer(const UdpSocket::RxMsg& m,
                                 const std::uint8_t* base, std::size_t* seen,
                                 std::size_t* count) {
  NodeId from = kInvalidNode;
  const bool known = cluster_.node_for_port(m.src_port, &from);
  if (known) last_heard_ns_[from] = now_ns();
  if (m.len == 0) {
    // An empty datagram carries no frame; account for it and move on (the
    // GRO split below would otherwise make no progress on it).
    ++*seen;
    ++datagrams_rx_;
    if (known)
      ++stats_.malformed_frames;
    else
      ++stray_datagrams_;
    return;
  }
  // A GRO buffer is a train: every gro_seg_len bytes is one original wire
  // datagram (the last may be shorter). A plain datagram is a train of one.
  const std::size_t seg = m.gro_seg_len != 0 ? m.gro_seg_len : m.len;
  for (std::size_t off = 0; off < m.len; off += seg) {
    const std::size_t flen = std::min<std::size_t>(seg, m.len - off);
    ++*seen;
    ++datagrams_rx_;
    if (!known) {
      // Real networks deliver strays (a late datagram from a previous run,
      // a port scan): count and drop, never crash.
      ++stray_datagrams_;
      continue;
    }
    ++stats_.frames_received;
    ++*count;
    process_frame(from, base + off, flen);
    flush_deferred_tx();
  }
}

void Endpoint::flush_deferred_tx() {
  if (flushing_deferred_) return;
  flushing_deferred_ = true;
  while (!deferred_tx_.empty()) {
    deferred_flush_scratch_.clear();
    std::swap(deferred_tx_, deferred_flush_scratch_);
    for (auto& t : deferred_flush_scratch_)
      inject(t.dest, t.bytes.data(), t.bytes.size());
  }
  flushing_deferred_ = false;
}

void Endpoint::drain() {
  for (;;) {
    acks_.peers_into(drain_peers_scratch_);
    for (NodeId peer : drain_peers_scratch_) send_standalone_ack(peer);
    // Staged frames count as outstanding: returning with bytes still in
    // the ring would leave a peer waiting on acks we never sent.
    if (tx_batch_on_ && tx_staged_ > 0) flush_tx_batch();
    if (window_.in_flight() == 0 && rejq_.size() == 0 && tx_staged_ == 0)
      return;
    if (extract() == 0) idle_pause();
  }
}

void Endpoint::reliability_tick() {
  if (in_reliability_tick_) return;
  in_reliability_tick_ = true;
  trace_.assert_writer();
  const std::uint64_t now = now_ns();
  timer_.expired_into(now, due_scratch_);
  for (const auto& due : due_scratch_) {
    if (due.exhausted) {
      // Liveness guard: a retry budget exhausted against a peer we are
      // still hearing from is congestion, not death. A batched burst into
      // a saturated receive queue can strike the same frame out
      // max_retries times while the peer's own data and acks keep
      // arriving; killing it then forgets the dedup state and breaks
      // exactly-once. Death needs a full detection horizon of *silence* —
      // a SIGKILLed rank goes quiet and is declared dead exactly as fast
      // as before; a congested one gets its frame re-armed with a fresh
      // budget and recovery continues.
      const std::uint64_t heard = last_heard_ns_[due.dest];
      if (heard != 0 && now - heard < alive_grace_ns_) {
        const SendWindow::Stored stored = window_.find(due.dest, due.seq);
        if (stored.data == nullptr) continue;  // acked since expiry
        ++stats_.retransmit_timeouts;
        ++stats_.retransmissions;
        if (trace_.enabled())
          trace_.event(now_ns(), cat_retransmit_, 'i', due.dest, due.seq);
        timer_.arm(due.dest, due.seq, now);
        // fm-lint: allow(hotpath-alloc): capacity reserved at construction;
        // the assign copies into warm storage without growing it.
        retx_scratch_.assign(stored.data, stored.data + stored.len);
        inject(due.dest, retx_scratch_.data(), retx_scratch_.size());
        continue;
      }
      mark_peer_dead(due.dest);
      continue;
    }
    const SendWindow::Stored stored = window_.find(due.dest, due.seq);
    if (stored.data == nullptr) {
      timer_.disarm(due.dest, due.seq);
      continue;
    }
    ++stats_.retransmit_timeouts;
    ++stats_.retransmissions;
    if (trace_.enabled())
      trace_.event(now_ns(), cat_retransmit_, 'i', due.dest, due.seq);
    // inject() can re-enter extract() on socket backpressure, which may ack
    // and recycle the slab slot — stage the bytes first.
    // fm-lint: allow(hotpath-alloc): capacity reserved at construction; the
    // assign copies into warm storage without growing it.
    retx_scratch_.assign(stored.data, stored.data + stored.len);
    inject(due.dest, retx_scratch_.data(), retx_scratch_.size());
  }
  // No reassembly-TTL sweep here: this backend always runs FM-R, where
  // expiring a partial is silent message loss — the erased fragments were
  // already acked, so their sender retains nothing to retransmit. A live
  // peer's partial always completes (timeouts re-source lost frames,
  // bounced frames retry from the reject queue); a dead peer's slots are
  // freed by mark_peer_dead().
  in_reliability_tick_ = false;
}

void Endpoint::mark_peer_dead(NodeId peer) {
  if (!dead_peers_.insert(peer).second) return;
  trace_.assert_writer();
  ++stats_.peers_dead;
  if (trace_.enabled()) trace_.event(now_ns(), cat_dead_peer_, 'i', peer, 0);
  stats_.frames_discarded_dead += window_.drop_dest(peer);
  timer_.disarm_all(peer);
  stats_.frames_discarded_dead += rejq_.drop_dest(peer);
  acks_.forget(peer);
  dedup_.forget(peer);
  reasm_.abort(peer);
  credits_.erase(peer);
  reorder_held_.erase(peer);
}

void Endpoint::process_frame(NodeId from, const std::uint8_t* data,
                             std::size_t len) {
  trace_.assert_writer();
  auto hdr = decode_header(data, len);
  if (!hdr.has_value()) {
    // On a real network wire garbage is weather, not a protocol bug (the
    // shm backend can afford to FM_CHECK here; a socket cannot).
    ++stats_.malformed_frames;
    return;
  }
  const FrameHeader& h = *hdr;
  if (h.has_crc() && !frame_crc_ok(h, data)) {
    ++stats_.crc_drops;
    if (trace_.enabled())
      trace_.event(now_ns(), cat_crc_drop_, 'i', from, h.seq);
    return;  // no ack — the sender's retransmit timer recovers the frame
  }
  // Acks are attributed to the datagram's transport source (`from`), not
  // the header's src field: the kernel-reported address is ground truth
  // even when the payload bytes are suspect.
  for (std::size_t i = 0; i < h.ack_count; ++i) {
    std::uint32_t seq = frame_ack(h, data, i);
    timer_.disarm(from, seq);
    // fm-lint: allow(hotpath-alloc): credits_[from] was seeded on first
    // send to the peer; an ack from it finds the entry already in place.
    if (window_.ack(from, seq) && cfg_.window_mode) ++credits_[from];
  }
  switch (h.type) {
    case FrameType::kAck:
      break;
    case FrameType::kReject: {
      if (h.src != id_) {
        // A reject for a frame we never sent: stray or corrupted. Drop.
        ++stats_.malformed_frames;
        return;
      }
      ++stats_.rejects_received;
      // Timer disarmed and window slot freed together: the reject queue now
      // retains the bytes, and a bounced frame pinning window capacity
      // head-of-line blocks fragments bound for other peers (deadlock fuel
      // when two senders bounce off each other's full receive pools).
      timer_.disarm(from, h.seq);
      park_reject(from, h, data);
      window_.bounce(from, h.seq);
      break;
    }
    case FrameType::kData: {
      if (dedup_.seen(from, h.seq)) {
        // Already accepted once: suppress delivery but re-ack, since the
        // duplicate usually means our first ack was lost with the original.
        // The re-ack is *threshold-exempt* (see extract()): a peer owed
        // fewer acks than the batch threshold, with no reverse data to
        // piggyback on, would otherwise starve a retransmitting sender
        // into falsely declaring this live endpoint dead.
        ++stats_.duplicates_suppressed;
        if (trace_.enabled())
          trace_.event(now_ns(), cat_dup_, 'i', from, h.seq);
        acks_.note(from, h.seq);
        dup_ack_due_[from] = 1;
        break;
      }
      const std::uint8_t* payload = frame_payload(h, data);
      if (h.fragmented()) {
        switch (reasm_.feed(from, h, payload, &reasm_out_, now_ns(),
                            h.handler == deposit_hid_ ? &deposit_sink_
                                                      : nullptr)) {
          case Reassembler::Feed::kMalformed:
            ++stats_.malformed_frames;
            return;  // dropped: no ack, no dedup mark
          case Reassembler::Feed::kRejected:
            ++stats_.rejects_issued;
            if (trace_.enabled())
              trace_.event(now_ns(), cat_reject_, 'i', from, h.seq);
            defer_reject(from, h, data);
            return;  // not accepted: no ack, no dedup mark
          case Reassembler::Feed::kAccepted:
            break;
          case Reassembler::Feed::kComplete:
            ++stats_.messages_delivered;
            if (trace_.enabled())
              trace_.event(now_ns(), cat_deliver_, 'i', from, h.seq);
            in_handler_ = true;
            handlers_.dispatch(h.handler, *this, from, reasm_out_.data(),
                               reasm_out_.size());
            in_handler_ = false;
            break;
        }
      } else {
        ++stats_.messages_delivered;
        if (trace_.enabled())
          trace_.event(now_ns(), cat_deliver_, 'i', from, h.seq);
        in_handler_ = true;
        handlers_.dispatch(h.handler, *this, from, payload, h.payload_len);
        in_handler_ = false;
      }
      dedup_.mark(from, h.seq);
      acks_.note(from, h.seq);
      break;
    }
  }
}

void Endpoint::drain_posted() {
  if (draining_posted_) return;
  draining_posted_ = true;
  while (posted_head_ < posted_.size()) {
    // Index on every access: a blocked send nests extract(), and a handler
    // running there may post more, reallocating posted_.
    Status s = send(posted_[posted_head_].dest, posted_[posted_head_].handler,
                    posted_[posted_head_].payload.data(),
                    posted_[posted_head_].payload.size());
    FM_CHECK_MSG(ok(s) || s == Status::kPeerDead, "posted send failed");
    // fm-lint: allow(hotpath-alloc): returns the drained entry (and its
    // payload capacity) to the pool; steady state moves, never grows.
    posted_pool_.push_back(std::move(posted_[posted_head_]));
    ++posted_head_;
  }
  posted_.clear();
  posted_head_ = 0;
  draining_posted_ = false;
}

void Endpoint::send_standalone_ack(NodeId peer) {
  std::uint32_t acks[kMaxAcksPerFrame];
  const std::size_t n = acks_.take_into(peer, kMaxAcksPerFrame, acks);
  if (n == 0) return;
  FrameHeader h;
  h.type = FrameType::kAck;
  h.src = id_;
  if (cfg_.crc_frames) h.flags |= FrameHeader::kFlagCrc;
  h.ack_count = static_cast<std::uint8_t>(n);
  ++stats_.acks_standalone;
  std::uint8_t buf[FrameHeader::kBaseBytes + 4 * kMaxAcksPerFrame +
                   FrameHeader::kCrcBytes];
  const std::size_t wire = encode_frame_into(buf, h, nullptr, acks);
  inject(peer, buf, wire);
}

void Endpoint::park_reject(NodeId from, const FrameHeader& h,
                           const std::uint8_t* data) {
  FrameHeader clean = h;
  clean.type = FrameType::kData;
  clean.ack_count = 0;
  rejq_.add(from, h.seq,
            encode_frame(clean, frame_payload(h, data), nullptr));
}

void Endpoint::defer_reject(NodeId from, const FrameHeader& h,
                            const std::uint8_t* data) {
  FrameHeader rh = h;
  rh.type = FrameType::kReject;
  rh.ack_count = 0;
  // Parked rather than injected: the receive buffer is being processed in
  // place, and the backpressure a push can hit must not re-enter extract()
  // from here.
  deferred_tx_.push_back(
      DeferredTx{from, encode_frame(rh, frame_payload(h, data), nullptr)});
}

void Endpoint::post_send4(NodeId dest, HandlerId handler, std::uint32_t w0,
                          std::uint32_t w1, std::uint32_t w2,
                          std::uint32_t w3) {
  std::uint32_t words[4] = {w0, w1, w2, w3};
  post_send(dest, handler, words, sizeof words);
}

void Endpoint::post_send(NodeId dest, HandlerId handler, const void* buf,
                         std::size_t len) {
  Posted p;
  if (!posted_pool_.empty()) {
    p = std::move(posted_pool_.back());
    posted_pool_.pop_back();
  }
  p.dest = dest;
  p.handler = handler;
  const auto* b = static_cast<const std::uint8_t*>(buf);
  // fm-lint: allow(hotpath-alloc): pooled entries carry warm payload
  // capacity; the assign reuses it after the pool has been primed.
  p.payload.assign(b, b + len);
  // fm-lint: allow(hotpath-alloc): bounded by the number of posts a single
  // handler batch issues; the vector's capacity is retained across drains.
  posted_.push_back(std::move(p));
}

void Endpoint::post_send2(NodeId dest, HandlerId handler, const void* hdr,
                          std::size_t hdr_len, const void* body,
                          std::size_t body_len) {
  Posted p;
  if (!posted_pool_.empty()) {
    p = std::move(posted_pool_.back());
    posted_pool_.pop_back();
  }
  p.dest = dest;
  p.handler = handler;
  const auto* h = static_cast<const std::uint8_t*>(hdr);
  const auto* b = static_cast<const std::uint8_t*>(body);
  // fm-lint: allow(hotpath-alloc): pooled entries carry warm payload
  // capacity; the assign reuses it after the pool has been primed.
  p.payload.assign(h, h + hdr_len);
  // fm-lint: allow(hotpath-alloc): appends within the same warm capacity.
  p.payload.insert(p.payload.end(), b, b + body_len);
  // fm-lint: allow(hotpath-alloc): bounded by the number of posts a single
  // handler batch issues; the vector's capacity is retained across drains.
  posted_.push_back(std::move(p));
}

}  // namespace fm::net
