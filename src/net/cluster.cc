#include "net/cluster.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.h"

namespace fm::net {
namespace {

// Control-channel packet tags (one SOCK_SEQPACKET message per packet).
constexpr char kReady = 'Y';    // child -> parent: forked, socket owned
constexpr char kGo = 'G';       // parent -> child: every rank is ready, run
constexpr char kBarrier = 'B';  // child -> parent: waiting at barrier()
constexpr char kRelease = 'R';  // parent -> child: everyone arrived, go on
constexpr char kSample = 'S';   // child -> parent: one registry sample
constexpr char kMetric = 'M';   // child -> parent: one report()ed scalar
constexpr char kPhase = 'P';    // child -> parent: progress marker string
constexpr char kDone = 'D';     // child -> parent: node_main returned

constexpr std::size_t kMaxPacket = 512;

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool send_packet(int fd, const void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n) == len;
    if (errno == EINTR) continue;
    return false;
  }
}

/// Blocking single-packet read (child side). Returns the byte count, 0 on
/// EOF, -1 on error.
long recv_packet(int fd, void* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    return -1;
  }
}

/// Streams one registry sample to the parent (child side): the only path
/// counter values take across the address-space boundary.
void send_sample(int ctl, const obs::Sample& s) {
  char pkt[kMaxPacket];
  const std::size_t name_len = std::min(s.name.size(), kMaxPacket - 10);
  pkt[0] = kSample;
  pkt[1] = s.monotonic ? 1 : 0;
  std::memcpy(pkt + 2, &s.value, sizeof s.value);
  std::memcpy(pkt + 10, s.name.data(), name_len);
  (void)send_packet(ctl, pkt, 10 + name_len);
}

/// FM_NET_WATCHDOG_MS override of the configured watchdog deadline. Unset
/// keeps the config value; a set value is parsed strictly (fm::env) and
/// must be a positive millisecond count — a typo'd watchdog that silently
/// kept the default was how a hung soak once ran 100x longer than its CI
/// slot.
std::uint64_t watchdog_override_ns(std::uint64_t config_ns) {
  std::uint64_t ms = 0;
  if (!env::read_u64("FM_NET_WATCHDOG_MS", &ms, 1, 86'400'000)) return config_ns;
  return ms * 1'000'000ull;
}

/// Resolves one FM-Burst sentinel knob: an explicit config value (>= 0)
/// wins, otherwise the environment variable (strict grammar, fatal on
/// garbage), otherwise the built-in default.
long resolve_burst_knob(long config_val, const char* env_name, long def,
                        std::uint64_t max) {
  if (config_val >= 0) return config_val;
  std::uint64_t v = 0;
  if (!env::read_u64(env_name, &v, 0, max)) return def;
  return static_cast<long>(v);
}

}  // namespace

Cluster::Cluster(std::size_t nodes, FmConfig cfg, NetConfig net,
                 hw::FaultParams faults)
    : net_(net) {
  FM_CHECK_MSG(nodes >= 1, "empty cluster");
  net_.run_timeout_ns = watchdog_override_ns(net_.run_timeout_ns);
  // Resolve the FM-Burst sentinels before any endpoint is constructed so
  // every rank inherits the same already-decided transport mode.
  net_.tx_batch = static_cast<int>(
      resolve_burst_knob(net_.tx_batch, "FM_NET_BATCH", 1, 1));
  net_.gso =
      static_cast<int>(resolve_burst_knob(net_.gso, "FM_NET_GSO", 0, 1));
  net_.busy_poll_spin_us = resolve_burst_knob(
      net_.busy_poll_spin_us, "FM_NET_BUSY_POLL_US", 0, 10'000'000);
  // Bind every node's socket first: the full address map must exist before
  // any endpoint is constructed, and both must exist before fork() so the
  // children inherit identical state.
  for (std::size_t i = 0; i < nodes; ++i) {
    socks_.push_back(std::make_unique<UdpSocket>());
    socks_.back()->set_buffer_sizes(net_.so_rcvbuf, net_.so_sndbuf);
    addrs_.push_back(UdpSocket::loopback_addr(socks_.back()->port()));
    port_to_node_[socks_.back()->port()] = static_cast<NodeId>(i);
  }
  for (std::size_t i = 0; i < nodes; ++i)
    endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(
        *this, static_cast<NodeId>(i), cfg, faults, *socks_[i], net_, nodes)));
  // One control channel per future child.
  ctl_parent_.resize(nodes, -1);
  ctl_child_.resize(nodes, -1);
  for (std::size_t i = 0; i < nodes; ++i) {
    int sv[2];
    FM_CHECK_MSG(::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, sv) == 0,
                 "socketpair(AF_UNIX, SOCK_SEQPACKET) failed");
    ctl_parent_[i] = sv[0];
    ctl_child_[i] = sv[1];
  }
}

Cluster::~Cluster() {
  for (int fd : ctl_parent_)
    if (fd >= 0) ::close(fd);
  for (int fd : ctl_child_)
    if (fd >= 0) ::close(fd);
}

RunReport Cluster::run(const std::function<void(Endpoint&)>& node_main) {
  FM_CHECK_MSG(!in_child_, "net::Cluster::run() from inside a rank");
  FM_CHECK_MSG(!ran_, "net::Cluster::run() is one-shot; build a new cluster");
  ran_ = true;
  const std::size_t n = size();
  std::vector<pid_t> pids(n, -1);
  // stdio buffers are duplicated by fork(); flush now so a child's _Exit
  // cannot re-emit the parent's pending output.
  std::fflush(nullptr);
  for (std::size_t rank = 0; rank < n; ++rank) {
    const pid_t pid = ::fork();
    FM_CHECK_MSG(pid >= 0, "fork() failed");
    if (pid == 0) child_main(static_cast<NodeId>(rank), node_main);
    pids[rank] = pid;
  }
  // Parent: drop the child ends so an exiting child produces EOF on the
  // parent end (crash detection depends on being the only other holder).
  for (int& fd : ctl_child_) {
    ::close(fd);
    fd = -1;
  }
  RunReport report;
  report.metrics = reported_;
  report.samples = published_;
  parent_collect(report, pids);
  return report;
}

void Cluster::child_main(NodeId rank,
                         const std::function<void(Endpoint&)>& body) {
  in_child_ = true;
  my_rank_ = rank;
  // Own exactly one data socket and one control end; close every inherited
  // fd that belongs to another rank or to the parent side. Closing the
  // parent ends here is what makes parent-side EOF mean "that child died".
  for (std::size_t i = 0; i < socks_.size(); ++i)
    if (i != rank) socks_[i].reset();
  for (std::size_t i = 0; i < ctl_parent_.size(); ++i) {
    ::close(ctl_parent_[i]);
    ctl_parent_[i] = -1;
    if (i != rank && ctl_child_[i] >= 0) {
      ::close(ctl_child_[i]);
      ctl_child_[i] = -1;
    }
  }
  const int ctl = ctl_child_[rank];
  char tag = kReady;
  FM_CHECK_MSG(send_packet(ctl, &tag, 1), "child READY send failed");
  char buf[kMaxPacket];
  const long n = recv_packet(ctl, buf, sizeof buf);
  FM_CHECK_MSG(n == 1 && buf[0] == kGo, "child GO rendezvous failed");

  body(*endpoints_[rank]);

  // Quiescent now: stream this rank's FM-Scope state to the parent — the
  // only path counters take across the address-space boundary. This child
  // process is the registry's single owner, so the claim is trivially true.
  endpoints_[rank]->registry().assert_owner();
  for (const obs::Sample& s : endpoints_[rank]->registry().snapshot())
    send_sample(ctl, s);
  tag = kDone;
  (void)send_packet(ctl, &tag, 1);
  std::fflush(nullptr);
  // _Exit, not exit: the child shares the parent's atexit handlers and
  // gtest listeners, none of which may run twice.
  std::_Exit(child_exit_code_);
}

void Cluster::barrier() {
  FM_CHECK_MSG(in_child_,
               "net::Cluster::barrier() is only callable from node_main "
               "inside run()");
  const int ctl = ctl_child_[my_rank_];
  char tag = kBarrier;
  FM_CHECK_MSG(send_packet(ctl, &tag, 1), "barrier request failed");
  char buf[kMaxPacket];
  const long n = recv_packet(ctl, buf, sizeof buf);
  FM_CHECK_MSG(n == 1 && buf[0] == kRelease, "barrier release failed");
}

void Cluster::barrier_begin() {
  FM_CHECK_MSG(in_child_,
               "net::Cluster::barrier() is only callable from node_main "
               "inside run()");
  char tag = kBarrier;
  FM_CHECK_MSG(send_packet(ctl_child_[my_rank_], &tag, 1),
               "barrier request failed");
}

bool Cluster::barrier_try_release() {
  char buf[kMaxPacket];
  for (;;) {
    const ssize_t n = ::recv(ctl_child_[my_rank_], buf, sizeof buf,
                             MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    }
    FM_CHECK_MSG(n == 1 && buf[0] == kRelease, "barrier release failed");
    return true;
  }
}

void Cluster::report(const std::string& key, double value) {
  if (!in_child_) {
    reported_[key] = value;
    return;
  }
  char pkt[kMaxPacket];
  const std::size_t name_len = std::min(key.size(), kMaxPacket - 9);
  pkt[0] = kMetric;
  std::memcpy(pkt + 1, &value, sizeof value);
  std::memcpy(pkt + 9, key.data(), name_len);
  (void)send_packet(ctl_child_[my_rank_], pkt, 9 + name_len);
}

void Cluster::publish(const obs::Registry& reg) {
  reg.assert_owner();
  if (!in_child_) {
    auto snap = reg.snapshot();
    published_.insert(published_.end(), snap.begin(), snap.end());
    return;
  }
  for (const obs::Sample& s : reg.snapshot())
    send_sample(ctl_child_[my_rank_], s);
}

void Cluster::note_phase(NodeId i, const std::string& phase) {
  FM_CHECK(i < size());
  if (!in_child_) {
    parent_phases_[i] = phase;
    return;
  }
  FM_CHECK_MSG(i == my_rank_,
               "a net rank can only announce its own phase");
  char pkt[kMaxPacket];
  const std::size_t len = std::min(phase.size(), kMaxPacket - 1);
  pkt[0] = kPhase;
  std::memcpy(pkt + 1, phase.data(), len);
  (void)send_packet(ctl_child_[my_rank_], pkt, 1 + len);
}

void Cluster::parent_collect(RunReport& report,
                             const std::vector<pid_t>& pids) {
  const std::size_t n = pids.size();
  enum class St { kWaitReady, kRunning, kGone };
  std::vector<St> state(n, St::kWaitReady);
  std::vector<bool> at_barrier(n, false);
  std::vector<bool> sent_done(n, false);
  // Progress bookkeeping for the watchdog kill report and RankStatus.
  std::vector<std::string> last_phase(n);
  std::vector<std::uint64_t> barriers_seen(n, 0);
  for (const auto& [rank, phase] : parent_phases_)
    if (rank < n) last_phase[rank] = phase;
  std::size_t open = n;
  bool go_sent = false;

  auto alive = [&](std::size_t i) { return state[i] != St::kGone; };
  auto maybe_send_go = [&] {
    if (go_sent) return;
    for (std::size_t i = 0; i < n; ++i)
      if (state[i] == St::kWaitReady) return;
    go_sent = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive(i)) continue;
      char tag = kGo;
      (void)send_packet(ctl_parent_[i], &tag, 1);
    }
  };
  // Release a barrier once every *surviving* rank that has not finished is
  // waiting at it: a crashed or completed rank must not hang the rest.
  auto maybe_release_barrier = [&] {
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive(i) || sent_done[i]) continue;
      if (!at_barrier[i]) return;
      any = true;
    }
    if (!any) return;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive(i) || !at_barrier[i]) continue;
      at_barrier[i] = false;
      char tag = kRelease;
      (void)send_packet(ctl_parent_[i], &tag, 1);
    }
  };

  const std::uint64_t deadline =
      now_ms() + net_.run_timeout_ns / 1'000'000ull;
  std::vector<pollfd> fds;
  char buf[kMaxPacket];
  while (open > 0) {
    const std::uint64_t now = now_ms();
    if (now >= deadline) {
      // Watchdog: a hung multi-process run must die here, not in CI's
      // global timeout with no diagnostics — and the kill report must say
      // where every rank was last seen, or the hang is undebuggable.
      report.timed_out = true;
      std::fprintf(stderr,
                   "[net::Cluster] watchdog: run exceeded %llu ms; killing "
                   "surviving ranks\n",
                   static_cast<unsigned long long>(net_.run_timeout_ns /
                                                   1'000'000ull));
      for (std::size_t i = 0; i < n; ++i) {
        std::fprintf(
            stderr,
            "[net::Cluster]   rank %zu: %s, last phase \"%s\", %llu "
            "barrier(s) entered%s\n",
            i, alive(i) ? (sent_done[i] ? "done" : "running") : "gone",
            last_phase[i].empty() ? "(none)" : last_phase[i].c_str(),
            static_cast<unsigned long long>(barriers_seen[i]),
            at_barrier[i] ? ", waiting at a barrier" : "");
        if (alive(i)) ::kill(pids[i], SIGKILL);
      }
      break;
    }
    fds.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (alive(i)) fds.push_back(pollfd{ctl_parent_[i], POLLIN, 0});
    const int timeout_ms = static_cast<int>(
        std::min<std::uint64_t>(deadline - now, 1000));
    const int r = ::poll(fds.data(), fds.size(), timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      FM_CHECK_MSG(false, "poll() on control channels failed");
    }
    std::size_t fi = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive(i)) continue;
      const pollfd& p = fds[fi++];
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      for (;;) {  // drain every queued packet for this rank
        const ssize_t m = ::recv(p.fd, buf, sizeof buf, MSG_DONTWAIT);
        if (m < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            break;
          // Treat a hard error like EOF: the rank is unreachable.
          state[i] = St::kGone;
          --open;
          break;
        }
        if (m == 0) {  // EOF: the child exited (cleanly or not)
          state[i] = St::kGone;
          --open;
          break;
        }
        switch (buf[0]) {
          case kReady:
            state[i] = St::kRunning;
            break;
          case kBarrier:
            at_barrier[i] = true;
            ++barriers_seen[i];
            break;
          case kPhase:
            last_phase[i].assign(buf + 1, static_cast<std::size_t>(m) - 1);
            break;
          case kDone:
            sent_done[i] = true;
            break;
          case kSample: {
            if (m < 10) break;
            obs::Sample s;
            s.monotonic = buf[1] != 0;
            std::memcpy(&s.value, buf + 2, sizeof s.value);
            s.name.assign(buf + 10, static_cast<std::size_t>(m) - 10);
            report.samples.push_back(std::move(s));
            break;
          }
          case kMetric: {
            if (m < 9) break;
            double value = 0;
            std::memcpy(&value, buf + 1, sizeof value);
            std::string key(buf + 9, static_cast<std::size_t>(m) - 9);
            report.metrics[key] = value;
            break;
          }
          default:
            break;  // unknown tag: ignore (forward compatibility)
        }
      }
      if (!alive(i)) continue;
    }
    maybe_send_go();
    maybe_release_barrier();
  }
  // Harvest every child's wait status (blocking: by now each child has
  // exited, crashed, or been SIGKILLed by the watchdog above).
  for (std::size_t i = 0; i < n; ++i) {
    int status = 0;
    pid_t got;
    do {
      got = ::waitpid(pids[i], &status, 0);
    } while (got < 0 && errno == EINTR);
    RankStatus rs;
    rs.id = static_cast<NodeId>(i);
    if (got == pids[i] && WIFEXITED(status)) {
      rs.exited = true;
      rs.exit_code = WEXITSTATUS(status);
    } else if (got == pids[i] && WIFSIGNALED(status)) {
      rs.exited = false;
      rs.term_signal = WTERMSIG(status);
    } else {
      rs.exited = false;
      rs.term_signal = -1;  // waitpid itself failed; count as unclean
    }
    rs.last_phase = last_phase[i];
    rs.barriers_seen = barriers_seen[i];
    report.ranks.push_back(rs);
  }
}

}  // namespace fm::net
