// Transport-layer knobs for the net backend (the FM protocol knobs stay in
// fm::FmConfig). Split out of cluster.h so net::Endpoint — which cluster.h
// includes — can consume the resolved configuration too.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fm::net {

/// Transport knobs below the FM protocol. The three FM-Burst accelerator
/// fields use a -1 sentinel: an explicit value (>= 0) always wins, a
/// sentinel is filled from the matching FM_NET_* environment variable at
/// Cluster construction, and an absent/invalid variable falls back to the
/// built-in default. (This differs from FM_NET_WATCHDOG_MS, which
/// overrides even explicit configuration: a bench pinning its mode matrix
/// must not be reconfigured from the environment underneath itself.)
struct NetConfig {
  /// Socket buffer sizes in bytes (0: kernel default). A small receive
  /// buffer is how soak tests force *real* kernel drops.
  int so_rcvbuf = 0;
  int so_sndbuf = 0;
  /// Harness watchdog: when node_main bodies run longer than this, the
  /// parent SIGKILLs every surviving child and the RunReport carries
  /// timed_out = true. A multi-process hang must never outlive its test.
  /// The FM_NET_WATCHDOG_MS environment variable overrides this at Cluster
  /// construction (CI shortens it for chaos runs without a rebuild), and
  /// the kill report says which phase/barrier each rank was last seen in.
  std::uint64_t run_timeout_ns = 120'000'000'000ull;
  /// Datagrams drained per extract() call (the receive-aggregation batch).
  std::size_t extract_budget = 64;

  // --- FM-Burst: syscall batching and its opt-in accelerators ---

  /// Gather pending TX frames (data, acks, reject retries) into sendmmsg
  /// bursts and drain the socket with recvmmsg (the syscall analogue of the
  /// paper's PIO gather / receive aggregation). Default ON — it is the
  /// steady-state hot path. Env: FM_NET_BATCH (0/1).
  int tx_batch = -1;
  /// UDP segmentation offload: a staged run of same-destination equal-size
  /// frames goes to the kernel as ONE UDP_SEGMENT datagram train, and the
  /// receive side accepts UDP_GRO-coalesced trains. Runtime-probed; when
  /// the kernel lacks support the backend silently falls back to plain
  /// sendmmsg. Only honoured when tx_batch is on (the GRO receive path
  /// needs the batched RX slab's train-sized buffers). Default OFF.
  /// Env: FM_NET_GSO (0/1).
  int gso = -1;
  /// Busy-poll receive: before parking in poll(), spin on a zero-timeout
  /// readiness check for up to this many microseconds. Cuts the
  /// wakeup latency out of ping-pong t0 at the price of burning a core
  /// while idle. 0 disables. Env: FM_NET_BUSY_POLL_US.
  long busy_poll_spin_us = -1;
  /// Upper bound on frames staged per TX burst (clamped to the socket
  /// layer's mmsghdr slab capacity, UdpSocket::kMaxBatch).
  std::size_t max_tx_burst = 64;

  // --- Test hooks (deterministic failure injection at the socket layer) ---

  /// When > 0, every Nth datagram send attempt reports EWOULDBLOCK once
  /// (clearing itself on retry) — exercises partial sendmmsg bursts and the
  /// blocked-sender path without needing a full kernel buffer.
  std::size_t debug_wouldblock_every = 0;
  /// Forces the GSO capability probe to report "unsupported", covering the
  /// graceful-fallback path on kernels that do support it.
  bool debug_force_no_gso = false;
  /// When > 0, send_gso succeeds `n` times and then reports kError forever
  /// — models a kernel that accepts the UDP_SEGMENT probe but EIO/EINVALs
  /// live trains mid-run. Exercises the keep-the-train, drop-to-single-shot
  /// fallback in flush_tx_batch.
  std::uint64_t debug_gso_fail_after = 0;
};

}  // namespace fm::net
