#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace fm::net {

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  FM_CHECK_MSG(fd_ >= 0, "socket(AF_INET, SOCK_DGRAM) failed");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  FM_CHECK(flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0);
#ifdef SO_RXQ_OVFL
  // Ask the kernel to attach its cumulative receive-queue drop count to
  // every received datagram — the ground truth for "the link lost frames".
  int on = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RXQ_OVFL, &on, sizeof on);
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // OS-assigned
  FM_CHECK_MSG(
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
      "bind(127.0.0.1:0) failed");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  FM_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0);
  port_ = ntohs(bound.sin_port);
  FM_CHECK(port_ != 0);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocket::set_buffer_sizes(int rcvbuf_bytes, int sndbuf_bytes) {
  // Best-effort: the kernel clamps to [SOCK_MIN_*BUF, *mem_max] anyway, and
  // the tests that depend on a small buffer assert on observed drops, not
  // on the buffer size they asked for.
  if (rcvbuf_bytes > 0)
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                       sizeof rcvbuf_bytes);
  if (sndbuf_bytes > 0)
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes,
                       sizeof sndbuf_bytes);
}

UdpSocket::SendResult UdpSocket::send_to(const sockaddr_in& addr,
                                         const void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n =
        ::sendto(fd_, buf, len, 0, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof addr);
    if (n >= 0) return SendResult::kOk;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
      return SendResult::kWouldBlock;
    // ECONNREFUSED etc.: the datagram is lost exactly like a dropped
    // packet; FM-R's retransmit timer owns recovery.
    return SendResult::kError;
  }
}

long UdpSocket::recv_one(void* buf, std::size_t cap, std::uint16_t* src_port,
                         std::uint64_t* rxq_drops) {
  sockaddr_in src{};
  iovec iov{buf, cap};
  msghdr msg{};
  msg.msg_name = &src;
  msg.msg_namelen = sizeof src;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
#ifdef SO_RXQ_OVFL
  alignas(cmsghdr) char ctl[CMSG_SPACE(sizeof(std::uint32_t))];
  msg.msg_control = ctl;
  msg.msg_controllen = sizeof ctl;
#endif
  for (;;) {
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;  // EAGAIN or a transient error: nothing deliverable now
    }
#ifdef SO_RXQ_OVFL
    if (rxq_drops != nullptr) {
      for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr;
           c = CMSG_NXTHDR(&msg, c)) {
        if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_RXQ_OVFL) {
          std::uint32_t dropped = 0;
          std::memcpy(&dropped, CMSG_DATA(c), sizeof dropped);
          *rxq_drops = dropped;
        }
      }
    }
#else
    (void)rxq_drops;
#endif
    if (src_port != nullptr) *src_port = ntohs(src.sin_port);
    return static_cast<long>(n);
  }
}

bool UdpSocket::wait_readable(int timeout_ms) {
  pollfd p{fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    return r > 0 && (p.revents & POLLIN) != 0;
  }
}

sockaddr_in UdpSocket::loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace fm::net
