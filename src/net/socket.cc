#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

// UDP_SEGMENT / UDP_GRO arrived in Linux 4.18 / 5.0; define the sockopt
// numbers when building against older uapi headers. The runtime probe is
// what actually decides whether they are used.
#if defined(__linux__)
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif
#ifndef SOL_UDP
#define SOL_UDP 17
#endif
#endif

namespace fm::net {

UdpSocket::UdpSocket() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  FM_CHECK_MSG(fd_ >= 0, "socket(AF_INET, SOCK_DGRAM) failed");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  FM_CHECK(flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0);
#ifdef SO_RXQ_OVFL
  // Ask the kernel to attach its cumulative receive-queue drop count to
  // every received datagram — the ground truth for "the link lost frames".
  int on = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RXQ_OVFL, &on, sizeof on);
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // OS-assigned
  FM_CHECK_MSG(
      ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0,
      "bind(127.0.0.1:0) failed");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  FM_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0);
  port_ = ntohs(bound.sin_port);
  FM_CHECK(port_ != 0);
#if defined(__linux__)
  // Probe UDP_SEGMENT support: setting the per-socket segment size to 0
  // (= "no default segmentation") succeeds iff the kernel knows the
  // option, and changes nothing either way — send_gso passes the real
  // segment size per call via cmsg.
  int zero = 0;
  gso_ok_ = ::setsockopt(fd_, SOL_UDP, UDP_SEGMENT, &zero, sizeof zero) == 0;
#endif
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpSocket::set_buffer_sizes(int rcvbuf_bytes, int sndbuf_bytes) {
  // Best-effort: the kernel clamps to [SOCK_MIN_*BUF, *mem_max] anyway, and
  // the tests that depend on a small buffer assert on observed drops, not
  // on the buffer size they asked for.
  if (rcvbuf_bytes > 0)
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                       sizeof rcvbuf_bytes);
  if (sndbuf_bytes > 0)
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes,
                       sizeof sndbuf_bytes);
}

bool UdpSocket::enable_gro() {
#if defined(__linux__)
  if (!gso_ok_) return false;  // forced-unsupported hook covers GRO too
  int on = 1;
  return ::setsockopt(fd_, SOL_UDP, UDP_GRO, &on, sizeof on) == 0;
#else
  return false;
#endif
}

bool UdpSocket::debug_block_now() {
  if (debug_wouldblock_every_ == 0) return false;
  if ((debug_send_attempts_ + 1) % debug_wouldblock_every_ == 0) {
    // Consume the block so the retry goes through — forced backpressure is
    // transient, like the kernel buffer draining underneath a real
    // EWOULDBLOCK.
    ++debug_send_attempts_;
    return true;
  }
  return false;
}

std::size_t UdpSocket::debug_frames_until_block(std::size_t want) const {
  if (debug_wouldblock_every_ == 0) return want;
  const std::size_t until =
      debug_wouldblock_every_ -
      (debug_send_attempts_ % debug_wouldblock_every_) - 1;
  return until < want ? until : want;
}

UdpSocket::SendResult UdpSocket::send_to(const sockaddr_in& addr,
                                         const void* buf, std::size_t len) {
  if (debug_block_now()) return SendResult::kWouldBlock;
  for (;;) {
    const ssize_t n =
        ::sendto(fd_, buf, len, 0, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof addr);
    if (n >= 0) {
      ++debug_send_attempts_;
      return SendResult::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
      return SendResult::kWouldBlock;
    // ECONNREFUSED etc.: the datagram is lost exactly like a dropped
    // packet; FM-R's retransmit timer owns recovery.
    ++debug_send_attempts_;
    return SendResult::kError;
  }
}

UdpSocket::BatchResult UdpSocket::send_batch(const TxFrame* frames,
                                             std::size_t n) {
  BatchResult r;
#ifdef __linux__
  while (r.consumed < n) {
    if (debug_block_now()) {
      r.would_block = true;
      return r;
    }
    std::size_t vlen = n - r.consumed;
    if (vlen > kMaxBatch) vlen = kMaxBatch;
    vlen = debug_frames_until_block(vlen);
    for (std::size_t i = 0; i < vlen; ++i) {
      const TxFrame& f = frames[r.consumed + i];
      tx_iov_[i].iov_base = const_cast<void*>(f.data);
      tx_iov_[i].iov_len = f.len;
      std::memset(&tx_mmsg_[i], 0, sizeof tx_mmsg_[i]);
      tx_mmsg_[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(f.addr);
      tx_mmsg_[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      tx_mmsg_[i].msg_hdr.msg_iov = &tx_iov_[i];
      tx_mmsg_[i].msg_hdr.msg_iovlen = 1;
    }
    int sent = ::sendmmsg(fd_, tx_mmsg_, static_cast<unsigned>(vlen), 0);
    ++r.syscalls;
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        r.would_block = true;
        return r;
      }
      // A hard per-datagram error (e.g. ECONNREFUSED bounced back from a
      // dead peer's port) poisons the FIRST frame of the burst: count it
      // gone and move past it so the rest of the burst still flows.
      r.consumed += 1;
      r.errors += 1;
      continue;
    }
    r.consumed += static_cast<std::size_t>(sent);
    r.sent += static_cast<std::size_t>(sent);
    debug_send_attempts_ += static_cast<std::uint64_t>(sent);
    if (static_cast<std::size_t>(sent) < vlen) {
      // Short count: the kernel took a prefix and ran out of room.
      r.would_block = true;
      return r;
    }
  }
#else
  // Portable fallback: the same ownership contract, one syscall per frame.
  while (r.consumed < n) {
    const TxFrame& f = frames[r.consumed];
    const SendResult s = send_to(*f.addr, f.data, f.len);
    ++r.syscalls;
    if (s == SendResult::kWouldBlock) {
      r.would_block = true;
      return r;
    }
    ++r.consumed;
    if (s == SendResult::kOk)
      ++r.sent;
    else
      ++r.errors;
  }
#endif
  return r;
}

UdpSocket::SendResult UdpSocket::send_gso(const sockaddr_in& addr,
                                          const iovec* iov, std::size_t iovcnt,
                                          std::uint16_t seg_len) {
#ifdef __linux__
  FM_CHECK_MSG(gso_ok_, "send_gso without gso_supported()");
  FM_CHECK(iovcnt >= 1 && iovcnt <= kMaxBatch);
  if (debug_gso_fail_after_ > 0 && debug_gso_trains_ >= debug_gso_fail_after_)
    return SendResult::kError;  // forced mid-run EIO/EINVAL (see header)
  if (debug_block_now()) return SendResult::kWouldBlock;
  msghdr msg{};
  msg.msg_name = const_cast<sockaddr_in*>(&addr);
  msg.msg_namelen = sizeof addr;
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = iovcnt;
  alignas(alignof(cmsghdr)) char ctl[CMSG_SPACE(sizeof(std::uint16_t))] = {};
  msg.msg_control = ctl;
  msg.msg_controllen = sizeof ctl;
  cmsghdr* c = CMSG_FIRSTHDR(&msg);
  c->cmsg_level = SOL_UDP;
  c->cmsg_type = UDP_SEGMENT;
  c->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
  std::memcpy(CMSG_DATA(c), &seg_len, sizeof seg_len);
  for (;;) {
    const ssize_t n = ::sendmsg(fd_, &msg, 0);
    if (n >= 0) {
      debug_send_attempts_ += iovcnt;
      ++debug_gso_trains_;
      return SendResult::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
      return SendResult::kWouldBlock;
    debug_send_attempts_ += iovcnt;
    return SendResult::kError;
  }
#else
  (void)addr;
  (void)iov;
  (void)iovcnt;
  (void)seg_len;
  FM_CHECK_MSG(false, "send_gso without gso_supported()");
  return SendResult::kError;
#endif
}

void UdpSocket::absorb_cmsgs(const msghdr& msg, std::uint32_t* gro_seg_len) {
  if (gro_seg_len != nullptr) *gro_seg_len = 0;
  for (const cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr;
       c = CMSG_NXTHDR(const_cast<msghdr*>(&msg), const_cast<cmsghdr*>(c))) {
#ifdef SO_RXQ_OVFL
    if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_RXQ_OVFL) {
      std::uint32_t dropped = 0;
      std::memcpy(&dropped, CMSG_DATA(c), sizeof dropped);
      rxq_meter_.feed(dropped);
    }
#endif
#ifdef __linux__
    if (c->cmsg_level == SOL_UDP && c->cmsg_type == UDP_GRO &&
        gro_seg_len != nullptr) {
      int seg = 0;
      std::memcpy(&seg, CMSG_DATA(c), sizeof seg);
      if (seg > 0) *gro_seg_len = static_cast<std::uint32_t>(seg);
    }
#endif
  }
}

std::size_t UdpSocket::recv_batch(std::uint8_t* slab, std::size_t stride,
                                  std::size_t max_msgs, RxMsg* out) {
#ifdef __linux__
  const std::size_t vlen = max_msgs < kMaxBatch ? max_msgs : kMaxBatch;
  if (slab != rx_init_slab_ || stride != rx_init_stride_ ||
      vlen != rx_init_vlen_) {
    // New slab layout: build every entry once. The steady state (the
    // endpoint always drains into the same preallocated slab with the
    // same budget) never takes this branch after the first call.
    for (std::size_t i = 0; i < vlen; ++i) {
      rx_iov_[i].iov_base = slab + i * stride;
      rx_iov_[i].iov_len = stride;
      std::memset(&rx_mmsg_[i], 0, sizeof rx_mmsg_[i]);
      rx_mmsg_[i].msg_hdr.msg_name = &rx_src_[i];
      rx_mmsg_[i].msg_hdr.msg_namelen = sizeof rx_src_[i];
      rx_mmsg_[i].msg_hdr.msg_iov = &rx_iov_[i];
      rx_mmsg_[i].msg_hdr.msg_iovlen = 1;
      rx_mmsg_[i].msg_hdr.msg_control = rx_ctl_[i].bytes;
      rx_mmsg_[i].msg_hdr.msg_controllen = kCtlBytes;
    }
    rx_init_slab_ = slab;
    rx_init_stride_ = stride;
    rx_init_vlen_ = vlen;
  } else {
    // Same layout as last time: the kernel only mutated the entries that
    // actually received a datagram ([0, last count)), and only the
    // length fields it reports results through (namelen, controllen,
    // flags). Repair just those entries, so an idle or one-datagram poll
    // costs O(1) setup instead of O(kMaxBatch).
    for (std::size_t i = 0; i < rx_dirty_; ++i) {
      rx_mmsg_[i].msg_hdr.msg_namelen = sizeof rx_src_[i];
      rx_mmsg_[i].msg_hdr.msg_controllen = kCtlBytes;
    }
  }
  rx_dirty_ = 0;
  int got;
  for (;;) {
    got = ::recvmmsg(fd_, rx_mmsg_, static_cast<unsigned>(vlen), 0, nullptr);
    if (got >= 0) break;
    if (errno == EINTR) continue;
    return 0;  // EAGAIN or a transient error: nothing deliverable now
  }
  rx_dirty_ = static_cast<std::size_t>(got);
  for (int i = 0; i < got; ++i) {
    out[i].len = rx_mmsg_[i].msg_len;
    absorb_cmsgs(rx_mmsg_[i].msg_hdr, &out[i].gro_seg_len);
    out[i].src_port = ntohs(rx_src_[i].sin_port);
  }
  return static_cast<std::size_t>(got);
#else
  // Portable fallback: one recv_one per slot until the queue runs dry.
  std::size_t got = 0;
  while (got < max_msgs) {
    const long n = recv_one(slab + got * stride, stride, &out[got].src_port,
                            &out[got].gro_seg_len);
    if (n < 0) break;
    out[got].len = static_cast<std::uint32_t>(n);
    ++got;
  }
  return got;
#endif
}

long UdpSocket::recv_one(void* buf, std::size_t cap, std::uint16_t* src_port,
                         std::uint32_t* gro_seg_len) {
  sockaddr_in src{};
  iovec iov{buf, cap};
  msghdr msg{};
  msg.msg_name = &src;
  msg.msg_namelen = sizeof src;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(alignof(cmsghdr)) char ctl[kCtlBytes];
  msg.msg_control = ctl;
  msg.msg_controllen = sizeof ctl;
  for (;;) {
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;  // EAGAIN or a transient error: nothing deliverable now
    }
    absorb_cmsgs(msg, gro_seg_len);
    if (src_port != nullptr) *src_port = ntohs(src.sin_port);
    return static_cast<long>(n);
  }
}

bool UdpSocket::wait_readable(int timeout_ms) {
  pollfd p{fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    return r > 0 && (p.revents & POLLIN) != 0;
  }
}

bool UdpSocket::readable_now() {
  pollfd p{fd_, POLLIN, 0};
  const int r = ::poll(&p, 1, 0);
  return r > 0 && (p.revents & POLLIN) != 0;
}

sockaddr_in UdpSocket::loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace fm::net
