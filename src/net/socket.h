// A thin RAII wrapper over one nonblocking loopback UDP socket — the
// net backend's "network interface". One datagram carries one FM frame
// (the UDP analogue of one Myrinet packet; see docs/PROTOCOL.md §9), so
// the socket API is deliberately datagram-shaped: send one frame to a
// peer address, receive one frame with its source port, and surface the
// kernel's own receive-queue overflow count (SO_RXQ_OVFL) — the real
// "link fault" this backend is built to exercise.
//
// FM-Burst adds the batched shapes: send_batch/recv_batch amortize the
// kernel crossing over up to kMaxBatch frames via sendmmsg(2)/recvmmsg(2)
// (the syscall analogue of the paper's PIO gather / receive aggregation),
// and send_gso collapses a run of equal-size same-destination frames into
// ONE UDP_SEGMENT datagram train. All batch state (mmsghdr/iovec/cmsg
// slabs) is preallocated inline so the batched paths stay allocation-free.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cstddef>
#include <cstdint>

#include "common/annotate.h"

namespace fm::net {

/// Cumulative-counter bookkeeping for SO_RXQ_OVFL. The kernel attaches a
/// cumulative u32 drop count to received datagrams; turning that into a
/// monotone total needs delta accounting that survives wraparound. This
/// used to be open-coded at each receive site — it lives here so recv_one
/// and recv_batch share one implementation (and one unit test).
class RxqDropMeter {
 public:
  /// Feeds one cumulative reading from the kernel. The very first reading
  /// is absorbed as a delta from zero (the counter starts at zero with the
  /// socket, so the first observation IS the absolute drop count), and
  /// unsigned 32-bit subtraction makes wraparound come out right:
  /// last=0xFFFFFFF0, reading=5 → delta 21.
  FM_HOT_PATH void feed(std::uint32_t reading) {
    total_ += static_cast<std::uint32_t>(reading - last_);
    last_ = reading;
  }
  /// Monotone total of kernel-dropped datagrams observed so far.
  std::uint64_t total() const { return total_; }

 private:
  std::uint32_t last_ = 0;
  std::uint64_t total_ = 0;
};

/// One bound, nonblocking UDP/IPv4 socket on 127.0.0.1 with an
/// OS-assigned port. Construction aborts (FM_CHECK) on any socket-layer
/// failure: a harness that cannot even open its NIC has nothing to test.
class UdpSocket {
 public:
  /// Capacity of the preallocated mmsghdr/iovec slabs: the most frames one
  /// sendmmsg/recvmmsg call can carry. 64 matches UDP_MAX_SEGMENTS (the
  /// kernel's cap on a GSO train) so one staging ring size serves both.
  static constexpr std::size_t kMaxBatch = 64;

  UdpSocket();
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  int fd() const { return fd_; }
  /// The OS-assigned port (host byte order) — the node's "network address".
  std::uint16_t port() const { return port_; }

  /// Shrinks/grows the kernel buffers (0 leaves the default). Small receive
  /// buffers are how soak tests force *real* kernel drops instead of
  /// injected ones.
  void set_buffer_sizes(int rcvbuf_bytes, int sndbuf_bytes);

  enum class SendResult {
    kOk,          ///< Datagram handed to the kernel.
    kWouldBlock,  ///< EWOULDBLOCK / ENOBUFS: transient backpressure.
    kError,       ///< Anything else; the datagram is gone (retransmit path).
  };

  /// Sends one datagram to `addr` (nonblocking).
  SendResult send_to(const sockaddr_in& addr, const void* buf,
                     std::size_t len);

  /// One frame of a TX burst. `addr` must outlive the send_batch call
  /// (in practice it points at the Cluster's stable per-node address
  /// table, so pointer equality also means "same destination").
  struct TxFrame {
    const void* data;
    std::uint32_t len;
    const sockaddr_in* addr;
  };

  /// Outcome of one send_batch call. Frames `[0, consumed)` are finished
  /// with (either handed to the kernel or counted in `errors` — an errored
  /// datagram is gone exactly like a dropped packet; FM-R's retransmit
  /// timer owns recovery). Frames `[consumed, n)` remain owned by the
  /// caller: they were NOT sent and must be retried later, which is what
  /// `would_block` signals.
  struct BatchResult {
    std::size_t consumed = 0;  ///< sent + errored; never double-sent
    std::size_t sent = 0;      ///< datagrams actually handed to the kernel
    std::size_t errors = 0;    ///< datagrams rejected for good (ECONNREFUSED…)
    std::size_t syscalls = 0;  ///< kernel crossings spent on this burst
    bool would_block = false;  ///< hit transient backpressure mid-burst
  };

  /// Sends up to `n` frames with as few syscalls as possible (sendmmsg on
  /// Linux, a sendto loop elsewhere). Stops at the first transient
  /// backpressure signal; see BatchResult for the ownership contract.
  FM_HOT_PATH BatchResult send_batch(const TxFrame* frames, std::size_t n);

  /// Sends `iovcnt` equal-size frames (`seg_len` bytes each; the LAST may
  /// be shorter) to one destination as a single UDP_SEGMENT datagram train
  /// — one syscall, one kernel traversal, `iovcnt` datagrams on the wire.
  /// The frames need not be contiguous; the kernel linearizes the iovec.
  /// Callers must check gso_supported() first; kWouldBlock means the whole
  /// train stays owned by the caller, kError means the whole train is gone.
  FM_HOT_PATH SendResult send_gso(const sockaddr_in& addr, const iovec* iov,
                                  std::size_t iovcnt, std::uint16_t seg_len);

  /// Whether the running kernel accepts UDP_SEGMENT on this socket
  /// (probed once at construction; false after force_gso_unsupported).
  bool gso_supported() const { return gso_ok_; }

  /// Opts this socket into UDP_GRO: the kernel may coalesce a burst of
  /// equal-size datagrams into one oversized buffer + segment size, which
  /// recv_batch reports via RxMsg::gro_seg_len. Returns false (and changes
  /// nothing) when the kernel lacks support.
  bool enable_gro();

  /// One received buffer from recv_batch. When `gro_seg_len` is nonzero
  /// the buffer is a GRO train: every `gro_seg_len` bytes is one original
  /// datagram (the last segment may be shorter). Zero means one plain
  /// datagram.
  struct RxMsg {
    std::uint32_t len;
    std::uint32_t gro_seg_len;
    std::uint16_t src_port;
  };

  /// Drains up to `max_msgs` datagrams (≤ kMaxBatch) in one recvmmsg call.
  /// Buffer i is written at `slab + i * stride`; `out[i]` describes it.
  /// Returns the number received (0: nothing queued). Kernel drop counts
  /// ride along on cmsgs and are folded into kernel_drops().
  FM_HOT_PATH std::size_t recv_batch(std::uint8_t* slab, std::size_t stride,
                                     std::size_t max_msgs, RxMsg* out);

  /// Receives one datagram into `buf` (nonblocking). Returns the byte
  /// count, or -1 when nothing is queued. `src_port` gets the sender's
  /// port. Kernel drops are folded into kernel_drops(); a GRO train (only
  /// possible after enable_gro) is reported via `gro_seg_len` exactly like
  /// RxMsg::gro_seg_len.
  long recv_one(void* buf, std::size_t cap, std::uint16_t* src_port,
                std::uint32_t* gro_seg_len = nullptr);

  /// Monotone total of datagrams the kernel dropped on this socket's
  /// receive queue (SO_RXQ_OVFL), as observed by the receive calls so far.
  std::uint64_t kernel_drops() const { return rxq_meter_.total(); }

  /// Blocks up to `timeout_ms` for the socket to become readable.
  /// Returns true when it did.
  bool wait_readable(int timeout_ms);

  /// Zero-timeout readability check — the busy-poll primitive. One cheap
  /// syscall, never blocks.
  bool readable_now();

  /// Test hook: every Nth datagram send attempt reports kWouldBlock once,
  /// then clears itself (like real backpressure draining). Applies to
  /// send_to, send_batch (forcing short counts mid-burst) and send_gso.
  /// 0 disables.
  void set_debug_wouldblock_every(std::size_t every) {
    debug_wouldblock_every_ = every;
  }

  /// Test hook: pretend the kernel rejected the UDP_SEGMENT probe, forcing
  /// every GSO consumer down the graceful-fallback path.
  void force_gso_unsupported() { gso_ok_ = false; }

  /// Test hook: after `n` successful send_gso trains, every later send_gso
  /// reports kError without touching the wire — models a kernel that
  /// accepts the UDP_SEGMENT probe but fails live trains mid-run
  /// (EIO/EINVAL from a driver that lies about segmentation support).
  /// 0 disables.
  void set_debug_gso_fail_after(std::uint64_t n) { debug_gso_fail_after_ = n; }

  /// The loopback sockaddr for a given port (host byte order).
  static sockaddr_in loopback_addr(std::uint16_t port);

 private:
  /// True when the debug hook says the next send attempt must report
  /// kWouldBlock; consumes the block so the retry succeeds.
  FM_HOT_PATH bool debug_block_now();
  /// Frames the debug hook allows before the next forced block (at least 1
  /// when the hook is armed and debug_block_now was just checked).
  FM_HOT_PATH std::size_t debug_frames_until_block(std::size_t want) const;
  /// Parses SO_RXQ_OVFL / UDP_GRO cmsgs from one received message.
  FM_HOT_PATH void absorb_cmsgs(const msghdr& msg, std::uint32_t* gro_seg_len);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  bool gso_ok_ = false;
  RxqDropMeter rxq_meter_;
  std::size_t debug_wouldblock_every_ = 0;
  std::uint64_t debug_send_attempts_ = 0;
  std::uint64_t debug_gso_fail_after_ = 0;
  std::uint64_t debug_gso_trains_ = 0;

  // Preallocated scatter/gather slabs for the batched paths. Sized for
  // kMaxBatch messages each; the RX control slab leaves room for both the
  // SO_RXQ_OVFL and UDP_GRO cmsgs. Non-Linux builds take the single-shot
  // fallback loops and need no mmsghdr storage.
  static constexpr std::size_t kCtlBytes = 64;
  struct RxCtl {
    alignas(alignof(cmsghdr)) char bytes[kCtlBytes];
  };
#ifdef __linux__
  // TX and RX get DISJOINT slabs: recv_batch caches its slab layout across
  // calls (see rx_init_* below), so send_batch scribbling over a shared
  // mmsghdr array would silently invalidate the cached receive headers
  // between drains — the datagrams would scatter into stale TX pointers.
  mmsghdr tx_mmsg_[kMaxBatch];
  iovec tx_iov_[kMaxBatch];
  mmsghdr rx_mmsg_[kMaxBatch];
  iovec rx_iov_[kMaxBatch];
  sockaddr_in rx_src_[kMaxBatch];
  RxCtl rx_ctl_[kMaxBatch];
  // recv_batch slab-layout cache: while the caller keeps draining into the
  // same slab/stride/count (the endpoint steady state), only the entries
  // the kernel dirtied last call ([0, rx_dirty_)) need repair per call.
  const std::uint8_t* rx_init_slab_ = nullptr;
  std::size_t rx_init_stride_ = 0;
  std::size_t rx_init_vlen_ = 0;
  std::size_t rx_dirty_ = 0;
#endif
};

}  // namespace fm::net
