// A thin RAII wrapper over one nonblocking loopback UDP socket — the
// net backend's "network interface". One datagram carries one FM frame
// (the UDP analogue of one Myrinet packet; see docs/PROTOCOL.md §9), so
// the socket API is deliberately datagram-shaped: send one frame to a
// peer address, receive one frame with its source port, and surface the
// kernel's own receive-queue overflow count (SO_RXQ_OVFL) — the real
// "link fault" this backend is built to exercise.
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>

namespace fm::net {

/// One bound, nonblocking UDP/IPv4 socket on 127.0.0.1 with an
/// OS-assigned port. Construction aborts (FM_CHECK) on any socket-layer
/// failure: a harness that cannot even open its NIC has nothing to test.
class UdpSocket {
 public:
  UdpSocket();
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  int fd() const { return fd_; }
  /// The OS-assigned port (host byte order) — the node's "network address".
  std::uint16_t port() const { return port_; }

  /// Shrinks/grows the kernel buffers (0 leaves the default). Small receive
  /// buffers are how soak tests force *real* kernel drops instead of
  /// injected ones.
  void set_buffer_sizes(int rcvbuf_bytes, int sndbuf_bytes);

  enum class SendResult {
    kOk,          ///< Datagram handed to the kernel.
    kWouldBlock,  ///< EWOULDBLOCK / ENOBUFS: transient backpressure.
    kError,       ///< Anything else; the datagram is gone (retransmit path).
  };

  /// Sends one datagram to `addr` (nonblocking).
  SendResult send_to(const sockaddr_in& addr, const void* buf,
                     std::size_t len);

  /// Receives one datagram into `buf` (nonblocking). Returns the byte
  /// count, or -1 when nothing is queued. `src_port` gets the sender's
  /// port; `rxq_drops` (when SO_RXQ_OVFL is available) is updated with the
  /// kernel's cumulative count of datagrams dropped on this socket's
  /// receive queue.
  long recv_one(void* buf, std::size_t cap, std::uint16_t* src_port,
                std::uint64_t* rxq_drops);

  /// Blocks up to `timeout_ms` for the socket to become readable.
  /// Returns true when it did.
  bool wait_readable(int timeout_ms);

  /// The loopback sockaddr for a given port (host byte order).
  static sockaddr_in loopback_addr(std::uint16_t port);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace fm::net
