// net::Cluster — N FM endpoints as N forked OS processes talking UDP.
//
// The multi-process SPMD harness. The parent binds every node's UDP socket
// and constructs every Endpoint *before* forking, so the children inherit
// identical handler tables and peer address maps (the same SPMD
// registration discipline the other backends enforce, implemented by
// fork() instead of convention). Each child then owns exactly one endpoint
// and one socket; the parent never touches the data path — it runs the
// control plane over per-child Unix-domain SOCK_SEQPACKET channels:
//
//   child:  READY ─▶ ◀─ GO ─ node_main runs ─ BARRIER ⇄ RELEASE ...
//           ─ registry samples ─▶ ─ DONE ─▶ exit
//   parent: rendezvous, barrier brokering, sample/metric collection,
//           crash detection (EOF on the channel), kill-on-timeout,
//           wait(2) status harvesting.
//
// Because ranks are real processes, a soak test can SIGKILL one and watch
// the survivors' FM-R declare it dead — the degradation story tested
// against an actual process death instead of a simulated one. All
// cross-rank results flow through the RunReport (merged registry
// snapshots + report()ed metrics): the parent's endpoint objects never see
// the children's counter values.
//
// Models fm::ClusterBackend (fm/cluster_runner.h) — the same contract as
// shm::Cluster, so backend-parameterized programs compile against both.
#pragma once

#include <netinet/in.h>
#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fm/cluster_runner.h"
#include "fm/config.h"
#include "hw/fault.h"
#include "net/endpoint.h"
#include "net/net_config.h"
#include "net/socket.h"

namespace fm::net {

/// A multi-process UDP FM cluster.
class Cluster {
 public:
  using EndpointType = Endpoint;

  /// Builds `nodes` endpoints on freshly bound loopback sockets. `cfg`
  /// must have reliability on (the endpoint constructor enforces it).
  explicit Cluster(std::size_t nodes, FmConfig cfg = FmConfig(),
                   NetConfig net = NetConfig(),
                   hw::FaultParams faults = hw::FaultParams());
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Number of nodes.
  std::size_t size() const { return endpoints_.size(); }

  /// Endpoint `i`. Before run(): configuration (handlers, trace enable).
  /// Inside run(): each child uses only its own rank's endpoint.
  Endpoint& endpoint(NodeId i) {
    FM_CHECK(i < endpoints_.size());
    return *endpoints_[i];
  }

  /// Registers `fn` on every endpoint; all must agree on the returned id.
  HandlerId register_handler(Endpoint::Handler fn) {
    return register_handler_agreed(
        size(), [this](NodeId i) -> Endpoint& { return *endpoints_[i]; },
        std::move(fn));
  }

  /// Forks one child per rank, runs `node_main(endpoint)` in each, and
  /// collects the per-rank exit statuses plus every child's registry
  /// snapshot into the RunReport. Callable once per Cluster.
  RunReport run(const std::function<void(Endpoint&)>& node_main);

  /// Cross-process barrier, callable only from inside node_main: the child
  /// asks the parent, which releases everyone once every *surviving* rank
  /// is waiting (a crashed rank must not hang the others forever).
  void barrier();

  /// Barrier that calls `service()` while waiting for the parent's release
  /// instead of parking in recv(). Rationale: with FM-R mandatory here, a
  /// rank that stops extracting starves any peer whose last ack datagram
  /// was lost — the peer retransmits into a deaf socket until its retry
  /// budget declares this rank dead. Pass a service that keeps the
  /// endpoint responsive (see fm::barrier_serviced).
  template <class Service>
  void barrier(Service&& service) {
    barrier_begin();
    while (!barrier_try_release()) service();
  }

  /// Publishes a named scalar into the RunReport. From inside node_main it
  /// crosses the process boundary over the control channel; rank-qualify
  /// the key if ranks must not collide.
  void report(const std::string& key, double value);

  /// Merges a snapshot of `reg` into the RunReport samples (e.g. a
  /// node_main-local FM-San "san.node<i>" registry). From inside node_main
  /// each sample crosses the process boundary over the control channel,
  /// exactly like the endpoint registry snapshot at child exit.
  void publish(const obs::Registry& reg);

  /// Announces where rank `i` currently is. The parent records the latest
  /// marker per rank; it surfaces in RankStatus::last_phase and in the
  /// watchdog's kill report. From inside node_main, `i` must be the
  /// calling rank.
  void note_phase(NodeId i, const std::string& phase);

  /// Flags this rank's run as failed: the child exits nonzero, which the
  /// parent surfaces in RunReport::ranks. For test harnesses whose
  /// assertion state (e.g. gtest's) is per-process and would otherwise be
  /// lost with the child.
  void mark_child_failed() { child_exit_code_ = 1; }

  /// True in a forked rank, false in the parent (and before run()).
  bool in_child() const { return in_child_; }

  /// The UDP address of node `i` (loopback + its bound port).
  const sockaddr_in& addr(NodeId i) const {
    FM_CHECK(i < addrs_.size());
    return addrs_[i];
  }

  /// Maps a datagram's source port back to a rank. False for strays.
  bool node_for_port(std::uint16_t port, NodeId* node) const {
    auto it = port_to_node_.find(port);
    if (it == port_to_node_.end()) return false;
    *node = it->second;
    return true;
  }

  const NetConfig& net_config() const { return net_; }

 private:
  /// Sends this rank's barrier request to the parent (servicing flavor).
  void barrier_begin();
  /// Nonblocking check for the parent's release packet.
  bool barrier_try_release();

  [[noreturn]] void child_main(NodeId rank,
                               const std::function<void(Endpoint&)>& body);
  void parent_collect(RunReport& report, const std::vector<pid_t>& pids);

  NetConfig net_;
  std::vector<std::unique_ptr<UdpSocket>> socks_;
  std::vector<sockaddr_in> addrs_;
  std::unordered_map<std::uint16_t, NodeId> port_to_node_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<int> ctl_parent_;  ///< Parent's end of each control channel.
  std::vector<int> ctl_child_;   ///< Child's end (closed in parent post-fork).
  bool ran_ = false;
  bool in_child_ = false;
  NodeId my_rank_ = kInvalidNode;
  int child_exit_code_ = 0;
  std::map<std::string, double> reported_;  ///< Parent-side report() calls.
  std::vector<obs::Sample> published_;      ///< Parent-side publish() calls.
  std::map<NodeId, std::string> parent_phases_;  ///< Pre-run note_phase().
};

static_assert(ClusterBackend<Cluster>,
              "net::Cluster must model the shared SPMD contract");

}  // namespace fm::net
