// The Myrinet network interface: LANai + SRAM + three DMA engines + cabling.
//
// The NIC exposes exactly the capabilities the real board gives an LCP:
//   - an outgoing-channel DMA engine that streams a packet from LANai memory
//     onto the wire (through the switch, with wormhole occupancy),
//   - an incoming-channel engine, modeled as the bounded rx_ring() mailbox
//     that the network delivers into (full ring => backpressure),
//   - a host DMA engine that moves bytes between LANai memory and the pinned
//     host DMA region across the SBus.
// Interpretation of packet contents is *not* a NIC capability — that is the
// LCP's (costed) job, per the paper's design rule.
#pragma once

#include <functional>
#include <optional>

#include "common/types.h"
#include "hw/lanai.h"
#include "hw/network.h"
#include "hw/packet.h"
#include "hw/params.h"
#include "hw/sbus.h"
#include "sim/condition.h"
#include "sim/mailbox.h"
#include "sim/op.h"
#include "sim/task.h"

namespace fm::hw {

/// One node's network interface card.
class Nic {
 public:
  Nic(sim::Simulator& sim, const HwParams& params, Sbus& sbus, NodeId id)
      : sim_(sim),
        params_(params),
        sbus_(sbus),
        id_(id),
        lanai_(sim, params.lanai),
        memory_(params.lanai.memory_bytes),
        out_dma_(sim, "net-out"),
        host_dma_(sim, "host"),
        rx_ring_(sim, params.lanai.rx_ring_frames),
        out_link_(sim) {}
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  /// Cables this NIC to `net` at attachment point == node id.
  void connect(Network& net) {
    switch_ = &net;
    net.attach(id_, this);
  }

  // ----------------------------------------------------------------------
  // Outgoing channel
  // ----------------------------------------------------------------------

  /// Transmits `pkt` inline: the awaiting LCP is blocked for the whole
  /// network path (setup + serialization + switch + delivery).
  sim::Op<> transmit(Packet pkt) {
    out_dma_.begin();
    co_await do_transmit(std::move(pkt));
    out_dma_.end();
    lcp_wake_.notify_all();
  }

  /// Starts a transmission and returns immediately; the outgoing engine is
  /// busy until the packet has fully drained into the destination's receive
  /// ring. The LCP overlaps its own instructions with the transfer.
  void start_transmit(Packet pkt) {
    out_dma_.begin();
    sim_.spawn(transmit_task(std::move(pkt)));
  }

  /// The outgoing-channel engine (poll busy() / wait_idle()).
  DmaEngine& out_dma() { return out_dma_; }

  // ----------------------------------------------------------------------
  // Incoming channel
  // ----------------------------------------------------------------------

  /// Packets the incoming-channel engine has landed in LANai memory.
  /// Capacity LanaiParams::rx_ring_frames; when full, the network blocks.
  sim::Mailbox<Packet>& rx_ring() { return rx_ring_; }

  /// Wake-up condition for the LCP: notified whenever a packet lands in the
  /// receive ring, a DMA engine goes idle, or host software rings a doorbell
  /// (see ring_doorbell()). Models the events a polling LCP loop observes,
  /// letting the simulated LCP block instead of spinning — the polling
  /// *cost* is charged as instructions when it wakes.
  sim::Condition& lcp_wake() { return lcp_wake_; }

  /// Host-side notification that LANai-memory state changed (e.g. the
  /// hostsent counter was advanced). SBus cost is paid by the caller.
  void ring_doorbell() { lcp_wake_.notify_all(); }

  // ----------------------------------------------------------------------
  // Host DMA engine
  // ----------------------------------------------------------------------

  /// Moves `bytes` between LANai memory and the host DMA region, inline.
  sim::Op<> host_dma(std::size_t bytes) {
    host_dma_.begin();
    co_await sim_.delay(params_.lanai.dma_setup);
    co_await sbus_.dma(bytes);
    host_dma_.end();
    lcp_wake_.notify_all();
  }

  /// Starts a host DMA in the background; `on_done` runs (as a scheduled
  /// event) when the transfer completes.
  void start_host_dma(std::size_t bytes, std::function<void()> on_done) {
    host_dma_.begin();
    sim_.spawn(host_dma_task(bytes, std::move(on_done)));
  }

  /// The host DMA engine.
  DmaEngine& host_dma_engine() { return host_dma_; }

  // ----------------------------------------------------------------------

  /// The LANai instruction stream.
  LanaiCpu& lanai() { return lanai_; }
  /// The 128 KB SRAM budget.
  LanaiMemory& memory() { return memory_; }
  /// The SBus this NIC sits on.
  Sbus& sbus() { return sbus_; }
  /// This NIC's node id (== its switch port).
  NodeId id() const { return id_; }

  /// Fresh unique packet id (node id in the top bits for traceability).
  std::uint64_t next_packet_id() {
    return (static_cast<std::uint64_t>(id_) << 48) | next_seq_++;
  }

  /// Packets fully transmitted / received (diagnostics).
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  sim::Task transmit_task(Packet pkt) {
    co_await do_transmit(std::move(pkt));
    out_dma_.end();
    lcp_wake_.notify_all();
  }

  sim::Task host_dma_task(std::size_t bytes, std::function<void()> on_done) {
    co_await sim_.delay(params_.lanai.dma_setup);
    co_await sbus_.dma(bytes);
    host_dma_.end();
    if (on_done) on_done();
    lcp_wake_.notify_all();
  }

  sim::Op<> do_transmit(Packet pkt) {
    FM_CHECK_MSG(switch_ != nullptr, "NIC not cabled to a network");
    FM_CHECK_MSG(pkt.dest < switch_->ports(), "bad destination route");
    pkt.src = id_;
    pkt.injected_at = sim_.now();
    const sim::Time serialization =
        switch_->byte_time() * static_cast<sim::Time>(pkt.wire_bytes());
    // Engine setup, then the wormhole path: claim our cable and every
    // switch output port on the source route (one fall-through latency per
    // hop, resources held for the whole serialization), then deliver before
    // releasing so a full receive ring stalls the wire all the way back.
    co_await sim_.delay(params_.lanai.dma_setup);
    co_await out_link_.acquire();
    std::vector<sim::BusyResource*> path;
    switch_->route(id_, pkt.dest, path);
    for (auto* hop : path) {
      co_await hop->acquire();
      co_await sim_.delay(switch_->hop_latency());
    }
    co_await sim_.delay(serialization);
    // Fault injection (off by default): a dropped packet consumed the wire
    // but never arrives; corruption flips one bit in flight; a duplicated
    // packet lands twice; a reordered packet is parked in the NIC until the
    // next transmission overtakes it (extended FM-R fault model).
    auto& faults = switch_->faults();
    bool dropped = faults.should_drop();
    if (!dropped) {
      faults.maybe_corrupt(pkt.bytes);
      bool duplicate = faults.should_duplicate();
      if (faults.should_reorder() && !reorder_held_.has_value()) {
        reorder_held_ = std::move(pkt);
      } else {
        if (duplicate) {
          Packet copy = pkt;
          co_await deliver(std::move(copy));
        }
        co_await deliver(std::move(pkt));
        if (reorder_held_.has_value()) {
          Packet held = std::move(*reorder_held_);
          reorder_held_.reset();
          co_await deliver(std::move(held));
        }
      }
    }
    for (auto it = path.rbegin(); it != path.rend(); ++it) (*it)->release();
    out_link_.release();
    ++packets_sent_;
  }

  sim::Op<> deliver(Packet pkt) {
    Nic* dst = switch_->nic_at(pkt.dest);
    FM_CHECK_MSG(dst != nullptr, "destination port vacant");
    co_await dst->rx_ring_.send(std::move(pkt));
    dst->lcp_wake_.notify_all();
  }

  sim::Simulator& sim_;
  HwParams params_;
  Sbus& sbus_;
  NodeId id_;
  LanaiCpu lanai_;
  LanaiMemory memory_;
  DmaEngine out_dma_;
  DmaEngine host_dma_;
  sim::Mailbox<Packet> rx_ring_;
  sim::Condition lcp_wake_{sim_};
  sim::BusyResource out_link_;
  std::optional<Packet> reorder_held_;  // fault injection: overtaken packet
  Network* switch_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace fm::hw
