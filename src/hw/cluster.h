// Node and Cluster: assembling the simulated testbed.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "hw/host_cpu.h"
#include "hw/network.h"
#include "hw/nic.h"
#include "hw/params.h"
#include "hw/sbus.h"
#include "sim/simulator.h"

namespace fm::hw {

/// One workstation: host processor + SBus + Myrinet NIC.
class Node {
 public:
  Node(sim::Simulator& sim, const HwParams& params, NodeId id)
      : id_(id),
        params_(params),
        cpu_(sim, params.host),
        sbus_(sim, params.sbus, params.host),
        nic_(sim, params_, sbus_, id) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  HostCpu& cpu() { return cpu_; }
  Sbus& sbus() { return sbus_; }
  Nic& nic() { return nic_; }
  /// The parameter set this node was built with.
  const HwParams& params() const { return params_; }

 private:
  NodeId id_;
  HwParams params_;
  HostCpu cpu_;
  Sbus sbus_;
  Nic nic_;
};

/// A cluster of nodes cabled to a network fabric. The default is the
/// paper's testbed shape — one crossbar switch (an 8-port Myrinet switch
/// and a pair of workstations is Cluster(2)). Passing `nodes_per_switch`
/// builds a linear cascade of switches instead (extension). Owns the
/// simulator, so a Cluster is a complete, self-contained experiment.
class Cluster {
 public:
  /// Builds `n` nodes. `nodes_per_switch` == 0 (default) cables everything
  /// to one crossbar; otherwise a CascadeFabric with that many hosts per
  /// switch.
  explicit Cluster(std::size_t n, HwParams params = HwParams::paper(),
                   std::size_t nodes_per_switch = 0)
      : params_(params) {
    if (nodes_per_switch == 0)
      network_ = std::make_unique<CrossbarSwitch>(sim_, params.link, n,
                                                  params.faults);
    else
      network_ = std::make_unique<CascadeFabric>(
          sim_, params.link, n, nodes_per_switch, params.faults);
    nodes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(
          std::make_unique<Node>(sim_, params_, static_cast<NodeId>(i)));
      nodes_.back()->nic().connect(*network_);
    }
  }

  /// The simulation clock and event queue.
  sim::Simulator& sim() { return sim_; }
  /// Node `i`.
  Node& node(NodeId i) {
    FM_CHECK(i < nodes_.size());
    return *nodes_[i];
  }
  /// Number of nodes.
  std::size_t size() const { return nodes_.size(); }
  /// The fabric.
  Network& network() { return *network_; }
  /// The parameter set the cluster was built with.
  const HwParams& params() const { return params_; }

 private:
  HwParams params_;
  sim::Simulator sim_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace fm::hw
