// SBus model: the arbitrated I/O bus between host and NIC.
//
// The paper's §4.3 thesis — the I/O bus is the messaging-layer battleground —
// is encoded here. Three access modes with very different costs:
//
//   PIO write  : processor-mediated double-word stores, 23.9 MB/s bus peak
//                further throttled by host loop overhead (net ~21-22 MB/s)
//   PIO read   : ~15 host cycles per uncached word ("reading a network
//                interface status field requires ~15 processor cycles")
//   DMA burst  : 40-54 MB/s, LANai-initiated, pinned kernel memory only
//
// All three arbitrate for the same BusyResource, so a host busy spooling a
// frame into LANai memory delays the LANai's delivery DMA and vice versa —
// contention the paper's asymmetric design exists to manage.
#pragma once

#include "hw/params.h"
#include "sim/op.h"
#include "sim/semaphore.h"
#include "sim/simulator.h"

namespace fm::hw {

/// One node's SBus.
class Sbus {
 public:
  Sbus(sim::Simulator& sim, const SbusParams& params, const HostParams& host)
      : sim_(sim), params_(params), host_(host), bus_(sim) {}
  Sbus(const Sbus&) = delete;
  Sbus& operator=(const Sbus&) = delete;

  /// Host-mediated store of `bytes` into NIC memory (double-word stream).
  /// Occupies both the host processor and the bus for the duration.
  sim::Op<> pio_write(std::size_t bytes) {
    const sim::Time d = pio_write_time(bytes);
    co_await bus_.acquire();
    co_await sim_.delay(d);
    bus_.release();
    bytes_pio_written_ += bytes;
  }

  /// Host uncached load of one word of NIC state.
  sim::Op<> pio_read() {
    co_await bus_.acquire();
    co_await sim_.delay(host_.cycle * params_.pio_read_cycles);
    bus_.release();
    ++pio_reads_;
  }

  /// LANai-initiated DMA between NIC memory and the pinned host DMA region.
  sim::Op<> dma(std::size_t bytes) {
    co_await bus_.acquire();
    co_await sim_.delay(params_.dma_latency +
                        sim::transfer_time(bytes, params_.dma_mbs));
    bus_.release();
    bytes_dma_ += bytes;
  }

  /// Duration of a PIO write, without arbitration (for analytic checks).
  sim::Time pio_write_time(std::size_t bytes) const {
    const std::size_t dwords = (bytes + 7) / 8;
    const sim::Time per_dword =
        sim::transfer_time(8, params_.pio_write_mbs) +
        host_.cycle * params_.pio_loop_cycles_per_dword;
    return static_cast<sim::Time>(dwords) * per_dword;
  }

  /// Duration of a DMA, without arbitration.
  sim::Time dma_time(std::size_t bytes) const {
    return params_.dma_latency + sim::transfer_time(bytes, params_.dma_mbs);
  }

  /// Underlying arbitration resource (for occupancy diagnostics).
  sim::BusyResource& bus() { return bus_; }

  /// Traffic counters (tests and utilization reports).
  std::uint64_t bytes_pio_written() const { return bytes_pio_written_; }
  std::uint64_t bytes_dma() const { return bytes_dma_; }
  std::uint64_t pio_reads() const { return pio_reads_; }

 private:
  sim::Simulator& sim_;
  SbusParams params_;
  HostParams host_;
  sim::BusyResource bus_;
  std::uint64_t bytes_pio_written_ = 0;
  std::uint64_t bytes_dma_ = 0;
  std::uint64_t pio_reads_ = 0;
};

}  // namespace fm::hw
