// Network fault injection.
//
// §4.5 of the paper: "Since the rejection mechanism does not provide
// fault-tolerance, the network is assumed to be reliable, or fault-tolerance
// must be provided by a higher level protocol. In the case of Myrinet, bit
// errors are exceedingly rare". This module makes them un-rare on demand, so
// tests and benches can demonstrate the consequences of that design choice:
// the Myricom API's checksums catch corruption (at LANai cost), FM by
// design does not.
//
// Faults are deterministic (seeded PRNG) so failing runs replay exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace fm::hw {

/// Fault model parameters (all off by default — Myrinet-like reliability).
struct FaultParams {
  /// Probability a packet vanishes in the switch fabric.
  double drop_rate = 0.0;
  /// Probability a packet suffers a single corrupted byte.
  double corrupt_rate = 0.0;
  /// PRNG seed (runs are bit-reproducible).
  std::uint64_t seed = 0x5eed;

  bool enabled() const { return drop_rate > 0 || corrupt_rate > 0; }
};

/// Per-network fault source.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultParams& p) : params_(p), rng_(p.seed) {}

  /// True if this packet should be silently dropped.
  bool should_drop() {
    if (params_.drop_rate <= 0) return false;
    if (!rng_.chance(params_.drop_rate)) return false;
    ++dropped_;
    return true;
  }

  /// Possibly corrupts one byte of `bytes` in place; returns whether it did.
  bool maybe_corrupt(std::vector<std::uint8_t>& bytes) {
    if (params_.corrupt_rate <= 0 || bytes.empty()) return false;
    if (!rng_.chance(params_.corrupt_rate)) return false;
    std::size_t i = rng_.below(bytes.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng_.below(8));
    bytes[i] ^= bit;
    ++corrupted_;
    return true;
  }

  /// Packets destroyed / damaged so far.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t corrupted() const { return corrupted_; }

  const FaultParams& params() const { return params_; }

 private:
  FaultParams params_;
  Xoshiro256 rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
};

}  // namespace fm::hw
