// Network fault injection.
//
// §4.5 of the paper: "Since the rejection mechanism does not provide
// fault-tolerance, the network is assumed to be reliable, or fault-tolerance
// must be provided by a higher level protocol. In the case of Myrinet, bit
// errors are exceedingly rare". This module makes them un-rare on demand, so
// tests and benches can demonstrate the consequences of that design choice:
// the Myricom API's checksums catch corruption (at LANai cost), FM by
// design does not — and the FM-R reliability layer recovers from all of it.
//
// The extended fault model covers the failure classes a reliability layer
// must survive, not just the bit errors §4.5 mentions:
//   * drop        — a packet vanishes in the fabric,
//   * corrupt     — a single bit flips in flight,
//   * duplicate   — a packet is delivered twice (e.g. a link-level retry
//                   whose original actually arrived),
//   * reorder     — a packet is held back and overtaken by a later one,
//   * burst loss  — a transient outage destroys several packets in a row
//                   (the pattern that defeats naive single-retry schemes).
//
// Faults are deterministic (seeded PRNG) so failing runs replay exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace fm::hw {

/// Fault model parameters (all off by default — Myrinet-like reliability).
struct FaultParams {
  /// Probability a packet vanishes in the switch fabric.
  double drop_rate = 0.0;
  /// Probability a packet suffers a single corrupted bit.
  double corrupt_rate = 0.0;
  /// Probability a packet is delivered twice.
  double duplicate_rate = 0.0;
  /// Probability a packet is held back and delivered after a later one.
  double reorder_rate = 0.0;
  /// Probability a packet starts a loss burst (it and the next
  /// `burst_len - 1` packets are all destroyed).
  double burst_rate = 0.0;
  /// Packets destroyed per burst.
  std::size_t burst_len = 4;
  /// PRNG seed (runs are bit-reproducible).
  std::uint64_t seed = 0x5eed;

  bool enabled() const {
    return drop_rate > 0 || corrupt_rate > 0 || duplicate_rate > 0 ||
           reorder_rate > 0 || burst_rate > 0;
  }

  /// Field-wise equality (FM-San asserts that re-materializing a chaos
  /// schedule from the same seed yields identical fault parameters).
  bool operator==(const FaultParams&) const = default;
};

/// Per-network fault source.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultParams& p) : params_(p), rng_(p.seed) {}

  /// True if this packet should be silently dropped (single-packet loss or
  /// an ongoing loss burst).
  bool should_drop() {
    if (burst_remaining_ > 0) {
      --burst_remaining_;
      ++dropped_;
      return true;
    }
    if (params_.burst_rate > 0 && rng_.chance(params_.burst_rate)) {
      burst_remaining_ = params_.burst_len > 0 ? params_.burst_len - 1 : 0;
      ++bursts_;
      ++dropped_;
      return true;
    }
    if (params_.drop_rate <= 0) return false;
    if (!rng_.chance(params_.drop_rate)) return false;
    ++dropped_;
    return true;
  }

  /// Possibly corrupts one byte of `bytes` in place; returns whether it did.
  bool maybe_corrupt(std::vector<std::uint8_t>& bytes) {
    if (params_.corrupt_rate <= 0 || bytes.empty()) return false;
    if (!rng_.chance(params_.corrupt_rate)) return false;
    std::size_t i = rng_.below(bytes.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng_.below(8));
    bytes[i] ^= bit;
    ++corrupted_;
    return true;
  }

  /// True if this packet should additionally be delivered a second time.
  bool should_duplicate() {
    if (params_.duplicate_rate <= 0) return false;
    if (!rng_.chance(params_.duplicate_rate)) return false;
    ++duplicated_;
    return true;
  }

  /// True if this packet should be held back so a later packet overtakes
  /// it. The caller owns the hold slot (stash this packet, release it after
  /// the next delivery).
  bool should_reorder() {
    if (params_.reorder_rate <= 0) return false;
    if (!rng_.chance(params_.reorder_rate)) return false;
    ++reordered_;
    return true;
  }

  /// Packets destroyed / damaged / duplicated / held back, bursts started.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t reordered() const { return reordered_; }
  std::uint64_t bursts() const { return bursts_; }

  const FaultParams& params() const { return params_; }

  /// Swaps in new rates mid-run (chaos storms/ramps) without touching the
  /// PRNG stream or the fault counters, so a reseeded replay that applies
  /// the same ramp at the same point reproduces the same fault pattern.
  /// The seed field of `p` is ignored — reseeding would fork the replay.
  void set_params(const FaultParams& p) {
    const std::uint64_t seed = params_.seed;
    params_ = p;
    params_.seed = seed;
  }

 private:
  FaultParams params_;
  Xoshiro256 rng_;
  std::size_t burst_remaining_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace fm::hw
