// Calibration constants for the simulated 1995 testbed.
//
// Every number here is either taken directly from the paper (section cited)
// or calibrated so that the harnesses in bench/ reproduce Table 4. This is
// the single place where "hardware" is defined; nothing else in the tree
// hard-codes a nanosecond.
#pragma once

#include <cstddef>

#include "hw/fault.h"
#include "sim/time.h"

namespace fm::hw {

/// Myrinet physical layer (paper §2 "Myrinet Network Features", Appendix A).
struct LinkParams {
  /// Per-byte wire occupancy. Appendix A: 12.5 ns/byte (=> 76.3 MB/s with
  /// the paper's 1 MB = 2^20 B convention).
  sim::Time byte_time = sim::ns_f(12.5);
  /// Fall-through latency of the 8-port switch. Appendix A: t_switch=550 ns.
  sim::Time switch_latency = sim::ns(550);
};

/// LANai 2.3 network coprocessor (paper §2).
struct LanaiParams {
  /// Clock period: "operating at the SBus clock frequency (20-25 MHz)".
  /// We use 25 MHz.
  sim::Time cycle = sim::ns(40);
  /// "executing one instruction every 3-4 cycles" — we use 4, which puts the
  /// LANai at 6.25 MIPS, matching the "~5 MIPS" characterization.
  int cycles_per_instr = 4;
  /// DMA engine setup: Appendix A, t_DMA = 8 cycles * 40 ns = 320 ns.
  sim::Time dma_setup = sim::ns(320);
  /// On-board SRAM: 128 KB ("one megabyte versus 128 kilobytes for
  /// Myrinet", §5). Queue sizing must fit inside this.
  std::size_t memory_bytes = 128 * 1024;
  /// Frames the hardware receive ring can hold before the network
  /// backpressures (LANai receive queue, Figure 6).
  std::size_t rx_ring_frames = 16;

  /// One instruction's duration.
  sim::Time instr_time() const { return cycle * cycles_per_instr; }
};

/// SPARCstation host (paper §2 "Workstation Features"). Numbers are the
/// SPARCstation 20 configuration (50 MHz SuperSPARC, no L2).
struct HostParams {
  /// Clock period at 50 MHz.
  sim::Time cycle = sim::ns(20);
  /// Main-memory write bandwidth: 60 MB/s (§2).
  double mem_write_mbs = 60.0;
  /// Main-memory read bandwidth: 80 MB/s (§2).
  double mem_read_mbs = 80.0;

  /// Effective memory-to-memory copy bandwidth. A copy both reads and
  /// writes, so the harmonic combination of the §2 numbers applies:
  /// 1/(1/80+1/60) = 34.3 MB/s. This is what makes the paper's all-DMA
  /// r_inf of 33 MB/s come out right: the staging copy is the bottleneck.
  double memcpy_mbs() const {
    return 1.0 / (1.0 / mem_read_mbs + 1.0 / mem_write_mbs);
  }
};

/// SBus I/O bus (paper §2, §4.3).
struct SbusParams {
  /// Peak processor-mediated (double-word programmed I/O) write bandwidth:
  /// "using double-word writes achieves a maximum of 23.9 MB/s" (§2).
  double pio_write_mbs = 23.9;
  /// Host-side loop overhead per 8-byte PIO store (load, store, index,
  /// branch on a 50 MHz SuperSPARC). Calibrated: drops effective streaming
  /// PIO bandwidth from the 23.9 MB/s bus peak to the ~21.2 MB/s the paper
  /// measures for the hybrid layer (Table 4).
  int pio_loop_cycles_per_dword = 2;
  /// Uncached read of a LANai status field: "~15 processor cycles" (§2).
  int pio_read_cycles = 15;
  /// DMA burst bandwidth: "40-54 MB/s for large transfers" (§2). We use the
  /// upper-middle of the range; receive-side delivery must comfortably beat
  /// the ~21 MB/s send side, as it does in the paper.
  double dma_mbs = 52.0;
  /// Fixed per-DMA-transaction bus latency (arbitration + address cycle).
  sim::Time dma_latency = sim::ns(400);
};

/// Instruction budgets for the LANai control program variants (§4.2-§4.4).
/// These are the calibrated "software" constants: the paper argues that tens
/// of instructions in the LCP inner loop dominate short-message cost, and
/// these counts — at 160 ns/instruction — land the Table 4 intercepts.
struct LcpCosts {
  // --- shared by baseline and streamed loops -----------------------------
  /// Check "hostsent != lanaisent" (load two counters, compare, branch).
  int check_send = 3;
  /// Check "packet available on the receive channel" (read status, branch).
  int check_recv = 3;
  /// Per-packet send path: compute buffer address, program the outgoing DMA
  /// engine, update lanaisent, wrap the queue pointer.
  int send_path = 12;
  /// Per-packet receive path: program/ack the incoming engine, advance the
  /// fixed receive buffer, bookkeeping.
  int recv_path = 7;
  /// Loop closure overhead of the baseline structure (re-dispatching the
  /// top-level loop every packet: branch + re-load of loop state).
  int baseline_loop = 3;
  /// Loop closure of the inner `while` in the streamed structure.
  int streamed_loop = 1;

  // --- FM LCP additions (§4.4) -------------------------------------------
  /// Per-DMA-to-host delivery: check host queue space, program host DMA.
  int host_dma_setup = 6;
  /// Per-packet share of delivery bookkeeping when aggregating.
  int host_dma_per_packet = 2;
  /// The Figure 7 "switch()" experiment: simulated minimal packet
  /// interpretation in the receive inner loop. Calibrated to the observed
  /// +3.0 us latency / n_1/2 127 B: ~20 instructions.
  int interpret_switch = 26;

  // --- Myricom API LCP (§4.6) --------------------------------------------
  /// Interpreting one command descriptor (parse command, validate, locate
  /// buffers, update shared pointers). The API's LCP is a full-featured
  /// interpreter; at ~6 MIPS a few hundred instructions costs tens of us,
  /// which is precisely the paper's explanation for t0 = 105 us.
  int api_command_interpret = 260;
  /// Receive-side per-message processing (match buffer, update descriptors).
  int api_receive_process = 220;
  /// Checksum cost per 4-byte word (word-at-a-time software loop on the
  /// LANai): load, add, loop => ~20 ns/byte.
  int api_checksum_cycles_per_word = 2;
  /// Extra LANai work for DMA-mode sends (descriptor chasing, second
  /// pointer handshake, scatter-gather walk) — Table 4's 121 us vs 105 us.
  int api_dma_mode_extra = 100;
  /// Host<->LANai pointer handshake: number of LANai-side round trips per
  /// message (the paper: "synchronization between the host and the LANai is
  /// expensive, yet must be done frequently in the Myrinet API").
  int api_handshakes = 2;

  /// Automatic network remapping (Table 3: "Reconfiguration: Automatic,
  /// continuous" — "may be convenient for users but can hurt the messaging
  /// layer's performance"): every `api_remap_interval` of simulated time the
  /// API's LCP spends `api_remap_instr` instructions probing the network.
  /// Set the interval to 0 to disable.
  sim::Time api_remap_interval = sim::ms(5);
  int api_remap_instr = 2000;
};

/// Host-program instruction budgets (FM host library / API host library).
struct HostCosts {
  /// FM_send: queue-space check and header construction.
  int fm_send_setup_cycles = 30;
  /// Trigger: update the hostsent counter in LANai memory (one SBus store
  /// plus write-buffer drain).
  int fm_trigger_cycles = 10;
  /// FM_extract: poll the host receive queue (cached read + compare).
  int fm_poll_cycles = 12;
  /// Per-frame interpretation in FM_extract: read header, look up and
  /// dispatch the handler.
  int fm_dispatch_cycles = 40;
  /// Per-frame flow-control bookkeeping on the send side (sequence number,
  /// retain pending copy) — calibrated to the +0.3 us of Table 4's
  /// flow-control row.
  int fm_flowctl_send_cycles = 12;
  /// Per-frame flow-control bookkeeping on the receive side (ack tracking,
  /// piggyback credit update).
  int fm_flowctl_recv_cycles = 8;
  /// FM-R CRC-32 cost per frame byte. Charged on both the sending and the
  /// receiving host when crc_frames is on. One 50 MHz host cycle per byte
  /// = 20 ns/byte, deliberately the same per-byte rate the Myricom API
  /// model charges for its LANai checksum (2 LANai cycles per 4-byte word),
  /// so Table-3-style "what does integrity checking cost" comparisons pit
  /// like against like.
  int fm_crc_cycles_per_byte = 1;

  /// Myricom API: building a command descriptor + doorbell.
  int api_send_setup_cycles = 120;
  /// Myricom API: receive-side buffer management per message.
  int api_recv_cycles = 150;
};

/// Queue geometry (Figure 6). Sizes chosen to fit the 128 KB LANai SRAM:
/// 2 queues * 16 frames * (128+16) B ~ 4.6 KB plus program/state.
struct QueueParams {
  std::size_t lanai_send_frames = 16;
  std::size_t lanai_recv_frames = 16;
  std::size_t host_recv_frames = 256;
  std::size_t host_reject_frames = 64;
  /// Sender-side pending window (outstanding unacknowledged frames per
  /// node; return-to-sender reserves space locally for each).
  std::size_t pending_frames = 64;
};

/// Complete parameter set for one simulated cluster.
struct HwParams {
  LinkParams link;
  FaultParams faults;
  LanaiParams lanai;
  HostParams host;
  SbusParams sbus;
  LcpCosts lcp;
  HostCosts hostsw;
  QueueParams queues;

  /// Bytes of frame header on the wire for the FM layer (destination route,
  /// source, handler id, length, sequence number, piggybacked ack).
  std::size_t fm_header_bytes = 16;

  /// The paper's testbed configuration.
  static HwParams paper() { return HwParams{}; }
};

}  // namespace fm::hw
