// Myrinet network fabrics: the single crossbar switch of the paper's
// testbed, plus multi-switch cascades (an extension — Myrinet scaled by
// cabling switches together, with source routes naming the output port at
// every hop).
//
// Model: source-routed wormhole switching. A transmission holds its input
// link and every switch output port along the route for the whole
// serialization time (charged once, end to end, per the cut-through
// approximation of Appendix A: latency = t_DMA + hops * t_switch +
// 12.5 ns/byte), so head-of-line blocking and output contention emerge
// naturally. Delivery into the destination NIC's receive ring happens while
// the resources are still held — if the ring is full the stream stalls and
// backpressure propagates upstream, exactly the behaviour the paper leans
// on ("polling is not required to prevent network blockage").
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "hw/fault.h"
#include "hw/packet.h"
#include "hw/params.h"
#include "sim/semaphore.h"
#include "sim/simulator.h"

namespace fm::hw {

class Nic;

/// Abstract network fabric: something NICs attach to and route through.
class Network {
 public:
  Network(sim::Simulator& sim, const LinkParams& params,
          const FaultParams& faults, std::size_t nodes)
      : sim_(sim), params_(params), faults_(faults), nics_(nodes, nullptr) {}
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Number of attachable nodes.
  std::size_t ports() const { return nics_.size(); }

  /// Cables `nic` to attachment point `id`.
  void attach(NodeId id, Nic* nic) {
    FM_CHECK_MSG(id < nics_.size(), "attachment point out of range");
    FM_CHECK_MSG(nics_[id] == nullptr, "attachment point already cabled");
    nics_[id] = nic;
  }

  /// The NIC at attachment point `id` (null if vacant).
  Nic* nic_at(NodeId id) const {
    FM_CHECK(id < nics_.size());
    return nics_[id];
  }

  /// Computes the source route from `src` to `dest`: the ordered switch
  /// output ports the packet's header must claim. Each entry costs one
  /// switch fall-through latency.
  virtual void route(NodeId src, NodeId dest,
                     std::vector<sim::BusyResource*>& out) = 0;

  /// Routing fall-through latency per hop.
  sim::Time hop_latency() const { return params_.switch_latency; }
  /// Per-byte serialization time.
  sim::Time byte_time() const { return params_.byte_time; }
  /// The fabric's fault source (off by default).
  FaultInjector& faults() { return faults_; }

  sim::Simulator& simulator() { return sim_; }

 protected:
  sim::Simulator& sim_;
  LinkParams params_;
  FaultInjector faults_;
  std::vector<Nic*> nics_;
};

/// The paper's testbed network: one N-port crossbar switch; every route is
/// a single output port.
class CrossbarSwitch : public Network {
 public:
  CrossbarSwitch(sim::Simulator& sim, const LinkParams& params,
                 std::size_t ports, const FaultParams& faults = FaultParams())
      : Network(sim, params, faults, ports) {
    out_ports_.reserve(ports);
    for (std::size_t i = 0; i < ports; ++i)
      out_ports_.push_back(std::make_unique<sim::BusyResource>(sim));
  }

  void route(NodeId src, NodeId dest,
             std::vector<sim::BusyResource*>& out) override {
    (void)src;
    FM_CHECK(dest < out_ports_.size());
    out.push_back(out_ports_[dest].get());
  }

  /// The occupancy resource of output port `port` (tests).
  sim::BusyResource& out_port(NodeId port) {
    FM_CHECK(port < out_ports_.size());
    return *out_ports_[port];
  }

 private:
  std::vector<std::unique_ptr<sim::BusyResource>> out_ports_;
};

/// A linear cascade of switches (extension): `nodes_per_switch` hosts per
/// switch, neighbouring switches joined by one cable per direction. Routes
/// traverse the inter-switch cables hop by hop, then the destination's
/// delivery port — each hop adding one switch fall-through and one more
/// held resource, so the cascade's bisection cable is a genuine shared
/// bottleneck.
class CascadeFabric : public Network {
 public:
  CascadeFabric(sim::Simulator& sim, const LinkParams& params,
                std::size_t nodes, std::size_t nodes_per_switch,
                const FaultParams& faults = FaultParams())
      : Network(sim, params, faults, nodes), per_switch_(nodes_per_switch) {
    FM_CHECK_MSG(nodes_per_switch >= 1, "empty switches");
    const std::size_t switches = (nodes + per_switch_ - 1) / per_switch_;
    delivery_.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i)
      delivery_.push_back(std::make_unique<sim::BusyResource>(sim));
    right_.reserve(switches);
    left_.reserve(switches);
    for (std::size_t s = 0; s < switches; ++s) {
      right_.push_back(std::make_unique<sim::BusyResource>(sim));
      left_.push_back(std::make_unique<sim::BusyResource>(sim));
    }
  }

  void route(NodeId src, NodeId dest,
             std::vector<sim::BusyResource*>& out) override {
    FM_CHECK(src < ports() && dest < ports());
    std::size_t sa = src / per_switch_, sb = dest / per_switch_;
    // Inter-switch cables, in travel order (consistent global acquisition
    // order per direction => no deadlock among wormhole holders).
    for (std::size_t s = sa; s < sb; ++s) out.push_back(right_[s].get());
    for (std::size_t s = sa; s > sb; --s) out.push_back(left_[s].get());
    out.push_back(delivery_[dest].get());
  }

  /// Switches in the cascade.
  std::size_t switches() const { return right_.size(); }
  /// Number of switch hops between two nodes.
  std::size_t hops(NodeId a, NodeId b) const {
    std::size_t sa = a / per_switch_, sb = b / per_switch_;
    return 1 + (sa > sb ? sa - sb : sb - sa);
  }

 private:
  std::size_t per_switch_;
  std::vector<std::unique_ptr<sim::BusyResource>> delivery_;
  std::vector<std::unique_ptr<sim::BusyResource>> right_;  // s -> s+1
  std::vector<std::unique_ptr<sim::BusyResource>> left_;   // s -> s-1
};

}  // namespace fm::hw
